(* Telemetry v2 suite: live progress events (NDJSON stream shape,
   sequence numbers, sweep/checkpoint/experiment hooks), resource
   accounting (sample deltas, span attributes, process summary in the
   v4 metrics report), atomic report writes, and the bench-trajectory
   analyzer's parsing and gate semantics.

   The event sink is process-wide, so every test that arms it closes
   it in a [Fun.protect] finally. *)

module Json = Nmcache_engine.Json
module Metrics = Nmcache_engine.Metrics
module Span = Nmcache_engine.Span
module Obs = Nmcache_engine.Obs
module Trace = Nmcache_engine.Trace
module Events = Nmcache_engine.Events
module Resource = Nmcache_engine.Resource
module Bench_diff = Nmcache_engine.Bench_diff
module Checkpoint = Nmcache_engine.Checkpoint
module Fault = Nmcache_engine.Fault
module Pool = Nmcache_engine.Pool
module Task = Nmcache_engine.Task
module Sweep = Nmcache_engine.Sweep

let tmp_counter = ref 0

let tmpfile suffix =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ppcache-telemetry-%d-%d%s" (Unix.getpid ()) !tmp_counter suffix)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_events path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> l <> "")
  |> List.map Json.parse_exn

let with_event_file f =
  let path = tmpfile ".ndjson" in
  Events.set_file path;
  Fun.protect
    ~finally:(fun () ->
      Events.close ();
      Metrics.reset ();
      Trace.reset ();
      Fault.reset ())
    (fun () -> f path)

let str j name = Option.bind (Json.member name j) Json.to_str
let int_of j name = Option.bind (Json.member name j) Json.to_int

(* --- events ----------------------------------------------------------- *)

let test_events_disabled_by_default () =
  Alcotest.(check bool) "sink off" false (Events.enabled ());
  (* emitting with no sink must be a silent no-op *)
  Events.emit (Events.Experiment_done { id = "noop" })

let test_events_stream_shape () =
  with_event_file (fun path ->
      Alcotest.(check bool) "sink armed" true (Events.enabled ());
      let task = Task.make ~name:"telemetry.kernel" (fun i -> i * 2) in
      let out = Sweep.map_array ~pool:(Pool.create ~jobs:4) task (Array.init 12 Fun.id) in
      Alcotest.(check int) "sweep result intact" 22 out.(11);
      Events.close ();
      let events = read_events path in
      (* one sweep_started + one slot_done per slot *)
      Alcotest.(check int) "event count" 13 (List.length events);
      let seqs = List.map (fun e -> Option.get (int_of e "seq")) events in
      Alcotest.(check (list int)) "seq contiguous from 0"
        (List.init 13 Fun.id) (List.sort compare seqs);
      (match List.find_opt (fun e -> str e "event" = Some "sweep_started") events with
      | Some e ->
        Alcotest.(check (option string)) "sweep name" (Some "telemetry.kernel")
          (str e "name");
        Alcotest.(check (option int)) "sweep total" (Some 12) (int_of e "total")
      | None -> Alcotest.fail "no sweep_started event");
      let slot_dones =
        List.filter (fun e -> str e "event" = Some "slot_done") events
      in
      Alcotest.(check int) "one slot_done per slot" 12 (List.length slot_dones);
      (* completion counts are a permutation of 1..12; the largest
         equals the sweep size — the analyzer's progress invariant *)
      let dones = List.sort compare (List.map (fun e -> Option.get (int_of e "done")) slot_dones) in
      Alcotest.(check (list int)) "done counts 1..12" (List.init 12 (fun i -> i + 1)) dones;
      let indices = List.sort compare (List.map (fun e -> Option.get (int_of e "index")) slot_dones) in
      Alcotest.(check (list int)) "indices 0..11" (List.init 12 Fun.id) indices;
      List.iter
        (fun e ->
          Alcotest.(check (option int)) "total on each slot_done" (Some 12)
            (int_of e "total");
          Alcotest.(check bool) "memo/fault/retry fields present" true
            (int_of e "memo_hits" <> None && int_of e "faults" <> None
           && int_of e "retries" <> None))
        slot_dones)

let test_events_checkpoint_replayed () =
  with_event_file (fun path ->
      incr tmp_counter;
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "ppcache-telemetry-ckpt-%d-%d" (Unix.getpid ()) !tmp_counter)
      in
      let j = Checkpoint.open_ ~dir ~resume:false in
      Checkpoint.store j ~key:"k1" 1;
      Checkpoint.store j ~key:"k2" 2;
      Checkpoint.close j;
      let j2 = Checkpoint.open_ ~dir ~resume:true in
      Checkpoint.close j2;
      Events.close ();
      match
        List.find_opt
          (fun e -> str e "event" = Some "checkpoint_replayed")
          (read_events path)
      with
      | Some e ->
        Alcotest.(check (option int)) "replayed count" (Some 2) (int_of e "replayed");
        Alcotest.(check (option string)) "dir recorded" (Some dir) (str e "dir")
      | None -> Alcotest.fail "no checkpoint_replayed event")

let test_events_render () =
  let line =
    Events.render
      (Events.Slot_done
         {
           name = "s";
           index = 3;
           completed = 4;
           total = 9;
           memo_hits = 1;
           faults = 0;
           retries = 2;
         })
  in
  Alcotest.(check string) "progress line" "sweep s: 4/9 done (memo 1, faults 0, retries 2)" line

(* --- resource --------------------------------------------------------- *)

let test_resource_sampling () =
  let before = Resource.sample () in
  (* the quick_stat counters only advance at minor collections, so
     allocate well past one minor-heap cycle (~256k words default) *)
  let acc = ref [] in
  for i = 1 to 300_000 do
    acc := (i, float_of_int i) :: !acc
  done;
  ignore (List.length !acc);
  let after = Resource.sample () in
  let d = Resource.delta ~before ~after in
  Alcotest.(check bool) "wall advances" true (d.Resource.wall_s >= 0.0);
  Alcotest.(check bool) "minor words grew" true (d.Resource.d_minor_words > 0.0);
  let attrs = Resource.span_attrs ~before ~after in
  List.iter
    (fun k -> Alcotest.(check bool) k true (List.mem_assoc k attrs))
    [ "minor_words"; "major_words"; "major_collections" ]

let test_resource_summary_fields () =
  let j = Resource.summary_json () in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (Json.member k j <> None))
    [
      "wall_s"; "minor_words"; "promoted_words"; "major_words"; "allocated_words";
      "minor_collections"; "major_collections"; "forced_major_collections";
      "compactions"; "heap_words"; "peak_heap_words";
    ];
  Alcotest.(check bool) "peak heap positive" true
    (match Option.bind (Json.member "peak_heap_words" j) Json.to_int with
    | Some words -> words > 0
    | None -> false)

let test_metrics_report_v4_resource () =
  let report = Obs.metrics_report () in
  Alcotest.(check (option int)) "schema v4" (Some 4)
    (Option.bind (Json.member "schema_version" report) Json.to_int);
  match Json.member "resource" report with
  | Some (Json.Obj fields) ->
    Alcotest.(check bool) "resource section non-empty" true (fields <> [])
  | _ -> Alcotest.fail "resource section missing"

let test_span_carries_resource_attrs () =
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ())
    (fun () ->
      Span.with_span "alloc" (fun () ->
          (* enough cons cells to force a minor collection, so the
             span's allocation delta is visibly non-zero *)
          let acc = ref [] in
          for i = 1 to 300_000 do
            acc := i :: !acc
          done;
          ignore (List.length !acc));
      match Span.spans () with
      | [ s ] ->
        List.iter
          (fun k ->
            Alcotest.(check bool) (k ^ " attr") true (List.mem_assoc k s.Span.attrs))
          [ "minor_words"; "major_words"; "major_collections" ];
        (match List.assoc "minor_words" s.Span.attrs with
        | Json.Float words -> Alcotest.(check bool) "allocation observed" true (words > 0.0)
        | _ -> Alcotest.fail "minor_words not a float")
      | l -> Alcotest.failf "expected one span, got %d" (List.length l))

(* --- atomic writes ---------------------------------------------------- *)

let test_write_json_atomic () =
  let path = tmpfile ".json" in
  Obs.write_json ~path (Json.Obj [ ("x", Json.Int 1) ]);
  Alcotest.(check bool) "no tmp left behind" false (Sys.file_exists (path ^ ".tmp"));
  (* overwrite must replace, not append or truncate-in-place *)
  Obs.write_json ~path (Json.Obj [ ("x", Json.Int 2) ]);
  match Json.parse (read_file path) with
  | Ok j -> Alcotest.(check (option int)) "second write wins" (Some 2)
              (Option.bind (Json.member "x" j) Json.to_int)
  | Error e -> Alcotest.fail e

(* --- bench diff ------------------------------------------------------- *)

let v2_report ~label ~wall =
  Printf.sprintf
    {|{"schema_version": 2, "label": %S, "jobs": 1, "quick": true,
       "scenario": "sweep", "wall_s": %g,
       "experiments": [],
       "stages": [{"name": "missrate.grid", "calls": 1, "tasks": 4,
                   "busy_s": %g, "wall_s": %g}],
       "memo": [{"name": "workload.profiles", "hits": 6, "misses": 6,
                 "hit_rate": 0.5}]}|}
    label wall wall wall

let v3_report ~label ~wall ~digest =
  Printf.sprintf
    {|{"schema_version": 3, "label": %S, "jobs": 4, "quick": true,
       "scenario": "sweep", "digest": %g, "wall_s": %g,
       "experiments": [], "stages": [], "memo": [],
       "resource": {"allocated_words": 1e9, "peak_heap_words": 5000000,
                    "major_collections": 12}}|}
    label digest wall

let parse_report ~path s = Bench_diff.of_json ~path (Json.parse_exn s)

let test_bench_diff_parses_both_schemas () =
  let a = parse_report ~path:"a.json" (v2_report ~label:"old" ~wall:30.0) in
  let b = parse_report ~path:"b.json" (v3_report ~label:"new" ~wall:4.0 ~digest:1.25) in
  Alcotest.(check int) "v2 schema" 2 a.Bench_diff.schema_version;
  Alcotest.(check int) "v3 schema" 3 b.Bench_diff.schema_version;
  Alcotest.(check bool) "v2 has no digest" true (a.Bench_diff.digest = None);
  Alcotest.(check bool) "v3 digest parsed" true (b.Bench_diff.digest = Some 1.25);
  Alcotest.(check int) "v2 stages" 1 (List.length a.Bench_diff.stages);
  Alcotest.(check int) "v2 memos" 1 (List.length a.Bench_diff.memos);
  Alcotest.(check bool) "v3 resource present" true (b.Bench_diff.resource <> None);
  (* the rendered table survives mixed versions and names both files *)
  let table = Bench_diff.render a b in
  List.iter
    (fun needle ->
      let ln = String.length needle and lt = String.length table in
      let rec go i = i + ln <= lt && (String.sub table i ln = needle || go (i + 1)) in
      Alcotest.(check bool) (Printf.sprintf "table mentions %S" needle) true (go 0))
    [ "a.json"; "b.json"; "wall_s"; "stage missrate.grid"; "memo workload.profiles";
      "resource allocated_words" ]

let test_bench_diff_gate () =
  let baseline = parse_report ~path:"base.json" (v2_report ~label:"base" ~wall:10.0) in
  let faster = parse_report ~path:"fast.json" (v2_report ~label:"fast" ~wall:5.0) in
  (* artificially regressed: 2x the baseline wall, past the 1.5 gate *)
  let regressed = parse_report ~path:"slow.json" (v2_report ~label:"slow" ~wall:20.0) in
  Alcotest.(check bool) "speedup passes" false
    (Bench_diff.gate_exceeded ~ratio:1.5 baseline faster);
  Alcotest.(check bool) "regression fails" true
    (Bench_diff.gate_exceeded ~ratio:1.5 baseline regressed);
  Alcotest.(check bool) "equal walls pass" false
    (Bench_diff.gate_exceeded ~ratio:1.5 baseline baseline);
  Alcotest.(check bool) "boundary is inclusive" false
    (Bench_diff.gate_exceeded ~ratio:2.0 baseline regressed)

let test_bench_diff_rejects_malformed () =
  List.iter
    (fun s ->
      match Bench_diff.of_json ~path:"bad.json" (Json.parse_exn s) with
      | exception Failure msg ->
        Alcotest.(check bool) "error names the file" true
          (String.length msg >= 8 && String.sub msg 0 8 = "bad.json")
      | _ -> Alcotest.failf "accepted %s" s)
    [ {|{"label": "x", "wall_s": 1.0}|}; {|{"schema_version": 2, "label": "x"}|}; {|[]|} ]

let suite =
  [
    Alcotest.test_case "events disabled by default" `Quick test_events_disabled_by_default;
    Alcotest.test_case "event stream shape under parallel sweep" `Quick
      test_events_stream_shape;
    Alcotest.test_case "checkpoint replay emits an event" `Quick
      test_events_checkpoint_replayed;
    Alcotest.test_case "progress line rendering" `Quick test_events_render;
    Alcotest.test_case "resource sampling and deltas" `Quick test_resource_sampling;
    Alcotest.test_case "resource summary fields" `Quick test_resource_summary_fields;
    Alcotest.test_case "metrics report is v4 with resource" `Quick
      test_metrics_report_v4_resource;
    Alcotest.test_case "spans carry resource attrs" `Quick
      test_span_carries_resource_attrs;
    Alcotest.test_case "report writes are atomic" `Quick test_write_json_atomic;
    Alcotest.test_case "bench diff parses schema v2 and v3" `Quick
      test_bench_diff_parses_both_schemas;
    Alcotest.test_case "bench diff gate semantics" `Quick test_bench_diff_gate;
    Alcotest.test_case "bench diff rejects malformed reports" `Quick
      test_bench_diff_rejects_malformed;
  ]
