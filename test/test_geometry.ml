(* Tests for the cache geometry layer: configuration arithmetic,
   organisation search, and the four-component circuit model. *)

module Units = Nmcache_physics.Units
module Tech = Nmcache_device.Tech
module Config = Nmcache_geometry.Config
module Org = Nmcache_geometry.Org
module Component = Nmcache_geometry.Component
module Cache_model = Nmcache_geometry.Cache_model

let tech = Tech.bptm65
let a = Units.angstrom
let kb n = n * 1024
let mb n = n * 1024 * 1024

let cfg16 = Config.make ~size_bytes:(kb 16) ~assoc:4 ~block_bytes:64 ()

(* --- config ---------------------------------------------------------- *)

let test_config_derived () =
  Alcotest.(check int) "sets" 64 (Config.sets cfg16);
  Alcotest.(check int) "index bits" 6 (Config.index_bits cfg16);
  Alcotest.(check int) "offset bits" 6 (Config.offset_bits cfg16);
  Alcotest.(check int) "tag bits" 28 (Config.tag_bits cfg16);
  Alcotest.(check int) "data cells" (8 * kb 16) (Config.data_cells cfg16);
  Alcotest.(check bool) "tag overhead positive" true (Config.tag_cells cfg16 > 0);
  Alcotest.(check int) "total = data + tag" (Config.data_cells cfg16 + Config.tag_cells cfg16)
    (Config.total_cells cfg16)

let test_config_validation () =
  let expect_invalid f =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid (fun () -> Config.make ~size_bytes:(kb 3) ~assoc:1 ~block_bytes:64 ());
  expect_invalid (fun () -> Config.make ~size_bytes:(kb 16) ~assoc:3 ~block_bytes:64 ());
  expect_invalid (fun () -> Config.make ~size_bytes:(kb 16) ~assoc:4 ~block_bytes:48 ());
  expect_invalid (fun () -> Config.make ~size_bytes:256 ~assoc:8 ~block_bytes:64 ());
  expect_invalid (fun () ->
      Config.make ~output_bits:1024 ~size_bytes:(kb 16) ~assoc:4 ~block_bytes:64 ())

let test_config_describe () =
  Alcotest.(check string) "pp" "16KB/4way/64B" (Config.describe cfg16);
  let big = Config.make ~size_bytes:(mb 2) ~assoc:8 ~block_bytes:64 () in
  Alcotest.(check string) "pp MB" "2MB/8way/64B" (Config.describe big)

let test_power_of_two () =
  Alcotest.(check bool) "64" true (Config.is_power_of_two 64);
  Alcotest.(check bool) "0" false (Config.is_power_of_two 0);
  Alcotest.(check bool) "48" false (Config.is_power_of_two 48)

(* --- org --------------------------------------------------------------- *)

let test_org_candidates_valid () =
  List.iter
    (fun cfg ->
      let cands = Org.candidates cfg in
      Alcotest.(check bool) "non-empty" true (cands <> []);
      List.iter
        (fun org ->
          Alcotest.(check bool) "rows positive" true (Org.rows_sub cfg org >= 1);
          Alcotest.(check bool) "cols positive" true (Org.cols_sub cfg org >= 1.0))
        cands)
    [
      cfg16;
      Config.make ~size_bytes:(kb 4) ~assoc:2 ~block_bytes:32 ();
      Config.make ~size_bytes:(mb 8) ~assoc:8 ~block_bytes:64 ();
    ]

let test_org_grid_covers_subarrays () =
  let org = Org.make ~ndwl:8 ~ndbl:4 in
  let gx, gy = Org.grid org in
  Alcotest.(check int) "grid covers all subarrays" (Org.n_subarrays org) (gx * gy)

let test_org_validation () =
  Alcotest.(check bool) "non power of two" true
    (try
       ignore (Org.make ~ndwl:3 ~ndbl:1);
       false
     with Invalid_argument _ -> true)

(* --- cache model --------------------------------------------------------- *)

let model = Cache_model.make tech cfg16
let ref_knob = Component.knob ~vth:0.3 ~tox:(a 12.0)

let test_components_all_positive () =
  List.iter
    (fun kind ->
      let s = Cache_model.evaluate_component model kind ref_knob in
      Alcotest.(check bool)
        (Component.kind_name kind ^ " delay > 0")
        true (s.Component.delay > 0.0);
      Alcotest.(check bool)
        (Component.kind_name kind ^ " leak > 0")
        true (s.Component.leak_w > 0.0);
      Alcotest.(check bool)
        (Component.kind_name kind ^ " energy > 0")
        true (s.Component.dyn_energy > 0.0);
      Alcotest.(check bool)
        (Component.kind_name kind ^ " area > 0")
        true (s.Component.area > 0.0))
    Component.all_kinds

let test_array_dominates_leakage () =
  let r = Cache_model.evaluate model (Component.uniform ref_knob) in
  let array = List.assoc Component.Array_sense r.Cache_model.components in
  Alcotest.(check bool) "array+sense is the leakiest component" true
    (List.for_all
       (fun (kind, (s : Component.summary)) ->
         kind = Component.Array_sense || s.Component.leak_w <= array.Component.leak_w)
       r.Cache_model.components)

let test_report_is_sum () =
  let r = Cache_model.evaluate model (Component.uniform ref_knob) in
  let sum f = List.fold_left (fun acc (_, s) -> acc +. f s) 0.0 r.Cache_model.components in
  let close msg e g =
    Alcotest.(check bool) msg true (Float.abs (e -. g) <= 1e-12 *. Float.abs e)
  in
  close "access time" (sum (fun s -> s.Component.delay)) r.Cache_model.access_time;
  close "leakage" (sum (fun s -> s.Component.leak_w)) r.Cache_model.leak_w;
  close "dyn energy" (sum (fun s -> s.Component.dyn_energy)) r.Cache_model.dyn_read_energy

let test_bigger_cache_slower_and_leakier () =
  let small = Cache_model.make tech cfg16 in
  let big = Cache_model.make tech (Config.make ~size_bytes:(kb 256) ~assoc:8 ~block_bytes:64 ()) in
  let rs = Cache_model.evaluate small (Component.uniform ref_knob) in
  let rb = Cache_model.evaluate big (Component.uniform ref_knob) in
  Alcotest.(check bool) "bigger is slower" true
    (rb.Cache_model.access_time > rs.Cache_model.access_time);
  Alcotest.(check bool) "bigger leaks more" true (rb.Cache_model.leak_w > rs.Cache_model.leak_w);
  Alcotest.(check bool) "bigger has more area" true (rb.Cache_model.area > rs.Cache_model.area)

let test_access_time_magnitude () =
  let r = Cache_model.evaluate model (Component.uniform ref_knob) in
  Alcotest.(check bool) "16KB access 100..600 ps" true
    (r.Cache_model.access_time > Units.ps 100.0 && r.Cache_model.access_time < Units.ps 600.0)

let test_leakage_magnitude () =
  let leaky =
    Cache_model.evaluate model (Component.uniform (Component.knob ~vth:0.2 ~tox:(a 10.0)))
  in
  let quiet =
    Cache_model.evaluate model (Component.uniform (Component.knob ~vth:0.5 ~tox:(a 14.0)))
  in
  Alcotest.(check bool) "leaky corner 5..200 mW" true
    (leaky.Cache_model.leak_w > Units.mw 5.0 && leaky.Cache_model.leak_w < Units.mw 200.0);
  Alcotest.(check bool) "quiet corner < 5 mW" true (quiet.Cache_model.leak_w < Units.mw 5.0);
  Alcotest.(check bool) "2+ decades of range" true
    (leaky.Cache_model.leak_w /. quiet.Cache_model.leak_w > 20.0)

let test_characterize_shape () =
  let samples =
    Cache_model.characterize model Component.Decoder ~vths:[| 0.2; 0.35; 0.5 |]
      ~toxs:[| a 10.0; a 12.0; a 14.0 |]
  in
  Alcotest.(check int) "3x3 grid" 9 (Array.length samples);
  (* vth-major ordering *)
  let (k0 : Component.knob), _ = samples.(0) in
  let (k1 : Component.knob), _ = samples.(1) in
  Alcotest.(check bool) "vth-major" true
    (k0.Component.vth = k1.Component.vth && k0.Component.tox < k1.Component.tox)

let knob_arb = Generators.interior_knob_arb

(* Leakage is only *nearly* monotone in the knobs: past Vth ~0.42 with
   thick Tox, subthreshold current is already negligible and the paper's
   Tox->L->W sizing rule grows gate area faster than tunnelling shrinks,
   so even the array component's leakage can ripple up by ~0.3%.  The
   full-cache totals additionally ripple where discrete structures
   (repeater counts, buffer-chain stage counts) change size.  Delay is
   strictly monotone for the array and gets a small tolerance for the
   totals. *)
let prop_model_monotone =
  QCheck.Test.make ~count:60 ~name:"cache leakage dec / delay inc in knobs" knob_arb
    (fun (vth, tox_a) ->
      let k1 = Component.knob ~vth ~tox:(a tox_a) in
      let k2 = Component.knob ~vth:(vth +. 0.02) ~tox:(a (tox_a +. 0.2)) in
      let a1 = Cache_model.evaluate_component model Component.Array_sense k1 in
      let a2 = Cache_model.evaluate_component model Component.Array_sense k2 in
      let r1 = Cache_model.evaluate model (Component.uniform k1) in
      let r2 = Cache_model.evaluate model (Component.uniform k2) in
      a2.Component.leak_w < a1.Component.leak_w *. 1.01
      && a2.Component.delay > a1.Component.delay
      && r2.Cache_model.leak_w < r1.Cache_model.leak_w *. 1.02
      && r2.Cache_model.access_time > r1.Cache_model.access_time *. 0.98)

let test_assignment_accessors () =
  let ka = Component.knob ~vth:0.4 ~tox:(a 14.0) in
  let kp = Component.knob ~vth:0.2 ~tox:(a 10.0) in
  let s = Component.split ~cell:ka ~periphery:kp in
  Alcotest.(check bool) "array gets cell" true (Component.get s Component.Array_sense == ka);
  Alcotest.(check bool) "decoder gets periph" true (Component.get s Component.Decoder == kp);
  let s' = Component.set s Component.Data_drivers ka in
  Alcotest.(check bool) "set overrides" true
    (Component.get s' Component.Data_drivers == ka)

let test_kind_roundtrip () =
  List.iter
    (fun kind ->
      Alcotest.(check bool) "name roundtrip" true
        (Component.kind_of_name (Component.kind_name kind) = Some kind))
    Component.all_kinds

let suite =
  [
    Alcotest.test_case "config derived quantities" `Quick test_config_derived;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "config describe" `Quick test_config_describe;
    Alcotest.test_case "power of two" `Quick test_power_of_two;
    Alcotest.test_case "org candidates valid" `Quick test_org_candidates_valid;
    Alcotest.test_case "org grid covers subarrays" `Quick test_org_grid_covers_subarrays;
    Alcotest.test_case "org validation" `Quick test_org_validation;
    Alcotest.test_case "components positive" `Quick test_components_all_positive;
    Alcotest.test_case "array dominates leakage" `Quick test_array_dominates_leakage;
    Alcotest.test_case "report is component sum" `Quick test_report_is_sum;
    Alcotest.test_case "bigger cache slower/leakier" `Quick
      test_bigger_cache_slower_and_leakier;
    Alcotest.test_case "access time magnitude" `Quick test_access_time_magnitude;
    Alcotest.test_case "leakage magnitude" `Quick test_leakage_magnitude;
    Alcotest.test_case "characterize grid shape" `Quick test_characterize_shape;
    Alcotest.test_case "assignment accessors" `Quick test_assignment_accessors;
    Alcotest.test_case "kind name roundtrip" `Quick test_kind_roundtrip;
  ]
  @ List.map Generators.to_alcotest [ prop_model_monotone ]
