(* Chaos suite for the fault-tolerant engine: typed-fault encoding,
   deterministic injection, partial-result sweeps that never hang the
   pool or poison the memo table, numeric-guard recovery in Lm, and
   Out_of_domain enforcement on the fitted models.

   Faultpoint arming and the fault log are process-wide, so every test
   that configures injection disarms and resets in a [Fun.protect]
   finally — the rest of the test binary must run injection-free. *)

module Fault = Nmcache_engine.Fault
module Faultpoint = Nmcache_engine.Faultpoint
module Pool = Nmcache_engine.Pool
module Memo = Nmcache_engine.Memo
module Task = Nmcache_engine.Task
module Sweep = Nmcache_engine.Sweep
module Executor = Nmcache_engine.Executor
module Lm = Nmcache_numerics.Lm
module Component = Nmcache_geometry.Component
module Config = Nmcache_geometry.Config
module Cache_model = Nmcache_geometry.Cache_model
module Fitted_cache = Nmcache_fit.Fitted_cache
module Tech = Nmcache_device.Tech
module Units = Nmcache_physics.Units

let with_injection spec f =
  (match Faultpoint.configure spec with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("spec rejected: " ^ msg));
  Fun.protect
    ~finally:(fun () ->
      Faultpoint.clear ();
      Fault.reset ())
    f

(* --- Fault: kinds, JSON, classification, log ----------------------------- *)

let all_kinds =
  Fault.
    [ Fit_diverged; Singular_system; Non_finite; Out_of_domain; Injected; Crashed; Timed_out ]

let test_kind_names () =
  List.iter
    (fun k ->
      let n = Fault.kind_name k in
      Alcotest.(check string) "name is lowercase" (String.lowercase_ascii n) n;
      Alcotest.(check bool) (n ^ " roundtrips") true (Fault.kind_of_name n = Some k))
    all_kinds;
  Alcotest.(check bool) "unknown name rejected" true (Fault.kind_of_name "splines" = None)

let test_json_roundtrip () =
  List.iter
    (fun k ->
      let f = Fault.make ~kind:k ~stage:"fit.leak" "n=35:vth0=0.200" in
      match Fault.of_json (Fault.to_json f) with
      | Some f' ->
        Alcotest.(check bool)
          (Fault.kind_name k ^ " json roundtrip")
          true
          (Fault.compare f f' = 0)
      | None -> Alcotest.fail "of_json returned None")
    all_kinds;
  Alcotest.(check bool) "garbage json rejected" true
    (Fault.of_json (Nmcache_engine.Json.String "nope") = None);
  let f = Fault.make ~kind:Fault.Injected ~stage:"experiment" "schemes" in
  Alcotest.(check string) "one-line rendering" "[injected] experiment: schemes"
    (Fault.to_string f)

let test_of_exn_classification () =
  let f = Fault.make ~kind:Fault.Non_finite ~stage:"fit.delay" "nan" in
  Alcotest.(check bool) "a Fault passes through unchanged" true
    (Fault.compare (Fault.of_exn ~stage:"elsewhere" (Fault.Fault f)) f = 0);
  let c = Fault.of_exn ~stage:"stage.x" (Failure "boom") in
  Alcotest.(check bool) "other exceptions become Crashed" true (c.Fault.kind = Fault.Crashed);
  Alcotest.(check string) "boundary stage kept" "stage.x" c.Fault.stage

let test_fault_log_canonical_order () =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  let late = Fault.make ~kind:Fault.Injected ~stage:"simulate" "key-z" in
  let early = Fault.make ~kind:Fault.Crashed ~stage:"experiment" "key-a" in
  Fault.record late;
  Fault.record early;
  (match Fault.recorded () with
  | [ a; b ] ->
    Alcotest.(check bool) "log keeps record order" true
      (Fault.compare a late = 0 && Fault.compare b early = 0)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 recorded faults, got %d" (List.length l)));
  match List.sort Fault.compare (Fault.recorded ()) with
  | [ a; b ] ->
    Alcotest.(check bool) "canonical order sorts by stage first" true
      (Fault.compare a early = 0 && Fault.compare b late = 0)
  | _ -> Alcotest.fail "sort changed the length"

(* --- Faultpoint: spec parsing and deterministic draws -------------------- *)

let test_spec_parsing () =
  Fun.protect ~finally:Faultpoint.clear @@ fun () ->
  Faultpoint.clear ();
  Alcotest.(check bool) "disarmed by default" false (Faultpoint.active ());
  Alcotest.(check bool) "hit is a nop when disarmed" true
    (try
       Faultpoint.hit ~point:"experiment" ~key:"schemes" ();
       true
     with Fault.Fault _ -> false);
  (match Faultpoint.configure "experiment=schemes, fit.leak:0.25 ,anneal,seed:7" with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "armed" true (Faultpoint.active ());
  Alcotest.(check bool) "spec remembered" true (Faultpoint.spec () <> None);
  List.iter
    (fun bad ->
      match Faultpoint.configure bad with
      | Ok () -> Alcotest.fail ("accepted bad spec: " ^ bad)
      | Error _ ->
        Alcotest.(check bool)
          ("rejected spec leaves previous arming: " ^ bad)
          true (Faultpoint.active ()))
    [
      "simulate:banana";
      "simulate:1.5";
      "simulate:-0.25";
      "seed:pi";
      "=key";
      ":0.5" (* a probability arm still needs a point name *);
      "experiment=schemes,:1.0" (* ...also when hiding behind a valid entry *);
    ]

let test_spec_arm_semantics () =
  Fun.protect ~finally:Faultpoint.clear @@ fun () ->
  let fires spec ~point ~key =
    (match Faultpoint.configure spec with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg);
    Faultpoint.should_fire ~point ~key ()
  in
  Alcotest.(check bool) "p:0 never fires" false
    (fires "simulate:0.0" ~point:"simulate" ~key:"anything");
  Alcotest.(check bool) "p:1 always fires" true
    (fires "simulate:1.0" ~point:"simulate" ~key:"anything");
  Alcotest.(check bool) "key arm misses other keys" false
    (fires "experiment=schemes" ~point:"experiment" ~key:"fig1");
  (* duplicate points OR together: each arm gets its own trigger *)
  Alcotest.(check bool) "duplicate keyed arms, first key" true
    (fires "experiment=schemes,experiment=fig1" ~point:"experiment" ~key:"schemes");
  Alcotest.(check bool) "duplicate keyed arms, second key" true
    (fires "experiment=schemes,experiment=fig1" ~point:"experiment" ~key:"fig1");
  Alcotest.(check bool) "duplicate keyed arms, absent key" false
    (fires "experiment=schemes,experiment=fig1" ~point:"experiment" ~key:"l2sweep");
  Alcotest.(check bool) "always-arm duplicate overrides a keyed miss" true
    (fires "experiment=schemes,experiment" ~point:"experiment" ~key:"l2sweep");
  (* later seed entries rebind the draw stream for probability arms *)
  let with_seed s =
    (match Faultpoint.configure (Printf.sprintf "seed:%d,simulate:0.5" s) with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg);
    List.init 64 (fun i ->
        Faultpoint.should_fire ~point:"simulate" ~key:(string_of_int i) ())
  in
  let a = with_seed 1 and b = with_seed 1 and c = with_seed 2 in
  Alcotest.(check bool) "same seed, same draws" true (a = b);
  Alcotest.(check bool) "different seed, different draws" true (a <> c)

let test_env_configuration () =
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv Faultpoint.env_var "";
      Faultpoint.clear ())
  @@ fun () ->
  Unix.putenv Faultpoint.env_var "";
  Alcotest.(check bool) "empty env is not an arming" true
    (Faultpoint.configure_from_env () = Ok false);
  Unix.putenv Faultpoint.env_var "experiment=schemes";
  Alcotest.(check bool) "env spec arms" true (Faultpoint.configure_from_env () = Ok true);
  Alcotest.(check bool) "active after env arm" true (Faultpoint.active ());
  Unix.putenv Faultpoint.env_var "simulate:nope";
  Alcotest.(check bool) "bad env spec is an Error" true
    (match Faultpoint.configure_from_env () with Error _ -> true | Ok _ -> false)

let test_injection_determinism () =
  with_injection "simulate:0.4,seed:3" @@ fun () ->
  let keys = List.init 64 (fun i -> Printf.sprintf "sim:key-%d" i) in
  let draw_all () = List.map (fun key -> Faultpoint.should_fire ~point:"simulate" ~key ()) keys in
  let first = draw_all () in
  Alcotest.(check bool) "selection is a pure function of the key" true (first = draw_all ());
  let fired = List.length (List.filter Fun.id first) in
  Alcotest.(check bool)
    (Printf.sprintf "p=0.4 selects some but not all keys (got %d/64)" fired)
    true
    (fired > 0 && fired < 64);
  Alcotest.(check bool) "other points unaffected" false
    (List.exists (fun key -> Faultpoint.should_fire ~point:"anneal" ~key ()) keys)

let test_injection_arms () =
  (* Always fires on every key; Prob 0 never; Key only on the exact key *)
  with_injection "experiment,fit.leak:0.0,simulate=sim:exact" @@ fun () ->
  Alcotest.(check bool) "bare point always fires" true
    (Faultpoint.should_fire ~point:"experiment" ~key:"anything" ());
  Alcotest.(check bool) "probability zero never fires" false
    (Faultpoint.should_fire ~point:"fit.leak" ~key:"anything" ());
  Alcotest.(check bool) "exact key fires" true
    (Faultpoint.should_fire ~point:"simulate" ~key:"sim:exact" ());
  Alcotest.(check bool) "other keys do not" false
    (Faultpoint.should_fire ~point:"simulate" ~key:"sim:other" ());
  Fault.reset ();
  (try
     Faultpoint.hit ~point:"experiment" ~key:"schemes" ();
     Alcotest.fail "armed hit did not raise"
   with Fault.Fault f ->
     Alcotest.(check bool) "raised fault is Injected" true (f.Fault.kind = Fault.Injected);
     Alcotest.(check string) "stage is the point" "experiment" f.Fault.stage;
     Alcotest.(check string) "detail is the key" "schemes" f.Fault.detail)

(* --- partial-result sweeps ----------------------------------------------- *)

let flaky i = if i mod 3 = 0 then failwith (Printf.sprintf "kernel %d" i) else i * i

let test_pool_partial_results () =
  let input = Array.init 48 Fun.id in
  let shape jobs =
    Array.map
      (function Ok v -> Printf.sprintf "ok:%d" v | Error e -> "err:" ^ Printexc.to_string e)
      (Pool.map_array_result (Pool.create ~jobs) flaky input)
  in
  let seq = shape 1 in
  Array.iteri
    (fun i cell ->
      let expected = if i mod 3 = 0 then "err:Failure(\"kernel " else "ok:" in
      Alcotest.(check bool)
        (Printf.sprintf "slot %d settled as %s..." i expected)
        true
        (String.length cell >= String.length expected
        && String.sub cell 0 (String.length expected) = expected))
    seq;
  List.iter
    (fun jobs ->
      Alcotest.(check (array string))
        (Printf.sprintf "jobs=%d partial results equal sequential" jobs)
        seq (shape jobs))
    [ 2; 4; 8 ]

let test_sweep_result_records_faults () =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  let task =
    Task.make ~name:"chaos.kernel" (fun i ->
        if i = 2 then Fault.error ~kind:Fault.Non_finite ~stage:"chaos.inner" "nan at 2"
        else if i = 5 then failwith "plain crash"
        else i + 100)
  in
  let out = Sweep.map_array_result ~pool:(Pool.create ~jobs:4) task (Array.init 8 Fun.id) in
  Alcotest.(check int) "healthy slot" 100 (match out.(0) with Ok v -> v | Error _ -> -1);
  (match out.(2) with
  | Error f ->
    Alcotest.(check bool) "typed fault kept its kind" true (f.Fault.kind = Fault.Non_finite);
    Alcotest.(check string) "typed fault kept its stage" "chaos.inner" f.Fault.stage
  | Ok _ -> Alcotest.fail "slot 2 should have faulted");
  (match out.(5) with
  | Error f ->
    Alcotest.(check bool) "crash classified" true (f.Fault.kind = Fault.Crashed);
    Alcotest.(check string) "crash attributed to the task" "chaos.kernel" f.Fault.stage
  | Ok _ -> Alcotest.fail "slot 5 should have faulted");
  Alcotest.(check int) "both faults recorded in the log" 2
    (List.length (Fault.recorded ()))

let test_injected_faults_never_hang_pool () =
  (* every key fires: all slots fault, all domains join, call returns *)
  with_injection "chaos.point" @@ fun () ->
  let task =
    Task.make ~name:"chaos.sweep" (fun i ->
        Faultpoint.hit ~point:"chaos.point" ~key:(string_of_int i) ();
        i)
  in
  let out = Sweep.map_array_result ~pool:(Pool.create ~jobs:4) task (Array.init 32 Fun.id) in
  Array.iteri
    (fun i slot ->
      match slot with
      | Error f ->
        Alcotest.(check bool)
          (Printf.sprintf "slot %d injected" i)
          true
          (f.Fault.kind = Fault.Injected && f.Fault.detail = string_of_int i)
      | Ok _ -> Alcotest.fail "armed hit survived")
    out

let test_injected_fault_never_poisons_memo () =
  with_injection "memo.compute=poisoned" @@ fun () ->
  let memo : int Memo.t = Memo.create ~name:"test.memo-chaos" () in
  let computed = Atomic.make 0 in
  let get key =
    Memo.find_or_compute memo key (fun () ->
        Atomic.incr computed;
        Faultpoint.hit ~point:"memo.compute" ~key ();
        String.length key)
  in
  (* four domains race the same armed key: each retry recomputes (the
     Pending marker is dropped on failure) and fails identically *)
  let results =
    Pool.map_array_result (Pool.create ~jobs:4) (fun _ -> get "poisoned") (Array.make 4 ())
  in
  Array.iter
    (fun slot ->
      match slot with
      | Error (Fault.Fault f) ->
        Alcotest.(check bool) "every waiter saw the injected fault" true
          (f.Fault.kind = Fault.Injected)
      | Error e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e)
      | Ok _ -> Alcotest.fail "armed compute returned a value")
    results;
  Alcotest.(check int) "every caller recomputed (Pending was dropped)" 4
    (Atomic.get computed);
  Alcotest.(check int) "no value cached for the failed key" 0 (Memo.length memo);
  Faultpoint.clear ();
  Alcotest.(check int) "key recovers after disarming" 8 (get "poisoned");
  Alcotest.(check int) "one cached entry now" 1 (Memo.length memo)

(* --- run_many_result: per-experiment status, byte-identical renders ------ *)

let synthetic_experiments =
  let artefact label ctx =
    ignore (ctx : Core.Context.t);
    [ Core.Report.note ("artefact " ^ label) ]
  in
  List.map
    (fun id ->
      {
        Core.Experiments.id;
        title = "synthetic " ^ id;
        paper_ref = "test";
        run = artefact id;
      })
    [ "syn-a"; "syn-b"; "syn-c" ]

let render_statuses results =
  String.concat "\n"
    (List.map
       (fun ((e : Core.Experiments.t), status) ->
         match status with
         | Ok artefacts -> e.Core.Experiments.id ^ ": " ^ Core.Report.render artefacts
         | Error f -> e.Core.Experiments.id ^ ": FAULT " ^ Fault.to_string f)
       results)

let test_run_many_result_partial () =
  with_injection "experiment=syn-b" @@ fun () ->
  let ctx = Core.Context.quick () in
  let run () = render_statuses (Core.Experiments.run_many_result ctx synthetic_experiments) in
  let seq = Executor.with_jobs 1 run in
  let par = Executor.with_jobs 4 run in
  Alcotest.(check bool) "jobs=4 renders the same bytes" true (String.equal seq par);
  List.iter
    (fun (id, ok) ->
      let needle = if ok then id ^ ": -- artefact " ^ id else id ^ ": FAULT [injected]" in
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("status of " ^ id) true (contains seq needle))
    [ ("syn-a", true); ("syn-b", false); ("syn-c", true) ]

let test_run_many_fail_fast_raises () =
  with_injection "experiment=syn-b" @@ fun () ->
  let ctx = Core.Context.quick () in
  match Core.Experiments.run_many ctx synthetic_experiments with
  | _ -> Alcotest.fail "fail-fast run_many should re-raise the injected fault"
  | exception Fault.Fault f ->
    Alcotest.(check bool) "aborting fault is the injected one" true
      (f.Fault.kind = Fault.Injected && f.Fault.detail = "syn-b")

(* --- Lm numeric guards ---------------------------------------------------- *)

let line theta x = theta.(0) +. (theta.(1) *. x.(0))
let line_xs = Array.init 12 (fun i -> [| float_of_int i |])
let line_ys = Array.map (fun x -> 3.0 +. (2.0 *. x.(0))) line_xs

let test_lm_rejects_non_finite_inputs () =
  let poisoned = Array.copy line_ys in
  poisoned.(4) <- Float.nan;
  Alcotest.(check bool) "NaN sample raises Non_finite" true
    (match Lm.fit ~f:line ~xs:line_xs ~ys:poisoned ~init:[| 0.0; 0.0 |] () with
    | _ -> false
    | exception Lm.Non_finite _ -> true);
  Alcotest.(check bool) "Inf initial parameter raises Non_finite" true
    (match Lm.fit ~f:line ~xs:line_xs ~ys:line_ys ~init:[| Float.infinity; 0.0 |] () with
    | _ -> false
    | exception Lm.Non_finite _ -> true)

let test_fit_robust_healthy_unchanged () =
  let plain = Lm.fit ~f:line ~xs:line_xs ~ys:line_ys ~init:[| 0.0; 0.0 |] () in
  let robust = Lm.fit_robust ~f:line ~xs:line_xs ~ys:line_ys ~init:[| 0.0; 0.0 |] () in
  Alcotest.(check bool) "healthy fit converges" true plain.Lm.converged;
  Alcotest.(check bool) "fit_robust returns the first fit byte-for-byte" true
    (plain = robust)

let test_fit_robust_recovers_from_bad_start () =
  (* the model is poisoned above |theta0| > 3.2, and the initial guess
     starts inside the poisoned region: the plain fit returns a
     non-finite result, and only a perturbed restart can escape *)
  let f theta x = if Float.abs theta.(0) > 3.2 then Float.nan else theta.(0) *. x.(0) in
  let xs = Array.init 8 (fun i -> [| float_of_int (i + 1) |]) in
  let ys = Array.map (fun x -> 2.0 *. x.(0)) xs in
  let init = [| 4.0 |] in
  let plain = Lm.fit ~f ~xs ~ys ~init () in
  Alcotest.(check bool) "plain fit is stuck with a non-finite residual" false
    (Float.is_finite plain.Lm.residual);
  let robust = Lm.fit_robust ~restarts:20 ~f ~xs ~ys ~init () in
  Alcotest.(check bool) "restart found a finite fit" true (Float.is_finite robust.Lm.residual);
  Alcotest.(check bool) "and it is the true slope" true
    (Float.abs (robust.Lm.params.(0) -. 2.0) < 1e-6);
  let again = Lm.fit_robust ~restarts:20 ~f ~xs ~ys ~init () in
  Alcotest.(check bool) "restarts are seed-deterministic" true (robust = again)

let test_fit_robust_all_starts_non_finite () =
  let f _ _ = Float.nan in
  let xs = Array.init 4 (fun i -> [| float_of_int i |]) in
  let ys = Array.make 4 1.0 in
  Alcotest.(check bool) "hopeless model raises Non_finite" true
    (match Lm.fit_robust ~restarts:2 ~f ~xs ~ys ~init:[| 1.0 |] () with
    | _ -> false
    | exception Lm.Non_finite _ -> true)

(* --- fitted-model domain enforcement -------------------------------------- *)

let small_fitted =
  lazy
    (let config = Config.make ~size_bytes:(4 * 1024) ~assoc:2 ~block_bytes:64 () in
     Fitted_cache.characterize_and_fit ~vth_steps:2 ~tox_steps:2
       (Cache_model.make Tech.bptm65 config))

let test_out_of_domain () =
  let fitted = Lazy.force small_fitted in
  let vth_lo, vth_hi = Fitted_cache.vth_range fitted in
  let tox_lo, tox_hi = Fitted_cache.tox_range fitted in
  (* evaluating on the fitted box (including its corners) is fine *)
  List.iter
    (fun (vth, tox) ->
      Alcotest.(check bool)
        (Printf.sprintf "in-domain eval at (%.2f, %.2e)" vth tox)
        true
        (Float.is_finite
           (Fitted_cache.leak_of fitted Component.Array_sense (Component.knob ~vth ~tox))))
    [ (vth_lo, tox_lo); (vth_hi, tox_hi); ((vth_lo +. vth_hi) /. 2.0, tox_lo) ];
  List.iter
    (fun (label, knob) ->
      match Fitted_cache.leak_of fitted Component.Array_sense knob with
      | _ -> Alcotest.fail (label ^ " should be out of domain")
      | exception Fault.Fault f ->
        Alcotest.(check bool)
          (label ^ " raises Out_of_domain")
          true
          (f.Fault.kind = Fault.Out_of_domain && f.Fault.stage = "model.eval"))
    [
      ("vth below range", Component.knob ~vth:(vth_lo -. 0.05) ~tox:tox_lo);
      ("vth above range", Component.knob ~vth:(vth_hi +. 0.05) ~tox:tox_lo);
      ("tox above range", Component.knob ~vth:vth_lo ~tox:(tox_hi +. Units.angstrom 1.0));
    ];
  Alcotest.(check bool) "delay_of checks the domain too" true
    (match
       Fitted_cache.delay_of fitted Component.Array_sense
         (Component.knob ~vth:(vth_hi +. 0.05) ~tox:tox_lo)
     with
    | _ -> false
    | exception Fault.Fault f -> f.Fault.kind = Fault.Out_of_domain)

let suite =
  [
    Alcotest.test_case "fault kind names" `Quick test_kind_names;
    Alcotest.test_case "fault json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "of_exn classification" `Quick test_of_exn_classification;
    Alcotest.test_case "fault log canonical order" `Quick test_fault_log_canonical_order;
    Alcotest.test_case "faultpoint spec parsing" `Quick test_spec_parsing;
    Alcotest.test_case "faultpoint arm semantics" `Quick test_spec_arm_semantics;
    Alcotest.test_case "faultpoint env configuration" `Quick test_env_configuration;
    Alcotest.test_case "injection is key-deterministic" `Quick test_injection_determinism;
    Alcotest.test_case "injection arms" `Quick test_injection_arms;
    Alcotest.test_case "pool partial results" `Quick test_pool_partial_results;
    Alcotest.test_case "sweep records typed faults" `Quick test_sweep_result_records_faults;
    Alcotest.test_case "injected faults never hang the pool" `Quick
      test_injected_faults_never_hang_pool;
    Alcotest.test_case "injected fault never poisons the memo" `Quick
      test_injected_fault_never_poisons_memo;
    Alcotest.test_case "run_many_result partial + byte-identical" `Quick
      test_run_many_result_partial;
    Alcotest.test_case "run_many fail-fast re-raises" `Quick test_run_many_fail_fast_raises;
    Alcotest.test_case "lm rejects non-finite inputs" `Quick test_lm_rejects_non_finite_inputs;
    Alcotest.test_case "fit_robust healthy fit unchanged" `Quick
      test_fit_robust_healthy_unchanged;
    Alcotest.test_case "fit_robust recovers from a bad start" `Quick
      test_fit_robust_recovers_from_bad_start;
    Alcotest.test_case "fit_robust hopeless model raises" `Quick
      test_fit_robust_all_starts_non_finite;
    Alcotest.test_case "fitted models enforce their domain" `Slow test_out_of_domain;
  ]
