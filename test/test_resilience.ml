(* Resilience suite: checkpoint journal (roundtrip, corruption chaos,
   sweep integration), deterministic retry (counters, backoff purity),
   and cooperative deadlines (budget tokens, pool watchdog).

   The journal, retry policy, deadline default and fault log are
   process-wide, so every test that arms one disarms it in a
   [Fun.protect] finally — the rest of the binary must run with the
   resilience layer quiescent. *)

module Fault = Nmcache_engine.Fault
module Faultpoint = Nmcache_engine.Faultpoint
module Checkpoint = Nmcache_engine.Checkpoint
module Retry = Nmcache_engine.Retry
module Deadline = Nmcache_engine.Deadline
module Metrics = Nmcache_engine.Metrics
module Pool = Nmcache_engine.Pool
module Task = Nmcache_engine.Task
module Sweep = Nmcache_engine.Sweep

(* tests must not really sleep; the backoff schedule is tested as a
   pure function, so dropping the sleeps loses nothing *)
let () = Retry.set_sleep (fun _ -> ())

let tmp_counter = ref 0

let tmpdir () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ppck-test-%d-%d" (Unix.getpid ()) !tmp_counter)

let with_journal ~dir ~resume f =
  let j = Checkpoint.open_ ~dir ~resume in
  Fun.protect ~finally:(fun () -> Checkpoint.close j) (fun () -> f j)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* --- CRC and journal roundtrip --------------------------------------- *)

let test_crc32_vector () =
  (* the canonical IEEE 802.3 check value *)
  Alcotest.(check int32) "crc32(123456789)" 0xCBF43926l (Checkpoint.crc32 "123456789");
  Alcotest.(check bool) "crc distinguishes" true
    (Checkpoint.crc32 "abc" <> Checkpoint.crc32 "abd")

let test_roundtrip () =
  let dir = tmpdir () in
  with_journal ~dir ~resume:false (fun j ->
      Checkpoint.store j ~key:"a" 11;
      Checkpoint.store j ~key:"b" 22;
      Checkpoint.store j ~key:"c" 33;
      (* duplicate store is a no-op, not a second record *)
      Checkpoint.store j ~key:"a" 99;
      Alcotest.(check int) "appended" 3 (Checkpoint.appended j);
      Alcotest.(check int) "entries" 3 (Checkpoint.entries j));
  with_journal ~dir ~resume:true (fun j ->
      Alcotest.(check int) "replayed" 3 (Checkpoint.replayed j);
      Alcotest.(check bool) "no dropped tail" false (Checkpoint.dropped_tail j);
      Alcotest.(check (option int)) "a" (Some 11) (Checkpoint.lookup j ~key:"a");
      Alcotest.(check (option int)) "b" (Some 22) (Checkpoint.lookup j ~key:"b");
      Alcotest.(check (option int)) "c" (Some 33) (Checkpoint.lookup j ~key:"c");
      Alcotest.(check (option int)) "missing" None (Checkpoint.lookup j ~key:"z");
      Alcotest.(check int) "served" 3 (Checkpoint.served j));
  (* resume:false starts over: the old journal is not consulted *)
  with_journal ~dir ~resume:false (fun j ->
      Alcotest.(check int) "fresh ignores journal" 0 (Checkpoint.replayed j))

(* --- corruption chaos ------------------------------------------------ *)

let seeded_dir entries =
  let dir = tmpdir () in
  with_journal ~dir ~resume:false (fun j ->
      List.iter (fun (k, v) -> Checkpoint.store j ~key:k (v : string)) entries);
  (dir, Filename.concat dir Checkpoint.journal_name)

let test_truncated_tail () =
  let dir, path = seeded_dir [ ("k1", "v1"); ("k2", "v2"); ("k3", "v3") ] in
  let bytes = read_file path in
  (* chop into the last record: replay must keep k1/k2, drop k3 *)
  write_file path (String.sub bytes 0 (String.length bytes - 3));
  with_journal ~dir ~resume:true (fun j ->
      Alcotest.(check int) "last good records kept" 2 (Checkpoint.replayed j);
      Alcotest.(check bool) "tail dropped" true (Checkpoint.dropped_tail j);
      Alcotest.(check (option string)) "good slot served" (Some "v2")
        (Checkpoint.lookup j ~key:"k2");
      Alcotest.(check (option string)) "corrupt slot never served" None
        (Checkpoint.lookup j ~key:"k3");
      (* the truncated journal extends cleanly *)
      Checkpoint.store j ~key:"k3" "v3'");
  with_journal ~dir ~resume:true (fun j ->
      Alcotest.(check int) "extended journal replays whole" 3 (Checkpoint.replayed j);
      Alcotest.(check bool) "no dropped tail after repair" false (Checkpoint.dropped_tail j);
      Alcotest.(check (option string)) "recomputed slot" (Some "v3'")
        (Checkpoint.lookup j ~key:"k3"))

let test_garbled_record () =
  let dir, path = seeded_dir [ ("k1", "v1"); ("k2", "v2") ] in
  let bytes = Bytes.of_string (read_file path) in
  (* flip a bit near the end: the CRC of the last record no longer
     matches, so replay stops after k1 *)
  let i = Bytes.length bytes - 1 in
  Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0xFF));
  write_file path (Bytes.to_string bytes);
  with_journal ~dir ~resume:true (fun j ->
      Alcotest.(check int) "replay stops at bad crc" 1 (Checkpoint.replayed j);
      Alcotest.(check bool) "tail dropped" true (Checkpoint.dropped_tail j);
      Alcotest.(check (option string)) "garbled slot never served" None
        (Checkpoint.lookup j ~key:"k2"))

let test_empty_and_foreign_journals () =
  (* zero-byte file: fresh start, not an error *)
  let dir = tmpdir () in
  let path = Filename.concat dir Checkpoint.journal_name in
  Unix.mkdir dir 0o755;
  write_file path "";
  with_journal ~dir ~resume:true (fun j ->
      Alcotest.(check int) "empty file replays nothing" 0 (Checkpoint.replayed j);
      Checkpoint.store j ~key:"k" "v");
  with_journal ~dir ~resume:true (fun j ->
      Alcotest.(check int) "restarted journal works" 1 (Checkpoint.replayed j));
  (* foreign header: also a fresh start *)
  let dir2 = tmpdir () in
  let path2 = Filename.concat dir2 Checkpoint.journal_name in
  Unix.mkdir dir2 0o755;
  write_file path2 "NOTAJRNLgarbage bytes";
  with_journal ~dir:dir2 ~resume:true (fun j ->
      Alcotest.(check int) "foreign header replays nothing" 0 (Checkpoint.replayed j));
  ignore path

(* --- sweep integration ----------------------------------------------- *)

let test_sweep_resume () =
  let dir = tmpdir () in
  let calls = Atomic.make 0 in
  let task =
    Task.make ~name:"sq" ~key:string_of_int (fun x ->
        Atomic.incr calls;
        x * x)
  in
  let run ?(n = 8) ~resume ~jobs () =
    let j = Checkpoint.open_ ~dir ~resume in
    Checkpoint.set_active (Some j);
    Fun.protect
      ~finally:(fun () ->
        Checkpoint.set_active None;
        Checkpoint.close j)
      (fun () ->
        (Sweep.map_array ~pool:(Pool.create ~jobs) task (Array.init n Fun.id), j))
  in
  (* "crash" after half the sweep: only the first four slots ran *)
  let _, j0 = run ~n:4 ~resume:false ~jobs:1 () in
  Alcotest.(check int) "partial run computed 4" 4 (Atomic.get calls);
  Alcotest.(check int) "partial run journaled 4" 4 (Checkpoint.appended j0);
  (* resume completes the rest without recomputing the journaled slots *)
  let r1, j1 = run ~resume:true ~jobs:1 () in
  Alcotest.(check int) "resume computed only the tail" 8 (Atomic.get calls);
  Alcotest.(check int) "resume replayed 4" 4 (Checkpoint.replayed j1);
  Alcotest.(check int) "resume appended 4" 4 (Checkpoint.appended j1);
  (* a parallel resume serves everything and matches exactly *)
  let r2, j2 = run ~resume:true ~jobs:4 () in
  Alcotest.(check int) "full resume computed nothing" 8 (Atomic.get calls);
  Alcotest.(check int) "full resume replayed all" 8 (Checkpoint.replayed j2);
  Alcotest.(check int) "full resume appended none" 0 (Checkpoint.appended j2);
  Alcotest.(check (array int)) "results identical across jobs/resume" r1 r2;
  Alcotest.(check (array int)) "results correct" (Array.init 8 (fun i -> i * i)) r2

let test_sweep_result_journals_only_successes () =
  let dir = tmpdir () in
  let task =
    Task.make ~name:"flaky" ~key:string_of_int (fun x ->
        if x = 2 then Fault.error ~kind:Fault.Crashed ~stage:"flaky" "boom";
        x * 10)
  in
  Fun.protect ~finally:Fault.reset @@ fun () ->
  let j = Checkpoint.open_ ~dir ~resume:false in
  Checkpoint.set_active (Some j);
  let results =
    Fun.protect
      ~finally:(fun () ->
        Checkpoint.set_active None;
        Checkpoint.close j)
      (fun () ->
        Sweep.map_array_result ~pool:Pool.sequential task (Array.init 4 Fun.id))
  in
  Alcotest.(check int) "three successes journaled" 3 (Checkpoint.appended j);
  Alcotest.(check bool) "successful slot journaled under its key" true
    (Checkpoint.mem j ~key:"flaky\x001");
  Alcotest.(check bool) "faulted slot not journaled" false
    (Checkpoint.mem j ~key:"flaky\x002");
  (match results.(2) with
  | Error f -> Alcotest.(check bool) "slot faulted" true (f.Fault.kind = Fault.Crashed)
  | Ok _ -> Alcotest.fail "slot 2 should have faulted")

(* --- retry ------------------------------------------------------------ *)

let test_retry_recovers () =
  let c = Metrics.counter_value in
  let a0 = c "retry.attempts" and r0 = c "retry.recovered" in
  let calls = ref 0 in
  let v =
    Retry.run ~stage:"t" ~key:"k" (fun ~attempt ~last:_ ->
        incr calls;
        if attempt < 3 then Fault.error ~kind:Fault.Injected ~stage:"t" "transient";
        7)
  in
  Alcotest.(check int) "value" 7 v;
  Alcotest.(check int) "three attempts" 3 !calls;
  Alcotest.(check int) "attempts counted" 2 (c "retry.attempts" - a0);
  Alcotest.(check int) "recovery counted" 1 (c "retry.recovered" - r0)

let test_retry_exhausts () =
  let c = Metrics.counter_value in
  let e0 = c "retry.exhausted" in
  let calls = ref 0 in
  (match
     Retry.run ~stage:"t" ~key:"k2" (fun ~attempt:_ ~last:_ ->
         incr calls;
         Fault.error ~kind:Fault.Injected ~stage:"t" "permanent")
   with
  | (_ : int) -> Alcotest.fail "should have raised"
  | exception Fault.Fault f ->
    Alcotest.(check bool) "fault propagates" true (f.Fault.kind = Fault.Injected));
  Alcotest.(check int) "budget honoured" (Retry.default_policy.Retry.max_attempts) !calls;
  Alcotest.(check int) "exhaustion counted" 1 (c "retry.exhausted" - e0)

let test_retry_skips_deterministic_kinds () =
  let calls = ref 0 in
  (match
     Retry.run ~stage:"t" ~key:"k3" (fun ~attempt:_ ~last:_ ->
         incr calls;
         Fault.error ~kind:Fault.Singular_system ~stage:"t" "deterministic")
   with
  | (_ : int) -> Alcotest.fail "should have raised"
  | exception Fault.Fault _ -> ());
  Alcotest.(check int) "no retry for deterministic kinds" 1 !calls

let test_retry_with_faultpoint_key_arm () =
  (* a Key arm is transient by design: it fires on attempt 1 only, so
     the retry boundary recovers it without recording a casualty *)
  (match Faultpoint.configure "spin=k1" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Fun.protect
    ~finally:(fun () ->
      Faultpoint.clear ();
      Fault.reset ())
    (fun () ->
      let calls = ref 0 in
      let v =
        Retry.run ~stage:"spin" ~key:"k1" (fun ~attempt ~last:_ ->
            incr calls;
            Faultpoint.hit ~attempt ~point:"spin" ~key:"k1" ();
            42)
      in
      Alcotest.(check int) "recovered on attempt 2" 2 !calls;
      Alcotest.(check int) "value" 42 v)

let test_faultpoint_attempt_semantics () =
  (match Faultpoint.configure "p=k1,q,r:1.0,seed:7" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Fun.protect ~finally:Faultpoint.clear (fun () ->
      Alcotest.(check bool) "key arm fires attempt 1" true
        (Faultpoint.should_fire ~attempt:1 ~point:"p" ~key:"k1" ());
      Alcotest.(check bool) "key arm is transient" false
        (Faultpoint.should_fire ~attempt:2 ~point:"p" ~key:"k1" ());
      Alcotest.(check bool) "always arm fires attempt 1" true
        (Faultpoint.should_fire ~attempt:1 ~point:"q" ~key:"any" ());
      Alcotest.(check bool) "always arm is permanent" true
        (Faultpoint.should_fire ~attempt:2 ~point:"q" ~key:"any" ());
      Alcotest.(check bool) "p=1 prob arm fires every attempt" true
        (Faultpoint.should_fire ~attempt:3 ~point:"r" ~key:"any" ()))

let backoff_pure_prop =
  (* the schedule is a pure function of (seed, stage, key, attempt),
     bounded by the jitter envelope around the capped exponential *)
  QCheck.Test.make ~count:300
    ~name:"retry backoff is pure and inside the jitter envelope"
    QCheck.(
      quad small_printable_string small_printable_string (int_range 1 8)
        (int_range 0 100_000))
    (fun (stage, key, attempt, seedi) ->
      let p = Retry.default_policy in
      let seed = Int64.of_int seedi in
      let d1 = Retry.backoff_s p ~seed ~stage ~key ~attempt in
      let d2 = Retry.backoff_s p ~seed ~stage ~key ~attempt in
      let capped =
        Float.min p.Retry.max_delay_s
          (p.Retry.base_delay_s *. (2.0 ** float_of_int (attempt - 1)))
      in
      d1 = d2
      && d1 >= capped *. (1.0 -. p.Retry.jitter) -. 1e-12
      && d1 <= capped *. (1.0 +. p.Retry.jitter) +. 1e-12)

let test_retry_policy_validation () =
  (match Retry.set_max_attempts 0 with
  | () -> Alcotest.fail "max_attempts 0 accepted"
  | exception Invalid_argument _ -> ());
  Retry.set_max_attempts 5;
  Fun.protect ~finally:Retry.reset (fun () ->
      Alcotest.(check int) "override sticks" 5 (Retry.policy ()).Retry.max_attempts)

(* --- deadlines -------------------------------------------------------- *)

let test_deadline_budget_zero_fires () =
  match
    Deadline.with_budget ~budget_s:0.0 (fun () ->
        Deadline.poll ~stage:"spin";
        `Survived)
  with
  | `Survived -> Alcotest.fail "budget 0 should fire on first poll"
  | exception Fault.Fault f ->
    Alcotest.(check bool) "timed_out" true (f.Fault.kind = Fault.Timed_out);
    Alcotest.(check string) "stage" "spin" f.Fault.stage;
    (* the detail names the budget, never elapsed time: byte-stable *)
    Alcotest.(check string) "deterministic detail"
      "exceeded the 0s kernel budget" f.Fault.detail

let test_deadline_unarmed_is_nop () =
  Deadline.poll ~stage:"anything";
  Alcotest.(check bool) "not armed" false (Deadline.armed ());
  Alcotest.(check bool) "not expired" false (Deadline.expired ())

let test_deadline_restores_token () =
  Deadline.with_budget ~budget_s:1000.0 (fun () ->
      (match
         Deadline.with_budget ~budget_s:0.0 (fun () -> Deadline.poll ~stage:"inner")
       with
      | () -> Alcotest.fail "inner budget should fire"
      | exception Fault.Fault _ -> ());
      (* the enclosing token is restored: polling is safe again *)
      Deadline.poll ~stage:"outer";
      Alcotest.(check bool) "outer still armed" true (Deadline.armed ()));
  Alcotest.(check bool) "disarmed outside" false (Deadline.armed ())

let test_with_root_arms_default () =
  Deadline.set_default (Some 0.0);
  Fun.protect
    ~finally:(fun () -> Deadline.set_default None)
    (fun () ->
      (match Deadline.with_root (fun () -> Deadline.poll ~stage:"root") with
      | () -> Alcotest.fail "default budget should fire"
      | exception Fault.Fault f ->
        Alcotest.(check bool) "timed_out" true (f.Fault.kind = Fault.Timed_out));
      (* nested roots inherit the enclosing token instead of rearming *)
      Deadline.with_budget ~budget_s:1000.0 (fun () ->
          Deadline.with_root (fun () -> Deadline.poll ~stage:"nested"));
      (match Deadline.set_default (Some (-1.0)) with
      | () -> Alcotest.fail "negative budget accepted"
      | exception Invalid_argument _ -> ()))

let test_pool_watchdog_drains () =
  (* satellite (c): a kernel that never returns on its own — it only
     polls — must become four timed_out slots, and the pool must join
     (reaching the checks below proves it did) *)
  Deadline.set_default (Some 0.0);
  Fun.protect
    ~finally:(fun () ->
      Deadline.set_default None;
      Fault.reset ())
    (fun () ->
      let c0 = Metrics.counter_value "deadline.fired" in
      let task =
        Task.make ~name:"spin.forever" (fun (_ : int) ->
            while true do
              Deadline.poll ~stage:"spin.forever"
            done)
      in
      let results =
        Sweep.map_array_result ~pool:(Pool.create ~jobs:4) task (Array.init 4 Fun.id)
      in
      Alcotest.(check int) "all slots settled" 4 (Array.length results);
      Array.iter
        (function
          | Error f ->
            Alcotest.(check bool) "slot timed out" true (f.Fault.kind = Fault.Timed_out)
          | Ok () -> Alcotest.fail "spinning kernel returned")
        results;
      Alcotest.(check int) "watchdog fired per slot" 4
        (Metrics.counter_value "deadline.fired" - c0);
      Alcotest.(check int) "every casualty recorded" 4
        (List.length
           (List.filter
              (fun f -> f.Fault.kind = Fault.Timed_out)
              (Fault.recorded ()))))

(* Kill-during-write chaos gate for the atomic report path.  Unix.fork
   is unavailable once domains exist (earlier tests spawn pools), so
   the writer child is this same test binary re-executed with
   [kill_writer_env] set — test_main diverts into [writer_child_main]
   before Alcotest (and any domain) starts. *)
let kill_writer_env = "PPCACHE_TEST_KILL_WRITER"

(* a few hundred KB, so a mid-write kill is very likely to land inside
   the output loop *)
let big_report () =
  let module Json = Nmcache_engine.Json in
  Json.Obj
    [
      ( "rows",
        Json.List
          (List.init 20_000 (fun i ->
               Json.Obj [ ("i", Json.Int i); ("v", Json.Float (float_of_int i)) ])) );
    ]

let writer_child_main target : unit =
  let report = big_report () in
  while true do
    Nmcache_engine.Obs.write_json ~path:target report
  done

let test_kill_during_report_write () =
  (* a child process rewriting a big JSON report in a tight loop is
     SIGKILLed mid-flight; because writes go to FILE.tmp then rename,
     the target must always parse as complete JSON — never a
     truncated tail *)
  let module Json = Nmcache_engine.Json in
  let module Obs = Nmcache_engine.Obs in
  let dir = tmpdir () in
  Unix.mkdir dir 0o755;
  let target = Filename.concat dir "report.json" in
  (* one clean write so the target exists: the kill must never be able
     to destroy the last good report either *)
  Obs.write_json ~path:target (big_report ());
  let env =
    Array.append (Unix.environment ()) [| kill_writer_env ^ "=" ^ target |]
  in
  let child =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin Unix.stdout Unix.stderr
  in
  Unix.sleepf 0.15;
  Unix.kill child Sys.sigkill;
  ignore (Unix.waitpid [] child);
  Alcotest.(check bool) "target survives the kill" true (Sys.file_exists target);
  match Json.parse (read_file target) with
  | Ok j ->
    let rows = Option.get (Option.bind (Json.member "rows" j) Json.to_list) in
    Alcotest.(check int) "report complete, not truncated" 20_000 (List.length rows)
  | Error e -> Alcotest.failf "killed writer left corrupt report: %s" e

let suite =
  [
    Alcotest.test_case "checkpoint: crc32 test vector" `Quick test_crc32_vector;
    Alcotest.test_case "checkpoint: journal roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "checkpoint: truncated tail dropped and repaired" `Quick
      test_truncated_tail;
    Alcotest.test_case "checkpoint: garbled record stops replay" `Quick
      test_garbled_record;
    Alcotest.test_case "checkpoint: empty/foreign journals restart" `Quick
      test_empty_and_foreign_journals;
    Alcotest.test_case "checkpoint: sweep crash/resume recomputes only the tail"
      `Quick test_sweep_resume;
    Alcotest.test_case "checkpoint: result sweeps journal only successes" `Quick
      test_sweep_result_journals_only_successes;
    Alcotest.test_case "retry: transient fault recovered" `Quick test_retry_recovers;
    Alcotest.test_case "retry: budget exhaustion re-raises" `Quick test_retry_exhausts;
    Alcotest.test_case "retry: deterministic kinds fail fast" `Quick
      test_retry_skips_deterministic_kinds;
    Alcotest.test_case "retry: key-arm injection is transient" `Quick
      test_retry_with_faultpoint_key_arm;
    Alcotest.test_case "faultpoint: per-arm attempt semantics" `Quick
      test_faultpoint_attempt_semantics;
    Generators.to_alcotest backoff_pure_prop;
    Alcotest.test_case "retry: policy validation" `Quick test_retry_policy_validation;
    Alcotest.test_case "deadline: zero budget fires deterministically" `Quick
      test_deadline_budget_zero_fires;
    Alcotest.test_case "deadline: unarmed poll is a nop" `Quick
      test_deadline_unarmed_is_nop;
    Alcotest.test_case "deadline: nesting restores the token" `Quick
      test_deadline_restores_token;
    Alcotest.test_case "deadline: with_root arms the process default" `Quick
      test_with_root_arms_default;
    Alcotest.test_case "deadline: pool drains under a never-returning kernel" `Quick
      test_pool_watchdog_drains;
    Alcotest.test_case "obs: kill during report write leaves a parseable file" `Quick
      test_kill_during_report_write;
  ]
