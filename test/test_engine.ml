(* Tests for the execution engine: domain-pool determinism, memo-cache
   behaviour, trace accounting, and end-to-end parallel-vs-sequential
   byte identity for the paper pipelines. *)

module Engine = Nmcache_engine
module Pool = Nmcache_engine.Pool
module Memo = Nmcache_engine.Memo
module Task = Nmcache_engine.Task
module Sweep = Nmcache_engine.Sweep
module Trace = Nmcache_engine.Trace
module Executor = Nmcache_engine.Executor

(* --- pool --------------------------------------------------------------- *)

let test_pool_matches_sequential () =
  let input = Array.init 200 (fun i -> i) in
  let f i = (i * i) + 7 in
  let seq = Array.map f input in
  List.iter
    (fun jobs ->
      let par = Pool.map_array (Pool.create ~jobs) f input in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d equals sequential" jobs)
        seq par)
    [ 1; 2; 4; 8 ]

let test_pool_ordering_under_uneven_work () =
  (* skew the work so late indices finish first if scheduling leaked
     into the result order *)
  let input = Array.init 64 (fun i -> i) in
  let f i =
    let spin = if i < 4 then 200_000 else 10 in
    let acc = ref 0 in
    for k = 1 to spin do
      acc := (!acc + k) mod 9973
    done;
    (i, !acc)
  in
  let seq = Pool.map_array Pool.sequential f input in
  let par = Pool.map_array (Pool.create ~jobs:4) f input in
  Alcotest.(check (array (pair int int))) "order is input order" seq par

let test_pool_exception_propagates () =
  let input = Array.init 32 (fun i -> i) in
  Alcotest.check_raises "kernel failure re-raised" (Failure "kernel 13") (fun () ->
      ignore
        (Pool.map_array (Pool.create ~jobs:4)
           (fun i -> if i = 13 then failwith "kernel 13" else i)
           input))

let test_pool_nested_degrades () =
  let inner () =
    Pool.map_array (Pool.create ~jobs:4) (fun i -> i + 1) (Array.init 8 Fun.id)
  in
  let outer =
    Pool.map_array (Pool.create ~jobs:2)
      (fun _ -> Array.fold_left ( + ) 0 (inner ()))
      (Array.init 4 Fun.id)
  in
  Alcotest.(check (array int)) "nested sweeps still correct" (Array.make 4 36) outer

let test_pool_validation () =
  Alcotest.(check bool) "jobs=0 rejected" true
    (try
       ignore (Pool.create ~jobs:0);
       false
     with Invalid_argument _ -> true)

(* --- memo --------------------------------------------------------------- *)

let test_memo_hits () =
  Trace.reset ();
  let memo : int Memo.t = Memo.create ~name:"test.memo" () in
  let computed = ref 0 in
  let get k =
    Memo.find_or_compute memo k (fun () ->
        incr computed;
        String.length k)
  in
  Alcotest.(check int) "first compute" 3 (get "abc");
  Alcotest.(check int) "second is a hit" 3 (get "abc");
  Alcotest.(check int) "distinct key computes" 2 (get "xy");
  Alcotest.(check int) "computed twice" 2 !computed;
  Alcotest.(check (pair int int)) "hit/miss counters" (1, 2) (Memo.stats memo);
  Alcotest.(check int) "two entries" 2 (Memo.length memo);
  Memo.clear memo;
  Alcotest.(check int) "cleared" 0 (Memo.length memo)

let test_memo_parallel_shared () =
  let memo : int Memo.t = Memo.create ~name:"test.memo-par" () in
  let results =
    Pool.map_array (Pool.create ~jobs:4)
      (fun i -> Memo.find_or_compute memo (string_of_int (i mod 3)) (fun () -> i mod 3))
      (Array.init 64 Fun.id)
  in
  Array.iteri
    (fun i v -> Alcotest.(check int) "value matches key" (i mod 3) v)
    results;
  Alcotest.(check int) "at most three entries" 3 (Memo.length memo)

let test_memo_inflight_dedup () =
  (* four domains all asking for the same slow key must trigger exactly
     one computation: the others block until the value settles *)
  let memo : int Memo.t = Memo.create ~name:"test.memo-dedup" () in
  let computed = Atomic.make 0 in
  let slow () =
    Atomic.incr computed;
    Unix.sleepf 0.05;
    42
  in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> Memo.find_or_compute memo "k" slow))
  in
  List.iter
    (fun d -> Alcotest.(check int) "settled value" 42 (Domain.join d))
    domains;
  Alcotest.(check int) "computed exactly once" 1 (Atomic.get computed)

let test_memo_exception_clears_pending () =
  (* a failing compute must drop its Pending marker and wake waiters, so
     a queued domain retries the compute instead of blocking forever *)
  let memo : int Memo.t = Memo.create ~name:"test.memo-exn" () in
  let attempts = Atomic.make 0 in
  let release = Atomic.make false in
  let compute () =
    if Atomic.fetch_and_add attempts 1 = 0 then begin
      (* first compute: hold the Pending slot until released, then fail *)
      while not (Atomic.get release) do
        Domain.cpu_relax ()
      done;
      failwith "compute failed"
    end
    else 42
  in
  let first =
    Domain.spawn (fun () ->
        try
          ignore (Memo.find_or_compute memo "k" compute);
          false
        with Failure _ -> true)
  in
  (* wait until the first compute owns the Pending marker, then queue a
     waiter on the same key and let the compute fail under it *)
  while Atomic.get attempts = 0 do
    Domain.cpu_relax ()
  done;
  let waiter = Domain.spawn (fun () -> Memo.find_or_compute memo "k" compute) in
  Unix.sleepf 0.02;
  Atomic.set release true;
  Alcotest.(check bool) "first compute raised to its caller" true (Domain.join first);
  Alcotest.(check int) "waiter retried and succeeded" 42 (Domain.join waiter);
  Alcotest.(check int) "exactly two computes ran" 2 (Atomic.get attempts);
  Alcotest.(check int) "retry's value settled" 42
    (Memo.find_or_compute memo "k" (fun () -> 0))

(* --- trace --------------------------------------------------------------- *)

let test_trace_summary_smoke () =
  Trace.reset ();
  let task = Task.make ~name:"test.stage" (fun i -> i * 2) in
  let out = Sweep.map_array ~pool:(Pool.create ~jobs:2) task (Array.init 10 Fun.id) in
  Alcotest.(check int) "sweep result" 18 out.(9);
  ignore (Memo.find_or_compute (Memo.create ~name:"test.cache" ()) "k" (fun () -> 1));
  let s = Trace.summary () in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "stage listed" true (contains "test.stage");
  Alcotest.(check bool) "task count listed" true (contains "10");
  Alcotest.(check bool) "cache listed" true (contains "test.cache");
  Alcotest.(check bool) "speedup column" true (contains "speedup");
  let st = List.find (fun (st : Trace.stage) -> st.Trace.name = "test.stage") (Trace.stages ()) in
  Alcotest.(check int) "one call" 1 st.Trace.calls;
  Alcotest.(check int) "ten tasks" 10 st.Trace.tasks;
  Trace.reset ();
  Alcotest.(check string) "reset empties the summary" "" (Trace.summary ())

(* --- executor ------------------------------------------------------------- *)

let test_executor_with_jobs () =
  let before = Executor.get_jobs () in
  Executor.with_jobs 3 (fun () ->
      Alcotest.(check int) "temporarily 3" 3 (Executor.get_jobs ()));
  Alcotest.(check int) "restored" before (Executor.get_jobs ())

(* --- end-to-end determinism ------------------------------------------------ *)

let ctx = lazy (Core.Context.quick ())

let render_experiment id =
  let e = Option.get (Core.Experiments.find id) in
  match Core.Experiments.run_many (Lazy.force ctx) [ e ] with
  | [ (_, artefacts) ] -> Core.Report.render artefacts
  | _ -> Alcotest.fail "run_many shape"

let test_parallel_byte_identical id () =
  let seq = Executor.with_jobs 1 (fun () -> render_experiment id) in
  (* drop every memoised intermediate so the parallel run recomputes *)
  Core.Context.clear_memo ();
  Nmcache_workload.Missrate.clear_cache ();
  let par = Executor.with_jobs 4 (fun () -> render_experiment id) in
  Alcotest.(check bool) (id ^ ": --jobs 4 matches sequential bytes") true
    (String.equal seq par)

let suite =
  [
    Alcotest.test_case "pool matches sequential" `Quick test_pool_matches_sequential;
    Alcotest.test_case "pool preserves order" `Quick test_pool_ordering_under_uneven_work;
    Alcotest.test_case "pool exception propagates" `Quick test_pool_exception_propagates;
    Alcotest.test_case "nested pools degrade safely" `Quick test_pool_nested_degrades;
    Alcotest.test_case "pool validation" `Quick test_pool_validation;
    Alcotest.test_case "memo hit/miss accounting" `Quick test_memo_hits;
    Alcotest.test_case "memo shared across domains" `Quick test_memo_parallel_shared;
    Alcotest.test_case "memo dedups in-flight computes" `Quick test_memo_inflight_dedup;
    Alcotest.test_case "memo exception clears pending" `Quick
      test_memo_exception_clears_pending;
    Alcotest.test_case "trace summary smoke" `Quick test_trace_summary_smoke;
    Alcotest.test_case "executor with_jobs" `Quick test_executor_with_jobs;
    Alcotest.test_case "schemes parallel == sequential" `Slow
      (test_parallel_byte_identical "schemes");
    Alcotest.test_case "l2sweep parallel == sequential" `Slow
      (test_parallel_byte_identical "l2sweep");
  ]
