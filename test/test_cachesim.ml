(* Tests for the architectural cache simulator. *)

module Cache = Nmcache_cachesim.Cache
module Hierarchy = Nmcache_cachesim.Hierarchy
module Replacement = Nmcache_cachesim.Replacement
module Stats = Nmcache_cachesim.Stats
module Address = Nmcache_cachesim.Address
module Rng = Nmcache_numerics.Rng

let kb n = n * 1024

let make ?(size = kb 1) ?(assoc = 2) ?(block = 64) ?(policy = Replacement.Lru) () =
  Cache.create ~size_bytes:size ~assoc ~block_bytes:block ~policy ()

(* --- address arithmetic ------------------------------------------------ *)

let test_address () =
  Alcotest.(check int) "block" 2 (Address.block_of 128 ~block_bytes:64);
  Alcotest.(check int) "set" 2 (Address.set_of 128 ~block_bytes:64 ~sets:8);
  Alcotest.(check int) "tag" 0 (Address.tag_of 128 ~block_bytes:64 ~sets:8);
  Alcotest.(check int) "tag nonzero" 1 (Address.tag_of (64 * 8 + 128) ~block_bytes:64 ~sets:8);
  Alcotest.(check int) "roundtrip" 640 (Address.of_block 10 ~block_bytes:64);
  Alcotest.check_raises "log2 invalid" (Invalid_argument "Address.log2: not a power of two")
    (fun () -> ignore (Address.log2 48))

(* --- basic behaviour ---------------------------------------------------- *)

let test_cold_then_hit () =
  let c = make () in
  let o1 = Cache.access c 0 ~write:false in
  Alcotest.(check bool) "first access misses" false o1.Cache.hit;
  let o2 = Cache.access c 0 ~write:false in
  Alcotest.(check bool) "second access hits" true o2.Cache.hit;
  let o3 = Cache.access c 32 ~write:false in
  Alcotest.(check bool) "same block hits" true o3.Cache.hit

let test_stats_consistency () =
  let c = make () in
  let rng = Rng.create ~seed:3L in
  for _ = 1 to 10_000 do
    ignore (Cache.access c (64 * Rng.int rng ~bound:512) ~write:(Rng.bool rng))
  done;
  let s = Cache.stats c in
  Alcotest.(check int) "hits + misses = accesses" s.Stats.accesses
    (s.Stats.hits + s.Stats.misses);
  Alcotest.(check int) "reads + writes = accesses" s.Stats.accesses
    (s.Stats.read_accesses + s.Stats.write_accesses);
  Alcotest.(check bool) "evictions <= misses" true (s.Stats.evictions <= s.Stats.misses);
  Alcotest.(check bool) "writebacks <= evictions" true
    (s.Stats.writebacks <= s.Stats.evictions)

let test_lru_eviction_order () =
  (* 2-way set; touch A, B (set full), touch A again, then C evicts B *)
  let c = make ~size:(2 * 64) ~assoc:2 ~block:64 () in
  (* all addresses map to the single set *)
  let a = 0 and b = 64 and d = 128 in
  ignore (Cache.access c a ~write:false);
  ignore (Cache.access c b ~write:false);
  ignore (Cache.access c a ~write:false);
  let o = Cache.access c d ~write:false in
  Alcotest.(check bool) "miss inserting C" false o.Cache.hit;
  Alcotest.(check (option int)) "LRU victim is B" (Some 1) o.Cache.victim;
  Alcotest.(check bool) "A still resident" true (Cache.contains c a);
  Alcotest.(check bool) "B evicted" false (Cache.contains c b)

let test_fifo_vs_lru () =
  (* FIFO evicts the oldest insertion even if recently used *)
  let f = make ~size:(2 * 64) ~assoc:2 ~block:64 ~policy:Replacement.Fifo () in
  let a = 0 and b = 64 and d = 128 in
  ignore (Cache.access f a ~write:false);
  ignore (Cache.access f b ~write:false);
  ignore (Cache.access f a ~write:false);
  (* re-touch A: FIFO ignores it *)
  let o = Cache.access f d ~write:false in
  Alcotest.(check (option int)) "FIFO victim is A" (Some 0) o.Cache.victim

let test_cyclic_lru_thrash () =
  (* loop of N+1 blocks over an N-block LRU cache: steady state misses
     on every access (the classic LRU pathological case) *)
  let blocks = 16 in
  let c = make ~size:(blocks * 64) ~assoc:blocks ~block:64 () in
  (* one set of [blocks] ways *)
  let loop = blocks + 1 in
  for _ = 1 to 3 do
    for i = 0 to loop - 1 do
      ignore (Cache.access c (i * 64 * blocks) ~write:false)
      (* stride keeps them in set 0 *)
    done
  done;
  Cache.reset_stats c;
  for _ = 1 to 5 do
    for i = 0 to loop - 1 do
      ignore (Cache.access c (i * 64 * blocks) ~write:false)
    done
  done;
  let s = Cache.stats c in
  Alcotest.(check int) "all misses" s.Stats.accesses s.Stats.misses

let test_cyclic_fits () =
  (* loop of N blocks over an N-block cache: steady state all hits *)
  let blocks = 16 in
  let c = make ~size:(blocks * 64) ~assoc:blocks ~block:64 () in
  for _ = 1 to 2 do
    for i = 0 to blocks - 1 do
      ignore (Cache.access c (i * 64 * blocks) ~write:false)
    done
  done;
  Cache.reset_stats c;
  for i = 0 to blocks - 1 do
    ignore (Cache.access c (i * 64 * blocks) ~write:false)
  done;
  let s = Cache.stats c in
  Alcotest.(check int) "all hits" s.Stats.accesses s.Stats.hits

let test_writeback_dirty () =
  let c = make ~size:(2 * 64) ~assoc:2 ~block:64 () in
  ignore (Cache.access c 0 ~write:true);
  ignore (Cache.access c 64 ~write:false);
  let o = Cache.access c 128 ~write:false in
  (* victim is block 0 which is dirty *)
  Alcotest.(check bool) "victim dirty" true o.Cache.victim_dirty;
  Alcotest.(check int) "writeback counted" 1 (Cache.stats c).Stats.writebacks

let test_clean_eviction () =
  let c = make ~size:(2 * 64) ~assoc:2 ~block:64 () in
  ignore (Cache.access c 0 ~write:false);
  ignore (Cache.access c 64 ~write:false);
  let o = Cache.access c 128 ~write:false in
  Alcotest.(check bool) "clean victim" false o.Cache.victim_dirty

let test_plru_basic () =
  let c = make ~size:(4 * 64) ~assoc:4 ~block:64 ~policy:Replacement.Plru () in
  (* fill the set, re-access everything, then insert: the victim must be
     a valid resident block, and a re-touched block should survive *)
  for i = 0 to 3 do
    ignore (Cache.access c (i * 64 * 4) ~write:false)
  done;
  ignore (Cache.access c 0 ~write:false);
  let o = Cache.access c (4 * 64 * 4) ~write:false in
  Alcotest.(check bool) "eviction happened" true (o.Cache.victim <> None);
  Alcotest.(check bool) "most recent survives PLRU" true (Cache.contains c 0)

let test_random_policy_reproducible () =
  let run () =
    let c = make ~size:(4 * 64) ~assoc:4 ~block:64 ~policy:(Replacement.Random 7) () in
    let rng = Rng.create ~seed:1L in
    let trace = Array.init 2000 (fun _ -> 64 * Rng.int rng ~bound:64) in
    Array.iter (fun a -> ignore (Cache.access c a ~write:false)) trace;
    (Cache.stats c).Stats.misses
  in
  Alcotest.(check int) "same seed, same misses" (run ()) (run ())

let test_valid_blocks () =
  let c = make ~size:(4 * 64) ~assoc:4 ~block:64 () in
  ignore (Cache.access c 0 ~write:false);
  ignore (Cache.access c 256 ~write:false);
  let blocks = List.sort compare (Cache.valid_blocks c) in
  Alcotest.(check (list int)) "resident blocks" [ 0; 4 ] blocks

let test_cache_validation () =
  let expect f =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expect (fun () -> make ~size:1000 ());
  expect (fun () -> make ~block:20 ());
  expect (fun () -> make ~size:64 ~assoc:2 ~block:64 ());
  expect (fun () -> make ~assoc:3 ~policy:Replacement.Plru ())

(* --- hierarchy ------------------------------------------------------------ *)

let test_hierarchy_flow () =
  let l1 = make ~size:(kb 1) ~assoc:2 () in
  let l2 = make ~size:(kb 8) ~assoc:4 () in
  let h = Hierarchy.create ~l1 ~l2 in
  let o1 = Hierarchy.access h 0 ~write:false in
  Alcotest.(check bool) "cold: miss everywhere" true
    ((not o1.Hierarchy.l1_hit) && (not o1.Hierarchy.l2_hit) && o1.Hierarchy.memory_access);
  let o2 = Hierarchy.access h 0 ~write:false in
  Alcotest.(check bool) "L1 hit on repeat" true o2.Hierarchy.l1_hit;
  Alcotest.(check int) "one memory read" 1 (Hierarchy.memory_reads h)

let test_hierarchy_l2_catches_l1_evictions () =
  let l1 = make ~size:(2 * 64) ~assoc:2 () in
  let l2 = make ~size:(kb 8) ~assoc:4 () in
  let h = Hierarchy.create ~l1 ~l2 in
  (* touch 3 conflicting blocks: third evicts first from L1, but L2 keeps it *)
  ignore (Hierarchy.access h 0 ~write:false);
  ignore (Hierarchy.access h 64 ~write:false);
  ignore (Hierarchy.access h 128 ~write:false);
  let o = Hierarchy.access h 0 ~write:false in
  Alcotest.(check bool) "L1 miss, L2 hit" true ((not o.Hierarchy.l1_hit) && o.Hierarchy.l2_hit)

let test_hierarchy_writeback_to_memory () =
  let l1 = make ~size:(64) ~assoc:1 () in
  let l2 = make ~size:(128) ~assoc:1 ~block:64 () in
  let h = Hierarchy.create ~l1 ~l2 in
  (* dirty a block, push it out of both levels *)
  ignore (Hierarchy.access h 0 ~write:true);
  ignore (Hierarchy.access h 64 ~write:true);
  ignore (Hierarchy.access h 128 ~write:true);
  ignore (Hierarchy.access h 256 ~write:true);
  Alcotest.(check bool) "memory writes happened" true (Hierarchy.memory_writes h > 0)

let test_hierarchy_validation () =
  let l1 = make ~size:(kb 4) ~block:64 () in
  let l2_small = make ~size:(kb 1) ~block:64 () in
  Alcotest.(check bool) "L2 smaller than L1 rejected" true
    (try
       ignore (Hierarchy.create ~l1 ~l2:l2_small);
       false
     with Invalid_argument _ -> true);
  let l2_other_block = make ~size:(kb 8) ~block:32 () in
  Alcotest.(check bool) "block mismatch rejected" true
    (try
       ignore (Hierarchy.create ~l1 ~l2:l2_other_block);
       false
     with Invalid_argument _ -> true)

let test_miss_rates () =
  let l1 = make ~size:(kb 1) ~assoc:2 () in
  let l2 = make ~size:(kb 8) ~assoc:4 () in
  let h = Hierarchy.create ~l1 ~l2 in
  let rng = Rng.create ~seed:4L in
  for _ = 1 to 20_000 do
    ignore (Hierarchy.access h (64 * Rng.int rng ~bound:256) ~write:false)
  done;
  let m1 = Hierarchy.l1_miss_rate h in
  let m2g = Hierarchy.l2_global_miss_rate h in
  Alcotest.(check bool) "0 < m1 < 1" true (m1 > 0.0 && m1 < 1.0);
  Alcotest.(check bool) "global <= local picture consistent" true (m2g <= m1)

(* A reference LRU model (association list) against the real cache. *)
let prop_lru_against_reference =
  QCheck.Test.make ~count:30 ~name:"set-associative LRU vs reference model"
    Generators.trace_seed_arb
    (fun seed ->
      let assoc = 4 and sets = 8 and block = 64 in
      let c =
        Cache.create ~size_bytes:(assoc * sets * block) ~assoc ~block_bytes:block
          ~policy:Replacement.Lru ()
      in
      (* reference: per-set list of blocks, most recent first *)
      let reference = Array.make sets [] in
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let ok = ref true in
      for _ = 1 to 2000 do
        let block_no = Rng.int rng ~bound:128 in
        let addr = block_no * block in
        let set = block_no land (sets - 1) in
        let expected_hit = List.mem block_no reference.(set) in
        let lst = List.filter (fun b -> b <> block_no) reference.(set) in
        let lst = block_no :: lst in
        reference.(set) <-
          (if List.length lst > assoc then List.filteri (fun i _ -> i < assoc) lst else lst);
        let o = Cache.access c addr ~write:false in
        if o.Cache.hit <> expected_hit then ok := false
      done;
      !ok)

(* Random valid geometries (shared generator): the counters must stay
   internally consistent whatever the shape. *)
let prop_stats_bookkeeping =
  QCheck.Test.make ~count:30 ~name:"stats bookkeeping on random geometries"
    QCheck.(pair Generators.geometry_arb Generators.trace_seed_arb)
    (fun ((size, assoc, block), seed) ->
      let c =
        Cache.create ~size_bytes:size ~assoc ~block_bytes:block
          ~policy:Replacement.Lru ()
      in
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let n = 2_000 in
      for _ = 1 to n do
        ignore
          (Cache.access c
             (block * Rng.int rng ~bound:4096)
             ~write:(Rng.int rng ~bound:4 = 0))
      done;
      let st = Cache.stats c in
      st.Stats.accesses = n
      && st.Stats.hits + st.Stats.misses = n
      && st.Stats.read_accesses + st.Stats.write_accesses = n
      && st.Stats.cold_misses <= st.Stats.misses
      && st.Stats.evictions <= st.Stats.misses)

let suite =
  [
    Alcotest.test_case "address arithmetic" `Quick test_address;
    Alcotest.test_case "cold miss then hit" `Quick test_cold_then_hit;
    Alcotest.test_case "stats consistency" `Quick test_stats_consistency;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "FIFO vs LRU" `Quick test_fifo_vs_lru;
    Alcotest.test_case "cyclic LRU thrash" `Quick test_cyclic_lru_thrash;
    Alcotest.test_case "cyclic fits" `Quick test_cyclic_fits;
    Alcotest.test_case "dirty write-back" `Quick test_writeback_dirty;
    Alcotest.test_case "clean eviction" `Quick test_clean_eviction;
    Alcotest.test_case "PLRU basics" `Quick test_plru_basic;
    Alcotest.test_case "random policy reproducible" `Quick test_random_policy_reproducible;
    Alcotest.test_case "valid blocks" `Quick test_valid_blocks;
    Alcotest.test_case "cache validation" `Quick test_cache_validation;
    Alcotest.test_case "hierarchy flow" `Quick test_hierarchy_flow;
    Alcotest.test_case "L2 catches L1 evictions" `Quick test_hierarchy_l2_catches_l1_evictions;
    Alcotest.test_case "write-back to memory" `Quick test_hierarchy_writeback_to_memory;
    Alcotest.test_case "hierarchy validation" `Quick test_hierarchy_validation;
    Alcotest.test_case "miss rates" `Quick test_miss_rates;
  ]
  @ List.map Generators.to_alcotest [ prop_lru_against_reference; prop_stats_bookkeeping ]
