(* Unit + property tests for the device models: the physics that the
   whole study rests on.  Monotonicities here are the load-bearing
   invariants — the optimiser's correctness assumes them. *)

module Units = Nmcache_physics.Units
module Tech = Nmcache_device.Tech
module Mosfet = Nmcache_device.Mosfet
module Leakage = Nmcache_device.Leakage
module Drive = Nmcache_device.Drive
module Corner = Nmcache_device.Corner

let tech = Tech.bptm65
let w = Units.um 1.0

let nmos ~vth ~tox_a = Mosfet.nmos tech ~w ~vth ~tox:(Units.angstrom tox_a)

let knob_arb = Generators.knob_arb

let test_subthreshold_swing () =
  (* per decade of subthreshold current: n vT ln10 *)
  let swing = Leakage.subthreshold_swing tech in
  Alcotest.(check bool) "swing in 75..100 mV/dec at 300K" true
    (swing > 0.075 && swing < 0.100);
  (* verify the model actually honours it: raising vth by one swing
     drops current 10x *)
  let d1 = nmos ~vth:0.25 ~tox_a:12.0 in
  let d2 = nmos ~vth:(0.25 +. swing) ~tox_a:12.0 in
  let ratio = Leakage.subthreshold_off tech d1 /. Leakage.subthreshold_off tech d2 in
  Alcotest.(check bool)
    (Printf.sprintf "decade per swing (got %.2f)" ratio)
    true
    (Float.abs (ratio -. 10.0) < 0.01)

let test_subthreshold_magnitudes () =
  let low = Leakage.subthreshold_off tech (nmos ~vth:0.2 ~tox_a:12.0) in
  let high = Leakage.subthreshold_off tech (nmos ~vth:0.5 ~tox_a:12.0) in
  Alcotest.(check bool) "low-Vth in 0.05..10 uA/um" true
    (low > Units.ua 0.05 && low < Units.ua 10.0);
  Alcotest.(check bool) "high-Vth in 0.005..10 nA/um" true
    (high > Units.na 0.005 && high < Units.na 10.0)

let test_gate_leakage_slope () =
  (* ~one decade per ~1.1 A of oxide *)
  let thin = Leakage.gate_on tech (nmos ~vth:0.3 ~tox_a:10.0) in
  let thick = Leakage.gate_on tech (nmos ~vth:0.3 ~tox_a:14.0) in
  let decades = Float.log10 (thin /. thick) in
  Alcotest.(check bool)
    (Printf.sprintf "3..5 decades over 4A (got %.2f)" decades)
    true
    (decades > 3.0 && decades < 5.0)

let test_gate_surpasses_subthreshold_at_thin_tox () =
  (* the paper's premise: at aggressive oxide, gate leakage overtakes
     subthreshold (here at mid/high Vth) *)
  let d = nmos ~vth:0.4 ~tox_a:10.0 in
  Alcotest.(check bool) "gate > sub at (0.4V, 10A)" true
    (Leakage.gate_on tech d > Leakage.subthreshold_off tech d);
  let d' = nmos ~vth:0.4 ~tox_a:14.0 in
  Alcotest.(check bool) "gate < sub at (0.4V, 14A)" true
    (Leakage.gate_on tech d' < Leakage.subthreshold_off tech d')

let test_pmos_weaker () =
  let n = Mosfet.nmos tech ~w ~vth:0.3 ~tox:(Units.angstrom 12.0) in
  let p = Mosfet.pmos tech ~w ~vth:0.3 ~tox:(Units.angstrom 12.0) in
  Alcotest.(check bool) "pmos drives less" true
    (Drive.on_current tech p < Drive.on_current tech n);
  Alcotest.(check bool) "pmos tunnels less" true
    (Leakage.gate_on tech p < Leakage.gate_on tech n)

let test_on_current_magnitude () =
  let i = Drive.on_current tech (nmos ~vth:0.25 ~tox_a:12.0) in
  Alcotest.(check bool) "Ion ~ 0.3..3 mA/um" true (i > 0.3e-3 && i < 3e-3)

let test_temperature_raises_subthreshold () =
  let hot = Tech.with_temperature tech ~temp_k:358.0 in
  let d = nmos ~vth:0.35 ~tox_a:12.0 in
  Alcotest.(check bool) "hotter leaks more" true
    (Leakage.subthreshold tech d ~vgs:0.0 ~vds:1.0 ~vsb:0.0
    < Leakage.subthreshold hot d ~vgs:0.0 ~vds:1.0 ~vsb:0.0)

let test_scaling_rule () =
  let l10 = Tech.l_drawn tech ~tox:(Units.angstrom 10.0) in
  let l12 = Tech.l_drawn tech ~tox:(Units.angstrom 12.0) in
  let l14 = Tech.l_drawn tech ~tox:(Units.angstrom 14.0) in
  Alcotest.(check bool) "L grows with Tox" true (l10 < l12 && l12 < l14);
  let expected = tech.Tech.l_drawn_ref *. ((14.0 /. 12.0) ** tech.Tech.l_scaling_exponent) in
  Alcotest.(check bool) "scaling exponent honoured" true
    (Float.abs (l14 -. expected) /. expected < 1e-12)

let test_knob_validation () =
  Alcotest.(check bool) "vth below range rejected" true
    (try
       ignore (nmos ~vth:0.1 ~tox_a:12.0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "tox above range rejected" true
    (try
       ignore (nmos ~vth:0.3 ~tox_a:15.0);
       false
     with Invalid_argument _ -> true)

let test_fo4_range () =
  let fast = Drive.fo4_delay tech ~vth:0.2 ~tox:(Units.angstrom 10.0) in
  let slow = Drive.fo4_delay tech ~vth:0.5 ~tox:(Units.angstrom 14.0) in
  Alcotest.(check bool) "FO4 in 3..60 ps" true (fast > Units.ps 3.0 && slow < Units.ps 60.0);
  Alcotest.(check bool) "slow corner slower" true (slow > fast)

let test_corners () =
  Alcotest.(check (option string)) "parse ff" (Some "FF")
    (Option.map Corner.name (Corner.of_name "ff"));
  let v, t = Corner.apply Corner.Slow ~vth:0.3 ~tox:(Units.angstrom 12.0) in
  Alcotest.(check bool) "slow corner shifts up" true (v > 0.3 && t > Units.angstrom 12.0);
  let v', t' = Corner.apply Corner.Typical ~vth:0.3 ~tox:(Units.angstrom 12.0) in
  Alcotest.(check bool) "typical is identity" true (v' = 0.3 && t' = Units.angstrom 12.0)

(* --- monotonicity properties ----------------------------------------- *)

let prop_sub_decreasing_in_vth =
  QCheck.Test.make ~count:200 ~name:"subthreshold decreasing in Vth" knob_arb
    (fun (vth, tox_a) ->
      QCheck.assume (vth +. 0.01 <= tech.Tech.vth_max);
      Leakage.subthreshold_off tech (nmos ~vth:(vth +. 0.01) ~tox_a)
      < Leakage.subthreshold_off tech (nmos ~vth ~tox_a))

let prop_gate_decreasing_in_tox =
  QCheck.Test.make ~count:200 ~name:"gate leakage decreasing in Tox" knob_arb
    (fun (vth, tox_a) ->
      QCheck.assume (tox_a +. 0.1 <= 14.0);
      Leakage.gate_on tech (nmos ~vth ~tox_a:(tox_a +. 0.1))
      < Leakage.gate_on tech (nmos ~vth ~tox_a))

let prop_total_off_decreasing_in_both =
  QCheck.Test.make ~count:200 ~name:"total off-state leakage decreasing in both knobs"
    knob_arb (fun (vth, tox_a) ->
      QCheck.assume (vth +. 0.02 <= tech.Tech.vth_max && tox_a +. 0.2 <= 14.0);
      Leakage.off_state_total tech (nmos ~vth:(vth +. 0.02) ~tox_a:(tox_a +. 0.2))
      < Leakage.off_state_total tech (nmos ~vth ~tox_a))

let prop_ion_decreasing_in_vth =
  QCheck.Test.make ~count:200 ~name:"on-current decreasing in Vth" knob_arb
    (fun (vth, tox_a) ->
      QCheck.assume (vth +. 0.01 <= tech.Tech.vth_max);
      Drive.on_current tech (nmos ~vth:(vth +. 0.01) ~tox_a)
      < Drive.on_current tech (nmos ~vth ~tox_a))

let prop_fo4_increasing =
  QCheck.Test.make ~count:200 ~name:"FO4 increasing in both knobs" knob_arb
    (fun (vth, tox_a) ->
      QCheck.assume (vth +. 0.02 <= tech.Tech.vth_max && tox_a +. 0.2 <= 14.0);
      Drive.fo4_delay tech ~vth:(vth +. 0.02) ~tox:(Units.angstrom (tox_a +. 0.2))
      > Drive.fo4_delay tech ~vth ~tox:(Units.angstrom tox_a))

let qcheck =
  List.map Generators.to_alcotest
    [
      prop_sub_decreasing_in_vth;
      prop_gate_decreasing_in_tox;
      prop_total_off_decreasing_in_both;
      prop_ion_decreasing_in_vth;
      prop_fo4_increasing;
    ]

let suite =
  [
    Alcotest.test_case "subthreshold swing" `Quick test_subthreshold_swing;
    Alcotest.test_case "subthreshold magnitudes" `Quick test_subthreshold_magnitudes;
    Alcotest.test_case "gate leakage slope" `Quick test_gate_leakage_slope;
    Alcotest.test_case "gate overtakes sub at thin Tox" `Quick
      test_gate_surpasses_subthreshold_at_thin_tox;
    Alcotest.test_case "pmos weaker than nmos" `Quick test_pmos_weaker;
    Alcotest.test_case "on-current magnitude" `Quick test_on_current_magnitude;
    Alcotest.test_case "temperature raises subthreshold" `Quick
      test_temperature_raises_subthreshold;
    Alcotest.test_case "Tox scaling rule" `Quick test_scaling_rule;
    Alcotest.test_case "knob range validation" `Quick test_knob_validation;
    Alcotest.test_case "FO4 sanity" `Quick test_fo4_range;
    Alcotest.test_case "process corners" `Quick test_corners;
  ]
  @ qcheck
