(* Stream suite: the chunk-equivalence harness for the streaming trace
   engine.

   The load-bearing property is byte-identity: for every source and
   every chunk size, streamed analysis / replay / profiling /
   simulation must equal the materialised-trace results exactly — the
   golden matrix pins it for the headline workloads at chunk sizes
   {1, 7, 4096, whole}, and a QCheck property re-samples (workload,
   chunk) pairs.  The PPTRC01 chaos set mirrors the journal tests in
   test_resilience: round-trip, torn tail, mid-file corruption,
   foreign files.  The kill-and-resume gate SIGKILLs a checkpointed
   streamed simulation mid-chunk in a re-exec'd child and requires the
   resumed run to finish byte-identically. *)

module Trace = Nmcache_cachesim.Trace
module Stream_trace = Nmcache_cachesim.Stream_trace
module Cache = Nmcache_cachesim.Cache
module Hierarchy = Nmcache_cachesim.Hierarchy
module Replacement = Nmcache_cachesim.Replacement
module Stats = Nmcache_cachesim.Stats
module Gen = Nmcache_workload.Gen
module Access = Nmcache_workload.Access
module Registry = Nmcache_workload.Registry
module Profile = Nmcache_workload.Profile
module Missrate = Nmcache_workload.Missrate
module Wstream = Nmcache_workload.Stream
module Checkpoint = Nmcache_engine.Checkpoint
module Executor = Nmcache_engine.Executor

let tmp_counter = ref 0

let tmpdir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ppstream-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let entries_of workload n =
  Array.map
    (fun (a : Access.t) -> { Trace.addr = a.Access.addr; write = a.Access.write })
    (Gen.take (Registry.build workload) n)

let make_hierarchy () =
  let l1 =
    Cache.create ~size_bytes:(4 * 1024) ~assoc:4 ~block_bytes:64
      ~policy:Replacement.Lru ()
  in
  let l2 =
    Cache.create ~size_bytes:(32 * 1024) ~assoc:8 ~block_bytes:64
      ~policy:Replacement.Lru ()
  in
  Hierarchy.create ~l1 ~l2

let hierarchy_stats h = (Cache.stats (Hierarchy.l1 h), Cache.stats (Hierarchy.l2 h))

let collect s =
  let acc = ref [] in
  let (_ : int) = Stream_trace.iter s (fun e -> acc := e :: !acc) in
  Array.of_list (List.rev !acc)

let record_to ~path ~name ~chunk_size entries =
  let i = ref 0 in
  Stream_trace.write_file ~path ~name ~chunk_size
    ~next:(fun () ->
      let e = entries.(!i) in
      incr i;
      e)
    ~n:(Array.length entries) ()

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

(* --- golden identity matrix -------------------------------------------- *)

let test_golden_identity_matrix () =
  List.iter
    (fun workload ->
      let n = 20_000 in
      let entries = entries_of workload n in
      let trace = Trace.of_entries entries in
      let ref_stats = Trace.analyze trace in
      let ref_h = make_hierarchy () in
      Trace.replay_hierarchy trace ref_h;
      let ref_pair = hierarchy_stats ref_h in
      List.iter
        (fun chunk_size ->
          let stream () = Stream_trace.of_trace ~chunk_size ~name:workload trace in
          Alcotest.(check bool)
            (Printf.sprintf "%s chunk %d: streamed analyze identical" workload
               chunk_size)
            true
            (Stream_trace.analyze (stream ()) = ref_stats);
          let h, count = Stream_trace.replay_hierarchy (stream ()) (make_hierarchy ()) in
          Alcotest.(check int)
            (Printf.sprintf "%s chunk %d: every entry streamed" workload chunk_size)
            n count;
          Alcotest.(check bool)
            (Printf.sprintf "%s chunk %d: streamed replay stats identical" workload
               chunk_size)
            true
            (hierarchy_stats h = ref_pair))
        [ 1; 7; 4096; n ])
    Registry.headline

let test_producer_matches_take () =
  List.iter
    (fun workload ->
      let n = 5_000 in
      let expected = entries_of workload n in
      let got = collect (Wstream.of_workload ~chunk_size:64 ~workload ~n ()) in
      Alcotest.(check bool)
        (workload ^ ": wrapped workload streams the Gen.take entries")
        true (got = expected))
    Registry.headline

(* --- profile and simulate equality ------------------------------------- *)

let check_profile_eq ~what (a : Profile.t) (b : Profile.t) =
  Alcotest.(check int) (what ^ ": n") a.Profile.n b.Profile.n;
  Alcotest.(check int) (what ^ ": accesses") a.Profile.accesses b.Profile.accesses;
  Alcotest.(check int) (what ^ ": cold") a.Profile.cold b.Profile.cold;
  Alcotest.(check bool) (what ^ ": dists") true (a.Profile.dists = b.Profile.dists);
  Alcotest.(check bool) (what ^ ": counts") true (a.Profile.counts = b.Profile.counts);
  Alcotest.(check bool) (what ^ ": suffix") true (a.Profile.suffix = b.Profile.suffix)

let test_profile_stream_equality () =
  let workload = "tpcc" and n = 20_000 in
  List.iter
    (fun chunk_size ->
      let raw_ref = Profile.raw ~workload ~n () in
      let raw_s =
        Profile.of_stream ~kind:Profile.Raw
          (Wstream.of_workload ~chunk_size ~workload ~n ())
      in
      check_profile_eq ~what:(Printf.sprintf "raw chunk %d" chunk_size) raw_s raw_ref;
      let l1_size = 8 * 1024 in
      let filt_ref = Profile.l1_filtered ~workload ~l1_size ~n () in
      let filt_s =
        Profile.of_stream
          ~kind:(Profile.L1_filtered { l1_size; l1_assoc = 4 })
          (Wstream.of_workload ~chunk_size ~workload ~n ())
      in
      check_profile_eq ~what:(Printf.sprintf "filtered chunk %d" chunk_size) filt_s
        filt_ref;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "filtered chunk %d: l1 miss rate" chunk_size)
        filt_ref.Profile.l1_miss_rate filt_s.Profile.l1_miss_rate)
    [ 7; n ]

let test_simulate_stream_equality () =
  let workload = "specweb" and n = 20_000 in
  let l1_size = 8 * 1024 and l2_size = 64 * 1024 in
  let reference = Missrate.simulate ~workload ~l1_size ~l2_size ~n () in
  let streamed chunk_size =
    Missrate.simulate_stream
      ~stream:(Wstream.of_workload ~chunk_size ~workload ~n ())
      ~l1_size ~l2_size ()
  in
  List.iter
    (fun chunk_size ->
      Alcotest.(check bool)
        (Printf.sprintf "chunk %d: streamed point bitwise-equal" chunk_size)
        true
        (streamed chunk_size = reference))
    [ 1; 7; 4096; n ];
  (* the executor pool width must be invisible to the (sequential)
     streamed fold *)
  Executor.set_jobs 4;
  Fun.protect
    ~finally:(fun () -> Executor.set_jobs 1)
    (fun () ->
      Alcotest.(check bool) "jobs 4: streamed point bitwise-equal" true
        (streamed 512 = reference))

let chunk_invariance_prop =
  QCheck.Test.make ~name:"stream: chunk size never changes analyze/replay"
    ~count:25
    QCheck.(pair Generators.workload_arb (int_range 1 257))
    (fun (workload, chunk_size) ->
      let n = 3_000 in
      let entries = entries_of workload n in
      let trace = Trace.of_entries entries in
      let stream () = Stream_trace.of_trace ~chunk_size ~name:workload trace in
      let ref_h = make_hierarchy () in
      Trace.replay_hierarchy trace ref_h;
      let h, count = Stream_trace.replay_hierarchy (stream ()) (make_hierarchy ()) in
      Stream_trace.analyze (stream ()) = Trace.analyze trace
      && count = n
      && hierarchy_stats h = hierarchy_stats ref_h)

(* --- PPTRC01 chaos set -------------------------------------------------- *)

let test_pptrc_roundtrip () =
  let path = Filename.concat (tmpdir ()) "t.pptrc" in
  let n = 5_000 in
  let entries = entries_of "spec2000-mix" n in
  record_to ~path ~name:"spec2000-mix" ~chunk_size:257 entries;
  (* read back at an unrelated streaming grain *)
  let got = collect (Stream_trace.of_file ~chunk_size:31 path) in
  Alcotest.(check bool) "round-trip is entry-exact" true (got = entries);
  let info = Stream_trace.file_info path in
  Alcotest.(check string) "header name" "spec2000-mix" info.Stream_trace.fi_name;
  Alcotest.(check int) "header total" n info.Stream_trace.fi_total;
  Alcotest.(check int) "entries" n info.Stream_trace.fi_entries;
  Alcotest.(check int) "chunks" ((n + 256) / 257) info.Stream_trace.fi_chunks;
  Alcotest.(check int) "on-disk chunk" 257 info.Stream_trace.fi_chunk_size;
  Alcotest.(check bool) "no dropped tail" false info.Stream_trace.fi_dropped_tail

let test_pptrc_truncated_tail () =
  let path = Filename.concat (tmpdir ()) "t.pptrc" in
  let n = 1_000 in
  let entries = entries_of "tpcc" n in
  record_to ~path ~name:"tpcc" ~chunk_size:250 entries;
  let raw = read_file path in
  write_file path (String.sub raw 0 (String.length raw - 3));
  let info = Stream_trace.file_info path in
  Alcotest.(check bool) "torn tail detected" true info.Stream_trace.fi_dropped_tail;
  Alcotest.(check int) "last chunk dropped" 750 info.Stream_trace.fi_entries;
  Alcotest.(check int) "three chunks survive" 3 info.Stream_trace.fi_chunks;
  let got = collect (Stream_trace.of_file path) in
  Alcotest.(check bool) "surviving prefix is entry-exact" true
    (got = Array.sub entries 0 750)

let test_pptrc_corrupt_middle () =
  let path = Filename.concat (tmpdir ()) "t.pptrc" in
  let n = 1_000 in
  let entries = entries_of "specweb" n in
  record_to ~path ~name:"specweb" ~chunk_size:250 entries;
  let raw = read_file path in
  (* flip one byte mid-file: whatever record it lands in fails its CRC
     (or decode), and everything from that record on is dropped *)
  let pos = String.length raw / 2 in
  let garbled = Bytes.of_string raw in
  Bytes.set garbled pos (Char.chr (Char.code (Bytes.get garbled pos) lxor 0x5a));
  write_file path (Bytes.to_string garbled);
  let info = Stream_trace.file_info path in
  Alcotest.(check bool) "corruption detected" true info.Stream_trace.fi_dropped_tail;
  Alcotest.(check bool) "some entries dropped" true
    (info.Stream_trace.fi_entries < n);
  let got = collect (Stream_trace.of_file path) in
  Alcotest.(check int) "stream yields exactly the validated entries"
    info.Stream_trace.fi_entries (Array.length got);
  Alcotest.(check bool) "surviving prefix is entry-exact" true
    (got = Array.sub entries 0 (Array.length got))

let test_pptrc_foreign_files () =
  let dir = tmpdir () in
  let check_rejected what content =
    let path = Filename.concat dir (what ^ ".bin") in
    write_file path content;
    Alcotest.(check bool)
      (what ^ ": of_file raises Invalid_argument")
      true
      (raises_invalid (fun () -> Stream_trace.of_file path));
    Alcotest.(check bool)
      (what ^ ": file_info raises Invalid_argument")
      true
      (raises_invalid (fun () -> Stream_trace.file_info path))
  in
  check_rejected "empty" "";
  check_rejected "garbage" "definitely not a trace file";
  (* the checkpoint journal shares the CRC discipline but not the magic *)
  check_rejected "journal" (Checkpoint.magic ^ "tail");
  (* right magic, corrupt header *)
  let path = Filename.concat dir "corrupt-header.pptrc" in
  record_to ~path ~name:"tpcc" ~chunk_size:64 (entries_of "tpcc" 100);
  let raw = Bytes.of_string (read_file path) in
  let pos = String.length Stream_trace.magic + 6 in
  Bytes.set raw pos (Char.chr (Char.code (Bytes.get raw pos) lxor 0xff));
  write_file path (Bytes.to_string raw);
  Alcotest.(check bool) "corrupt header rejected" true
    (raises_invalid (fun () -> Stream_trace.of_file path))

(* --- defined empty-stream behaviour ------------------------------------- *)

let test_empty_stream () =
  let producer () () = Alcotest.fail "an empty stream must never pull" in
  let s () = Stream_trace.of_producer ~name:"none" ~n:0 producer in
  Alcotest.(check bool) "analyze returns zero_stats" true
    (Stream_trace.analyze (s ()) = Trace.zero_stats);
  let chunks = ref 0 in
  let (_ : int) =
    Stream_trace.fold_chunks (s ()) ~init:0 ~f:(fun acc ~index:_ _ ->
        incr chunks;
        acc)
  in
  Alcotest.(check int) "fold_chunks never calls f" 0 !chunks;
  (* an empty recording round-trips to an empty stream *)
  let path = Filename.concat (tmpdir ()) "empty.pptrc" in
  record_to ~path ~name:"none" ~chunk_size:16 [||];
  let info = Stream_trace.file_info path in
  Alcotest.(check int) "empty file: 0 entries" 0 info.Stream_trace.fi_entries;
  Alcotest.(check bool) "empty file: zero stats" true
    (Stream_trace.analyze (Stream_trace.of_file path) = Trace.zero_stats)

(* --- NDJSON pipe source -------------------------------------------------- *)

let with_fd path f =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> f fd)

let test_ndjson_source () =
  let dir = tmpdir () in
  let path = Filename.concat dir "t.ndjson" in
  (* CRLF line endings and blank lines are tolerated; write defaults
     to false *)
  write_file path
    "{\"addr\":0,\"write\":false}\r\n\n{\"addr\":64}\n{\"addr\":128,\"write\":true}\n";
  let got =
    with_fd path (fun fd ->
        collect (Stream_trace.of_ndjson_fd ~chunk_size:2 ~name:"pipe" fd))
  in
  Alcotest.(check bool) "three entries, CRLF and blanks skipped" true
    (got
    = [|
        { Trace.addr = 0; write = false };
        { Trace.addr = 64; write = false };
        { Trace.addr = 128; write = true };
      |]);
  let rejected what content =
    let path = Filename.concat dir (what ^ ".ndjson") in
    write_file path content;
    Alcotest.(check bool)
      (what ^ ": raises Invalid_argument")
      true
      (with_fd path (fun fd ->
           raises_invalid (fun () ->
               collect (Stream_trace.of_ndjson_fd ~name:"pipe" fd))))
  in
  rejected "malformed" "not json\n";
  rejected "negative-addr" "{\"addr\":-4}\n";
  rejected "missing-addr" "{\"write\":true}\n";
  rejected "bool-addr" "{\"addr\":true}\n"

(* --- checkpointed streaming -------------------------------------------- *)

let test_checkpoint_resume_in_process () =
  let dir = tmpdir () in
  let workload = "tpcc" and n = 8_000 in
  let l1_size = 4 * 1024 and l2_size = 32 * 1024 in
  let stream () = Wstream.of_workload ~chunk_size:500 ~workload ~n () in
  let run () =
    Missrate.simulate_stream ~stream:(stream ()) ~l1_size ~l2_size ()
  in
  let reference = run () in
  let with_journal ~resume f =
    let j = Checkpoint.open_ ~dir ~resume in
    Checkpoint.set_active (Some j);
    let r =
      Fun.protect
        ~finally:(fun () ->
          Checkpoint.set_active None;
          Checkpoint.close j)
        f
    in
    (r, j)
  in
  let first, j1 = with_journal ~resume:false run in
  Alcotest.(check bool) "journaled run equals plain run" true (first = reference);
  Alcotest.(check int) "one slot per chunk" (n / 500) (Checkpoint.appended j1);
  let second, j2 = with_journal ~resume:true run in
  Alcotest.(check bool) "resumed run equals plain run" true (second = reference);
  Alcotest.(check int) "every chunk served from the journal" (n / 500)
    (Checkpoint.served j2);
  Alcotest.(check int) "nothing recomputed" 0 (Checkpoint.appended j2);
  (* a different consumer geometry must miss every slot (salted keys) *)
  let third, j3 =
    with_journal ~resume:true (fun () ->
        Missrate.simulate_stream ~stream:(stream ()) ~l1_size ~l2_size:(64 * 1024) ())
  in
  Alcotest.(check bool) "different geometry computes fresh slots" true
    (Checkpoint.appended j3 = n / 500 && third <> reference)

(* --- kill-and-resume chaos gate ----------------------------------------- *)

(* Child mode: re-executed with [stream_child_env] set to
   "trace_file:ckpt_dir:out_file", run a checkpointed streamed
   simulation with a ~30 ms per-chunk handicap so a SIGKILL lands
   mid-run, then write the result line.  Must run before Alcotest so
   the child never spawns a domain. *)
let stream_child_env = "PPCACHE_TEST_STREAM_CHILD"

let stream_child_main spec : unit =
  match String.split_on_char ':' spec with
  | [ trace_file; ckpt_dir; out_file ] ->
    let j = Checkpoint.open_ ~dir:ckpt_dir ~resume:true in
    Checkpoint.set_active (Some j);
    let s = Stream_trace.of_file ~chunk_size:100 trace_file in
    let h, count =
      Stream_trace.resumable_fold ~salt:"chaos" s ~init:(make_hierarchy (), 0)
        ~f:(fun (h, c) ~index:_ entries ->
          Unix.sleepf 0.03;
          Array.iter
            (fun (e : Trace.entry) ->
              ignore (Hierarchy.access h e.Trace.addr ~write:e.Trace.write))
            entries;
          (h, c + Array.length entries))
    in
    let served = Checkpoint.served j in
    Checkpoint.set_active None;
    Checkpoint.close j;
    let oc = open_out_bin out_file in
    Printf.fprintf oc "%d %.9f %.9f\nserved %d\n" count (Hierarchy.l1_miss_rate h)
      (Hierarchy.l2_local_miss_rate h) served;
    close_out oc
  | _ -> failwith ("bad " ^ stream_child_env ^ " spec: " ^ spec)

let test_kill_and_resume_streaming () =
  let dir = tmpdir () in
  let trace_file = Filename.concat dir "t.pptrc" in
  let ckpt_dir = Filename.concat dir "ck" in
  let out_file = Filename.concat dir "out.txt" in
  let n = 4_000 in
  let entries = entries_of "spec2000-mix" n in
  record_to ~path:trace_file ~name:"spec2000-mix" ~chunk_size:100 entries;
  (* the uninterrupted reference, computed in process *)
  let expected =
    let h = make_hierarchy () in
    Trace.replay_hierarchy (Trace.of_entries entries) h;
    Printf.sprintf "%d %.9f %.9f" n (Hierarchy.l1_miss_rate h)
      (Hierarchy.l2_local_miss_rate h)
  in
  let env =
    Array.append (Unix.environment ())
      [|
        stream_child_env ^ "=" ^ trace_file ^ ":" ^ ckpt_dir ^ ":" ^ out_file;
      |]
  in
  let spawn () =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin Unix.stdout Unix.stderr
  in
  let child = spawn () in
  (* kill only once slots are demonstrably on disk — the per-chunk
     handicap (40 chunks x 30 ms) guarantees plenty of unsimulated
     tail remains *)
  let journal = Filename.concat ckpt_dir Checkpoint.journal_name in
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec await () =
    let progressed =
      try (Unix.stat journal).Unix.st_size > 256 with Unix.Unix_error _ -> false
    in
    if progressed then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "stream child journaled nothing within 30 s"
    else begin
      Unix.sleepf 0.01;
      await ()
    end
  in
  await ();
  Unix.kill child Sys.sigkill;
  ignore (Unix.waitpid [] child);
  Alcotest.(check bool) "child died mid-run (no result written)" true
    (not (Sys.file_exists out_file));
  (* resume: the relaunched child must serve the journaled chunks and
     finish with the uninterrupted run's exact numbers *)
  let child2 = spawn () in
  let _, status = Unix.waitpid [] child2 in
  Alcotest.(check bool) "resumed child exited cleanly" true
    (status = Unix.WEXITED 0);
  (match String.split_on_char '\n' (read_file out_file) with
  | result :: served_line :: _ ->
    Alcotest.(check string) "resumed run byte-identical to uninterrupted" expected
      result;
    let served =
      match String.split_on_char ' ' served_line with
      | [ "served"; k ] -> int_of_string k
      | _ -> Alcotest.fail ("bad served line: " ^ served_line)
    in
    Alcotest.(check bool) "resume served journaled chunks" true (served > 0);
    Alcotest.(check bool) "but not every chunk (the kill was mid-run)" true
      (served < n / 100)
  | _ -> Alcotest.fail "child wrote no parseable result")

(* --- suite --------------------------------------------------------------- *)

let suite =
  [
    Alcotest.test_case "golden matrix: streamed = materialised at chunk 1/7/4096/whole"
      `Quick test_golden_identity_matrix;
    Alcotest.test_case "wrapped workload streams Gen.take's entries" `Quick
      test_producer_matches_take;
    Alcotest.test_case "Profile.of_stream equals build field-for-field" `Quick
      test_profile_stream_equality;
    Alcotest.test_case "simulate_stream equals simulate bitwise (any chunk, any jobs)"
      `Quick test_simulate_stream_equality;
    Generators.to_alcotest chunk_invariance_prop;
    Alcotest.test_case "pptrc: round-trip is entry-exact" `Quick test_pptrc_roundtrip;
    Alcotest.test_case "pptrc: torn tail is dropped, prefix survives" `Quick
      test_pptrc_truncated_tail;
    Alcotest.test_case "pptrc: mid-file corruption drops the tail, never garbles"
      `Quick test_pptrc_corrupt_middle;
    Alcotest.test_case "pptrc: foreign and corrupt-headered files are rejected"
      `Quick test_pptrc_foreign_files;
    Alcotest.test_case "empty stream: defined zero stats, f never called" `Quick
      test_empty_stream;
    Alcotest.test_case "ndjson: pipe source parses, skips blanks, rejects garbage"
      `Quick test_ndjson_source;
    Alcotest.test_case "checkpoint: chunk slots resume byte-identically" `Quick
      test_checkpoint_resume_in_process;
    Alcotest.test_case "chaos: SIGKILL mid-chunk, resume byte-identical" `Quick
      test_kill_and_resume_streaming;
  ]
