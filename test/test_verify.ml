(* The verification subsystem: check atoms, fault boundaries, golden
   snapshot machinery, and a semantic smoke over the quick context.
   The full oracle/anchor battery runs in CI via `ppcache verify`;
   here we test the machinery itself on hermetic inputs. *)

module Check = Nmcache_verify.Check
module Golden = Nmcache_verify.Golden
module Anchors = Nmcache_verify.Anchors
module Oracles = Nmcache_verify.Oracles
module Fault = Nmcache_engine.Fault
module Json = Nmcache_engine.Json

(* --- Check ----------------------------------------------------------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0


let test_check_atoms () =
  Alcotest.(check bool) "pass passes" true (Check.passed (Check.pass ~name:"a" "d"));
  Alcotest.(check bool) "fail fails" false (Check.passed (Check.fail ~name:"a" "d"));
  Alcotest.(check bool) "check true" true (Check.passed (Check.check ~name:"a" true "d"));
  Alcotest.(check bool) "check false" false
    (Check.passed (Check.check ~name:"a" false "d"));
  Alcotest.(check bool) "all_passed" true
    (Check.all_passed [ Check.pass ~name:"a" ""; Check.pass ~name:"b" "" ]);
  Alcotest.(check bool) "all_passed spots failure" false
    (Check.all_passed [ Check.pass ~name:"a" ""; Check.fail ~name:"b" "" ])

let test_within () =
  Alcotest.(check bool) "equal passes" true
    (Check.passed (Check.within ~name:"w" ~value:1.0 ~reference:1.0 ~rel_tol:1e-12));
  Alcotest.(check bool) "inside tolerance" true
    (Check.passed (Check.within ~name:"w" ~value:1.009 ~reference:1.0 ~rel_tol:0.01));
  Alcotest.(check bool) "outside tolerance" false
    (Check.passed (Check.within ~name:"w" ~value:1.02 ~reference:1.0 ~rel_tol:0.01));
  Alcotest.(check bool) "nan fails" false
    (Check.passed (Check.within ~name:"w" ~value:Float.nan ~reference:1.0 ~rel_tol:0.5));
  Alcotest.(check bool) "inf fails" false
    (Check.passed
       (Check.within ~name:"w" ~value:Float.infinity ~reference:1.0 ~rel_tol:0.5));
  (* zero reference: scale floor keeps the test meaningful *)
  Alcotest.(check bool) "zero vs zero" true
    (Check.passed (Check.within ~name:"w" ~value:0.0 ~reference:0.0 ~rel_tol:1e-9))

let test_group_passthrough () =
  let checks = Check.group ~name:"g" (fun () -> [ Check.pass ~name:"inner" "fine" ]) in
  Alcotest.(check int) "one check" 1 (List.length checks);
  Alcotest.(check bool) "passed through" true (Check.all_passed checks)

let test_group_fault_boundary () =
  Fault.reset ();
  let checks = Check.group ~name:"boom" (fun () -> failwith "exploded") in
  (match checks with
  | [ c ] ->
    Alcotest.(check bool) "crashed, not passed" false (Check.passed c);
    Alcotest.(check string) "crash check name" "boom.crashed" c.Check.name;
    (match c.Check.status with
    | Check.Crashed f ->
      Alcotest.(check string) "fault stage" "verify.boom" f.Fault.stage
    | _ -> Alcotest.fail "expected Crashed status")
  | l -> Alcotest.failf "expected one crashed check, got %d" (List.length l));
  Alcotest.(check int) "fault recorded" 1 (List.length (Fault.recorded ()));
  Fault.reset ()

let test_render_shape () =
  let out =
    Check.render
      [ Check.pass ~name:"alpha" "ok detail"; Check.fail ~name:"beta.long-name" "bad" ]
  in
  Alcotest.(check bool) "has ok line" true
    (String.length out > 0 && String.sub out 0 5 = "ok   ");
  Alcotest.(check bool) "has FAIL marker" true
    (contains ~sub:"FAIL  beta.long-name" out);
  Alcotest.(check bool) "has summary" true
    (contains ~sub:"verify: 2 checks, 1 failed, 0 crashed" out)

let test_to_json () =
  Fault.reset ();
  let crashed = Check.group ~name:"g" (fun () -> failwith "x") in
  let json = Check.to_json (Check.pass ~name:"a" "d" :: crashed) in
  (match json with
  | Json.List [ Json.Obj first; Json.Obj second ] ->
    Alcotest.(check bool) "pass status" true
      (List.assoc "status" first = Json.String "pass");
    Alcotest.(check bool) "crashed status" true
      (List.assoc "status" second = Json.String "crashed");
    Alcotest.(check bool) "crash carries fault" true (List.mem_assoc "fault" second)
  | _ -> Alcotest.fail "unexpected JSON shape");
  (* the round trip must survive the engine's own parser *)
  (match Json.parse (Json.to_string json) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("rendered JSON must reparse: " ^ e));
  Fault.reset ()

(* --- Golden ---------------------------------------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "nmcache-golden" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

(* a synthetic case so golden-machinery tests stay hermetic and fast *)
let fake_case payload =
  { Golden.id = "fake"; describe = "synthetic"; render = (fun _ -> payload) }

let ctx_unused = Core.Context.quick ()

let test_golden_missing_snapshot () =
  with_temp_dir @@ fun dir ->
  let c = Golden.check ~dir ctx_unused (fake_case "hello\n") in
  Alcotest.(check bool) "missing snapshot fails" false (Check.passed c);
  Alcotest.(check bool) "mentions --update-golden" true
    (contains ~sub:"--update-golden" c.Check.detail)

let test_golden_roundtrip () =
  with_temp_dir @@ fun dir ->
  let case = fake_case "line one\nline two\n" in
  let u = Golden.update ~dir ctx_unused case in
  Alcotest.(check bool) "update passes" true (Check.passed u);
  Alcotest.(check bool) "first update reports a change" true
    (contains ~sub:"updated" u.Check.detail);
  let u2 = Golden.update ~dir ctx_unused case in
  Alcotest.(check bool) "second update is a no-op" true
    (contains ~sub:"unchanged" u2.Check.detail);
  Alcotest.(check bool) "byte-equal snapshot passes" true
    (Check.passed (Golden.check ~dir ctx_unused case))

let test_golden_divergence_diagnostic () =
  with_temp_dir @@ fun dir ->
  ignore (Golden.update ~dir ctx_unused (fake_case "line one\nline two\n"));
  let c = Golden.check ~dir ctx_unused (fake_case "line one\nline 2wo\n") in
  Alcotest.(check bool) "drift fails" false (Check.passed c);
  Alcotest.(check bool) "points at line 2" true
    (contains ~sub:"line 2, column 6" c.Check.detail)

let test_golden_cases_registered () =
  let ids = List.map (fun c -> c.Golden.id) Golden.cases in
  Alcotest.(check (list string)) "canonical cases" [ "fig1"; "schemes"; "l2sweep" ] ids

(* --- semantic smoke on the quick context ----------------------------- *)

(* The cheap end of the oracle/anchor battery: fit-residual oracle and
   the Figure-1 sensitivity anchor (both reuse the memoised quick
   characterisation).  The expensive members (scheme brute force,
   Mattson sweeps, L2 sizing) run in CI via `ppcache verify`. *)
let test_quick_semantic_smoke () =
  let ctx = Core.Context.quick () in
  let fit_checks = Oracles.fit ctx in
  Alcotest.(check bool) "fit oracle has checks" true (List.length fit_checks > 0);
  List.iter
    (fun (c : Check.t) ->
      Alcotest.(check bool) ("fit oracle: " ^ c.Check.name ^ " — " ^ c.Check.detail)
        true (Check.passed c))
    fit_checks;
  let sens = Anchors.sensitivity ctx in
  Alcotest.(check int) "two sensitivity anchors" 2 (List.length sens);
  List.iter
    (fun (c : Check.t) ->
      Alcotest.(check bool) ("anchor: " ^ c.Check.name ^ " — " ^ c.Check.detail) true
        (Check.passed c))
    sens

let suite =
  [
    Alcotest.test_case "check atoms" `Quick test_check_atoms;
    Alcotest.test_case "within tolerance" `Quick test_within;
    Alcotest.test_case "group passthrough" `Quick test_group_passthrough;
    Alcotest.test_case "group fault boundary" `Quick test_group_fault_boundary;
    Alcotest.test_case "render shape" `Quick test_render_shape;
    Alcotest.test_case "to_json" `Quick test_to_json;
    Alcotest.test_case "golden: missing snapshot" `Quick test_golden_missing_snapshot;
    Alcotest.test_case "golden: roundtrip" `Quick test_golden_roundtrip;
    Alcotest.test_case "golden: divergence diagnostic" `Quick
      test_golden_divergence_diagnostic;
    Alcotest.test_case "golden: canonical cases" `Quick test_golden_cases_registered;
    Alcotest.test_case "quick semantic smoke" `Slow test_quick_semantic_smoke;
  ]
