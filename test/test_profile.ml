(* Tests for the profile-once derivation layer: pinned seed-suite stats
   for the flat-array simulator, exactness and monotonicity of derived
   curves, grid traversal accounting, and memo-key hygiene. *)

module Cache = Nmcache_cachesim.Cache
module Hierarchy = Nmcache_cachesim.Hierarchy
module Intmap = Nmcache_cachesim.Intmap
module Mattson = Nmcache_cachesim.Mattson
module Replacement = Nmcache_cachesim.Replacement
module Stats = Nmcache_cachesim.Stats
module Metrics = Nmcache_engine.Metrics
module Gen = Nmcache_workload.Gen
module Access = Nmcache_workload.Access
module Registry = Nmcache_workload.Registry
module Missrate = Nmcache_workload.Missrate
module Profile = Nmcache_workload.Profile
module Rng = Nmcache_numerics.Rng

let kb n = n * 1024

(* --- flat-array simulator: pinned seed-suite stats ---------------------- *)

(* These numbers were captured from the pre-refactor (Hashtbl-based)
   simulator at seed 42; the shift/mask + Intmap hot loop must
   reproduce every one of them byte-for-byte. *)

let check_stats name (s : Stats.t) (acc, hits, misses, ra, wa, ev, wb, cold) =
  Alcotest.(check (list int))
    name
    [ acc; hits; misses; ra; wa; ev; wb; cold ]
    [
      s.Stats.accesses; s.Stats.hits; s.Stats.misses; s.Stats.read_accesses;
      s.Stats.write_accesses; s.Stats.evictions; s.Stats.writebacks;
      s.Stats.cold_misses;
    ]

let run_cache ~workload ~size ~assoc ~block ~policy ~n =
  let c = Cache.create ~size_bytes:size ~assoc ~block_bytes:block ~policy () in
  let g = Registry.build ~seed:42L workload in
  Gen.iter g n (fun a -> ignore (Cache.access c a.Access.addr ~write:a.Access.write));
  Cache.stats c

let test_pinned_single_level () =
  let n = 200_000 in
  check_stats "spec2000-mix 16K/4w lru"
    (run_cache ~workload:"spec2000-mix" ~size:(kb 16) ~assoc:4 ~block:64
       ~policy:Replacement.Lru ~n)
    (200000, 188025, 11975, 139955, 60045, 11719, 10882, 7814);
  check_stats "spec2000-mix 8K/2w fifo"
    (run_cache ~workload:"spec2000-mix" ~size:(kb 8) ~assoc:2 ~block:64
       ~policy:Replacement.Fifo ~n)
    (200000, 182067, 17933, 139955, 60045, 17805, 16383, 7814);
  check_stats "tpcc 16K/8w plru"
    (run_cache ~workload:"tpcc" ~size:(kb 16) ~assoc:8 ~block:64 ~policy:Replacement.Plru
       ~n)
    (200000, 180788, 19212, 131799, 68201, 18956, 17081, 10930);
  check_stats "specweb 4K/1w/32B lru"
    (run_cache ~workload:"specweb" ~size:(kb 4) ~assoc:1 ~block:32 ~policy:Replacement.Lru
       ~n)
    (200000, 139150, 60850, 187969, 12031, 60722, 10923, 23876);
  check_stats "tpcc 32K/4w random"
    (run_cache ~workload:"tpcc" ~size:(kb 32) ~assoc:4 ~block:64
       ~policy:(Replacement.Random 17) ~n)
    (200000, 183676, 16324, 131799, 68201, 15812, 14862, 10930)

let test_pinned_hierarchy () =
  let l1 = Cache.create ~size_bytes:(kb 16) ~assoc:4 ~block_bytes:64 ~policy:Replacement.Lru () in
  let l2 = Cache.create ~size_bytes:(kb 256) ~assoc:8 ~block_bytes:64 ~policy:Replacement.Lru () in
  let h = Hierarchy.create ~l1 ~l2 in
  let g = Registry.build ~seed:42L "spec2000-mix" in
  Gen.iter g 200_000 (fun a -> ignore (Hierarchy.access h a.Access.addr ~write:a.Access.write));
  check_stats "hierarchy L1" (Cache.stats l1)
    (200000, 188025, 11975, 139955, 60045, 11719, 10882, 7814);
  check_stats "hierarchy L2" (Cache.stats l2)
    (22857, 14569, 8288, 11975, 10882, 4196, 3901, 7814);
  Alcotest.(check int) "memory reads" 8288 (Hierarchy.memory_reads h);
  Alcotest.(check int) "memory writes" 3901 (Hierarchy.memory_writes h)

let test_pinned_mattson () =
  let m = Mattson.create ~block_bytes:64 () in
  let g = Registry.build ~seed:42L "tpcc" in
  Gen.iter g 100_000 (fun a -> Mattson.access m a.Access.addr);
  let hist = Mattson.histogram m in
  Alcotest.(check (list int)) "profiler digest"
    [ 100000; 5747; 5747; 927; 3162017; 18922; 9482; 5765 ]
    [
      Mattson.accesses m;
      Mattson.cold_misses m;
      Mattson.distinct_blocks m;
      List.length hist;
      List.fold_left (fun acc (d, c) -> acc + (d * c)) 0 hist;
      Mattson.misses_at m ~capacity_blocks:16;
      Mattson.misses_at m ~capacity_blocks:256;
      Mattson.misses_at m ~capacity_blocks:4096;
    ]

(* --- Intmap ------------------------------------------------------------- *)

let test_intmap_matches_hashtbl () =
  let im = Intmap.create ~initial_capacity:16 () in
  let ht = Hashtbl.create 16 in
  let rng = Rng.create ~seed:15L in
  for i = 1 to 20_000 do
    let k = Rng.int rng ~bound:4_000 in
    if i mod 5 = 0 then begin
      let fresh_im = Intmap.add_if_absent im k in
      let fresh_ht = not (Hashtbl.mem ht k) in
      if fresh_ht then Hashtbl.replace ht k 0;
      Alcotest.(check bool) "add_if_absent agrees" fresh_ht fresh_im
    end
    else begin
      Intmap.replace im k i;
      Hashtbl.replace ht k i
    end
  done;
  Alcotest.(check int) "length" (Hashtbl.length ht) (Intmap.length im);
  Hashtbl.iter
    (fun k v -> Alcotest.(check int) (Printf.sprintf "key %d" k) v (Intmap.find im k ~default:(-1)))
    ht;
  Alcotest.(check bool) "absent key" true (Intmap.find im 999_999 ~default:(-1) = -1);
  let sum_im = Intmap.fold (fun _ v acc -> acc + v) im 0 in
  let sum_ht = Hashtbl.fold (fun _ v acc -> acc + v) ht 0 in
  Alcotest.(check int) "fold sum" sum_ht sum_im;
  Intmap.clear im;
  Alcotest.(check int) "cleared" 0 (Intmap.length im);
  Alcotest.(check bool) "reinsert after clear" true (Intmap.add_if_absent im 7)

(* --- derived curves ------------------------------------------------------ *)

(* Fully-associative derivation must equal direct simulation exactly,
   warmup discipline included. *)
let prop_fullassoc_exact =
  QCheck.Test.make ~count:6 ~name:"fully-assoc derivation = direct simulation"
    Generators.workload_arb
    (fun workload ->
      let n = 20_000 in
      let prof = Profile.raw ~workload ~n () in
      List.for_all
        (fun cap ->
          let c =
            Cache.create ~size_bytes:(cap * 64) ~assoc:cap ~block_bytes:64
              ~policy:Replacement.Lru ()
          in
          let g = Registry.build ~seed:Registry.default_seed workload in
          let warm = int_of_float (Profile.warmup_fraction *. float_of_int n) in
          let feed (a : Access.t) = ignore (Cache.access c a.Access.addr ~write:a.Access.write) in
          Gen.iter g warm feed;
          Cache.reset_stats c;
          Gen.iter g (n - warm) feed;
          (Cache.stats c).Stats.misses = Profile.misses_at prof ~capacity_blocks:cap)
        [ 16; 64; 512 ])

(* Derived curves are monotone non-increasing in capacity for every
   associativity, including across the exact/corrected boundary. *)
let prop_derived_monotone =
  QCheck.Test.make ~count:10 ~name:"derived set-assoc curves monotone in capacity"
    QCheck.(pair Generators.workload_arb (oneofl [ 1; 2; 4; 8 ]))
    (fun (workload, assoc) ->
      let prof = Profile.raw ~workload ~n:20_000 () in
      let caps = [ assoc; 2 * assoc; 16; 64; 256; 1024; 4096; 16384 ] in
      let caps = List.sort_uniq compare caps in
      let rates =
        List.map (fun c -> Profile.setassoc_miss_rate prof ~capacity_blocks:c ~assoc) caps
      in
      let rec mono = function
        | a :: (b :: _ as rest) -> a +. 1e-12 >= b && mono rest
        | _ -> true
      in
      List.for_all (fun r -> r >= 0.0 && r <= 1.0) rates && mono rates)

(* An L1×L2 grid costs exactly one measured traversal per
   (workload, L1 size) and no per-point simulations; re-querying new
   L2 capacities is free. *)
let test_grid_traversal_accounting () =
  let seed = 1_234_577L in
  let workloads = [ "spec2000-mix"; "specweb" ] in
  let l1_sizes = [| kb 8; kb 16; kb 32 |] in
  let l2_sizes = [| kb 256; kb 1024; kb 4096 |] in
  let n = 20_000 in
  let sims0 = Metrics.counter_value "cachesim.simulations" in
  let profs0 = Metrics.counter_value "cachesim.mattson_curves" in
  let g = Missrate.grid ~seed ~workloads ~l1_sizes ~l2_sizes ~n () in
  let g2 = Missrate.grid ~seed ~workloads ~l1_sizes ~l2_sizes:[| kb 512; kb 2048 |] ~n () in
  let sims = Metrics.counter_value "cachesim.simulations" - sims0 in
  let profs = Metrics.counter_value "cachesim.mattson_curves" - profs0 in
  Alcotest.(check int) "one traversal per (workload, L1 size)"
    (List.length workloads * Array.length l1_sizes)
    profs;
  Alcotest.(check int) "no per-point simulations" 0 sims;
  (* the grid's averaged curves are bitwise those of averaged_l2_curve *)
  Array.iteri
    (fun i l1_size ->
      let direct = Missrate.averaged_l2_curve ~seed ~workloads ~l1_size ~l2_sizes ~n () in
      Alcotest.(check bool)
        (Printf.sprintf "grid = averaged_l2_curve at %d" l1_size)
        true
        (g.Missrate.g_averaged.(i) = direct))
    l1_sizes;
  (* shape of the per-workload plane *)
  Alcotest.(check int) "per-workload rows" (Array.length l1_sizes)
    (Array.length g.Missrate.g_per_workload);
  Array.iter
    (fun row ->
      Alcotest.(check int) "per-workload cols" (List.length workloads) (Array.length row))
    g.Missrate.g_per_workload;
  Alcotest.(check int) "requeried grid kept l2 sizes" 2
    (Array.length g2.Missrate.g_l2_sizes)

(* The derived LRU l1_sweep agrees with the profile it is defined by. *)
let test_l1_sweep_derived () =
  let seed = 1_234_578L in
  let n = 20_000 in
  let workload = "tpcc" in
  let sizes = [| kb 4; kb 16; kb 64 |] in
  let sweep = Missrate.l1_sweep ~seed ~workload ~l1_sizes:sizes ~n () in
  let prof = Profile.raw ~seed ~workload ~n () in
  Array.iteri
    (fun i l1_size ->
      let expected =
        Profile.setassoc_miss_rate prof ~capacity_blocks:(l1_size / 64) ~assoc:4
      in
      Alcotest.(check (float 0.0)) (Printf.sprintf "size %d" l1_size) expected sweep.(i))
    sizes;
  Alcotest.(check bool) "bigger L1 misses less" true (sweep.(2) < sweep.(0))

(* --- memo-key hygiene ----------------------------------------------------- *)

let test_combined_key_no_alias () =
  Alcotest.(check bool) "[a+b] and [a;b] keys differ" true
    (Missrate.combined_workloads_key [ "a+b" ]
    <> Missrate.combined_workloads_key [ "a"; "b" ]);
  Alcotest.(check bool) "[a;b+c] and [a+b;c] keys differ" true
    (Missrate.combined_workloads_key [ "a"; "b+c" ]
    <> Missrate.combined_workloads_key [ "a+b"; "c" ]);
  Alcotest.(check string) "length-prefixed rendering" "3:a+b"
    (Missrate.combined_workloads_key [ "a+b" ]);
  Alcotest.(check string) "separator survives" "1:a+1:b"
    (Missrate.combined_workloads_key [ "a"; "b" ])

let suite =
  [
    Alcotest.test_case "pinned single-level stats" `Quick test_pinned_single_level;
    Alcotest.test_case "pinned hierarchy stats" `Quick test_pinned_hierarchy;
    Alcotest.test_case "pinned mattson digest" `Quick test_pinned_mattson;
    Alcotest.test_case "intmap matches hashtbl" `Quick test_intmap_matches_hashtbl;
    Alcotest.test_case "grid traversal accounting" `Quick test_grid_traversal_accounting;
    Alcotest.test_case "l1 sweep is profile-derived" `Quick test_l1_sweep_derived;
    Alcotest.test_case "combined key cannot alias" `Quick test_combined_key_no_alias;
  ]
  @ List.map Generators.to_alcotest [ prop_fullassoc_exact; prop_derived_monotone ]
