(* Tests for the Mattson reuse-distance profiler, including equivalence
   with direct fully-associative LRU simulation — the correctness core
   of the miss-rate machinery. *)

module Mattson = Nmcache_cachesim.Mattson
module Cache = Nmcache_cachesim.Cache
module Replacement = Nmcache_cachesim.Replacement
module Stats = Nmcache_cachesim.Stats
module Rng = Nmcache_numerics.Rng
module Gen = Nmcache_workload.Gen
module Access = Nmcache_workload.Access
module Registry = Nmcache_workload.Registry

let test_simple_distances () =
  let m = Mattson.create ~block_bytes:64 () in
  (* A B A: distance of the second A is 1 (B in between) *)
  Mattson.access m 0;
  Mattson.access m 64;
  Mattson.access m 0;
  Alcotest.(check (list (pair int int))) "histogram" [ (1, 1) ] (Mattson.histogram m);
  Alcotest.(check int) "distinct" 2 (Mattson.distinct_blocks m);
  Alcotest.(check int) "accesses" 3 (Mattson.accesses m)

let test_immediate_reuse () =
  let m = Mattson.create ~block_bytes:64 () in
  Mattson.access m 0;
  Mattson.access m 32;
  (* same block *)
  Alcotest.(check (list (pair int int))) "distance 0" [ (0, 1) ] (Mattson.histogram m)

let test_cyclic_distances () =
  (* cycling through k blocks gives steady-state distance k-1 *)
  let k = 8 in
  let m = Mattson.create ~block_bytes:64 () in
  for _ = 1 to 5 do
    for i = 0 to k - 1 do
      Mattson.access m (i * 64)
    done
  done;
  let hist = Mattson.histogram m in
  Alcotest.(check (list (pair int int))) "all warm distances are k-1"
    [ (k - 1, (5 * k) - k) ]
    hist;
  (* capacity k holds the loop; capacity k-1 thrashes *)
  Alcotest.(check int) "fits" k (Mattson.misses_at m ~capacity_blocks:k);
  Alcotest.(check int) "thrashes"
    (5 * k)
    (Mattson.misses_at m ~capacity_blocks:(k - 1))

let test_curve_monotone () =
  let m = Mattson.create ~block_bytes:64 () in
  let rng = Rng.create ~seed:12L in
  for _ = 1 to 50_000 do
    Mattson.access m (64 * Rng.int rng ~bound:4096)
  done;
  let caps = [| 16; 64; 256; 1024; 4096 |] in
  let curve = Mattson.miss_ratio_curve m ~capacities:caps in
  for i = 1 to Array.length curve - 1 do
    Alcotest.(check bool) "non-increasing" true (curve.(i) <= curve.(i - 1) +. 1e-12)
  done

let test_measuring_flag () =
  let m = Mattson.create ~block_bytes:64 () in
  Mattson.set_measuring m false;
  for i = 0 to 99 do
    Mattson.access m (i * 64)
  done;
  Alcotest.(check int) "warmup not counted" 0 (Mattson.accesses m);
  Alcotest.(check int) "no cold misses recorded" 0 (Mattson.cold_misses m);
  Mattson.set_measuring m true;
  (* re-touch a warm block: its distance must reflect the warmup stack *)
  Mattson.access m 0;
  Alcotest.(check int) "one measured access" 1 (Mattson.accesses m);
  Alcotest.(check (list (pair int int))) "distance spans warmup" [ (99, 1) ]
    (Mattson.histogram m)

let test_compaction () =
  (* force timestamp compaction with a small initial capacity *)
  let m = Mattson.create ~initial_capacity:128 ~block_bytes:64 () in
  let rng = Rng.create ~seed:13L in
  let reference = Mattson.create ~initial_capacity:(1 lsl 20) ~block_bytes:64 () in
  let trace = Array.init 5_000 (fun _ -> 64 * Rng.int rng ~bound:100) in
  Array.iter
    (fun a ->
      Mattson.access m a;
      Mattson.access reference a)
    trace;
  Alcotest.(check (list (pair int int))) "compaction preserves histogram"
    (Mattson.histogram reference) (Mattson.histogram m)

(* Property: Mattson misses = direct fully-associative LRU simulation. *)
let prop_matches_fullassoc_lru =
  QCheck.Test.make ~count:25 ~name:"Mattson = fully-associative LRU simulation"
    Generators.mattson_case_arb
    (fun (seed, log_cap) ->
      let capacity = 1 lsl log_cap in
      let m = Mattson.create ~block_bytes:64 () in
      let cache =
        Cache.create ~size_bytes:(capacity * 64) ~assoc:capacity ~block_bytes:64
          ~policy:Replacement.Lru ()
      in
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      for _ = 1 to 3_000 do
        (* keep all blocks in set 0 of the cache: stride = capacity blocks *)
        let b = Rng.int rng ~bound:200 in
        let addr_cache = b * 64 * capacity in
        let addr_mattson = b * 64 in
        ignore (Cache.access cache addr_cache ~write:false);
        Mattson.access m addr_mattson
      done;
      (Cache.stats cache).Stats.misses = Mattson.misses_at m ~capacity_blocks:capacity)

(* Registered workloads (shared generator): the one-pass miss-ratio
   curve must be a valid non-increasing curve on every real trace. *)
let prop_workload_curve_monotone =
  QCheck.Test.make ~count:8 ~name:"miss-ratio curve non-increasing on real workloads"
    Generators.workload_arb
    (fun name ->
      let g = Registry.build ~seed:7L name in
      let m = Mattson.create ~block_bytes:64 () in
      Gen.iter g 20_000 (fun acc -> Mattson.access m acc.Access.addr);
      let curve = Mattson.miss_ratio_curve m ~capacities:[| 4; 16; 64; 256; 1024 |] in
      let ok = ref (Array.for_all (fun r -> r >= 0.0 && r <= 1.0) curve) in
      for i = 0 to Array.length curve - 2 do
        if curve.(i) < curve.(i + 1) -. 1e-12 then ok := false
      done;
      !ok)

(* The suffix-CDF answer path must agree exactly with the old
   per-capacity histogram fold it replaced. *)
let test_cdf_equals_fold () =
  let m = Mattson.create ~block_bytes:64 () in
  let rng = Rng.create ~seed:14L in
  (* mixed locality: uniform noise plus a hot loop, with a warmup split
     so cold accounting is exercised too *)
  Mattson.set_measuring m false;
  for _ = 1 to 5_000 do
    Mattson.access m (64 * Rng.int rng ~bound:3000)
  done;
  Mattson.set_measuring m true;
  for i = 1 to 25_000 do
    let b = if i mod 3 = 0 then i mod 17 else Rng.int rng ~bound:3000 in
    Mattson.access m (64 * b)
  done;
  let hist = Mattson.histogram m in
  let cold = Mattson.cold_misses m in
  let acc = Mattson.accesses m in
  let caps = [| 1; 2; 3; 7; 16; 100; 256; 999; 4096; 1_000_000 |] in
  let curve = Mattson.miss_ratio_curve m ~capacities:caps in
  Array.iteri
    (fun i cap ->
      (* the pre-CDF implementation: one full fold per capacity *)
      let warm = List.fold_left (fun s (d, c) -> if d >= cap then s + c else s) 0 hist in
      let expected = float_of_int (cold + warm) /. float_of_int acc in
      Alcotest.(check bool)
        (Printf.sprintf "cap %d: cdf %.17g = fold %.17g" cap curve.(i) expected)
        true
        (curve.(i) = expected);
      Alcotest.(check int)
        (Printf.sprintf "misses_at agrees at %d" cap)
        (cold + warm)
        (Mattson.misses_at m ~capacity_blocks:cap))
    caps;
  (* the CDF arrays themselves: suffix at the smallest distance counts
     every warm access; suffix beyond the largest counts none *)
  let dists, suffix = Mattson.cdf m in
  let total_warm = List.fold_left (fun s (_, c) -> s + c) 0 hist in
  Alcotest.(check int) "suffix at 0 covers all warm accesses" total_warm
    (Mattson.suffix_at ~dists ~suffix 0);
  Alcotest.(check int) "suffix past max distance is empty" 0
    (Mattson.suffix_at ~dists ~suffix (dists.(Array.length dists - 1) + 1))

let test_validation () =
  Alcotest.(check bool) "bad block size" true
    (try
       ignore (Mattson.create ~block_bytes:48 ());
       false
     with Invalid_argument _ -> true);
  let m = Mattson.create ~block_bytes:64 () in
  Alcotest.(check bool) "bad capacity" true
    (try
       ignore (Mattson.misses_at m ~capacity_blocks:0);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "simple distances" `Quick test_simple_distances;
    Alcotest.test_case "immediate reuse" `Quick test_immediate_reuse;
    Alcotest.test_case "cyclic distances" `Quick test_cyclic_distances;
    Alcotest.test_case "miss curve monotone" `Quick test_curve_monotone;
    Alcotest.test_case "measuring flag" `Quick test_measuring_flag;
    Alcotest.test_case "timestamp compaction" `Quick test_compaction;
    Alcotest.test_case "suffix CDF = per-capacity fold" `Quick test_cdf_equals_fold;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
  @ List.map Generators.to_alcotest
      [ prop_matches_fullassoc_lru; prop_workload_curve_monotone ]
