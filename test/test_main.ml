(* Entry point aggregating every suite. *)

let () =
  Alcotest.run "nmcache"
    [
      ("physics", Test_physics.suite);
      ("numerics", Test_numerics.suite);
      ("device", Test_device.suite);
      ("circuit", Test_circuit.suite);
      ("transient", Test_transient.suite);
      ("geometry", Test_geometry.suite);
      ("fit", Test_fit.suite);
      ("cachesim", Test_cachesim.suite);
      ("mattson", Test_mattson.suite);
      ("profile", Test_profile.suite);
      ("workload", Test_workload.suite);
      ("energy", Test_energy.suite);
      ("opt", Test_opt.suite);
      ("engine", Test_engine.suite);
      ("fault", Test_fault.suite);
      ("resilience", Test_resilience.suite);
      ("obs", Test_obs.suite);
      ("report", Test_report.suite);
      ("extensions", Test_extensions.suite);
      ("extras", Test_extras.suite);
      ("verify", Test_verify.suite);
      ("integration", Test_integration.suite);
    ]
