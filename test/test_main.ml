(* Entry point aggregating every suite. *)

(* Child mode for the kill-during-write chaos test: re-executed with
   this env var set, loop writing a report until SIGKILLed.  Must run
   before Alcotest so no domain is ever spawned in the child. *)
let () =
  match Sys.getenv_opt Test_resilience.kill_writer_env with
  | Some target -> Test_resilience.writer_child_main target; exit 0
  | None -> ()

(* Child mode for the kill-mid-serve chaos test: run the serve loop
   over a query file until SIGKILLed. *)
let () =
  match Sys.getenv_opt Test_serve.serve_child_env with
  | Some spec -> Test_serve.serve_child_main spec; exit 0
  | None -> ()

(* Child mode for the kill-mid-chunk streaming chaos test: run a
   checkpointed streamed simulation until SIGKILLed (or to
   completion, on resume). *)
let () =
  match Sys.getenv_opt Test_stream.stream_child_env with
  | Some spec -> Test_stream.stream_child_main spec; exit 0
  | None -> ()

(* Child mode for the lockfile TOCTOU race: two children barrier in
   the stale-break window, then race to break one stale lock. *)
let () =
  match Sys.getenv_opt Test_robustness.lock_child_env with
  | Some spec -> Test_robustness.lock_child_main spec; exit 0
  | None -> ()

let () =
  Alcotest.run "nmcache"
    [
      ("physics", Test_physics.suite);
      ("numerics", Test_numerics.suite);
      ("device", Test_device.suite);
      ("circuit", Test_circuit.suite);
      ("transient", Test_transient.suite);
      ("geometry", Test_geometry.suite);
      ("fit", Test_fit.suite);
      ("cachesim", Test_cachesim.suite);
      ("mattson", Test_mattson.suite);
      ("profile", Test_profile.suite);
      ("workload", Test_workload.suite);
      ("energy", Test_energy.suite);
      ("opt", Test_opt.suite);
      ("engine", Test_engine.suite);
      ("fault", Test_fault.suite);
      ("resilience", Test_resilience.suite);
      ("serve", Test_serve.suite);
      ("robustness", Test_robustness.suite);
      ("stream", Test_stream.suite);
      ("obs", Test_obs.suite);
      ("telemetry", Test_telemetry.suite);
      ("report", Test_report.suite);
      ("extensions", Test_extensions.suite);
      ("extras", Test_extras.suite);
      ("verify", Test_verify.suite);
      ("integration", Test_integration.suite);
    ]
