(* Serve suite: single-writer lock files, the persistent model store,
   circuit breakers, the generic serve loop, the protocol handler
   (validation, admission, redaction, poison injection, breaker
   degradation) and the kill-and-restart chaos gate.

   The faultpoint configuration, retry policy and drain flag are
   process-wide; every test that arms one disarms it in a finally. *)

module Json = Nmcache_engine.Json
module Fault = Nmcache_engine.Fault
module Faultpoint = Nmcache_engine.Faultpoint
module Lockfile = Nmcache_engine.Lockfile
module Store = Nmcache_engine.Store
module Breaker = Nmcache_engine.Breaker
module Server = Nmcache_engine.Server
module Pool = Nmcache_engine.Pool
module Service = Core.Service

let tmp_counter = ref 0

let tmpdir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ppserve-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* a PID guaranteed dead: a reaped child of ours *)
let dead_pid () =
  let pid =
    Unix.create_process "true" [| "true" |] Unix.stdin Unix.stdout Unix.stderr
  in
  ignore (Unix.waitpid [] pid);
  pid

let member_str name j =
  Option.bind (Json.member name j) Json.to_str

let error_kind line =
  match Json.parse line with
  | Ok j -> Option.bind (Json.member "error" j) (member_str "kind")
  | Error _ -> None

let quick_ctx = lazy (Core.Context.quick ())

let make_service ?max_points ?max_n ?breaker ?store () =
  Service.create ?max_points ?max_n ?breaker ?store ~ctx:(Lazy.force quick_ctx)
    ~queue:8 ~jobs:1 ()

(* handle a line AND run its settle thunk, as the serve loop would *)
let ask service line =
  let resp, settle = Service.handle_line service line in
  settle ();
  resp

(* --- lockfile ---------------------------------------------------------- *)

let test_lockfile_conflict () =
  let dir = tmpdir () in
  let path = Filename.concat dir "x.lock" in
  let l = Lockfile.acquire ~path in
  Alcotest.(check (option int))
    "holder is us" (Some (Unix.getpid ())) (Lockfile.holder_pid ~path);
  (match Lockfile.acquire ~path with
  | _ -> Alcotest.fail "second acquire must raise Locked"
  | exception Lockfile.Locked { pid; path = p } ->
    Alcotest.(check int) "locked by our pid" (Unix.getpid ()) pid;
    Alcotest.(check string) "lock path reported" path p);
  Lockfile.release l;
  Alcotest.(check (option int)) "released" None (Lockfile.holder_pid ~path);
  let l2 = Lockfile.acquire ~path in
  Lockfile.release l2;
  Lockfile.release l2 (* idempotent *)

let test_lockfile_stale_broken () =
  let dir = tmpdir () in
  let path = Filename.concat dir "x.lock" in
  write_file path (Printf.sprintf "%d\n" (dead_pid ()));
  (* the holder is dead: acquire must break the stale lock and win *)
  let l = Lockfile.acquire ~path in
  Alcotest.(check (option int))
    "stale lock broken and re-owned" (Some (Unix.getpid ()))
    (Lockfile.holder_pid ~path);
  Lockfile.release l

(* --- store ------------------------------------------------------------- *)

let test_store_roundtrip () =
  let dir = tmpdir () in
  let s = Store.open_ ~dir in
  Store.add s ~ns:"model" ~key:"a" (1, "one");
  Store.add s ~ns:"curve" ~key:"a" [| 0.5; 0.25 |];
  Store.add s ~ns:"model" ~key:"b" (2, "two");
  (* first write wins: a replayed stream can never corrupt an entry *)
  Store.add s ~ns:"model" ~key:"a" (99, "ninety-nine");
  Alcotest.(check (option (pair int string)))
    "namespaced lookup" (Some (1, "one"))
    (Store.lookup s ~ns:"model" ~key:"a");
  Alcotest.(check (option (array (float 1e-9))))
    "same key, other namespace" (Some [| 0.5; 0.25 |])
    (Store.lookup s ~ns:"curve" ~key:"a");
  Alcotest.(check int) "entries" 3 (Store.entries s);
  Alcotest.(check int) "appended" 3 (Store.appended s);
  Alcotest.(check (list string)) "keys sorted" [ "a"; "b" ] (Store.keys s ~ns:"model");
  Store.close s;
  (* reopen: everything replays, nothing is re-appended *)
  let s2 = Store.open_ ~dir in
  Alcotest.(check int) "replayed" 3 (Store.replayed s2);
  Alcotest.(check bool) "clean tail" false (Store.dropped_tail s2);
  Alcotest.(check (option (pair int string)))
    "first write survived replay" (Some (1, "one"))
    (Store.lookup s2 ~ns:"model" ~key:"a");
  Store.close s2

let test_store_corrupt_tail () =
  let dir = tmpdir () in
  let s = Store.open_ ~dir in
  Store.add s ~ns:"n" ~key:"good" 42;
  Store.close s;
  let path = Filename.concat dir Store.store_name in
  let clean = read_file path in
  (* a killed writer leaves a torn record: reopen must truncate it and
     keep every complete record *)
  write_file path (clean ^ "\x05\x00\x00\x00torn");
  let s2 = Store.open_ ~dir in
  Alcotest.(check bool) "tail dropped" true (Store.dropped_tail s2);
  Alcotest.(check (option int)) "good record kept" (Some 42)
    (Store.lookup s2 ~ns:"n" ~key:"good");
  Store.add s2 ~ns:"n" ~key:"after" 7;
  Store.close s2;
  let s3 = Store.open_ ~dir in
  Alcotest.(check int) "repaired journal replays fully" 2 (Store.replayed s3);
  Alcotest.(check bool) "tail clean after repair" false (Store.dropped_tail s3);
  Store.close s3

let test_store_single_writer () =
  let dir = tmpdir () in
  let s = Store.open_ ~dir in
  (match Store.open_ ~dir with
  | _ -> Alcotest.fail "second store on one directory must raise Locked"
  | exception Lockfile.Locked { pid; _ } ->
    Alcotest.(check int) "held by this process" (Unix.getpid ()) pid);
  Store.close s;
  let s2 = Store.open_ ~dir in
  Store.close s2

let test_checkpoint_single_writer () =
  (* the satellite of the same guard on the run journal: a second
     writer on one --checkpoint directory fails fast *)
  let module Checkpoint = Nmcache_engine.Checkpoint in
  let dir = tmpdir () in
  let j = Checkpoint.open_ ~dir ~resume:false in
  (match Checkpoint.open_ ~dir ~resume:true with
  | _ -> Alcotest.fail "second journal on one directory must raise Locked"
  | exception Lockfile.Locked { pid; _ } ->
    Alcotest.(check int) "held by this process" (Unix.getpid ()) pid);
  Checkpoint.close j;
  (* and a SIGKILLed writer's stale lock does not brick the directory *)
  write_file
    (Filename.concat dir "journal.ppck.lock")
    (Printf.sprintf "%d\n" (dead_pid ()));
  let j2 = Checkpoint.open_ ~dir ~resume:true in
  Checkpoint.close j2

(* --- breaker ----------------------------------------------------------- *)

let test_breaker_state_machine () =
  let b = Breaker.create ~threshold:3 ~cooldown:2 () in
  let key = "k" in
  Alcotest.(check bool) "closed admits" true (Breaker.admit b ~key);
  Breaker.record b ~key ~ok:false;
  Breaker.record b ~key ~ok:false;
  Alcotest.(check bool) "under threshold still admits" true (Breaker.admit b ~key);
  Breaker.record b ~key ~ok:true;
  (* a success resets the count *)
  Breaker.record b ~key ~ok:false;
  Breaker.record b ~key ~ok:false;
  Breaker.record b ~key ~ok:false;
  (match Breaker.state b ~key with
  | Breaker.Open 2 -> ()
  | _ -> Alcotest.fail "third consecutive failure must trip to Open(cooldown)");
  Alcotest.(check bool) "open deflects" false (Breaker.admit b ~key);
  Breaker.record b ~key ~ok:false; (* deflected request ticks cooldown *)
  Breaker.record b ~key ~ok:false;
  (match Breaker.state b ~key with
  | Breaker.Half_open -> ()
  | _ -> Alcotest.fail "cooldown spent must reach Half_open");
  Alcotest.(check bool) "half-open admits the probe" true (Breaker.admit b ~key);
  Breaker.record b ~key ~ok:false;
  (match Breaker.state b ~key with
  | Breaker.Open 2 -> ()
  | _ -> Alcotest.fail "failed probe must re-trip");
  Breaker.record b ~key ~ok:false;
  Breaker.record b ~key ~ok:false;
  Breaker.record b ~key ~ok:true;
  (match Breaker.state b ~key with
  | Breaker.Closed -> ()
  | _ -> Alcotest.fail "successful probe must close");
  Alcotest.(check bool) "other keys unaffected" true (Breaker.admit b ~key:"other")

(* --- server loop ------------------------------------------------------- *)

(* run the loop over a file of request lines with a given handler *)
let serve_file ?(queue = 4) ~jobs ~handler lines =
  let dir = tmpdir () in
  let inp = Filename.concat dir "in.ndjson" in
  let outp = Filename.concat dir "out.ndjson" in
  write_file inp (String.concat "" (List.map (fun l -> l ^ "\n") lines));
  let input = Unix.openfile inp [ Unix.O_RDONLY ] 0 in
  let output = open_out_bin outp in
  let stats =
    Fun.protect
      ~finally:(fun () ->
        Unix.close input;
        close_out output)
      (fun () ->
        Server.serve ~queue ~pool:(Pool.create ~jobs) ~handler
          ~crash_response:(fun ~line:_ f ->
            "crash:" ^ Fault.kind_name f.Fault.kind)
          ~overlong_response:(fun () -> "overlong")
          ~input ~output ())
  in
  (stats, read_file outp)

let test_server_order_and_fault_isolation () =
  let handler ~line =
    if line = "boom" then failwith "kernel exploded"
    else (String.uppercase_ascii line, fun () -> ())
  in
  let lines = [ "alpha"; "boom"; "gamma"; "delta"; "boom"; "zeta" ] in
  let _, out1 = serve_file ~jobs:1 ~handler lines in
  let stats4, out4 = serve_file ~jobs:4 ~handler lines in
  Alcotest.(check string)
    "responses in request order, crashes isolated"
    "ALPHA\ncrash:crashed\nGAMMA\nDELTA\ncrash:crashed\nZETA\n" out1;
  Alcotest.(check string) "byte-identical at jobs 4" out1 out4;
  Alcotest.(check int) "all requests counted" 6 stats4.Server.requests;
  Alcotest.(check int) "all responses written" 6 stats4.Server.responses;
  Alcotest.(check bool) "EOF, not drain" false stats4.Server.drained

let test_server_settle_order () =
  (* settle thunks run in request order whatever the pool width: the
     deterministic seam breaker updates rely on *)
  let log = ref [] in
  let handler ~line = (line, fun () -> log := line :: !log) in
  let lines = List.init 20 (fun i -> Printf.sprintf "r%02d" i) in
  let _ = serve_file ~jobs:4 ~handler lines in
  Alcotest.(check (list string)) "settle order is request order" lines
    (List.rev !log)

let test_server_overlong_line () =
  let big = String.make (Server.max_line_bytes + 100) 'x' in
  let handler ~line = ("len:" ^ string_of_int (String.length line), fun () -> ())
  in
  let _, out = serve_file ~jobs:2 ~handler [ "short"; big; "after" ] in
  Alcotest.(check string)
    "overlong line rejected in place, stream continues"
    "len:5\noverlong\nlen:5\n" out

let test_server_drain_finishes_batch () =
  Server.reset_drain ();
  let handler ~line =
    if line = "drain-me" then Server.request_drain ();
    (line, fun () -> ())
  in
  let stats, out =
    serve_file ~queue:2 ~jobs:1 ~handler [ "a"; "drain-me"; "c"; "d"; "e" ]
  in
  Server.reset_drain ();
  Alcotest.(check string) "in-flight batch finished, rest unread" "a\ndrain-me\n"
    out;
  Alcotest.(check bool) "reported as drained" true stats.Server.drained

(* --- protocol ---------------------------------------------------------- *)

let test_protocol_validation () =
  let s = make_service () in
  (* every response, success or error, carries the schema version and
     echoes the id *)
  let r = ask s {|{"id":17,"op":"amat","t_l1_ps":500,"t_l2_ps":2000,"t_mem_ps":60000,"m1":0.05,"m2":0.3}|} in
  let j = Result.get_ok (Json.parse r) in
  Alcotest.(check (option int)) "schema version" (Some 1)
    (Option.bind (Json.member "serve_schema_version" j) Json.to_int);
  Alcotest.(check (option int)) "id echoed" (Some 17)
    (Option.bind (Json.member "id" j) Json.to_int);
  Alcotest.(check (option (float 1e-6))) "amat computed" (Some 1500.0)
    (Option.bind (Json.member "result" j) (fun r ->
         Option.bind (Json.member "amat_ps" r) Json.to_float));
  let expect_kind what kind line =
    Alcotest.(check (option string)) what (Some kind) (error_kind line)
  in
  expect_kind "unparseable line" "bad_request" (ask s "{nope");
  expect_kind "non-object request" "bad_request" (ask s "[1,2]");
  expect_kind "missing op" "bad_request" (ask s {|{"id":1}|});
  expect_kind "unknown op" "bad_request" (ask s {|{"id":1,"op":"frobnicate"}|});
  expect_kind "missing required field" "bad_request"
    (ask s {|{"id":1,"op":"optimize"}|});
  expect_kind "wrong field type" "bad_request"
    (ask s {|{"id":1,"op":"optimize","size_kb":"big","delay_budget_ps":2000}|});
  expect_kind "bad geometry" "bad_request"
    (ask s {|{"id":1,"op":"optimize","size_kb":17,"delay_budget_ps":2000}|});
  expect_kind "non-positive budget" "bad_request"
    (ask s {|{"id":1,"op":"optimize","size_kb":16,"delay_budget_ps":-5}|});
  expect_kind "unknown workload" "bad_request"
    (ask s {|{"id":1,"op":"miss_curve","workload":"nope","l2_kb":[256]}|});
  expect_kind "amat out of range" "bad_request"
    (ask s {|{"id":1,"op":"amat","t_l1_ps":500,"t_l2_ps":2000,"t_mem_ps":60000,"m1":1.5,"m2":0.3}|});
  Alcotest.(check int) "errors counted" 10 (Service.requests_error s)

let test_protocol_admission () =
  let s = make_service ~max_points:3 ~max_n:1_000_000 () in
  let over =
    ask s {|{"id":1,"op":"miss_curve","workload":"tpcc","l2_kb":[64,128,256,512]}|}
  in
  Alcotest.(check (option string)) "too many points" (Some "overloaded")
    (error_kind over);
  let too_long =
    ask s {|{"id":2,"op":"miss_curve","workload":"tpcc","l2_kb":[256],"n":2000000}|}
  in
  Alcotest.(check (option string)) "n beyond max_n" (Some "overloaded")
    (error_kind too_long);
  let ok =
    ask s {|{"id":3,"op":"miss_curve","workload":"tpcc","l1_kb":4,"l2_kb":[64,128],"n":50000}|}
  in
  (match Json.parse ok with
  | Ok j ->
    let points =
      Option.bind (Json.member "result" j) (fun r ->
          Option.bind (Json.member "points" r) Json.to_list)
    in
    Alcotest.(check (option int)) "within bounds computes" (Some 2)
      (Option.map List.length points)
  | Error e -> Alcotest.failf "miss_curve response unparseable: %s" e)

let test_protocol_health () =
  let dir = tmpdir () in
  let store = Store.open_ ~dir in
  let s = make_service ~store () in
  let r = ask s {|{"id":"h","op":"health"}|} in
  let j = Result.get_ok (Json.parse r) in
  let result = Option.get (Json.member "result" j) in
  Alcotest.(check (option int)) "pid" (Some (Unix.getpid ()))
    (Option.bind (Json.member "pid" result) Json.to_int);
  Alcotest.(check bool) "uptime present" true
    (Json.member "uptime_s" result <> None);
  let store_j = Option.get (Json.member "store" result) in
  Alcotest.(check (option string)) "store path" (Some (Store.path store))
    (member_str "path" store_j);
  Alcotest.(check bool) "breaker table present" true
    (Json.member "breakers" result <> None);
  Store.close store

let test_poison_by_tag () =
  (* arm the serve.request point for tag "poison": marked requests
     fail deterministically, everything else completes — and the whole
     exchange is byte-identical at any pool width *)
  Fun.protect ~finally:Faultpoint.clear (fun () ->
      (match Faultpoint.configure "serve.request=poison" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "bad spec: %s" e);
      let amat i tag =
        Printf.sprintf
          {|{"id":"q%d"%s,"op":"amat","t_l1_ps":500,"t_l2_ps":2000,"t_mem_ps":60000,"m1":0.05,"m2":0.3}|}
          i
          (if tag then {|,"tag":"poison"|} else "")
      in
      let lines = [ amat 0 false; amat 1 true; amat 2 false; amat 3 true ] in
      let run jobs =
        let s = make_service () in
        let handler = Service.handler s in
        serve_file ~jobs ~handler lines
      in
      let _, out1 = run 1 in
      let _, out4 = run 4 in
      Alcotest.(check string) "poison injection is jobs-invariant" out1 out4;
      let kinds = List.filter_map error_kind (String.split_on_char '\n' out1) in
      Alcotest.(check (list string))
        "exactly the tagged requests fail, as injected faults"
        [ "injected"; "injected" ] kinds)

let test_redaction () =
  let crashed detail =
    Fault.make ~kind:Fault.Crashed ~stage:"serve.request" detail
  in
  let f = Service.redact (crashed {|Sys_error("/secret/path/model.bin: boom")|}) in
  Alcotest.(check string) "constructor only" "Sys_error" f.Fault.detail;
  let f2 = Service.redact (crashed "/secret/leading/path") in
  Alcotest.(check string) "pathological detail still redacts" "exception"
    f2.Fault.detail;
  (* non-crashed details are deterministic by construction and pass through *)
  let inj = Fault.make ~kind:Fault.Injected ~stage:"serve.request" "poison" in
  Alcotest.(check string) "typed faults untouched" "poison"
    (Service.redact inj).Fault.detail;
  (* end to end: a handler that raises with a path in the message must
     not leak it through the crash boundary *)
  let handler ~line:_ = raise (Sys_error "/secret/path: boom") in
  let dir = tmpdir () in
  let inp = Filename.concat dir "in" in
  write_file inp "one\n";
  let input = Unix.openfile inp [ Unix.O_RDONLY ] 0 in
  let outp = Filename.concat dir "out" in
  let output = open_out_bin outp in
  let _ =
    Fun.protect
      ~finally:(fun () ->
        Unix.close input;
        close_out output)
      (fun () ->
        Server.serve ~pool:Pool.sequential ~handler
          ~crash_response:Service.crash_response
          ~overlong_response:Service.overlong_response ~input ~output ())
  in
  let out = read_file outp in
  Alcotest.(check (option string)) "classified as crashed" (Some "crashed")
    (error_kind (String.trim out));
  Alcotest.(check bool) "no path reaches the response" false
    (String.contains out '/')

let test_breaker_degrades_and_recovers () =
  (* threshold 3, cooldown 8 (the defaults): repeated fit faults on one
     config trip its breaker; during cooldown a neighbouring cached
     optimum is served degraded; after the cooldown the half-open probe
     (faults cleared) closes the breaker again *)
  let s = make_service () in
  let opt size_kb =
    Printf.sprintf
      {|{"id":"o%d","op":"optimize","scheme":"III","size_kb":%d,"delay_budget_ps":2500}|}
      size_kb size_kb
  in
  (* seed the nearest-optimum index with a healthy neighbour *)
  let seeded = ask s (opt 4) in
  Alcotest.(check (option string)) "neighbour computed" None (error_kind seeded);
  Fun.protect ~finally:Faultpoint.clear (fun () ->
      (match Faultpoint.configure "context.fit" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "bad spec: %s" e);
      for i = 1 to 3 do
        Alcotest.(check (option string))
          (Printf.sprintf "failure %d is an injected fault" i)
          (Some "injected") (error_kind (ask s (opt 8)))
      done;
      (* tripped: deflected to the nearest cached optimum, marked *)
      let degraded = ask s (opt 8) in
      let j = Result.get_ok (Json.parse degraded) in
      Alcotest.(check (option bool)) "degraded flag" (Some true)
        (match Json.member "degraded" j with
        | Some (Json.Bool b) -> Some b
        | _ -> None);
      (match member_str "degraded_from" j with
      | Some from ->
        Alcotest.(check bool) "names the neighbour" true
          (let re = "size_kb=4" in
           let len = String.length re in
           let n = String.length from in
           let rec scan i =
             i + len <= n && (String.sub from i len = re || scan (i + 1))
           in
           scan 0)
      | None -> Alcotest.fail "degraded answer must say where it came from"));
  (* burn the rest of the cooldown (7 more deflections) *)
  for _ = 1 to 7 do
    ignore (ask s (opt 8))
  done;
  (* half-open now, faults disarmed: the probe computes and closes *)
  let probe = ask s (opt 8) in
  Alcotest.(check (option string)) "probe recovers" None (error_kind probe);
  Alcotest.(check bool) "breaker closed again" true
    (Breaker.tripped_keys (Service.breaker s) = []);
  Alcotest.(check int) "degraded answers counted" 8 (Service.requests_degraded s)

let test_store_serves_warm_and_restart () =
  (* the same query answered cold, warm (same process) and warm after a
     restart (new service, same directory) must be byte-identical *)
  let dir = tmpdir () in
  let q =
    {|{"id":"w","op":"miss_curve","workload":"spec2000-mix","l1_kb":4,"l2_kb":[64,128],"n":50000}|}
  in
  let store = Store.open_ ~dir in
  let s = make_service ~store () in
  let cold = ask s q in
  let appended_after_cold = Store.appended store in
  let warm = ask s q in
  Alcotest.(check string) "warm hit byte-identical" cold warm;
  Alcotest.(check int) "warm hit did not re-append" appended_after_cold
    (Store.appended store);
  Store.close store;
  let store2 = Store.open_ ~dir in
  Alcotest.(check bool) "restart replays the curve" true (Store.replayed store2 > 0);
  let s2 = make_service ~store:store2 () in
  let restarted = ask s2 q in
  Alcotest.(check string) "restart replay byte-identical" cold restarted;
  Store.close store2

(* --- kill-and-restart chaos gate --------------------------------------- *)

(* Child mode: re-executed with [serve_child_env] set to
   "store_dir:query_file:out_file", run the real serve loop over the
   query file with a ~20 ms per-request handicap so a SIGKILL lands
   mid-batch.  Must run before Alcotest so the child never spawns a
   domain. *)
let serve_child_env = "PPCACHE_TEST_SERVE_CHILD"

let serve_child_main spec : unit =
  match String.split_on_char ':' spec with
  | [ store_dir; query_file; out_file ] ->
    let store = Store.open_ ~dir:store_dir in
    let ctx = Core.Context.quick () in
    let service = Service.create ~store ~ctx ~queue:4 ~jobs:1 () in
    let input = Unix.openfile query_file [ Unix.O_RDONLY ] 0 in
    let output = open_out_bin out_file in
    let handler ~line =
      Unix.sleepf 0.08;
      Service.handle_line service line
    in
    let _ =
      Server.serve ~queue:4 ~pool:Pool.sequential ~handler
        ~crash_response:Service.crash_response
        ~overlong_response:Service.overlong_response ~input ~output ()
    in
    close_out output;
    Store.close store
  | _ -> failwith ("bad " ^ serve_child_env ^ " spec: " ^ spec)

let kill_restart_queries =
  [
    (* persisted almost immediately: the kill must land after at least
       one record is on disk *)
    {|{"id":"k0","op":"miss_curve","workload":"tpcc","l1_kb":4,"l2_kb":[64],"n":20000}|};
  ]
  @ List.init 30 (fun i ->
        Printf.sprintf
          {|{"id":"k%d","op":"amat","t_l1_ps":500,"t_l2_ps":2000,"t_mem_ps":60000,"m1":0.0%d,"m2":0.3}|}
          (i + 1)
          ((i mod 9) + 1))
  @ [
      {|{"id":"k31","op":"miss_curve","workload":"tpcc","l1_kb":4,"l2_kb":[64,128],"n":20000}|};
      {|{"id":"k32","op":"optimize","scheme":"III","size_kb":4,"delay_budget_ps":2500}|};
    ]

let test_kill_and_restart_serving () =
  let dir = tmpdir () in
  let store_dir = Filename.concat dir "store" in
  let query_file = Filename.concat dir "queries.ndjson" in
  let child_out = Filename.concat dir "child.out" in
  write_file query_file
    (String.concat "" (List.map (fun l -> l ^ "\n") kill_restart_queries));
  (* the uninterrupted reference: same queries, fresh store *)
  let ref_store = Store.open_ ~dir:(Filename.concat dir "ref-store") in
  let ref_service = Service.create ~store:ref_store ~ctx:(Lazy.force quick_ctx) ~queue:4 ~jobs:1 () in
  let expected =
    String.concat ""
      (List.map (fun l -> ask ref_service l ^ "\n") kill_restart_queries)
  in
  Store.close ref_store;
  (* SIGKILL the serving child mid-batch *)
  let env =
    Array.append (Unix.environment ())
      [| serve_child_env ^ "=" ^ store_dir ^ ":" ^ query_file ^ ":" ^ child_out |]
  in
  let child =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin Unix.stdout Unix.stderr
  in
  (* kill only once the child has demonstrably started answering — the
     per-request handicap guarantees plenty of unserved tail remains *)
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec await () =
    let written =
      try (Unix.stat child_out).Unix.st_size > 0 with Unix.Unix_error _ -> false
    in
    if written then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "serve child produced no output within 30 s"
    else begin
      Unix.sleepf 0.02;
      await ()
    end
  in
  await ();
  Unix.kill child Sys.sigkill;
  ignore (Unix.waitpid [] child);
  let partial = read_file child_out in
  Alcotest.(check bool) "child answered something before the kill" true
    (String.length partial > 0);
  Alcotest.(check bool) "child died mid-stream" true
    (String.length partial < String.length expected);
  (* every line the child did write matches the uninterrupted run *)
  Alcotest.(check bool) "no torn or divergent responses" true
    (String.length partial <= String.length expected
    && String.sub expected 0 (String.length partial) = partial);
  (* restart on the killed store: the dead child's lock must be broken,
     the journal replayed (torn tail dropped), and the full replay must
     be byte-identical to the uninterrupted run *)
  let store = Store.open_ ~dir:store_dir in
  Alcotest.(check bool) "killed run's records replayed" true
    (Store.replayed store > 0);
  let service = Service.create ~store ~ctx:(Lazy.force quick_ctx) ~queue:4 ~jobs:1 () in
  let replayed =
    String.concat ""
      (List.map (fun l -> ask service l ^ "\n") kill_restart_queries)
  in
  Alcotest.(check string) "restart reproduces the run byte-for-byte" expected
    replayed;
  Store.close store

(* --- suite ------------------------------------------------------------- *)

let suite =
  [
    Alcotest.test_case "lockfile: second acquire fails fast" `Quick
      test_lockfile_conflict;
    Alcotest.test_case "lockfile: stale lock of a dead pid is broken" `Quick
      test_lockfile_stale_broken;
    Alcotest.test_case "store: namespaced roundtrip, first write wins" `Quick
      test_store_roundtrip;
    Alcotest.test_case "store: corrupt tail truncated on open" `Quick
      test_store_corrupt_tail;
    Alcotest.test_case "store: single writer per directory" `Quick
      test_store_single_writer;
    Alcotest.test_case "checkpoint: single writer per directory" `Quick
      test_checkpoint_single_writer;
    Alcotest.test_case "breaker: trip, cooldown, half-open, close" `Quick
      test_breaker_state_machine;
    Alcotest.test_case "server: request order kept, crashes isolated" `Quick
      test_server_order_and_fault_isolation;
    Alcotest.test_case "server: settle thunks run in request order" `Quick
      test_server_settle_order;
    Alcotest.test_case "server: overlong line rejected in bounded memory" `Quick
      test_server_overlong_line;
    Alcotest.test_case "server: drain finishes the in-flight batch" `Quick
      test_server_drain_finishes_batch;
    Alcotest.test_case "protocol: validation error taxonomy" `Quick
      test_protocol_validation;
    Alcotest.test_case "protocol: admission control rejects declared overload"
      `Quick test_protocol_admission;
    Alcotest.test_case "protocol: health reports store and breakers" `Quick
      test_protocol_health;
    Alcotest.test_case "protocol: poison by tag is jobs-invariant" `Quick
      test_poison_by_tag;
    Alcotest.test_case "protocol: crash details are redacted" `Quick
      test_redaction;
    Alcotest.test_case "breaker: degraded answers, then recovery" `Quick
      test_breaker_degrades_and_recovers;
    Alcotest.test_case "store: warm answers byte-identical across restart"
      `Quick test_store_serves_warm_and_restart;
    Alcotest.test_case "chaos: SIGKILL mid-serve, restart replays identically"
      `Quick test_kill_and_restart_serving;
  ]
