(* Shared QCheck substrate for the property suites.

   One pinned seed, printed at startup and overridable with
   QCHECK_SEED, so every property run is reproducible from its log
   alone — qcheck-alcotest would otherwise self-init a fresh random
   seed per run, which is how the geometry monotonicity suite once went
   flaky.  Every suite funnels its QCheck tests through {!to_alcotest}
   here; the common generators (knobs, design grids, workloads, cache
   geometries, traces) live alongside so the suites share one
   vocabulary of inputs. *)

module Tech = Nmcache_device.Tech
module Grid = Nmcache_opt.Grid
module Registry = Nmcache_workload.Registry

let default_seed = 240214

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | None | Some "" -> default_seed
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None ->
      Printf.eprintf "generators: ignoring non-integer QCHECK_SEED %S\n%!" s;
      default_seed)

let () = Printf.printf "qcheck seed: %d (override with QCHECK_SEED)\n%!" seed

let to_alcotest test =
  (* a fresh state per test, all from the one seed: results don't
     depend on suite order *)
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) test

let tech = Tech.bptm65

(* --- knobs ----------------------------------------------------------- *)

let print_knob (v, t) = Printf.sprintf "(%.3fV,%.2fA)" v t

let knob_arb =
  (* the full legal (Vth, Tox-angstrom) box, boundaries included *)
  QCheck.make ~print:print_knob
    QCheck.Gen.(pair (float_range tech.Tech.vth_min tech.Tech.vth_max) (float_range 10.0 14.0))

let interior_knob_arb =
  (* headroom for the +0.02 V / +0.2 A nudges monotonicity properties
     apply without leaving the legal box *)
  QCheck.make ~print:print_knob QCheck.Gen.(pair (float_range 0.2 0.48) (float_range 10.0 13.8))

(* --- design grids ---------------------------------------------------- *)

let grid_arb =
  (* random downsamples of the paper's full 13 x 9 grid — small enough
     to search exhaustively, always containing the axis endpoints *)
  let full = Grid.make tech in
  QCheck.make
    ~print:(fun (g : Grid.t) ->
      Printf.sprintf "%dx%d grid" (Array.length g.Grid.vths) (Array.length g.Grid.toxs))
    QCheck.Gen.(
      map
        (fun (vths, toxs) -> Grid.subsample full ~vths ~toxs)
        (pair (int_range 2 5) (int_range 2 4)))

(* --- workloads ------------------------------------------------------- *)

let workload_arb = QCheck.make ~print:Fun.id (QCheck.Gen.oneofl Registry.names)

(* --- cache geometries ------------------------------------------------ *)

let geometry_arb =
  (* (size_bytes, assoc, block_bytes), always valid for Cache.create:
     power-of-two associativity (PLRU-safe) and at least one set *)
  QCheck.make
    ~print:(fun (size, assoc, block) -> Printf.sprintf "%dB/%d-way/%dB" size assoc block)
    QCheck.Gen.(
      map
        (fun (assoc_log, sets_log, block_log) ->
          let assoc = 1 lsl assoc_log and block = 1 lsl block_log in
          (assoc * (1 lsl sets_log) * block, assoc, block))
        (triple (int_range 0 4) (int_range 0 6) (int_range 4 7)))

(* --- traces and misc cases ------------------------------------------- *)

let trace_seed_arb = QCheck.(int_bound 10_000)
(** seeds for short synthetic traces (reference-model comparisons) *)

let mattson_case_arb = QCheck.(pair (int_bound 100_000) (int_range 1 6))
(** (trace seed, log2 capacity) for stack-distance cross-checks *)

let linsys_seed_arb = QCheck.(pair (int_bound 1000) small_int)
(** (system seed, _) for random well-conditioned linear systems *)

let point_cloud_arb =
  QCheck.(
    list_of_size Gen.(int_range 1 50) (pair (float_range 0.0 10.0) (float_range 0.0 10.0)))
(** small 2-D point clouds for Pareto-front properties *)
