(* Tests for the observability layer: the mini JSON codec, metrics
   registry (histogram quantiles, cross-domain counter safety), span
   tracing (chrome trace_event export round-trip, nesting, agreement
   with the flat Trace stage table) and the machine-readable report
   assembly. *)

module Json = Nmcache_engine.Json
module Metrics = Nmcache_engine.Metrics
module Span = Nmcache_engine.Span
module Obs = Nmcache_engine.Obs
module Trace = Nmcache_engine.Trace
module Pool = Nmcache_engine.Pool
module Task = Nmcache_engine.Task
module Sweep = Nmcache_engine.Sweep

let with_clean_slate f =
  Metrics.reset ();
  Trace.reset ();
  Span.set_enabled false;
  Span.reset ();
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ();
      Metrics.reset ();
      Trace.reset ())
    f

(* --- json ----------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("n", Json.Int (-42));
        ("pi", Json.Float 3.14159265358979312);
        ("tiny", Json.Float 1.5e-300);
        ("s", Json.String "line\nquote\"back\\slash\ttab");
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
        ("nested", Json.List [ Json.Int 1; Json.List [ Json.String "x" ]; Json.Obj [ ("k", Json.Int 2) ] ]);
      ]
  in
  List.iter
    (fun rendered ->
      match Json.parse rendered with
      | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
      | Error e -> Alcotest.fail e)
    [ Json.to_string v; Json.to_string_pretty v ]

let test_json_float_fidelity () =
  (* %.17g must reproduce doubles bit-exactly through parse *)
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float f') ->
        Alcotest.(check bool) (Printf.sprintf "%h survives" f) true (Int64.bits_of_float f = Int64.bits_of_float f')
      | Ok v -> Alcotest.failf "parsed to non-float %s" (Json.to_string v)
      | Error e -> Alcotest.fail e)
    [ 0.1; 1.0 /. 3.0; 6.241e18; -0.0; 1e-300 ];
  (* non-finite floats degrade to null rather than invalid JSON *)
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}" ]

let test_json_deep_nesting () =
  (* the recursive-descent parser must take 512-deep structures in
     stride, and a truncated deep structure must fail cleanly *)
  let depth = 512 in
  let s = String.make depth '[' ^ "7" ^ String.make depth ']' in
  let rec unwrap v = function
    | 0 -> Alcotest.(check bool) "innermost value" true (v = Json.Int 7)
    | k -> (
      match v with
      | Json.List [ inner ] -> unwrap inner (k - 1)
      | _ -> Alcotest.fail "expected singleton list")
  in
  (match Json.parse s with
  | Ok v -> unwrap v depth
  | Error e -> Alcotest.fail e);
  (match Json.parse (String.make depth '[') with
  | Ok _ -> Alcotest.fail "accepted unclosed deep nesting"
  | Error _ -> ());
  (* deep object nesting too *)
  let obj = String.concat "" (List.init 64 (fun _ -> "{\"k\":")) ^ "true" ^ String.make 64 '}' in
  match Json.parse obj with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_json_escapes () =
  let roundtrip input expected =
    match Json.parse input with
    | Ok (Json.String s) -> Alcotest.(check string) input expected s
    | Ok v -> Alcotest.failf "parsed %s to non-string %s" input (Json.to_string v)
    | Error e -> Alcotest.failf "%s rejected: %s" input e
  in
  roundtrip {|"\n\t\r\b\f"|} "\n\t\r\b\012";
  roundtrip {|"\\\"\/"|} "\\\"/";
  (* \uXXXX decodes to UTF-8: e9 -> 2 bytes, 20ac (euro) -> 3 bytes *)
  roundtrip "\"A\\u00e9\\u20ac\"" "A\xc3\xa9\xe2\x82\xac";
  (* the encoder's control-char escaping must parse back to the same string *)
  let original = "ctl\x01\x1f end" in
  (match Json.parse (Json.to_string (Json.String original)) with
  | Ok (Json.String s) -> Alcotest.(check string) "control chars round-trip" original s
  | Ok _ | Error _ -> Alcotest.fail "control-char round-trip failed");
  (* malformed escapes are rejected *)
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted bad escape %S" s
      | Error _ -> ())
    [ {|"\x41"|}; {|"\u12"|}; {|"\u12zz"|}; {|"\|} ]

let test_json_nonfinite_rejected () =
  (* JSON has no NaN/Infinity literals; the parser must not smuggle
     them in via the number or literal paths *)
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok v -> Alcotest.failf "accepted %S as %s" s (Json.to_string v)
      | Error _ -> ())
    [ "NaN"; "nan"; "Infinity"; "-Infinity"; "inf"; "-inf"; "[1, NaN]"; "{\"x\": Infinity}" ]

let test_json_accessors () =
  let v = Json.parse_exn {|{"a": [1, 2.5], "b": "x"}|} in
  Alcotest.(check (option int)) "int member" (Some 1)
    (Option.bind (Json.member "a" v) (fun l ->
         Option.bind (Json.to_list l) (fun l -> Json.to_int (List.hd l))));
  Alcotest.(check (option string)) "str member" (Some "x")
    (Option.bind (Json.member "b" v) Json.to_str);
  Alcotest.(check (option string)) "missing member" None
    (Option.bind (Json.member "zzz" v) Json.to_str)

(* --- metrics -------------------------------------------------------------- *)

let test_counters_and_gauges () =
  with_clean_slate (fun () ->
      Metrics.incr "c";
      Metrics.incr ~by:41 "c";
      Alcotest.(check int) "counter sums" 42 (Metrics.counter_value "c");
      Alcotest.(check int) "unknown counter is 0" 0 (Metrics.counter_value "nope");
      Metrics.set_gauge "g" 1.5;
      Metrics.set_gauge "g" 2.5;
      Alcotest.(check (option (float 1e-9))) "gauge keeps last" (Some 2.5) (Metrics.gauge_value "g"))

let test_histogram_quantiles () =
  with_clean_slate (fun () ->
      (* uniform 1..1000: p50=500, p90=900, p99=990; log buckets are 16
         per decade, so estimates carry at most ~8% relative error *)
      for i = 1 to 1000 do
        Metrics.observe "h" (float_of_int i)
      done;
      match Metrics.histogram_summary "h" with
      | None -> Alcotest.fail "histogram missing"
      | Some s ->
        Alcotest.(check int) "count" 1000 s.Metrics.count;
        Alcotest.(check (float 1e-6)) "sum" 500500.0 s.Metrics.sum;
        Alcotest.(check (float 1e-6)) "min" 1.0 s.Metrics.min;
        Alcotest.(check (float 1e-6)) "max" 1000.0 s.Metrics.max;
        let check_quantile name est truth =
          let rel = Float.abs (est -. truth) /. truth in
          if rel > 0.10 then
            Alcotest.failf "%s: estimate %.1f vs true %.1f (rel %.3f)" name est truth rel
        in
        check_quantile "p50" s.Metrics.p50 500.0;
        check_quantile "p90" s.Metrics.p90 900.0;
        check_quantile "p99" s.Metrics.p99 990.0)

let test_histogram_degenerate () =
  with_clean_slate (fun () ->
      Metrics.observe "one" 7.0;
      (match Metrics.histogram_summary "one" with
      | Some s ->
        Alcotest.(check (float 1e-6)) "single-sample p50 is clamped" 7.0 s.Metrics.p50;
        Alcotest.(check (float 1e-6)) "single-sample p99 is clamped" 7.0 s.Metrics.p99
      | None -> Alcotest.fail "missing");
      Metrics.observe "zeros" 0.0;
      Metrics.observe "zeros" (-3.0);
      match Metrics.histogram_summary "zeros" with
      | Some s ->
        Alcotest.(check int) "non-positive samples counted" 2 s.Metrics.count;
        Alcotest.(check (float 1e-6)) "p50 of underflow bucket" 0.0 s.Metrics.p50
      | None -> Alcotest.fail "missing")

let test_counters_parallel () =
  with_clean_slate (fun () ->
      (* 64 kernels on 4 domains all bumping the same counter: the total
         must be exact, not racy *)
      ignore
        (Pool.map_array (Pool.create ~jobs:4)
           (fun _ ->
             for _ = 1 to 1000 do
               Metrics.incr "par"
             done;
             Metrics.observe "par.h" 1.0)
           (Array.init 64 Fun.id));
      Alcotest.(check int) "counter exact across domains" 64_000 (Metrics.counter_value "par");
      match Metrics.histogram_summary "par.h" with
      | Some s -> Alcotest.(check int) "histogram count exact" 64 s.Metrics.count
      | None -> Alcotest.fail "histogram missing")

let test_metrics_json_parses () =
  with_clean_slate (fun () ->
      Metrics.incr "a.count";
      Metrics.set_gauge "a.gauge" 0.5;
      Metrics.observe "a.h" 10.0;
      Trace.record ~stage:"st" ~tasks:3 ~busy_s:0.1 ~wall_s:0.1;
      Trace.cache_hit "memo1";
      Trace.cache_miss "memo1";
      let report = Obs.metrics_report () in
      let parsed = Json.parse_exn (Json.to_string_pretty report) in
      Alcotest.(check (option int)) "schema_version" (Some Obs.metrics_schema_version)
        (Option.bind (Json.member "schema_version" parsed) Json.to_int);
      let counters = Option.get (Json.member "metrics" parsed) |> Json.member "counters" |> Option.get in
      Alcotest.(check (option int)) "counter in report" (Some 1)
        (Option.bind (Json.member "a.count" counters) Json.to_int);
      let memo = Option.get (Json.member "memo" parsed) |> Json.to_list |> Option.get in
      Alcotest.(check int) "one memo cache" 1 (List.length memo);
      let hit_rate = Option.get (Json.member "hit_rate" (List.hd memo)) in
      Alcotest.(check (option (float 1e-9))) "hit rate" (Some 0.5) (Json.to_float hit_rate);
      let stages = Option.get (Json.member "stages" parsed) |> Json.to_list |> Option.get in
      Alcotest.(check (option int)) "stage tasks" (Some 3)
        (Option.bind (Json.member "tasks" (List.hd stages)) Json.to_int))

(* --- spans ---------------------------------------------------------------- *)

let test_span_disabled_is_free () =
  with_clean_slate (fun () ->
      let r = Span.with_span "off" (fun () -> 41 + 1) in
      Alcotest.(check int) "value passes through" 42 r;
      Alcotest.(check int) "nothing recorded" 0 (List.length (Span.spans ())))

let test_span_exception_still_records () =
  with_clean_slate (fun () ->
      Span.set_enabled true;
      (try Span.with_span "boom" (fun () -> failwith "kernel") with Failure _ -> ());
      let spans = Span.spans () in
      Alcotest.(check int) "span recorded despite raise" 1 (List.length spans);
      Alcotest.(check (option int)) "stack unwound" None (Span.current_id ()))

let find_spans name spans = List.filter (fun (s : Span.span) -> s.Span.name = name) spans

let test_span_chrome_roundtrip () =
  with_clean_slate (fun () ->
      Span.set_enabled true;
      Span.with_span ~attrs:[ ("layer", Json.Int 0) ] "root" (fun () ->
          Span.with_span "middle" (fun () ->
              Span.with_span "leaf" (fun () -> ());
              Span.with_span "leaf" (fun () -> ())));
      let parsed = Json.parse_exn (Json.to_string (Span.to_chrome_json ())) in
      let events =
        Option.get (Json.member "traceEvents" parsed) |> Json.to_list |> Option.get
      in
      let complete =
        List.filter
          (fun e -> Json.member "ph" e |> Option.get |> Json.to_str = Some "X")
          events
      in
      Alcotest.(check int) "four complete events" 4 (List.length complete);
      (* every event carries the trace_event envelope *)
      List.iter
        (fun e ->
          Alcotest.(check (option int)) "pid" (Some 1)
            (Option.bind (Json.member "pid" e) Json.to_int);
          Alcotest.(check bool) "tid present" true (Json.member "tid" e <> None);
          Alcotest.(check bool) "ts numeric" true
            (Option.bind (Json.member "ts" e) Json.to_float <> None);
          Alcotest.(check bool) "dur numeric" true
            (Option.bind (Json.member "dur" e) Json.to_float <> None))
        complete;
      (* rebuild the tree from args.span_id/parent_id and check both the
         edges and the time containment *)
      let field e name = Option.get (Json.member name e) in
      let arg e name = Json.member name (field e "args") in
      let by_id =
        List.map (fun e -> (Option.get (Option.bind (arg e "span_id") Json.to_int), e)) complete
      in
      let name_of e = Option.get (Json.to_str (field e "name")) in
      let root = List.hd (List.filter (fun (_, e) -> name_of e = "root") by_id) in
      let middle = List.hd (List.filter (fun (_, e) -> name_of e = "middle") by_id) in
      let leaves = List.filter (fun (_, e) -> name_of e = "leaf") by_id in
      Alcotest.(check int) "two leaves" 2 (List.length leaves);
      Alcotest.(check (option int)) "root has no parent" None
        (Option.bind (arg (snd root) "parent_id") Json.to_int);
      Alcotest.(check (option int)) "middle's parent is root" (Some (fst root))
        (Option.bind (arg (snd middle) "parent_id") Json.to_int);
      List.iter
        (fun (_, leaf) ->
          Alcotest.(check (option int)) "leaf's parent is middle" (Some (fst middle))
            (Option.bind (arg leaf "parent_id") Json.to_int))
        leaves;
      Alcotest.(check (option int)) "attrs exported" (Some 0)
        (Option.bind (arg (snd root) "layer") Json.to_int);
      let ts e = Option.get (Option.bind (Json.member "ts" e) Json.to_float) in
      let finish e = ts e +. Option.get (Option.bind (Json.member "dur" e) Json.to_float) in
      let slack = 1.0 (* µs: gettimeofday resolution *) in
      List.iter
        (fun (_, child) ->
          let parent = snd (if name_of child = "middle" then root else middle) in
          Alcotest.(check bool) "child starts after parent" true (ts child >= ts parent -. slack);
          Alcotest.(check bool) "child ends before parent" true
            (finish child <= finish parent +. slack))
        (middle :: leaves))

let test_span_crosses_domains () =
  with_clean_slate (fun () ->
      Span.set_enabled true;
      (* kernels sleep briefly so the spawned domains claim work before
         the calling domain drains the queue *)
      let task =
        Task.make ~name:"obs.kernel" (fun i ->
            Unix.sleepf 0.005;
            i * 3)
      in
      let out =
        Span.with_span "fanout-root" (fun () ->
            Sweep.map_array ~pool:(Pool.create ~jobs:4) task (Array.init 16 Fun.id))
      in
      Alcotest.(check int) "sweep result intact" 45 out.(15);
      let spans = Span.spans () in
      let sweep_span =
        match find_spans "sweep:obs.kernel" spans with
        | [ s ] -> s
        | l -> Alcotest.failf "expected one sweep span, got %d" (List.length l)
      in
      let root = List.hd (find_spans "fanout-root" spans) in
      Alcotest.(check (option int)) "sweep hangs off enclosing span"
        (Some root.Span.id) sweep_span.Span.parent;
      let kernels = find_spans "obs.kernel" spans in
      Alcotest.(check int) "one span per kernel" 16 (List.length kernels);
      List.iter
        (fun (k : Span.span) ->
          Alcotest.(check (option int)) "kernel parented to sweep across domains"
            (Some sweep_span.Span.id) k.Span.parent)
        kernels;
      let tids = List.sort_uniq compare (List.map (fun (k : Span.span) -> k.Span.tid) kernels) in
      Alcotest.(check bool) "kernels ran on more than one domain" true (List.length tids > 1))

let test_span_trace_agreement () =
  with_clean_slate (fun () ->
      Span.set_enabled true;
      let task = Task.make ~name:"obs.agree" (fun i -> i + 1) in
      ignore (Sweep.map_array ~pool:(Pool.create ~jobs:2) task (Array.init 10 Fun.id));
      ignore (Sweep.map_array ~pool:Pool.sequential task (Array.init 5 Fun.id));
      let stage =
        List.find (fun (s : Trace.stage) -> s.Trace.name = "obs.agree") (Trace.stages ())
      in
      let spans = Span.spans () in
      Alcotest.(check int) "trace tasks == kernel spans" stage.Trace.tasks
        (List.length (find_spans "obs.agree" spans));
      Alcotest.(check int) "trace calls == sweep spans" stage.Trace.calls
        (List.length (find_spans "sweep:obs.agree" spans));
      let spanned_tasks =
        List.fold_left
          (fun acc (s : Span.span) ->
            match List.assoc_opt "tasks" s.Span.attrs with
            | Some (Json.Int n) -> acc + n
            | _ -> acc)
          0
          (find_spans "sweep:obs.agree" spans)
      in
      Alcotest.(check int) "trace tasks == sweep span attrs" stage.Trace.tasks spanned_tasks)

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json float fidelity" `Quick test_json_float_fidelity;
    Alcotest.test_case "json rejects malformed input" `Quick test_json_parse_errors;
    Alcotest.test_case "json deep nesting" `Quick test_json_deep_nesting;
    Alcotest.test_case "json string escapes" `Quick test_json_escapes;
    Alcotest.test_case "json rejects non-finite literals" `Quick test_json_nonfinite_rejected;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "histogram quantiles (uniform 1..1000)" `Quick test_histogram_quantiles;
    Alcotest.test_case "histogram degenerate shapes" `Quick test_histogram_degenerate;
    Alcotest.test_case "counters exact across domains" `Quick test_counters_parallel;
    Alcotest.test_case "metrics report parses back" `Quick test_metrics_json_parses;
    Alcotest.test_case "disabled spans record nothing" `Quick test_span_disabled_is_free;
    Alcotest.test_case "span survives exceptions" `Quick test_span_exception_still_records;
    Alcotest.test_case "chrome trace round-trips with nesting" `Quick test_span_chrome_roundtrip;
    Alcotest.test_case "spans cross the domain boundary" `Quick test_span_crosses_domains;
    Alcotest.test_case "span layer agrees with Trace stages" `Quick test_span_trace_agreement;
  ]
