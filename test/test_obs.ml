(* Tests for the observability layer: the mini JSON codec, metrics
   registry (histogram quantiles, cross-domain counter safety), span
   tracing (chrome trace_event export round-trip, nesting, agreement
   with the flat Trace stage table) and the machine-readable report
   assembly. *)

module Json = Nmcache_engine.Json
module Metrics = Nmcache_engine.Metrics
module Span = Nmcache_engine.Span
module Obs = Nmcache_engine.Obs
module Trace = Nmcache_engine.Trace
module Pool = Nmcache_engine.Pool
module Task = Nmcache_engine.Task
module Sweep = Nmcache_engine.Sweep

let with_clean_slate f =
  Metrics.reset ();
  Trace.reset ();
  Span.set_enabled false;
  Span.reset ();
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ();
      Metrics.reset ();
      Trace.reset ())
    f

(* --- json ----------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("n", Json.Int (-42));
        ("pi", Json.Float 3.14159265358979312);
        ("tiny", Json.Float 1.5e-300);
        ("s", Json.String "line\nquote\"back\\slash\ttab");
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
        ("nested", Json.List [ Json.Int 1; Json.List [ Json.String "x" ]; Json.Obj [ ("k", Json.Int 2) ] ]);
      ]
  in
  List.iter
    (fun rendered ->
      match Json.parse rendered with
      | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
      | Error e -> Alcotest.fail e)
    [ Json.to_string v; Json.to_string_pretty v ]

let test_json_float_fidelity () =
  (* %.17g must reproduce doubles bit-exactly through parse *)
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float f') ->
        Alcotest.(check bool) (Printf.sprintf "%h survives" f) true (Int64.bits_of_float f = Int64.bits_of_float f')
      | Ok v -> Alcotest.failf "parsed to non-float %s" (Json.to_string v)
      | Error e -> Alcotest.fail e)
    [ 0.1; 1.0 /. 3.0; 6.241e18; -0.0; 1e-300 ];
  (* non-finite floats degrade to null rather than invalid JSON *)
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}" ]

let test_json_deep_nesting () =
  (* the recursive-descent parser must take 512-deep structures in
     stride, and a truncated deep structure must fail cleanly *)
  let depth = 512 in
  let s = String.make depth '[' ^ "7" ^ String.make depth ']' in
  let rec unwrap v = function
    | 0 -> Alcotest.(check bool) "innermost value" true (v = Json.Int 7)
    | k -> (
      match v with
      | Json.List [ inner ] -> unwrap inner (k - 1)
      | _ -> Alcotest.fail "expected singleton list")
  in
  (match Json.parse s with
  | Ok v -> unwrap v depth
  | Error e -> Alcotest.fail e);
  (match Json.parse (String.make depth '[') with
  | Ok _ -> Alcotest.fail "accepted unclosed deep nesting"
  | Error _ -> ());
  (* deep object nesting too *)
  let obj = String.concat "" (List.init 64 (fun _ -> "{\"k\":")) ^ "true" ^ String.make 64 '}' in
  match Json.parse obj with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_json_escapes () =
  let roundtrip input expected =
    match Json.parse input with
    | Ok (Json.String s) -> Alcotest.(check string) input expected s
    | Ok v -> Alcotest.failf "parsed %s to non-string %s" input (Json.to_string v)
    | Error e -> Alcotest.failf "%s rejected: %s" input e
  in
  roundtrip {|"\n\t\r\b\f"|} "\n\t\r\b\012";
  roundtrip {|"\\\"\/"|} "\\\"/";
  (* \uXXXX decodes to UTF-8: e9 -> 2 bytes, 20ac (euro) -> 3 bytes *)
  roundtrip "\"A\\u00e9\\u20ac\"" "A\xc3\xa9\xe2\x82\xac";
  (* the encoder's control-char escaping must parse back to the same string *)
  let original = "ctl\x01\x1f end" in
  (match Json.parse (Json.to_string (Json.String original)) with
  | Ok (Json.String s) -> Alcotest.(check string) "control chars round-trip" original s
  | Ok _ | Error _ -> Alcotest.fail "control-char round-trip failed");
  (* malformed escapes are rejected *)
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted bad escape %S" s
      | Error _ -> ())
    [ {|"\x41"|}; {|"\u12"|}; {|"\u12zz"|}; {|"\|} ]

let test_json_nonfinite_rejected () =
  (* JSON has no NaN/Infinity literals; the parser must not smuggle
     them in via the number or literal paths *)
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok v -> Alcotest.failf "accepted %S as %s" s (Json.to_string v)
      | Error _ -> ())
    [ "NaN"; "nan"; "Infinity"; "-Infinity"; "inf"; "-inf"; "[1, NaN]"; "{\"x\": Infinity}" ]

let test_json_accessors () =
  let v = Json.parse_exn {|{"a": [1, 2.5], "b": "x"}|} in
  Alcotest.(check (option int)) "int member" (Some 1)
    (Option.bind (Json.member "a" v) (fun l ->
         Option.bind (Json.to_list l) (fun l -> Json.to_int (List.hd l))));
  Alcotest.(check (option string)) "str member" (Some "x")
    (Option.bind (Json.member "b" v) Json.to_str);
  Alcotest.(check (option string)) "missing member" None
    (Option.bind (Json.member "zzz" v) Json.to_str)

(* --- metrics -------------------------------------------------------------- *)

let test_counters_and_gauges () =
  with_clean_slate (fun () ->
      Metrics.incr "c";
      Metrics.incr ~by:41 "c";
      Alcotest.(check int) "counter sums" 42 (Metrics.counter_value "c");
      Alcotest.(check int) "unknown counter is 0" 0 (Metrics.counter_value "nope");
      Metrics.set_gauge "g" 1.5;
      Metrics.set_gauge "g" 2.5;
      Alcotest.(check (option (float 1e-9))) "gauge keeps last" (Some 2.5) (Metrics.gauge_value "g"))

let test_histogram_quantiles () =
  with_clean_slate (fun () ->
      (* uniform 1..1000: p50=500, p90=900, p99=990; log buckets are 16
         per decade, so estimates carry at most ~8% relative error *)
      for i = 1 to 1000 do
        Metrics.observe "h" (float_of_int i)
      done;
      match Metrics.histogram_summary "h" with
      | None -> Alcotest.fail "histogram missing"
      | Some s ->
        Alcotest.(check int) "count" 1000 s.Metrics.count;
        Alcotest.(check (float 1e-6)) "sum" 500500.0 s.Metrics.sum;
        Alcotest.(check (float 1e-6)) "min" 1.0 s.Metrics.min;
        Alcotest.(check (float 1e-6)) "max" 1000.0 s.Metrics.max;
        let check_quantile name est truth =
          let rel = Float.abs (est -. truth) /. truth in
          if rel > 0.10 then
            Alcotest.failf "%s: estimate %.1f vs true %.1f (rel %.3f)" name est truth rel
        in
        check_quantile "p50" s.Metrics.p50 500.0;
        check_quantile "p90" s.Metrics.p90 900.0;
        check_quantile "p99" s.Metrics.p99 990.0)

let test_histogram_degenerate () =
  with_clean_slate (fun () ->
      Metrics.observe "one" 7.0;
      (match Metrics.histogram_summary "one" with
      | Some s ->
        Alcotest.(check (float 1e-6)) "single-sample p50 is clamped" 7.0 s.Metrics.p50;
        Alcotest.(check (float 1e-6)) "single-sample p99 is clamped" 7.0 s.Metrics.p99
      | None -> Alcotest.fail "missing");
      Metrics.observe "zeros" 0.0;
      Metrics.observe "zeros" (-3.0);
      match Metrics.histogram_summary "zeros" with
      | Some s ->
        Alcotest.(check int) "non-positive samples counted" 2 s.Metrics.count;
        Alcotest.(check (float 1e-6)) "p50 of underflow bucket" 0.0 s.Metrics.p50
      | None -> Alcotest.fail "missing")

let test_histogram_edge_cases () =
  with_clean_slate (fun () ->
      (* never-observed name: no summary at all *)
      Alcotest.(check bool) "unknown histogram is None" true
        (Metrics.histogram_summary "never" = None);
      (* single sample: every quantile clamps to the one value *)
      Metrics.observe "single" 42.0;
      (match Metrics.histogram_summary "single" with
      | Some s ->
        Alcotest.(check int) "count 1" 1 s.Metrics.count;
        Alcotest.(check (float 1e-6)) "p50" 42.0 s.Metrics.p50;
        Alcotest.(check (float 1e-6)) "p90" 42.0 s.Metrics.p90;
        Alcotest.(check (float 1e-6)) "p99" 42.0 s.Metrics.p99
      | None -> Alcotest.fail "missing");
      (* p99 with fewer than 100 samples: the rank rounds to the last
         sample, so the estimate must clamp into [min, max] — never
         overshoot the largest observation *)
      for i = 1 to 10 do
        Metrics.observe "ten" (float_of_int i)
      done;
      (match Metrics.histogram_summary "ten" with
      | Some s ->
        Alcotest.(check bool) "p99 <= max" true (s.Metrics.p99 <= 10.0);
        Alcotest.(check bool) "p99 >= p50" true (s.Metrics.p99 >= s.Metrics.p50);
        Alcotest.(check bool) "p50 plausible" true
          (s.Metrics.p50 >= 1.0 && s.Metrics.p50 <= 10.0)
      | None -> Alcotest.fail "missing");
      (* observe_n must be indistinguishable from n repeated observes *)
      Metrics.observe_n "bulk" 3.0 ~count:5;
      Metrics.observe_n "bulk" 0.0 ~count:2;
      Metrics.observe_n "bulk" 9.0 ~count:0;
      for _ = 1 to 5 do
        Metrics.observe "loop" 3.0
      done;
      Metrics.observe "loop" 0.0;
      Metrics.observe "loop" 0.0;
      match (Metrics.histogram_summary "bulk", Metrics.histogram_summary "loop") with
      | Some b, Some l ->
        Alcotest.(check int) "bulk count" 7 b.Metrics.count;
        Alcotest.(check (float 1e-9)) "bulk sum" l.Metrics.sum b.Metrics.sum;
        Alcotest.(check (float 1e-9)) "bulk p50" l.Metrics.p50 b.Metrics.p50;
        Alcotest.(check (float 1e-9)) "bulk p99" l.Metrics.p99 b.Metrics.p99
      | _ -> Alcotest.fail "missing")

let test_histogram_cross_domain_merge () =
  with_clean_slate (fun () ->
      (* 4 domains each observing a distinct value band into ONE
         histogram: the merged summary must count every sample and its
         quantiles must straddle the bands *)
      ignore
        (Pool.map_array (Pool.create ~jobs:4)
           (fun band ->
             for i = 1 to 250 do
               Metrics.observe "merged"
                 ((float_of_int band *. 1000.0) +. float_of_int i)
             done)
           (Array.init 4 Fun.id));
      match Metrics.histogram_summary "merged" with
      | None -> Alcotest.fail "histogram missing"
      | Some s ->
        Alcotest.(check int) "merged count exact" 1000 s.Metrics.count;
        Alcotest.(check (float 1e-6)) "min from band 0" 1.0 s.Metrics.min;
        Alcotest.(check (float 1e-6)) "max from band 3" 3250.0 s.Metrics.max;
        Alcotest.(check bool) "p50 in the middle bands" true
          (s.Metrics.p50 > 250.0 && s.Metrics.p50 < 3000.0);
        Alcotest.(check bool) "p99 near the top band" true (s.Metrics.p99 > 2000.0))

(* --- openmetrics ----------------------------------------------------------- *)

(* reverse of Metrics.escape_label_value, for round-trip checks *)
let unescape_label s =
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char b '\\'
       | '"' -> Buffer.add_char b '"'
       | 'n' -> Buffer.add_char b '\n'
       | c ->
         Buffer.add_char b '\\';
         Buffer.add_char b c);
       i := !i + 2
     end
     else begin
       Buffer.add_char b s.[!i];
       incr i
     end)
  done;
  Buffer.contents b

let test_openmetrics_escaping_roundtrip () =
  let nasty =
    [ "plain"; {|back\slash|}; {|quo"te|}; "new\nline"; "all\\three\"and\nmore" ]
  in
  List.iter
    (fun s ->
      Alcotest.(check string)
        (Printf.sprintf "label %S round-trips" s)
        s
        (unescape_label (Metrics.escape_label_value s)))
    nasty;
  (* help escaping touches backslash and newline but leaves quotes alone *)
  Alcotest.(check string) "help escapes newline" {|a\nb|} (Metrics.escape_help "a\nb");
  Alcotest.(check string) "help escapes backslash" {|a\\b|} (Metrics.escape_help {|a\b|});
  Alcotest.(check string) "help keeps quotes" {|a"b|} (Metrics.escape_help {|a"b|})

let test_openmetrics_exposition () =
  with_clean_slate (fun () ->
      Metrics.incr ~by:7 "cachesim.accesses";
      Metrics.set_gauge "pool.size" 4.0;
      Metrics.observe "lm.iters" 10.0;
      Metrics.observe "lm.iters" 20.0;
      (* a registry name that needs escaping when it becomes a label *)
      Metrics.incr {|weird\name"with|};
      let text = Metrics.to_openmetrics () in
      let has needle =
        let ln = String.length needle and lt = String.length text in
        let rec go i = i + ln <= lt && (String.sub text i ln = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "terminated by EOF" true
        (String.length text >= 6 && String.sub text (String.length text - 6) 6 = "# EOF\n");
      Alcotest.(check bool) "counter sample" true
        (has "ppcache_counter_total{name=\"cachesim.accesses\"} 7\n");
      Alcotest.(check bool) "gauge sample" true
        (has "ppcache_gauge{name=\"pool.size\"} 4\n");
      Alcotest.(check bool) "histogram quantile series" true
        (has "ppcache_histogram{name=\"lm.iters\",quantile=\"0.5\"}");
      Alcotest.(check bool) "histogram count" true
        (has "ppcache_histogram_count{name=\"lm.iters\"} 2\n");
      Alcotest.(check bool) "histogram sum" true
        (has "ppcache_histogram_sum{name=\"lm.iters\"} 30\n");
      Alcotest.(check bool) "escaped label rendered" true
        (has ("{name=\"" ^ Metrics.escape_label_value {|weird\name"with|} ^ "\"}"));
      Alcotest.(check bool) "HELP precedes TYPE" true
        (has "# HELP ppcache_counter " && has "# TYPE ppcache_counter counter\n");
      (* every non-comment line is  <sample> <value>  with no raw
         newline inside a label: line count matches sample count *)
      let lines = String.split_on_char '\n' text in
      let samples =
        List.filter
          (fun l -> l <> "" && l.[0] <> '#')
          lines
      in
      (* 2 counters + 1 gauge + (3 quantiles + sum + count) = 8 *)
      Alcotest.(check int) "sample-line count" 8 (List.length samples))

let test_counters_parallel () =
  with_clean_slate (fun () ->
      (* 64 kernels on 4 domains all bumping the same counter: the total
         must be exact, not racy *)
      ignore
        (Pool.map_array (Pool.create ~jobs:4)
           (fun _ ->
             for _ = 1 to 1000 do
               Metrics.incr "par"
             done;
             Metrics.observe "par.h" 1.0)
           (Array.init 64 Fun.id));
      Alcotest.(check int) "counter exact across domains" 64_000 (Metrics.counter_value "par");
      match Metrics.histogram_summary "par.h" with
      | Some s -> Alcotest.(check int) "histogram count exact" 64 s.Metrics.count
      | None -> Alcotest.fail "histogram missing")

let test_metrics_json_parses () =
  with_clean_slate (fun () ->
      Metrics.incr "a.count";
      Metrics.set_gauge "a.gauge" 0.5;
      Metrics.observe "a.h" 10.0;
      Trace.record ~stage:"st" ~tasks:3 ~busy_s:0.1 ~wall_s:0.1;
      Trace.cache_hit "memo1";
      Trace.cache_miss "memo1";
      let report = Obs.metrics_report () in
      let parsed = Json.parse_exn (Json.to_string_pretty report) in
      Alcotest.(check (option int)) "schema_version" (Some Obs.metrics_schema_version)
        (Option.bind (Json.member "schema_version" parsed) Json.to_int);
      let counters = Option.get (Json.member "metrics" parsed) |> Json.member "counters" |> Option.get in
      Alcotest.(check (option int)) "counter in report" (Some 1)
        (Option.bind (Json.member "a.count" counters) Json.to_int);
      let memo = Option.get (Json.member "memo" parsed) |> Json.to_list |> Option.get in
      Alcotest.(check int) "one memo cache" 1 (List.length memo);
      let hit_rate = Option.get (Json.member "hit_rate" (List.hd memo)) in
      Alcotest.(check (option (float 1e-9))) "hit rate" (Some 0.5) (Json.to_float hit_rate);
      let stages = Option.get (Json.member "stages" parsed) |> Json.to_list |> Option.get in
      Alcotest.(check (option int)) "stage tasks" (Some 3)
        (Option.bind (Json.member "tasks" (List.hd stages)) Json.to_int))

(* --- spans ---------------------------------------------------------------- *)

let test_span_disabled_is_free () =
  with_clean_slate (fun () ->
      let r = Span.with_span "off" (fun () -> 41 + 1) in
      Alcotest.(check int) "value passes through" 42 r;
      Alcotest.(check int) "nothing recorded" 0 (List.length (Span.spans ())))

let test_span_exception_still_records () =
  with_clean_slate (fun () ->
      Span.set_enabled true;
      (try Span.with_span "boom" (fun () -> failwith "kernel") with Failure _ -> ());
      let spans = Span.spans () in
      Alcotest.(check int) "span recorded despite raise" 1 (List.length spans);
      Alcotest.(check (option int)) "stack unwound" None (Span.current_id ()))

let find_spans name spans = List.filter (fun (s : Span.span) -> s.Span.name = name) spans

let test_span_chrome_roundtrip () =
  with_clean_slate (fun () ->
      Span.set_enabled true;
      Span.with_span ~attrs:[ ("layer", Json.Int 0) ] "root" (fun () ->
          Span.with_span "middle" (fun () ->
              Span.with_span "leaf" (fun () -> ());
              Span.with_span "leaf" (fun () -> ())));
      let parsed = Json.parse_exn (Json.to_string (Span.to_chrome_json ())) in
      let events =
        Option.get (Json.member "traceEvents" parsed) |> Json.to_list |> Option.get
      in
      let complete =
        List.filter
          (fun e -> Json.member "ph" e |> Option.get |> Json.to_str = Some "X")
          events
      in
      Alcotest.(check int) "four complete events" 4 (List.length complete);
      (* every event carries the trace_event envelope *)
      List.iter
        (fun e ->
          Alcotest.(check (option int)) "pid" (Some 1)
            (Option.bind (Json.member "pid" e) Json.to_int);
          Alcotest.(check bool) "tid present" true (Json.member "tid" e <> None);
          Alcotest.(check bool) "ts numeric" true
            (Option.bind (Json.member "ts" e) Json.to_float <> None);
          Alcotest.(check bool) "dur numeric" true
            (Option.bind (Json.member "dur" e) Json.to_float <> None))
        complete;
      (* rebuild the tree from args.span_id/parent_id and check both the
         edges and the time containment *)
      let field e name = Option.get (Json.member name e) in
      let arg e name = Json.member name (field e "args") in
      let by_id =
        List.map (fun e -> (Option.get (Option.bind (arg e "span_id") Json.to_int), e)) complete
      in
      let name_of e = Option.get (Json.to_str (field e "name")) in
      let root = List.hd (List.filter (fun (_, e) -> name_of e = "root") by_id) in
      let middle = List.hd (List.filter (fun (_, e) -> name_of e = "middle") by_id) in
      let leaves = List.filter (fun (_, e) -> name_of e = "leaf") by_id in
      Alcotest.(check int) "two leaves" 2 (List.length leaves);
      Alcotest.(check (option int)) "root has no parent" None
        (Option.bind (arg (snd root) "parent_id") Json.to_int);
      Alcotest.(check (option int)) "middle's parent is root" (Some (fst root))
        (Option.bind (arg (snd middle) "parent_id") Json.to_int);
      List.iter
        (fun (_, leaf) ->
          Alcotest.(check (option int)) "leaf's parent is middle" (Some (fst middle))
            (Option.bind (arg leaf "parent_id") Json.to_int))
        leaves;
      Alcotest.(check (option int)) "attrs exported" (Some 0)
        (Option.bind (arg (snd root) "layer") Json.to_int);
      let ts e = Option.get (Option.bind (Json.member "ts" e) Json.to_float) in
      let finish e = ts e +. Option.get (Option.bind (Json.member "dur" e) Json.to_float) in
      let slack = 1.0 (* µs: gettimeofday resolution *) in
      List.iter
        (fun (_, child) ->
          let parent = snd (if name_of child = "middle" then root else middle) in
          Alcotest.(check bool) "child starts after parent" true (ts child >= ts parent -. slack);
          Alcotest.(check bool) "child ends before parent" true
            (finish child <= finish parent +. slack))
        (middle :: leaves))

let test_span_crosses_domains () =
  with_clean_slate (fun () ->
      Span.set_enabled true;
      (* kernels sleep briefly so the spawned domains claim work before
         the calling domain drains the queue *)
      let task =
        Task.make ~name:"obs.kernel" (fun i ->
            Unix.sleepf 0.005;
            i * 3)
      in
      let out =
        Span.with_span "fanout-root" (fun () ->
            Sweep.map_array ~pool:(Pool.create ~jobs:4) task (Array.init 16 Fun.id))
      in
      Alcotest.(check int) "sweep result intact" 45 out.(15);
      let spans = Span.spans () in
      let sweep_span =
        match find_spans "sweep:obs.kernel" spans with
        | [ s ] -> s
        | l -> Alcotest.failf "expected one sweep span, got %d" (List.length l)
      in
      let root = List.hd (find_spans "fanout-root" spans) in
      Alcotest.(check (option int)) "sweep hangs off enclosing span"
        (Some root.Span.id) sweep_span.Span.parent;
      let kernels = find_spans "obs.kernel" spans in
      Alcotest.(check int) "one span per kernel" 16 (List.length kernels);
      List.iter
        (fun (k : Span.span) ->
          Alcotest.(check (option int)) "kernel parented to sweep across domains"
            (Some sweep_span.Span.id) k.Span.parent)
        kernels;
      let tids = List.sort_uniq compare (List.map (fun (k : Span.span) -> k.Span.tid) kernels) in
      Alcotest.(check bool) "kernels ran on more than one domain" true (List.length tids > 1))

let test_span_trace_agreement () =
  with_clean_slate (fun () ->
      Span.set_enabled true;
      let task = Task.make ~name:"obs.agree" (fun i -> i + 1) in
      ignore (Sweep.map_array ~pool:(Pool.create ~jobs:2) task (Array.init 10 Fun.id));
      ignore (Sweep.map_array ~pool:Pool.sequential task (Array.init 5 Fun.id));
      let stage =
        List.find (fun (s : Trace.stage) -> s.Trace.name = "obs.agree") (Trace.stages ())
      in
      let spans = Span.spans () in
      Alcotest.(check int) "trace tasks == kernel spans" stage.Trace.tasks
        (List.length (find_spans "obs.agree" spans));
      Alcotest.(check int) "trace calls == sweep spans" stage.Trace.calls
        (List.length (find_spans "sweep:obs.agree" spans));
      let spanned_tasks =
        List.fold_left
          (fun acc (s : Span.span) ->
            match List.assoc_opt "tasks" s.Span.attrs with
            | Some (Json.Int n) -> acc + n
            | _ -> acc)
          0
          (find_spans "sweep:obs.agree" spans)
      in
      Alcotest.(check int) "trace tasks == sweep span attrs" stage.Trace.tasks spanned_tasks)

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json float fidelity" `Quick test_json_float_fidelity;
    Alcotest.test_case "json rejects malformed input" `Quick test_json_parse_errors;
    Alcotest.test_case "json deep nesting" `Quick test_json_deep_nesting;
    Alcotest.test_case "json string escapes" `Quick test_json_escapes;
    Alcotest.test_case "json rejects non-finite literals" `Quick test_json_nonfinite_rejected;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "histogram quantiles (uniform 1..1000)" `Quick test_histogram_quantiles;
    Alcotest.test_case "histogram degenerate shapes" `Quick test_histogram_degenerate;
    Alcotest.test_case "histogram edge cases (empty, single, p99<100, observe_n)" `Quick
      test_histogram_edge_cases;
    Alcotest.test_case "histogram merges across domains" `Quick
      test_histogram_cross_domain_merge;
    Alcotest.test_case "openmetrics escaping round-trips" `Quick
      test_openmetrics_escaping_roundtrip;
    Alcotest.test_case "openmetrics exposition format" `Quick test_openmetrics_exposition;
    Alcotest.test_case "counters exact across domains" `Quick test_counters_parallel;
    Alcotest.test_case "metrics report parses back" `Quick test_metrics_json_parses;
    Alcotest.test_case "disabled spans record nothing" `Quick test_span_disabled_is_free;
    Alcotest.test_case "span survives exceptions" `Quick test_span_exception_still_records;
    Alcotest.test_case "chrome trace round-trips with nesting" `Quick test_span_chrome_roundtrip;
    Alcotest.test_case "spans cross the domain boundary" `Quick test_span_crosses_domains;
    Alcotest.test_case "span layer agrees with Trace stages" `Quick test_span_trace_agreement;
  ]
