(* Robustness suite for the production serve/store work: the lockfile
   TOCTOU regression (two racing processes, one stale lock, exactly one
   winner), store live/dead accounting and crash-ordered compaction,
   admission-limiter shedding, concurrent socket connections, and
   NDJSON trace recording.

   The lock-race test re-execs this binary (fork is unavailable once
   Alcotest may have spawned a domain); the child mode must be
   dispatched from test_main before Alcotest runs. *)

module Lockfile = Nmcache_engine.Lockfile
module Store = Nmcache_engine.Store
module Server = Nmcache_engine.Server
module Pool = Nmcache_engine.Pool
module Json = Nmcache_engine.Json
module Stream = Nmcache_cachesim.Stream_trace
module Service = Core.Service

let tmp_counter = ref 0

let tmpdir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pprobust-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let dead_pid () =
  let pid =
    Unix.create_process "true" [| "true" |] Unix.stdin Unix.stdout Unix.stderr
  in
  ignore (Unix.waitpid [] pid);
  pid

(* --- lockfile TOCTOU race ---------------------------------------------- *)

(* Child mode: both children stall in the stale-break window (after
   observing the dead-PID lock, before the tombstone rename) until the
   parent opens the barrier — the exact interleaving the unlink-based
   breaker got wrong, reproduced deterministically instead of by
   timing luck. *)
let lock_child_env = "PPCACHE_TEST_LOCK_CHILD"

let lock_child_main spec : unit =
  match String.split_on_char ':' spec with
  | [ lock_path; barrier_dir; result_file ] ->
    let entered = ref false in
    (Lockfile.stale_break_hook :=
       fun () ->
         if not !entered then begin
           entered := true;
           write_file
             (Filename.concat barrier_dir
                (Printf.sprintf "%d.window" (Unix.getpid ())))
             "";
           let go = Filename.concat barrier_dir "go" in
           let deadline = Unix.gettimeofday () +. 20.0 in
           while
             (not (Sys.file_exists go)) && Unix.gettimeofday () < deadline
           do
             Unix.sleepf 0.005
           done
         end);
    (match Lockfile.acquire ~path:lock_path with
    | lock ->
      write_file result_file "acquired";
      (* hold while the loser resolves: were the break not atomic, the
         loser would acquire concurrently, not sequentially *)
      Unix.sleepf 2.0;
      Lockfile.release lock
    | exception Lockfile.Locked _ -> write_file result_file "locked")
  | _ -> failwith ("bad " ^ lock_child_env ^ " spec: " ^ spec)

let test_lock_break_race () =
  let dir = tmpdir () in
  let lock_path = Filename.concat dir "x.lock" in
  write_file lock_path (Printf.sprintf "%d\n" (dead_pid ()));
  let spawn i =
    let result = Filename.concat dir (Printf.sprintf "result%d" i) in
    let env =
      Array.append (Unix.environment ())
        [| lock_child_env ^ "=" ^ lock_path ^ ":" ^ dir ^ ":" ^ result |]
    in
    let pid =
      Unix.create_process_env Sys.executable_name
        [| Sys.executable_name |]
        env Unix.stdin Unix.stdout Unix.stderr
    in
    (pid, result)
  in
  let p1, r1 = spawn 1 in
  let p2, r2 = spawn 2 in
  (* both children must observe the same stale lock and reach the break
     window before either is allowed to rename *)
  let windows () =
    List.length
      (List.filter
         (fun f -> Filename.check_suffix f ".window")
         (Array.to_list (Sys.readdir dir)))
  in
  let deadline = Unix.gettimeofday () +. 20.0 in
  while windows () < 2 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  Alcotest.(check int) "both children reached the break window" 2 (windows ());
  write_file (Filename.concat dir "go") "";
  ignore (Unix.waitpid [] p1);
  ignore (Unix.waitpid [] p2);
  let outcome r = try read_file r with Sys_error _ -> "missing" in
  let outcomes = List.sort compare [ outcome r1; outcome r2 ] in
  Alcotest.(check (list string))
    "exactly one child acquires, the other reports Locked"
    [ "acquired"; "locked" ] outcomes;
  (* the directory is not bricked: the winner released, we can acquire *)
  let l = Lockfile.acquire ~path:lock_path in
  Lockfile.release l

(* --- store accounting + crash-ordered compaction ------------------------ *)

let dup_payload = Marshal.to_string 4242 []

let test_store_accounting_and_compaction () =
  let dir = tmpdir () in
  let s = Store.open_ ~dir in
  Store.add s ~ns:"p" ~key:"a" 1;
  Store.add s ~ns:"p" ~key:"b" 2;
  Store.add s ~ns:"p" ~key:"c" 3;
  let path = Store.path s in
  Store.close s;
  (* duplicate every record (skip the 8-byte magic): valid CRCs, all
     shadowed by the originals under first-write-wins *)
  let raw = read_file path in
  write_file path (raw ^ String.sub raw 8 (String.length raw - 8));
  let s = Store.open_ ~dir in
  Alcotest.(check int) "live entries" 3 (Store.entries s);
  Alcotest.(check int) "dead records counted" 3 (Store.dead_records s);
  Alcotest.(check int)
    "dead bytes = live bytes (exact duplicates)" (Store.live_bytes s)
    (Store.dead_bytes s);
  Alcotest.(check int) "journal segment" 1 (Store.segment_version s);
  let dead_bytes_before = Store.dead_bytes s in
  let steps = ref [] in
  let stats = Store.compact ~on_step:(fun i -> steps := i :: !steps) s in
  Alcotest.(check (list int))
    "kill seam visits before-tmp, each record, fsync, rename"
    [ 0; 1; 2; 3; 4; 5 ] (List.rev !steps);
  Alcotest.(check int) "live written" 3 stats.Store.live;
  Alcotest.(check int) "dead reclaimed" 3 stats.Store.reclaimed_records;
  Alcotest.(check int) "bytes reclaimed" dead_bytes_before
    stats.Store.reclaimed_bytes;
  Alcotest.(check int) "before = magic + live + dead"
    (8 + Store.live_bytes s + dead_bytes_before)
    stats.Store.before_bytes;
  Alcotest.(check int) "after = magic + live" (8 + Store.live_bytes s)
    stats.Store.after_bytes;
  Alcotest.(check int) "compacted segment" 2 (Store.segment_version s);
  Alcotest.(check int) "no dead left" 0 (Store.dead_records s);
  Alcotest.(check (option int)) "gets unchanged" (Some 2)
    (Store.lookup s ~ns:"p" ~key:"b");
  (* the compacted segment is append-able *)
  Store.add s ~ns:"p" ~key:"d" 4;
  Store.close s;
  Alcotest.(check string) "PPSTOR02 magic on disk" Store.magic_compacted
    (String.sub (read_file path) 0 8);
  let s = Store.open_ ~dir in
  Alcotest.(check int) "reopen replays compacted + appended" 4 (Store.entries s);
  Alcotest.(check int) "version survives reopen" 2 (Store.segment_version s);
  Alcotest.(check (option int)) "post-compaction append survived" (Some 4)
    (Store.lookup s ~ns:"p" ~key:"d");
  Store.close s

(* --- store churn property ---------------------------------------------- *)

(* Random interleavings of put / reopen / compact / dead-duplicate /
   torn-tail against a sequential first-write-wins model: lookups,
   entry counts and dead-record accounting must match the model after
   every operation, and compaction must never change a get. *)
type churn_op = Put of int * int | Reopen | Compact | Dup of int | Torn

let churn_op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun k v -> Put (k, v)) (int_bound 7) (int_bound 99));
        (2, return Reopen);
        (1, return Compact);
        (2, map (fun k -> Dup k) (int_bound 7));
        (1, return Torn);
      ])

let churn_print op =
  match op with
  | Put (k, v) -> Printf.sprintf "Put(k%d,%d)" k v
  | Reopen -> "Reopen"
  | Compact -> "Compact"
  | Dup k -> Printf.sprintf "Dup(k%d)" k
  | Torn -> "Torn"

let churn_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map churn_print ops))
    QCheck.Gen.(list_size (int_range 1 40) churn_op_gen)

let store_churn_property =
  QCheck.Test.make ~count:25 ~name:"store churn matches first-write-wins model"
    churn_arb
    (fun ops ->
      let dir = tmpdir () in
      let key k = Printf.sprintf "k%d" k in
      let store = ref (Store.open_ ~dir) in
      let model = ref [] (* (key idx, value), first write wins *) in
      let dead = ref 0 in
      let reopen_with tail =
        let path = Store.path !store in
        Store.close !store;
        if tail <> "" then begin
          let oc =
            open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
          in
          output_string oc tail;
          close_out oc
        end;
        store := Store.open_ ~dir
      in
      let agree () =
        List.for_all
          (fun (k, v) -> Store.lookup !store ~ns:"p" ~key:(key k) = Some v)
          !model
        && Store.entries !store = List.length !model
        && Store.dead_records !store = !dead
      in
      let ok =
        List.for_all
          (fun op ->
            (match op with
            | Put (k, v) ->
              Store.add !store ~ns:"p" ~key:(key k) v;
              if not (List.mem_assoc k !model) then model := (k, v) :: !model
            | Reopen -> reopen_with ""
            | Compact ->
              ignore (Store.compact !store);
              dead := 0
            | Dup k ->
              (* a raw duplicate is dead only if the key already lives;
                 for an absent key it would *be* the first write *)
              if List.mem_assoc k !model then begin
                reopen_with
                  (Store.encode_record ~ns:"p" ~key:(key k) ~value:dup_payload);
                incr dead
              end
            | Torn ->
              let r =
                Store.encode_record ~ns:"p" ~key:"torn" ~value:dup_payload
              in
              reopen_with (String.sub r 0 (String.length r - 3)));
            agree ())
          ops
      in
      (* final compaction + reopen must preserve every get *)
      ignore (Store.compact !store);
      dead := 0;
      let ok = ok && agree () in
      reopen_with "";
      let ok = ok && agree () in
      Store.close !store;
      ok)

(* --- admission limiter -------------------------------------------------- *)

let run_serve ?limiter ?shed_response ~queue lines =
  let dir = tmpdir () in
  let inp = Filename.concat dir "in.ndjson" in
  let outp = Filename.concat dir "out.ndjson" in
  write_file inp (String.concat "" (List.map (fun l -> l ^ "\n") lines));
  let input = Unix.openfile inp [ Unix.O_RDONLY ] 0 in
  let output = open_out_bin outp in
  let handler ~line = ("R:" ^ line, fun () -> ()) in
  Fun.protect
    ~finally:(fun () ->
      Unix.close input;
      close_out output)
    (fun () ->
      ignore
        (Server.serve ~queue ?limiter ?shed_response ~pool:Pool.sequential
           ~handler
           ~crash_response:(fun ~line:_ _ -> "CRASH")
           ~overlong_response:(fun () -> "OVERLONG")
           ~input ~output ()));
  String.split_on_char '\n' (read_file outp)
  |> List.filter (fun l -> l <> "")

let test_limiter_sheds_in_order () =
  let lines = [ "a"; "b"; "c"; "d"; "e" ] in
  (* capacity 2 over one 5-line batch: the first two are served, the
     rest answered with the shed response, all in request order *)
  let out =
    run_serve
      ~limiter:(Server.make_limiter ~capacity:2)
      ~shed_response:(fun () -> "SHED")
      ~queue:8 lines
  in
  Alcotest.(check (list string))
    "grant first, shed the rest, in request order"
    [ "R:a"; "R:b"; "SHED"; "SHED"; "SHED" ]
    out;
  (* no limiter: nothing sheds *)
  let out = run_serve ~queue:8 lines in
  Alcotest.(check (list string))
    "unlimited serves everything"
    (List.map (fun l -> "R:" ^ l) lines)
    out

(* --- concurrent socket connections -------------------------------------- *)

let quick_ctx = lazy (Core.Context.quick ())

let make_service () =
  Service.create ~ctx:(Lazy.force quick_ctx) ~queue:8 ~jobs:1 ()

let amat_line i =
  Printf.sprintf
    {|{"id":"c%d","op":"amat","t_l1_ps":500,"t_l2_ps":2000,"t_mem_ps":60000,"m1":0.0%d,"m2":0.3}|}
    i
    ((i mod 9) + 1)

let ask service line =
  let resp, settle = Service.handle_line service line in
  settle ();
  resp

let test_socket_shed_connection () =
  let dir = tmpdir () in
  let sock = Filename.concat dir "s.sock" in
  let service = make_service () in
  Server.reset_drain ();
  let server =
    Thread.create
      (fun () ->
        Server.serve_unix_socket ~queue:4 ~max_conns:1 ~pool:Pool.sequential
          ~handler:(Service.handler service)
          ~crash_response:Service.crash_response
          ~overlong_response:Service.overlong_response
          ~shed_response:Service.shed_response ~path:sock ())
      ()
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Sys.file_exists sock)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  (* client A occupies the single connection slot (a completed
     round-trip proves its connection thread is live) *)
  let fd_a = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd_a (Unix.ADDR_UNIX sock);
  let oc_a = Unix.out_channel_of_descr fd_a in
  let ic_a = Unix.in_channel_of_descr fd_a in
  output_string oc_a (amat_line 0 ^ "\n");
  flush oc_a;
  let a0 = input_line ic_a in
  (* client B arrives at capacity: exactly one shed line, then close *)
  let fd_b = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd_b (Unix.ADDR_UNIX sock);
  let ic_b = Unix.in_channel_of_descr fd_b in
  let b_line = input_line ic_b in
  let b_eof = try ignore (input_line ic_b); false with End_of_file -> true in
  close_in_noerr ic_b;
  (* A's stream continues, unaffected by the shed *)
  output_string oc_a (amat_line 1 ^ "\n");
  flush oc_a;
  let a1 = input_line ic_a in
  Unix.shutdown fd_a Unix.SHUTDOWN_SEND;
  let a_eof = try ignore (input_line ic_a); false with End_of_file -> true in
  close_in_noerr ic_a;
  Server.request_drain ();
  Thread.join server;
  Server.reset_drain ();
  let solo = make_service () in
  Alcotest.(check string) "first answer = solo" (ask solo (amat_line 0)) a0;
  Alcotest.(check string) "answer after shed = solo" (ask solo (amat_line 1)) a1;
  Alcotest.(check bool) "held connection closes at EOF" true a_eof;
  Alcotest.(check string) "shed line is the structured overloaded response"
    (Service.shed_response ()) b_line;
  Alcotest.(check bool) "shed connection closed after one line" true b_eof

let test_socket_concurrent_streams () =
  let dir = tmpdir () in
  let sock = Filename.concat dir "s.sock" in
  let service = make_service () in
  Server.reset_drain ();
  let server =
    Thread.create
      (fun () ->
        Server.serve_unix_socket ~queue:4 ~max_conns:4 ~pool:Pool.sequential
          ~handler:(Service.handler service)
          ~crash_response:Service.crash_response
          ~overlong_response:Service.overlong_response
          ~shed_response:Service.shed_response ~path:sock ())
      ()
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Sys.file_exists sock)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  let slices =
    List.init 3 (fun c -> List.init 5 (fun i -> amat_line ((c * 10) + i)))
  in
  let results = Array.make 3 [] in
  let client c slice =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    let oc = Unix.out_channel_of_descr fd in
    let ic = Unix.in_channel_of_descr fd in
    List.iter (fun l -> output_string oc (l ^ "\n")) slice;
    flush oc;
    Unix.shutdown fd Unix.SHUTDOWN_SEND;
    let rec read_all acc =
      match input_line ic with
      | l -> read_all (l :: acc)
      | exception End_of_file -> List.rev acc
    in
    results.(c) <- read_all [];
    close_in_noerr ic
  in
  let threads =
    List.mapi (fun c slice -> Thread.create (fun () -> client c slice) ()) slices
  in
  List.iter Thread.join threads;
  Server.request_drain ();
  Thread.join server;
  Server.reset_drain ();
  List.iteri
    (fun c slice ->
      let solo = make_service () in
      Alcotest.(check (list string))
        (Printf.sprintf "client %d stream = solo run" c)
        (List.map (ask solo) slice)
        results.(c))
    slices

(* --- NDJSON trace recording --------------------------------------------- *)

let pipe_of_lines lines =
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  r

let test_record_stream_roundtrip () =
  let n = 200 in
  let lines =
    List.init n (fun i ->
        Printf.sprintf {|{"addr": %d, "write": %b}|} (i * 64) (i mod 3 = 0))
  in
  let r = pipe_of_lines lines in
  let t = Stream.of_ndjson_fd ~chunk_size:64 ~name:"piped" r in
  let dir = tmpdir () in
  let path = Filename.concat dir "t.pptrc" in
  let recorded = Stream.record_stream ~path t in
  Unix.close r;
  Alcotest.(check int) "every entry recorded" n recorded;
  let fi = Stream.file_info path in
  Alcotest.(check string) "name in header" "piped" fi.Stream.fi_name;
  Alcotest.(check int) "header total counted" n fi.Stream.fi_total;
  Alcotest.(check int) "entries readable" n fi.Stream.fi_entries;
  Alcotest.(check int) "on-disk chunk grain" 64 fi.Stream.fi_chunk_size;
  Alcotest.(check int) "chunk count" 4 fi.Stream.fi_chunks;
  Alcotest.(check bool) "clean tail" false fi.Stream.fi_dropped_tail;
  (* the recording replays the exact entry sequence *)
  let got = ref [] in
  let streamed =
    Stream.iter (Stream.of_file path) (fun e -> got := e :: !got)
  in
  Alcotest.(check int) "iter count" n streamed;
  let got = List.rev !got in
  Alcotest.(check bool) "addresses and kinds byte-exact" true
    (List.for_all2
       (fun i e ->
         e.Nmcache_cachesim.Trace.addr = i * 64
         && e.Nmcache_cachesim.Trace.write = (i mod 3 = 0))
       (List.init n Fun.id) got);
  (* no temporaries left behind *)
  Alcotest.(check (list string)) "only the committed file remains"
    [ "t.pptrc" ]
    (List.sort compare (Array.to_list (Sys.readdir dir)))

let test_record_stream_malformed_cleanup () =
  let r =
    pipe_of_lines
      [ {|{"addr": 64}|}; {|{"addr": 128}|}; "definitely not json" ]
  in
  let t = Stream.of_ndjson_fd ~chunk_size:2 ~name:"bad" r in
  let dir = tmpdir () in
  let path = Filename.concat dir "t.pptrc" in
  (match Stream.record_stream ~path t with
  | _ -> Alcotest.fail "malformed NDJSON must raise"
  | exception Invalid_argument _ -> ());
  Unix.close r;
  Alcotest.(check (list string))
    "no partial file, no spool left" []
    (Array.to_list (Sys.readdir dir))

(* --- suite ------------------------------------------------------------- *)

let suite =
  [
    Alcotest.test_case
      "lockfile: two racing breakers of one stale lock, one winner" `Quick
      test_lock_break_race;
    Alcotest.test_case "store: live/dead accounting and compaction stats"
      `Quick test_store_accounting_and_compaction;
    Generators.to_alcotest store_churn_property;
    Alcotest.test_case "server: limiter sheds beyond capacity in order" `Quick
      test_limiter_sheds_in_order;
    Alcotest.test_case "server: connection beyond max_conns is shed" `Quick
      test_socket_shed_connection;
    Alcotest.test_case "server: concurrent client streams match solo runs"
      `Quick test_socket_concurrent_streams;
    Alcotest.test_case "stream: NDJSON pipe recorded to PPTRC01 losslessly"
      `Quick test_record_stream_roundtrip;
    Alcotest.test_case "stream: malformed NDJSON recording leaves no partials"
      `Quick test_record_stream_malformed_cleanup;
  ]
