(* Tests for the optimisation layer: grids, Pareto fronts, the three
   assignment schemes, and the tuple problem. *)

module Units = Nmcache_physics.Units
module Tech = Nmcache_device.Tech
module Config = Nmcache_geometry.Config
module Component = Nmcache_geometry.Component
module Cache_model = Nmcache_geometry.Cache_model
module Fitted_cache = Nmcache_fit.Fitted_cache
module Grid = Nmcache_opt.Grid
module Pareto = Nmcache_opt.Pareto
module Scheme = Nmcache_opt.Scheme
module Tuple_problem = Nmcache_opt.Tuple_problem
module Rng = Nmcache_numerics.Rng

let tech = Tech.bptm65

let fitted =
  lazy
    (Fitted_cache.characterize_and_fit
       (Cache_model.make tech (Config.make ~size_bytes:(16 * 1024) ~assoc:4 ~block_bytes:64 ())))

(* --- grid ------------------------------------------------------------- *)

let test_grid_sizes () =
  let g = Grid.make tech in
  Alcotest.(check int) "13 vths" 13 (Array.length g.Grid.vths);
  Alcotest.(check int) "9 toxs" 9 (Array.length g.Grid.toxs);
  Alcotest.(check int) "117 knobs" 117 (Grid.size g);
  Alcotest.(check int) "knob array matches" 117 (Array.length (Grid.knobs g));
  let c = Grid.coarse tech in
  Alcotest.(check int) "coarse 35" 35 (Grid.size c)

let test_grid_bounds () =
  let g = Grid.make tech in
  Alcotest.(check bool) "vth endpoints" true
    (g.Grid.vths.(0) = tech.Tech.vth_min
    && Float.abs (g.Grid.vths.(12) -. tech.Tech.vth_max) < 1e-12);
  Alcotest.(check bool) "tox endpoints" true
    (Float.abs (g.Grid.toxs.(0) -. tech.Tech.tox_min) < 1e-15
    && Float.abs (g.Grid.toxs.(8) -. tech.Tech.tox_max) < 1e-15)

let test_grid_nearest () =
  let g = Grid.make tech in
  let k = Grid.nearest g (Component.knob ~vth:0.312 ~tox:(Units.angstrom 11.74)) in
  Alcotest.(check bool) "snaps vth" true (Float.abs (k.Component.vth -. 0.3) < 1e-9);
  Alcotest.(check bool) "snaps tox" true
    (Float.abs (Units.to_angstrom k.Component.tox -. 11.5) < 1e-9)

let test_grid_nearest_tie_breaks_low () =
  (* exactly midway between two grid points the first (lower) wins *)
  let g = { Grid.vths = [| 0.2; 0.3 |]; toxs = [| Units.angstrom 10.0; Units.angstrom 11.0 |] } in
  let k = Grid.nearest g (Component.knob ~vth:0.25 ~tox:(Units.angstrom 10.5)) in
  Alcotest.(check (float 1e-12)) "vth tie -> lower" 0.2 k.Component.vth;
  Alcotest.(check (float 1e-9)) "tox tie -> lower" 10.0 (Units.to_angstrom k.Component.tox)

let test_steps_between_exact () =
  let s = Grid.steps_between ~lo:0.0 ~hi:1.0 ~step:0.25 in
  Alcotest.(check int) "five points" 5 (Array.length s);
  Alcotest.(check (float 1e-12)) "first is lo" 0.0 s.(0);
  Alcotest.(check (float 1e-12)) "last is hi" 1.0 s.(4)

let test_steps_between_drifted_endpoint () =
  (* hi a few ulps off a whole number of steps must still land the full
     count, not drop or overshoot the endpoint *)
  let hi = 0.15 +. (12.0 *. 0.025) in
  (* 0.44999999999999996 on binary floats *)
  let s = Grid.steps_between ~lo:0.15 ~hi ~step:0.025 in
  Alcotest.(check int) "thirteen points" 13 (Array.length s);
  Alcotest.(check bool) "endpoint within drift of hi" true
    (Float.abs (s.(12) -. hi) < 1e-12)

let test_steps_between_no_overshoot () =
  (* hi is NOT on the grid: stop at the last step below it instead of
     rounding up past hi (lo=0, hi=1.08, step=0.3 -> 3.6 steps) *)
  let s = Grid.steps_between ~lo:0.0 ~hi:1.08 ~step:0.3 in
  Alcotest.(check int) "four points" 4 (Array.length s);
  Alcotest.(check (float 1e-12)) "last step below hi" 0.9 s.(3);
  Array.iter (fun v -> Alcotest.(check bool) "never overshoots" true (v <= 1.08)) s

let test_steps_between_degenerate_and_invalid () =
  let s = Grid.steps_between ~lo:2.0 ~hi:2.0 ~step:0.5 in
  Alcotest.(check int) "single point when lo = hi" 1 (Array.length s);
  Alcotest.(check (float 1e-12)) "that point is lo" 2.0 s.(0);
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "non-positive step rejected" true
    (raises (fun () -> ignore (Grid.steps_between ~lo:0.0 ~hi:1.0 ~step:0.0)));
  Alcotest.(check bool) "hi below lo rejected" true
    (raises (fun () -> ignore (Grid.steps_between ~lo:1.0 ~hi:0.0 ~step:0.5)))

let test_coarse_fine_endpoints () =
  List.iter
    (fun (label, g) ->
      let last arr = arr.(Array.length arr - 1) in
      Alcotest.(check bool) (label ^ " vth endpoints") true
        (Float.abs (g.Grid.vths.(0) -. tech.Tech.vth_min) < 1e-12
        && Float.abs (last g.Grid.vths -. tech.Tech.vth_max) < 1e-12);
      Alcotest.(check bool) (label ^ " tox endpoints") true
        (Float.abs (g.Grid.toxs.(0) -. tech.Tech.tox_min) < 1e-15
        && Float.abs (last g.Grid.toxs -. tech.Tech.tox_max) < 1e-15))
    [ ("default", Grid.make tech); ("coarse", Grid.coarse tech); ("fine", Grid.fine tech) ]

(* --- pareto ------------------------------------------------------------ *)

let test_pareto_simple () =
  let pts = [ (1.0, 5.0); (2.0, 3.0); (3.0, 4.0); (4.0, 1.0); (2.5, 3.0) ] in
  let front = Pareto.front ~key:(fun p -> p) pts in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "front"
    [ (1.0, 5.0); (2.0, 3.0); (4.0, 1.0) ]
    front

let test_pareto_dominates () =
  Alcotest.(check bool) "dominates" true (Pareto.dominates (1.0, 1.0) (2.0, 2.0));
  Alcotest.(check bool) "equal doesn't" false (Pareto.dominates (1.0, 1.0) (1.0, 1.0));
  Alcotest.(check bool) "incomparable" false (Pareto.dominates (1.0, 3.0) (2.0, 1.0))

let prop_pareto_front_invariant =
  QCheck.Test.make ~count:100 ~name:"front output satisfies is_front"
    Generators.point_cloud_arb
    (fun pts ->
      let front = Pareto.front ~key:(fun p -> p) pts in
      Pareto.is_front ~key:(fun p -> p) front)

let prop_pareto_covers_inputs =
  QCheck.Test.make ~count:100 ~name:"every input is dominated by or on the front"
    Generators.point_cloud_arb
    (fun pts ->
      let front = Pareto.front ~key:(fun p -> p) pts in
      List.for_all
        (fun p ->
          List.exists (fun f -> f = p || Pareto.dominates f p) front)
        pts)

(* --- schemes -------------------------------------------------------------- *)

let test_scheme_names () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "roundtrip" true (Scheme.of_name (Scheme.name s) = Some s))
    Scheme.all

let test_scheme_ordering () =
  let f = Lazy.force fitted in
  let grid = Grid.make tech in
  let fast = Scheme.fastest_access_time f ~grid in
  let slow = Scheme.slowest_access_time f ~grid in
  Alcotest.(check bool) "fast < slow" true (fast < slow);
  List.iter
    (fun frac ->
      let budget = fast +. (frac *. (slow -. fast)) in
      let leak s =
        match Scheme.minimize_leakage f ~grid ~scheme:s ~delay_budget:budget with
        | None -> Alcotest.failf "scheme %s infeasible at %f" (Scheme.name s) frac
        | Some r -> r.Scheme.leak_w
      in
      let li = leak Scheme.Independent
      and lii = leak Scheme.Split
      and liii = leak Scheme.Uniform in
      Alcotest.(check bool)
        (Printf.sprintf "I <= II at %.2f (%.4g vs %.4g)" frac li lii)
        true (li <= lii +. (1e-9 *. lii));
      Alcotest.(check bool)
        (Printf.sprintf "II <= III at %.2f" frac)
        true (lii <= liii +. (1e-9 *. liii)))
    [ 0.1; 0.3; 0.5; 0.8 ]

let test_scheme_budget_respected () =
  let f = Lazy.force fitted in
  let grid = Grid.make tech in
  let budget = 1.25 *. Scheme.fastest_access_time f ~grid in
  List.iter
    (fun s ->
      match Scheme.minimize_leakage f ~grid ~scheme:s ~delay_budget:budget with
      | None -> Alcotest.fail "should be feasible"
      | Some r ->
        Alcotest.(check bool)
          (Printf.sprintf "scheme %s meets budget" (Scheme.name s))
          true
          (r.Scheme.access_time <= budget *. (1.0 +. 1e-9)))
    Scheme.all

let test_scheme_infeasible () =
  let f = Lazy.force fitted in
  let grid = Grid.make tech in
  let too_fast = 0.9 *. Scheme.fastest_access_time f ~grid in
  List.iter
    (fun s ->
      Alcotest.(check bool) "infeasible below the floor" true
        (Scheme.minimize_leakage f ~grid ~scheme:s ~delay_budget:too_fast = None))
    Scheme.all

let test_scheme_validation () =
  let f = Lazy.force fitted in
  Alcotest.(check bool) "bad budget" true
    (try
       ignore
         (Scheme.minimize_leakage f ~grid:(Grid.make tech) ~scheme:Scheme.Uniform
            ~delay_budget:0.0);
       false
     with Invalid_argument _ -> true)

let test_scheme_monotone_in_budget () =
  let f = Lazy.force fitted in
  let grid = Grid.make tech in
  let fast = Scheme.fastest_access_time f ~grid in
  let prev = ref Float.infinity in
  List.iter
    (fun mult ->
      match
        Scheme.minimize_leakage f ~grid ~scheme:Scheme.Split ~delay_budget:(mult *. fast)
      with
      | None -> Alcotest.fail "feasible budgets expected"
      | Some r ->
        Alcotest.(check bool) "leakage non-increasing in budget" true
          (r.Scheme.leak_w <= !prev +. 1e-15);
        prev := r.Scheme.leak_w)
    [ 1.05; 1.15; 1.3; 1.5; 1.8; 2.2 ]

let test_uniform_scheme_really_uniform () =
  let f = Lazy.force fitted in
  let grid = Grid.make tech in
  let budget = 1.4 *. Scheme.fastest_access_time f ~grid in
  match Scheme.minimize_leakage f ~grid ~scheme:Scheme.Uniform ~delay_budget:budget with
  | None -> Alcotest.fail "feasible expected"
  | Some r ->
    let a = r.Scheme.assignment in
    let k0 = Component.get a Component.Array_sense in
    Alcotest.(check bool) "all components share one pair" true
      (List.for_all
         (fun kind -> Component.get a kind = k0)
         Component.all_kinds)

let test_split_scheme_structure () =
  let f = Lazy.force fitted in
  let grid = Grid.make tech in
  let budget = 1.25 *. Scheme.fastest_access_time f ~grid in
  match Scheme.minimize_leakage f ~grid ~scheme:Scheme.Split ~delay_budget:budget with
  | None -> Alcotest.fail "feasible expected"
  | Some r ->
    let a = r.Scheme.assignment in
    let periph = Component.get a Component.Decoder in
    Alcotest.(check bool) "peripherals share one pair" true
      (Component.get a Component.Addr_drivers = periph
      && Component.get a Component.Data_drivers = periph)

let test_dp_matches_bruteforce () =
  (* exhaustive enumeration over a shrunk grid: the DP must match the
     true optimum exactly (up to its delay-rounding conservatism) *)
  let f = Lazy.force fitted in
  let full = Grid.make tech in
  let small =
    {
      Grid.vths = [| full.Grid.vths.(0); full.Grid.vths.(6); full.Grid.vths.(12) |];
      toxs = [| full.Grid.toxs.(0); full.Grid.toxs.(8) |];
    }
  in
  let knobs = Grid.knobs small in
  let n = Array.length knobs in
  let leak = Array.make_matrix 4 n 0.0 and delay = Array.make_matrix 4 n 0.0 in
  List.iteri
    (fun c kind ->
      Array.iteri
        (fun i k ->
          leak.(c).(i) <- Nmcache_fit.Fitted_cache.leak_of f kind k;
          delay.(c).(i) <- Nmcache_fit.Fitted_cache.delay_of f kind k)
        knobs)
    Component.all_kinds;
  let brute budget =
    let best = ref Float.infinity in
    for i0 = 0 to n - 1 do
      for i1 = 0 to n - 1 do
        for i2 = 0 to n - 1 do
          for i3 = 0 to n - 1 do
            let d = delay.(0).(i0) +. delay.(1).(i1) +. delay.(2).(i2) +. delay.(3).(i3) in
            if d <= budget then begin
              let l = leak.(0).(i0) +. leak.(1).(i1) +. leak.(2).(i2) +. leak.(3).(i3) in
              if l < !best then best := l
            end
          done
        done
      done
    done;
    if !best = Float.infinity then None else Some !best
  in
  let fast = Scheme.fastest_access_time f ~grid:small in
  let slow = Scheme.slowest_access_time f ~grid:small in
  List.iter
    (fun frac ->
      let budget = fast +. (frac *. (slow -. fast)) in
      let dp = Scheme.minimize_leakage f ~grid:small ~scheme:Scheme.Independent ~delay_budget:budget in
      match (brute budget, dp) with
      | None, None -> ()
      | Some b, Some d ->
        (* DP rounds component delays up, so it may be *slightly* pessimistic
           but never better than the true optimum *)
        Alcotest.(check bool)
          (Printf.sprintf "DP %.6g vs brute %.6g at %.2f" d.Scheme.leak_w b frac)
          true
          (d.Scheme.leak_w >= b *. 0.999999 && d.Scheme.leak_w <= b *. 1.02)
      | None, Some _ -> Alcotest.fail "DP found a solution brute force did not"
      | Some _, None -> Alcotest.fail "DP missed a feasible solution")
    [ 0.02; 0.1; 0.25; 0.5; 0.75; 0.95 ]

(* --- tuple problem ---------------------------------------------------------- *)

(* a synthetic, fully-controlled system: 2 groups; delay/energy are simple
   functions of the grid knob so the optimum is known *)
let synthetic_eval grid =
  let knobs = Grid.knobs grid in
  fun (idx : int array) ->
    let k0 = knobs.(idx.(0)) and k1 = knobs.(idx.(1)) in
    let d (k : Component.knob) = k.Component.vth +. (Units.to_angstrom k.Component.tox /. 100.0) in
    let e (k : Component.knob) = 2.0 -. k.Component.vth in
    (d k0 +. d k1, e k0 +. e k1)

let test_tuple_synthetic () =
  let grid = Grid.coarse tech in
  let eval = synthetic_eval grid in
  let points =
    Tuple_problem.pareto_curve ~grid ~n_groups:2 ~eval
      ~spec:{ Tuple_problem.n_vth = 2; n_tox = 1 }
  in
  Alcotest.(check bool) "non-empty" true (points <> []);
  (* frontier sorted in amat with strictly decreasing energy *)
  let rec check = function
    | (a : Tuple_problem.point) :: (b :: _ as rest) ->
      Alcotest.(check bool) "sorted x" true (a.Tuple_problem.amat < b.Tuple_problem.amat);
      Alcotest.(check bool) "decreasing y" true (a.Tuple_problem.energy > b.Tuple_problem.energy);
      check rest
    | _ -> ()
  in
  check points;
  (* with energy = 2 - vth, minimal energy uses the max vth twice *)
  let last = List.nth points (List.length points - 1) in
  Alcotest.(check bool) "cheapest uses max vth" true
    (Array.for_all
       (fun (k : Component.knob) -> Float.abs (k.Component.vth -. tech.Tech.vth_max) < 1e-9)
       last.Tuple_problem.group_knobs)

let test_tuple_sets_sized () =
  let grid = Grid.coarse tech in
  let eval = synthetic_eval grid in
  let points =
    Tuple_problem.pareto_curve ~grid ~n_groups:2 ~eval
      ~spec:{ Tuple_problem.n_vth = 2; n_tox = 2 }
  in
  List.iter
    (fun (p : Tuple_problem.point) ->
      Alcotest.(check int) "2 vths" 2 (Array.length p.Tuple_problem.vth_set);
      Alcotest.(check int) "2 toxs" 2 (Array.length p.Tuple_problem.tox_set);
      (* group knobs drawn from the chosen sets *)
      Array.iter
        (fun (k : Component.knob) ->
          Alcotest.(check bool) "vth from set" true
            (Array.exists (fun v -> Float.abs (v -. k.Component.vth) < 1e-12) p.Tuple_problem.vth_set);
          Alcotest.(check bool) "tox from set" true
            (Array.exists
               (fun x -> Float.abs (x -. k.Component.tox) < 1e-15)
               p.Tuple_problem.tox_set))
        p.Tuple_problem.group_knobs)
    points

let test_richer_budget_dominates () =
  (* a (2,2) process can always emulate a (1,2) one, so its frontier must
     be at least as good everywhere *)
  let grid = Grid.coarse tech in
  let eval = synthetic_eval grid in
  let curve spec = Tuple_problem.pareto_curve ~grid ~n_groups:2 ~eval ~spec in
  let rich = curve { Tuple_problem.n_vth = 2; n_tox = 2 } in
  let poor = curve { Tuple_problem.n_vth = 1; n_tox = 2 } in
  List.iter
    (fun (p : Tuple_problem.point) ->
      let best_rich =
        List.fold_left
          (fun acc (q : Tuple_problem.point) ->
            if q.Tuple_problem.amat <= p.Tuple_problem.amat then
              Float.min acc q.Tuple_problem.energy
            else acc)
          Float.infinity rich
      in
      Alcotest.(check bool) "rich <= poor" true
        (best_rich <= p.Tuple_problem.energy +. 1e-9))
    poor

let test_tuple_validation () =
  let grid = Grid.coarse tech in
  let eval = synthetic_eval grid in
  Alcotest.(check bool) "spec too large" true
    (try
       ignore
         (Tuple_problem.pareto_curve ~grid ~n_groups:2 ~eval
            ~spec:{ Tuple_problem.n_vth = 99; n_tox = 1 });
       false
     with Invalid_argument _ -> true)

let test_spec_name () =
  Alcotest.(check string) "name" "2 Tox + 3 Vth"
    (Tuple_problem.spec_name { Tuple_problem.n_vth = 3; n_tox = 2 });
  Alcotest.(check int) "five figure-2 specs" 5 (List.length Tuple_problem.figure2_specs)

(* Random subgrids (shared generator): feasibility nests (every Scheme
   III solution is a II solution is a I solution) and the leakage
   ordering holds wherever two schemes are both feasible. *)
let prop_scheme_ordering_on_subgrids =
  QCheck.Test.make ~count:10 ~name:"scheme nesting and ordering on random subgrids"
    Generators.grid_arb
    (fun grid ->
      let f = Lazy.force fitted in
      let fast = Scheme.fastest_access_time f ~grid in
      let slow = Scheme.slowest_access_time f ~grid in
      let budget = fast +. (0.4 *. (slow -. fast)) in
      let leak s =
        Option.map
          (fun r -> r.Scheme.leak_w)
          (Scheme.minimize_leakage f ~grid ~scheme:s ~delay_budget:budget)
      in
      let le a b = a <= b *. (1.0 +. 1e-9) in
      match (leak Scheme.Independent, leak Scheme.Split, leak Scheme.Uniform) with
      | Some li, Some lii, Some liii -> le li lii && le lii liii
      | Some li, Some lii, None -> le li lii
      | Some _, None, None | None, None, None -> true
      | _ -> false (* a more general scheme must stay feasible *))

let suite =
  [
    Alcotest.test_case "grid sizes" `Quick test_grid_sizes;
    Alcotest.test_case "grid bounds" `Quick test_grid_bounds;
    Alcotest.test_case "grid nearest" `Quick test_grid_nearest;
    Alcotest.test_case "grid nearest tie-break" `Quick test_grid_nearest_tie_breaks_low;
    Alcotest.test_case "steps_between exact" `Quick test_steps_between_exact;
    Alcotest.test_case "steps_between drifted endpoint" `Quick
      test_steps_between_drifted_endpoint;
    Alcotest.test_case "steps_between no overshoot" `Quick test_steps_between_no_overshoot;
    Alcotest.test_case "steps_between degenerate/invalid" `Quick
      test_steps_between_degenerate_and_invalid;
    Alcotest.test_case "coarse/fine endpoints" `Quick test_coarse_fine_endpoints;
    Alcotest.test_case "pareto simple" `Quick test_pareto_simple;
    Alcotest.test_case "pareto dominates" `Quick test_pareto_dominates;
    Alcotest.test_case "scheme names" `Quick test_scheme_names;
    Alcotest.test_case "scheme ordering I<=II<=III" `Quick test_scheme_ordering;
    Alcotest.test_case "budgets respected" `Quick test_scheme_budget_respected;
    Alcotest.test_case "infeasible budgets" `Quick test_scheme_infeasible;
    Alcotest.test_case "scheme validation" `Quick test_scheme_validation;
    Alcotest.test_case "leakage monotone in budget" `Quick test_scheme_monotone_in_budget;
    Alcotest.test_case "scheme III uniform" `Quick test_uniform_scheme_really_uniform;
    Alcotest.test_case "scheme II structure" `Quick test_split_scheme_structure;
    Alcotest.test_case "DP matches brute force" `Quick test_dp_matches_bruteforce;
    Alcotest.test_case "tuple synthetic optimum" `Quick test_tuple_synthetic;
    Alcotest.test_case "tuple set sizes" `Quick test_tuple_sets_sized;
    Alcotest.test_case "richer budget dominates" `Quick test_richer_budget_dominates;
    Alcotest.test_case "tuple validation" `Quick test_tuple_validation;
    Alcotest.test_case "spec names" `Quick test_spec_name;
  ]
  @ List.map Generators.to_alcotest
      [
        prop_pareto_front_invariant;
        prop_pareto_covers_inputs;
        prop_scheme_ordering_on_subgrids;
      ]
