(* Tests for the second-wave substrates: detailed netlists, prefetching,
   phased workloads. *)

module Units = Nmcache_physics.Units
module Tech = Nmcache_device.Tech
module Netlist = Nmcache_circuit.Netlist
module Sram_cell = Nmcache_circuit.Sram_cell
module Gate = Nmcache_circuit.Gate
module Prefetch = Nmcache_cachesim.Prefetch
module Cache = Nmcache_cachesim.Cache
module Hierarchy = Nmcache_cachesim.Hierarchy
module Replacement = Nmcache_cachesim.Replacement
module Stats = Nmcache_cachesim.Stats
module Gen = Nmcache_workload.Gen
module Phased = Nmcache_workload.Phased
module Access = Nmcache_workload.Access
module Registry = Nmcache_workload.Registry
module Rng = Nmcache_numerics.Rng

let tech = Tech.bptm65
let a = Units.angstrom
let kb n = n * 1024

(* --- netlist ------------------------------------------------------------ *)

let cell = Sram_cell.make tech ~vth:0.3 ~tox:(a 12.0)

let test_wordline_tree_capacitance () =
  (* the tree must carry exactly the wire + gate load of all columns *)
  let cols = 128 in
  let tree = Netlist.wordline_tree tech ~cell ~cols ~segment_cells:16 in
  let expected =
    (tech.Tech.wire_c_per_m *. (float_of_int cols *. cell.Sram_cell.width))
    +. (float_of_int cols *. Sram_cell.gate_load tech cell)
  in
  let got = Nmcache_circuit.Rc.total_capacitance tree in
  Alcotest.(check bool)
    (Printf.sprintf "cap %.3g vs %.3g" got expected)
    true
    (Float.abs (got -. expected) /. expected < 1e-9)

let test_wordline_detailed_vs_lumped () =
  (* detailed Elmore of the segmented line vs the 0.38 R C lump: same
     order, detailed >= half and <= 3x the lump across sizes *)
  let inv = Gate.inverter tech ~vth:0.3 ~tox:(a 12.0) ~size:16.0 in
  List.iter
    (fun cols ->
      let detailed =
        Netlist.wordline_delay tech ~cell ~cols ~r_driver:inv.Gate.r_drive
          ~t_rise_in:20e-12
      in
      let len = float_of_int cols *. cell.Sram_cell.width in
      let r_w = tech.Tech.wire_r_per_m *. len in
      let c_w =
        (tech.Tech.wire_c_per_m *. len)
        +. (float_of_int cols *. Sram_cell.gate_load tech cell)
      in
      let lumped = (0.38 *. r_w *. c_w) +. (inv.Gate.r_drive *. c_w) in
      Alcotest.(check bool)
        (Printf.sprintf "cols=%d detailed %.3g vs lumped %.3g" cols detailed lumped)
        true
        (detailed > 0.5 *. lumped && detailed < 3.0 *. lumped))
    [ 32; 128; 512 ]

let test_wordline_monotone_in_cols () =
  let inv = Gate.inverter tech ~vth:0.3 ~tox:(a 12.0) ~size:16.0 in
  let d cols =
    Netlist.wordline_delay tech ~cell ~cols ~r_driver:inv.Gate.r_drive ~t_rise_in:0.0
  in
  Alcotest.(check bool) "monotone" true (d 64 < d 128 && d 128 < d 256)

let test_bitline_discharge () =
  let t = Netlist.bitline_discharge tech ~cell ~rows:128 ~sense_swing:0.1 in
  Alcotest.(check bool) "positive, sub-ns" true (t > 0.0 && t < 1e-9);
  let t2 = Netlist.bitline_discharge tech ~cell ~rows:256 ~sense_swing:0.1 in
  Alcotest.(check bool) "more rows, slower" true (t2 > t);
  let t3 = Netlist.bitline_discharge tech ~cell ~rows:128 ~sense_swing:0.2 in
  Alcotest.(check bool) "bigger swing, slower" true (t3 > t)

let test_netlist_validation () =
  Alcotest.(check bool) "cols < 1" true
    (try
       ignore (Netlist.wordline_tree tech ~cell ~cols:0 ~segment_cells:8);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad swing" true
    (try
       ignore (Netlist.bitline_discharge tech ~cell ~rows:8 ~sense_swing:1.5);
       false
     with Invalid_argument _ -> true)

(* --- prefetch -------------------------------------------------------------- *)

let fresh_pair () =
  ( Cache.create ~size_bytes:(kb 1) ~assoc:2 ~block_bytes:64 ~policy:Replacement.Lru (),
    Cache.create ~size_bytes:(kb 16) ~assoc:4 ~block_bytes:64 ~policy:Replacement.Lru () )

let test_prefetch_streams_into_l2 () =
  let l1, l2 = fresh_pair () in
  let p = Prefetch.create ~degree:2 ~l1 ~l2 () in
  let o = Prefetch.access p 0 ~write:false in
  Alcotest.(check int) "two prefetches on the miss" 2 o.Prefetch.prefetches_issued;
  Alcotest.(check bool) "next lines resident in L2" true
    (Cache.contains l2 64 && Cache.contains l2 128);
  Alcotest.(check bool) "but not in L1" false (Cache.contains l1 64)

let test_prefetch_improves_sequential_l2_hits () =
  let run degree =
    let l1, l2 = fresh_pair () in
    let p = Prefetch.create ~degree ~l1 ~l2 () in
    let g = Gen.sequential ~stride:64 ~name:"s" () in
    let l2_hits = ref 0 and l1_misses = ref 0 in
    Gen.iter g 2000 (fun acc ->
        let o = Prefetch.access p acc.Access.addr ~write:false in
        if not o.Prefetch.l1_hit then begin
          incr l1_misses;
          if o.Prefetch.l2_hit then incr l2_hits
        end);
    float_of_int !l2_hits /. float_of_int (max 1 !l1_misses)
  in
  let without = run 0 and with_pf = run 2 in
  Alcotest.(check bool)
    (Printf.sprintf "L2 hit ratio %.2f -> %.2f" without with_pf)
    true
    (with_pf > without +. 0.5)

let test_prefetch_accuracy_on_stream () =
  let l1, l2 = fresh_pair () in
  let p = Prefetch.create ~degree:1 ~l1 ~l2 () in
  let g = Gen.sequential ~stride:64 ~name:"s" () in
  Gen.iter g 2000 (fun acc -> ignore (Prefetch.access p acc.Access.addr ~write:false));
  Alcotest.(check bool)
    (Printf.sprintf "accuracy %.2f high on a pure stream" (Prefetch.accuracy p))
    true
    (Prefetch.accuracy p > 0.9)

let test_prefetch_zero_degree_is_plain () =
  let l1, l2 = fresh_pair () in
  let p = Prefetch.create ~degree:0 ~l1 ~l2 () in
  ignore (Prefetch.access p 0 ~write:false);
  Alcotest.(check int) "no prefetches" 0 (Prefetch.prefetches p)

let prop_prefetch_degree0_equals_hierarchy =
  QCheck.Test.make ~count:20 ~name:"degree-0 prefetcher behaves as the plain hierarchy"
    Generators.trace_seed_arb
    (fun seed ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let trace = Array.init 3_000 (fun _ -> 64 * Rng.int rng ~bound:1024) in
      let l1a, l2a = fresh_pair () in
      let p = Prefetch.create ~degree:0 ~l1:l1a ~l2:l2a () in
      Array.iter (fun a -> ignore (Prefetch.access p a ~write:false)) trace;
      let l1b, l2b = fresh_pair () in
      let h = Hierarchy.create ~l1:l1b ~l2:l2b in
      Array.iter (fun a -> ignore (Hierarchy.access h a ~write:false)) trace;
      (Cache.stats l1a).Stats.misses = (Cache.stats l1b).Stats.misses
      && (Cache.stats l2a).Stats.misses = (Cache.stats l2b).Stats.misses)

(* --- phased ----------------------------------------------------------------- *)

let test_phased_cycles () =
  let rng = Rng.create ~seed:3L in
  let p1 = Gen.sequential ~start:0 ~name:"a" () in
  let p2 = Gen.sequential ~start:(1 lsl 40) ~name:"b" () in
  let g = Phased.cycle ~name:"p" ~rng ~dwell:50 [ p1; p2 ] in
  let in_b = ref 0 in
  let n = 20_000 in
  Gen.iter g n (fun acc -> if acc.Access.addr >= 1 lsl 40 then incr in_b);
  let frac = float_of_int !in_b /. float_of_int n in
  (* two equal phases: roughly half the time in each *)
  Alcotest.(check bool) (Printf.sprintf "phase balance %.2f" frac) true
    (frac > 0.35 && frac < 0.65)

let test_phased_deterministic () =
  let g1 = Registry.build ~seed:9L "spec2000-phased" in
  let g2 = Registry.build ~seed:9L "spec2000-phased" in
  Alcotest.(check bool) "reproducible" true (Gen.take g1 2000 = Gen.take g2 2000)

let test_phased_validation () =
  let rng = Rng.create ~seed:1L in
  Alcotest.(check bool) "empty phases" true
    (try
       ignore (Phased.cycle ~name:"x" ~rng ~dwell:10 []);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "wordline tree capacitance" `Quick test_wordline_tree_capacitance;
    Alcotest.test_case "wordline detailed vs lumped" `Quick test_wordline_detailed_vs_lumped;
    Alcotest.test_case "wordline monotone" `Quick test_wordline_monotone_in_cols;
    Alcotest.test_case "bitline discharge" `Quick test_bitline_discharge;
    Alcotest.test_case "netlist validation" `Quick test_netlist_validation;
    Alcotest.test_case "prefetch streams into L2" `Quick test_prefetch_streams_into_l2;
    Alcotest.test_case "prefetch improves stream hits" `Quick
      test_prefetch_improves_sequential_l2_hits;
    Alcotest.test_case "prefetch accuracy" `Quick test_prefetch_accuracy_on_stream;
    Alcotest.test_case "zero-degree prefetcher" `Quick test_prefetch_zero_degree_is_plain;
    Alcotest.test_case "phased cycles" `Quick test_phased_cycles;
    Alcotest.test_case "phased deterministic" `Quick test_phased_deterministic;
    Alcotest.test_case "phased validation" `Quick test_phased_validation;
  ]
  @ List.map Generators.to_alcotest [ prop_prefetch_degree0_equals_hierarchy ]
