(* Unit + property tests for nmcache_numerics. *)

module Matrix = Nmcache_numerics.Matrix
module Linsolve = Nmcache_numerics.Linsolve
module Lm = Nmcache_numerics.Lm
module Minimize = Nmcache_numerics.Minimize
module Stats = Nmcache_numerics.Stats
module Rng = Nmcache_numerics.Rng
module Zipf = Nmcache_numerics.Zipf

let close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.12g vs %.12g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= eps *. Float.max 1.0 (Float.abs expected))

(* --- matrix --------------------------------------------------------- *)

let test_matrix_basics () =
  let m = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  close "get" 3.0 (Matrix.get m 1 0);
  Matrix.set m 1 0 7.0;
  close "set" 7.0 (Matrix.get m 1 0);
  Alcotest.(check int) "rows" 2 (Matrix.rows m);
  Alcotest.(check int) "cols" 2 (Matrix.cols m)

let test_matrix_validation () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Matrix.of_rows: ragged rows") (fun () ->
      ignore (Matrix.of_rows [| [| 1.0 |]; [| 1.0; 2.0 |] |]));
  Alcotest.check_raises "bad dims"
    (Invalid_argument "Matrix.create: non-positive dimension") (fun () ->
      ignore (Matrix.create ~rows:0 ~cols:3))

let test_matrix_mul () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_rows [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Matrix.mul a b in
  close "c00" 19.0 (Matrix.get c 0 0);
  close "c01" 22.0 (Matrix.get c 0 1);
  close "c10" 43.0 (Matrix.get c 1 0);
  close "c11" 50.0 (Matrix.get c 1 1)

let test_matrix_identity_transpose () =
  let a = Matrix.of_rows [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let at = Matrix.transpose a in
  Alcotest.(check bool) "transpose twice" true (Matrix.equal a (Matrix.transpose at));
  let i3 = Matrix.identity 3 in
  Alcotest.(check bool) "a * I = a" true (Matrix.equal a (Matrix.mul a i3))

let test_mul_vec () =
  let a = Matrix.of_rows [| [| 2.0; 0.0 |]; [| 1.0; 1.0 |] |] in
  let y = Matrix.mul_vec a [| 3.0; 4.0 |] in
  close "y0" 6.0 y.(0);
  close "y1" 7.0 y.(1)

(* --- linsolve ------------------------------------------------------- *)

let test_solve_exact () =
  let a = Matrix.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Linsolve.solve a [| 5.0; 10.0 |] in
  close "x0" 1.0 x.(0) ~eps:1e-12;
  close "x1" 3.0 x.(1) ~eps:1e-12

let test_solve_singular () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" Linsolve.Singular (fun () ->
      ignore (Linsolve.solve a [| 1.0; 2.0 |]))

let test_invert () =
  let a = Matrix.of_rows [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let inv = Linsolve.invert a in
  Alcotest.(check bool) "a * a^-1 = I" true
    (Matrix.equal ~eps:1e-9 (Matrix.mul a inv) (Matrix.identity 2))

let test_lstsq_overdetermined () =
  (* y = 2x + 1 with exact data: least squares recovers it *)
  let rows = Array.init 10 (fun i -> [| 1.0; float_of_int i |]) in
  let ys = Array.init 10 (fun i -> 1.0 +. (2.0 *. float_of_int i)) in
  let c = Linsolve.lstsq (Matrix.of_rows rows) ys in
  close "intercept" 1.0 c.(0) ~eps:1e-6;
  close "slope" 2.0 c.(1) ~eps:1e-6

let prop_solve_recovers =
  QCheck.Test.make ~count:100 ~name:"solve recovers random well-conditioned systems"
    Generators.linsys_seed_arb
    (fun (seed, _) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let n = 1 + Rng.int rng ~bound:5 in
      (* diagonally dominant => well-conditioned *)
      let a = Matrix.create ~rows:n ~cols:n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Matrix.set a i j (Rng.float_range rng ~lo:(-1.0) ~hi:1.0)
        done;
        Matrix.set a i i (Rng.float_range rng ~lo:5.0 ~hi:10.0)
      done;
      let x = Array.init n (fun _ -> Rng.float_range rng ~lo:(-10.0) ~hi:10.0) in
      let b = Matrix.mul_vec a x in
      let x' = Linsolve.solve a b in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) x x')

(* --- lm -------------------------------------------------------------- *)

let test_lm_exponential_recovery () =
  (* recover y = 2 + 3 exp(-4 x) *)
  let f theta (x : float array) = theta.(0) +. (theta.(1) *. Float.exp (theta.(2) *. x.(0))) in
  let xs = Array.init 40 (fun i -> [| float_of_int i /. 20.0 |]) in
  let ys = Array.map (fun x -> 2.0 +. (3.0 *. Float.exp (-4.0 *. x.(0)))) xs in
  let r = Lm.fit ~f ~xs ~ys ~init:[| 1.0; 1.0; -1.0 |] () in
  close "theta0" 2.0 r.Lm.params.(0) ~eps:1e-3;
  close "theta1" 3.0 r.Lm.params.(1) ~eps:1e-3;
  close "theta2" (-4.0) r.Lm.params.(2) ~eps:1e-3;
  Alcotest.(check bool) "small residual" true (r.Lm.residual < 1e-5)

let test_lm_validation () =
  let f theta (_ : float array) = theta.(0) in
  Alcotest.check_raises "no samples" (Invalid_argument "Lm.fit: no samples") (fun () ->
      ignore (Lm.fit ~f ~xs:[||] ~ys:[||] ~init:[| 0.0 |] ()))

(* --- minimize --------------------------------------------------------- *)

let test_golden_section () =
  let x = Minimize.golden_section ~f:(fun x -> (x -. 1.7) ** 2.0) ~lo:(-10.0) ~hi:10.0 () in
  close "quadratic minimum" 1.7 x ~eps:1e-5

let test_grid_min () =
  let x, v = Minimize.grid_min ~f:(fun x -> Float.abs (x -. 0.5)) ~lo:0.0 ~hi:1.0 ~steps:10 in
  close "argmin" 0.5 x ~eps:1e-9;
  close "min value" 0.0 v ~eps:1e-9

let test_argmin () =
  Alcotest.(check (option int)) "argmin list" (Some 3)
    (Minimize.argmin (fun x -> Float.abs (float_of_int (x - 3))) [ 1; 5; 3; 9 ]);
  Alcotest.(check (option int)) "argmin empty" None (Minimize.argmin float_of_int [])

let test_linspace () =
  let xs = Minimize.linspace ~lo:0.0 ~hi:1.0 ~steps:4 in
  Alcotest.(check int) "length" 5 (Array.length xs);
  close "first" 0.0 xs.(0);
  close "middle" 0.5 xs.(2);
  close "last" 1.0 xs.(4)

let test_bisect () =
  let root = Minimize.bisect ~f:(fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0 () in
  close "sqrt 2" (Float.sqrt 2.0) root ~eps:1e-9

let prop_golden_unimodal =
  QCheck.Test.make ~count:100 ~name:"golden section on shifted quadratics"
    QCheck.(float_range (-50.0) 50.0)
    (fun c ->
      let x = Minimize.golden_section ~f:(fun x -> (x -. c) ** 2.0) ~lo:(-100.0) ~hi:100.0 () in
      Float.abs (x -. c) < 1e-4)

(* --- stats ------------------------------------------------------------ *)

let test_stats_basics () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  close "mean" 5.0 (Stats.mean xs);
  close "stddev" 2.0 (Stats.stddev xs);
  close "min" 2.0 (Stats.minimum xs);
  close "max" 9.0 (Stats.maximum xs)

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  close "median" 3.0 (Stats.percentile xs 50.0);
  close "p0" 1.0 (Stats.percentile xs 0.0);
  close "p100" 5.0 (Stats.percentile xs 100.0);
  close "p25" 2.0 (Stats.percentile xs 25.0)

let test_r_squared () =
  let actual = [| 1.0; 2.0; 3.0 |] in
  close "perfect" 1.0 (Stats.r_squared ~actual ~predicted:actual);
  let mean_pred = [| 2.0; 2.0; 2.0 |] in
  close "mean predictor" 0.0 (Stats.r_squared ~actual ~predicted:mean_pred)

let test_rel_errors () =
  let actual = [| 10.0; 100.0 |] and predicted = [| 11.0; 90.0 |] in
  close "max rel" 0.1 (Stats.max_rel_error ~actual ~predicted);
  Alcotest.(check bool) "rms <= max" true
    (Stats.rms_rel_error ~actual ~predicted <= Stats.max_rel_error ~actual ~predicted)

let test_geometric_mean () =
  close "geomean" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geometric_mean: non-positive element") (fun () ->
      ignore (Stats.geometric_mean [| 1.0; 0.0 |]))

(* --- rng --------------------------------------------------------------- *)

let test_rng_reproducible () =
  let a = Rng.create ~seed:99L and b = Rng.create ~seed:99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check int) "different streams" 0 !same

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:5L in
  for _ = 1 to 10_000 do
    let v = Rng.int rng ~bound:7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_float_unit () =
  let rng = Rng.create ~seed:6L in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_uniformity () =
  let rng = Rng.create ~seed:7L in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int rng ~bound:10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      Alcotest.(check bool) "within 5% of uniform" true
        (abs (c - expected) < expected / 20))
    buckets

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:8L in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "still a permutation" true (sorted = Array.init 100 (fun i -> i))

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:9L in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng ~mean:3.0
  done;
  close "exponential mean" 3.0 (!acc /. float_of_int n) ~eps:0.05

let test_rng_geometric () =
  let rng = Rng.create ~seed:10L in
  let n = 50_000 in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + Rng.geometric rng ~p:0.25
  done;
  (* mean of geometric on {0,1,...} is (1-p)/p = 3 *)
  close "geometric mean" 3.0 (float_of_int !acc /. float_of_int n) ~eps:0.05

let test_splitmix_known () =
  (* splitmix64 must be a pure function *)
  Alcotest.(check int64) "deterministic" (Rng.splitmix64 42L) (Rng.splitmix64 42L);
  Alcotest.(check bool) "mixes" true (Rng.splitmix64 1L <> Rng.splitmix64 2L)

(* --- zipf ---------------------------------------------------------------- *)

let test_zipf_pmf_sums () =
  let z = Zipf.create ~n:100 ~s:0.9 in
  let total = ref 0.0 in
  for k = 0 to 99 do
    total := !total +. Zipf.pmf z k
  done;
  close "pmf sums to 1" 1.0 !total ~eps:1e-9

let test_zipf_monotone () =
  let z = Zipf.create ~n:50 ~s:1.1 in
  for k = 1 to 49 do
    Alcotest.(check bool) "pmf decreasing" true (Zipf.pmf z k <= Zipf.pmf z (k - 1) +. 1e-15)
  done

let test_zipf_uniform_degenerate () =
  let z = Zipf.create ~n:10 ~s:0.0 in
  for k = 0 to 9 do
    close "uniform pmf" 0.1 (Zipf.pmf z k) ~eps:1e-9
  done

let test_zipf_sampling_matches_pmf () =
  let z = Zipf.create ~n:20 ~s:0.8 in
  let rng = Rng.create ~seed:11L in
  let counts = Array.make 20 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  for k = 0 to 4 do
    let expected = Zipf.pmf z k *. float_of_int n in
    Alcotest.(check bool)
      (Printf.sprintf "rank %d frequency" k)
      true
      (Float.abs (float_of_int counts.(k) -. expected) < 0.05 *. expected)
  done

let qcheck = List.map Generators.to_alcotest [ prop_solve_recovers; prop_golden_unimodal ]

let suite =
  [
    Alcotest.test_case "matrix basics" `Quick test_matrix_basics;
    Alcotest.test_case "matrix validation" `Quick test_matrix_validation;
    Alcotest.test_case "matrix multiplication" `Quick test_matrix_mul;
    Alcotest.test_case "identity and transpose" `Quick test_matrix_identity_transpose;
    Alcotest.test_case "matrix-vector product" `Quick test_mul_vec;
    Alcotest.test_case "solve exact system" `Quick test_solve_exact;
    Alcotest.test_case "solve singular raises" `Quick test_solve_singular;
    Alcotest.test_case "matrix inverse" `Quick test_invert;
    Alcotest.test_case "least squares on a line" `Quick test_lstsq_overdetermined;
    Alcotest.test_case "LM recovers exponential" `Quick test_lm_exponential_recovery;
    Alcotest.test_case "LM validation" `Quick test_lm_validation;
    Alcotest.test_case "golden section" `Quick test_golden_section;
    Alcotest.test_case "grid minimum" `Quick test_grid_min;
    Alcotest.test_case "argmin" `Quick test_argmin;
    Alcotest.test_case "linspace" `Quick test_linspace;
    Alcotest.test_case "bisection root" `Quick test_bisect;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "percentiles" `Quick test_percentile;
    Alcotest.test_case "r squared" `Quick test_r_squared;
    Alcotest.test_case "relative errors" `Quick test_rel_errors;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "rng reproducible" `Quick test_rng_reproducible;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng float unit interval" `Quick test_rng_float_unit;
    Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
    Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "exponential sample mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "geometric sample mean" `Quick test_rng_geometric;
    Alcotest.test_case "splitmix64" `Quick test_splitmix_known;
    Alcotest.test_case "zipf pmf sums to one" `Quick test_zipf_pmf_sums;
    Alcotest.test_case "zipf pmf monotone" `Quick test_zipf_monotone;
    Alcotest.test_case "zipf s=0 uniform" `Quick test_zipf_uniform_degenerate;
    Alcotest.test_case "zipf sampling frequencies" `Quick test_zipf_sampling_matches_pmf;
  ]
  @ qcheck
