(* End-to-end tests: the paper's qualitative claims must hold when the
   full pipelines run on the reduced (quick) context.  These are the
   "shape" assertions of DESIGN.md §4. *)

module Units = Nmcache_physics.Units
module Component = Nmcache_geometry.Component
module Scheme = Nmcache_opt.Scheme
module Tuple_problem = Nmcache_opt.Tuple_problem
module Model = Nmcache_fit.Model
module Fitted_cache = Nmcache_fit.Fitted_cache

let ctx = lazy (Core.Context.quick ())

(* --- Figure 1 ---------------------------------------------------------- *)

let test_fig1_series_shape () =
  let series = Core.Single_cache.figure1_series (Lazy.force ctx) in
  Alcotest.(check int) "four curves" 4 (List.length series);
  List.iter
    (fun (label, points) ->
      Alcotest.(check bool) (label ^ " non-trivial") true (List.length points >= 3);
      (* each curve is a trade-off: sorted by delay with leakage falling *)
      let rec check = function
        | (x1, y1) :: ((x2, y2) :: _ as rest) ->
          Alcotest.(check bool) (label ^ " sorted in delay") true (x1 <= x2);
          Alcotest.(check bool) (label ^ " leakage falls along the curve") true (y1 >= y2);
          check rest
        | _ -> ()
      in
      check points)
    series

let test_fig1_tox_is_stronger_leakage_knob () =
  (* the paper's reading: at matched delay budgets the Tox sweep moves
     leakage further than the Vth sweep; compare endpoint ratios *)
  let series = Core.Single_cache.figure1_series (Lazy.force ctx) in
  let ratio label =
    let points = List.assoc label series in
    let ys = List.map snd points in
    let top = List.fold_left Float.max Float.neg_infinity ys in
    let bottom = List.fold_left Float.min Float.infinity ys in
    top /. Float.max bottom 1e-12
  in
  (* sweeping Tox at fixed Vth=0.4V spans more decades than sweeping Vth
     at fixed thin Tox=10A *)
  Alcotest.(check bool) "Tox sweep > Vth sweep at the quiet corner" true
    (ratio "Vth=400mV" > ratio "Tox=10A")

let test_fig1_vth_is_the_delay_knob () =
  (* delay span of the Vth sweep exceeds that of the Tox sweep *)
  let series = Core.Single_cache.figure1_series (Lazy.force ctx) in
  let span label =
    let xs = List.map fst (List.assoc label series) in
    List.fold_left Float.max Float.neg_infinity xs -. List.fold_left Float.min Float.infinity xs
  in
  Alcotest.(check bool) "Vth delay span wider" true
    (Float.max (span "Tox=10A") (span "Tox=14A") > Float.max (span "Vth=200mV") (span "Vth=400mV"))

(* --- Schemes (T1) -------------------------------------------------------- *)

let test_scheme_claims () =
  let rows = Core.Single_cache.scheme_rows (Lazy.force ctx) () in
  Alcotest.(check bool) "several budgets" true (List.length rows >= 5);
  List.iter
    (fun (row : Core.Single_cache.scheme_row) ->
      match
        ( List.assoc Scheme.Independent row.Core.Single_cache.results,
          List.assoc Scheme.Split row.Core.Single_cache.results,
          List.assoc Scheme.Uniform row.Core.Single_cache.results )
      with
      | Some i, Some ii, Some iii ->
        Alcotest.(check bool) "I <= II" true (i.Scheme.leak_w <= ii.Scheme.leak_w *. 1.0001);
        Alcotest.(check bool) "II <= III" true (ii.Scheme.leak_w <= iii.Scheme.leak_w *. 1.0001);
        (* the paper's hallmark: conservative arrays, fast peripherals *)
        Alcotest.(check bool) "II array conservative" true
          (Core.Single_cache.array_is_conservative ii.Scheme.assignment)
      | _ -> ())
    rows

let test_scheme_ii_close_to_i () =
  (* "scheme II is only slightly behind scheme I": within 2x at mid budgets *)
  let rows = Core.Single_cache.scheme_rows (Lazy.force ctx) () in
  let mid = List.nth rows (List.length rows / 2) in
  match
    ( List.assoc Scheme.Independent mid.Core.Single_cache.results,
      List.assoc Scheme.Split mid.Core.Single_cache.results )
  with
  | Some i, Some ii ->
    Alcotest.(check bool)
      (Printf.sprintf "II/I = %.2f < 2" (ii.Scheme.leak_w /. i.Scheme.leak_w))
      true
      (ii.Scheme.leak_w /. i.Scheme.leak_w < 2.0)
  | _ -> Alcotest.fail "mid budget should be feasible"

(* --- L2 sweeps (T2/T3) ----------------------------------------------------- *)

let l2_sweep_uniform = lazy (Core.Two_level.l2_sweep (Lazy.force ctx) ~scheme:Scheme.Uniform ())
let l2_sweep_split = lazy (Core.Two_level.l2_sweep (Lazy.force ctx) ~scheme:Scheme.Split ())

let test_l2_sweep_feasibility_monotone () =
  (* bigger L2 => lower m2 => looser budget: once feasible, stays feasible *)
  let sweep = Lazy.force l2_sweep_uniform in
  let seen_feasible = ref false in
  List.iter
    (fun (r : Core.Two_level.l2_row) ->
      (match r.Core.Two_level.total_leak with
      | Some _ -> seen_feasible := true
      | None ->
        Alcotest.(check bool) "no feasibility gap" false !seen_feasible))
    sweep.Core.Two_level.rows

let test_m2_of_curve_diagnosable () =
  let curve =
    {
      Nmcache_workload.Missrate.workload = "toy";
      l1_size = 16384;
      l1_miss_rate = 0.05;
      l2_sizes = [| 1024; 2048 |];
      l2_local_rates = [| 0.5; 0.25 |];
    }
  in
  Alcotest.(check (float 0.0)) "exact size" 0.25 (Core.Two_level.m2_of_curve curve 2048);
  match Core.Two_level.m2_of_curve curve 4096 with
  | _ -> Alcotest.fail "unsimulated size must raise"
  | exception Invalid_argument msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    let mentions s =
      Alcotest.(check bool) ("message mentions " ^ s) true (contains msg s)
    in
    mentions "4096";
    mentions "toy";
    mentions "1024, 2048"

let test_l2_m2_decreasing () =
  let sweep = Lazy.force l2_sweep_uniform in
  let rec check = function
    | (a : Core.Two_level.l2_row) :: (b :: _ as rest) ->
      Alcotest.(check bool) "m2 non-increasing in size" true
        (b.Core.Two_level.m2 <= a.Core.Two_level.m2 +. 1e-9);
      check rest
    | _ -> ()
  in
  check sweep.Core.Two_level.rows

let test_l2_turnover () =
  (* the largest L2 is never the leakage optimum (the paper's turnover) *)
  let sweep = Lazy.force l2_sweep_uniform in
  match Core.Two_level.best_l2_size sweep with
  | None -> Alcotest.fail "no feasible L2"
  | Some best ->
    let largest =
      List.fold_left (fun acc (r : Core.Two_level.l2_row) -> max acc r.Core.Two_level.l2_size)
        0 sweep.Core.Two_level.rows
    in
    Alcotest.(check bool) "optimum below the largest size" true (best < largest)

let test_l2_split_never_worse () =
  let u = Lazy.force l2_sweep_uniform and s = Lazy.force l2_sweep_split in
  List.iter2
    (fun (ru : Core.Two_level.l2_row) (rs : Core.Two_level.l2_row) ->
      match (ru.Core.Two_level.total_leak, rs.Core.Two_level.total_leak) with
      | Some lu, Some ls ->
        Alcotest.(check bool) "scheme II never worse" true (ls <= lu *. 1.0001)
      | None, Some _ -> Alcotest.fail "split cannot be feasible where uniform is not (same delay range)"
      | _ -> ())
    u.Core.Two_level.rows s.Core.Two_level.rows

let test_l2_bigger_more_conservative () =
  (* paper: the leakage-optimal L2 size can afford knobs at least as
     conservative as the smallest feasible size's (whose tight budget
     forces aggressive assignments) *)
  let sweep = Lazy.force l2_sweep_uniform in
  let knob_of size =
    List.find_map
      (fun (r : Core.Two_level.l2_row) ->
        if r.Core.Two_level.l2_size = size then
          Option.map
            (fun (res : Scheme.result) -> res.Scheme.assignment.Component.array)
            r.Core.Two_level.result
        else None)
      sweep.Core.Two_level.rows
  in
  let smallest_feasible =
    List.find_map
      (fun (r : Core.Two_level.l2_row) ->
        if r.Core.Two_level.result <> None then Some r.Core.Two_level.l2_size else None)
      sweep.Core.Two_level.rows
  in
  match (Core.Two_level.best_l2_size sweep, smallest_feasible) with
  | Some best, Some smallest ->
    let kb = Option.get (knob_of best) and ks = Option.get (knob_of smallest) in
    Alcotest.(check bool) "optimal size at least as conservative" true
      (kb.Component.vth >= ks.Component.vth -. 1e-9
      && kb.Component.tox >= ks.Component.tox -. 1e-15)
  | _ -> Alcotest.fail "no feasible size"

(* --- L1 sweep (T4) ----------------------------------------------------------- *)

let test_l1_small_is_optimal () =
  let sweep = Core.Two_level.l1_sweep_rows (Lazy.force ctx) () in
  match Core.Two_level.best_l1_size sweep with
  | None -> Alcotest.fail "no feasible L1"
  | Some best ->
    Alcotest.(check bool)
      (Printf.sprintf "small L1 optimal (got %dK)" (best / 1024))
      true
      (best <= 16 * 1024)

let test_l1_miss_rates_low_and_falling () =
  let sweep = Core.Two_level.l1_sweep_rows (Lazy.force ctx) () in
  let rates = List.map (fun (r : Core.Two_level.l1_row) -> r.Core.Two_level.m1) sweep.Core.Two_level.l1_rows in
  (match (rates, List.rev rates) with
  | first :: _, last :: _ ->
    Alcotest.(check bool) "m1 falls with size" true (last < first)
  | _ -> Alcotest.fail "empty sweep");
  List.iter
    (fun m -> Alcotest.(check bool) "m1 < 30%" true (m < 0.30))
    rates

(* --- Figure 2 (tuple problem) -------------------------------------------------- *)

let fig2 = lazy (Core.Tuple_study.figure2_curves (Lazy.force ctx))

let curve_of spec_pred curves =
  List.find_map
    (fun ((s : Tuple_problem.spec), pts) -> if spec_pred s then Some pts else None)
    curves

let test_fig2_all_curves_present () =
  let curves = Lazy.force fig2 in
  Alcotest.(check int) "five budgets" 5 (List.length curves);
  List.iter
    (fun (_, pts) -> Alcotest.(check bool) "non-empty frontier" true (pts <> []))
    curves

let test_fig2_2t3v_at_least_as_good_as_2t2v () =
  let curves = Lazy.force fig2 in
  let c23 = Option.get (curve_of (fun s -> s.Tuple_problem.n_vth = 3 && s.Tuple_problem.n_tox = 2) curves) in
  let c22 = Option.get (curve_of (fun s -> s.Tuple_problem.n_vth = 2 && s.Tuple_problem.n_tox = 2) curves) in
  (* at every 2T2V frontier point the richer 2T3V frontier must match it *)
  List.iter
    (fun (p : Tuple_problem.point) ->
      match Core.Tuple_study.energy_at c23 ~amat:(p.Tuple_problem.amat *. 1.0000001) with
      | None -> Alcotest.fail "2T3V misses an AMAT the poorer set reaches"
      | Some e ->
        Alcotest.(check bool) "2T3V <= 2T2V" true (e <= p.Tuple_problem.energy *. 1.0001))
    c22

let test_fig2_dual_vth_near_optimal_at_loose_amat () =
  (* "dual Tox + dual Vth is sufficient": within 15% of 2T3V at the
     loose end of the frontier *)
  let curves = Lazy.force fig2 in
  let c23 = Option.get (curve_of (fun s -> s.Tuple_problem.n_vth = 3 && s.Tuple_problem.n_tox = 2) curves) in
  let c22 = Option.get (curve_of (fun s -> s.Tuple_problem.n_vth = 2 && s.Tuple_problem.n_tox = 2) curves) in
  let loose =
    List.fold_left
      (fun acc (p : Tuple_problem.point) -> Float.max acc p.Tuple_problem.amat)
      Float.neg_infinity (c23 @ c22)
  in
  match (Core.Tuple_study.energy_at c22 ~amat:loose, Core.Tuple_study.energy_at c23 ~amat:loose) with
  | Some e22, Some e23 ->
    Alcotest.(check bool)
      (Printf.sprintf "2T2V within 15%% of 2T3V (%.1f vs %.1f pJ)" (Units.to_pj e22)
         (Units.to_pj e23))
      true
      (e22 <= e23 *. 1.15)
  | _ -> Alcotest.fail "frontiers should cover the loose end"

let test_fig2_dual_vth_beats_dual_tox_when_single_knob () =
  (* "a single Tox + dual Vth outperforms single Vth + dual Tox" at the
     relaxed end of the trade-off *)
  let curves = Lazy.force fig2 in
  let c12 = Option.get (curve_of (fun s -> s.Tuple_problem.n_vth = 2 && s.Tuple_problem.n_tox = 1) curves) in
  let c21 = Option.get (curve_of (fun s -> s.Tuple_problem.n_vth = 1 && s.Tuple_problem.n_tox = 2) curves) in
  let loose =
    List.fold_left
      (fun acc (p : Tuple_problem.point) -> Float.max acc p.Tuple_problem.amat)
      Float.neg_infinity (c12 @ c21)
  in
  match (Core.Tuple_study.energy_at c12 ~amat:loose, Core.Tuple_study.energy_at c21 ~amat:loose) with
  | Some dual_vth, Some dual_tox ->
    Alcotest.(check bool)
      (Printf.sprintf "1T+2V (%.1f pJ) <= 2T+1V (%.1f pJ)" (Units.to_pj dual_vth)
         (Units.to_pj dual_tox))
      true
      (dual_vth <= dual_tox *. 1.02)
  | _ -> Alcotest.fail "frontiers should cover the loose end"

(* --- fit audit ------------------------------------------------------------------ *)

let test_fit_quality_thresholds () =
  let c = Lazy.force ctx in
  let fitted = Core.Context.fitted c (Core.Context.l1_config c ()) in
  let q = Fitted_cache.worst_quality fitted in
  Alcotest.(check bool)
    (Printf.sprintf "worst component R2 %.4f > 0.9" q.Model.r2)
    true (q.Model.r2 > 0.9)

(* --- experiments registry --------------------------------------------------------- *)

let test_registry_complete () =
  Alcotest.(check int) "six paper artefacts" 6 (List.length Core.Experiments.paper);
  Alcotest.(check int) "eighteen experiments" 18 (List.length Core.Experiments.all);
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true (Core.Experiments.find id <> None))
    [ "fig1"; "schemes"; "l2sweep"; "l2sweep2"; "l1sweep"; "fig2" ]

let test_summary_claims_hold () =
  (* the live claim checker is the top-level acceptance test *)
  let vs = Core.Summary.verdicts (Lazy.force ctx) in
  List.iter
    (fun (v : Core.Summary.verdict) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s [%s] -- %s" v.Core.Summary.claim v.Core.Summary.source
           v.Core.Summary.evidence)
        true v.Core.Summary.holds)
    vs

let test_experiment_determinism () =
  (* full pipeline determinism: drop every memoised characterisation and
     re-run; the rendered tables must be byte-identical *)
  let c = Lazy.force ctx in
  let render () =
    Core.Report.render (Core.Single_cache.scheme_table c)
    ^ Core.Report.render (Core.Single_cache.figure1 c)
  in
  let first = render () in
  Core.Context.clear_memo ();
  let second = render () in
  Alcotest.(check bool) "byte-identical reruns" true (String.equal first second)

let test_all_experiments_produce_output () =
  let c = Lazy.force ctx in
  List.iter
    (fun (e : Core.Experiments.t) ->
      let artefacts = e.Core.Experiments.run c in
      Alcotest.(check bool)
        (e.Core.Experiments.id ^ " yields artefacts")
        true (artefacts <> []);
      let rendered = Core.Report.render artefacts in
      Alcotest.(check bool)
        (e.Core.Experiments.id ^ " renders")
        true
        (String.length rendered > 40))
    Core.Experiments.all

let suite =
  [
    Alcotest.test_case "fig1 series shape" `Slow test_fig1_series_shape;
    Alcotest.test_case "fig1 Tox leakage sensitivity" `Slow
      test_fig1_tox_is_stronger_leakage_knob;
    Alcotest.test_case "fig1 Vth delay sensitivity" `Slow test_fig1_vth_is_the_delay_knob;
    Alcotest.test_case "scheme claims (T1)" `Slow test_scheme_claims;
    Alcotest.test_case "scheme II close to I (T1)" `Slow test_scheme_ii_close_to_i;
    Alcotest.test_case "m2_of_curve diagnosable error" `Quick test_m2_of_curve_diagnosable;
    Alcotest.test_case "L2 feasibility monotone (T2)" `Slow test_l2_sweep_feasibility_monotone;
    Alcotest.test_case "L2 m2 decreasing (T2)" `Slow test_l2_m2_decreasing;
    Alcotest.test_case "L2 turnover (T2)" `Slow test_l2_turnover;
    Alcotest.test_case "scheme II never worse (T3)" `Slow test_l2_split_never_worse;
    Alcotest.test_case "bigger L2 more conservative (T2)" `Slow
      test_l2_bigger_more_conservative;
    Alcotest.test_case "small L1 optimal (T4)" `Slow test_l1_small_is_optimal;
    Alcotest.test_case "L1 miss rates (T4)" `Slow test_l1_miss_rates_low_and_falling;
    Alcotest.test_case "fig2 curves present" `Slow test_fig2_all_curves_present;
    Alcotest.test_case "fig2 2T3V dominates 2T2V" `Slow test_fig2_2t3v_at_least_as_good_as_2t2v;
    Alcotest.test_case "fig2 dual/dual near optimal" `Slow
      test_fig2_dual_vth_near_optimal_at_loose_amat;
    Alcotest.test_case "fig2 Vth beats Tox as single knob" `Slow
      test_fig2_dual_vth_beats_dual_tox_when_single_knob;
    Alcotest.test_case "fit quality thresholds" `Slow test_fit_quality_thresholds;
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "experiment determinism" `Slow test_experiment_determinism;
    Alcotest.test_case "summary claims hold" `Slow test_summary_claims_hold;
    Alcotest.test_case "all experiments run" `Slow test_all_experiments_produce_output;
  ]
