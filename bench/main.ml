(* Benchmark harness.

   Phase 1 regenerates every table and figure of the paper (plus the
   X-series extensions) and prints them — the data behind
   EXPERIMENTS.md.  Phase 2 runs Bechamel micro-benchmarks: one
   Test.make per experiment kernel (warm, memoised inputs) and one per
   substrate hot path. *)

module Units = Nmcache_physics.Units
module Component = Nmcache_geometry.Component
module Cache_model = Nmcache_geometry.Cache_model
module Fitted_cache = Nmcache_fit.Fitted_cache
module Cache = Nmcache_cachesim.Cache
module Mattson = Nmcache_cachesim.Mattson
module Replacement = Nmcache_cachesim.Replacement
module Rng = Nmcache_numerics.Rng
module Grid = Nmcache_opt.Grid
module Scheme = Nmcache_opt.Scheme
module Gen = Nmcache_workload.Gen
module Access = Nmcache_workload.Access

module Json = Nmcache_engine.Json
module Span = Nmcache_engine.Span
module Obs = Nmcache_engine.Obs
module Metrics = Nmcache_engine.Metrics

(* ------------------------------------------------------------------ *)
(* Machine-readable bench report                                        *)

(* v2: added the "resilience" section (retry / checkpoint / deadline
   counters), so perf-trajectory readers can spot runs whose wall time
   was paid for by retries or rescued by resumed slots
   v3: added "digest" (the sweep scenario's numerical pin) and
   "resource" (GC counters, heap sizes) — `ppcache bench diff` reads
   both v2 and v3 *)
let bench_schema_version = 3

(* BENCH_<label>.json: the perf-trajectory data point this run
   contributes — per-experiment wall time (from the experiment spans),
   the engine stage table, memo hit rates, and the metrics registry
   (LM iteration counts, fit quality, cachesim totals).  Versioned so
   later PRs can evolve the shape without breaking report readers.
   [scenario] names a dedicated scenario run ("sweep") so trajectory
   readers never compare a scenario wall time against a full
   reproduction; absent for the classic full run. *)
let write_bench_json ?scenario ?digest ?(extra = []) ~label ~jobs ~quick ~wall_s () =
  let experiments =
    List.filter_map
      (fun (s : Span.span) ->
        match List.assoc_opt "id" s.Span.attrs with
        | Some (Json.String id) when String.length s.Span.name > 11
                                     && String.sub s.Span.name 0 11 = "experiment:" ->
          Some (Json.Obj [ ("id", Json.String id); ("wall_s", Json.Float (s.Span.dur_us /. 1e6)) ])
        | _ -> None)
      (Span.spans ())
  in
  let report =
    Json.Obj
      ([
         ("schema_version", Json.Int bench_schema_version);
         ("label", Json.String label);
         ("jobs", Json.Int jobs);
         ("quick", Json.Bool quick);
       ]
      @ (match scenario with
        | None -> []
        | Some s -> [ ("scenario", Json.String s) ])
      @ (match digest with
        | None -> []
        | Some d -> [ ("digest", Json.Float d) ])
      @ extra
      @ [
          ("wall_s", Json.Float wall_s);
          ("experiments", Json.List experiments);
          ("stages", Obs.stages_json ());
          ("memo", Obs.memo_json ());
          ("metrics", Metrics.to_json ());
          ("faults", Obs.faults_json ());
          ("resilience", Obs.resilience_json ());
          ("resource", Nmcache_engine.Resource.summary_json ());
        ])
  in
  let path = "BENCH_" ^ label ^ ".json" in
  Obs.write_json ~path report;
  Printf.printf "[bench report: %s]\n" path

(* ------------------------------------------------------------------ *)
(* Sweep scenario: the full L1×L2 miss-rate grid                       *)

(* The design-space studies need (m1, m2) for every (workload, L1, L2)
   cell.  This scenario times exactly that grid, in one of two modes:

   - "per-point": one two-level simulation per (L1, L2) cell — the
     sweep structure the repo had before the profile-once engine, kept
     so the committed BENCH_baseline.json trajectory point stays
     reproducible from HEAD;
   - "profile": one stack-distance profile per (workload, L1 config),
     every L2 (and further L2 size, later) derived without another
     trace traversal.

   The digest printed at the end is a plain sum of rates, one
   (m1 + m2) term per grid cell, pinning each mode's numerical output
   across refactors.  Digests are mode-specific: per-point's m2 counts
   the full L2 access stream (writebacks included) while the profile's
   m2 is the demand-miss-stream estimate the curve layer has always
   used, so the two are close in shape but not summable to the same
   scalar. *)
let sweep_scenario ctx ~mode =
  let module Missrate = Nmcache_workload.Missrate in
  let workloads = ctx.Core.Context.workloads in
  let l1_sizes = Core.Context.l1_sizes in
  let l2_sizes = Core.Context.l2_sizes in
  let n = ctx.Core.Context.n_sim in
  let seed = ctx.Core.Context.seed in
  Printf.printf
    "==================================================================\n\
    \ Sweep scenario: %d workloads x %d L1 sizes x %d L2 sizes (%s)\n\
     ==================================================================\n"
    (List.length workloads) (Array.length l1_sizes) (Array.length l2_sizes) mode;
  let digest = ref 0.0 in
  (match mode with
  | "per-point" ->
    List.iter
      (fun workload ->
        Array.iter
          (fun l1_size ->
            Array.iter
              (fun l2_size ->
                let p = Missrate.simulate ~seed ~workload ~l1_size ~l2_size ~n () in
                digest := !digest +. p.Missrate.l1_miss +. p.Missrate.l2_local)
              l2_sizes)
          l1_sizes)
      workloads
  | "profile" ->
    let g = Missrate.grid ~seed ~workloads ~l1_sizes ~l2_sizes ~n () in
    (* accumulate one (m1 + m2) term per grid cell, the same shape as
       the per-point digest *)
    Array.iteri
      (fun i _ ->
        Array.iter
          (fun (c : Missrate.l2_curve) ->
            Array.iter
              (fun m2 -> digest := !digest +. c.Missrate.l1_miss_rate +. m2)
              c.Missrate.l2_local_rates)
          g.Missrate.g_per_workload.(i))
      l1_sizes
  | other ->
    Printf.eprintf "bench: unknown --grid mode %S (expected per-point or profile)\n" other;
    exit 2);
  Printf.printf "[sweep grid digest %.6f]\n" !digest;
  Printf.printf "[trace traversals: %d simulations, %d mattson profiles]\n"
    (Metrics.counter_value "cachesim.simulations")
    (Metrics.counter_value "cachesim.mattson_curves");
  !digest

(* ------------------------------------------------------------------ *)
(* Serve scenario: cold-start vs warm-store replay                      *)

(* The serve trajectory point: the same mixed query batch is answered
   twice through the full Service handler — once against an empty
   store (every model fitted, every curve profiled) and once against
   the store the first pass persisted, with the in-process memo tables
   cleared in between so the second pass measures a genuine restart.
   The handler's own serve.cold_us / serve.warm_us histograms supply
   p50/p99; the digest (sum of response-line lengths) pins the two
   passes to byte-identical answers. *)

let serve_queries ctx =
  let n = ctx.Core.Context.n_sim in
  List.concat
    [
      (* one size per query: every cold optimize characterises and fits
         its own cache, so the cold histogram measures real work at
         every percentile *)
      List.mapi
        (fun i size_kb ->
          let scheme = if i mod 2 = 0 then "III" else "II" in
          Printf.sprintf
            {|{"id":"opt-%s-%dk","op":"optimize","scheme":"%s","size_kb":%d,"delay_budget_ps":2500}|}
            scheme size_kb scheme size_kb)
        [ 4; 8; 16; 32; 64; 128; 256; 512 ];
      List.map
        (fun w ->
          Printf.sprintf
            {|{"id":"mc-%s","op":"miss_curve","workload":"%s","l1_kb":16,"l2_kb":[256,512,1024],"n":%d}|}
            w w n)
        [ "spec2000-mix"; "tpcc" ];
      List.map
        (fun i ->
          Printf.sprintf
            {|{"id":"amat-%d","op":"amat","t_l1_ps":500,"t_l2_ps":2000,"t_mem_ps":60000,"m1":0.0%d,"m2":0.3}|}
            i i)
        [ 1; 2; 3; 4; 5 ];
    ]

let serve_pass ctx ~dir queries =
  let module Store = Nmcache_engine.Store in
  let store = Store.open_ ~dir in
  let service =
    Core.Service.create ~store ~ctx ~queue:64
      ~jobs:(Nmcache_engine.Executor.get_jobs ())
      ()
  in
  let digest = ref 0.0 in
  List.iter
    (fun line ->
      let resp, settle = Core.Service.handle_line service line in
      settle ();
      digest := !digest +. float_of_int (String.length resp))
    queries;
  Store.close store;
  !digest

let serve_scenario ctx =
  let dir =
    let base = Filename.temp_file "ppcache-bench-serve" "" in
    Sys.remove base;
    Unix.mkdir base 0o755;
    base
  in
  let queries = serve_queries ctx in
  Printf.printf
    "==================================================================\n\
    \ Serve scenario: %d queries, cold store then warm replay\n\
     ==================================================================\n"
    (List.length queries);
  let cold_digest = serve_pass ctx ~dir queries in
  (* a genuine restart: drop every in-process memo so the warm pass
     can only be fast through the persistent store *)
  Core.Context.clear_memo ();
  Nmcache_workload.Missrate.clear_cache ();
  let warm_digest = serve_pass ctx ~dir queries in
  if cold_digest <> warm_digest then begin
    Printf.eprintf
      "bench: serve scenario: warm replay diverged from cold pass (digest \
       %.1f vs %.1f)\n"
      cold_digest warm_digest;
    exit 1
  end;
  let summary name =
    match Metrics.histogram_summary name with
    | Some h -> h
    | None ->
      Printf.eprintf "bench: serve scenario: missing histogram %s\n" name;
      exit 1
  in
  let cold = summary "serve.cold_us" in
  let warm = summary "serve.warm_us" in
  let speedup = cold.Metrics.p50 /. Float.max warm.Metrics.p50 1e-9 in
  Printf.printf "[serve cold: %d answers, p50 %.0f us, p99 %.0f us]\n"
    cold.Metrics.count cold.Metrics.p50 cold.Metrics.p99;
  Printf.printf "[serve warm: %d answers, p50 %.0f us, p99 %.0f us]\n"
    warm.Metrics.count warm.Metrics.p50 warm.Metrics.p99;
  Printf.printf "[serve warm/cold p50 speedup: %.0fx]\n" speedup;
  (* best-effort temp cleanup; the store is tiny either way *)
  (try
     Array.iter
       (fun f -> Sys.remove (Filename.concat dir f))
       (Sys.readdir dir);
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  let hist_json (h : Metrics.histogram_summary) =
    Json.Obj
      [
        ("count", Json.Int h.Metrics.count);
        ("p50_us", Json.Float h.Metrics.p50);
        ("p90_us", Json.Float h.Metrics.p90);
        ("p99_us", Json.Float h.Metrics.p99);
      ]
  in
  let extra =
    [
      ( "serve",
        Json.Obj
          [
            ("queries", Json.Int (List.length queries));
            ("cold", hist_json cold);
            ("warm", hist_json warm);
            ("warm_speedup_p50", Json.Float speedup);
          ] );
    ]
  in
  (cold_digest, extra)

(* ------------------------------------------------------------------ *)
(* Stream scenario: record + chunk-equivalent streamed replay           *)

module Stream_trace = Nmcache_cachesim.Stream_trace
module Trace = Nmcache_cachesim.Trace

(* The streaming trajectory point: record one headline workload to a
   temporary PPTRC01 file, then simulate it streamed at a small and a
   large chunk size.  The timed region is the recording plus both
   replays; the digest pins the rates and the trace statistics, and
   the scenario aborts (exit 1) if the two chunk sizes disagree on a
   single bit — like the serve scenario, the bench doubles as an
   equivalence gate. *)
let stream_scenario ctx =
  let workload = List.hd Nmcache_workload.Registry.headline in
  (* several multiples of the sweep trace length: streaming is the
     scale story, and a multi-second timed region keeps the CI
     regression gate out of timer-noise territory *)
  let n = 8 * ctx.Core.Context.n_sim in
  let chunk_small = 1024 and chunk_large = 65536 in
  let path = Filename.temp_file "ppcache-bench-stream" ".pptrc" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Printf.printf
    "==================================================================\n\
    \ Stream scenario: record %s (%d accesses), replay at chunk %d vs %d\n\
     ==================================================================\n"
    workload n chunk_small chunk_large;
  let gen = Nmcache_workload.Registry.build ~seed:ctx.Core.Context.seed workload in
  Stream_trace.write_file ~path ~name:workload ~chunk_size:8192
    ~next:(fun () ->
      let a = Gen.next gen in
      { Trace.addr = a.Access.addr; write = a.Access.write })
    ~n ();
  let point chunk_size =
    Nmcache_workload.Missrate.simulate_stream ~warmup:false
      ~stream:(Stream_trace.of_file ~chunk_size path)
      ~l1_size:(16 * 1024) ~l2_size:(256 * 1024) ()
  in
  let p_small = point chunk_small in
  let p_large = point chunk_large in
  if p_small <> p_large then begin
    Printf.eprintf
      "bench: stream scenario: chunk %d diverged from chunk %d (L1 %.6f vs %.6f)\n"
      chunk_small chunk_large p_small.Nmcache_workload.Missrate.l1_miss
      p_large.Nmcache_workload.Missrate.l1_miss;
    exit 1
  end;
  let stats = Stream_trace.analyze (Stream_trace.of_file path) in
  let info = Stream_trace.file_info path in
  let bytes = (Unix.stat path).Unix.st_size in
  Printf.printf "[stream: %d accesses, %d on-disk chunks, %d bytes (%.2f B/access)]\n"
    info.Stream_trace.fi_entries info.Stream_trace.fi_chunks bytes
    (float_of_int bytes /. float_of_int (max 1 info.Stream_trace.fi_entries));
  Printf.printf "[stream miss rates: L1 %.6f, L2 local %.6f, L2 global %.6f]\n"
    p_small.Nmcache_workload.Missrate.l1_miss
    p_small.Nmcache_workload.Missrate.l2_local
    p_small.Nmcache_workload.Missrate.l2_global;
  let digest =
    p_small.Nmcache_workload.Missrate.l1_miss
    +. p_small.Nmcache_workload.Missrate.l2_local
    +. p_small.Nmcache_workload.Missrate.l2_global
    +. float_of_int stats.Trace.distinct_blocks
    +. stats.Trace.sequential_fraction
  in
  let extra =
    [
      ( "stream",
        Json.Obj
          [
            ("workload", Json.String workload);
            ("accesses", Json.Int info.Stream_trace.fi_entries);
            ("file_bytes", Json.Int bytes);
            ("chunks", Json.Int info.Stream_trace.fi_chunks);
            ("chunk_small", Json.Int chunk_small);
            ("chunk_large", Json.Int chunk_large);
            ("l1_miss", Json.Float p_small.Nmcache_workload.Missrate.l1_miss);
            ("l2_local", Json.Float p_small.Nmcache_workload.Missrate.l2_local);
            ("l2_global", Json.Float p_small.Nmcache_workload.Missrate.l2_global);
          ] );
    ]
  in
  (digest, extra)

(* ------------------------------------------------------------------ *)
(* Phase 1: reproduction                                                *)

let reproduce ctx ~jobs =
  Printf.printf
    "==================================================================\n\
    \ Phase 1: paper reproduction (every table and figure, %d job%s)\n\
     ==================================================================\n"
    jobs
    (if jobs = 1 then "" else "s");
  let t0 = Unix.gettimeofday () in
  (* kernels evaluate through the engine; artefacts print in registry
     order afterwards, so the output bytes never depend on jobs.
     Partial-result mode: with --inject armed, a faulted experiment
     prints its fault in place and its siblings still report. *)
  let results = Core.Experiments.run_many_result ctx Core.Experiments.all in
  let wall = Unix.gettimeofday () -. t0 in
  let faulted = ref 0 in
  List.iter
    (fun ((e : Core.Experiments.t), status) ->
      Printf.printf "\n### %s — %s (%s)\n\n" e.Core.Experiments.id
        e.Core.Experiments.title e.Core.Experiments.paper_ref;
      match status with
      | Ok artefacts -> Core.Report.print artefacts
      | Error fault ->
        incr faulted;
        Printf.printf "FAULT %s\n" (Nmcache_engine.Fault.to_string fault))
    results;
  Printf.printf "\n[phase 1: %d experiments in %.1f s wall%s]\n\n"
    (List.length results) wall
    (if !faulted = 0 then "" else Printf.sprintf ", %d faulted" !faulted);
  print_string (Nmcache_engine.Trace.summary ())

(* ------------------------------------------------------------------ *)
(* Phase 2: Bechamel micro-benchmarks                                   *)

let microbenchmarks ctx =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let tech = ctx.Core.Context.tech in
  let grid = ctx.Core.Context.grid in
  let l1_fitted = Core.Context.fitted ctx (Core.Context.l1_config ctx ()) in
  let budget = 1.3 *. Scheme.fastest_access_time l1_fitted ~grid in
  (* pre-built inputs shared by the closures *)
  let rng = Rng.create ~seed:1L in
  let cache =
    Cache.create ~size_bytes:(16 * 1024) ~assoc:4 ~block_bytes:64
      ~policy:Replacement.Lru ()
  in
  let gen = Nmcache_workload.Registry.build "spec2000-mix" in
  let addresses = Array.map (fun (a : Access.t) -> a.Access.addr) (Gen.take gen 4096) in
  let profiler = Mattson.create ~block_bytes:64 () in
  let circuit = Cache_model.make tech (Core.Context.l1_config ctx ()) in
  let ref_knob = Core.Context.reference_knob ctx in
  let substrate =
    [
      Test.make ~name:"rng/xoshiro-bits64" (Staged.stage (fun () -> Rng.bits64 rng));
      Test.make ~name:"cachesim/4k-accesses"
        (Staged.stage (fun () ->
             Array.iter (fun a -> ignore (Cache.access cache a ~write:false)) addresses));
      Test.make ~name:"mattson/4k-accesses"
        (Staged.stage (fun () -> Array.iter (fun a -> Mattson.access profiler a) addresses));
      Test.make ~name:"circuit/evaluate-component"
        (Staged.stage (fun () ->
             ignore (Cache_model.evaluate_component circuit Component.Array_sense ref_knob)));
      Test.make ~name:"fit/characterize+fit-16KB"
        (Staged.stage (fun () -> ignore (Fitted_cache.characterize_and_fit circuit)));
    ]
  in
  let experiments =
    [
      (* one Test.make per paper table/figure kernel (warm caches) *)
      Test.make ~name:"fig1/series"
        (Staged.stage (fun () -> ignore (Core.Single_cache.figure1_series ctx)));
      Test.make ~name:"schemes/minimize-II"
        (Staged.stage (fun () ->
             ignore
               (Scheme.minimize_leakage l1_fitted ~grid ~scheme:Scheme.Split
                  ~delay_budget:budget)));
      Test.make ~name:"schemes/minimize-I-dp"
        (Staged.stage (fun () ->
             ignore
               (Scheme.minimize_leakage l1_fitted ~grid ~scheme:Scheme.Independent
                  ~delay_budget:budget)));
      Test.make ~name:"l2sweep/single-pair"
        (Staged.stage (fun () ->
             ignore (Core.Two_level.l2_sweep ctx ~scheme:Scheme.Uniform ())));
      Test.make ~name:"l1sweep/rows"
        (Staged.stage (fun () -> ignore (Core.Two_level.l1_sweep_rows ctx ())));
      Test.make ~name:"fig2/tuple-curves"
        (Staged.stage (fun () -> ignore (Core.Tuple_study.figure2_curves ctx)));
    ]
  in
  let tests = Test.make_grouped ~name:"nmcache" (substrate @ experiments) in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "";
  print_endline "==================================================================";
  print_endline " Phase 2: Bechamel micro-benchmarks (monotonic clock)";
  print_endline "==================================================================";
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let time_ns =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> t
        | Some [] | None -> Float.nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan in
      Printf.printf "  %-34s %14s/run   (r2 %.4f)\n" name
        (Units.to_engineering_string ~unit:"s" (time_ns *. 1e-9))
        r2)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

let () =
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  let string_flag name default =
    let rec find i =
      if i >= Array.length Sys.argv - 1 then default
      else if Sys.argv.(i) = name then Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let jobs =
    (* --jobs N (default: one domain per core; --jobs 1 recovers the
       sequential path for timing comparisons) *)
    let rec find i =
      if i >= Array.length Sys.argv - 1 then Nmcache_engine.Executor.default_jobs ()
      else if Sys.argv.(i) = "--jobs" then
        match int_of_string_opt Sys.argv.(i + 1) with
        | Some n when n >= 1 -> n
        | _ ->
          prerr_endline "bench: --jobs expects a positive integer";
          exit 2
      else find (i + 1)
    in
    find 1
  in
  (* --label L names the BENCH_<L>.json report (CI passes the branch);
     the label becomes a filename component, so reject path separators
     and anything else unsafe for BENCH_<label>.json *)
  let label = string_flag "--label" "local" in
  let label_ok =
    label <> ""
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z')
           || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9')
           || c = '-' || c = '_' || c = '.')
         label
    && label.[0] <> '.'
  in
  if not label_ok then begin
    Printf.eprintf
      "bench: --label %S is not a safe BENCH_<label>.json filename component \
       (use letters, digits, '-', '_', '.'; no leading '.')\n"
      label;
    exit 2
  end;
  (* --metrics-prom FILE writes the registry as OpenMetrics text after
     the timed phases *)
  let metrics_prom = string_flag "--metrics-prom" "" in
  let write_metrics_prom () =
    if metrics_prom <> "" then Obs.write_openmetrics ~path:metrics_prom
  in
  (* --checkpoint DIR [--resume] journals phase-1 sweep slots like
     `ppcache run`; the resumed-slot counts land in the report's
     resilience section *)
  let checkpoint = string_flag "--checkpoint" "" in
  let resume = Array.exists (fun a -> a = "--resume") Sys.argv in
  if checkpoint = "" && resume then begin
    prerr_endline "bench: --resume requires --checkpoint DIR";
    exit 2
  end;
  (* --inject SPEC arms deterministic fault injection (same grammar as
     PPCACHE_FAULTS) for chaos benchmarking *)
  (match string_flag "--inject" "" with
  | "" -> ()
  | spec -> (
    match Nmcache_engine.Faultpoint.configure spec with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "bench: bad --inject spec: %s\n" msg;
      exit 2));
  Nmcache_engine.Executor.set_jobs jobs;
  let ctx = if quick then Core.Context.quick () else Core.Context.default () in
  (* --scenario sweep [--grid per-point|profile] runs the dedicated
     L1×L2 grid scenario instead of the full reproduction: the timed
     region is the grid itself, which is the perf-trajectory point the
     committed BENCH_baseline/BENCH_pr6 files record *)
  (match string_flag "--scenario" "" with
  | "" -> ()
  | "sweep" ->
    let mode = string_flag "--grid" "profile" in
    let t0 = Unix.gettimeofday () in
    Span.set_enabled true;
    let digest = sweep_scenario ctx ~mode in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.printf "sweep scenario wall time: %.2f s\n" wall;
    write_bench_json ~scenario:"sweep" ~digest ~label ~jobs ~quick ~wall_s:wall ();
    write_metrics_prom ();
    exit 0
  | "serve" ->
    let t0 = Unix.gettimeofday () in
    Span.set_enabled true;
    let digest, extra = serve_scenario ctx in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.printf "serve scenario wall time: %.2f s\n" wall;
    write_bench_json ~scenario:"serve" ~digest ~extra ~label ~jobs ~quick
      ~wall_s:wall ();
    write_metrics_prom ();
    exit 0
  | "stream" ->
    let t0 = Unix.gettimeofday () in
    Span.set_enabled true;
    let digest, extra = stream_scenario ctx in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.printf "stream scenario wall time: %.2f s\n" wall;
    write_bench_json ~scenario:"stream" ~digest ~extra ~label ~jobs ~quick
      ~wall_s:wall ();
    write_metrics_prom ();
    exit 0
  | other ->
    Printf.eprintf "bench: unknown --scenario %S (expected sweep, serve or stream)\n"
      other;
    exit 2);
  let t0 = Unix.gettimeofday () in
  Span.set_enabled true;
  (* journal only phase 1 (the sweeps); microbenchmarks re-run kernels
     thousands of times and must never be served from disk *)
  let journal =
    if checkpoint = "" then None
    else begin
      let j = Nmcache_engine.Checkpoint.open_ ~dir:checkpoint ~resume in
      Nmcache_engine.Checkpoint.set_active (Some j);
      Some j
    end
  in
  reproduce ctx ~jobs;
  Option.iter
    (fun j ->
      Nmcache_engine.Checkpoint.set_active None;
      Printf.printf "[checkpoint %s: %d replayed, %d served, %d appended]\n"
        (Nmcache_engine.Checkpoint.path j)
        (Nmcache_engine.Checkpoint.replayed j)
        (Nmcache_engine.Checkpoint.served j)
        (Nmcache_engine.Checkpoint.appended j);
      Nmcache_engine.Checkpoint.close j)
    journal;
  write_bench_json ~label ~jobs ~quick ~wall_s:(Unix.gettimeofday () -. t0) ();
  write_metrics_prom ();
  (* microbenchmarks measure single-kernel latency: keep them off the
     domain pool — and stop collecting spans, bechamel would record
     thousands per closure — so the samples stay stable *)
  Span.set_enabled false;
  Nmcache_engine.Executor.set_jobs 1;
  microbenchmarks ctx;
  Printf.printf "\ntotal wall time: %.1f s\n" (Unix.gettimeofday () -. t0)
