(* Scenario: evaluating the memory system against a workload the
   registry doesn't ship — a video-server-like stream mix (large
   sequential reads + a hot metadata index).  Shows how to write a
   generator from the building blocks, measure its miss behaviour, and
   feed the rates into the energy model.

   Run with: dune exec examples/custom_workload.exe *)

module Rng = Nmcache_numerics.Rng
module Gen = Nmcache_workload.Gen
module Regions = Nmcache_workload.Regions
module Access = Nmcache_workload.Access
module Cache = Nmcache_cachesim.Cache
module Hierarchy = Nmcache_cachesim.Hierarchy
module Replacement = Nmcache_cachesim.Replacement
module System = Nmcache_energy.System
module Component = Nmcache_geometry.Component
module Units = Nmcache_physics.Units

let kb n = n * 1024
let mb n = n * 1024 * 1024

(* a seeded custom generator: 70% streaming over a 64MB media window,
   25% hot index, 5% connection table with Zipf popularity *)
let video_server ~seed =
  let rng = Rng.create ~seed in
  let media = Gen.make ~name:"media" (Regions.stream ~base:0x1000_0000 ~bytes:(mb 64) ~stride:8 ()) in
  let index =
    Gen.make ~name:"index"
      (Regions.locality_walker ~rng:(Rng.split rng) ~base:0x8000_0000 ~bytes:(kb 8)
         ~p_continue:0.8 ())
  in
  let connections =
    Gen.make ~name:"connections"
      (Regions.zipf_blocks ~rng:(Rng.split rng) ~base:0xc000_0000 ~bytes:(mb 8) ~block:64
         ~s:0.9 ~run:4 ())
  in
  Gen.mix ~name:"video-server" ~rng:(Rng.split rng)
    [ (0.70, media); (0.25, index); (0.05, connections) ]

let () =
  let ctx = Core.Context.default () in
  let gen = video_server ~seed:7L in

  (* measure miss rates with an explicit hierarchy *)
  let l1 =
    Cache.create ~size_bytes:(kb 16) ~assoc:4 ~block_bytes:64 ~policy:Replacement.Lru ()
  in
  let l2 =
    Cache.create ~size_bytes:(mb 1) ~assoc:8 ~block_bytes:64 ~policy:Replacement.Lru ()
  in
  let h = Hierarchy.create ~l1 ~l2 in
  Gen.iter gen 2_000_000 (fun a ->
      ignore (Hierarchy.access h a.Access.addr ~write:a.Access.write));
  let m1 = Hierarchy.l1_miss_rate h in
  let m2 = Hierarchy.l2_local_miss_rate h in
  Printf.printf "video-server: L1 miss %.2f%%, L2 local miss %.2f%%\n" (100.0 *. m1)
    (100.0 *. m2);

  (* plug the measured rates into the system energy model *)
  let sys =
    System.make
      ~l1:(Core.Context.fitted ctx (Core.Context.l1_config ctx ()))
      ~l2:(Core.Context.fitted ctx (Core.Context.l2_config ctx ()))
      ~mem:ctx.Core.Context.mem ~m1 ~m2
  in
  let conservative = Component.knob ~vth:0.45 ~tox:(Units.angstrom 14.0) in
  let fast = Component.knob ~vth:0.22 ~tox:(Units.angstrom 11.0) in
  let pick = function
    | System.L1_cell | System.L2_cell -> conservative
    | System.L1_periph | System.L2_periph -> fast
  in
  let split = System.evaluate sys pick in
  let flat = System.evaluate_uniform sys (Component.knob ~vth:0.3 ~tox:(Units.angstrom 12.0)) in
  Printf.printf "\n%-28s AMAT %7.0f ps   energy %8.1f pJ/access\n"
    "uniform reference pair:" (Units.to_ps flat.System.amat)
    (Units.to_pj flat.System.energy_per_access);
  Printf.printf "%-28s AMAT %7.0f ps   energy %8.1f pJ/access\n"
    "conservative cells + fast periphery:"
    (Units.to_ps split.System.amat)
    (Units.to_pj split.System.energy_per_access)
