(* Scenario: an SoC architect must pick an L2 capacity and its process
   flavours.  The chip runs a database-like load (TPC-C stand-in), the
   memory-system AMAT budget is fixed by the core's pipeline model, and
   every milliwatt of standby leakage costs battery.

   This walks the Section-5 methodology end-to-end on one workload:
   simulate miss rates, translate the AMAT budget into per-size L2
   delay budgets, optimise each size under scheme II, and report the
   resulting leakage landscape.

   Run with: dune exec examples/l2_sizing.exe *)

module Units = Nmcache_physics.Units
module Amat = Nmcache_energy.Amat
module Main_memory = Nmcache_energy.Main_memory
module Missrate = Nmcache_workload.Missrate
module Fitted_cache = Nmcache_fit.Fitted_cache
module Component = Nmcache_geometry.Component
module Scheme = Nmcache_opt.Scheme

let kb n = n * 1024
let mb n = n * 1024 * 1024

let () =
  let ctx = Core.Context.default () in
  let workload = "tpcc" in
  let l2_sizes = [| kb 256; kb 512; mb 1; mb 2; mb 4 |] in

  (* miss rates from architectural simulation (one pass, all sizes) *)
  let curve =
    Missrate.l2_curve ~workload ~l1_size:ctx.Core.Context.l1_size ~l2_sizes
      ~n:ctx.Core.Context.n_sim ()
  in
  Printf.printf "workload %s: L1 16KB miss rate %.2f%%\n\n" workload
    (100.0 *. curve.Missrate.l1_miss_rate);

  (* L1 fixed at the reference pair *)
  let l1 = Core.Context.fitted ctx (Core.Context.l1_config ctx ()) in
  let l1_ref =
    Fitted_cache.eval l1 (Component.uniform (Core.Context.reference_knob ctx))
  in
  let t_l1 = l1_ref.Fitted_cache.access_time in
  let t_mem = ctx.Core.Context.mem.Main_memory.t_access in
  let m1 = curve.Missrate.l1_miss_rate in

  (* AMAT budget: 2.2 ns, a typical allocation for this class of core *)
  let amat_budget = Units.ps 2200.0 in
  Printf.printf "AMAT budget %.0f ps (T_L1 = %.0f ps, T_mem = %.0f ns)\n\n"
    (Units.to_ps amat_budget) (Units.to_ps t_l1) (Units.to_ns t_mem);

  Printf.printf "%8s %10s %14s %14s %s\n" "L2" "m2" "T_L2 budget" "leakage" "assignment";
  Array.iteri
    (fun i l2_size ->
      let m2 = curve.Missrate.l2_local_rates.(i) in
      match Amat.required_t_l2 ~amat:amat_budget ~t_l1 ~t_mem ~m1 ~m2 with
      | None -> Printf.printf "%7dK %9.1f%% %14s\n" (l2_size / 1024) (100.0 *. m2) "impossible"
      | Some budget ->
        let fitted = Core.Context.fitted ctx (Core.Context.l2_config ctx ~size:l2_size ()) in
        (match
           Scheme.minimize_leakage fitted ~grid:ctx.Core.Context.grid ~scheme:Scheme.Split
             ~delay_budget:budget
         with
        | None ->
          Printf.printf "%7dK %9.1f%% %11.0f ps %14s\n" (l2_size / 1024) (100.0 *. m2)
            (Units.to_ps budget) "infeasible"
        | Some r ->
          Printf.printf "%7dK %9.1f%% %11.0f ps %11.3f mW %s\n" (l2_size / 1024)
            (100.0 *. m2) (Units.to_ps budget)
            (Units.to_mw r.Scheme.leak_w)
            (Format.asprintf "%a" Component.pp_assignment r.Scheme.assignment)))
    l2_sizes;

  print_newline ();
  print_endline
    "Reading: sizes whose miss rate is too high cannot meet the AMAT budget at any\n\
     knob setting; beyond the sweet spot, capacity leakage grows linearly while the\n\
     miss-rate payoff flattens -- the paper's turnover."
