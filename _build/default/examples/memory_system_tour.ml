(* A tour of the extension features on one memory system: a phased
   workload runs through a prefetching hierarchy, the resulting rates
   feed the energy model, and the design is hardened with variation
   margins and a drowsy standby mode.

   Run with: dune exec examples/memory_system_tour.exe *)

module Units = Nmcache_physics.Units
module Tech = Nmcache_device.Tech
module Variation = Nmcache_device.Variation
module Sram_cell = Nmcache_circuit.Sram_cell
module Cache = Nmcache_cachesim.Cache
module Prefetch = Nmcache_cachesim.Prefetch
module Replacement = Nmcache_cachesim.Replacement
module Trace = Nmcache_cachesim.Trace
module Gen = Nmcache_workload.Gen
module Access = Nmcache_workload.Access
module Registry = Nmcache_workload.Registry
module Component = Nmcache_geometry.Component
module Fitted_cache = Nmcache_fit.Fitted_cache
module Drowsy = Nmcache_energy.Drowsy

let kb n = n * 1024
let mb n = n * 1024 * 1024

let () =
  let ctx = Core.Context.default () in

  (* 1. a phased workload (gcc/mcf/art phases) and its trace profile *)
  let gen = Registry.build ~seed:11L "spec2000-phased" in
  let trace =
    Trace.record
      ~next:(fun () ->
        let a = Gen.next gen in
        { Trace.addr = a.Access.addr; write = a.Access.write })
      ~n:400_000
  in
  Format.printf "phased trace: %a@.@." Trace.pp_stats (Trace.analyze trace);

  (* 2. run it through a prefetching L1/L2 and compare degrees *)
  let run degree =
    let l1 =
      Cache.create ~size_bytes:(kb 16) ~assoc:4 ~block_bytes:64 ~policy:Replacement.Lru ()
    in
    let l2 =
      Cache.create ~size_bytes:(mb 1) ~assoc:8 ~block_bytes:64 ~policy:Replacement.Lru ()
    in
    let p = Prefetch.create ~degree ~l1 ~l2 () in
    let demand_miss = ref 0 and demand = ref 0 in
    Trace.iter trace (fun e ->
        let o = Prefetch.access p e.Trace.addr ~write:e.Trace.write in
        if not o.Prefetch.l1_hit then begin
          incr demand;
          if not o.Prefetch.l2_hit then incr demand_miss
        end);
    ( float_of_int !demand_miss /. float_of_int (max 1 !demand),
      Prefetch.accuracy p )
  in
  List.iter
    (fun degree ->
      let m2, acc = run degree in
      Printf.printf "prefetch degree %d: L2 demand miss %.1f%%  accuracy %.0f%%\n" degree
        (100.0 *. m2) (100.0 *. acc))
    [ 0; 1; 2 ];
  print_newline ();

  (* 3. knob the L2 conservatively and check the variation margin *)
  let tech = ctx.Core.Context.tech in
  let l2_fit = Core.Context.fitted ctx (Core.Context.l2_config ctx ()) in
  let quiet = Component.knob ~vth:0.5 ~tox:(Units.angstrom 14.0) in
  let nominal = Fitted_cache.leak_of l2_fit Component.Array_sense quiet in
  let cell = Sram_cell.make tech ~vth:0.5 ~tox:(Units.angstrom 14.0) in
  let sigma = Variation.sigma_vth tech ~w:cell.Sram_cell.w_pulldown ~tox:(Units.angstrom 14.0) in
  let inflate =
    Variation.mean_inflation ~sigma ~n_swing:tech.Tech.n_swing ~temp_k:tech.Tech.temp_k
  in
  Printf.printf "L2 array leakage at (0.50V, 14A): %.2f mW nominal, %.2f mW with \
                 variation (sigma %.0f mV)\n"
    (Units.to_mw nominal)
    (Units.to_mw (nominal *. inflate))
    (1e3 *. sigma);

  (* 4. add a drowsy standby on top *)
  let e =
    Drowsy.apply Drowsy.default_policy ~array_leak_w:(nominal *. inflate)
      ~periph_leak_w:(Units.mw 1.0) ~access_time:(Units.ps 900.0) ~awake_fraction:0.05
      ~drowsy_hit_rate:0.3
  in
  Printf.printf "with drowsy standby: %.2f mW (saving %.0f%%), access %.0f ps\n"
    (Units.to_mw e.Drowsy.leak_w)
    (100.0 *. e.Drowsy.leak_saving)
    (Units.to_ps e.Drowsy.access_time)
