examples/quickstart.mli:
