examples/tuple_budget.ml: Array Core Float List Nmcache_opt Nmcache_physics Printf String
