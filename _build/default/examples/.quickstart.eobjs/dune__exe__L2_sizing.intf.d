examples/l2_sizing.mli:
