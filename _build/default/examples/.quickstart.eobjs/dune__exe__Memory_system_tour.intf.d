examples/memory_system_tour.mli:
