examples/quickstart.ml: Format List Nmcache_device Nmcache_fit Nmcache_geometry Nmcache_opt Nmcache_physics
