examples/tuple_budget.mli:
