examples/l2_sizing.ml: Array Core Format Nmcache_energy Nmcache_fit Nmcache_geometry Nmcache_opt Nmcache_physics Nmcache_workload Printf
