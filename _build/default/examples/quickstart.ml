(* Quickstart: characterise one cache, fit the paper's compact models,
   and minimise its leakage under a delay constraint.

   Run with: dune exec examples/quickstart.exe *)

module Units = Nmcache_physics.Units
module Tech = Nmcache_device.Tech
module Config = Nmcache_geometry.Config
module Cache_model = Nmcache_geometry.Cache_model
module Component = Nmcache_geometry.Component
module Fitted_cache = Nmcache_fit.Fitted_cache
module Model = Nmcache_fit.Model
module Grid = Nmcache_opt.Grid
module Scheme = Nmcache_opt.Scheme

let () =
  (* 1. a 65nm technology and a 16KB, 4-way, 64B-block cache *)
  let tech = Tech.bptm65 in
  let config = Config.make ~size_bytes:(16 * 1024) ~assoc:4 ~block_bytes:64 () in
  let circuit = Cache_model.make tech config in
  Format.printf "technology: %a@." Tech.pp tech;
  Format.printf "cache: %a organised as %a@.@." Config.pp config
    Nmcache_geometry.Org.pp (Cache_model.org circuit);

  (* 2. characterise the four components over the (Vth, Tox) grid and
        fit the paper's compact models *)
  let fitted = Fitted_cache.characterize_and_fit circuit in
  List.iter
    (fun (cm : Fitted_cache.component_model) ->
      Format.printf "%-13s %a@." (Component.kind_name cm.Fitted_cache.kind)
        Model.pp_leak cm.Fitted_cache.leak)
    (Fitted_cache.components fitted);

  (* 3. evaluate one manual assignment: conservative cells, fast
        peripherals (the paper's scheme II intuition) *)
  let cell = Component.knob ~vth:0.45 ~tox:(Units.angstrom 14.0) in
  let periph = Component.knob ~vth:0.25 ~tox:(Units.angstrom 11.0) in
  let est = Fitted_cache.eval fitted (Component.split ~cell ~periphery:periph) in
  Format.printf "@.manual scheme-II assignment: access %.0f ps, leakage %.3f mW@."
    (Units.to_ps est.Fitted_cache.access_time)
    (Units.to_mw est.Fitted_cache.leak_w);

  (* 4. let the optimiser find the true optimum under the same delay *)
  let grid = Grid.make tech in
  (match
     Scheme.minimize_leakage fitted ~grid ~scheme:Scheme.Split
       ~delay_budget:est.Fitted_cache.access_time
   with
  | None -> Format.printf "no feasible assignment@."
  | Some r ->
    Format.printf "optimised scheme II:          access %.0f ps, leakage %.3f mW@."
      (Units.to_ps r.Scheme.access_time)
      (Units.to_mw r.Scheme.leak_w);
    Format.printf "  assignment: %a@." Component.pp_assignment r.Scheme.assignment);

  (* 5. and compare all three schemes at a 20%-relaxed budget *)
  let budget = 1.2 *. Scheme.fastest_access_time fitted ~grid in
  Format.printf "@.budget %.0f ps:@." (Units.to_ps budget);
  List.iter
    (fun scheme ->
      match Scheme.minimize_leakage fitted ~grid ~scheme ~delay_budget:budget with
      | None -> Format.printf "  scheme %-3s infeasible@." (Scheme.name scheme)
      | Some r ->
        Format.printf "  scheme %-3s %.3f mW@." (Scheme.name scheme)
          (Units.to_mw r.Scheme.leak_w))
    Scheme.all
