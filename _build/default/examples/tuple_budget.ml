(* Scenario: a process engineer must decide how many distinct threshold
   voltages and oxide thicknesses a 65nm platform should offer.  Every
   extra flavour is mask/qualification cost, so the question is where
   the energy returns flatten (the paper's Figure-2 question).

   Run with: dune exec examples/tuple_budget.exe *)

module Units = Nmcache_physics.Units
module Tuple_problem = Nmcache_opt.Tuple_problem

let () =
  let ctx = Core.Context.default () in
  let curves = Core.Tuple_study.figure2_curves ctx in

  (* pick a mid-range AMAT target common to every curve *)
  let amats =
    List.concat_map
      (fun (_, pts) -> List.map (fun (p : Tuple_problem.point) -> p.Tuple_problem.amat) pts)
      curves
  in
  let lo = List.fold_left Float.min Float.infinity amats in
  let hi = List.fold_left Float.max Float.neg_infinity amats in
  let target = lo +. (0.4 *. (hi -. lo)) in
  Printf.printf "AMAT target: %.0f ps\n\n" (Units.to_ps target);

  Printf.printf "%-14s %12s %s\n" "process" "energy" "chosen values";
  List.iter
    (fun ((spec : Tuple_problem.spec), points) ->
      (* the cheapest frontier point meeting the target *)
      let best =
        List.fold_left
          (fun acc (p : Tuple_problem.point) ->
            if p.Tuple_problem.amat <= target then
              match acc with
              | Some (b : Tuple_problem.point) when b.Tuple_problem.energy <= p.Tuple_problem.energy -> acc
              | _ -> Some p
            else acc)
          None points
      in
      match best with
      | None -> Printf.printf "%-14s %12s\n" (Tuple_problem.spec_name spec) "infeasible"
      | Some p ->
        let vths =
          String.concat "/"
            (Array.to_list (Array.map (fun v -> Printf.sprintf "%.2fV" v) p.Tuple_problem.vth_set))
        in
        let toxs =
          String.concat "/"
            (Array.to_list
               (Array.map
                  (fun x -> Printf.sprintf "%.0fA" (Units.to_angstrom x))
                  p.Tuple_problem.tox_set))
        in
        Printf.printf "%-14s %9.1f pJ  Vth {%s}, Tox {%s}\n"
          (Tuple_problem.spec_name spec)
          (Units.to_pj p.Tuple_problem.energy)
          vths toxs)
    curves;

  print_newline ();
  print_endline
    "Reading: two oxides and two thresholds already sit within a few pJ of the\n\
     richest process; a third threshold buys more than a third oxide, and if only\n\
     one knob can be split it should be Vth."
