module Units = Nmcache_physics.Units

type kind = Array_sense | Decoder | Addr_drivers | Data_drivers

let all_kinds = [ Array_sense; Decoder; Addr_drivers; Data_drivers ]

let kind_name = function
  | Array_sense -> "array+sense"
  | Decoder -> "decoder"
  | Addr_drivers -> "addr-drivers"
  | Data_drivers -> "data-drivers"

let kind_of_name s =
  match String.lowercase_ascii s with
  | "array+sense" | "array" -> Some Array_sense
  | "decoder" -> Some Decoder
  | "addr-drivers" | "addr" -> Some Addr_drivers
  | "data-drivers" | "data" -> Some Data_drivers
  | _ -> None

let kind_index = function
  | Array_sense -> 0
  | Decoder -> 1
  | Addr_drivers -> 2
  | Data_drivers -> 3

type summary = {
  delay : float;
  leak_w : float;
  dyn_energy : float;
  area : float;
}

let zero_summary = { delay = 0.0; leak_w = 0.0; dyn_energy = 0.0; area = 0.0 }

let add_summary a b =
  {
    delay = a.delay +. b.delay;
    leak_w = a.leak_w +. b.leak_w;
    dyn_energy = a.dyn_energy +. b.dyn_energy;
    area = a.area +. b.area;
  }

let pp_summary fmt s =
  Format.fprintf fmt "delay=%s leak=%s dyn=%s area=%.4fmm2"
    (Units.to_engineering_string ~unit:"s" s.delay)
    (Units.to_engineering_string ~unit:"W" s.leak_w)
    (Units.to_engineering_string ~unit:"J" s.dyn_energy)
    (s.area *. 1e6)

type knob = {
  vth : float;
  tox : float;
}

let knob ~vth ~tox = { vth; tox }

let pp_knob fmt k =
  Format.fprintf fmt "(%.2fV, %.1fA)" k.vth (Units.to_angstrom k.tox)

type assignment = {
  array : knob;
  decoder : knob;
  addr : knob;
  data : knob;
}

let uniform k = { array = k; decoder = k; addr = k; data = k }
let split ~cell ~periphery =
  { array = cell; decoder = periphery; addr = periphery; data = periphery }

let get a = function
  | Array_sense -> a.array
  | Decoder -> a.decoder
  | Addr_drivers -> a.addr
  | Data_drivers -> a.data

let set a kind k =
  match kind with
  | Array_sense -> { a with array = k }
  | Decoder -> { a with decoder = k }
  | Addr_drivers -> { a with addr = k }
  | Data_drivers -> { a with data = k }

let pp_assignment fmt a =
  Format.fprintf fmt "@[array=%a dec=%a addr=%a data=%a@]" pp_knob a.array pp_knob
    a.decoder pp_knob a.addr pp_knob a.data
