(** The cache circuit model: configuration + organisation ↦ the paper's
    four components, each evaluated at an arbitrary (Vth, Tox) knob.

    This is the reproduction's substitute for the paper's re-designed
    cache netlists + HSPICE: {!evaluate_component} plays the role of a
    circuit simulation of one component at one knob assignment, and
    {!characterize} sweeps the knob grid to produce the samples the
    compact models of {!Nmcache_fit} are fitted to.

    Independence convention (paper §3): each component's delay and
    leakage are treated as functions of {e its own} knob only.  Where a
    component's load physically depends on a neighbour (the decoder
    drives wordlines loaded by array cells; bus lengths depend on array
    area), the neighbour is frozen at the model's {e reference knob}, so
    component models stay independent exactly as the paper assumes. *)

type t

val make :
  ?reference:Component.knob -> ?org:Org.t -> Nmcache_device.Tech.t -> Config.t -> t
(** [make tech config] builds the model.  [org] defaults to
    {!best_org}'s choice; [reference] defaults to (0.30 V, 12 Å). *)

val tech : t -> Nmcache_device.Tech.t
val config : t -> Config.t
val org : t -> Org.t
val reference : t -> Component.knob

val floorplan : t -> float * float
(** (width, height) of the array floorplan in metres, at the reference
    knob (cell dimensions scale with Tox). *)

val evaluate_component : t -> Component.kind -> Component.knob -> Component.summary
(** Delay / leakage / dynamic energy / area of one component at one
    knob.  Raises [Invalid_argument] if the knob is outside the
    technology's legal range. *)

type report = {
  components : (Component.kind * Component.summary) list;
      (** in {!Component.all_kinds} order *)
  access_time : float;   (** Σ component delays [s] *)
  leak_w : float;        (** Σ component leakage [W] *)
  dyn_read_energy : float; (** Σ dynamic energy per read access [J] *)
  area : float;          (** Σ component area [m²] *)
}

val evaluate : t -> Component.assignment -> report
(** Full-cache evaluation under a per-component knob assignment. *)

val characterize :
  t ->
  Component.kind ->
  vths:float array ->
  toxs:float array ->
  (Component.knob * Component.summary) array
(** The "HSPICE sweep": evaluate the component over the cross product of
    the given knob grids (row-major, vth outer). *)

val best_org : ?reference:Component.knob -> Nmcache_device.Tech.t -> Config.t -> Org.t
(** Searches {!Org.candidates} for the partitioning minimising
    access time with a mild area penalty, evaluated at the reference
    knob. *)
