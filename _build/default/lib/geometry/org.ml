type t = {
  ndwl : int;
  ndbl : int;
}

let make ~ndwl ~ndbl =
  if not (Config.is_power_of_two ndwl) then invalid_arg "Org.make: ndwl not a power of two";
  if not (Config.is_power_of_two ndbl) then invalid_arg "Org.make: ndbl not a power of two";
  { ndwl; ndbl }

let rows_sub config t = max 1 (Config.sets config / t.ndbl)
let cols_sub config t = float_of_int (Config.row_cells config) /. float_of_int t.ndwl
let n_subarrays t = t.ndwl * t.ndbl

let grid t =
  let n = n_subarrays t in
  let rec log2 acc n = if n <= 1 then acc else log2 (acc + 1) (n lsr 1) in
  let k = log2 0 n in
  let gx = 1 lsl ((k + 1) / 2) in
  let gy = 1 lsl (k / 2) in
  (gx, gy)

let candidates config =
  let pow2_upto limit =
    let rec go acc v = if v > limit then List.rev acc else go (v :: acc) (v * 2) in
    go [] 1
  in
  let sets = Config.sets config in
  let row_cells = Config.row_cells config in
  let min_rows = min 64 sets in
  let min_cols = float_of_int (min 128 row_cells) in
  let all =
    List.concat_map
      (fun ndbl ->
        List.filter_map
          (fun ndwl ->
            let t = { ndwl; ndbl } in
            let rs = rows_sub config t in
            let cs = cols_sub config t in
            if
              rs >= min_rows && rs <= 1024 && cs >= min_cols && cs <= 2048.0
              && n_subarrays t <= 64
            then Some t
            else None)
          (pow2_upto 256))
      (pow2_upto (max 1 sets))
  in
  match all with
  | _ :: _ -> all
  | [] ->
    (* degenerate caches (very small or very skewed): fall back to the
       unpartitioned array and simple column cuts *)
    List.filter_map
      (fun ndwl ->
        if float_of_int row_cells /. float_of_int ndwl >= 8.0 then
          Some { ndwl; ndbl = 1 }
        else None)
      (pow2_upto 64)

let pp fmt t = Format.fprintf fmt "Ndwl=%d Ndbl=%d" t.ndwl t.ndbl
