module Tech = Nmcache_device.Tech
module Units = Nmcache_physics.Units
module Gate = Nmcache_circuit.Gate
module Wire = Nmcache_circuit.Wire
module Chain = Nmcache_circuit.Chain
module Sram_cell = Nmcache_circuit.Sram_cell
module Sense_amp = Nmcache_circuit.Sense_amp

type t = {
  tech : Tech.t;
  config : Config.t;
  org : Org.t;
  reference : Component.knob;
}

let default_reference = Component.knob ~vth:0.30 ~tox:(Units.angstrom 12.0)

let tech t = t.tech
let config t = t.config
let org t = t.org
let reference t = t.reference

(* ------------------------------------------------------------------ *)
(* Geometry helpers                                                    *)

let cell_at t (k : Component.knob) = Sram_cell.make t.tech ~vth:k.vth ~tox:k.tox

(* Floorplan dimensions at a given knob (cells set the pitch).  A 15%
   routing/overhead factor is applied per dimension. *)
let floorplan_at t (k : Component.knob) =
  let cell = cell_at t k in
  let gx, gy = Org.grid t.org in
  let rs = float_of_int (Org.rows_sub t.config t.org) in
  let cs = Org.cols_sub t.config t.org in
  let width = 1.15 *. float_of_int gx *. cs *. cell.Sram_cell.width in
  let height = 1.15 *. float_of_int gy *. rs *. cell.Sram_cell.height in
  (width, height)

let floorplan t = floorplan_at t t.reference

(* Wordline capacitance of one subarray with cells at knob [k]. *)
let wordline_cap t (k : Component.knob) =
  let cell = cell_at t k in
  let cs = Org.cols_sub t.config t.org in
  let wire_c = t.tech.Tech.wire_c_per_m *. (cs *. cell.Sram_cell.width) in
  (cs *. Sram_cell.gate_load t.tech cell) +. wire_c

let wordline_res t (k : Component.knob) =
  let cell = cell_at t k in
  let cs = Org.cols_sub t.config t.org in
  t.tech.Tech.wire_r_per_m *. (cs *. cell.Sram_cell.width)

(* Sense amplifiers: 4:1 column multiplexing, every subarray carries its
   own amps. *)
let bitline_mux = 4.0

let sense_amp_count t =
  let cs = Org.cols_sub t.config t.org in
  float_of_int (Org.n_subarrays t.org) *. cs /. bitline_mux

(* ------------------------------------------------------------------ *)
(* Component models                                                    *)

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

(* Memory-cell array + sense amplifiers. *)
let eval_array t (k : Component.knob) =
  Tech.check_knobs t.tech ~vth:k.vth ~tox:k.tox;
  let tech = t.tech in
  let cell = cell_at t k in
  let rs = float_of_int (Org.rows_sub t.config t.org) in
  let cs = Org.cols_sub t.config t.org in
  let n_cells = float_of_int (Config.total_cells t.config) in
  (* wordline propagation across the selected subarray (driver delay is
     accounted in the decoder component) *)
  let wl_delay = 0.38 *. wordline_res t k *. wordline_cap t k in
  (* bitline: current-source discharge to the sense threshold *)
  let c_bitline =
    rs
    *. (Sram_cell.drain_load tech cell
       +. (tech.Tech.wire_c_per_m *. cell.Sram_cell.height))
  in
  let sa = Sense_amp.make tech ~vth:k.vth ~tox:k.tox in
  let c_bitline = c_bitline +. sa.Sense_amp.c_input in
  let swing = Sense_amp.sense_swing *. tech.Tech.vdd in
  let bl_delay = c_bitline *. swing /. Sram_cell.read_current tech cell in
  let delay = wl_delay +. bl_delay +. sa.Sense_amp.delay in
  (* leakage: every cell, every sense amp *)
  let leak =
    (n_cells *. Sram_cell.leakage_power tech cell)
    +. (sense_amp_count t *. sa.Sense_amp.leak_w)
  in
  (* dynamic energy of a read: one wordline full swing, the active
     subarray's bitlines through the sense swing (precharge + evaluate),
     and the active sense amps *)
  let vdd = tech.Tech.vdd in
  let e_wordline = wordline_cap t k *. vdd *. vdd in
  let e_bitlines = 2.0 *. cs *. c_bitline *. vdd *. swing in
  let e_sense = cs /. bitline_mux *. sa.Sense_amp.energy in
  let area =
    (1.25 *. n_cells *. Sram_cell.area cell) +. (sense_amp_count t *. sa.Sense_amp.area)
  in
  {
    Component.delay;
    leak_w = leak;
    dyn_energy = e_wordline +. e_bitlines +. e_sense;
    area;
  }

(* Row decoder: predecoders (3-bit NAND groups), per-row combining gate,
   wordline driver chain sized for the reference wordline load. *)
let eval_decoder t (k : Component.knob) =
  Tech.check_knobs t.tech ~vth:k.vth ~tox:k.tox;
  let tech = t.tech in
  let rs = Org.rows_sub t.config t.org in
  let n_idx = max 1 (log2_ceil rs) in
  let n_groups = (n_idx + 2) / 3 in
  let group_bits i =
    (* distribute bits over groups as evenly as possible *)
    let base = n_idx / n_groups and extra = n_idx mod n_groups in
    if i < extra then base + 1 else base
  in
  let row_gate =
    Gate.nand tech ~vth:k.vth ~tox:k.tox ~size:1.0 ~inputs:(max 2 n_groups)
  in
  let c_wl_ref = wordline_cap t t.reference in
  let wl_chain =
    Chain.with_first_gate tech ~vth:k.vth ~tox:k.tox ~first:row_gate ~c_load:c_wl_ref
  in
  (* predecode stage: each group is a bank of NAND(bits) gates; one
     output drives rows/2^bits row-gate pins plus wire down the
     subarray edge *)
  let cell_ref = cell_at t t.reference in
  let predecode_delay = ref 0.0 in
  let predecode_leak = ref 0.0 in
  let predecode_area = ref 0.0 in
  let predecode_energy = ref 0.0 in
  for i = 0 to n_groups - 1 do
    let bits = max 1 (group_bits i) in
    let fan_in = max 2 bits in
    let bank = Gate.nand tech ~vth:k.vth ~tox:k.tox ~size:4.0 ~inputs:fan_in in
    let n_gates = 1 lsl bits in
    let loads = float_of_int rs /. float_of_int n_gates in
    let wire =
      Wire.make tech ~length:(float_of_int rs *. cell_ref.Sram_cell.height)
    in
    let c_load = (loads *. row_gate.Gate.c_in) +. wire.Wire.c_total in
    let d = Gate.delay bank ~c_load in
    if d > !predecode_delay then predecode_delay := d;
    predecode_leak := !predecode_leak +. (float_of_int n_gates *. bank.Gate.leak_w);
    predecode_area := !predecode_area +. (float_of_int n_gates *. bank.Gate.area);
    (* two predecode outputs toggle per access (old and new selection) *)
    predecode_energy :=
      !predecode_energy +. (2.0 *. Gate.switch_energy tech bank ~c_load /. float_of_int n_groups)
  done;
  let n_sub = float_of_int (Org.n_subarrays t.org) in
  let rows_f = float_of_int rs in
  let delay = !predecode_delay +. wl_chain.Chain.delay in
  let leak = n_sub *. (!predecode_leak +. (rows_f *. wl_chain.Chain.leak_w)) in
  let dyn = !predecode_energy +. wl_chain.Chain.energy in
  let area = n_sub *. (!predecode_area +. (rows_f *. wl_chain.Chain.area)) in
  { Component.delay; leak_w = leak; dyn_energy = dyn; area }

(* Repeated-wire driver groups (address in, data out). *)
let eval_drivers t (k : Component.knob) ~bits ~extra_load =
  Tech.check_knobs t.tech ~vth:k.vth ~tox:k.tox;
  let tech = t.tech in
  let width, height = floorplan_at t t.reference in
  let length = (width +. height) /. 2.0 in
  let rep = Wire.repeated tech ~vth:k.vth ~tox:k.tox ~length in
  let final =
    if extra_load > 0.0 then
      let unit = Gate.inverter tech ~vth:k.vth ~tox:k.tox ~size:1.0 in
      Some (Chain.buffer tech ~vth:k.vth ~tox:k.tox ~c_in:(4.0 *. unit.Gate.c_in) ~c_load:extra_load)
    else None
  in
  let fdelay, fleak, fenergy, farea =
    match final with
    | None -> (0.0, 0.0, 0.0, 0.0)
    | Some c -> (c.Chain.delay, c.Chain.leak_w, c.Chain.energy, c.Chain.area)
  in
  let bits_f = float_of_int bits in
  (* activity: roughly half the bus toggles per access *)
  let activity = 0.5 in
  {
    Component.delay = rep.Wire.delay +. fdelay;
    leak_w = bits_f *. (rep.Wire.leak_w +. fleak);
    dyn_energy = activity *. bits_f *. (rep.Wire.energy_per_transition +. fenergy);
    area = bits_f *. (rep.Wire.area +. farea);
  }

let eval_addr_drivers t k =
  eval_drivers t k ~bits:t.config.Config.addr_bits ~extra_load:0.0

let eval_data_drivers t k =
  (* each output bit finally drives an off-component load (latch / bus) *)
  eval_drivers t k ~bits:t.config.Config.output_bits ~extra_load:(Units.ff 25.0)

let evaluate_component t kind k =
  match (kind : Component.kind) with
  | Component.Array_sense -> eval_array t k
  | Component.Decoder -> eval_decoder t k
  | Component.Addr_drivers -> eval_addr_drivers t k
  | Component.Data_drivers -> eval_data_drivers t k

(* ------------------------------------------------------------------ *)

type report = {
  components : (Component.kind * Component.summary) list;
  access_time : float;
  leak_w : float;
  dyn_read_energy : float;
  area : float;
}

let evaluate t (a : Component.assignment) =
  let components =
    List.map
      (fun kind -> (kind, evaluate_component t kind (Component.get a kind)))
      Component.all_kinds
  in
  let total =
    List.fold_left
      (fun acc (_, s) -> Component.add_summary acc s)
      Component.zero_summary components
  in
  {
    components;
    access_time = total.Component.delay;
    leak_w = total.Component.leak_w;
    dyn_read_energy = total.Component.dyn_energy;
    area = total.Component.area;
  }

let characterize t kind ~vths ~toxs =
  Array.concat
    (Array.to_list
       (Array.map
          (fun vth ->
            Array.map
              (fun tox ->
                let k = Component.knob ~vth ~tox in
                (k, evaluate_component t kind k))
              toxs)
          vths))

(* ------------------------------------------------------------------ *)

let make_with_org tech config org reference = { tech; config; org; reference }

let best_org ?(reference = default_reference) tech config =
  let candidates = Org.candidates config in
  let scored =
    List.map
      (fun org ->
        let m = make_with_org tech config org reference in
        let r = evaluate m (Component.uniform reference) in
        (org, r.access_time, r.area))
      candidates
  in
  let min_delay =
    List.fold_left (fun acc (_, d, _) -> Float.min acc d) Float.max_float scored
  in
  let min_area =
    List.fold_left (fun acc (_, _, a) -> Float.min acc a) Float.max_float scored
  in
  let best =
    List.fold_left
      (fun acc (org, d, a) ->
        let score = d /. min_delay *. ((a /. min_area) ** 0.5) in
        match acc with
        | Some (_, s) when s <= score -> acc
        | _ -> Some (org, score))
      None scored
  in
  match best with
  | Some (org, _) -> org
  | None -> Org.make ~ndwl:1 ~ndbl:1

let make ?(reference = default_reference) ?org tech config =
  Tech.check_knobs tech ~vth:reference.Component.vth ~tox:reference.Component.tox;
  let org =
    match org with Some o -> o | None -> best_org ~reference tech config
  in
  make_with_org tech config org reference
