(** The paper's four cache circuit components and their evaluation
    summaries. *)

type kind =
  | Array_sense    (** memory-cell array + sense amplifiers *)
  | Decoder        (** predecoders, row gates, wordline drivers *)
  | Addr_drivers   (** address distribution: repeated wires + drivers *)
  | Data_drivers   (** data output distribution *)

val all_kinds : kind list
(** In the paper's order: array, decoder, address drivers, data
    drivers. *)

val kind_name : kind -> string
val kind_of_name : string -> kind option
val kind_index : kind -> int
(** 0..3, in [all_kinds] order. *)

type summary = {
  delay : float;       (** contribution to the access time [s] *)
  leak_w : float;      (** total leakage power [W] *)
  dyn_energy : float;  (** dynamic energy per access [J] *)
  area : float;        (** layout area [m²] *)
}

val zero_summary : summary

val add_summary : summary -> summary -> summary
(** Component-wise sum (delays add because the access path is serial —
    the paper's model). *)

val pp_summary : Format.formatter -> summary -> unit

type knob = {
  vth : float;  (** [V] *)
  tox : float;  (** [m] *)
}

val knob : vth:float -> tox:float -> knob

val pp_knob : Format.formatter -> knob -> unit
(** e.g. ["(0.30V, 12.0A)"]. *)

type assignment = {
  array : knob;
  decoder : knob;
  addr : knob;
  data : knob;
}

val uniform : knob -> assignment
(** Scheme III: every component gets the same pair. *)

val split : cell:knob -> periphery:knob -> assignment
(** Scheme II: the array gets [cell]; decoder and both driver groups get
    [periphery]. *)

val get : assignment -> kind -> knob
val set : assignment -> kind -> knob -> assignment

val pp_assignment : Format.formatter -> assignment -> unit
