(** Cache configuration: the architectural parameters of one cache.

    All size-like parameters must be powers of two; the smart
    constructor enforces the invariants so downstream geometry code can
    assume them. *)

type t = private {
  size_bytes : int;    (** total data capacity *)
  assoc : int;         (** set associativity (ways) *)
  block_bytes : int;   (** line size *)
  output_bits : int;   (** bits delivered per access (read width) *)
  addr_bits : int;     (** physical address width *)
}

val make :
  ?output_bits:int ->
  ?addr_bits:int ->
  size_bytes:int ->
  assoc:int ->
  block_bytes:int ->
  unit ->
  t
(** [make ~size_bytes ~assoc ~block_bytes ()] validates and builds a
    configuration.  Defaults: [output_bits] = 64, [addr_bits] = 40.

    Raises [Invalid_argument] when any of: sizes are not powers of two,
    [assoc < 1], [block_bytes < 8], [size_bytes < assoc · block_bytes],
    [output_bits] not a multiple of 8 or larger than the block. *)

val sets : t -> int
(** Number of sets = size / (assoc · block). *)

val index_bits : t -> int
(** log2 (sets). *)

val offset_bits : t -> int
(** log2 (block_bytes). *)

val tag_bits : t -> int
(** addr_bits − index − offset. *)

val data_cells : t -> int
(** 8 · size_bytes. *)

val tag_cells : t -> int
(** tag_bits · assoc · sets (+ valid/dirty/LRU state, 3 bits per line). *)

val total_cells : t -> int
(** Data + tag cells — the replication count for array leakage. *)

val row_cells : t -> int
(** Cells on one physical wordline when one set occupies one row:
    8 · block · assoc + tag overhead per set. *)

val is_power_of_two : int -> bool
(** Exposed for tests. *)

val pp : Format.formatter -> t -> unit
(** e.g. ["16KB/4way/64B"]. *)

val describe : t -> string
