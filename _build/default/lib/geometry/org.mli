(** Physical organisation of a cache array: subarray partitioning.

    Following the CACTI tradition, the logical array of [sets] rows ×
    [row_cells] columns is cut into [ndbl] row groups and [ndwl] column
    groups, producing [ndbl·ndwl] subarrays tiled in a near-square grid.
    Partitioning trades decoder depth and bitline/wordline length
    against subarray count (sense amps, repeated routing). *)

type t = private {
  ndwl : int;  (** wordline (column) divisions; power of two *)
  ndbl : int;  (** bitline (row) divisions; power of two *)
}

val make : ndwl:int -> ndbl:int -> t
(** Validates both divisions are positive powers of two. *)

val rows_sub : Config.t -> t -> int
(** Rows per subarray = sets / ndbl (at least 1). *)

val cols_sub : Config.t -> t -> float
(** Columns per subarray = row cells / ndwl. *)

val n_subarrays : t -> int

val grid : t -> int * int
(** [(grid_x, grid_y)] — near-square power-of-two tiling of the
    subarrays used for floorplan dimensions. *)

val candidates : Config.t -> t list
(** All partitionings with 64 ≤ rows/subarray ≤ 1024,
    128 ≤ columns/subarray ≤ 2048 and at most 64 subarrays (bounds
    relaxed for caches too small to satisfy them).  Never empty. *)

val pp : Format.formatter -> t -> unit
