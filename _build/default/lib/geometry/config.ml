type t = {
  size_bytes : int;
  assoc : int;
  block_bytes : int;
  output_bits : int;
  addr_bits : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  assert (is_power_of_two n);
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let make ?(output_bits = 64) ?(addr_bits = 40) ~size_bytes ~assoc ~block_bytes () =
  if not (is_power_of_two size_bytes) then
    invalid_arg "Config.make: size_bytes not a power of two";
  if not (is_power_of_two assoc) then invalid_arg "Config.make: assoc not a power of two";
  if not (is_power_of_two block_bytes) then
    invalid_arg "Config.make: block_bytes not a power of two";
  if assoc < 1 then invalid_arg "Config.make: assoc < 1";
  if block_bytes < 8 then invalid_arg "Config.make: block_bytes < 8";
  if size_bytes < assoc * block_bytes then
    invalid_arg "Config.make: size smaller than one set";
  if output_bits mod 8 <> 0 then invalid_arg "Config.make: output_bits not byte-aligned";
  if output_bits > 8 * block_bytes then invalid_arg "Config.make: output wider than block";
  if addr_bits < 20 || addr_bits > 64 then invalid_arg "Config.make: addr_bits out of range";
  { size_bytes; assoc; block_bytes; output_bits; addr_bits }

let sets t = t.size_bytes / (t.assoc * t.block_bytes)
let index_bits t = log2_exact (sets t)
let offset_bits t = log2_exact t.block_bytes
let tag_bits t = t.addr_bits - index_bits t - offset_bits t
let data_cells t = 8 * t.size_bytes

(* +3 state bits (valid, dirty, replacement) per line *)
let tag_cells t = (tag_bits t + 3) * t.assoc * sets t
let total_cells t = data_cells t + tag_cells t
let row_cells t = ((8 * t.block_bytes) + tag_bits t + 3) * t.assoc

let pp fmt t =
  let size =
    if t.size_bytes >= 1 lsl 20 then Printf.sprintf "%dMB" (t.size_bytes lsr 20)
    else Printf.sprintf "%dKB" (t.size_bytes lsr 10)
  in
  Format.fprintf fmt "%s/%dway/%dB" size t.assoc t.block_bytes

let describe t = Format.asprintf "%a" pp t
