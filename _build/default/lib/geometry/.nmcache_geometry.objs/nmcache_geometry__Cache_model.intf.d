lib/geometry/cache_model.mli: Component Config Nmcache_device Org
