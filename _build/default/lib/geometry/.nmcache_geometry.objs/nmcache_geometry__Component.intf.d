lib/geometry/component.mli: Format
