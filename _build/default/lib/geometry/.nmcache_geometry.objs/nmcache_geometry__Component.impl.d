lib/geometry/component.ml: Format Nmcache_physics String
