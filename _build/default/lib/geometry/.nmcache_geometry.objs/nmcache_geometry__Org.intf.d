lib/geometry/org.mli: Config Format
