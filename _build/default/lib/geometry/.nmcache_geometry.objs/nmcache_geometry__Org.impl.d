lib/geometry/org.ml: Config Format List
