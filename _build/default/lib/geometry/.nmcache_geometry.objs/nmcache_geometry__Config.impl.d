lib/geometry/config.ml: Format Printf
