lib/geometry/cache_model.ml: Array Component Config Float List Nmcache_circuit Nmcache_device Nmcache_physics Org
