lib/geometry/config.mli: Format
