(** Access counters for one cache level. *)

type t = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable read_accesses : int;
  mutable write_accesses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable cold_misses : int;  (** misses to never-before-seen blocks *)
}

val create : unit -> t
val reset : t -> unit

val miss_rate : t -> float
(** misses / accesses; 0 when there were no accesses. *)

val hit_rate : t -> float

val record : t -> hit:bool -> write:bool -> unit
(** Bump the access/hit-or-miss/read-or-write counters. *)

val pp : Format.formatter -> t -> unit
