type t = {
  hierarchy : Hierarchy.t;
  degree : int;
  block : int;
  mutable issued : int;
  mutable useful : int;
  pending : (int, unit) Hashtbl.t; (* prefetched blocks not yet demanded *)
}

type outcome = {
  l1_hit : bool;
  l2_hit : bool;
  prefetches_issued : int;
}

let create ?(degree = 1) ~l1 ~l2 () =
  if degree < 0 then invalid_arg "Prefetch.create: degree < 0";
  {
    hierarchy = Hierarchy.create ~l1 ~l2;
    degree;
    block = Cache.block_bytes l1;
    issued = 0;
    useful = 0;
    pending = Hashtbl.create 1024;
  }

let hierarchy t = t.hierarchy
let prefetches t = t.issued
let useful_prefetches t = t.useful
let accuracy t = if t.issued = 0 then 0.0 else float_of_int t.useful /. float_of_int t.issued

let access t addr ~write =
  let block_no = addr / t.block in
  (* credit a pending prefetch if this demand hits one *)
  if Hashtbl.mem t.pending block_no then begin
    Hashtbl.remove t.pending block_no;
    let l2 = Hierarchy.l2 t.hierarchy in
    if Cache.contains l2 addr then t.useful <- t.useful + 1
  end;
  let o = Hierarchy.access t.hierarchy addr ~write in
  let issued = ref 0 in
  if not o.Hierarchy.l1_hit then begin
    (* demand L1 miss: stream the next [degree] lines into L2 *)
    let l2 = Hierarchy.l2 t.hierarchy in
    for k = 1 to t.degree do
      let next = (block_no + k) * t.block in
      if not (Cache.contains l2 next) then begin
        ignore (Cache.access l2 next ~write:false);
        t.issued <- t.issued + 1;
        incr issued;
        Hashtbl.replace t.pending (block_no + k) ()
      end
    done
  end;
  { l1_hit = o.Hierarchy.l1_hit; l2_hit = o.Hierarchy.l2_hit; prefetches_issued = !issued }
