type t = {
  l1 : Cache.t;
  l2 : Cache.t;
  mutable memory_reads : int;
  mutable memory_writes : int;
}

type outcome = {
  l1_hit : bool;
  l2_hit : bool;
  memory_access : bool;
}

let create ~l1 ~l2 =
  if Cache.block_bytes l1 <> Cache.block_bytes l2 then
    invalid_arg "Hierarchy.create: L1/L2 block sizes differ";
  if Cache.size_bytes l2 < Cache.size_bytes l1 then
    invalid_arg "Hierarchy.create: L2 smaller than L1";
  { l1; l2; memory_reads = 0; memory_writes = 0 }

let access t addr ~write =
  let o1 = Cache.access t.l1 addr ~write in
  if o1.Cache.hit then { l1_hit = true; l2_hit = false; memory_access = false }
  else begin
    (* write back the dirty L1 victim into L2 *)
    (match o1.Cache.victim with
    | Some victim_block when o1.Cache.victim_dirty ->
      let victim_addr = Address.of_block victim_block ~block_bytes:(Cache.block_bytes t.l1) in
      let o_wb = Cache.access t.l2 victim_addr ~write:true in
      (match o_wb.Cache.victim with
      | Some _ when o_wb.Cache.victim_dirty -> t.memory_writes <- t.memory_writes + 1
      | Some _ | None -> ());
      if not o_wb.Cache.hit then
        (* allocating the write-back that missed L2 fetches the line *)
        t.memory_reads <- t.memory_reads + 1
    | Some _ | None -> ());
    (* demand fetch from L2 *)
    let o2 = Cache.access t.l2 addr ~write:false in
    (match o2.Cache.victim with
    | Some _ when o2.Cache.victim_dirty -> t.memory_writes <- t.memory_writes + 1
    | Some _ | None -> ());
    if o2.Cache.hit then { l1_hit = false; l2_hit = true; memory_access = false }
    else begin
      t.memory_reads <- t.memory_reads + 1;
      { l1_hit = false; l2_hit = false; memory_access = true }
    end
  end

let l1 t = t.l1
let l2 t = t.l2
let memory_reads t = t.memory_reads
let memory_writes t = t.memory_writes
let l1_miss_rate t = Stats.miss_rate (Cache.stats t.l1)
let l2_local_miss_rate t = Stats.miss_rate (Cache.stats t.l2)

let l2_global_miss_rate t =
  let s1 = Cache.stats t.l1 and s2 = Cache.stats t.l2 in
  if s1.Stats.accesses = 0 then 0.0
  else float_of_int s2.Stats.misses /. float_of_int s1.Stats.accesses
