(** Sequential (next-N-line) prefetching on top of a two-level
    hierarchy.

    On every L1 demand miss, the prefetcher issues the next [degree]
    blocks into L2 (prefetches never allocate into L1 and are not
    counted as demand accesses in the L2 statistics kept here).  This is
    the classic stream prefetcher the paper-era L2s shipped with; the
    extension experiments use it to test whether the L2-sizing
    conclusions survive prefetching. *)

type t

type outcome = {
  l1_hit : bool;
  l2_hit : bool;
  prefetches_issued : int;
}

val create : ?degree:int -> l1:Cache.t -> l2:Cache.t -> unit -> t
(** Wrap a hierarchy with a prefetcher of the given [degree] (default 1,
    i.e. next-line).  Raises [Invalid_argument] if [degree < 0] or the
    caches are incompatible (see {!Hierarchy.create}). *)

val access : t -> int -> write:bool -> outcome

val hierarchy : t -> Hierarchy.t
val prefetches : t -> int
(** Total prefetch fills issued. *)

val useful_prefetches : t -> int
(** Prefetched blocks that were later demanded while still resident. *)

val accuracy : t -> float
(** useful / issued (0 when none were issued). *)
