type t = int

let log2 n =
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Address.log2: not a power of two";
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 n

let block_of addr ~block_bytes = addr lsr log2 block_bytes
let set_of addr ~block_bytes ~sets = block_of addr ~block_bytes land (sets - 1)
let tag_of addr ~block_bytes ~sets = block_of addr ~block_bytes lsr log2 sets
let of_block b ~block_bytes = b lsl log2 block_bytes
