lib/cachesim/mattson.ml: Array Hashtbl List Option
