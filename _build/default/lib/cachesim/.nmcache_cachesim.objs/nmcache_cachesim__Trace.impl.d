lib/cachesim/trace.ml: Array Cache Format Hashtbl Hierarchy
