lib/cachesim/cache.mli: Replacement Stats
