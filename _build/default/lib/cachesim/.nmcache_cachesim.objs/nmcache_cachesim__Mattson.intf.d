lib/cachesim/mattson.mli:
