lib/cachesim/hierarchy.ml: Address Cache Stats
