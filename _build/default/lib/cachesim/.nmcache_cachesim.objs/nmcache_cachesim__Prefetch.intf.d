lib/cachesim/prefetch.mli: Cache Hierarchy
