lib/cachesim/address.mli:
