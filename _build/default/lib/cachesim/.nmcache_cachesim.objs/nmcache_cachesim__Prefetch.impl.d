lib/cachesim/prefetch.ml: Cache Hashtbl Hierarchy
