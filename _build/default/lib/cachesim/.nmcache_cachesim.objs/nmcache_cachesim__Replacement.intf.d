lib/cachesim/replacement.mli:
