lib/cachesim/address.ml:
