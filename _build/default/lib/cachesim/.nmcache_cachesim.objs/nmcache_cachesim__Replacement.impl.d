lib/cachesim/replacement.ml: String
