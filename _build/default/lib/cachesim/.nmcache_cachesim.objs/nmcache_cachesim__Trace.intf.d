lib/cachesim/trace.mli: Cache Format Hierarchy
