lib/cachesim/cache.ml: Address Array Bytes Hashtbl Int64 Nmcache_numerics Option Replacement Stats
