(** Two-level cache hierarchy over a main memory.

    Inclusive-style L1 + L2: every access probes L1; L1 misses probe
    L2; L2 misses go to memory.  Dirty L1 victims are written back into
    L2 (counted as an L2 write access); dirty L2 victims are written
    back to memory.  This is the architectural simulation the paper's
    Section 5 relies on for miss-rate statistics. *)

type t

type outcome = {
  l1_hit : bool;
  l2_hit : bool;        (** false when [l1_hit] (not probed) or L2 missed *)
  memory_access : bool; (** the access reached main memory *)
}

val create : l1:Cache.t -> l2:Cache.t -> t
(** Raises [Invalid_argument] if the L2 block size differs from L1's
    (refills would be ill-defined) or L2 is smaller than L1. *)

val access : t -> int -> write:bool -> outcome

val l1 : t -> Cache.t
val l2 : t -> Cache.t

val memory_reads : t -> int
(** Demand fetches that reached memory. *)

val memory_writes : t -> int
(** Write-backs that reached memory. *)

val l1_miss_rate : t -> float
(** Local L1 miss rate. *)

val l2_local_miss_rate : t -> float
(** L2 misses / L2 accesses. *)

val l2_global_miss_rate : t -> float
(** L2 misses / L1 accesses. *)
