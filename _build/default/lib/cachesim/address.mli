(** Address arithmetic for cache simulation.

    Addresses are byte addresses carried in OCaml [int]s (63-bit on
    64-bit platforms — ample for a 40-bit physical space). *)

type t = int

val block_of : t -> block_bytes:int -> int
(** Block number = address / block size (block size must be a power of
    two; division is a shift). *)

val set_of : t -> block_bytes:int -> sets:int -> int
(** Set index of the address. *)

val tag_of : t -> block_bytes:int -> sets:int -> int
(** Tag (block number with the index bits removed). *)

val log2 : int -> int
(** Exact log2 of a power of two.  Raises [Invalid_argument]
    otherwise. *)

val of_block : int -> block_bytes:int -> t
(** First byte address of a block number. *)
