(** Replacement policies.

    The policy type is shared by every cache instance; per-set state is
    managed inside {!Cache}.  LRU is the paper's (implicit) baseline;
    the alternatives exist for the policy-sensitivity extension. *)

type t =
  | Lru            (** least recently used *)
  | Fifo           (** round-robin eviction *)
  | Random of int  (** pseudo-random victim, seeded for reproducibility *)
  | Plru           (** tree pseudo-LRU (ways must be a power of two) *)

val name : t -> string
val of_name : ?seed:int -> string -> t option
(** ["lru"], ["fifo"], ["random"], ["plru"]; [seed] (default 17) feeds
    [Random]. *)

val all_names : string list
