type t =
  | Lru
  | Fifo
  | Random of int
  | Plru

let name = function
  | Lru -> "lru"
  | Fifo -> "fifo"
  | Random _ -> "random"
  | Plru -> "plru"

let of_name ?(seed = 17) s =
  match String.lowercase_ascii s with
  | "lru" -> Some Lru
  | "fifo" -> Some Fifo
  | "random" -> Some (Random seed)
  | "plru" -> Some Plru
  | _ -> None

let all_names = [ "lru"; "fifo"; "random"; "plru" ]
