(* Fenwick (binary indexed) tree over timestamps.  tree.(i) covers a
   range ending at i (1-based).  A '1' sits at the last-access time of
   each resident block; suffix_count(time) counts blocks accessed
   strictly after [time], which is exactly the reuse distance. *)

type t = {
  block_bytes : int;
  mutable tree : int array;     (* 1-based Fenwick array *)
  mutable capacity : int;
  mutable time : int;           (* next timestamp, 0-based *)
  mutable live : int;           (* markers in the tree *)
  last_access : (int, int) Hashtbl.t;  (* block -> timestamp *)
  dist_hist : (int, int) Hashtbl.t;    (* distance -> count *)
  mutable accesses : int;              (* measured accesses *)
  mutable measuring : bool;
  mutable cold_measured : int;
}

let create ?(initial_capacity = 1 lsl 16) ~block_bytes () =
  if block_bytes < 8 || block_bytes land (block_bytes - 1) <> 0 then
    invalid_arg "Mattson.create: bad block_bytes";
  {
    block_bytes;
    tree = Array.make (initial_capacity + 1) 0;
    capacity = initial_capacity;
    time = 0;
    live = 0;
    last_access = Hashtbl.create 4096;
    dist_hist = Hashtbl.create 256;
    accesses = 0;
    measuring = true;
    cold_measured = 0;
  }

let fen_add t idx delta =
  (* idx is a 0-based timestamp *)
  let i = ref (idx + 1) in
  while !i <= t.capacity do
    t.tree.(!i) <- t.tree.(!i) + delta;
    i := !i + (!i land - !i)
  done

let fen_prefix t idx =
  (* count of markers at timestamps <= idx (0-based) *)
  let acc = ref 0 in
  let i = ref (idx + 1) in
  while !i > 0 do
    acc := !acc + t.tree.(!i);
    i := !i - (!i land - !i)
  done;
  !acc

(* Renumber timestamps 0..live-1 preserving order, rebuilding the tree.
   Triggered when the timestamp space fills; amortised O(B log B). *)
let compact t =
  let entries =
    Hashtbl.fold (fun block time acc -> (time, block) :: acc) t.last_access []
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  let n = List.length sorted in
  let new_capacity = max (1 lsl 16) (4 * n) in
  t.tree <- Array.make (new_capacity + 1) 0;
  t.capacity <- new_capacity;
  t.time <- 0;
  t.live <- 0;
  Hashtbl.reset t.last_access;
  List.iter
    (fun (_, block) ->
      Hashtbl.replace t.last_access block t.time;
      fen_add t t.time 1;
      t.live <- t.live + 1;
      t.time <- t.time + 1)
    sorted

let bump_hist t dist =
  let cur = Option.value (Hashtbl.find_opt t.dist_hist dist) ~default:0 in
  Hashtbl.replace t.dist_hist dist (cur + 1)

let set_measuring t flag = t.measuring <- flag

let access t addr =
  if t.time >= t.capacity then compact t;
  let block = addr / t.block_bytes in
  if t.measuring then t.accesses <- t.accesses + 1;
  (match Hashtbl.find_opt t.last_access block with
  | Some prev ->
    (* distance = markers strictly after prev = live - prefix(prev) *)
    if t.measuring then begin
      let dist = t.live - fen_prefix t prev in
      bump_hist t dist
    end;
    fen_add t prev (-1);
    t.live <- t.live - 1
  | None -> if t.measuring then t.cold_measured <- t.cold_measured + 1);
  Hashtbl.replace t.last_access block t.time;
  fen_add t t.time 1;
  t.live <- t.live + 1;
  t.time <- t.time + 1

let accesses t = t.accesses
let distinct_blocks t = Hashtbl.length t.last_access
let cold_misses t = t.cold_measured

let histogram t =
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) t.dist_hist []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let misses_at t ~capacity_blocks =
  if capacity_blocks <= 0 then invalid_arg "Mattson.misses_at: capacity <= 0";
  let warm_misses =
    Hashtbl.fold
      (fun d c acc -> if d >= capacity_blocks then acc + c else acc)
      t.dist_hist 0
  in
  t.cold_measured + warm_misses

let miss_rate_at t ~capacity_blocks =
  if t.accesses = 0 then 0.0
  else float_of_int (misses_at t ~capacity_blocks) /. float_of_int t.accesses

let miss_ratio_curve t ~capacities =
  Array.map (fun c -> miss_rate_at t ~capacity_blocks:c) capacities
