(** The (#Tox, #Vth) tuple problem (Figure 2).

    A process may only offer a limited number of distinct threshold
    voltages and oxide thicknesses.  For a given budget (n_vth values,
    n_tox values), the designer first chooses {e which} values to buy
    from the design grid, then assigns each knob group one of the
    n_vth × n_tox pairs.  This module enumerates both levels exhaustively
    and returns the Pareto frontier of (AMAT, energy) over all choices —
    one frontier per budget, exactly the curves of the paper's Figure 2.

    The evaluation callback abstracts the system model: it receives one
    grid-knob index per group and returns the two objectives, so the
    module stays independent of the energy layer. *)

type spec = {
  n_vth : int;
  n_tox : int;
}

val spec_name : spec -> string
(** e.g. ["2 Tox + 3 Vth"]. *)

type point = {
  amat : float;
  energy : float;
  vth_set : float array;    (** the chosen threshold values *)
  tox_set : float array;    (** the chosen oxide values [m] *)
  group_knobs : Nmcache_geometry.Component.knob array;  (** per group *)
}

val pareto_curve :
  grid:Grid.t ->
  n_groups:int ->
  eval:(int array -> float * float) ->
  spec:spec ->
  point list
(** [pareto_curve ~grid ~n_groups ~eval ~spec] — [eval idx] receives
    [idx.(g)] = the flat grid index (vth-major, as {!Grid.knobs}) of
    group [g]'s pair and must return [(amat, energy)].  The result is
    the non-dominated (amat, energy) set, ascending in amat.

    Raises [Invalid_argument] when the spec exceeds the grid, or
    [n_groups] is not in [1, 8]. *)

val curves :
  grid:Grid.t ->
  n_groups:int ->
  eval:(int array -> float * float) ->
  specs:spec list ->
  (spec * point list) list
(** {!pareto_curve} for each spec. *)

val figure2_specs : spec list
(** The five budgets of Figure 2: 2T+2V, 2T+3V, 3T+2V, 2T+1V, 1T+2V. *)
