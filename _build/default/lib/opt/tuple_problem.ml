module Component = Nmcache_geometry.Component

type spec = {
  n_vth : int;
  n_tox : int;
}

let spec_name s = Printf.sprintf "%d Tox + %d Vth" s.n_tox s.n_vth

type point = {
  amat : float;
  energy : float;
  vth_set : float array;
  tox_set : float array;
  group_knobs : Component.knob array;
}

let figure2_specs =
  [
    { n_vth = 2; n_tox = 2 };
    { n_vth = 3; n_tox = 2 };
    { n_vth = 2; n_tox = 3 };
    { n_vth = 1; n_tox = 2 };
    { n_vth = 2; n_tox = 1 };
  ]

(* Call [f] on every k-subset of 0..n-1; the index buffer is reused. *)
let combinations n k f =
  let buf = Array.make k 0 in
  let rec go pos start =
    if pos = k then f buf
    else
      for v = start to n - (k - pos) do
        buf.(pos) <- v;
        go (pos + 1) (v + 1)
      done
  in
  if k >= 1 && k <= n then go 0 0

(* Binned frontier accumulator: dynamic amat range discovered from the
   uniform sweep (delay extremes are at uniform extreme assignments),
   best energy per bin, payload captured on improvement. *)
type cell = {
  c_amat : float;
  c_energy : float;
  c_assignment : int array;  (* flat grid indices per group *)
  c_vset : int array;
  c_xset : int array;
}

let n_bins = 1024

let pareto_curve ~grid ~n_groups ~eval ~spec =
  if n_groups < 1 || n_groups > 8 then invalid_arg "Tuple_problem: n_groups out of [1,8]";
  let n_v = Array.length grid.Grid.vths and n_t = Array.length grid.Grid.toxs in
  if spec.n_vth < 1 || spec.n_vth > n_v then invalid_arg "Tuple_problem: n_vth out of range";
  if spec.n_tox < 1 || spec.n_tox > n_t then invalid_arg "Tuple_problem: n_tox out of range";
  (* amat range estimate from the uniform sweep *)
  let amat_min = ref Float.infinity and amat_max = ref Float.neg_infinity in
  let buf = Array.make n_groups 0 in
  for i = 0 to (n_v * n_t) - 1 do
    Array.fill buf 0 n_groups i;
    let amat, _ = eval buf in
    if amat < !amat_min then amat_min := amat;
    if amat > !amat_max then amat_max := amat
  done;
  let lo = !amat_min *. 0.999 and hi = !amat_max *. 1.001 in
  let scale = float_of_int n_bins /. (hi -. lo) in
  let bins = Array.make n_bins None in
  let record amat energy assignment vset xset =
    let b = int_of_float ((amat -. lo) *. scale) in
    let b = max 0 (min (n_bins - 1) b) in
    let better =
      match bins.(b) with None -> true | Some c -> energy < c.c_energy
    in
    if better then
      bins.(b) <-
        Some
          {
            c_amat = amat;
            c_energy = energy;
            c_assignment = Array.copy assignment;
            c_vset = Array.copy vset;
            c_xset = Array.copy xset;
          }
  in
  (* enumerate value subsets, then group assignments over the subset *)
  let n_pairs = spec.n_vth * spec.n_tox in
  let allowed = Array.make n_pairs 0 in
  let assignment = Array.make n_groups 0 in
  let choice = Array.make n_groups 0 in
  combinations n_v spec.n_vth (fun vset ->
      combinations n_t spec.n_tox (fun xset ->
          (* flat grid index = vth_index * n_t + tox_index *)
          let p = ref 0 in
          Array.iter
            (fun v ->
              Array.iter
                (fun x ->
                  allowed.(!p) <- (v * n_t) + x;
                  incr p)
                xset)
            vset;
          (* odometer over n_pairs^n_groups *)
          Array.fill choice 0 n_groups 0;
          let continue_ = ref true in
          while !continue_ do
            for g = 0 to n_groups - 1 do
              assignment.(g) <- allowed.(choice.(g))
            done;
            let amat, energy = eval assignment in
            record amat energy assignment vset xset;
            (* increment odometer *)
            let rec bump g =
              if g >= n_groups then continue_ := false
              else begin
                choice.(g) <- choice.(g) + 1;
                if choice.(g) >= n_pairs then begin
                  choice.(g) <- 0;
                  bump (g + 1)
                end
              end
            in
            bump 0
          done))
    [@warning "-26"];
  (* sweep bins ascending, keep strictly improving energy *)
  let knob_of_flat i =
    Component.knob ~vth:grid.Grid.vths.(i / n_t) ~tox:grid.Grid.toxs.(i mod n_t)
  in
  let points = ref [] in
  let best = ref Float.infinity in
  Array.iter
    (fun cell ->
      match cell with
      | None -> ()
      | Some c ->
        if c.c_energy < !best then begin
          best := c.c_energy;
          points :=
            {
              amat = c.c_amat;
              energy = c.c_energy;
              vth_set = Array.map (fun v -> grid.Grid.vths.(v)) c.c_vset;
              tox_set = Array.map (fun x -> grid.Grid.toxs.(x)) c.c_xset;
              group_knobs = Array.map knob_of_flat c.c_assignment;
            }
            :: !points
        end)
    bins;
  List.rev !points

let curves ~grid ~n_groups ~eval ~specs =
  List.map (fun spec -> (spec, pareto_curve ~grid ~n_groups ~eval ~spec)) specs
