lib/opt/tuple_problem.ml: Array Float Grid List Nmcache_geometry Printf
