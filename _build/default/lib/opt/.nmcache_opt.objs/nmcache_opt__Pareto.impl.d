lib/opt/pareto.ml: Float List
