lib/opt/grid.mli: Nmcache_device Nmcache_geometry
