lib/opt/grid.ml: Array Float Nmcache_device Nmcache_geometry Nmcache_physics
