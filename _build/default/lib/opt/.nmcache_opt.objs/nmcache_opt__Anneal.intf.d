lib/opt/anneal.mli: Grid Nmcache_fit Nmcache_geometry
