lib/opt/scheme.ml: Array Float Grid List Nmcache_fit Nmcache_geometry Option String
