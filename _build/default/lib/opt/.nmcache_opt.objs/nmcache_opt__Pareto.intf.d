lib/opt/pareto.mli:
