lib/opt/scheme.mli: Grid Nmcache_fit Nmcache_geometry
