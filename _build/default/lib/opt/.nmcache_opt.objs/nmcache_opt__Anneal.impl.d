lib/opt/anneal.ml: Array Float Grid List Nmcache_fit Nmcache_geometry Nmcache_numerics
