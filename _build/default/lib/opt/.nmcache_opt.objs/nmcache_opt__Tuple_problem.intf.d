lib/opt/tuple_problem.mli: Grid Nmcache_geometry
