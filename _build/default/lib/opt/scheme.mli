(** The paper's three Vth/Tox assignment schemes (Section 4) and the
    constrained leakage minimisation under each.

    - Scheme I:   an independent (Vth, Tox) pair per component;
    - Scheme II:  one pair for the cell array, one shared by the three
                  peripheral components;
    - Scheme III: a single pair for the whole cache.

    The optimisation problem is:  minimise Σᵢ Pᵢ(Vthᵢ, Toxᵢ) subject to
    Σᵢ Tᵢ(Vthᵢ, Toxᵢ) ≤ delay budget, knobs drawn from the discrete
    grid.  Schemes II/III are solved exhaustively; Scheme I (13⁴·9⁴
    raw combinations) by an exact dynamic program over discretised
    component delays. *)

type t = Independent | Split | Uniform

val all : t list
val name : t -> string
(** "I" / "II" / "III". *)

val long_name : t -> string
val of_name : string -> t option

type result = {
  scheme : t;
  assignment : Nmcache_geometry.Component.assignment;
  leak_w : float;       (** fitted-model leakage at the optimum [W] *)
  access_time : float;  (** fitted-model delay at the optimum [s] *)
}

val minimize_leakage :
  Nmcache_fit.Fitted_cache.t ->
  grid:Grid.t ->
  scheme:t ->
  delay_budget:float ->
  result option
(** Minimum-leakage assignment meeting the budget, or [None] when even
    the fastest assignment misses it.  Raises [Invalid_argument] on a
    non-positive budget. *)

val fastest_access_time : Nmcache_fit.Fitted_cache.t -> grid:Grid.t -> float
(** Access time of the all-fastest-knob assignment — the lower limit of
    feasible delay budgets. *)

val slowest_access_time : Nmcache_fit.Fitted_cache.t -> grid:Grid.t -> float
(** Access time of the all-slowest-knob assignment. *)
