(** Simulated annealing over per-component knob assignments.

    A stochastic cross-check for the exact dynamic program of
    {!Scheme.minimize_leakage} (Scheme I), and the fallback optimiser
    for objective shapes the DP cannot decompose (couplings across
    components, non-additive penalties).  The constraint is folded in as
    a smooth penalty: states over the delay budget pay
    [penalty_weight · (excess / budget)] of extra (relative) cost. *)

type params = {
  iterations : int;      (** total proposal count (default 20000) *)
  t_start : float;       (** initial temperature, relative-cost units (default 1.0) *)
  t_end : float;         (** final temperature (default 1e-4) *)
  penalty_weight : float; (** relative cost per unit of budget excess (default 10) *)
  seed : int64;
}

val default_params : params

type result = {
  assignment : Nmcache_geometry.Component.assignment;
  leak_w : float;
  access_time : float;
  feasible : bool;     (** the best state met the budget *)
  evaluations : int;
}

val minimize_leakage :
  ?params:params ->
  Nmcache_fit.Fitted_cache.t ->
  grid:Grid.t ->
  delay_budget:float ->
  unit ->
  result
(** Anneal a Scheme-I assignment (independent pair per component)
    toward minimum leakage under the budget.  Deterministic for a given
    [params.seed].  Raises [Invalid_argument] on a non-positive
    budget. *)
