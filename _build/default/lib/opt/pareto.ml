let dominates (ax, ay) (bx, by) =
  ax <= bx && ay <= by && (ax < bx || ay < by)

(* Sort by (x, y); sweep keeping items whose y strictly improves. *)
let front ~key items =
  let sorted =
    List.sort
      (fun a b ->
        let ax, ay = key a and bx, by = key b in
        match Float.compare ax bx with 0 -> Float.compare ay by | c -> c)
      items
  in
  let rec sweep best_y acc = function
    | [] -> List.rev acc
    | item :: rest ->
      let _, y = key item in
      if y < best_y then sweep y (item :: acc) rest else sweep best_y acc rest
  in
  sweep Float.infinity [] sorted

let merge ~key fronts = front ~key (List.concat fronts)

let is_front ~key items =
  let rec check = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
      let ax, ay = key a and bx, by = key b in
      ax < bx && ay > by && check rest
  in
  check items
  && List.for_all
       (fun a -> not (List.exists (fun b -> a != b && dominates (key b) (key a)) items))
       items
