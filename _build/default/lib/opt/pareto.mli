(** Pareto frontiers for bi-objective minimisation. *)

val front : key:('a -> float * float) -> 'a list -> 'a list
(** [front ~key items] keeps the non-dominated items when both
    coordinates are minimised, sorted by ascending first coordinate
    (ties broken by the second).  An item is dominated when another is
    ≤ in both coordinates and < in at least one.  Duplicate-coordinate
    items keep a single representative. *)

val dominates : float * float -> float * float -> bool
(** [dominates a b] — a is at least as good in both and strictly better
    in one. *)

val merge : key:('a -> float * float) -> 'a list list -> 'a list
(** Front of the union of several fronts. *)

val is_front : key:('a -> float * float) -> 'a list -> bool
(** Whether the list is sorted by x with strictly decreasing y and no
    dominated element — the invariant property tests check. *)
