module Matrix = Nmcache_numerics.Matrix
module Linsolve = Nmcache_numerics.Linsolve

type t = {
  nodes : int;
  mutable conductances : (int * int option * float) list; (* a, b, siemens *)
  mutable capacitances : (int * float) list;
  mutable sources : (int * (float -> float)) list;        (* current into node *)
}

let create ~nodes =
  if nodes < 1 then invalid_arg "Transient.create: nodes < 1";
  { nodes; conductances = []; capacitances = []; sources = [] }

let check_node t name a =
  if a < 0 || a >= t.nodes then invalid_arg ("Transient: bad node for " ^ name)

let add_resistor t ~a ~b ~ohms =
  if ohms <= 0.0 then invalid_arg "Transient.add_resistor: ohms <= 0";
  check_node t "resistor" a;
  (match b with Some b -> check_node t "resistor" b | None -> ());
  t.conductances <- (a, b, 1.0 /. ohms) :: t.conductances

let add_capacitor t ~a ~farads =
  if farads <= 0.0 then invalid_arg "Transient.add_capacitor: farads <= 0";
  check_node t "capacitor" a;
  t.capacitances <- (a, farads) :: t.capacitances

let add_current_source t ~a ~amps =
  check_node t "current source" a;
  t.sources <- (a, amps) :: t.sources

let add_voltage_drive t ~a ~volts ~r_source =
  if r_source <= 0.0 then invalid_arg "Transient.add_voltage_drive: r_source <= 0";
  check_node t "voltage drive" a;
  let g = 1.0 /. r_source in
  t.conductances <- (a, None, g) :: t.conductances;
  t.sources <- (a, fun time -> g *. volts time) :: t.sources

type waveform = {
  dt : float;
  samples : float array array;
}

let build_matrices t =
  let g = Matrix.create ~rows:t.nodes ~cols:t.nodes in
  List.iter
    (fun (a, b, s) ->
      Matrix.set g a a (Matrix.get g a a +. s);
      match b with
      | None -> ()
      | Some b ->
        Matrix.set g b b (Matrix.get g b b +. s);
        Matrix.set g a b (Matrix.get g a b -. s);
        Matrix.set g b a (Matrix.get g b a -. s))
    t.conductances;
  let c = Matrix.create ~rows:t.nodes ~cols:t.nodes in
  List.iter (fun (a, f) -> Matrix.set c a a (Matrix.get c a a +. f)) t.capacitances;
  (g, c)

let current_vector t time =
  let i = Array.make t.nodes 0.0 in
  List.iter (fun (a, f) -> i.(a) <- i.(a) +. f time) t.sources;
  i

let simulate t ~v0 ~dt ~steps =
  if Array.length v0 <> t.nodes then invalid_arg "Transient.simulate: v0 size mismatch";
  if dt <= 0.0 then invalid_arg "Transient.simulate: dt <= 0";
  if steps < 1 then invalid_arg "Transient.simulate: steps < 1";
  let g, c = build_matrices t in
  (* trapezoidal: (C/dt + G/2) v' = (C/dt - G/2) v + (i + i')/2 *)
  let lhs = Matrix.add (Matrix.scale (1.0 /. dt) c) (Matrix.scale 0.5 g) in
  let rhs_m = Matrix.add (Matrix.scale (1.0 /. dt) c) (Matrix.scale (-0.5) g) in
  let lhs_inv = Linsolve.invert lhs in
  let samples = Array.make (steps + 1) [||] in
  samples.(0) <- Array.copy v0;
  let v = ref (Array.copy v0) in
  for step = 1 to steps do
    let t_prev = float_of_int (step - 1) *. dt in
    let t_next = float_of_int step *. dt in
    let i_prev = current_vector t t_prev in
    let i_next = current_vector t t_next in
    let rhs = Matrix.mul_vec rhs_m !v in
    Array.iteri (fun k r -> rhs.(k) <- r +. (0.5 *. (i_prev.(k) +. i_next.(k)))) rhs;
    let v' = Matrix.mul_vec lhs_inv rhs in
    samples.(step) <- v';
    v := v'
  done;
  { dt; samples }

let node_voltage w ~node ~step = w.samples.(step).(node)

let crossing_time w ~node ~threshold ~rising =
  let n = Array.length w.samples in
  let crossed prev cur =
    if rising then prev < threshold && cur >= threshold
    else prev > threshold && cur <= threshold
  in
  let rec scan step =
    if step >= n then None
    else begin
      let prev = w.samples.(step - 1).(node) and cur = w.samples.(step).(node) in
      if crossed prev cur then begin
        let frac = if cur = prev then 0.0 else (threshold -. prev) /. (cur -. prev) in
        Some ((float_of_int (step - 1) +. frac) *. w.dt)
      end
      else scan (step + 1)
    end
  in
  scan 1
