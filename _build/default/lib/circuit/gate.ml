module Tech = Nmcache_device.Tech
module Mosfet = Nmcache_device.Mosfet
module Leakage = Nmcache_device.Leakage
module Drive = Nmcache_device.Drive

type t = {
  r_drive : float;
  c_in : float;
  c_self : float;
  leak_w : float;
  area : float;
  logical_effort : float;
  n_inputs : int;
}

let stack_factor = 0.22

let unit_nmos_width tech ~tox = 2.0 *. Tech.l_drawn tech ~tox

(* Layout area of a transistor pair column: width sum x (7.5 x L) pitch. *)
let pair_area tech ~tox ~w_n ~w_p =
  let pitch = 7.5 *. Tech.l_drawn tech ~tox in
  (w_n +. w_p) *. pitch

let inverter tech ~vth ~tox ~size =
  if size <= 0.0 then invalid_arg "Gate.inverter: size <= 0";
  let w_n = size *. unit_nmos_width tech ~tox in
  let w_p = 2.0 *. w_n in
  let n = Mosfet.nmos tech ~w:w_n ~vth ~tox in
  let p = Mosfet.pmos tech ~w:w_p ~vth ~tox in
  let r_drive =
    0.5 *. (Drive.effective_resistance tech n +. Drive.effective_resistance tech p)
  in
  let c_in = Drive.gate_capacitance tech n +. Drive.gate_capacitance tech p in
  let c_self = Drive.drain_capacitance tech n +. Drive.drain_capacitance tech p in
  (* Input-state average: in each state one device leaks subthreshold
     (drain at the rail) and the conducting device tunnels through its
     gate; the off device adds its residual off-state gate term. *)
  let vdd = tech.Tech.vdd in
  let state0 =
    (* input low: NMOS off, PMOS on *)
    (Leakage.subthreshold_off tech n *. vdd)
    +. (Leakage.gate_on tech p *. vdd)
    +. (Leakage.gate tech n ~vox:(vdd /. 3.0) *. vdd)
    +. (Leakage.junction tech n *. vdd)
  in
  let state1 =
    (Leakage.subthreshold_off tech p *. vdd)
    +. (Leakage.gate_on tech n *. vdd)
    +. (Leakage.gate tech p ~vox:(vdd /. 3.0) *. vdd)
    +. (Leakage.junction tech p *. vdd)
  in
  {
    r_drive;
    c_in;
    c_self;
    leak_w = 0.5 *. (state0 +. state1);
    area = pair_area tech ~tox ~w_n ~w_p;
    logical_effort = 1.0;
    n_inputs = 1;
  }

(* Series-stacked topologies: stack of [k] devices is sized k-up so the
   worst-case pull matches the unit inverter; leakage of the stacked-off
   state is reduced by [stack_factor]. *)
let stacked_gate tech ~vth ~tox ~size ~inputs ~series_channel =
  if inputs < 2 then invalid_arg "Gate.stacked: inputs < 2";
  if size <= 0.0 then invalid_arg "Gate.stacked: size <= 0";
  let k = float_of_int inputs in
  let w_unit_n = size *. unit_nmos_width tech ~tox in
  let series_is_nmos = series_channel = Mosfet.Nmos in
  (* widths: series devices upsized by k; parallel devices at unit drive *)
  let w_n = if series_is_nmos then k *. w_unit_n else w_unit_n in
  let w_p = if series_is_nmos then 2.0 *. w_unit_n else k *. 2.0 *. w_unit_n in
  let n = Mosfet.nmos tech ~w:w_n ~vth ~tox in
  let p = Mosfet.pmos tech ~w:w_p ~vth ~tox in
  let r_series =
    if series_is_nmos then k *. Drive.effective_resistance tech n
    else k *. Drive.effective_resistance tech p
  in
  let r_parallel =
    if series_is_nmos then Drive.effective_resistance tech p
    else Drive.effective_resistance tech n
  in
  let r_drive = 0.5 *. (r_series +. r_parallel) in
  (* c_in per pin: one NMOS gate + one PMOS gate *)
  let c_in = Drive.gate_capacitance tech n +. Drive.gate_capacitance tech p in
  let c_self =
    (* all parallel drains + top series drain load the output *)
    let cd_n = Drive.drain_capacitance tech n in
    let cd_p = Drive.drain_capacitance tech p in
    if series_is_nmos then cd_n +. (k *. cd_p) else (k *. cd_n) +. cd_p
  in
  let vdd = tech.Tech.vdd in
  let sub_series =
    (* stacked-off state: reduced subthreshold *)
    stack_factor
    *. (if series_is_nmos then Leakage.subthreshold_off tech n
        else Leakage.subthreshold_off tech p)
    *. vdd
  in
  let sub_parallel =
    (* one parallel device off, drain at rail *)
    (if series_is_nmos then Leakage.subthreshold_off tech p
     else Leakage.subthreshold_off tech n)
    *. vdd *. k /. 2.0
  in
  let gate_terms =
    (* conducting devices tunnel; average half the pins active *)
    0.5 *. k
    *. ((Leakage.gate_on tech n *. vdd) +. (Leakage.gate_on tech p *. vdd))
    /. 2.0
  in
  let junction_terms = (Leakage.junction tech n +. Leakage.junction tech p) *. vdd in
  let g =
    (* logical effort: NAND-k = (k+2)/3, NOR-k = (2k+1)/3 *)
    if series_is_nmos then (k +. 2.0) /. 3.0 else ((2.0 *. k) +. 1.0) /. 3.0
  in
  {
    r_drive;
    c_in;
    c_self;
    leak_w = 0.5 *. (sub_series +. sub_parallel) +. gate_terms +. junction_terms;
    area = float_of_int inputs *. pair_area tech ~tox ~w_n ~w_p /. 2.0;
    logical_effort = g;
    n_inputs = inputs;
  }

let nand tech ~vth ~tox ~size ~inputs =
  stacked_gate tech ~vth ~tox ~size ~inputs ~series_channel:Mosfet.Nmos

let nor tech ~vth ~tox ~size ~inputs =
  stacked_gate tech ~vth ~tox ~size ~inputs ~series_channel:Mosfet.Pmos

let delay g ~c_load = 0.69 *. g.r_drive *. (g.c_self +. c_load)

let switch_energy (tech : Tech.t) g ~c_load = (g.c_self +. c_load) *. tech.vdd *. tech.vdd

let tau tech ~vth ~tox =
  let inv = inverter tech ~vth ~tox ~size:1.0 in
  inv.r_drive *. inv.c_in
