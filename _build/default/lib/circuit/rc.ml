type t = {
  r : float;
  c : float;
  children : t list;
}

let node ~r ~c children =
  if r < 0.0 || c < 0.0 then invalid_arg "Rc.node: negative r or c";
  { r; c; children }

let leaf ~r ~c = node ~r ~c []

let rec total_capacitance t =
  List.fold_left (fun acc ch -> acc +. total_capacitance ch) t.c t.children

(* Elmore delay to [target]: sum over branches on the path of
   r_branch * (capacitance downstream of that branch). *)
let elmore_to root target =
  let rec path_delay node =
    if node == target then Some (node.r *. total_capacitance node)
    else
      List.fold_left
        (fun acc ch ->
          match acc with
          | Some _ -> acc
          | None -> (
            match path_delay ch with
            | Some d -> Some (d +. (node.r *. total_capacitance node))
            | None -> None))
        None node.children
  in
  path_delay root

let elmore_worst root =
  let rec collect acc node =
    let acc = node :: acc in
    List.fold_left collect acc node.children
  in
  let nodes = collect [] root in
  List.fold_left
    (fun acc n ->
      match elmore_to root n with Some d -> Float.max acc d | None -> acc)
    0.0 nodes

let ladder ~stages ~r_stage ~c_stage ~c_load =
  if stages < 1 then invalid_arg "Rc.ladder: stages < 1";
  if r_stage < 0.0 || c_stage < 0.0 || c_load < 0.0 then
    invalid_arg "Rc.ladder: negative value";
  let n = float_of_int stages in
  (* sum_{k=1..n} R*(C_load + (n-k+1/2) C) = n R C_load + R C n^2/2 *)
  (n *. r_stage *. c_load) +. (r_stage *. c_stage *. n *. n /. 2.0)
