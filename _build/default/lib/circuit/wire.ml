module Tech = Nmcache_device.Tech

type t = {
  length : float;
  r_total : float;
  c_total : float;
}

let make (tech : Tech.t) ~length =
  if length < 0.0 then invalid_arg "Wire.make: negative length";
  { length; r_total = tech.wire_r_per_m *. length; c_total = tech.wire_c_per_m *. length }

let elmore w ~r_driver ~c_load =
  (0.69 *. r_driver *. (w.c_total +. c_load))
  +. (0.38 *. w.r_total *. w.c_total)
  +. (0.69 *. w.r_total *. c_load)

type repeated = {
  delay : float;
  leak_w : float;
  energy_per_transition : float;
  n_repeaters : int;
  repeater_size : float;
  area : float;
}

let repeated (tech : Tech.t) ~vth ~tox ~length =
  let w = make tech ~length in
  let unit_inv = Gate.inverter tech ~vth ~tox ~size:1.0 in
  let r0 = unit_inv.Gate.r_drive and c0 = unit_inv.Gate.c_in in
  let k_opt =
    if w.r_total *. w.c_total <= 0.0 then 1.0
    else Float.sqrt (0.4 *. w.r_total *. w.c_total /. (0.7 *. r0 *. c0))
  in
  let n = max 1 (int_of_float (Float.round k_opt)) in
  let size =
    if w.r_total <= 0.0 then 1.0
    else Float.max 1.0 (Float.sqrt (r0 *. w.c_total /. (w.r_total *. c0)))
  in
  let inv = Gate.inverter tech ~vth ~tox ~size in
  let seg = make tech ~length:(length /. float_of_int n) in
  (* each stage: repeater driving its wire segment into the next repeater *)
  let stage_delay = elmore seg ~r_driver:inv.Gate.r_drive ~c_load:inv.Gate.c_in in
  let stage_delay = stage_delay +. (0.69 *. inv.Gate.r_drive *. inv.Gate.c_self) in
  let c_switched = w.c_total +. (float_of_int n *. (inv.Gate.c_in +. inv.Gate.c_self)) in
  {
    delay = float_of_int n *. stage_delay;
    leak_w = float_of_int n *. inv.Gate.leak_w;
    energy_per_transition = c_switched *. tech.vdd *. tech.vdd;
    n_repeaters = n;
    repeater_size = size;
    area = float_of_int n *. inv.Gate.area;
  }
