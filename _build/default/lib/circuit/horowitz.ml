let delay ~tf ~t_rise_in ~v_threshold ~rising =
  if v_threshold <= 0.0 || v_threshold >= 1.0 then
    invalid_arg "Horowitz.delay: v_threshold outside (0,1)";
  if tf < 0.0 || t_rise_in < 0.0 then invalid_arg "Horowitz.delay: negative time";
  if tf = 0.0 then 0.0
  else begin
    let b = if rising then 0.5 else 0.4 in
    let lnv = Float.log v_threshold in
    tf *. Float.sqrt ((lnv *. lnv) +. (2.0 *. t_rise_in *. b *. (1.0 -. v_threshold) /. tf))
  end

let output_transition ~tf = 2.0 *. tf
