module Tech = Nmcache_device.Tech
module Mosfet = Nmcache_device.Mosfet
module Leakage = Nmcache_device.Leakage
module Drive = Nmcache_device.Drive

type t = {
  vth : float;
  tox : float;
  w_access : float;
  w_pulldown : float;
  w_pullup : float;
  width : float;
  height : float;
}

(* Classic 6T ratios in units of drawn L, and a 146 F^2 footprint. *)
let access_ratio = 1.5
let pulldown_ratio = 2.2
let pullup_ratio = 1.1
let cell_width_f = 11.0
let cell_height_f = 13.3

let make tech ~vth ~tox =
  Tech.check_knobs tech ~vth ~tox;
  let l = Tech.l_drawn tech ~tox in
  {
    vth;
    tox;
    w_access = access_ratio *. l;
    w_pulldown = pulldown_ratio *. l;
    w_pullup = pullup_ratio *. l;
    width = cell_width_f *. l;
    height = cell_height_f *. l;
  }

let area c = c.width *. c.height

let devices tech c =
  let n w = Mosfet.nmos tech ~w ~vth:c.vth ~tox:c.tox in
  let p w = Mosfet.pmos tech ~w ~vth:c.vth ~tox:c.tox in
  (n c.w_access, n c.w_pulldown, p c.w_pullup)

(* Standby leakage of a cell holding a value, bitlines precharged high:
   - access transistor on the '0' node: subthreshold (BL high, node low);
   - pull-down of the '0'-storing inverter: off, subthreshold;
   - pull-up of the '1'-storing inverter: off, subthreshold;
   - the ON pull-down and ON pull-up tunnel through their gates;
   - off devices contribute the reduced overlap tunnelling term;
   - junctions everywhere (folded into the three counted devices). *)
let leakage_power (tech : Tech.t) c =
  let acc, pd, pu = devices tech c in
  let vdd = tech.vdd in
  let sub =
    Leakage.subthreshold_off tech acc
    +. Leakage.subthreshold_off tech pd
    +. Leakage.subthreshold_off tech pu
  in
  let gate_on = Leakage.gate_on tech pd +. Leakage.gate_on tech pu in
  let gate_off =
    Leakage.gate tech acc ~vox:(vdd /. 3.0)
    +. Leakage.gate tech pd ~vox:(vdd /. 3.0)
    +. Leakage.gate tech pu ~vox:(vdd /. 3.0)
  in
  let junction =
    Leakage.junction tech acc +. Leakage.junction tech pd +. Leakage.junction tech pu
  in
  (sub +. gate_on +. gate_off +. junction) *. vdd

let read_current tech c =
  let acc, _, _ = devices tech c in
  0.5 *. Drive.on_current tech acc

let gate_load tech c =
  let acc, _, _ = devices tech c in
  2.0 *. Drive.gate_capacitance tech acc

let drain_load tech c =
  let acc, _, _ = devices tech c in
  Drive.drain_capacitance tech acc
