(** Horowitz's analytic gate-delay approximation for non-step inputs.

    Elmore delay assumes a step input; real cache timing paths see
    finite-slope edges (notably the wordline rising into the cell and
    the sense clock).  Horowitz's formula corrects the switching time of
    a stage for the input transition time. *)

val delay :
  tf:float -> t_rise_in:float -> v_threshold:float -> rising:bool -> float
(** [delay ~tf ~t_rise_in ~v_threshold ~rising] is the stage delay [s]:

    t = tf · √( (ln v_s)² + 2·t_rise_in·b·(1 − v_s)/tf )

    where [tf] is the stage RC time constant, [t_rise_in] the input
    transition time, [v_s] the normalised switching threshold
    [v_threshold] ∈ (0, 1), and b = 0.5 (rising) / 0.4 (falling), after
    CACTI.  Raises [Invalid_argument] unless 0 < v_s < 1 and the times
    are non-negative. *)

val output_transition : tf:float -> float
(** Output transition time estimate for chaining stages: ≈ tf / (1 − v_s)
    evaluated at v_s = 0.5, i.e. 2·tf. *)
