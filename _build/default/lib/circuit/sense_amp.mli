(** Latch-type sense amplifier.

    One per active bitline pair; grouped with the memory-cell array in
    the paper's component split.  The sense amplifier resolves once the
    bitline differential reaches [sense_swing · Vdd]. *)

type t = {
  vth : float;
  tox : float;
  delay : float;       (** resolution delay after fire [s] *)
  leak_w : float;      (** standby leakage [W] *)
  energy : float;      (** energy per sensing operation [J] *)
  c_input : float;     (** loading presented to the bitline [F] *)
  area : float;        (** layout area [m²] *)
}

val sense_swing : float
(** Required bitline differential as a fraction of Vdd (0.1). *)

val make : Nmcache_device.Tech.t -> vth:float -> tox:float -> t
(** Sense amp built from ~6 unit devices at the given knobs; delay is a
    few gate delays of the cross-coupled pair. *)
