lib/circuit/sram_cell.ml: Nmcache_device
