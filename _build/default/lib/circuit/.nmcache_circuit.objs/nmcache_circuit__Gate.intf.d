lib/circuit/gate.mli: Nmcache_device
