lib/circuit/rc.mli:
