lib/circuit/gate.ml: Nmcache_device
