lib/circuit/transient.mli:
