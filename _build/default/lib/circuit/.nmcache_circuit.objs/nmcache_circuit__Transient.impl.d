lib/circuit/transient.ml: Array List Nmcache_numerics
