lib/circuit/chain.mli: Gate Nmcache_device
