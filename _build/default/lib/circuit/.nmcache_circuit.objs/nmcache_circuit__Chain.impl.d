lib/circuit/chain.ml: Float Gate Nmcache_device
