lib/circuit/wire.mli: Nmcache_device
