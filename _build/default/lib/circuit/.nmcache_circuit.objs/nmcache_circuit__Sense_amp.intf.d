lib/circuit/sense_amp.mli: Nmcache_device
