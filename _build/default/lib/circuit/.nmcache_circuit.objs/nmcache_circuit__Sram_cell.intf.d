lib/circuit/sram_cell.mli: Nmcache_device
