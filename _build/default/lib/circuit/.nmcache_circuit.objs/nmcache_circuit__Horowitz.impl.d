lib/circuit/horowitz.ml: Float
