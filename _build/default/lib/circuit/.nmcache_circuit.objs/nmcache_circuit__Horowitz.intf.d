lib/circuit/horowitz.mli:
