lib/circuit/sense_amp.ml: Float Gate Nmcache_device
