lib/circuit/wire.ml: Float Gate Nmcache_device
