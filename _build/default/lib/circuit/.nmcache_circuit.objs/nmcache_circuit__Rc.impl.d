lib/circuit/rc.ml: Float List
