lib/circuit/netlist.mli: Nmcache_device Rc Sram_cell
