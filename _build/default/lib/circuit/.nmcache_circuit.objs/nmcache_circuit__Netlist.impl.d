lib/circuit/netlist.ml: Horowitz Nmcache_device Rc Sram_cell
