module Tech = Nmcache_device.Tech

let wordline_tree (tech : Tech.t) ~cell ~cols ~segment_cells =
  if cols < 1 then invalid_arg "Netlist.wordline_tree: cols < 1";
  if segment_cells < 1 then invalid_arg "Netlist.wordline_tree: segment_cells < 1";
  let cell_w = cell.Sram_cell.width in
  let gate_load = Sram_cell.gate_load tech cell in
  let n_segments = (cols + segment_cells - 1) / segment_cells in
  (* build from the far end toward the driver *)
  let rec build i rest =
    if i < 0 then rest
    else begin
      let cells_here = min segment_cells (cols - (i * segment_cells)) in
      let len = float_of_int cells_here *. cell_w in
      let r = tech.Tech.wire_r_per_m *. len in
      let c = (tech.Tech.wire_c_per_m *. len) +. (float_of_int cells_here *. gate_load) in
      let node = Rc.node ~r ~c rest in
      build (i - 1) [ node ]
    end
  in
  match build (n_segments - 1) [] with
  | [ tree ] -> Rc.node ~r:0.0 ~c:0.0 [ tree ]
  | _ -> Rc.node ~r:0.0 ~c:0.0 []

let wordline_delay tech ~cell ~cols ~r_driver ~t_rise_in =
  let tree = wordline_tree tech ~cell ~cols ~segment_cells:32 in
  let wire_delay = Rc.elmore_worst tree in
  let driver_delay = r_driver *. Rc.total_capacitance tree in
  let tf = wire_delay +. driver_delay in
  Horowitz.delay ~tf ~t_rise_in ~v_threshold:0.5 ~rising:true

let bitline_discharge (tech : Tech.t) ~cell ~rows ~sense_swing =
  if rows < 1 then invalid_arg "Netlist.bitline_discharge: rows < 1";
  if sense_swing <= 0.0 || sense_swing >= 1.0 then
    invalid_arg "Netlist.bitline_discharge: swing outside (0,1)";
  let cell_h = cell.Sram_cell.height in
  let drain = Sram_cell.drain_load tech cell in
  let seg_c = (tech.Tech.wire_c_per_m *. cell_h) +. drain in
  let seg_r = tech.Tech.wire_r_per_m *. cell_h in
  let c_total = float_of_int rows *. seg_c in
  let i_read = Sram_cell.read_current tech cell in
  (* current-source discharge of the total capacitance ... *)
  let slew = c_total *. (sense_swing *. tech.Tech.vdd) /. i_read in
  (* ... plus the RC settling of the far-end cell through the
     distributed bitline resistance (Elmore of the uniform line) *)
  let rc_penalty = 0.38 *. (float_of_int rows *. seg_r) *. c_total in
  slew +. rc_penalty
