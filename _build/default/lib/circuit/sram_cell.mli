(** The 6T SRAM cell.

    The storage element whose replication makes the memory-cell array
    the dominant leakage component of a cache.  Device widths follow the
    technology's Tox-scaling rule: thicker oxide ⇒ longer channel ⇒
    proportionally wider cell transistors (stability), so the cell
    grows in both dimensions — the area effect §2 of the paper insists
    on. *)

type t = {
  vth : float;          (** knob: cell threshold [V] *)
  tox : float;          (** knob: cell oxide [m] *)
  w_access : float;     (** access (pass) transistor width [m] *)
  w_pulldown : float;   (** pull-down NMOS width [m] *)
  w_pullup : float;     (** pull-up PMOS width [m] *)
  width : float;        (** cell layout width (bitline pitch) [m] *)
  height : float;       (** cell layout height (wordline pitch) [m] *)
}

val make : Nmcache_device.Tech.t -> vth:float -> tox:float -> t
(** Builds a cell at the given knobs; validates ranges via
    {!Nmcache_device.Tech.check_knobs}. *)

val access_ratio : float
(** Access-transistor width in units of drawn L (1.5). *)

val pulldown_ratio : float
(** Pull-down width in units of drawn L (2.2). *)

val pullup_ratio : float
(** Pull-up width in units of drawn L (1.1). *)

val area : t -> float
(** width · height [m²]; ∝ (Tox/Tox_ref)². *)

val leakage_power : Nmcache_device.Tech.t -> t -> float
(** Total standby leakage of one cell [W]: subthreshold paths (one
    access, one pull-down, one pull-up device off) + gate tunnelling of
    the two conducting devices + residual off-state tunnelling +
    junction terms.  Exponentially decreasing in both knobs. *)

val read_current : Nmcache_device.Tech.t -> t -> float
(** Cell read current available to discharge the bitline [A]: the
    series access/pull-down path, ≈ half the access device's
    saturation current. *)

val gate_load : Nmcache_device.Tech.t -> t -> float
(** Wordline loading per cell: gate capacitance of both access
    transistors [F]. *)

val drain_load : Nmcache_device.Tech.t -> t -> float
(** Bitline loading per cell: drain capacitance of one access
    transistor [F]. *)
