(** A small transient circuit simulator.

    Fixed-timestep nodal analysis with trapezoidal integration over
    linear R/C networks driven by (time-varying) current sources and
    Norton-equivalent voltage drives.  This is the closest thing in the
    repository to an actual SPICE engine: the closed-form delay models
    (Elmore, current-source bitline discharge) are validated against
    waveforms computed here, node by node, step by step.

    The network is linear, so each step solves the constant system
    (C/Δt + G/2)·v' = (C/Δt − G/2)·v + (i + i')/2 with a single
    pre-computed factorisation (here: explicit inverse — the matrices
    are small). *)

type t
(** A circuit under construction (mutable). *)

val create : nodes:int -> t
(** [create ~nodes] makes a circuit with [nodes] floating nodes
    (node indices 0 .. nodes−1) plus the implicit ground.  Raises
    [Invalid_argument] if [nodes < 1]. *)

val add_resistor : t -> a:int -> b:int option -> ohms:float -> unit
(** Resistor between node [a] and node [b] ([None] = ground).  Raises
    [Invalid_argument] on non-positive resistance or bad indices. *)

val add_capacitor : t -> a:int -> farads:float -> unit
(** Grounded capacitor at node [a] (node-to-node capacitors are not
    needed for the cache structures).  Raises [Invalid_argument] on
    non-positive capacitance. *)

val add_current_source : t -> a:int -> amps:(float -> float) -> unit
(** Current injected {e into} node [a] as a function of time (negative
    values pull current out — e.g. a discharging cell). *)

val add_voltage_drive : t -> a:int -> volts:(float -> float) -> r_source:float -> unit
(** Norton-equivalent drive: an ideal source [volts t] behind
    [r_source] into node [a].  Raises [Invalid_argument] on
    non-positive source resistance. *)

type waveform = {
  dt : float;
  samples : float array array;  (** [samples.(step).(node)] in volts *)
}

val simulate : t -> v0:float array -> dt:float -> steps:int -> waveform
(** Integrate from initial node voltages [v0].  Raises
    [Invalid_argument] on size mismatch, non-positive [dt]/[steps], or
    {!Nmcache_numerics.Linsolve.Singular} if some node has no
    capacitance or conductance path (ill-posed). *)

val node_voltage : waveform -> node:int -> step:int -> float

val crossing_time :
  waveform -> node:int -> threshold:float -> rising:bool -> float option
(** First time the node's waveform crosses [threshold] in the given
    direction (linear interpolation between samples); [None] if it
    never does. *)
