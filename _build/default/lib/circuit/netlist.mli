(** Explicit RC netlists for the array timing paths.

    The cache model's closed forms lump the wordline and bitline into
    single RC products; this module builds the distributed trees
    node-by-node and evaluates them with the Elmore engine plus
    Horowitz slope correction — a higher-fidelity cross-check used by
    the fit-audit tests (the lumped forms must stay within a constant
    factor of the detailed ones across the knob space). *)

val wordline_tree :
  Nmcache_device.Tech.t ->
  cell:Sram_cell.t ->
  cols:int ->
  segment_cells:int ->
  Rc.t
(** Distributed wordline: [cols] cell loads grouped into segments of
    [segment_cells] (one RC tree node per segment; finer segmentation →
    better accuracy, more nodes).  The tree's root resistance is zero —
    drive it through {!wordline_delay}'s [r_driver].  Raises
    [Invalid_argument] if [cols < 1] or [segment_cells < 1]. *)

val wordline_delay :
  Nmcache_device.Tech.t ->
  cell:Sram_cell.t ->
  cols:int ->
  r_driver:float ->
  t_rise_in:float ->
  float
(** Detailed wordline delay [s]: Elmore delay of the segmented tree
    (32 cells per segment) through the driver resistance, corrected for
    the input edge with {!Horowitz.delay} at the half-rail threshold. *)

val bitline_discharge :
  Nmcache_device.Tech.t ->
  cell:Sram_cell.t ->
  rows:int ->
  sense_swing:float ->
  float
(** Detailed bitline evaluation time [s]: the cell's read current
    discharging the distributed bitline capacitance (drain loads + wire,
    summed node-by-node), to a [sense_swing] fraction of Vdd, plus the
    Elmore penalty of the bitline resistance between the active cell
    (worst case: the far end) and the sense amplifier. *)
