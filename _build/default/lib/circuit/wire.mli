(** On-chip interconnect: distributed RC wires and repeater insertion.

    Bus drivers (two of the paper's four cache components) are repeated
    wires; wordlines and bitlines are unrepeated distributed RC lines
    loaded by cell pins. *)

type t = {
  length : float;   (** [m] *)
  r_total : float;  (** [Ω] *)
  c_total : float;  (** [F] *)
}

val make : Nmcache_device.Tech.t -> length:float -> t
(** Wire of the technology's local layer.  Raises [Invalid_argument] on
    a negative length. *)

val elmore : t -> r_driver:float -> c_load:float -> float
(** Delay of driver + distributed wire + lumped load:
    0.69·R_drv·(C_w + C_l) + 0.38·R_w·C_w + 0.69·R_w·C_l [s]. *)

type repeated = {
  delay : float;        (** total propagation delay [s] *)
  leak_w : float;       (** leakage of all repeaters [W] *)
  energy_per_transition : float; (** switching energy, full swing [J] *)
  n_repeaters : int;
  repeater_size : float;
  area : float;         (** repeater area [m²] *)
}

val repeated :
  Nmcache_device.Tech.t -> vth:float -> tox:float -> length:float -> repeated
(** Classic optimal repeater insertion for a long wire at the given knob
    assignment: stage count k ≈ √(0.4·R_w·C_w / (0.7·R₀·C₀)), repeater
    size s ≈ √(R₀·C_w / (R_w·C₀)), evaluated with at least one stage.
    The delay, leakage and energy include the repeaters and the wire. *)
