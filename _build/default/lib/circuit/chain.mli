(** Logical-effort buffer chains.

    Decoders and drivers are chains of stages between a small input gate
    and a large capacitive load; the method of logical effort gives the
    near-optimal stage count and per-stage delay.  This module sizes a
    chain, then reports delay, leakage, switching energy and area. *)

type t = {
  delay : float;          (** input-to-output delay [s] *)
  leak_w : float;         (** summed leakage of all stages [W] *)
  energy : float;         (** switching energy of one full transition [J] *)
  area : float;           (** [m²] *)
  n_stages : int;
  stage_effort : float;   (** realised effort per stage *)
}

val buffer :
  Nmcache_device.Tech.t ->
  vth:float ->
  tox:float ->
  c_in:float ->
  c_load:float ->
  t
(** [buffer tech ~vth ~tox ~c_in ~c_load] is an inverter chain whose
    first stage presents ≈ [c_in] at its input and which drives
    [c_load].  Stage count is chosen so the effort per stage is near 4
    (min 1 stage).  Raises [Invalid_argument] if [c_in <= 0] or
    [c_load < 0]. *)

val with_first_gate :
  Nmcache_device.Tech.t ->
  vth:float ->
  tox:float ->
  first:Gate.t ->
  c_load:float ->
  t
(** Like {!buffer} but the first stage is the given logic gate (e.g. a
    decoder NAND); its logical effort multiplies the path effort and its
    leakage/area are included. *)
