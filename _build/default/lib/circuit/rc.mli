(** RC trees and Elmore delay.

    The circuit evaluator reduces every timing path to resistances
    charging capacitances; the Elmore metric (first moment of the impulse
    response) is the classic closed form for delay through an RC tree.
    A tree node carries the resistance of the branch connecting it to its
    parent and the capacitance lumped at the node. *)

type t
(** An RC tree rooted at the driving point. *)

val node : r:float -> c:float -> t list -> t
(** [node ~r ~c children] is a tree node reached through resistance [r]
    [Ω] with grounded capacitance [c] [F] at the node.  Raises
    [Invalid_argument] on negative [r] or [c]. *)

val leaf : r:float -> c:float -> t
(** [leaf ~r ~c] is [node ~r ~c []]. *)

val total_capacitance : t -> float
(** Sum of all node capacitances [F]. *)

val elmore_to : t -> t -> float option
(** [elmore_to root target] is the Elmore delay [s] from the tree's
    driving point to the physical node [target] (compared by identity),
    or [None] if [target] is not in the tree:
    Σ over nodes k on the root→target path of R_k · C_subtree(k). *)

val elmore_worst : t -> float
(** Largest Elmore delay over all nodes of the tree [s]. *)

val ladder : stages:int -> r_stage:float -> c_stage:float -> c_load:float -> float
(** Closed-form Elmore delay of a uniform RC ladder of [stages] segments
    with a lumped load at the end — the distributed-wire workhorse:
    Σ_{k=1..n} R·(C_load + (n − k + 1/2)·C).  Computed directly rather
    than by building a tree.  Raises [Invalid_argument] if [stages < 1]
    or any value is negative. *)
