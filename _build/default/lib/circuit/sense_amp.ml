module Tech = Nmcache_device.Tech

type t = {
  vth : float;
  tox : float;
  delay : float;
  leak_w : float;
  energy : float;
  c_input : float;
  area : float;
}

let sense_swing = 0.1

let make (tech : Tech.t) ~vth ~tox =
  Tech.check_knobs tech ~vth ~tox;
  let inv = Gate.inverter tech ~vth ~tox ~size:2.0 in
  (* latch regeneration: ~3 time constants of the cross-coupled pair,
     resolving from the sense swing to half-rail *)
  let tau = inv.Gate.r_drive *. (inv.Gate.c_in +. inv.Gate.c_self) in
  let gain_stages = Float.log (0.5 /. sense_swing) in
  {
    vth;
    tox;
    delay = tau *. (1.0 +. gain_stages);
    (* cross-coupled pair + precharge + mux: ~2.5 inverter-equivalents *)
    leak_w = 2.5 *. inv.Gate.leak_w;
    energy = 2.0 *. (inv.Gate.c_in +. inv.Gate.c_self) *. tech.vdd *. tech.vdd;
    c_input = 0.5 *. inv.Gate.c_in;
    area = 3.0 *. inv.Gate.area;
  }
