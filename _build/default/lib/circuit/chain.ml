module Tech = Nmcache_device.Tech

type t = {
  delay : float;
  leak_w : float;
  energy : float;
  area : float;
  n_stages : int;
  stage_effort : float;
}

(* Generic chain: [first] is the initial gate (logical effort g, input
   cap c_in); inverters are appended until per-stage effort is near 4. *)
let build (tech : Tech.t) ~vth ~tox ~(first : Gate.t) ~c_load =
  if first.Gate.c_in <= 0.0 then invalid_arg "Chain: c_in <= 0";
  if c_load < 0.0 then invalid_arg "Chain: c_load < 0";
  let path_effort =
    first.Gate.logical_effort *. Float.max 1.0 (c_load /. first.Gate.c_in)
  in
  let n_extra =
    (* total stages n chosen so effort^(1/n) ~ 4 *)
    let n_total = Float.max 1.0 (Float.round (Float.log path_effort /. Float.log 4.0)) in
    max 0 (int_of_float n_total - 1)
  in
  let n_total = n_extra + 1 in
  let stage_effort = path_effort ** (1.0 /. float_of_int n_total) in
  let unit = Gate.inverter tech ~vth ~tox ~size:1.0 in
  (* walk the chain accumulating delay, leakage, energy, area *)
  let rec walk i prev_gate (size : float) acc_delay acc_leak acc_energy acc_area =
    if i > n_extra then begin
      let d = Gate.delay prev_gate ~c_load in
      let e = Gate.switch_energy tech prev_gate ~c_load:0.0 in
      (acc_delay +. d, acc_leak, acc_energy +. e, acc_area)
    end
    else begin
      let next_size = size *. stage_effort /. 1.0 in
      let next = Gate.inverter tech ~vth ~tox ~size:(Float.max 1.0 next_size) in
      let d = Gate.delay prev_gate ~c_load:next.Gate.c_in in
      let e = Gate.switch_energy tech prev_gate ~c_load:next.Gate.c_in in
      walk (i + 1) next next_size (acc_delay +. d) (acc_leak +. next.Gate.leak_w)
        (acc_energy +. e) (acc_area +. next.Gate.area)
    end
  in
  let first_size = Float.max 1.0 (first.Gate.c_in /. unit.Gate.c_in) in
  let delay, leak, energy, area =
    walk 1 first first_size 0.0 first.Gate.leak_w 0.0 first.Gate.area
  in
  { delay; leak_w = leak; energy; area; n_stages = n_total; stage_effort }

let with_first_gate tech ~vth ~tox ~first ~c_load = build tech ~vth ~tox ~first ~c_load

let buffer tech ~vth ~tox ~c_in ~c_load =
  if c_in <= 0.0 then invalid_arg "Chain.buffer: c_in <= 0";
  let unit = Gate.inverter tech ~vth ~tox ~size:1.0 in
  let size = Float.max 1.0 (c_in /. unit.Gate.c_in) in
  let first = Gate.inverter tech ~vth ~tox ~size in
  build tech ~vth ~tox ~first ~c_load
