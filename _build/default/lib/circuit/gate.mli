(** Static CMOS gate models.

    A gate is summarised by its switching resistance, input/self
    capacitance, state-averaged leakage power and layout area — all as
    functions of its (Vth, Tox) knob assignment and drive size.  These
    summaries are what the cache-component netlists are assembled from.

    Sizing convention: [size] is the drive strength as a multiple of the
    unit inverter (NMOS width = 2·L_drawn, PMOS = 2× that); a [size]-X
    gate has [size]× the unit currents and capacitances. *)

type t = {
  r_drive : float;    (** effective switching resistance [Ω] *)
  c_in : float;       (** input capacitance per input pin [F] *)
  c_self : float;     (** output self-loading (parasitic) [F] *)
  leak_w : float;     (** state-averaged total leakage power [W] *)
  area : float;       (** layout-area estimate [m²] *)
  logical_effort : float; (** logical effort g of this topology *)
  n_inputs : int;
}

val unit_nmos_width : Nmcache_device.Tech.t -> tox:float -> float
(** NMOS width of the unit inverter at the given oxide (2·L_drawn). *)

val inverter : Nmcache_device.Tech.t -> vth:float -> tox:float -> size:float -> t
(** Unit-based inverter.  Raises [Invalid_argument] if [size <= 0]. *)

val nand : Nmcache_device.Tech.t -> vth:float -> tox:float -> size:float -> inputs:int -> t
(** [inputs]-input NAND (series NMOS stack); the stacked off-state gets
    the usual ~4–5× subthreshold reduction (stack effect).  Raises
    [Invalid_argument] if [inputs < 2] or [size <= 0]. *)

val nor : Nmcache_device.Tech.t -> vth:float -> tox:float -> size:float -> inputs:int -> t
(** [inputs]-input NOR (series PMOS stack).  Same validation as {!nand}. *)

val delay : t -> c_load:float -> float
(** [delay g ~c_load] = 0.69 · r_drive · (c_self + c_load) [s]. *)

val switch_energy : Nmcache_device.Tech.t -> t -> c_load:float -> float
(** Energy of one output transition: (c_self + c_load) · Vdd² [J]
    (both edges; halve for a single edge). *)

val tau : Nmcache_device.Tech.t -> vth:float -> tox:float -> float
(** Technology time constant at these knobs: r · c_in of the unit
    inverter — the delay unit of the logical-effort method [s]. *)

val stack_factor : float
(** Subthreshold reduction factor applied to a 2-high off stack. *)
