let on_current (tech : Tech.t) (d : Mosfet.t) =
  let cox = Tech.cox tech ~tox:d.tox in
  let mu = Mosfet.mobility tech d in
  let vth = Mosfet.vth_eff tech d ~vds:tech.vdd ~vsb:0.0 in
  let overdrive = tech.vdd -. vth in
  if overdrive <= 0.0 then 1e-12
  else
    tech.k_sat *. mu *. cox
    *. (d.w /. Mosfet.l_eff tech d)
    *. (overdrive ** tech.alpha_sat)

let effective_resistance (tech : Tech.t) d = 0.75 *. tech.vdd /. on_current tech d

let gate_capacitance (tech : Tech.t) (d : Mosfet.t) =
  (Tech.cox tech ~tox:d.tox *. d.w *. Mosfet.l_drawn tech d)
  +. (2.0 *. tech.c_overlap *. d.w)

let drain_capacitance (tech : Tech.t) (d : Mosfet.t) =
  (tech.c_junction *. d.w) +. (tech.c_overlap *. d.w)

let fo4_delay (tech : Tech.t) ~vth ~tox =
  let w_n = 2.0 *. Tech.l_drawn tech ~tox in
  let n = Mosfet.nmos tech ~w:w_n ~vth ~tox in
  let p = Mosfet.pmos tech ~w:(2.0 *. w_n) ~vth ~tox in
  let c_in = gate_capacitance tech n +. gate_capacitance tech p in
  let c_self = drain_capacitance tech n +. drain_capacitance tech p in
  (* average pull-up/pull-down resistance of the inverter *)
  let r = 0.5 *. (effective_resistance tech n +. effective_resistance tech p) in
  0.69 *. r *. (c_self +. (4.0 *. c_in))
