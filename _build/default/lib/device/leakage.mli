(** Device leakage currents: subthreshold, gate tunnelling, junction.

    These are the compact equations our "HSPICE substitute" evaluates;
    together they define total leakage, which is the quantity the paper
    optimises.  All currents are in amperes for the given device, all
    powers in watts. *)

val subthreshold : Tech.t -> Mosfet.t -> vgs:float -> vds:float -> vsb:float -> float
(** Subthreshold (weak-inversion) drain current:
    I = I_s0 · (W/L_eff) · exp((V_gs − V_th,eff)/(n·v_T)) · (1 − exp(−V_ds/v_T))
    with I_s0 = μ · C_ox · (n − 1) · v_T².  Exponentially decreasing in
    the device's Vth knob. *)

val subthreshold_off : Tech.t -> Mosfet.t -> float
(** Off-state subthreshold current: V_gs = 0, V_ds = Vdd, V_sb = 0. *)

val gate : Tech.t -> Mosfet.t -> vox:float -> float
(** Gate direct-tunnelling current at oxide voltage [vox]:
    I = J_ref · (V_ox/Vdd)² · exp(−b_gate·(T_ox − T_ox,ref)) · W · L_drawn.
    Exponentially decreasing in the Tox knob.  PMOS tunnelling is a
    factor ~0.4 lower (hole tunnelling). *)

val gate_on : Tech.t -> Mosfet.t -> float
(** Gate leakage of a conducting device (V_ox = Vdd) — e.g. the ON
    transistors of a CMOS gate, or both "high-gate" devices of an SRAM
    cell's cross-coupled pair. *)

val junction : Tech.t -> Mosfet.t -> float
(** Reverse-biased drain-junction (incl. BTBT) leakage; a small, mostly
    knob-independent term kept for completeness. *)

val off_state_total : Tech.t -> Mosfet.t -> float
(** Total leakage current of a single OFF device with drain at Vdd:
    subthreshold + edge (off-state) gate tunnelling + junction.  The
    off-state gate term uses a reduced oxide voltage (≈ Vdd/3, the
    gate-to-drain overlap condition). *)

val off_state_power : Tech.t -> Mosfet.t -> float
(** [off_state_total] · Vdd [W]. *)

val subthreshold_swing : Tech.t -> float
(** n · v_T · ln 10 — mV of Vth per decade of subthreshold current;
    exposed because tests verify the model's slope against it. *)
