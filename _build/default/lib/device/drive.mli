(** Drive strength: alpha-power-law on-current and effective switching
    resistance.  These set the delay side of the trade-off: higher Vth or
    thicker Tox (through the channel-length scaling rule) weakens the
    device and slows the gate. *)

val on_current : Tech.t -> Mosfet.t -> float
(** Saturation drive current at V_gs = Vdd [A]:
    I_on = k_sat · μ · C_ox · (W/L_eff) · (Vdd − V_th,eff)^α, with
    V_th,eff including the temperature and DIBL corrections.  Returns a
    tiny positive floor instead of 0 when Vdd ≤ V_th (deep subthreshold
    operation is outside this model's intent but must not divide by
    zero). *)

val effective_resistance : Tech.t -> Mosfet.t -> float
(** R_eff = 3/4 · Vdd / I_on [Ω] — the standard RC-delay switching
    resistance (averaged over the output transition). *)

val gate_capacitance : Tech.t -> Mosfet.t -> float
(** Input capacitance: C_ox·W·L_drawn + 2·C_overlap·W [F]. *)

val drain_capacitance : Tech.t -> Mosfet.t -> float
(** Parasitic drain capacitance: C_junction·W + C_overlap·W [F]. *)

val fo4_delay : Tech.t -> vth:float -> tox:float -> float
(** Delay of a fanout-of-4 inverter built from minimum-width devices at
    the given knobs [s] — a convenient technology health metric used by
    tests (≈ 15–25 ps at nominal 65 nm knobs). *)
