let subthreshold (tech : Tech.t) (d : Mosfet.t) ~vgs ~vds ~vsb =
  let vt = Tech.thermal_voltage tech in
  let n = tech.n_swing in
  let cox = Tech.cox tech ~tox:d.tox in
  let mu = Mosfet.mobility tech d in
  let i_s0 = mu *. cox *. (n -. 1.0) *. vt *. vt in
  let vth = Mosfet.vth_eff tech d ~vds ~vsb in
  let wl = d.w /. Mosfet.l_eff tech d in
  i_s0 *. wl
  *. Float.exp ((vgs -. vth) /. (n *. vt))
  *. (1.0 -. Float.exp (-.vds /. vt))

let subthreshold_off tech d = subthreshold tech d ~vgs:0.0 ~vds:tech.Tech.vdd ~vsb:0.0

let gate (tech : Tech.t) (d : Mosfet.t) ~vox =
  if vox <= 0.0 then 0.0
  else begin
    let channel_factor = match d.channel with Mosfet.Nmos -> 1.0 | Mosfet.Pmos -> 0.4 in
    let j =
      tech.j_gate_ref
      *. ((vox /. tech.vdd) ** 2.0)
      *. Float.exp (-.tech.b_gate *. (d.tox -. tech.tox_ref))
    in
    channel_factor *. j *. Mosfet.gate_area tech d
  end

let gate_on (tech : Tech.t) d = gate tech d ~vox:tech.vdd

let junction (tech : Tech.t) (d : Mosfet.t) =
  (* drain junction area: W x 2.5 L_ref -- the contacted-drain pitch is
     set by lithography, not by the channel, so it does not follow the
     Tox scaling rule (keeps the junction floor knob-independent) *)
  let area = d.w *. (2.5 *. tech.l_drawn_ref) in
  (* weak exponential temperature activation (~2x per 25 K) *)
  let t_factor =
    Float.exp ((tech.temp_k -. Nmcache_physics.Constants.room_temperature) /. 36.0)
  in
  tech.j_junction *. area *. t_factor

let off_state_total (tech : Tech.t) d =
  (* In the off state the gate-drain overlap still tunnels at a reduced
     oxide voltage; 1/3 of Vdd captures the usual EDP-style estimate. *)
  subthreshold_off tech d +. gate tech d ~vox:(tech.vdd /. 3.0) +. junction tech d

let off_state_power (tech : Tech.t) d = off_state_total tech d *. tech.vdd

let subthreshold_swing (tech : Tech.t) =
  tech.n_swing *. Tech.thermal_voltage tech *. Float.log 10.0
