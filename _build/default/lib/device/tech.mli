(** Technology description: a BPTM-65nm-like parameter set.

    The paper characterises Berkeley Predictive Technology Model files for
    a 65 nm node over a (Vth, Tox) design grid.  This module is our
    equivalent: one record holding every process-level constant the
    compact device equations need, with a calibrated 65 nm default.  All
    lengths are metres, voltages volts, temperatures kelvin.

    The [Vth] and [Tox] *knobs* of the paper are not stored here — they
    are per-device (see {!Mosfet}); this record holds their legal ranges
    and everything that does not change when a designer re-assigns a
    component's threshold or oxide. *)

type t = {
  name : string;
  vdd : float;                (** supply voltage [V] *)
  temp_k : float;             (** operating temperature [K] *)
  l_drawn_ref : float;        (** drawn channel length at [tox_ref] [m] *)
  l_eff_ratio : float;        (** effective/drawn channel length ratio *)
  l_scaling_exponent : float; (** exponent of the Tox->channel-length
                                  scaling rule (0.5: L grows with the
                                  square root of the oxide thickness) *)
  tox_ref : float;            (** reference gate-oxide thickness [m] *)
  tox_min : float;            (** lower legal oxide thickness [m] *)
  tox_max : float;            (** upper legal oxide thickness [m] *)
  vth_min : float;            (** lower legal threshold [V] *)
  vth_max : float;            (** upper legal threshold [V] *)
  n_swing : float;            (** subthreshold swing ideality factor *)
  dibl : float;               (** DIBL coefficient [V/V] at reference L *)
  body_gamma : float;         (** linearised body-effect coefficient [V/V] *)
  vth_temp_coeff : float;     (** dVth/dT [V/K], negative *)
  mu_n : float;               (** effective electron mobility [m²/Vs] *)
  mu_p_ratio : float;         (** hole/electron mobility ratio *)
  alpha_sat : float;          (** alpha-power-law velocity-saturation index *)
  k_sat : float;              (** empirical drive-current prefactor
                                  (absorbs the V^(2−alpha) dimensional
                                  residue of the alpha-power law) *)
  j_gate_ref : float;         (** gate tunnelling density at
                                  ([tox_ref], [vdd]) [A/m²] *)
  b_gate : float;             (** gate tunnelling exponential slope [1/m] *)
  j_junction : float;         (** junction (BTBT) leakage density [A/m²] *)
  c_overlap : float;          (** gate overlap capacitance per width [F/m] *)
  c_junction : float;         (** drain junction capacitance per width [F/m] *)
  wire_r_per_m : float;       (** local-layer wire resistance [Ω/m] *)
  wire_c_per_m : float;       (** local-layer wire capacitance [F/m] *)
}

val bptm65 : t
(** The calibrated 65 nm default used throughout the paper reproduction:
    Vdd = 1.0 V, T = 300 K (the BPTM/HSPICE characterisation default —
    use {!with_temperature} with {!Nmcache_physics.Constants.hot_temperature}
    for the thermal-sensitivity extension), Tox ∈ [10 Å, 14 Å]
    (ref 12 Å), Vth ∈ [0.2 V, 0.5 V]. *)

val with_temperature : t -> temp_k:float -> t
(** Same process at a different operating temperature.  Raises
    [Invalid_argument] if [temp_k <= 0]. *)

val with_vdd : t -> vdd:float -> t
(** Same process at a different supply.  Raises [Invalid_argument] if
    [vdd <= 0]. *)

val thermal_voltage : t -> float
(** kT/q at the operating temperature [V]. *)

val cox : t -> tox:float -> float
(** Gate-oxide capacitance per area [F/m²] at oxide thickness [tox].
    Raises [Invalid_argument] if [tox <= 0]. *)

val l_drawn : t -> tox:float -> float
(** The paper's scaling rule: drawn channel length must track oxide
    thickness to preserve electrostatic integrity (DIBL):
    [l_drawn_ref · (tox / tox_ref) ^ l_scaling_exponent].  Memory-cell
    widths track L, so the cell area grows in both dimensions with
    Tox. *)

val l_eff : t -> tox:float -> float
(** Effective channel length ([l_eff_ratio] · {!l_drawn}). *)

val check_knobs : t -> vth:float -> tox:float -> unit
(** Validates that a (Vth, Tox) assignment lies in the legal design
    range; raises [Invalid_argument] otherwise. *)

val pp : Format.formatter -> t -> unit
