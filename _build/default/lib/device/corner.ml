module Units = Nmcache_physics.Units

type t = Typical | Fast | Slow

let all = [ Typical; Fast; Slow ]
let name = function Typical -> "TT" | Fast -> "FF" | Slow -> "SS"

let of_name s =
  match String.lowercase_ascii s with
  | "tt" | "typical" -> Some Typical
  | "ff" | "fast" -> Some Fast
  | "ss" | "slow" -> Some Slow
  | _ -> None

let vth_shift = function Typical -> 0.0 | Fast -> -0.040 | Slow -> 0.040

let tox_shift = function
  | Typical -> 0.0
  | Fast -> Units.angstrom (-0.3)
  | Slow -> Units.angstrom 0.3

let apply c ~vth ~tox = (vth +. vth_shift c, tox +. tox_shift c)
