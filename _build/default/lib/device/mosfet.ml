module Units = Nmcache_physics.Units

type channel = Nmos | Pmos

type t = {
  channel : channel;
  w : float;
  vth0 : float;
  tox : float;
}

let make (tech : Tech.t) ~channel ~w ~vth ~tox =
  if w <= 0.0 then invalid_arg "Mosfet.make: w <= 0";
  Tech.check_knobs tech ~vth ~tox;
  { channel; w; vth0 = vth; tox }

let nmos tech ~w ~vth ~tox = make tech ~channel:Nmos ~w ~vth ~tox
let pmos tech ~w ~vth ~tox = make tech ~channel:Pmos ~w ~vth ~tox

let l_drawn tech d = Tech.l_drawn tech ~tox:d.tox
let l_eff tech d = Tech.l_eff tech ~tox:d.tox

let vth_eff (tech : Tech.t) d ~vds ~vsb =
  d.vth0
  +. (tech.vth_temp_coeff *. (tech.temp_k -. Nmcache_physics.Constants.room_temperature))
  -. (tech.dibl *. vds)
  +. (tech.body_gamma *. vsb)

let gate_area tech d = d.w *. l_drawn tech d

let mobility (tech : Tech.t) d =
  match d.channel with Nmos -> tech.mu_n | Pmos -> tech.mu_n *. tech.mu_p_ratio

let pp fmt d =
  Format.fprintf fmt "%s(W=%.0fnm, Vth0=%.2fV, Tox=%.1fA)"
    (match d.channel with Nmos -> "nmos" | Pmos -> "pmos")
    (Units.to_nm d.w) d.vth0 (Units.to_angstrom d.tox)
