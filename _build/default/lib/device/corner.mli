(** Process corners.

    The paper's study runs at the typical corner; corners are provided so
    the sensitivity extensions (EXPERIMENTS.md X-series) can bound the
    conclusions against process variation. *)

type t =
  | Typical        (** TT *)
  | Fast           (** FF: −40 mV Vth, −0.3 Å Tox *)
  | Slow           (** SS: +40 mV Vth, +0.3 Å Tox *)

val all : t list

val name : t -> string

val of_name : string -> t option
(** Case-insensitive parse of ["tt"], ["ff"], ["ss"] (and full names). *)

val vth_shift : t -> float
(** Additive Vth shift [V]. *)

val tox_shift : t -> float
(** Additive Tox shift [m]. *)

val apply : t -> vth:float -> tox:float -> float * float
(** [apply c ~vth ~tox] is the shifted (vth, tox) pair.  The caller is
    responsible for re-validating range if required (corners may step
    slightly outside the design grid by construction). *)
