(** MOSFET instances.

    A device is a channel type, a width, and the two per-component design
    knobs of the paper — nominal threshold voltage [vth0] (extracted at
    room temperature, zero V_sb, low V_ds) and gate-oxide thickness
    [tox].  The channel length is not free: it follows the technology's
    Tox-scaling rule (see {!Tech.l_drawn}). *)

type channel = Nmos | Pmos

type t = {
  channel : channel;
  w : float;     (** gate width [m] *)
  vth0 : float;  (** nominal threshold at 300 K [V] *)
  tox : float;   (** gate-oxide thickness [m] *)
}

val make : Tech.t -> channel:channel -> w:float -> vth:float -> tox:float -> t
(** [make tech ~channel ~w ~vth ~tox] validates the knobs against the
    technology's legal range ({!Tech.check_knobs}) and [w > 0], then
    builds the device. *)

val nmos : Tech.t -> w:float -> vth:float -> tox:float -> t
val pmos : Tech.t -> w:float -> vth:float -> tox:float -> t

val l_drawn : Tech.t -> t -> float
(** Drawn channel length implied by the device's oxide thickness. *)

val l_eff : Tech.t -> t -> float
(** Effective channel length. *)

val vth_eff : Tech.t -> t -> vds:float -> vsb:float -> float
(** Operating-point threshold: [vth0] corrected for temperature
    (linear [vth_temp_coeff·(T − 300)]), DIBL ([−dibl·vds]) and the
    linearised body effect ([+body_gamma·vsb]). *)

val gate_area : Tech.t -> t -> float
(** W · L_drawn [m²] — the tunnelling area. *)

val mobility : Tech.t -> t -> float
(** Channel carrier mobility: [mu_n] for NMOS, reduced by [mu_p_ratio]
    for PMOS [m²/Vs]. *)

val pp : Format.formatter -> t -> unit
