module Constants = Nmcache_physics.Constants
module Units = Nmcache_physics.Units

type t = {
  name : string;
  vdd : float;
  temp_k : float;
  l_drawn_ref : float;
  l_eff_ratio : float;
  l_scaling_exponent : float;
  tox_ref : float;
  tox_min : float;
  tox_max : float;
  vth_min : float;
  vth_max : float;
  n_swing : float;
  dibl : float;
  body_gamma : float;
  vth_temp_coeff : float;
  mu_n : float;
  mu_p_ratio : float;
  alpha_sat : float;
  k_sat : float;
  j_gate_ref : float;
  b_gate : float;
  j_junction : float;
  c_overlap : float;
  c_junction : float;
  wire_r_per_m : float;
  wire_c_per_m : float;
}

(* Calibration notes (magnitudes targeted, see DESIGN.md §5):
   - subthreshold swing n·vT·ln10 ≈ 80 mV/dec at 300 K;
   - low-Vth NMOS off-current ≈ uA/um, high-Vth ≈ nA/um (3.7 decades
     over the 0.2-0.5 V knob range);
   - gate tunnelling spans the same ~3.7 decades over 10-14 A so that
     it surpasses subthreshold at thin oxide (the paper's premise) and
     vanishes below the high-Vth floor at 14 A: ~77 A/cm2 at 12 A / 1 V,
     one decade per ~1.1 A;
   - junction/GIDL floor ≈ 1.3 nA per minimum drain (~4 nA per SRAM
     cell), the knob-independent A0 term of the paper's model;
   - on-current ≈ 1 mA/um for (Vth = 0.25 V, Tox = 12 A). *)
let bptm65 =
  {
    name = "bptm65";
    vdd = 1.0;
    temp_k = Constants.room_temperature;
    l_drawn_ref = Units.nm 65.0;
    l_eff_ratio = 0.7;
    l_scaling_exponent = 0.5;
    tox_ref = Units.angstrom 12.0;
    tox_min = Units.angstrom 10.0;
    tox_max = Units.angstrom 14.0;
    vth_min = 0.2;
    vth_max = 0.5;
    n_swing = 1.35;
    dibl = 0.08;
    body_gamma = 0.15;
    vth_temp_coeff = -0.8e-3;
    mu_n = 0.020;
    mu_p_ratio = 0.42;
    alpha_sat = 2.0;
    k_sat = 0.14;
    j_gate_ref = 1.5e5;
    b_gate = 2.1e10;
    j_junction = 9.0e4;
    c_overlap = 3.0e-10;
    c_junction = 8.0e-10;
    wire_r_per_m = 1.6e6;
    wire_c_per_m = 2.0e-10;
  }

let with_temperature t ~temp_k =
  if temp_k <= 0.0 then invalid_arg "Tech.with_temperature: temp_k <= 0";
  { t with temp_k }

let with_vdd t ~vdd =
  if vdd <= 0.0 then invalid_arg "Tech.with_vdd: vdd <= 0";
  { t with vdd }

let thermal_voltage t = Constants.thermal_voltage ~temp_k:t.temp_k

let cox _t ~tox =
  if tox <= 0.0 then invalid_arg "Tech.cox: tox <= 0";
  Constants.eps_sio2 /. tox

let l_drawn t ~tox = t.l_drawn_ref *. ((tox /. t.tox_ref) ** t.l_scaling_exponent)
let l_eff t ~tox = t.l_eff_ratio *. l_drawn t ~tox

let check_knobs t ~vth ~tox =
  let eps = 1e-12 in
  if vth < t.vth_min -. eps || vth > t.vth_max +. eps then
    invalid_arg
      (Printf.sprintf "Tech.check_knobs: Vth %.3f V outside [%.3f, %.3f]" vth t.vth_min
         t.vth_max);
  if tox < t.tox_min -. 1e-13 || tox > t.tox_max +. 1e-13 then
    invalid_arg
      (Printf.sprintf "Tech.check_knobs: Tox %.2f A outside [%.2f, %.2f]"
         (Units.to_angstrom tox)
         (Units.to_angstrom t.tox_min)
         (Units.to_angstrom t.tox_max))

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%s: Vdd=%.2fV T=%.0fK Ldrawn=%.0fnm Tox=[%.0f..%.0f]A (ref %.0f) Vth=[%.2f..%.2f]V@]"
    t.name t.vdd t.temp_k (Units.to_nm t.l_drawn_ref)
    (Units.to_angstrom t.tox_min) (Units.to_angstrom t.tox_max)
    (Units.to_angstrom t.tox_ref) t.vth_min t.vth_max
