module Rng = Nmcache_numerics.Rng
module Constants = Nmcache_physics.Constants

let pelgrom_avt = 2.5e-9 (* 2.5 mV.um in V.m *)

let sigma_vth tech ~w ~tox =
  if w <= 0.0 then invalid_arg "Variation.sigma_vth: w <= 0";
  let l = Tech.l_drawn tech ~tox in
  pelgrom_avt /. Float.sqrt (w *. l)

let nvt (tech_n_swing : float) temp_k =
  tech_n_swing *. Constants.thermal_voltage ~temp_k

let mean_inflation ~sigma ~n_swing ~temp_k =
  let s = nvt n_swing temp_k in
  Float.exp (sigma *. sigma /. (2.0 *. s *. s))

let gaussian rng =
  (* Box-Muller; one value per call keeps the stream simple *)
  let u1 = Float.max 1e-300 (Rng.float rng) in
  let u2 = Rng.float rng in
  Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)

let mc_inflation ~rng ~sigma ~n_swing ~temp_k ~samples =
  if samples < 1 then invalid_arg "Variation.mc_inflation: samples < 1";
  let s = nvt n_swing temp_k in
  let acc = ref 0.0 in
  for _ = 1 to samples do
    let dv = sigma *. gaussian rng in
    acc := !acc +. Float.exp (-.dv /. s)
  done;
  !acc /. float_of_int samples

(* Acklam's rational approximation to the standard-normal quantile;
   |error| < 1.15e-9 over the open unit interval. *)
let normal_quantile p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Variation: percentile out of range";
  let a =
    [| -39.69683028665376; 220.9460984245205; -275.9285104469687; 138.3577518672690;
       -30.66479806614716; 2.506628277459239 |]
  in
  let b =
    [| -54.47609879822406; 161.5858368580409; -155.6989798598866; 66.80131188771972;
       -13.28068155288572 |]
  in
  let c =
    [| -0.007784894002430293; -0.3223964580411365; -2.400758277161838;
       -2.549732539343734; 4.374664141464968; 2.938163982698783 |]
  in
  let d =
    [| 0.007784695709041462; 0.3224671290700398; 2.445134137142996; 3.754408661907416 |]
  in
  let p_low = 0.02425 in
  if p < p_low then begin
    let q = Float.sqrt (-2.0 *. Float.log p) in
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
    +. c.(5)
    |> fun num ->
    num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  end
  else if p <= 1.0 -. p_low then begin
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r
    +. a.(5)
    |> fun num ->
    num *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
  end
  else begin
    let q = Float.sqrt (-2.0 *. Float.log (1.0 -. p)) in
    -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
       +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  end

let sigma_percentile_leakage ~sigma ~n_swing ~temp_k ~percentile =
  let z = normal_quantile (percentile /. 100.0) in
  let s = nvt n_swing temp_k in
  Float.exp (z *. sigma /. s)
