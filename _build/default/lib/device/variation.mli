(** Within-die threshold-voltage variation.

    Random dopant fluctuation makes each transistor's Vth a random
    variable around the design value; because subthreshold leakage is
    exponential in Vth, variation {e inflates the mean} leakage of a
    large array (Jensen's inequality) even when the Vth distribution is
    symmetric.  This module quantifies that inflation — analytically
    under the Gaussian-Vth / log-normal-leakage model, and by Monte
    Carlo as a cross-check — so the optimiser's nominal numbers can be
    corrected for a realistic process.

    The Pelgrom model sets the per-device sigma:
    σ(Vth) = A_vt / √(W·L). *)

val pelgrom_avt : float
(** Pelgrom matching coefficient for the 65 nm node [V·m]:
    2.5 mV·µm. *)

val sigma_vth : Tech.t -> w:float -> tox:float -> float
(** Per-device Vth standard deviation [V] for a transistor of width [w]
    at oxide [tox] (the channel length follows the scaling rule).
    Raises [Invalid_argument] if [w <= 0]. *)

val mean_inflation : sigma:float -> n_swing:float -> temp_k:float -> float
(** Analytic mean-leakage inflation factor of an exponential-in-Vth
    current under Gaussian Vth noise:
    E[exp(−ΔVth/(n·vT))] = exp(σ²/(2·(n·vT)²)).
    Always ≥ 1. *)

val mc_inflation :
  rng:Nmcache_numerics.Rng.t ->
  sigma:float ->
  n_swing:float ->
  temp_k:float ->
  samples:int ->
  float
(** Monte-Carlo estimate of the same factor ([samples] ≥ 1 draws of
    Gaussian ΔVth).  Converges to {!mean_inflation}; exposed so tests
    and the variation experiment can validate the closed form. *)

val gaussian : Nmcache_numerics.Rng.t -> float
(** Standard normal sample (Box–Muller); exposed for reuse. *)

val sigma_percentile_leakage :
  sigma:float -> n_swing:float -> temp_k:float -> percentile:float -> float
(** Multiplicative leakage factor at a population percentile (e.g. 99.9
    for a yield corner): exp(z_p·σ/(n·vT)) with z_p the standard-normal
    quantile.  Raises [Invalid_argument] for percentiles outside
    (0, 100). *)
