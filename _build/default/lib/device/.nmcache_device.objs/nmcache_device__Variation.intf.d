lib/device/variation.mli: Nmcache_numerics Tech
