lib/device/corner.ml: Nmcache_physics String
