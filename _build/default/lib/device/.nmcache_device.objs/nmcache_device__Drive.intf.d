lib/device/drive.mli: Mosfet Tech
