lib/device/drive.ml: Mosfet Tech
