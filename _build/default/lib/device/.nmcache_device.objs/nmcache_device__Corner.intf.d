lib/device/corner.mli:
