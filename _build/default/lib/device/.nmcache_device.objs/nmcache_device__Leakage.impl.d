lib/device/leakage.ml: Float Mosfet Nmcache_physics Tech
