lib/device/mosfet.mli: Format Tech
