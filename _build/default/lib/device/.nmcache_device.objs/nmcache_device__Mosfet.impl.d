lib/device/mosfet.ml: Format Nmcache_physics Tech
