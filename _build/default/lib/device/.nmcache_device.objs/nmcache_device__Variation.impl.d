lib/device/variation.ml: Array Float Nmcache_numerics Nmcache_physics Tech
