lib/device/tech.ml: Format Nmcache_physics Printf
