lib/device/leakage.mli: Mosfet Tech
