let boltzmann = 1.380649e-23
let electron_charge = 1.602176634e-19
let eps0 = 8.8541878128e-12
let eps_sio2 = 3.9 *. eps0
let eps_si = 11.7 *. eps0
let room_temperature = 300.0
let hot_temperature = 358.0

let thermal_voltage ~temp_k =
  if temp_k <= 0.0 then invalid_arg "Constants.thermal_voltage: temp_k <= 0";
  boltzmann *. temp_k /. electron_charge

(* Varshni relation: Eg(T) = Eg(0) - alpha T^2 / (T + beta), silicon
   parameters Eg(0) = 1.170 eV, alpha = 4.73e-4 eV/K, beta = 636 K. *)
let silicon_bandgap ~temp_k =
  if temp_k < 0.0 then invalid_arg "Constants.silicon_bandgap: temp_k < 0";
  1.170 -. (4.73e-4 *. temp_k *. temp_k /. (temp_k +. 636.0))
