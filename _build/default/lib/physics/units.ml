let angstrom x = x *. 1e-10
let nm x = x *. 1e-9
let um x = x *. 1e-6
let mm x = x *. 1e-3
let to_angstrom m = m /. 1e-10
let to_nm m = m /. 1e-9
let to_um m = m /. 1e-6

let ps x = x *. 1e-12
let ns x = x *. 1e-9
let to_ps s = s /. 1e-12
let to_ns s = s /. 1e-9

let mw x = x *. 1e-3
let uw x = x *. 1e-6
let nw x = x *. 1e-9
let to_mw w = w /. 1e-3
let to_uw w = w /. 1e-6

let pj x = x *. 1e-12
let to_pj j = j /. 1e-12
let fj x = x *. 1e-15
let to_fj j = j /. 1e-15

let ff x = x *. 1e-15
let to_ff f = f /. 1e-15

let na x = x *. 1e-9
let ua x = x *. 1e-6
let to_na a = a /. 1e-9
let to_ua a = a /. 1e-6

let cm2_of_m2 a = a *. 1e4
let m2_of_cm2 a = a *. 1e-4

(* SI prefixes from 1e-18 to 1e18, indexed so that index 6 is "" (1e0). *)
let prefixes = [| "a"; "f"; "p"; "n"; "u"; "m"; ""; "k"; "M"; "G"; "T"; "P" |]

let pp_engineering ~unit fmt v =
  if v = 0.0 then Format.fprintf fmt "0 %s" unit
  else if Float.is_nan v then Format.fprintf fmt "nan %s" unit
  else if not (Float.is_finite v) then Format.fprintf fmt "%f %s" v unit
  else begin
    let mag = Float.abs v in
    let exp3 = int_of_float (Float.floor (Float.log10 mag /. 3.0)) in
    let exp3 = max (-6) (min 5 exp3) in
    let scaled = v /. Float.pow 10.0 (float_of_int (3 * exp3)) in
    Format.fprintf fmt "%.2f %s%s" scaled prefixes.(exp3 + 6) unit
  end

let to_engineering_string ~unit v =
  Format.asprintf "%a" (pp_engineering ~unit) v
