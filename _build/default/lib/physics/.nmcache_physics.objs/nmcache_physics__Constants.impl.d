lib/physics/constants.ml:
