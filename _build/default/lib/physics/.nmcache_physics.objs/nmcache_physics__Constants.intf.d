lib/physics/constants.mli:
