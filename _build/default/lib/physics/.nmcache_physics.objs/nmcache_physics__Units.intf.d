lib/physics/units.mli: Format
