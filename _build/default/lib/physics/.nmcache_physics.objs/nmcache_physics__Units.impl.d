lib/physics/units.ml: Array Float Format
