(** Unit conversions and engineering-notation formatting.

    The code base works internally in SI units (metres, seconds, watts,
    farads, volts, amperes).  Device-level inputs are more naturally
    expressed in angstroms, nanometres or picoseconds; these helpers keep
    the conversions explicit and self-documenting at call sites. *)

(** {1 Length} *)

val angstrom : float -> float
(** [angstrom x] is [x] Å in metres. *)

val nm : float -> float
(** [nm x] is [x] nanometres in metres. *)

val um : float -> float
(** [um x] is [x] micrometres in metres. *)

val mm : float -> float
(** [mm x] is [x] millimetres in metres. *)

val to_angstrom : float -> float
(** [to_angstrom m] converts metres to angstroms. *)

val to_nm : float -> float
(** [to_nm m] converts metres to nanometres. *)

val to_um : float -> float
(** [to_um m] converts metres to micrometres. *)

(** {1 Time} *)

val ps : float -> float
(** [ps x] is [x] picoseconds in seconds. *)

val ns : float -> float
(** [ns x] is [x] nanoseconds in seconds. *)

val to_ps : float -> float
(** [to_ps s] converts seconds to picoseconds. *)

val to_ns : float -> float
(** [to_ns s] converts seconds to nanoseconds. *)

(** {1 Power and energy} *)

val mw : float -> float
(** [mw x] is [x] milliwatts in watts. *)

val uw : float -> float
(** [uw x] is [x] microwatts in watts. *)

val nw : float -> float
(** [nw x] is [x] nanowatts in watts. *)

val to_mw : float -> float
(** [to_mw w] converts watts to milliwatts. *)

val to_uw : float -> float
(** [to_uw w] converts watts to microwatts. *)

val pj : float -> float
(** [pj x] is [x] picojoules in joules. *)

val to_pj : float -> float
(** [to_pj j] converts joules to picojoules. *)

val fj : float -> float
(** [fj x] is [x] femtojoules in joules. *)

val to_fj : float -> float
(** [to_fj j] converts joules to femtojoules. *)

(** {1 Capacitance and current} *)

val ff : float -> float
(** [ff x] is [x] femtofarads in farads. *)

val to_ff : float -> float
(** [to_ff f] converts farads to femtofarads. *)

val na : float -> float
(** [na x] is [x] nanoamperes in amperes. *)

val ua : float -> float
(** [ua x] is [x] microamperes in amperes. *)

val to_na : float -> float
(** [to_na a] converts amperes to nanoamperes. *)

val to_ua : float -> float
(** [to_ua a] converts amperes to microamperes. *)

(** {1 Area} *)

val cm2_of_m2 : float -> float
(** [cm2_of_m2 a] converts square metres to square centimetres. *)

val m2_of_cm2 : float -> float
(** [m2_of_cm2 a] converts square centimetres to square metres. *)

(** {1 Formatting} *)

val pp_engineering : unit:string -> Format.formatter -> float -> unit
(** [pp_engineering ~unit fmt v] prints [v] with an SI prefix chosen so the
    mantissa falls in [1, 1000), e.g. [3.2e-10] with unit ["s"] prints as
    ["320.00 ps"].  Zero, infinities and NaN are printed literally. *)

val to_engineering_string : unit:string -> float -> string
(** String version of {!pp_engineering}. *)
