(** Physical constants used throughout the device and circuit models.

    All values are in SI units.  The module is a plain collection of
    [float] bindings; nothing here is configurable — anything that can
    legitimately vary between experiments (temperature, supply voltage,
    process parameters) lives in {!Nmcache_device}. *)

val boltzmann : float
(** Boltzmann constant [J/K]. *)

val electron_charge : float
(** Elementary charge [C]. *)

val eps0 : float
(** Vacuum permittivity [F/m]. *)

val eps_sio2 : float
(** Permittivity of silicon dioxide [F/m] (3.9 · eps0). *)

val eps_si : float
(** Permittivity of silicon [F/m] (11.7 · eps0). *)

val room_temperature : float
(** 300 K — reference temperature for parameter extraction. *)

val hot_temperature : float
(** 358 K (85 °C) — default operating temperature for leakage studies. *)

val thermal_voltage : temp_k:float -> float
(** [thermal_voltage ~temp_k] is kT/q in volts at the given temperature
    [temp_k] (kelvin).  Raises [Invalid_argument] if [temp_k <= 0]. *)

val silicon_bandgap : temp_k:float -> float
(** Temperature-dependent silicon bandgap [eV] (Varshni fit). *)
