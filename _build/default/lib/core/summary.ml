module Units = Nmcache_physics.Units
module Scheme = Nmcache_opt.Scheme
module Tuple_problem = Nmcache_opt.Tuple_problem

type verdict = {
  claim : string;
  source : string;
  holds : bool;
  evidence : string;
}

let span points =
  let xs = List.map fst points in
  List.fold_left Float.max Float.neg_infinity xs
  -. List.fold_left Float.min Float.infinity xs

let leak_ratio points =
  let ys = List.map snd points in
  List.fold_left Float.max Float.neg_infinity ys
  /. Float.max (List.fold_left Float.min Float.infinity ys) 1e-12

let verdicts ctx =
  (* --- Figure 1 ----------------------------------------------------- *)
  let series = Single_cache.figure1_series ctx in
  let get label = List.assoc label series in
  let tox_leak_lever = leak_ratio (get "Vth=400mV") in
  let vth_leak_lever = leak_ratio (get "Tox=10A") in
  let vth_delay_span = Float.max (span (get "Tox=10A")) (span (get "Tox=14A")) in
  let tox_delay_span = Float.max (span (get "Vth=200mV")) (span (get "Vth=400mV")) in
  let fig1_leak =
    {
      claim = "leakage is more sensitive to Tox than to Vth";
      source = "Figure 1 / sec.4";
      holds = tox_leak_lever > vth_leak_lever;
      evidence =
        Printf.sprintf "Tox sweep moves leakage %.0fx vs %.1fx for the Vth sweep"
          tox_leak_lever vth_leak_lever;
    }
  in
  let fig1_delay =
    {
      claim = "Vth offers the wider delay-tuning range (tune Vth, fix Tox high)";
      source = "Figure 1 / sec.4";
      holds = vth_delay_span > tox_delay_span;
      evidence =
        Printf.sprintf "delay span %.0f ps (Vth swept) vs %.0f ps (Tox swept)"
          vth_delay_span tox_delay_span;
    }
  in
  (* --- Schemes ------------------------------------------------------- *)
  let rows = Single_cache.scheme_rows ctx () in
  let ordering_ok = ref true and ii_close = ref true and conservative = ref true in
  let worst_gap = ref 1.0 in
  List.iter
    (fun (row : Single_cache.scheme_row) ->
      match
        ( List.assoc Scheme.Independent row.Single_cache.results,
          List.assoc Scheme.Split row.Single_cache.results,
          List.assoc Scheme.Uniform row.Single_cache.results )
      with
      | Some i, Some ii, Some iii ->
        if not (i.Scheme.leak_w <= ii.Scheme.leak_w *. 1.0001) then ordering_ok := false;
        if not (ii.Scheme.leak_w <= iii.Scheme.leak_w *. 1.0001) then ordering_ok := false;
        let gap = ii.Scheme.leak_w /. i.Scheme.leak_w in
        if gap > !worst_gap then worst_gap := gap;
        if gap > 2.0 then ii_close := false;
        if not (Single_cache.array_is_conservative ii.Scheme.assignment) then
          conservative := false
      | _ -> ())
    rows;
  let schemes_order =
    {
      claim = "scheme III is the worst, I the best, II only slightly behind I";
      source = "sec.4";
      holds = !ordering_ok && !ii_close;
      evidence = Printf.sprintf "I <= II <= III at every budget; worst II/I = %.2f" !worst_gap;
    }
  in
  let schemes_cons =
    {
      claim = "optimal assignments give the cell array high Vth and thick Tox";
      source = "sec.4 / sec.5";
      holds = !conservative;
      evidence = "array knob >= every peripheral knob in all scheme-II optima";
    }
  in
  (* --- L2 sizing ------------------------------------------------------ *)
  let sweep3 = Two_level.l2_sweep ctx ~scheme:Scheme.Uniform () in
  let feasible =
    List.filter (fun (r : Two_level.l2_row) -> r.Two_level.total_leak <> None)
      sweep3.Two_level.rows
  in
  let best = Two_level.best_l2_size sweep3 in
  let largest =
    List.fold_left (fun acc (r : Two_level.l2_row) -> max acc r.Two_level.l2_size) 0
      sweep3.Two_level.rows
  in
  let smallest_feasible =
    match feasible with r :: _ -> Some r.Two_level.l2_size | [] -> None
  in
  let l2_bigger =
    {
      claim = "with one pair per L2, bigger L2s leak less at iso-AMAT...";
      source = "sec.5";
      holds =
        (match (best, smallest_feasible) with
        | Some b, Some s -> b >= s
        | _ -> false);
      evidence =
        (match (best, smallest_feasible) with
        | Some b, Some s ->
          Printf.sprintf "optimum %d KB >= smallest feasible %d KB" (b / 1024) (s / 1024)
        | _ -> "no feasible size");
    }
  in
  let l2_turnover =
    {
      claim = "...but the largest L2 is not the best (leakage outgrows the miss payoff)";
      source = "sec.5";
      holds = (match best with Some b -> b < largest | None -> false);
      evidence =
        (match best with
        | Some b -> Printf.sprintf "optimum at %d KB, below the largest %d KB" (b / 1024) (largest / 1024)
        | None -> "no feasible size");
    }
  in
  let sweep2 = Two_level.l2_sweep ctx ~scheme:Scheme.Split () in
  let small_gain =
    List.fold_left2
      (fun acc (r3 : Two_level.l2_row) (r2 : Two_level.l2_row) ->
        match (acc, r3.Two_level.total_leak, r2.Two_level.total_leak) with
        | None, Some a, Some b when b < a *. 0.999 -> Some (r2.Two_level.l2_size, 1.0 -. (b /. a))
        | _ -> acc)
      None sweep3.Two_level.rows sweep2.Two_level.rows
  in
  let l2_two_pair =
    {
      claim = "per-component pairs make aggressive peripheries beat growing the array";
      source = "sec.5";
      holds = small_gain <> None;
      evidence =
        (match small_gain with
        | Some (size, g) ->
          Printf.sprintf "at %d KB the two-pair design leaks %.0f%% less" (size / 1024)
            (100.0 *. g)
        | None -> "no size where two pairs improved");
    }
  in
  (* --- L1 sizing ------------------------------------------------------- *)
  let l1 = Two_level.l1_sweep_rows ctx () in
  let l1_best = Two_level.best_l1_size l1 in
  let l1_small =
    {
      claim = "a small L1 minimises total leakage under a fixed L2";
      source = "sec.5";
      holds = (match l1_best with Some b -> b <= 16 * 1024 | None -> false);
      evidence =
        (match l1_best with
        | Some b -> Printf.sprintf "optimum L1 = %d KB" (b / 1024)
        | None -> "no feasible size");
    }
  in
  (* --- Figure 2 ---------------------------------------------------------- *)
  let curves = Tuple_study.figure2_curves ctx in
  let curve nv nt =
    List.find_map
      (fun ((s : Tuple_problem.spec), pts) ->
        if s.Tuple_problem.n_vth = nv && s.Tuple_problem.n_tox = nt then Some pts else None)
      curves
  in
  let all_amats =
    List.concat_map
      (fun (_, pts) -> List.map (fun (p : Tuple_problem.point) -> p.Tuple_problem.amat) pts)
      curves
  in
  let loose = List.fold_left Float.max Float.neg_infinity all_amats in
  let e nv nt =
    Option.bind (curve nv nt) (fun pts -> Tuple_study.energy_at pts ~amat:loose)
  in
  let fig2_best, fig2_suff, fig2_vth =
    match (e 3 2, e 2 2, e 2 1, e 1 2) with
    | Some e23, Some e22, Some e12, Some e21 ->
      ( {
          claim = "2 Tox + 3 Vth achieves the lowest total energy";
          source = "Figure 2";
          holds = e23 <= e22 *. 1.0001 && e23 <= e12 && e23 <= e21;
          evidence =
            Printf.sprintf "at %.0f ps: 2T3V %.1f pJ vs 2T2V %.1f pJ" (Units.to_ps loose)
              (Units.to_pj e23) (Units.to_pj e22);
        },
        {
          claim = "dual Tox + dual Vth is sufficient (within noise of the best)";
          source = "Figure 2";
          holds = e22 <= e23 *. 1.15;
          evidence = Printf.sprintf "2T2V within %.1f%% of 2T3V" (100.0 *. ((e22 /. e23) -. 1.0));
        },
        {
          claim = "a single Tox with dual Vth beats dual Tox with single Vth";
          source = "Figure 2 / sec.5";
          holds = e12 <= e21 *. 1.02;
          evidence =
            Printf.sprintf "1T2V %.1f pJ vs 2T1V %.1f pJ at the relaxed end"
              (Units.to_pj e12) (Units.to_pj e21);
        } )
    | _ ->
      let missing =
        { claim = "figure-2 frontiers cover the loose end"; source = "Figure 2";
          holds = false; evidence = "a frontier was empty" }
      in
      (missing, missing, missing)
  in
  [
    fig1_leak; fig1_delay; schemes_order; schemes_cons; l2_bigger; l2_turnover;
    l2_two_pair; l1_small; fig2_best; fig2_suff; fig2_vth;
  ]

let run ctx =
  let vs = verdicts ctx in
  let rows =
    List.map
      (fun v ->
        [ (if v.holds then "PASS" else "FAIL"); v.source; v.claim; v.evidence ])
      vs
  in
  let n_pass = List.length (List.filter (fun v -> v.holds) vs) in
  [
    Report.table ~title:"Paper-claim verdicts (computed live)"
      ~columns:[ "verdict"; "source"; "claim"; "evidence" ]
      ~rows;
    Report.note
      (Printf.sprintf "%d of %d claims reproduced on this run" n_pass (List.length vs));
  ]
