(** Extension studies beyond the paper (DESIGN.md X-series): each bounds
    or stresses one of the paper's conclusions inside the same
    framework. *)

val knob_ablation : Context.t -> Report.artefact list
(** X1 — optimise the 16 KB cache with Vth only (Tox pinned at the
    reference), Tox only (Vth pinned), or both knobs; quantifies "Vth
    is the better design knob". *)

val temperature_sensitivity : Context.t -> Report.artefact list
(** X2 — re-characterise and re-optimise at 300 K / 330 K / 358 K /
    383 K; subthreshold leakage is exponential in T, gate tunnelling is
    not, so the optimal assignments shift with temperature. *)

val policy_ablation : Context.t -> Report.artefact list
(** X3 — miss rates under LRU / FIFO / Random / PLRU; bounds how much
    the Section-5 conclusions depend on the replacement policy the
    miss-rate tables assume. *)

val per_workload_tuple : Context.t -> Report.artefact list
(** X4 — the Figure-2 study run per benchmark stand-in instead of on
    the aggregate. *)

val fit_audit : Context.t -> Report.artefact list
(** X5 — compact-model quality: per component, fit R² and maximum
    relative error on a dense off-training grid versus the circuit
    evaluator. *)
