module Units = Nmcache_physics.Units
module Grid = Nmcache_opt.Grid
module Tuple_problem = Nmcache_opt.Tuple_problem
module System = Nmcache_energy.System
module Main_memory = Nmcache_energy.Main_memory
module Missrate = Nmcache_workload.Missrate

let system_for ctx ~workloads =
  let curve =
    Missrate.averaged_l2_curve ~seed:ctx.Context.seed ~workloads
      ~l1_size:ctx.Context.l1_size ~l2_sizes:Context.l2_sizes ~n:ctx.Context.n_sim ()
  in
  let m2 =
    let rec find i =
      if curve.Missrate.l2_sizes.(i) = ctx.Context.l2_size then
        curve.Missrate.l2_local_rates.(i)
      else find (i + 1)
    in
    find 0
  in
  System.make
    ~l1:(Context.fitted ctx (Context.l1_config ctx ()))
    ~l2:(Context.fitted ctx (Context.l2_config ctx ()))
    ~mem:ctx.Context.mem ~m1:curve.Missrate.l1_miss_rate ~m2

let system ctx = system_for ctx ~workloads:ctx.Context.workloads

(* Flat per-group tables over the grid's knobs for the hot eval path. *)
let build_eval sys ~grid =
  let knobs = Grid.knobs grid in
  let n = Array.length knobs in
  let group_arrays group =
    let d = Array.make n 0.0 and l = Array.make n 0.0 and e = Array.make n 0.0 in
    Array.iteri
      (fun i k ->
        let ge = System.eval_group sys group k in
        d.(i) <- ge.System.delay;
        l.(i) <- ge.System.leak_w;
        e.(i) <- ge.System.dyn_energy)
      knobs;
    (d, l, e)
  in
  let d0, l0, e0 = group_arrays System.L1_cell in
  let d1, l1, e1 = group_arrays System.L1_periph in
  let d2, l2, e2 = group_arrays System.L2_cell in
  let d3, l3, e3 = group_arrays System.L2_periph in
  let m1 = System.m1 sys and m2 = System.m2 sys in
  let mem = System.mem sys in
  let t_mem = mem.Main_memory.t_access in
  let e_mem = mem.Main_memory.e_access in
  let standby = mem.Main_memory.standby_w in
  fun (idx : int array) ->
    let i0 = idx.(0) and i1 = idx.(1) and i2 = idx.(2) and i3 = idx.(3) in
    let t_l1 = d0.(i0) +. d1.(i1) in
    let t_l2 = d2.(i2) +. d3.(i3) in
    let amat = t_l1 +. (m1 *. (t_l2 +. (m2 *. t_mem))) in
    let dyn = e0.(i0) +. e1.(i1) +. (m1 *. (e2.(i2) +. e3.(i3) +. (m2 *. e_mem))) in
    let leak = l0.(i0) +. l1.(i1) +. l2.(i2) +. l3.(i3) +. standby in
    (amat, dyn +. (leak *. amat))

let figure2_curves ?workloads ctx =
  let workloads = Option.value workloads ~default:ctx.Context.workloads in
  let sys = system_for ctx ~workloads in
  let grid = ctx.Context.coarse_grid in
  let eval = build_eval sys ~grid in
  Tuple_problem.curves ~grid ~n_groups:4 ~eval ~specs:Tuple_problem.figure2_specs

let energy_at points ~amat =
  List.fold_left
    (fun acc (p : Tuple_problem.point) ->
      if p.Tuple_problem.amat <= amat then
        match acc with
        | Some best when best <= p.Tuple_problem.energy -> acc
        | _ -> Some p.Tuple_problem.energy
      else acc)
    None points

let figure2 ctx =
  let curves = figure2_curves ctx in
  let series =
    List.map
      (fun (spec, points) ->
        {
          Report.label = Tuple_problem.spec_name spec;
          points =
            List.map
              (fun (p : Tuple_problem.point) ->
                (Units.to_ps p.Tuple_problem.amat, Units.to_pj p.Tuple_problem.energy))
              points;
        })
      curves
  in
  let chart =
    Report.chart ~title:"Figure 2: (Tox, Vth) tuple problem — energy vs AMAT"
      ~x_label:"AMAT (ps)" ~y_label:"total energy per access (pJ)" series
  in
  (* cross-sections at fixed AMAT targets *)
  let amats =
    let all = List.concat_map (fun (_, pts) -> List.map (fun (p : Tuple_problem.point) -> p.Tuple_problem.amat) pts) curves in
    match all with
    | [] -> [||]
    | _ ->
      let lo = List.fold_left Float.min Float.infinity all in
      let hi = List.fold_left Float.max Float.neg_infinity all in
      Array.init 5 (fun i -> lo +. ((hi -. lo) *. (0.15 +. (0.175 *. float_of_int i))))
  in
  let rows =
    Array.to_list
      (Array.map
         (fun amat ->
           Printf.sprintf "%.0f" (Units.to_ps amat)
           :: List.map
                (fun (_, points) ->
                  match energy_at points ~amat with
                  | None -> "-"
                  | Some e -> Printf.sprintf "%.1f" (Units.to_pj e))
                curves)
         amats)
  in
  let table =
    Report.table ~title:"Energy (pJ) at fixed AMAT targets"
      ~columns:
        ("AMAT (ps)" :: List.map (fun (s, _) -> Tuple_problem.spec_name s) curves)
      ~rows
  in
  [
    chart;
    table;
    Report.note
      "Paper (sec.5): best is 2 Tox + 3 Vth; 2 Tox + 2 Vth within noise; a single Tox \
       with dual Vth beats dual Tox with single Vth (Vth is the stronger knob).";
  ]
