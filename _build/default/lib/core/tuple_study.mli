(** The Figure 2 experiment: how many distinct Tox and Vth values does a
    process need for near-optimal total energy of the L1 + L2 + memory
    system?

    For each (n_tox, n_vth) budget the study enumerates every choice of
    values from the design grid and every assignment of the four knob
    groups (L1/L2 × cell/periphery) to the chosen pairs, and reports the
    Pareto frontier of (AMAT, total energy per access). *)

val system : Context.t -> Nmcache_energy.System.t
(** The default L1 = 16 KB / L2 = 1 MB system with simulated miss
    rates (memoised via {!Context.fitted} and the workload layer). *)

val figure2_curves :
  ?workloads:string list ->
  Context.t ->
  (Nmcache_opt.Tuple_problem.spec * Nmcache_opt.Tuple_problem.point list) list
(** One Pareto curve per Figure-2 budget, on the context's coarse grid.
    [workloads] overrides the miss-rate aggregation set (used by the
    per-workload ablation). *)

val energy_at : Nmcache_opt.Tuple_problem.point list -> amat:float -> float option
(** Best energy achievable at AMAT ≤ [amat] on a frontier (step
    interpolation); [None] when the frontier has no feasible point. *)

val figure2 : Context.t -> Report.artefact list
