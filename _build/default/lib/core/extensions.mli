(** Second wave of extension studies (X6–X10): process variation, supply
    scaling, the drowsy-cache alternative, optimiser cross-checks and
    architectural-geometry sweeps. *)

val variation_study : Context.t -> Report.artefact list
(** X6 — within-die Vth variation: Pelgrom sigma per device class,
    analytic vs Monte-Carlo mean-leakage inflation of the 16 KB cache,
    and the yield-corner (99.9 %) device factor. *)

val vdd_sensitivity : Context.t -> Report.artefact list
(** X7 — supply scaling: re-characterise at 0.9/1.0/1.1 V; lower Vdd
    slows the cache but cuts both leakage power and dynamic energy. *)

val drowsy_comparison : Context.t -> Report.artefact list
(** X8 — circuit-level drowsy standby vs process-knob assignment on the
    1 MB L2: leakage and access-time cost of each, and of the
    combination. *)

val anneal_crosscheck : Context.t -> Report.artefact list
(** X9 — simulated annealing vs the exact DP on Scheme-I problems:
    optimality gap across budgets. *)

val geometry_sweeps : Context.t -> Report.artefact list
(** X10 — L1 associativity and block-size sweeps: miss rate
    (simulation) and leakage/delay (geometry model) together. *)

val prefetch_study : Context.t -> Report.artefact list
(** X11 — next-line prefetching vs L2 size: does stream prefetching
    change the L2-sizing conclusion?  Reports per-size L2 local miss
    rates with prefetch degrees 0/1/2 and the prefetcher's accuracy. *)
