(** The claim checker: every qualitative claim the paper makes,
    evaluated live against the reproduction and reported as a verdict
    table.  This is EXPERIMENTS.md's "status" column computed rather
    than asserted, and it doubles as the top-level integration test. *)

type verdict = {
  claim : string;        (** the paper's statement *)
  source : string;       (** where in the paper it lives *)
  holds : bool;
  evidence : string;     (** the measured numbers behind the verdict *)
}

val verdicts : Context.t -> verdict list
(** Evaluate all claims (runs every underlying experiment; memoised
    inputs make repeat calls cheap). *)

val run : Context.t -> Report.artefact list
(** The verdicts as a table artefact. *)
