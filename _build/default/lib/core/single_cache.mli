(** Section 4 experiments: single-cache leakage optimisation.

    - {!figure1}: the fixed-Vth vs fixed-Tox trade-off curves for a
      16 KB cache (paper Figure 1);
    - {!scheme_table}: minimum leakage under Schemes I/II/III across a
      range of delay constraints, with the optimal assignments (the
      in-text result T1 of DESIGN.md). *)

val figure1_series :
  Context.t -> (string * (float * float) list) list
(** Four series [(label, [(access_ps, leakage_mW)])] in the paper's
    order: Tox=10 Å, Tox=14 Å (Vth swept), Vth=0.2 V, Vth=0.4 V (Tox
    swept); scheme III assignment, fitted models. *)

val figure1 : Context.t -> Report.artefact list

type scheme_row = {
  budget : float;   (** delay constraint [s] *)
  results : (Nmcache_opt.Scheme.t * Nmcache_opt.Scheme.result option) list;
}

val scheme_rows : Context.t -> ?budgets:float array -> unit -> scheme_row list
(** Default budgets: 9 points spanning [fastest·1.02, slowest·0.98]. *)

val scheme_table : Context.t -> Report.artefact list

val array_is_conservative : Nmcache_geometry.Component.assignment -> bool
(** The paper's §4 observation: the cell array's Vth and Tox are at
    least as high as every peripheral component's. *)
