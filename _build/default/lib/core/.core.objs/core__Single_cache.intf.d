lib/core/single_cache.mli: Context Nmcache_geometry Nmcache_opt Report
