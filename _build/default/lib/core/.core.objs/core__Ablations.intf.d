lib/core/ablations.mli: Context Report
