lib/core/experiments.mli: Context Report
