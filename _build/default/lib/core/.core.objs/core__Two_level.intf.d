lib/core/two_level.mli: Context Nmcache_opt Report
