lib/core/summary.ml: Float List Nmcache_opt Nmcache_physics Option Printf Report Single_cache Tuple_study Two_level
