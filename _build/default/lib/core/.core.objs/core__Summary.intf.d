lib/core/summary.mli: Context Report
