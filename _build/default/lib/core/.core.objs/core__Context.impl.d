lib/core/context.ml: Hashtbl Nmcache_device Nmcache_energy Nmcache_fit Nmcache_geometry Nmcache_opt Nmcache_physics Nmcache_workload Option Printf
