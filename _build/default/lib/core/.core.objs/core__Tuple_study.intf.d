lib/core/tuple_study.mli: Context Nmcache_energy Nmcache_opt Report
