lib/core/context.mli: Nmcache_device Nmcache_energy Nmcache_fit Nmcache_geometry Nmcache_opt
