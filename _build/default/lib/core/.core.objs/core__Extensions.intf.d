lib/core/extensions.mli: Context Report
