lib/core/two_level.ml: Array Context Format List Nmcache_energy Nmcache_fit Nmcache_geometry Nmcache_opt Nmcache_physics Nmcache_workload Option Printf Report
