lib/core/experiments.ml: Ablations Context Extensions List Report Single_cache Summary Tuple_study Two_level
