lib/core/single_cache.ml: Array Context Float List Nmcache_fit Nmcache_geometry Nmcache_opt Nmcache_physics Printf Report
