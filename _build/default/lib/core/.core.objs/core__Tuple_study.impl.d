lib/core/tuple_study.ml: Array Context Float List Nmcache_energy Nmcache_opt Nmcache_physics Nmcache_workload Option Printf Report
