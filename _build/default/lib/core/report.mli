(** Result artefacts: the tables and figure series experiments produce,
    with plain-text rendering for the CLI and bench harness. *)

type table = {
  title : string;
  columns : string list;
  rows : string list list;
}

type series = {
  label : string;
  points : (float * float) list;  (** (x, y), ascending x *)
}

type chart = {
  chart_title : string;
  x_label : string;
  y_label : string;
  series : series list;
}

type artefact =
  | Table of table
  | Chart of chart
  | Note of string

val table : title:string -> columns:string list -> rows:string list list -> artefact
(** Raises [Invalid_argument] if any row's width differs from the
    header's. *)

val chart :
  title:string -> x_label:string -> y_label:string -> series list -> artefact

val note : string -> artefact

val pp_artefact : Format.formatter -> artefact -> unit
(** Tables render with aligned columns; charts as one block per series
    listing (x, y) pairs — consumable by plotting scripts and diffable
    in EXPERIMENTS.md. *)

val render : artefact list -> string

val print : artefact list -> unit
(** [render] to stdout. *)

val to_csv : artefact -> string option
(** CSV rendering: tables become header + rows, charts become
    [series,x,y] rows; notes have no CSV form ([None]).  Cells
    containing commas or quotes are quoted per RFC 4180. *)

val render_csv : artefact list -> string
(** Concatenated CSV blocks (blank-line separated) of the artefacts
    that have a CSV form. *)

val fmt_f : ?decimals:int -> float -> string
(** Fixed-point float cell helper (default 2 decimals). *)

val fmt_pct : float -> string
(** Render a fraction as a percentage with 2 decimals. *)
