type table = {
  title : string;
  columns : string list;
  rows : string list list;
}

type series = {
  label : string;
  points : (float * float) list;
}

type chart = {
  chart_title : string;
  x_label : string;
  y_label : string;
  series : series list;
}

type artefact =
  | Table of table
  | Chart of chart
  | Note of string

let table ~title ~columns ~rows =
  let w = List.length columns in
  List.iteri
    (fun i row ->
      if List.length row <> w then
        invalid_arg (Printf.sprintf "Report.table %S: row %d has wrong width" title i))
    rows;
  Table { title; columns; rows }

let chart ~title ~x_label ~y_label series =
  Chart { chart_title = title; x_label; y_label; series }

let note s = Note s

let pp_table fmt (t : table) =
  let all_rows = t.columns :: t.rows in
  let n = List.length t.columns in
  let widths = Array.make n 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all_rows;
  let pp_row row =
    Format.fprintf fmt "  ";
    List.iteri
      (fun i cell ->
        Format.fprintf fmt "%-*s" (widths.(i) + 2) cell)
      row;
    Format.fprintf fmt "@,"
  in
  Format.fprintf fmt "@[<v>== %s ==@," t.title;
  pp_row t.columns;
  let rule = String.concat "" (List.init n (fun i -> String.make (widths.(i) + 2) '-')) in
  Format.fprintf fmt "  %s@," rule;
  List.iter pp_row t.rows;
  Format.fprintf fmt "@]"

let pp_chart fmt (c : chart) =
  Format.fprintf fmt "@[<v>== %s ==@,(x: %s, y: %s)@," c.chart_title c.x_label c.y_label;
  List.iter
    (fun s ->
      Format.fprintf fmt "series %S:@," s.label;
      List.iter (fun (x, y) -> Format.fprintf fmt "  %.4g\t%.4g@," x y) s.points)
    c.series;
  Format.fprintf fmt "@]"

let pp_artefact fmt = function
  | Table t -> pp_table fmt t
  | Chart c -> pp_chart fmt c
  | Note s -> Format.fprintf fmt "@[<v>-- %s@]" s

let render artefacts =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  List.iter (fun a -> Format.fprintf fmt "%a@.@." pp_artefact a) artefacts;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let print artefacts = print_string (render artefacts)

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv = function
  | Note _ -> None
  | Table t ->
    let line row = String.concat "," (List.map csv_cell row) in
    Some (String.concat "\n" (line t.columns :: List.map line t.rows) ^ "\n")
  | Chart c ->
    let rows =
      List.concat_map
        (fun s ->
          List.map
            (fun (x, y) -> Printf.sprintf "%s,%.6g,%.6g" (csv_cell s.label) x y)
            s.points)
        c.series
    in
    Some (String.concat "\n" (("series," ^ c.x_label ^ "," ^ c.y_label) :: rows) ^ "\n")

let render_csv artefacts =
  String.concat "\n" (List.filter_map to_csv artefacts)

let fmt_f ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let fmt_pct v = Printf.sprintf "%.2f%%" (100.0 *. v)
