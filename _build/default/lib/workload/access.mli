(** A single memory reference. *)

type t = {
  addr : int;     (** byte address *)
  write : bool;
}

val read : int -> t
val write : int -> t
val pp : Format.formatter -> t -> unit
