(** Miss-rate tables: the interface between architectural simulation and
    the energy/optimisation layers.

    Two paths are provided:
    - {!simulate}: exact two-level set-associative simulation of one
      (L1 size, L2 size) pair;
    - {!l2_curve}: one L1 simulation whose miss stream is profiled with
      {!Nmcache_cachesim.Mattson}, yielding the L2 miss rate for {e all}
      L2 sizes in a single pass (fully-associative LRU approximation —
      excellent for the ≥ 8-way L2s studied here).

    Results are memoised per (workload, parameters) within the process,
    so experiments and benches can re-query freely. *)

type point = {
  l1_miss : float;     (** local L1 miss rate *)
  l2_local : float;    (** L2 misses / L2 accesses *)
  l2_global : float;   (** L2 misses / L1 accesses *)
}

val simulate :
  ?l1_assoc:int ->
  ?l2_assoc:int ->
  ?block:int ->
  ?policy:Nmcache_cachesim.Replacement.t ->
  ?seed:int64 ->
  workload:string ->
  l1_size:int ->
  l2_size:int ->
  n:int ->
  unit ->
  point
(** Exact simulation of [n] accesses (defaults: L1 4-way, L2 8-way,
    64 B blocks, LRU).  Raises [Invalid_argument] for unknown workloads
    or invalid cache shapes. *)

type l2_curve = {
  workload : string;
  l1_size : int;
  l1_miss_rate : float;
  l2_sizes : int array;
  l2_local_rates : float array;
}

val l2_curve :
  ?l1_assoc:int ->
  ?block:int ->
  ?seed:int64 ->
  workload:string ->
  l1_size:int ->
  l2_sizes:int array ->
  n:int ->
  unit ->
  l2_curve
(** Single-pass L2 miss-ratio curve over the given sizes. *)

val averaged_l2_curve :
  ?l1_assoc:int ->
  ?block:int ->
  ?seed:int64 ->
  workloads:string list ->
  l1_size:int ->
  l2_sizes:int array ->
  n:int ->
  unit ->
  l2_curve
(** Arithmetic mean of per-workload curves — the paper's "results from
    various benchmark suites are collected".  The [workload] field is
    the concatenation of the names.  Raises [Invalid_argument] on an
    empty workload list. *)

val l1_sweep :
  ?l1_assoc:int ->
  ?block:int ->
  ?policy:Nmcache_cachesim.Replacement.t ->
  ?seed:int64 ->
  workload:string ->
  l1_sizes:int array ->
  n:int ->
  unit ->
  float array
(** Local L1 miss rate per size (L1 miss rates don't depend on L2). *)

val clear_cache : unit -> unit
(** Drop all memoised results (tests use this to bound memory). *)
