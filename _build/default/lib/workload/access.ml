type t = {
  addr : int;
  write : bool;
}

let read addr = { addr; write = false }
let write addr = { addr; write = true }

let pp fmt t = Format.fprintf fmt "%s 0x%x" (if t.write then "W" else "R") t.addr
