(** Building blocks for synthetic workloads: stateful walkers over
    address regions with controlled temporal and spatial locality. *)

val locality_walker :
  rng:Nmcache_numerics.Rng.t ->
  base:int ->
  bytes:int ->
  p_continue:float ->
  unit ->
  unit ->
  Access.t
(** A cursor over [base, base+bytes): with probability [p_continue] the
    next access is the next word (sequential run, wrapping); otherwise
    the cursor jumps to a uniformly random word.  Models loop/stack
    locality.  Raises [Invalid_argument] on a region smaller than one
    word. *)

val zipf_blocks :
  rng:Nmcache_numerics.Rng.t ->
  base:int ->
  bytes:int ->
  block:int ->
  s:float ->
  run:int ->
  unit ->
  unit ->
  Access.t
(** Block-grained Zipf popularity over the region: each visit picks a
    block by Zipf rank (rank→place scrambled so popularity is not
    spatially correlated) and scans [run] consecutive words inside it.
    Models heap/object locality with a long tail.  Raises
    [Invalid_argument] if [block] doesn't divide the region or is not a
    multiple of 8, or [run < 1]. *)

val stream :
  base:int -> bytes:int -> stride:int -> unit -> unit -> Access.t
(** Sequential scan with wrap-around — array streaming. *)
