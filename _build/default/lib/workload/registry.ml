type entry = {
  name : string;
  description : string;
  build : int64 -> Gen.t;
}

let all =
  [
    {
      name = "spec2000-mix";
      description = "SPEC2000-like blend: hot loop set, Zipf heap, stream, cold chase";
      build = (fun seed -> Suites.spec_like ~variant:Suites.Mix ~seed ());
    };
    {
      name = "spec2000-gcc";
      description = "control-heavy SPECint-like: small working set";
      build = (fun seed -> Suites.spec_like ~variant:Suites.Gcc ~seed ());
    };
    {
      name = "spec2000-mcf";
      description = "pointer-chasing SPECint-like: large sparse footprint";
      build = (fun seed -> Suites.spec_like ~variant:Suites.Mcf ~seed ());
    };
    {
      name = "spec2000-art";
      description = "streaming SPECfp-like";
      build = (fun seed -> Suites.spec_like ~variant:Suites.Art ~seed ());
    };
    {
      name = "specweb";
      description = "SPECWEB-like: Zipf-popular objects scanned sequentially";
      build = (fun seed -> Suites.specweb_like ~seed ());
    };
    {
      name = "tpcc";
      description = "TPC-C-like: B-tree walks over a large footprint + log writes";
      build = (fun seed -> Suites.tpcc_like ~seed ());
    };
    {
      name = "spec2000-phased";
      description = "phase-switching SPEC-like composite (gcc/mcf/art phases)";
      build = (fun seed -> Phased.spec_phased ~seed ());
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all
let names = List.map (fun e -> e.name) all
let default_seed = 42L

let build ?(seed = default_seed) name =
  match find name with
  | Some e -> e.build seed
  | None -> invalid_arg ("Registry.build: unknown workload " ^ name)

let headline = [ "spec2000-mix"; "specweb"; "tpcc" ]
