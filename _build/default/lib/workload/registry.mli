(** Named workload registry used by experiments and the CLI. *)

type entry = {
  name : string;
  description : string;
  build : int64 -> Gen.t;  (** seed ↦ generator *)
}

val all : entry list
(** The benchmark stand-ins: spec2000-{mix,gcc,mcf,art,phased}, specweb,
    tpcc. *)

val find : string -> entry option
val names : string list

val default_seed : int64
(** Seed used by every experiment unless overridden (42). *)

val build : ?seed:int64 -> string -> Gen.t
(** [build name] instantiates a registered workload.  Raises
    [Invalid_argument] on an unknown name. *)

val headline : string list
(** The workloads aggregated in the paper-reproduction experiments:
    spec2000-mix, specweb, tpcc. *)
