module Rng = Nmcache_numerics.Rng
module Zipf = Nmcache_numerics.Zipf

let word = 8

let locality_walker ~rng ~base ~bytes ~p_continue () =
  if bytes < word then invalid_arg "Regions.locality_walker: region too small";
  let words = bytes / word in
  let cursor = ref (Rng.int rng ~bound:words) in
  fun () ->
    if Rng.bernoulli rng ~p:p_continue then cursor := (!cursor + 1) mod words
    else cursor := Rng.int rng ~bound:words;
    Access.read (base + (word * !cursor))

(* Multiplicative scramble so that popular ranks are spread across the
   region instead of clustered at its start. *)
let scramble rank n = rank * 2654435761 mod n

let zipf_blocks ~rng ~base ~bytes ~block ~s ~run () =
  if block < word || block mod word <> 0 then invalid_arg "Regions.zipf_blocks: bad block";
  if bytes mod block <> 0 || bytes / block < 1 then
    invalid_arg "Regions.zipf_blocks: block must divide region";
  if run < 1 then invalid_arg "Regions.zipf_blocks: run < 1";
  let n_blocks = bytes / block in
  let zipf = Zipf.create ~n:n_blocks ~s in
  let words_per_block = block / word in
  let current = ref 0 in
  let remaining = ref 0 in
  let offset = ref 0 in
  fun () ->
    if !remaining = 0 then begin
      let rank = Zipf.sample zipf rng in
      current := scramble rank n_blocks;
      offset := Rng.int rng ~bound:(max 1 (words_per_block - run + 1));
      remaining := run
    end;
    let addr = base + (!current * block) + (word * !offset) in
    incr offset;
    if !offset >= words_per_block then offset := 0;
    decr remaining;
    Access.read addr

let stream ~base ~bytes ~stride () =
  if stride <= 0 || bytes < stride then invalid_arg "Regions.stream: bad stride/region";
  let cursor = ref 0 in
  fun () ->
    let addr = base + !cursor in
    cursor := (!cursor + stride) mod bytes;
    Access.read addr
