module Rng = Nmcache_numerics.Rng

type t = {
  name : string;
  next : unit -> Access.t;
}

let make ~name next = { name; next }
let name t = t.name
let next t = t.next ()

let take t n =
  if n < 0 then invalid_arg "Gen.take: n < 0";
  Array.init n (fun _ -> t.next ())

let iter t n f =
  for _ = 1 to n do
    f (t.next ())
  done

let mix ~name ~rng parts =
  if parts = [] then invalid_arg "Gen.mix: empty";
  List.iter (fun (w, _) -> if w <= 0.0 then invalid_arg "Gen.mix: non-positive weight") parts;
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 parts in
  let parts = Array.of_list parts in
  let pick () =
    let u = Rng.float rng *. total in
    let rec go i acc =
      if i >= Array.length parts - 1 then snd parts.(Array.length parts - 1)
      else begin
        let w, g = parts.(i) in
        if u < acc +. w then g else go (i + 1) (acc +. w)
      end
    in
    go 0 0.0
  in
  make ~name (fun () -> next (pick ()))

let with_write_fraction ~rng ~p t =
  let p = Float.min 1.0 (Float.max 0.0 p) in
  make ~name:t.name (fun () ->
      let a = t.next () in
      { a with Access.write = Rng.bernoulli rng ~p })

let sequential ?(start = 0) ?(stride = 64) ~name () =
  let cursor = ref start in
  make ~name (fun () ->
      let a = Access.read !cursor in
      cursor := !cursor + stride;
      a)

let cyclic ?(start = 0) ?(stride = 64) ~name ~length () =
  if length <= 0 then invalid_arg "Gen.cyclic: length <= 0";
  let i = ref 0 in
  make ~name (fun () ->
      let a = Access.read (start + (!i * stride)) in
      i := (!i + 1) mod length;
      a)

let uniform_random ?(base = 0) ~name ~rng ~footprint () =
  if footprint <= 8 then invalid_arg "Gen.uniform_random: footprint too small";
  let words = footprint / 8 in
  make ~name (fun () -> Access.read (base + (8 * Rng.int rng ~bound:words)))
