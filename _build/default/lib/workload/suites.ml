module Rng = Nmcache_numerics.Rng

type spec_variant = Mix | Gcc | Mcf | Art

let spec_variant_name = function
  | Mix -> "mix"
  | Gcc -> "gcc"
  | Mcf -> "mcf"
  | Art -> "art"

let kb n = n * 1024
let mb n = n * 1024 * 1024

(* Region bases keep the components disjoint. *)
let hot_base = 0x1000_0000
let warm_base = 0x4000_0000
let ws2_base = 0x6000_0000
let ws3_base = 0xc000_0000
let stream_base = 0x8000_0000
let cold_base = 0x1_0000_0000

type spec_params = {
  hot_bytes : int;
  hot_weight : float;
  warm_bytes : int;
  warm_zipf : float;
  warm_weight : float;
  ws2_bytes : int;          (* mid-scale working set *)
  ws2_weight : float;
  ws3_bytes : int;          (* outer working set *)
  ws3_weight : float;
  stream_bytes : int;
  stream_weight : float;
  cold_bytes : int;
  cold_zipf : float;
  cold_weight : float;
  write_fraction : float;
}

type spec_runs = {
  hot_continue : float;
  warm_run : int;
  cold_run : int;
}

let spec_runs = { hot_continue = 0.85; warm_run = 8; cold_run = 6 }

let spec_params = function
  | Mix ->
    {
      hot_bytes = kb 4;
      hot_weight = 0.52;
      warm_bytes = kb 256;
      warm_zipf = 0.80;
      warm_weight = 0.20;
      ws2_bytes = kb 768;
      ws2_weight = 0.05;
      ws3_bytes = mb 3;
      ws3_weight = 0.05;
      stream_bytes = kb 512;
      stream_weight = 0.04;
      cold_bytes = mb 128;
      cold_zipf = 1.00;
      cold_weight = 0.14;
      write_fraction = 0.30;
    }
  | Gcc ->
    {
      hot_bytes = kb 4;
      hot_weight = 0.58;
      warm_bytes = kb 192;
      warm_zipf = 0.70;
      warm_weight = 0.20;
      ws2_bytes = kb 512;
      ws2_weight = 0.05;
      ws3_bytes = mb 2;
      ws3_weight = 0.04;
      stream_bytes = kb 512;
      stream_weight = 0.04;
      cold_bytes = mb 32;
      cold_zipf = 1.00;
      cold_weight = 0.09;
      write_fraction = 0.32;
    }
  | Mcf ->
    {
      hot_bytes = kb 4;
      hot_weight = 0.40;
      warm_bytes = mb 1;
      warm_zipf = 0.75;
      warm_weight = 0.24;
      ws2_bytes = mb 2;
      ws2_weight = 0.05;
      ws3_bytes = mb 6;
      ws3_weight = 0.04;
      stream_bytes = kb 512;
      stream_weight = 0.05;
      cold_bytes = mb 256;
      cold_zipf = 0.70;
      cold_weight = 0.22;
      write_fraction = 0.22;
    }
  | Art ->
    {
      hot_bytes = kb 4;
      hot_weight = 0.38;
      warm_bytes = kb 256;
      warm_zipf = 0.70;
      warm_weight = 0.12;
      ws2_bytes = mb 2;
      ws2_weight = 0.04;
      ws3_bytes = mb 6;
      ws3_weight = 0.02;
      stream_bytes = mb 1;
      stream_weight = 0.38;
      cold_bytes = mb 32;
      cold_zipf = 0.80;
      cold_weight = 0.06;
      write_fraction = 0.20;
    }

let spec_like ?(variant = Mix) ~seed () =
  let p = spec_params variant in
  let rng = Rng.create ~seed in
  let part name f = Gen.make ~name f in
  let runs = spec_runs in
  let hot =
    part "hot"
      (Regions.locality_walker ~rng:(Rng.split rng) ~base:hot_base ~bytes:p.hot_bytes
         ~p_continue:runs.hot_continue ())
  in
  let warm =
    part "warm"
      (Regions.zipf_blocks ~rng:(Rng.split rng) ~base:warm_base ~bytes:p.warm_bytes
         ~block:64 ~s:p.warm_zipf ~run:runs.warm_run ())
  in
  let ws2 =
    part "ws2"
      (Regions.zipf_blocks ~rng:(Rng.split rng) ~base:ws2_base ~bytes:p.ws2_bytes
         ~block:64 ~s:0.8 ~run:runs.warm_run ())
  in
  let ws3 =
    part "ws3"
      (Regions.zipf_blocks ~rng:(Rng.split rng) ~base:ws3_base ~bytes:p.ws3_bytes
         ~block:64 ~s:0.8 ~run:runs.warm_run ())
  in
  let streamg = part "stream" (Regions.stream ~base:stream_base ~bytes:p.stream_bytes ~stride:8 ()) in
  let cold =
    part "cold"
      (Regions.zipf_blocks ~rng:(Rng.split rng) ~base:cold_base ~bytes:p.cold_bytes
         ~block:64 ~s:p.cold_zipf ~run:runs.cold_run ())
  in
  let name = "spec2000-" ^ spec_variant_name variant in
  let mixed =
    Gen.mix ~name ~rng:(Rng.split rng)
      [
        (p.hot_weight, hot);
        (p.warm_weight, warm);
        (p.ws2_weight, ws2);
        (p.ws3_weight, ws3);
        (p.stream_weight, streamg);
        (p.cold_weight, cold);
      ]
  in
  Gen.with_write_fraction ~rng:(Rng.split rng) ~p:p.write_fraction mixed

let specweb_like ~seed () =
  let rng = Rng.create ~seed in
  let n_objects = 1 lsl 17 in
  let slot = kb 16 in
  let zipf = Nmcache_numerics.Zipf.create ~n:n_objects ~s:0.9 in
  let obj_rng = Rng.split rng in
  let size_rng = Rng.split rng in
  let remaining = ref 0 in
  let cursor = ref 0 in
  let objects =
    Gen.make ~name:"objects" (fun () ->
        if !remaining = 0 then begin
          let rank = Nmcache_numerics.Zipf.sample zipf obj_rng in
          let o = rank * 2654435761 mod n_objects in
          (* object size: 512 B minimum, geometric tail, 16 KB cap *)
          let size =
            min (slot - 64) (512 + (512 * Rng.geometric size_rng ~p:0.18))
          in
          cursor := warm_base + (o * slot);
          remaining := size / 8
        end;
        let a = Access.read !cursor in
        cursor := !cursor + 8;
        decr remaining;
        a)
  in
  let metadata =
    Gen.make ~name:"metadata"
      (Regions.locality_walker ~rng:(Rng.split rng) ~base:hot_base ~bytes:(kb 12)
         ~p_continue:0.75 ())
  in
  let mixed =
    Gen.mix ~name:"specweb" ~rng:(Rng.split rng) [ (0.52, objects); (0.48, metadata) ]
  in
  Gen.with_write_fraction ~rng:(Rng.split rng) ~p:0.06 mixed

let tpcc_like ~seed () =
  let rng = Rng.create ~seed in
  let root =
    Gen.make ~name:"btree-root"
      (Regions.locality_walker ~rng:(Rng.split rng) ~base:hot_base ~bytes:(kb 12)
         ~p_continue:0.7 ())
  in
  let internal =
    Gen.make ~name:"btree-internal"
      (Regions.zipf_blocks ~rng:(Rng.split rng) ~base:warm_base ~bytes:(kb 768) ~block:64
         ~s:0.55 ~run:12 ())
  in
  let leaf =
    Gen.make ~name:"btree-leaf"
      (Regions.zipf_blocks ~rng:(Rng.split rng) ~base:cold_base ~bytes:(mb 512) ~block:64
         ~s:0.65 ~run:12 ())
  in
  let log =
    let inner = Regions.stream ~base:stream_base ~bytes:(mb 64) ~stride:8 () in
    Gen.make ~name:"log" (fun () -> Access.write (inner ()).Access.addr)
  in
  Gen.mix ~name:"tpcc" ~rng:(Rng.split rng)
    [ (0.35, root); (0.25, internal); (0.28, leaf); (0.12, log) ]
  |> fun mixed ->
  (* reads/writes: log is all writes; give the rest a 25% store mix *)
  let wrng = Rng.split rng in
  Gen.make ~name:"tpcc" (fun () ->
      let a = Gen.next mixed in
      if a.Access.write then a
      else { a with Access.write = Rng.bernoulli wrng ~p:0.25 })
