(** Phase-switching workloads.

    Real programs run in phases (loop nests, query batches, request
    bursts) rather than drawing from one stationary mixture.  A phased
    generator cycles through sub-generators, holding each for a dwell
    time drawn around a mean — which produces the non-stationary cache
    behaviour (working-set migration, periodic cold restarts) that
    stationary mixtures cannot. *)

val cycle :
  name:string ->
  rng:Nmcache_numerics.Rng.t ->
  dwell:int ->
  Gen.t list ->
  Gen.t
(** [cycle ~name ~rng ~dwell phases] plays each phase for a geometric
    dwell of mean [dwell] accesses, then moves to the next (wrapping).
    Raises [Invalid_argument] on an empty phase list or [dwell < 1]. *)

val spec_phased : seed:int64 -> unit -> Gen.t
(** A phased SPEC-like composite: alternates the gcc-like, mcf-like and
    art-like variants with ~200k-access dwells — used by the
    phase-sensitivity tests and available from the registry as
    ["spec2000-phased"]. *)
