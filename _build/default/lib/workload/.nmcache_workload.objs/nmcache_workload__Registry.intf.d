lib/workload/registry.mli: Gen
