lib/workload/regions.mli: Access Nmcache_numerics
