lib/workload/suites.ml: Access Gen Nmcache_numerics Regions
