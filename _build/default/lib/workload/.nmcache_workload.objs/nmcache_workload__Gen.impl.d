lib/workload/gen.ml: Access Array Float List Nmcache_numerics
