lib/workload/suites.mli: Gen
