lib/workload/registry.ml: Gen List Phased Suites
