lib/workload/missrate.ml: Access Array Gen Hashtbl List Nmcache_cachesim Printf Registry String
