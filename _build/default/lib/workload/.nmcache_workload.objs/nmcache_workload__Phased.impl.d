lib/workload/phased.ml: Array Gen Nmcache_numerics Suites
