lib/workload/regions.ml: Access Nmcache_numerics
