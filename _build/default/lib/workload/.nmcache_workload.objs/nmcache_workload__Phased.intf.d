lib/workload/phased.mli: Gen Nmcache_numerics
