lib/workload/gen.mli: Access Nmcache_numerics
