lib/workload/missrate.mli: Nmcache_cachesim
