(** Address-stream generators.

    A generator is a named, stateful producer of an infinite access
    stream.  All randomness comes from the generator's own seeded
    {!Nmcache_numerics.Rng} stream, so a given (name, seed) pair always
    replays the identical trace. *)

type t

val make : name:string -> (unit -> Access.t) -> t
val name : t -> string
val next : t -> Access.t

val take : t -> int -> Access.t array
(** The next [n] accesses.  Raises [Invalid_argument] if [n < 0]. *)

val iter : t -> int -> (Access.t -> unit) -> unit
(** Feed the next [n] accesses to a consumer without materialising
    them. *)

(** {1 Combinators} *)

val mix : name:string -> rng:Nmcache_numerics.Rng.t -> (float * t) list -> t
(** [mix ~name ~rng parts] draws each access from one of the [parts]
    with probability proportional to its weight; each part keeps its own
    state, so interleaving preserves per-part locality.  Raises
    [Invalid_argument] on an empty list or non-positive weights. *)

val with_write_fraction : rng:Nmcache_numerics.Rng.t -> p:float -> t -> t
(** Overrides the stream's read/write mix with i.i.d. writes of
    probability [p] (clamped to [0, 1]). *)

(** {1 Micro-patterns (tests and calibration)} *)

val sequential : ?start:int -> ?stride:int -> name:string -> unit -> t
(** [start], [start+stride], ... (defaults 0, 64): never reuses a block
    when [stride] ≥ block size. *)

val cyclic : ?start:int -> ?stride:int -> name:string -> length:int -> unit -> t
(** Loops over [length] addresses forever — the LRU litmus pattern:
    hits everywhere when the loop fits, 100% misses when it exceeds
    capacity by one under LRU. *)

val uniform_random :
  ?base:int -> name:string -> rng:Nmcache_numerics.Rng.t -> footprint:int -> unit -> t
(** Uniform random word addresses over [footprint] bytes. *)
