(** Synthetic stand-ins for the paper's benchmark suites.

    The paper gathers cache statistics from SPEC2000, SPECWEB and TPC-C
    runs; those traces are proprietary, so each suite is replaced by a
    seeded generator tuned to the published locality structure the
    experiments depend on (see DESIGN.md §2):

    - SPEC-like: small hot loop set + Zipf heap + streaming + cold
      pointer chasing; L1 miss rates low (a few %) and nearly flat in
      L1 size, L2 local miss rate falling with size;
    - SPECWEB-like: Zipf-popular objects scanned sequentially over a
      large footprint;
    - TPCC-like: B-tree root/internal/leaf walks plus sequential log
      writes over a very large footprint. *)

type spec_variant =
  | Mix   (** the blend used by the headline experiments *)
  | Gcc   (** small working set, control-heavy *)
  | Mcf   (** pointer chasing, large sparse footprint *)
  | Art   (** streaming-dominated *)

val spec_variant_name : spec_variant -> string

val spec_like : ?variant:spec_variant -> seed:int64 -> unit -> Gen.t
val specweb_like : seed:int64 -> unit -> Gen.t
val tpcc_like : seed:int64 -> unit -> Gen.t
