module Rng = Nmcache_numerics.Rng

let cycle ~name ~rng ~dwell phases =
  if phases = [] then invalid_arg "Phased.cycle: no phases";
  if dwell < 1 then invalid_arg "Phased.cycle: dwell < 1";
  let phases = Array.of_list phases in
  let current = ref 0 in
  let remaining = ref 0 in
  let draw_dwell () =
    (* geometric dwell with the requested mean keeps phase boundaries
       unpredictable but reproducible *)
    1 + Rng.geometric rng ~p:(1.0 /. float_of_int dwell)
  in
  Gen.make ~name (fun () ->
      if !remaining <= 0 then begin
        current := (!current + 1) mod Array.length phases;
        remaining := draw_dwell ()
      end;
      decr remaining;
      Gen.next phases.(!current))

let spec_phased ~seed () =
  let rng = Rng.create ~seed in
  let phase variant s = Suites.spec_like ~variant ~seed:s () in
  cycle ~name:"spec2000-phased" ~rng:(Rng.split rng) ~dwell:200_000
    [
      phase Suites.Gcc (Rng.bits64 rng);
      phase Suites.Mcf (Rng.bits64 rng);
      phase Suites.Art (Rng.bits64 rng);
    ]
