(** The paper's compact per-component models (Section 3).

    Leakage:  P(Vth, Tox) = A0 + A1·exp(a1·Vth) + A2·exp(a2·Tox)
    Delay:    T(Vth, Tox) = k0 + k1·exp(k3·Vth) + k2·Tox

    Conventions: Vth in volts; Tox is carried in {e angstroms} inside
    the model coefficients (the paper's own axis and far better
    conditioned), but every public [eval] takes Tox in metres like the
    rest of the code base and converts internally.  Leakage in watts,
    delay in seconds. *)

type leak = {
  a0 : float;
  a1 : float;
  alpha_v : float;  (** exponent on Vth [1/V]; negative *)
  a2 : float;
  alpha_t : float;  (** exponent on Tox [1/Å]; negative *)
}

type delay = {
  k0 : float;
  k1 : float;
  kappa_v : float;  (** exponent on Vth [1/V]; positive *)
  k2 : float;       (** linear Tox slope [s/Å]; positive *)
}

type energy = {
  e0 : float;
  e1 : float;       (** linear Tox slope [J/Å] *)
}
(** Dynamic energy per access is only weakly knob-dependent; a linear
    Tox model suffices (capacitance scales with the cell). *)

val eval_leak : leak -> vth:float -> tox:float -> float
val eval_delay : delay -> vth:float -> tox:float -> float
val eval_energy : energy -> tox:float -> float

val pp_leak : Format.formatter -> leak -> unit
val pp_delay : Format.formatter -> delay -> unit
val pp_energy : Format.formatter -> energy -> unit

type quality = {
  r2 : float;
  max_rel : float;
  rms_rel : float;
}
(** Goodness of fit over the characterisation grid. *)

val pp_quality : Format.formatter -> quality -> unit
