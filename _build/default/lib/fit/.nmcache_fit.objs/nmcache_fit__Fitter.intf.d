lib/fit/fitter.mli: Model Nmcache_geometry
