lib/fit/fitted_cache.mli: Model Nmcache_geometry
