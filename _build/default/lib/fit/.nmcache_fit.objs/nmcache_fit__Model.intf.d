lib/fit/model.mli: Format
