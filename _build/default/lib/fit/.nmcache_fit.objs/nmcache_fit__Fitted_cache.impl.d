lib/fit/fitted_cache.ml: Array Fitter List Model Nmcache_device Nmcache_geometry Nmcache_numerics
