lib/fit/fitter.ml: Array Float Model Nmcache_geometry Nmcache_numerics Nmcache_physics
