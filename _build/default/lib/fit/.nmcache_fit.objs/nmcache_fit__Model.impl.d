lib/fit/model.ml: Float Format Nmcache_physics
