(** A cache whose four components have been characterised and fitted.

    This is the representation the paper's optimisations actually run
    on: closed-form per-component models, summed under the independence
    assumption of Section 3.  The underlying circuit model is retained
    so fit-audit experiments can compare against "HSPICE truth". *)

type component_model = {
  kind : Nmcache_geometry.Component.kind;
  leak : Model.leak;
  leak_quality : Model.quality;
  delay : Model.delay;
  delay_quality : Model.quality;
  energy : Model.energy;
  energy_quality : Model.quality;
}

type t

val characterize_and_fit :
  ?vth_steps:int -> ?tox_steps:int -> Nmcache_geometry.Cache_model.t -> t
(** Sweep each component over the legal knob ranges ([vth_steps]+1 ×
    [tox_steps]+1 points, defaults 6 and 4) and fit the compact models.
    This is the expensive step; everything downstream is closed-form. *)

val circuit_model : t -> Nmcache_geometry.Cache_model.t
val component : t -> Nmcache_geometry.Component.kind -> component_model
val components : t -> component_model list

val leak_of : t -> Nmcache_geometry.Component.kind -> Nmcache_geometry.Component.knob -> float
(** Fitted leakage of one component [W]. *)

val delay_of : t -> Nmcache_geometry.Component.kind -> Nmcache_geometry.Component.knob -> float
(** Fitted delay contribution of one component [s]. *)

val energy_of : t -> Nmcache_geometry.Component.kind -> Nmcache_geometry.Component.knob -> float
(** Fitted dynamic energy of one component [J]. *)

type estimate = {
  access_time : float;  (** Σ fitted delays [s] *)
  leak_w : float;       (** Σ fitted leakage [W] *)
  dyn_energy : float;   (** Σ fitted dynamic energy per access [J] *)
}

val eval : t -> Nmcache_geometry.Component.assignment -> estimate
(** Closed-form evaluation of a full assignment. *)

val exact : t -> Nmcache_geometry.Component.assignment -> Nmcache_geometry.Cache_model.report
(** Ground-truth circuit-model evaluation (for audits). *)

val worst_quality : t -> Model.quality
(** The worst (leak or delay) fit quality over all components — a quick
    health indicator; experiments assert R² stays high. *)
