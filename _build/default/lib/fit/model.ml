module Units = Nmcache_physics.Units

type leak = {
  a0 : float;
  a1 : float;
  alpha_v : float;
  a2 : float;
  alpha_t : float;
}

type delay = {
  k0 : float;
  k1 : float;
  kappa_v : float;
  k2 : float;
}

type energy = {
  e0 : float;
  e1 : float;
}

let eval_leak m ~vth ~tox =
  let tox_a = Units.to_angstrom tox in
  m.a0 +. (m.a1 *. Float.exp (m.alpha_v *. vth)) +. (m.a2 *. Float.exp (m.alpha_t *. tox_a))

let eval_delay m ~vth ~tox =
  let tox_a = Units.to_angstrom tox in
  m.k0 +. (m.k1 *. Float.exp (m.kappa_v *. vth)) +. (m.k2 *. tox_a)

let eval_energy m ~tox = m.e0 +. (m.e1 *. Units.to_angstrom tox)

let pp_leak fmt m =
  Format.fprintf fmt "P = %.3e + %.3e*exp(%.2f*Vth) + %.3e*exp(%.2f*ToxA) W" m.a0 m.a1
    m.alpha_v m.a2 m.alpha_t

let pp_delay fmt m =
  Format.fprintf fmt "T = %.3e + %.3e*exp(%.2f*Vth) + %.3e*ToxA s" m.k0 m.k1 m.kappa_v
    m.k2

let pp_energy fmt m = Format.fprintf fmt "E = %.3e + %.3e*ToxA J" m.e0 m.e1

type quality = {
  r2 : float;
  max_rel : float;
  rms_rel : float;
}

let pp_quality fmt q =
  Format.fprintf fmt "R2=%.4f max_rel=%.2f%% rms_rel=%.2f%%" q.r2 (100.0 *. q.max_rel)
    (100.0 *. q.rms_rel)
