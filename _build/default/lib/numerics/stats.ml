let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty array")

let mean xs =
  require_nonempty "mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  require_nonempty "variance" xs;
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
  /. float_of_int (Array.length xs)

let stddev xs = Float.sqrt (variance xs)

let minimum xs =
  require_nonempty "minimum" xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  require_nonempty "maximum" xs;
  Array.fold_left Float.max xs.(0) xs

let percentile xs p =
  require_nonempty "percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let check_pair name actual predicted =
  require_nonempty name actual;
  if Array.length actual <> Array.length predicted then
    invalid_arg ("Stats." ^ name ^ ": length mismatch")

let r_squared ~actual ~predicted =
  check_pair "r_squared" actual predicted;
  let m = mean actual in
  let ss_tot = Array.fold_left (fun acc y -> acc +. ((y -. m) ** 2.0)) 0.0 actual in
  let ss_res = ref 0.0 in
  Array.iteri (fun i y -> ss_res := !ss_res +. ((y -. predicted.(i)) ** 2.0)) actual;
  if ss_tot = 0.0 then if !ss_res = 0.0 then 1.0 else 0.0
  else 1.0 -. (!ss_res /. ss_tot)

let max_rel_error ~actual ~predicted =
  check_pair "max_rel_error" actual predicted;
  let worst = ref 0.0 in
  Array.iteri
    (fun i y ->
      let denom = Float.max (Float.abs y) 1e-300 in
      worst := Float.max !worst (Float.abs (predicted.(i) -. y) /. denom))
    actual;
  !worst

let rms_rel_error ~actual ~predicted =
  check_pair "rms_rel_error" actual predicted;
  let acc = ref 0.0 in
  Array.iteri
    (fun i y ->
      let denom = Float.max (Float.abs y) 1e-300 in
      let e = (predicted.(i) -. y) /. denom in
      acc := !acc +. (e *. e))
    actual;
  Float.sqrt (!acc /. float_of_int (Array.length actual))

let geometric_mean xs =
  require_nonempty "geometric_mean" xs;
  let acc = ref 0.0 in
  Array.iter
    (fun x ->
      if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive element";
      acc := !acc +. Float.log x)
    xs;
  Float.exp (!acc /. float_of_int (Array.length xs))
