(** One-dimensional minimisation and discrete search helpers. *)

val golden_section :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** [golden_section ~f ~lo ~hi ()] returns an abscissa minimising a
    unimodal [f] on [lo, hi] to tolerance [tol] (default 1e-9 of the
    interval width).  Raises [Invalid_argument] if [lo >= hi]. *)

val grid_min : f:(float -> float) -> lo:float -> hi:float -> steps:int -> float * float
(** [grid_min ~f ~lo ~hi ~steps] evaluates [f] at [steps + 1] equally
    spaced points and returns the minimising pair [(x, f x)].  Raises
    [Invalid_argument] if [steps < 1] or [lo > hi]. *)

val argmin : ('a -> float) -> 'a list -> 'a option
(** [argmin f xs] is the element minimising [f], or [None] on an empty
    list.  Ties resolve to the earliest element. *)

val argmin_array : ('a -> float) -> 'a array -> 'a option
(** Array counterpart of {!argmin}. *)

val linspace : lo:float -> hi:float -> steps:int -> float array
(** [linspace ~lo ~hi ~steps] is [steps + 1] equally spaced values from
    [lo] to [hi] inclusive.  [steps = 0] yields [[| lo |]] (requires
    [lo = hi]).  Raises [Invalid_argument] on a negative [steps] or
    [lo > hi]. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** [bisect ~f ~lo ~hi ()] finds a root of [f] on [lo, hi] by bisection;
    [f lo] and [f hi] must have opposite signs (or one of them be zero).
    Raises [Invalid_argument] otherwise. *)
