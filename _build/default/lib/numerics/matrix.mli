(** Small dense matrices over [float].

    This is a deliberately minimal implementation sized for the model
    fitting done in this project (systems of a handful of unknowns); it is
    not a general-purpose linear-algebra package.  Matrices are stored
    row-major in a flat [float array] and are mutable. *)

type t
(** A dense [rows] × [cols] matrix. *)

val create : rows:int -> cols:int -> t
(** [create ~rows ~cols] is a zero matrix.  Raises [Invalid_argument] if
    either dimension is not positive. *)

val of_rows : float array array -> t
(** [of_rows a] builds a matrix from an array of equally-long rows.
    Raises [Invalid_argument] on an empty or ragged input. *)

val identity : int -> t
(** [identity n] is the n × n identity. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
(** [get m i j] is element (i, j); 0-based.  Raises [Invalid_argument]
    when out of bounds. *)

val set : t -> int -> int -> float -> unit
(** [set m i j v] stores [v] at (i, j).  Raises [Invalid_argument] when
    out of bounds. *)

val copy : t -> t

val transpose : t -> t

val mul : t -> t -> t
(** [mul a b] is the matrix product.  Raises [Invalid_argument] on a
    dimension mismatch. *)

val mul_vec : t -> float array -> float array
(** [mul_vec a x] is [a · x].  Raises [Invalid_argument] on a dimension
    mismatch. *)

val add : t -> t -> t
(** Element-wise sum.  Raises [Invalid_argument] on a shape mismatch. *)

val scale : float -> t -> t
(** [scale k m] is [k · m] (new matrix). *)

val add_diagonal : t -> float -> t
(** [add_diagonal m d] returns a copy of square matrix [m] with [d] added
    to each diagonal element (used for Levenberg–Marquardt damping).
    Raises [Invalid_argument] if [m] is not square. *)

val map_row : t -> int -> (float -> float) -> unit
(** [map_row m i f] applies [f] in place to row [i]. *)

val pp : Format.formatter -> t -> unit
(** Debug printer. *)

val equal : ?eps:float -> t -> t -> bool
(** Element-wise comparison with absolute tolerance [eps] (default 1e-12). *)
