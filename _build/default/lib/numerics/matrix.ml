type t = {
  rows : int;
  cols : int;
  data : float array; (* row-major *)
}

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: non-positive dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let rows m = m.rows
let cols m = m.cols

let check_bounds m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Matrix: index (%d,%d) out of bounds for %dx%d" i j m.rows m.cols)

let get m i j =
  check_bounds m i j;
  m.data.((i * m.cols) + j)

let set m i j v =
  check_bounds m i j;
  m.data.((i * m.cols) + j) <- v

(* Unchecked accessors for inner loops. *)
let unsafe_get m i j = Array.unsafe_get m.data ((i * m.cols) + j)
let unsafe_set m i j v = Array.unsafe_set m.data ((i * m.cols) + j) v

let of_rows a =
  let nr = Array.length a in
  if nr = 0 then invalid_arg "Matrix.of_rows: empty";
  let nc = Array.length a.(0) in
  if nc = 0 then invalid_arg "Matrix.of_rows: empty row";
  let m = create ~rows:nr ~cols:nc in
  Array.iteri
    (fun i row ->
      if Array.length row <> nc then invalid_arg "Matrix.of_rows: ragged rows";
      Array.iteri (fun j v -> unsafe_set m i j v) row)
    a;
  m

let identity n =
  let m = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    unsafe_set m i i 1.0
  done;
  m

let copy m = { m with data = Array.copy m.data }

let transpose m =
  let r = create ~rows:m.cols ~cols:m.rows in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      unsafe_set r j i (unsafe_get m i j)
    done
  done;
  r

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let r = create ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = unsafe_get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          unsafe_set r i j (unsafe_get r i j +. (aik *. unsafe_get b k j))
        done
    done
  done;
  r

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (unsafe_get a i j *. Array.unsafe_get x j)
      done;
      !acc)

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix.add: shape mismatch";
  { a with data = Array.mapi (fun i v -> v +. b.data.(i)) a.data }

let scale k m = { m with data = Array.map (fun v -> k *. v) m.data }

let add_diagonal m d =
  if m.rows <> m.cols then invalid_arg "Matrix.add_diagonal: not square";
  let r = copy m in
  for i = 0 to m.rows - 1 do
    unsafe_set r i i (unsafe_get r i i +. d)
  done;
  r

let map_row m i f =
  if i < 0 || i >= m.rows then invalid_arg "Matrix.map_row: row out of bounds";
  for j = 0 to m.cols - 1 do
    unsafe_set m i j (f (unsafe_get m i j))
  done

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%g" (unsafe_get m i j)
    done;
    Format.fprintf fmt "]";
    if i < m.rows - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"

let equal ?(eps = 1e-12) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data
