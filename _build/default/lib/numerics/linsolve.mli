(** Linear-system and least-squares solvers for small dense systems. *)

exception Singular
(** Raised when a system is (numerically) singular. *)

val solve : Matrix.t -> float array -> float array
(** [solve a b] solves the square system [a · x = b] by Gaussian
    elimination with partial pivoting.  Raises {!Singular} if a pivot is
    numerically zero, and [Invalid_argument] on a shape mismatch. *)

val lstsq : Matrix.t -> float array -> float array
(** [lstsq a b] solves the overdetermined system [a · x ≈ b] in the
    least-squares sense via the normal equations (with a tiny Tikhonov
    ridge for conditioning).  [a] must have at least as many rows as
    columns.  Raises {!Singular} when the columns of [a] are linearly
    dependent beyond what the ridge can absorb. *)

val lstsq_weighted : Matrix.t -> float array -> weights:float array -> float array
(** [lstsq_weighted a b ~weights] is weighted least squares: it minimises
    Σ w_i (a_i·x − b_i)².  All weights must be non-negative. *)

val invert : Matrix.t -> Matrix.t
(** [invert a] is the inverse of square matrix [a].  Raises {!Singular}
    when [a] is not invertible. *)

val residual_norm : Matrix.t -> float array -> float array -> float
(** [residual_norm a x b] is ‖a·x − b‖₂. *)
