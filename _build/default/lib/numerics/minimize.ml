let inv_phi = (Float.sqrt 5.0 -. 1.0) /. 2.0

(* Maintain bracket [a, c] with interior probes b < d; shrink toward the
   smaller probe each iteration. *)
let golden_section ?(tol = 1e-9) ?(max_iter = 200) ~f ~lo ~hi () =
  if lo >= hi then invalid_arg "Minimize.golden_section: lo >= hi";
  let a = ref lo and c = ref hi in
  let b = ref (!c -. (inv_phi *. (!c -. !a))) in
  let d = ref (!a +. (inv_phi *. (!c -. !a))) in
  let fb = ref (f !b) and fd = ref (f !d) in
  let iter = ref 0 in
  while !iter < max_iter && !c -. !a > tol *. (Float.abs !a +. Float.abs !c +. 1.0) do
    incr iter;
    if !fb < !fd then begin
      c := !d;
      d := !b;
      fd := !fb;
      b := !c -. (inv_phi *. (!c -. !a));
      fb := f !b
    end
    else begin
      a := !b;
      b := !d;
      fb := !fd;
      d := !a +. (inv_phi *. (!c -. !a));
      fd := f !d
    end
  done;
  (!a +. !c) /. 2.0

let linspace ~lo ~hi ~steps =
  if steps < 0 then invalid_arg "Minimize.linspace: negative steps";
  if lo > hi then invalid_arg "Minimize.linspace: lo > hi";
  if steps = 0 then begin
    if lo <> hi then invalid_arg "Minimize.linspace: steps = 0 with lo <> hi";
    [| lo |]
  end
  else
    Array.init (steps + 1) (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int steps))

let grid_min ~f ~lo ~hi ~steps =
  if steps < 1 then invalid_arg "Minimize.grid_min: steps < 1";
  let xs = linspace ~lo ~hi ~steps in
  let best_x = ref xs.(0) and best_f = ref (f xs.(0)) in
  Array.iter
    (fun x ->
      let v = f x in
      if v < !best_f then begin
        best_f := v;
        best_x := x
      end)
    xs;
  (!best_x, !best_f)

let argmin f = function
  | [] -> None
  | x :: rest ->
    let best = ref x and best_v = ref (f x) in
    List.iter
      (fun y ->
        let v = f y in
        if v < !best_v then begin
          best := y;
          best_v := v
        end)
      rest;
    Some !best

let argmin_array f a = argmin f (Array.to_list a)

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  if lo > hi then invalid_arg "Minimize.bisect: lo > hi";
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else if flo *. fhi > 0.0 then invalid_arg "Minimize.bisect: no sign change"
  else begin
    let a = ref lo and b = ref hi and fa = ref flo in
    let iter = ref 0 in
    while !iter < max_iter && !b -. !a > tol *. (Float.abs !a +. Float.abs !b +. 1.0) do
      incr iter;
      let m = (!a +. !b) /. 2.0 in
      let fm = f m in
      if fm = 0.0 then begin
        a := m;
        b := m
      end
      else if !fa *. fm < 0.0 then b := m
      else begin
        a := m;
        fa := fm
      end
    done;
    (!a +. !b) /. 2.0
  end
