(** Deterministic pseudo-random number generation.

    Every experiment in this repository must be exactly reproducible, so
    all randomness flows through explicitly seeded generators from this
    module rather than the stdlib's global state.  The core generator is
    xoshiro256** seeded via splitmix64. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] builds a generator; any seed (including 0) is valid. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give sub-components their own streams. *)

val copy : t -> t
(** Snapshot of the current state (for replay). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [0, bound).  Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi).  Raises [Invalid_argument] if [lo > hi]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is true with probability [p] (clamped to [0, 1]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean.  Raises
    [Invalid_argument] if [mean <= 0]. *)

val geometric : t -> p:float -> int
(** Number of failures before the first success of a Bernoulli([p])
    process, i.e. geometric on {0, 1, ...}.  Raises [Invalid_argument]
    unless [0 < p <= 1]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  Raises [Invalid_argument] on
    an empty array. *)

val splitmix64 : int64 -> int64
(** The raw splitmix64 mixing function (exposed for tests). *)
