type t = {
  n : int;
  s : float;
  cdf : float array; (* cdf.(k) = P(rank <= k), strictly increasing, last = 1.0 *)
}

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n <= 0";
  if s < 0.0 then invalid_arg "Zipf.create: s < 0";
  let weights = Array.init n (fun i -> (float_of_int (i + 1)) ** -.s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { n; s; cdf }

let n t = t.n
let exponent t = t.s

(* first index with cdf.(i) >= u *)
let sample t rng =
  let u = Rng.float rng in
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let pmf t k =
  if k < 0 || k >= t.n then invalid_arg "Zipf.pmf: rank out of range";
  if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)
