type result = {
  params : float array;
  residual : float;
  iterations : int;
  converged : bool;
}

let residuals ~f ~xs ~ys theta =
  Array.init (Array.length xs) (fun i -> f theta xs.(i) -. ys.(i))

let norm2 r =
  let acc = ref 0.0 in
  Array.iter (fun v -> acc := !acc +. (v *. v)) r;
  Float.sqrt !acc

let residual_of ~f ~xs ~ys theta = norm2 (residuals ~f ~xs ~ys theta)

(* Forward-difference Jacobian of the residual vector wrt theta. *)
let jacobian ~f ~xs theta =
  let n = Array.length xs and p = Array.length theta in
  let j = Matrix.create ~rows:n ~cols:p in
  let base = Array.init n (fun i -> f theta xs.(i)) in
  for k = 0 to p - 1 do
    let h = Float.max 1e-8 (1e-6 *. Float.abs theta.(k)) in
    let theta' = Array.copy theta in
    theta'.(k) <- theta'.(k) +. h;
    for i = 0 to n - 1 do
      Matrix.set j i k ((f theta' xs.(i) -. base.(i)) /. h)
    done
  done;
  j

let fit ?(max_iter = 200) ?(tol = 1e-10) ?(lambda0 = 1e-3) ~f ~xs ~ys ~init () =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Lm.fit: no samples";
  if Array.length ys <> n then invalid_arg "Lm.fit: xs/ys length mismatch";
  let p = Array.length init in
  if p = 0 then invalid_arg "Lm.fit: empty parameter vector";
  let theta = ref (Array.copy init) in
  let lambda = ref lambda0 in
  let cost = ref (norm2 (residuals ~f ~xs ~ys !theta)) in
  let iterations = ref 0 in
  let converged = ref false in
  (try
     while (not !converged) && !iterations < max_iter do
       incr iterations;
       let r = residuals ~f ~xs ~ys !theta in
       let j = jacobian ~f ~xs !theta in
       let jt = Matrix.transpose j in
       let jtj = Matrix.mul jt j in
       let jtr = Matrix.mul_vec jt r in
       let neg_jtr = Array.map (fun v -> -.v) jtr in
       (* Try increasing damping until the step reduces the cost. *)
       let rec attempt tries =
         if tries > 30 then raise Exit;
         let step =
           try Some (Linsolve.solve (Matrix.add_diagonal jtj !lambda) neg_jtr)
           with Linsolve.Singular -> None
         in
         match step with
         | None ->
           lambda := !lambda *. 10.0;
           attempt (tries + 1)
         | Some dx ->
           let cand = Array.mapi (fun i v -> v +. dx.(i)) !theta in
           let c = norm2 (residuals ~f ~xs ~ys cand) in
           if Float.is_nan c || c >= !cost then begin
             lambda := !lambda *. 10.0;
             attempt (tries + 1)
           end
           else begin
             let step_norm = norm2 dx in
             let improvement = (!cost -. c) /. Float.max !cost 1e-300 in
             theta := cand;
             cost := c;
             lambda := Float.max (!lambda /. 10.0) 1e-12;
             if improvement < tol || step_norm < tol then converged := true
           end
       in
       attempt 0
     done
   with Exit -> converged := true);
  { params = !theta; residual = !cost; iterations = !iterations; converged = !converged }
