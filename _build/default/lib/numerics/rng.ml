type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let s = ref seed in
  let next () =
    s := Int64.add !s 0x9E3779B97F4A7C15L;
    splitmix64 !s
  in
  let s0 = next () in
  let s1 = next () in
  let s2 = next () in
  let s3 = next () in
  (* xoshiro must not start in the all-zero state *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** *)
let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create ~seed:(bits64 t)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* rejection sampling on the top bits to avoid modulo bias *)
  let b = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r b in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int b) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let float t =
  (* use the top 53 bits *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. 0x1.0p-53

let float_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.float_range: lo > hi";
  lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~p =
  let p = Float.min 1.0 (Float.max 0.0 p) in
  float t < p

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean <= 0";
  let u = 1.0 -. float t in
  -.mean *. Float.log u

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p out of (0,1]";
  if p = 1.0 then 0
  else begin
    let u = 1.0 -. float t in
    int_of_float (Float.floor (Float.log u /. Float.log (1.0 -. p)))
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t ~bound:(Array.length a))
