lib/numerics/minimize.mli:
