lib/numerics/zipf.mli: Rng
