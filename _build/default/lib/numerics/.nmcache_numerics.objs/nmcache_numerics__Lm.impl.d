lib/numerics/lm.ml: Array Float Linsolve Matrix
