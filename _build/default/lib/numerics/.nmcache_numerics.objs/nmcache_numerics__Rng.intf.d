lib/numerics/rng.mli:
