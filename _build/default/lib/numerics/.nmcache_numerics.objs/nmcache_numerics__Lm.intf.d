lib/numerics/lm.mli:
