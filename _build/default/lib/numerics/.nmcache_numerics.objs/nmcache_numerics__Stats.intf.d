lib/numerics/stats.mli:
