lib/numerics/linsolve.mli: Matrix
