lib/numerics/zipf.ml: Array Rng
