(** Zipf-distributed sampling over a finite universe.

    Popularity of web objects and database rows is classically modelled
    as Zipf: the i-th most popular of [n] items has probability
    proportional to 1/i^s.  Sampling uses a precomputed inverse-CDF
    table, so draws are O(log n). *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a sampler over ranks [0, n) with exponent
    [s >= 0].  [s = 0] degenerates to the uniform distribution.  Raises
    [Invalid_argument] if [n <= 0] or [s < 0]. *)

val n : t -> int
(** Universe size. *)

val exponent : t -> float
(** The exponent [s]. *)

val sample : t -> Rng.t -> int
(** [sample t rng] draws a rank in [0, n); rank 0 is the most popular. *)

val pmf : t -> int -> float
(** [pmf t k] is the probability of rank [k].  Raises [Invalid_argument]
    when [k] is out of range. *)
