(** Levenberg–Marquardt nonlinear least squares.

    Minimises Σᵢ (f(xᵢ; θ) − yᵢ)² over parameters θ, with Jacobians
    approximated by forward differences.  Sized for the compact-model
    fitting in this project: a handful of parameters, hundreds of
    samples. *)

type result = {
  params : float array;     (** fitted parameter vector *)
  residual : float;         (** final ‖r‖₂ *)
  iterations : int;         (** LM iterations consumed *)
  converged : bool;         (** true when the relative step or residual
                                improvement dropped below tolerance *)
}

val fit :
  ?max_iter:int ->
  ?tol:float ->
  ?lambda0:float ->
  f:(float array -> float array -> float) ->
  xs:float array array ->
  ys:float array ->
  init:float array ->
  unit ->
  result
(** [fit ~f ~xs ~ys ~init ()] fits the model [f theta x] to the samples
    [(xs.(i), ys.(i))] starting from [init].

    @param max_iter iteration cap (default 200).
    @param tol convergence tolerance on relative residual improvement and
           step size (default 1e-10).
    @param lambda0 initial damping (default 1e-3).

    Raises [Invalid_argument] if [xs] and [ys] have different lengths or
    are empty. *)

val residual_of : f:(float array -> float array -> float) ->
  xs:float array array -> ys:float array -> float array -> float
(** [residual_of ~f ~xs ~ys theta] is ‖residual‖₂ for the given
    parameters — the quantity {!fit} minimises. *)
