(** Descriptive statistics and goodness-of-fit metrics. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Population variance.  Raises [Invalid_argument] on an empty array. *)

val stddev : float array -> float
(** Population standard deviation. *)

val minimum : float array -> float
(** Smallest element.  Raises [Invalid_argument] on an empty array. *)

val maximum : float array -> float
(** Largest element.  Raises [Invalid_argument] on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] is the [p]-th percentile (0 ≤ p ≤ 100) with linear
    interpolation between order statistics.  Raises [Invalid_argument]
    on an empty array or out-of-range [p]. *)

val r_squared : actual:float array -> predicted:float array -> float
(** Coefficient of determination of [predicted] against [actual].
    Raises [Invalid_argument] on a length mismatch or empty input.
    When [actual] is constant the result is 1.0 if the prediction is
    exact everywhere and 0.0 otherwise. *)

val max_rel_error : actual:float array -> predicted:float array -> float
(** Largest |predicted − actual| / max(|actual|, tiny) over the samples. *)

val rms_rel_error : actual:float array -> predicted:float array -> float
(** Root-mean-square relative error. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive values.  Raises
    [Invalid_argument] on empty input or non-positive elements. *)
