exception Singular

(* Gaussian elimination with partial pivoting on an augmented copy. *)
let solve a b =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Linsolve.solve: matrix not square";
  if Array.length b <> n then invalid_arg "Linsolve.solve: rhs length mismatch";
  let m = Matrix.copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* pivot selection *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs (Matrix.get m r col) > Float.abs (Matrix.get m !pivot col) then
        pivot := r
    done;
    let p = !pivot in
    if Float.abs (Matrix.get m p col) < 1e-300 then raise Singular;
    if p <> col then begin
      for j = 0 to n - 1 do
        let t = Matrix.get m col j in
        Matrix.set m col j (Matrix.get m p j);
        Matrix.set m p j t
      done;
      let t = x.(col) in
      x.(col) <- x.(p);
      x.(p) <- t
    end;
    let d = Matrix.get m col col in
    for r = col + 1 to n - 1 do
      let f = Matrix.get m r col /. d in
      if f <> 0.0 then begin
        for j = col to n - 1 do
          Matrix.set m r j (Matrix.get m r j -. (f *. Matrix.get m col j))
        done;
        x.(r) <- x.(r) -. (f *. x.(col))
      end
    done
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Matrix.get m i j *. x.(j))
    done;
    x.(i) <- !acc /. Matrix.get m i i
  done;
  x

let lstsq_weighted a b ~weights =
  let nr = Matrix.rows a and nc = Matrix.cols a in
  if Array.length b <> nr then invalid_arg "Linsolve.lstsq: rhs length mismatch";
  if Array.length weights <> nr then invalid_arg "Linsolve.lstsq: weights length mismatch";
  if nr < nc then invalid_arg "Linsolve.lstsq: underdetermined system";
  Array.iter (fun w -> if w < 0.0 then invalid_arg "Linsolve.lstsq: negative weight") weights;
  (* Normal equations: (AᵀWA + ridge·I) x = AᵀWb.  The ridge is scaled to
     the magnitude of the diagonal so it only matters near singularity. *)
  let ata = Matrix.create ~rows:nc ~cols:nc in
  let atb = Array.make nc 0.0 in
  for i = 0 to nr - 1 do
    let w = weights.(i) in
    if w > 0.0 then
      for j = 0 to nc - 1 do
        let aij = Matrix.get a i j in
        atb.(j) <- atb.(j) +. (w *. aij *. b.(i));
        for k = j to nc - 1 do
          Matrix.set ata j k (Matrix.get ata j k +. (w *. aij *. Matrix.get a i k))
        done
      done
  done;
  (* symmetrise *)
  for j = 0 to nc - 1 do
    for k = 0 to j - 1 do
      Matrix.set ata j k (Matrix.get ata k j)
    done
  done;
  let max_diag = ref 0.0 in
  for j = 0 to nc - 1 do
    max_diag := Float.max !max_diag (Float.abs (Matrix.get ata j j))
  done;
  let ridge = 1e-12 *. Float.max !max_diag 1e-30 in
  solve (Matrix.add_diagonal ata ridge) atb

let lstsq a b = lstsq_weighted a b ~weights:(Array.make (Matrix.rows a) 1.0)

let invert a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Linsolve.invert: matrix not square";
  let inv = Matrix.create ~rows:n ~cols:n in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1.0 else 0.0) in
    let col = solve a e in
    for i = 0 to n - 1 do
      Matrix.set inv i j col.(i)
    done
  done;
  inv

let residual_norm a x b =
  let ax = Matrix.mul_vec a x in
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. ((v -. b.(i)) ** 2.0)) ax;
  Float.sqrt !acc
