(** Average memory access time.

    AMAT = T_L1 + m₁ · (T_L2 + m₂ · T_mem), with m₁ the local L1 miss
    rate and m₂ the local L2 miss rate — the delay metric constraining
    every two-level optimisation in the paper (Section 5). *)

val two_level :
  t_l1:float -> t_l2:float -> t_mem:float -> m1:float -> m2:float -> float
(** Raises [Invalid_argument] when a time is negative or a miss rate is
    outside [0, 1]. *)

val single_level : t_l1:float -> t_mem:float -> m1:float -> float
(** AMAT of an L1-only system (used by baseline comparisons). *)

val required_t_l2 :
  amat:float -> t_l1:float -> t_mem:float -> m1:float -> m2:float -> float option
(** Solve for the L2 hit time that meets an AMAT target, if any
    ([None] when even a zero-delay L2 misses it, i.e. the memory terms
    already exceed the target).  Used to translate an AMAT budget into a
    per-cache delay budget. *)
