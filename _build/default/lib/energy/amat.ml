let check_rate name m =
  if m < 0.0 || m > 1.0 then invalid_arg ("Amat: miss rate out of [0,1]: " ^ name)

let check_time name t = if t < 0.0 then invalid_arg ("Amat: negative time: " ^ name)

let two_level ~t_l1 ~t_l2 ~t_mem ~m1 ~m2 =
  check_time "t_l1" t_l1;
  check_time "t_l2" t_l2;
  check_time "t_mem" t_mem;
  check_rate "m1" m1;
  check_rate "m2" m2;
  t_l1 +. (m1 *. (t_l2 +. (m2 *. t_mem)))

let single_level ~t_l1 ~t_mem ~m1 =
  check_time "t_l1" t_l1;
  check_time "t_mem" t_mem;
  check_rate "m1" m1;
  t_l1 +. (m1 *. t_mem)

let required_t_l2 ~amat ~t_l1 ~t_mem ~m1 ~m2 =
  check_rate "m1" m1;
  check_rate "m2" m2;
  if m1 = 0.0 then if t_l1 <= amat then Some Float.infinity else None
  else begin
    let t_l2 = (amat -. t_l1 -. (m1 *. m2 *. t_mem)) /. m1 in
    if t_l2 >= 0.0 then Some t_l2 else None
  end
