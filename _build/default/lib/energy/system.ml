module Component = Nmcache_geometry.Component
module Fitted_cache = Nmcache_fit.Fitted_cache

type t = {
  l1 : Fitted_cache.t;
  l2 : Fitted_cache.t;
  mem : Main_memory.t;
  m1 : float;
  m2 : float;
}

let make ~l1 ~l2 ~mem ~m1 ~m2 =
  let check name m =
    if m < 0.0 || m > 1.0 then invalid_arg ("System.make: bad miss rate " ^ name)
  in
  check "m1" m1;
  check "m2" m2;
  { l1; l2; mem; m1; m2 }

let l1 t = t.l1
let l2 t = t.l2
let mem t = t.mem
let m1 t = t.m1
let m2 t = t.m2

type group = L1_cell | L1_periph | L2_cell | L2_periph

let groups = [ L1_cell; L1_periph; L2_cell; L2_periph ]

let group_name = function
  | L1_cell -> "L1-cell"
  | L1_periph -> "L1-periph"
  | L2_cell -> "L2-cell"
  | L2_periph -> "L2-periph"

let group_index = function L1_cell -> 0 | L1_periph -> 1 | L2_cell -> 2 | L2_periph -> 3

let periph_kinds = [ Component.Decoder; Component.Addr_drivers; Component.Data_drivers ]

type group_eval = {
  delay : float;
  leak_w : float;
  dyn_energy : float;
}

let sum_kinds fitted kinds knob =
  List.fold_left
    (fun acc kind ->
      {
        delay = acc.delay +. Fitted_cache.delay_of fitted kind knob;
        leak_w = acc.leak_w +. Fitted_cache.leak_of fitted kind knob;
        dyn_energy = acc.dyn_energy +. Fitted_cache.energy_of fitted kind knob;
      })
    { delay = 0.0; leak_w = 0.0; dyn_energy = 0.0 }
    kinds

let eval_group t group knob =
  match group with
  | L1_cell -> sum_kinds t.l1 [ Component.Array_sense ] knob
  | L1_periph -> sum_kinds t.l1 periph_kinds knob
  | L2_cell -> sum_kinds t.l2 [ Component.Array_sense ] knob
  | L2_periph -> sum_kinds t.l2 periph_kinds knob

type eval = {
  amat : float;
  energy_per_access : float;
  t_l1 : float;
  t_l2 : float;
  leak_w : float;
  dyn_energy : float;
}

let evaluate t pick =
  let g group = eval_group t group (pick group) in
  let l1c = g L1_cell and l1p = g L1_periph and l2c = g L2_cell and l2p = g L2_periph in
  let t_l1 = l1c.delay +. l1p.delay in
  let t_l2 = l2c.delay +. l2p.delay in
  let amat = Amat.two_level ~t_l1 ~t_l2 ~t_mem:t.mem.Main_memory.t_access ~m1:t.m1 ~m2:t.m2 in
  let e_l1 = l1c.dyn_energy +. l1p.dyn_energy in
  let e_l2 = l2c.dyn_energy +. l2p.dyn_energy in
  let dyn_energy =
    e_l1 +. (t.m1 *. (e_l2 +. (t.m2 *. t.mem.Main_memory.e_access)))
  in
  let leak_w =
    l1c.leak_w +. l1p.leak_w +. l2c.leak_w +. l2p.leak_w +. t.mem.Main_memory.standby_w
  in
  { amat; energy_per_access = dyn_energy +. (leak_w *. amat); t_l1; t_l2; leak_w; dyn_energy }

let evaluate_uniform t knob = evaluate t (fun _ -> knob)
