lib/energy/main_memory.ml: Format Nmcache_physics
