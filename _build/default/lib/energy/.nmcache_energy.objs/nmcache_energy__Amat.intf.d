lib/energy/amat.mli:
