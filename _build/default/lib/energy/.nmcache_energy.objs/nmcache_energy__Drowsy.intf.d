lib/energy/drowsy.mli:
