lib/energy/system.mli: Main_memory Nmcache_fit Nmcache_geometry
