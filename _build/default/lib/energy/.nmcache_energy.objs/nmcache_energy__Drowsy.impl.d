lib/energy/drowsy.ml: Float
