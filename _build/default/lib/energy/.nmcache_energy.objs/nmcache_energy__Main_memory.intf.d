lib/energy/main_memory.mli: Format
