lib/energy/amat.ml: Float
