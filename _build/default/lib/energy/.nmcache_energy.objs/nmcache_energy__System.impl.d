lib/energy/system.ml: Amat List Main_memory Nmcache_fit Nmcache_geometry
