module Units = Nmcache_physics.Units

type t = {
  t_access : float;
  e_access : float;
  standby_w : float;
}

let make ~t_access ~e_access ~standby_w =
  if t_access <= 0.0 then invalid_arg "Main_memory.make: t_access <= 0";
  if e_access <= 0.0 then invalid_arg "Main_memory.make: e_access <= 0";
  if standby_w < 0.0 then invalid_arg "Main_memory.make: standby_w < 0";
  { t_access; e_access; standby_w }

let ddr2_like =
  make ~t_access:(Units.ns 40.0) ~e_access:(Units.pj 2000.0) ~standby_w:(Units.mw 5.0)

let pp fmt t =
  Format.fprintf fmt "mem(t=%s, E=%s, standby=%s)"
    (Units.to_engineering_string ~unit:"s" t.t_access)
    (Units.to_engineering_string ~unit:"J" t.e_access)
    (Units.to_engineering_string ~unit:"W" t.standby_w)
