(** Main-memory model.

    DRAM sits outside the logic process, so it carries no (Vth, Tox)
    knobs; it contributes a fixed access latency and per-access energy
    to AMAT and total energy, plus a small standby power for the on-chip
    interface. *)

type t = {
  t_access : float;   (** access latency [s] *)
  e_access : float;   (** energy per access [J] *)
  standby_w : float;  (** interface standby power charged to the system [W] *)
}

val ddr2_like : t
(** 2005-era DDR2-ish defaults: 40 ns, 2 nJ per access, 5 mW
    interface standby. *)

val make : t_access:float -> e_access:float -> standby_w:float -> t
(** Validated constructor (all values must be positive/non-negative). *)

val pp : Format.formatter -> t -> unit
