(** Drowsy-cache standby mode — the circuit-level alternative the
    paper's references [2,5,6] pursue, built here as an extension so the
    process-knob approach (Vth/Tox assignment) can be compared against
    it inside one framework.

    Model (after Flautner et al.): lines not touched within a window are
    put into a state-preserving low-voltage standby that cuts their
    leakage to [drowsy_factor]; touching a drowsy line pays a wake-up
    latency on that access.  For a steady-state characterisation we
    parameterise by the {e awake fraction} f and the {e drowsy-hit rate}
    h (probability an access lands on a drowsy line):

    - leakage' = P_array·(f + (1−f)·drowsy_factor) + P_periph
    - access'  = access + h·t_wake                                     *)

type policy = {
  drowsy_factor : float;  (** residual leakage of a drowsy cell (0.15) *)
  t_wake : float;         (** wake-up latency [s] (1 cycle ≈ 300 ps) *)
}

val default_policy : policy

val make_policy : drowsy_factor:float -> t_wake:float -> policy
(** Validated constructor: factor in (0, 1], non-negative latency. *)

type effect = {
  awake_fraction : float;
  drowsy_hit_rate : float;
  leak_w : float;        (** cache leakage under the policy [W] *)
  access_time : float;   (** mean access time including wake-ups [s] *)
  leak_saving : float;   (** 1 − leak'/leak at the same knob assignment *)
}

val apply :
  policy ->
  array_leak_w:float ->
  periph_leak_w:float ->
  access_time:float ->
  awake_fraction:float ->
  drowsy_hit_rate:float ->
  effect
(** Steady-state effect of the policy on a cache whose array and
    peripheral leakage and nominal access time are given.  Raises
    [Invalid_argument] for fractions outside [0, 1]. *)

val simulate_awake_fraction :
  window:int ->
  l2_size:int ->
  block:int ->
  accesses_per_window:int ->
  unique_block_fraction:float ->
  float * float
(** Crude analytic estimate of (awake fraction, drowsy-hit rate) for a
    drowsy window of [window] cycles: lines touched in a window stay
    awake.  [accesses_per_window] accesses touch
    [unique_block_fraction · accesses_per_window] distinct lines of the
    [l2_size/block] total; a drowsy hit happens when an access references
    a line not touched in the previous window (approximated by the miss
    of a "cache" of the awake set).  Bounded to [0, 1] on both outputs. *)
