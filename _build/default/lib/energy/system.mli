(** The processor memory system: L1 + L2 + main memory.

    Combines two fitted caches with the miss rates supplied by
    architectural simulation and a main-memory model, and evaluates any
    per-group (Vth, Tox) assignment into (AMAT, total energy per
    access).  Total energy charges dynamic energy along the hit/miss
    path plus all leakage integrated over one average access interval:

    E = E_L1 + m₁·E_L2 + m₁·m₂·E_mem + (P_leak,L1 + P_leak,L2 +
        P_standby,mem) · AMAT

    which is the quantity on Figure 2's y-axis. *)

type t

val make :
  l1:Nmcache_fit.Fitted_cache.t ->
  l2:Nmcache_fit.Fitted_cache.t ->
  mem:Main_memory.t ->
  m1:float ->
  m2:float ->
  t
(** [m1], [m2] are the local L1/L2 miss rates.  Raises
    [Invalid_argument] on rates outside [0, 1]. *)

val l1 : t -> Nmcache_fit.Fitted_cache.t
val l2 : t -> Nmcache_fit.Fitted_cache.t
val mem : t -> Main_memory.t
val m1 : t -> float
val m2 : t -> float

(** {1 Knob groups}

    The Figure-2 optimisation assigns pairs at the granularity the
    single-cache study showed sufficient (scheme II per cache): the cell
    array and the peripherals of each level — four groups. *)

type group = L1_cell | L1_periph | L2_cell | L2_periph

val groups : group list
val group_name : group -> string
val group_index : group -> int
(** 0..3 in [groups] order. *)

type group_eval = {
  delay : float;   (** contribution to that cache's hit time [s] *)
  leak_w : float;
  dyn_energy : float;
}

val eval_group : t -> group -> Nmcache_geometry.Component.knob -> group_eval
(** Fitted-model sums over the components the group covers. *)

type eval = {
  amat : float;             (** [s] *)
  energy_per_access : float; (** [J] — Figure 2's y-axis *)
  t_l1 : float;
  t_l2 : float;
  leak_w : float;           (** total system leakage [W] *)
  dyn_energy : float;       (** dynamic energy per access [J] *)
}

val evaluate :
  t -> (group -> Nmcache_geometry.Component.knob) -> eval
(** Evaluate a full system assignment. *)

val evaluate_uniform : t -> Nmcache_geometry.Component.knob -> eval
(** All four groups on one pair (baseline). *)
