type policy = {
  drowsy_factor : float;
  t_wake : float;
}

let make_policy ~drowsy_factor ~t_wake =
  if drowsy_factor <= 0.0 || drowsy_factor > 1.0 then
    invalid_arg "Drowsy.make_policy: factor outside (0,1]";
  if t_wake < 0.0 then invalid_arg "Drowsy.make_policy: negative wake latency";
  { drowsy_factor; t_wake }

let default_policy = make_policy ~drowsy_factor:0.15 ~t_wake:300e-12

type effect = {
  awake_fraction : float;
  drowsy_hit_rate : float;
  leak_w : float;
  access_time : float;
  leak_saving : float;
}

let apply policy ~array_leak_w ~periph_leak_w ~access_time ~awake_fraction
    ~drowsy_hit_rate =
  let check name v =
    if v < 0.0 || v > 1.0 then invalid_arg ("Drowsy.apply: bad fraction " ^ name)
  in
  check "awake_fraction" awake_fraction;
  check "drowsy_hit_rate" drowsy_hit_rate;
  let array' =
    array_leak_w *. (awake_fraction +. ((1.0 -. awake_fraction) *. policy.drowsy_factor))
  in
  let leak_w = array' +. periph_leak_w in
  let nominal = array_leak_w +. periph_leak_w in
  {
    awake_fraction;
    drowsy_hit_rate;
    leak_w;
    access_time = access_time +. (drowsy_hit_rate *. policy.t_wake);
    leak_saving = (if nominal > 0.0 then 1.0 -. (leak_w /. nominal) else 0.0);
  }

let simulate_awake_fraction ~window ~l2_size ~block ~accesses_per_window
    ~unique_block_fraction =
  if window <= 0 || l2_size <= 0 || block <= 0 then
    invalid_arg "Drowsy.simulate_awake_fraction: non-positive parameter";
  let lines = float_of_int (l2_size / block) in
  let touched =
    Float.min lines (unique_block_fraction *. float_of_int accesses_per_window)
  in
  let awake = Float.min 1.0 (touched /. lines) in
  (* an access hits a drowsy line when it references something outside
     the touched set of the previous window; with temporal locality most
     re-references are recent, so approximate by the fraction of
     accesses that are "new" in a window *)
  let drowsy_hit =
    Float.min 1.0 (touched /. Float.max 1.0 (float_of_int accesses_per_window))
  in
  (awake, drowsy_hit)
