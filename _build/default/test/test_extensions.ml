(* Tests for the extension substrates: variation, annealing, traces,
   drowsy standby. *)

module Units = Nmcache_physics.Units
module Tech = Nmcache_device.Tech
module Variation = Nmcache_device.Variation
module Config = Nmcache_geometry.Config
module Component = Nmcache_geometry.Component
module Cache_model = Nmcache_geometry.Cache_model
module Fitted_cache = Nmcache_fit.Fitted_cache
module Grid = Nmcache_opt.Grid
module Scheme = Nmcache_opt.Scheme
module Anneal = Nmcache_opt.Anneal
module Drowsy = Nmcache_energy.Drowsy
module Trace = Nmcache_cachesim.Trace
module Cache = Nmcache_cachesim.Cache
module Replacement = Nmcache_cachesim.Replacement
module Stats = Nmcache_cachesim.Stats
module Gen = Nmcache_workload.Gen
module Access = Nmcache_workload.Access
module Rng = Nmcache_numerics.Rng

let tech = Tech.bptm65

(* --- variation -------------------------------------------------------- *)

let test_pelgrom_scaling () =
  (* sigma falls as 1/sqrt(area): 4x the width halves the sigma *)
  let tox = Units.angstrom 12.0 in
  let s1 = Variation.sigma_vth tech ~w:(Units.nm 100.0) ~tox in
  let s4 = Variation.sigma_vth tech ~w:(Units.nm 400.0) ~tox in
  Alcotest.(check bool) "1/sqrt(W)" true (Float.abs ((s1 /. s4) -. 2.0) < 1e-9);
  (* minimum-ish device sigma is tens of mV at 65nm *)
  Alcotest.(check bool) "magnitude" true (s1 > 0.01 && s1 < 0.1)

let test_inflation_analytic_vs_mc () =
  let rng = Rng.create ~seed:123L in
  let sigma = 0.03 in
  let analytic =
    Variation.mean_inflation ~sigma ~n_swing:tech.Tech.n_swing ~temp_k:300.0
  in
  let mc =
    Variation.mc_inflation ~rng ~sigma ~n_swing:tech.Tech.n_swing ~temp_k:300.0
      ~samples:400_000
  in
  Alcotest.(check bool) "inflation > 1" true (analytic > 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "MC %.4f ~ analytic %.4f" mc analytic)
    true
    (Float.abs (mc -. analytic) /. analytic < 0.02)

let test_inflation_monotone_in_sigma () =
  let f sigma = Variation.mean_inflation ~sigma ~n_swing:1.35 ~temp_k:300.0 in
  Alcotest.(check bool) "more variation, more inflation" true (f 0.04 > f 0.02);
  Alcotest.(check bool) "zero sigma, no inflation" true (Float.abs (f 0.0 -. 1.0) < 1e-12)

let test_percentile_factor () =
  let p50 = Variation.sigma_percentile_leakage ~sigma:0.03 ~n_swing:1.35 ~temp_k:300.0 ~percentile:50.0 in
  Alcotest.(check bool) "median device is nominal" true (Float.abs (p50 -. 1.0) < 1e-6);
  let p999 = Variation.sigma_percentile_leakage ~sigma:0.03 ~n_swing:1.35 ~temp_k:300.0 ~percentile:99.9 in
  Alcotest.(check bool) "tail device leaks much more" true (p999 > 5.0);
  Alcotest.(check bool) "validation" true
    (try
       ignore (Variation.sigma_percentile_leakage ~sigma:0.03 ~n_swing:1.35 ~temp_k:300.0 ~percentile:0.0);
       false
     with Invalid_argument _ -> true)

let test_gaussian_moments () =
  let rng = Rng.create ~seed:9L in
  let n = 200_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Variation.gaussian rng in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.01);
  Alcotest.(check bool) "var ~ 1" true (Float.abs (var -. 1.0) < 0.02)

(* --- anneal ------------------------------------------------------------ *)

let fitted =
  lazy
    (Fitted_cache.characterize_and_fit
       (Cache_model.make tech (Config.make ~size_bytes:(16 * 1024) ~assoc:4 ~block_bytes:64 ())))

let test_anneal_close_to_dp () =
  let f = Lazy.force fitted in
  let grid = Grid.coarse tech in
  let fast = Scheme.fastest_access_time f ~grid in
  List.iter
    (fun mult ->
      let budget = mult *. fast in
      match Scheme.minimize_leakage f ~grid ~scheme:Scheme.Independent ~delay_budget:budget with
      | None -> Alcotest.fail "DP should be feasible"
      | Some dp ->
        let sa = Anneal.minimize_leakage f ~grid ~delay_budget:budget () in
        Alcotest.(check bool) "SA feasible" true sa.Anneal.feasible;
        Alcotest.(check bool) "SA meets the budget" true
          (sa.Anneal.access_time <= budget *. 1.0000001);
        Alcotest.(check bool)
          (Printf.sprintf "SA within 15%% of DP (%.4g vs %.4g)" sa.Anneal.leak_w
             dp.Scheme.leak_w)
          true
          (sa.Anneal.leak_w <= dp.Scheme.leak_w *. 1.15);
        (* DP is optimal: SA can never beat it (same grid) *)
        Alcotest.(check bool) "SA >= DP" true
          (sa.Anneal.leak_w >= dp.Scheme.leak_w *. 0.999999))
    [ 1.15; 1.35; 1.7 ]

let test_anneal_deterministic () =
  let f = Lazy.force fitted in
  let grid = Grid.coarse tech in
  let budget = 1.3 *. Scheme.fastest_access_time f ~grid in
  let r1 = Anneal.minimize_leakage f ~grid ~delay_budget:budget () in
  let r2 = Anneal.minimize_leakage f ~grid ~delay_budget:budget () in
  Alcotest.(check bool) "same seed, same answer" true (r1.Anneal.leak_w = r2.Anneal.leak_w)

let test_anneal_validation () =
  let f = Lazy.force fitted in
  Alcotest.(check bool) "bad budget" true
    (try
       ignore (Anneal.minimize_leakage f ~grid:(Grid.coarse tech) ~delay_budget:0.0 ());
       false
     with Invalid_argument _ -> true)

(* --- trace -------------------------------------------------------------- *)

let test_trace_record_replay () =
  let g = Gen.cyclic ~name:"c" ~length:8 ~stride:64 () in
  let t =
    Trace.record
      ~next:(fun () ->
        let a = Gen.next g in
        { Trace.addr = a.Access.addr; write = a.Access.write })
      ~n:64
  in
  Alcotest.(check int) "length" 64 (Trace.length t);
  let c1 =
    Cache.create ~size_bytes:1024 ~assoc:2 ~block_bytes:64 ~policy:Replacement.Lru ()
  in
  let c2 =
    Cache.create ~size_bytes:1024 ~assoc:2 ~block_bytes:64 ~policy:Replacement.Lru ()
  in
  Trace.replay t c1;
  Trace.replay t c2;
  Alcotest.(check int) "replay deterministic" (Cache.stats c1).Stats.misses
    (Cache.stats c2).Stats.misses

let test_trace_analyze () =
  let entries =
    Array.init 100 (fun i -> { Trace.addr = i * 8; write = i mod 4 = 0 })
  in
  let s = Trace.analyze (Trace.of_entries entries) in
  Alcotest.(check int) "accesses" 100 s.Trace.accesses;
  Alcotest.(check int) "writes" 25 s.Trace.writes;
  (* 100 words of 8B = 800B = 13 blocks of 64B *)
  Alcotest.(check int) "distinct blocks" 13 s.Trace.distinct_blocks;
  Alcotest.(check bool) "fully sequential" true (s.Trace.sequential_fraction > 0.98)

let test_trace_validation () =
  Alcotest.(check bool) "empty analyze" true
    (try
       ignore (Trace.analyze (Trace.of_entries [||]));
       false
     with Invalid_argument _ -> true)

(* --- drowsy ------------------------------------------------------------- *)

let test_drowsy_bounds () =
  let p = Drowsy.default_policy in
  let e =
    Drowsy.apply p ~array_leak_w:0.1 ~periph_leak_w:0.02 ~access_time:1e-9
      ~awake_fraction:0.1 ~drowsy_hit_rate:0.05
  in
  (* leakage between the all-drowsy floor and nominal *)
  let floor = (0.1 *. p.Drowsy.drowsy_factor) +. 0.02 in
  Alcotest.(check bool) "above floor" true (e.Drowsy.leak_w >= floor -. 1e-15);
  Alcotest.(check bool) "below nominal" true (e.Drowsy.leak_w <= 0.12);
  Alcotest.(check bool) "wake penalty" true (e.Drowsy.access_time > 1e-9);
  Alcotest.(check bool) "saving in (0,1)" true
    (e.Drowsy.leak_saving > 0.0 && e.Drowsy.leak_saving < 1.0)

let test_drowsy_extremes () =
  let p = Drowsy.default_policy in
  let all_awake =
    Drowsy.apply p ~array_leak_w:0.1 ~periph_leak_w:0.0 ~access_time:1e-9
      ~awake_fraction:1.0 ~drowsy_hit_rate:0.0
  in
  Alcotest.(check bool) "all awake = nominal" true
    (Float.abs (all_awake.Drowsy.leak_w -. 0.1) < 1e-15
    && all_awake.Drowsy.access_time = 1e-9);
  let all_drowsy =
    Drowsy.apply p ~array_leak_w:0.1 ~periph_leak_w:0.0 ~access_time:1e-9
      ~awake_fraction:0.0 ~drowsy_hit_rate:1.0
  in
  Alcotest.(check bool) "all drowsy = factor" true
    (Float.abs (all_drowsy.Drowsy.leak_w -. (0.1 *. p.Drowsy.drowsy_factor)) < 1e-15)

let test_drowsy_validation () =
  Alcotest.(check bool) "bad factor" true
    (try
       ignore (Drowsy.make_policy ~drowsy_factor:0.0 ~t_wake:1e-10);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad fraction" true
    (try
       ignore
         (Drowsy.apply Drowsy.default_policy ~array_leak_w:1.0 ~periph_leak_w:0.0
            ~access_time:1e-9 ~awake_fraction:1.5 ~drowsy_hit_rate:0.0);
       false
     with Invalid_argument _ -> true)

let test_drowsy_awake_estimate () =
  let awake, hit =
    Drowsy.simulate_awake_fraction ~window:4000 ~l2_size:(1 lsl 20) ~block:64
      ~accesses_per_window:2000 ~unique_block_fraction:0.35
  in
  Alcotest.(check bool) "fractions in [0,1]" true
    (awake >= 0.0 && awake <= 1.0 && hit >= 0.0 && hit <= 1.0);
  (* a bigger window keeps more lines awake *)
  let awake2, _ =
    Drowsy.simulate_awake_fraction ~window:4000 ~l2_size:(1 lsl 20) ~block:64
      ~accesses_per_window:8000 ~unique_block_fraction:0.35
  in
  Alcotest.(check bool) "more accesses per window, more awake" true (awake2 >= awake)

let suite =
  [
    Alcotest.test_case "pelgrom scaling" `Quick test_pelgrom_scaling;
    Alcotest.test_case "inflation analytic vs MC" `Quick test_inflation_analytic_vs_mc;
    Alcotest.test_case "inflation monotone" `Quick test_inflation_monotone_in_sigma;
    Alcotest.test_case "percentile factors" `Quick test_percentile_factor;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "anneal close to DP" `Quick test_anneal_close_to_dp;
    Alcotest.test_case "anneal deterministic" `Quick test_anneal_deterministic;
    Alcotest.test_case "anneal validation" `Quick test_anneal_validation;
    Alcotest.test_case "trace record/replay" `Quick test_trace_record_replay;
    Alcotest.test_case "trace analysis" `Quick test_trace_analyze;
    Alcotest.test_case "trace validation" `Quick test_trace_validation;
    Alcotest.test_case "drowsy bounds" `Quick test_drowsy_bounds;
    Alcotest.test_case "drowsy extremes" `Quick test_drowsy_extremes;
    Alcotest.test_case "drowsy validation" `Quick test_drowsy_validation;
    Alcotest.test_case "drowsy awake estimate" `Quick test_drowsy_awake_estimate;
  ]
