(* Tests for the transient nodal simulator, and the cross-validation of
   the closed-form timing models against simulated waveforms — the
   strongest evidence that the "HSPICE substitute" stack is coherent. *)

module Units = Nmcache_physics.Units
module Tech = Nmcache_device.Tech
module Transient = Nmcache_circuit.Transient
module Sram_cell = Nmcache_circuit.Sram_cell
module Netlist = Nmcache_circuit.Netlist
module Rc = Nmcache_circuit.Rc

let tech = Tech.bptm65

let test_rc_step_response () =
  (* one node: R from a 1V step source, C to ground.  v(t) = 1 - e^{-t/RC} *)
  let r = 1e3 and c = 1e-12 in
  let ckt = Transient.create ~nodes:1 in
  Transient.add_capacitor ckt ~a:0 ~farads:c;
  Transient.add_voltage_drive ckt ~a:0 ~volts:(fun _ -> 1.0) ~r_source:r;
  let tau = r *. c in
  let w = Transient.simulate ckt ~v0:[| 0.0 |] ~dt:(tau /. 200.0) ~steps:2000 in
  (* sample at t = tau: expect 1 - 1/e *)
  let v_tau = Transient.node_voltage w ~node:0 ~step:200 in
  Alcotest.(check bool)
    (Printf.sprintf "v(tau) = %.4f ~ 0.632" v_tau)
    true
    (Float.abs (v_tau -. (1.0 -. Float.exp (-1.0))) < 0.01);
  (* 50% crossing at t = RC ln 2 *)
  match Transient.crossing_time w ~node:0 ~threshold:0.5 ~rising:true with
  | None -> Alcotest.fail "never crossed"
  | Some t ->
    Alcotest.(check bool)
      (Printf.sprintf "t50 = %.3g ~ %.3g" t (tau *. Float.log 2.0))
      true
      (Float.abs (t -. (tau *. Float.log 2.0)) /. (tau *. Float.log 2.0) < 0.02)

let test_constant_current_discharge () =
  (* capacitor discharged by a constant current: linear ramp *)
  let c = 10e-15 and i = 50e-6 in
  let ckt = Transient.create ~nodes:1 in
  Transient.add_capacitor ckt ~a:0 ~farads:c;
  Transient.add_current_source ckt ~a:0 ~amps:(fun _ -> -.i);
  (* tiny leak to ground keeps the G matrix non-singular *)
  Transient.add_resistor ckt ~a:0 ~b:None ~ohms:1e12;
  let w = Transient.simulate ckt ~v0:[| 1.0 |] ~dt:1e-13 ~steps:2000 in
  (* dV/dt = -I/C: the 0.9V crossing is at t = 0.1 C / I *)
  (match Transient.crossing_time w ~node:0 ~threshold:0.9 ~rising:false with
  | None -> Alcotest.fail "no discharge"
  | Some t ->
    let expected = 0.1 *. c /. i in
    Alcotest.(check bool)
      (Printf.sprintf "t = %.3g ~ %.3g" t expected)
      true
      (Float.abs (t -. expected) /. expected < 0.02))

let test_two_stage_ladder_vs_elmore () =
  (* R1-C1-R2-C2 ladder step response: the 50% crossing at the far node
     should sit within ~30% of ln2 x Elmore delay *)
  let r1 = 2e3 and c1 = 2e-15 and r2 = 3e3 and c2 = 4e-15 in
  let ckt = Transient.create ~nodes:2 in
  Transient.add_capacitor ckt ~a:0 ~farads:c1;
  Transient.add_capacitor ckt ~a:1 ~farads:c2;
  Transient.add_voltage_drive ckt ~a:0 ~volts:(fun _ -> 1.0) ~r_source:r1;
  Transient.add_resistor ckt ~a:0 ~b:(Some 1) ~ohms:r2;
  let elmore = (r1 *. (c1 +. c2)) +. (r2 *. c2) in
  let w = Transient.simulate ckt ~v0:[| 0.0; 0.0 |] ~dt:(elmore /. 500.0) ~steps:5000 in
  match Transient.crossing_time w ~node:1 ~threshold:0.5 ~rising:true with
  | None -> Alcotest.fail "no rise"
  | Some t ->
    let expected = Float.log 2.0 *. elmore in
    Alcotest.(check bool)
      (Printf.sprintf "t50 %.3g vs ln2*Elmore %.3g" t expected)
      true
      (t > 0.6 *. expected && t < 1.4 *. expected)

let test_bitline_closed_form_vs_transient () =
  (* the cache model's bitline discharge estimate vs a transient
     simulation of the distributed line with the cell's read current *)
  let cell = Sram_cell.make tech ~vth:0.3 ~tox:(Units.angstrom 12.0) in
  let rows = 64 in
  let swing = 0.1 in
  let closed = Netlist.bitline_discharge tech ~cell ~rows ~sense_swing:swing in
  (* transient: 8 lumped segments of the bitline, cell current at the
     far end *)
  let segs = 8 in
  let rows_per_seg = rows / segs in
  let seg_c =
    float_of_int rows_per_seg
    *. ((tech.Tech.wire_c_per_m *. cell.Sram_cell.height)
       +. Sram_cell.drain_load tech cell)
  in
  let seg_r =
    float_of_int rows_per_seg *. tech.Tech.wire_r_per_m *. cell.Sram_cell.height
  in
  let ckt = Transient.create ~nodes:segs in
  for s = 0 to segs - 1 do
    Transient.add_capacitor ckt ~a:s ~farads:seg_c;
    if s < segs - 1 then Transient.add_resistor ckt ~a:s ~b:(Some (s + 1)) ~ohms:seg_r
  done;
  Transient.add_resistor ckt ~a:0 ~b:None ~ohms:1e12;
  let i_read = Sram_cell.read_current tech cell in
  Transient.add_current_source ckt ~a:(segs - 1) ~amps:(fun _ -> -.i_read);
  let vdd = tech.Tech.vdd in
  let v0 = Array.make segs vdd in
  let w = Transient.simulate ckt ~v0 ~dt:(closed /. 300.0) ~steps:3000 in
  (* sense at the near end (node 0) *)
  match
    Transient.crossing_time w ~node:0 ~threshold:(vdd -. (swing *. vdd)) ~rising:false
  with
  | None -> Alcotest.fail "bitline never developed the swing"
  | Some t ->
    Alcotest.(check bool)
      (Printf.sprintf "transient %.3g vs closed form %.3g" t closed)
      true
      (t > 0.4 *. closed && t < 2.5 *. closed)

let test_validation () =
  let ckt = Transient.create ~nodes:1 in
  Alcotest.(check bool) "bad resistor" true
    (try
       Transient.add_resistor ckt ~a:0 ~b:None ~ohms:0.0;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad node" true
    (try
       Transient.add_capacitor ckt ~a:3 ~farads:1e-15;
       false
     with Invalid_argument _ -> true);
  Transient.add_capacitor ckt ~a:0 ~farads:1e-15;
  Alcotest.(check bool) "bad dt" true
    (try
       ignore (Transient.simulate ckt ~v0:[| 0.0 |] ~dt:0.0 ~steps:10);
       false
     with Invalid_argument _ -> true)

let test_energy_conservation_flavour () =
  (* a floating RC with no sources must decay monotonically to zero *)
  let ckt = Transient.create ~nodes:1 in
  Transient.add_capacitor ckt ~a:0 ~farads:1e-12;
  Transient.add_resistor ckt ~a:0 ~b:None ~ohms:1e3;
  let w = Transient.simulate ckt ~v0:[| 1.0 |] ~dt:1e-11 ~steps:1000 in
  let last = Transient.node_voltage w ~node:0 ~step:1000 in
  Alcotest.(check bool) "decays" true (last < 0.01 && last >= -0.01);
  for s = 1 to 1000 do
    Alcotest.(check bool) "monotone decay" true
      (Transient.node_voltage w ~node:0 ~step:s
      <= Transient.node_voltage w ~node:0 ~step:(s - 1) +. 1e-12)
  done

let suite =
  [
    Alcotest.test_case "RC step response" `Quick test_rc_step_response;
    Alcotest.test_case "constant-current discharge" `Quick test_constant_current_discharge;
    Alcotest.test_case "ladder vs Elmore" `Quick test_two_stage_ladder_vs_elmore;
    Alcotest.test_case "bitline closed form vs transient" `Quick
      test_bitline_closed_form_vs_transient;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "source-free decay" `Quick test_energy_conservation_flavour;
  ]
