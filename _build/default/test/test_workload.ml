(* Tests for the synthetic workload generators and miss-rate tables. *)

module Gen = Nmcache_workload.Gen
module Access = Nmcache_workload.Access
module Regions = Nmcache_workload.Regions
module Suites = Nmcache_workload.Suites
module Registry = Nmcache_workload.Registry
module Missrate = Nmcache_workload.Missrate
module Rng = Nmcache_numerics.Rng

let kb n = n * 1024
let mb n = n * 1024 * 1024

(* --- micro generators --------------------------------------------------- *)

let test_sequential () =
  let g = Gen.sequential ~start:100 ~stride:8 ~name:"seq" () in
  let xs = Gen.take g 4 in
  Alcotest.(check (list int)) "addresses" [ 100; 108; 116; 124 ]
    (Array.to_list (Array.map (fun (a : Access.t) -> a.Access.addr) xs))

let test_cyclic () =
  let g = Gen.cyclic ~start:0 ~stride:64 ~name:"cyc" ~length:3 () in
  let xs = Array.map (fun (a : Access.t) -> a.Access.addr) (Gen.take g 7) in
  Alcotest.(check (list int)) "wraps" [ 0; 64; 128; 0; 64; 128; 0 ] (Array.to_list xs)

let test_uniform_random_in_range () =
  let rng = Rng.create ~seed:20L in
  let g = Gen.uniform_random ~base:1000 ~name:"u" ~rng ~footprint:(kb 64) () in
  Gen.iter g 10_000 (fun a ->
      Alcotest.(check bool) "in region" true
        (a.Access.addr >= 1000 && a.Access.addr < 1000 + kb 64))

let test_mix_weights () =
  let rng = Rng.create ~seed:21L in
  let left = Gen.sequential ~start:0 ~name:"left" () in
  let right = Gen.sequential ~start:(mb 512) ~name:"right" () in
  let g = Gen.mix ~name:"m" ~rng [ (0.8, left); (0.2, right) ] in
  let n = 50_000 in
  let left_count = ref 0 in
  Gen.iter g n (fun a -> if a.Access.addr < mb 512 then incr left_count);
  let frac = float_of_int !left_count /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "left fraction %.3f" frac) true
    (Float.abs (frac -. 0.8) < 0.02)

let test_write_fraction () =
  let rng = Rng.create ~seed:22L in
  let g = Gen.with_write_fraction ~rng ~p:0.3 (Gen.sequential ~name:"s" ()) in
  let writes = ref 0 in
  let n = 50_000 in
  Gen.iter g n (fun a -> if a.Access.write then incr writes);
  let frac = float_of_int !writes /. float_of_int n in
  Alcotest.(check bool) "30% writes" true (Float.abs (frac -. 0.3) < 0.02)

(* --- regions ------------------------------------------------------------- *)

let test_locality_walker_region () =
  let rng = Rng.create ~seed:23L in
  let next = Regions.locality_walker ~rng ~base:(kb 4) ~bytes:(kb 8) ~p_continue:0.7 () in
  for _ = 1 to 5_000 do
    let a = next () in
    Alcotest.(check bool) "stays in region" true
      (a.Access.addr >= kb 4 && a.Access.addr < kb 12)
  done

let test_zipf_blocks_region_and_runs () =
  let rng = Rng.create ~seed:24L in
  let next = Regions.zipf_blocks ~rng ~base:0 ~bytes:(kb 64) ~block:64 ~s:0.8 ~run:4 () in
  let prev = ref (-1) in
  let sequential_steps = ref 0 in
  let total = 10_000 in
  for _ = 1 to total do
    let a = next () in
    Alcotest.(check bool) "in region" true (a.Access.addr >= 0 && a.Access.addr < kb 64);
    if !prev >= 0 && a.Access.addr = !prev + 8 then incr sequential_steps;
    prev := a.Access.addr
  done;
  (* runs of 4 mean ~3/4 of steps are sequential *)
  let frac = float_of_int !sequential_steps /. float_of_int total in
  Alcotest.(check bool) (Printf.sprintf "run locality %.2f" frac) true (frac > 0.5)

let test_stream_wraps () =
  let next = Regions.stream ~base:0 ~bytes:256 ~stride:64 () in
  let xs = List.init 5 (fun _ -> (next ()).Access.addr) in
  Alcotest.(check (list int)) "wraps" [ 0; 64; 128; 192; 0 ] xs

(* --- suites ---------------------------------------------------------------- *)

let test_generators_deterministic () =
  List.iter
    (fun name ->
      let g1 = Registry.build ~seed:5L name in
      let g2 = Registry.build ~seed:5L name in
      let t1 = Gen.take g1 1000 and t2 = Gen.take g2 1000 in
      Alcotest.(check bool) (name ^ " deterministic") true (t1 = t2))
    Registry.names

let test_generators_seed_sensitivity () =
  let g1 = Registry.build ~seed:5L "spec2000-mix" in
  let g2 = Registry.build ~seed:6L "spec2000-mix" in
  Alcotest.(check bool) "different seeds differ" true (Gen.take g1 200 <> Gen.take g2 200)

let test_registry () =
  Alcotest.(check int) "seven workloads" 7 (List.length Registry.all);
  Alcotest.(check bool) "find works" true (Registry.find "tpcc" <> None);
  Alcotest.(check bool) "unknown is None" true (Registry.find "nope" = None);
  Alcotest.(check bool) "headline subset" true
    (List.for_all (fun w -> Registry.find w <> None) Registry.headline)

let test_registry_unknown_build () =
  Alcotest.(check bool) "build unknown raises" true
    (try
       ignore (Registry.build "nope");
       false
     with Invalid_argument _ -> true)

let test_spec_variants_differ () =
  let take v = Gen.take (Suites.spec_like ~variant:v ~seed:1L ()) 500 in
  Alcotest.(check bool) "gcc and mcf differ" true (take Suites.Gcc <> take Suites.Mcf)

(* --- miss rates -------------------------------------------------------------- *)

let n_test = 300_000

let test_l1_missrate_plausible () =
  List.iter
    (fun w ->
      let p = Missrate.simulate ~workload:w ~l1_size:(kb 16) ~l2_size:(mb 1) ~n:n_test () in
      Alcotest.(check bool)
        (Printf.sprintf "%s L1 miss %.1f%% in (0.5,25)" w (100.0 *. p.Missrate.l1_miss))
        true
        (p.Missrate.l1_miss > 0.005 && p.Missrate.l1_miss < 0.25);
      Alcotest.(check bool) "l2 local in (0,1)" true
        (p.Missrate.l2_local > 0.0 && p.Missrate.l2_local < 1.0);
      Alcotest.(check bool) "global <= l1 miss" true
        (p.Missrate.l2_global <= p.Missrate.l1_miss +. 1e-9))
    Registry.headline

let test_l2_curve_decreasing () =
  let sizes = [| kb 256; kb 512; mb 1; mb 2 |] in
  List.iter
    (fun w ->
      let c = Missrate.l2_curve ~workload:w ~l1_size:(kb 16) ~l2_sizes:sizes ~n:n_test () in
      for i = 1 to Array.length sizes - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "%s curve non-increasing at %d" w i)
          true
          (c.Missrate.l2_local_rates.(i) <= c.Missrate.l2_local_rates.(i - 1) +. 1e-9)
      done)
    Registry.headline

let test_l1_sweep_decreasing () =
  let sizes = [| kb 4; kb 16; kb 64 |] in
  let ms = Missrate.l1_sweep ~workload:"spec2000-mix" ~l1_sizes:sizes ~n:n_test () in
  Alcotest.(check bool) "bigger L1 fewer misses" true (ms.(2) < ms.(0))

let test_averaged_curve () =
  let sizes = [| kb 256; mb 1 |] in
  let avg =
    Missrate.averaged_l2_curve ~workloads:[ "spec2000-gcc"; "tpcc" ] ~l1_size:(kb 16)
      ~l2_sizes:sizes ~n:n_test ()
  in
  let a = Missrate.l2_curve ~workload:"spec2000-gcc" ~l1_size:(kb 16) ~l2_sizes:sizes ~n:n_test () in
  let b = Missrate.l2_curve ~workload:"tpcc" ~l1_size:(kb 16) ~l2_sizes:sizes ~n:n_test () in
  let expected = (a.Missrate.l2_local_rates.(0) +. b.Missrate.l2_local_rates.(0)) /. 2.0 in
  Alcotest.(check bool) "mean of curves" true
    (Float.abs (avg.Missrate.l2_local_rates.(0) -. expected) < 1e-12)

let test_memoisation () =
  (* second call must return the identical cached value *)
  let p1 = Missrate.simulate ~workload:"tpcc" ~l1_size:(kb 16) ~l2_size:(mb 1) ~n:n_test () in
  let p2 = Missrate.simulate ~workload:"tpcc" ~l1_size:(kb 16) ~l2_size:(mb 1) ~n:n_test () in
  Alcotest.(check bool) "memoised" true (p1 = p2)

let suite =
  [
    Alcotest.test_case "sequential generator" `Quick test_sequential;
    Alcotest.test_case "cyclic generator" `Quick test_cyclic;
    Alcotest.test_case "uniform random in range" `Quick test_uniform_random_in_range;
    Alcotest.test_case "mix weights" `Quick test_mix_weights;
    Alcotest.test_case "write fraction" `Quick test_write_fraction;
    Alcotest.test_case "locality walker region" `Quick test_locality_walker_region;
    Alcotest.test_case "zipf blocks region and runs" `Quick test_zipf_blocks_region_and_runs;
    Alcotest.test_case "stream wraps" `Quick test_stream_wraps;
    Alcotest.test_case "generators deterministic" `Quick test_generators_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_generators_seed_sensitivity;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "unknown workload" `Quick test_registry_unknown_build;
    Alcotest.test_case "spec variants differ" `Quick test_spec_variants_differ;
    Alcotest.test_case "L1 miss rates plausible" `Slow test_l1_missrate_plausible;
    Alcotest.test_case "L2 curves decreasing" `Slow test_l2_curve_decreasing;
    Alcotest.test_case "L1 sweep decreasing" `Slow test_l1_sweep_decreasing;
    Alcotest.test_case "averaged curve" `Slow test_averaged_curve;
    Alcotest.test_case "memoisation" `Slow test_memoisation;
  ]
