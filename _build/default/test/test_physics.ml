(* Unit tests for nmcache_physics: constants and unit conversions. *)

module Constants = Nmcache_physics.Constants
module Units = Nmcache_physics.Units

let close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.12g vs %.12g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= eps *. Float.max 1.0 (Float.abs expected))

let test_thermal_voltage () =
  close "vT at 300K" 0.025852 (Constants.thermal_voltage ~temp_k:300.0) ~eps:1e-4;
  close "vT at 358K" 0.030850 (Constants.thermal_voltage ~temp_k:358.0) ~eps:1e-4

let test_thermal_voltage_invalid () =
  Alcotest.check_raises "temp <= 0 rejected"
    (Invalid_argument "Constants.thermal_voltage: temp_k <= 0") (fun () ->
      ignore (Constants.thermal_voltage ~temp_k:0.0))

let test_bandgap () =
  (* silicon bandgap shrinks with temperature; ~1.12 eV at 300 K *)
  let eg300 = Constants.silicon_bandgap ~temp_k:300.0 in
  let eg400 = Constants.silicon_bandgap ~temp_k:400.0 in
  close "Eg(300K)" 1.1245 eg300 ~eps:1e-3;
  Alcotest.(check bool) "Eg decreases with T" true (eg400 < eg300)

let test_permittivities () =
  Alcotest.(check bool) "eps ordering" true
    (Constants.eps0 < Constants.eps_sio2 && Constants.eps_sio2 < Constants.eps_si)

let test_length_roundtrip () =
  close "angstrom roundtrip" 12.0 (Units.to_angstrom (Units.angstrom 12.0));
  close "nm roundtrip" 65.0 (Units.to_nm (Units.nm 65.0));
  close "um roundtrip" 3.5 (Units.to_um (Units.um 3.5));
  close "1 nm = 10 A" 10.0 (Units.to_angstrom (Units.nm 1.0))

let test_time_power_energy () =
  close "ps roundtrip" 250.0 (Units.to_ps (Units.ps 250.0));
  close "ns to ps" 1500.0 (Units.to_ps (Units.ns 1.5));
  close "mw roundtrip" 42.0 (Units.to_mw (Units.mw 42.0));
  close "uw in mw" 0.5 (Units.to_mw (Units.uw 500.0));
  close "pj roundtrip" 7.0 (Units.to_pj (Units.pj 7.0));
  close "fj in pj" 0.25 (Units.to_pj (Units.fj 250.0));
  close "ff roundtrip" 12.0 (Units.to_ff (Units.ff 12.0));
  close "na/ua" 1000.0 (Units.to_na (Units.ua 1.0))

let test_area () =
  close "m2 to cm2" 1e4 (Units.cm2_of_m2 1.0);
  close "cm2 roundtrip" 2.5 (Units.cm2_of_m2 (Units.m2_of_cm2 2.5))

let test_engineering_format () =
  Alcotest.(check string) "ps" "320.00 ps" (Units.to_engineering_string ~unit:"s" 320e-12);
  Alcotest.(check string) "mW" "54.00 mW" (Units.to_engineering_string ~unit:"W" 0.054);
  Alcotest.(check string) "zero" "0 s" (Units.to_engineering_string ~unit:"s" 0.0);
  Alcotest.(check string) "kilo" "2.50 kV" (Units.to_engineering_string ~unit:"V" 2500.0)

let test_engineering_negative () =
  Alcotest.(check string) "negative" "-3.30 mA" (Units.to_engineering_string ~unit:"A" (-3.3e-3))

let suite =
  [
    Alcotest.test_case "thermal voltage" `Quick test_thermal_voltage;
    Alcotest.test_case "thermal voltage validation" `Quick test_thermal_voltage_invalid;
    Alcotest.test_case "silicon bandgap" `Quick test_bandgap;
    Alcotest.test_case "permittivity ordering" `Quick test_permittivities;
    Alcotest.test_case "length conversions" `Quick test_length_roundtrip;
    Alcotest.test_case "time/power/energy conversions" `Quick test_time_power_energy;
    Alcotest.test_case "area conversions" `Quick test_area;
    Alcotest.test_case "engineering notation" `Quick test_engineering_format;
    Alcotest.test_case "engineering notation negative" `Quick test_engineering_negative;
  ]
