test/test_workload.ml: Alcotest Array Float List Nmcache_numerics Nmcache_workload Printf
