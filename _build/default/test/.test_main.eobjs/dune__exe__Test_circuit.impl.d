test/test_circuit.ml: Alcotest Float Nmcache_circuit Nmcache_device Nmcache_physics Printf
