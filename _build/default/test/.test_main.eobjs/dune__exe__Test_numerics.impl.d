test/test_numerics.ml: Alcotest Array Float Int64 List Nmcache_numerics Printf QCheck QCheck_alcotest
