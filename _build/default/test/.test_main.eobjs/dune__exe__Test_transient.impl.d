test/test_transient.ml: Alcotest Array Float Nmcache_circuit Nmcache_device Nmcache_physics Printf
