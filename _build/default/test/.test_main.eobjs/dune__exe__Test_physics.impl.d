test/test_physics.ml: Alcotest Float Nmcache_physics Printf
