test/test_integration.ml: Alcotest Core Float Lazy List Nmcache_fit Nmcache_geometry Nmcache_opt Nmcache_physics Option Printf String
