test/test_cachesim.ml: Alcotest Array Int64 List Nmcache_cachesim Nmcache_numerics QCheck QCheck_alcotest
