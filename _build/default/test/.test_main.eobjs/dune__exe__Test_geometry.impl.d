test/test_geometry.ml: Alcotest Array Float List Nmcache_device Nmcache_geometry Nmcache_physics Printf QCheck QCheck_alcotest
