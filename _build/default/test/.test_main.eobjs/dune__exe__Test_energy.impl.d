test/test_energy.ml: Alcotest Float Lazy List Nmcache_device Nmcache_energy Nmcache_fit Nmcache_geometry Nmcache_physics Printf
