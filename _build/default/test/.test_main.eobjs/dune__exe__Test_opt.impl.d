test/test_opt.ml: Alcotest Array Float Gen Lazy List Nmcache_device Nmcache_fit Nmcache_geometry Nmcache_numerics Nmcache_opt Nmcache_physics Printf QCheck QCheck_alcotest
