test/test_fit.ml: Alcotest Array Float Lazy List Nmcache_device Nmcache_fit Nmcache_geometry Nmcache_physics Printf
