test/test_mattson.ml: Alcotest Array Int64 List Nmcache_cachesim Nmcache_numerics QCheck QCheck_alcotest
