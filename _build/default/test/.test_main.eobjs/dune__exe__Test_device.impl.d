test/test_device.ml: Alcotest Float List Nmcache_device Nmcache_physics Option Printf QCheck QCheck_alcotest
