(* Tests for the compact-model fitting layer. *)

module Units = Nmcache_physics.Units
module Tech = Nmcache_device.Tech
module Config = Nmcache_geometry.Config
module Component = Nmcache_geometry.Component
module Cache_model = Nmcache_geometry.Cache_model
module Model = Nmcache_fit.Model
module Fitter = Nmcache_fit.Fitter
module Fitted_cache = Nmcache_fit.Fitted_cache

let tech = Tech.bptm65
let a = Units.angstrom
let cfg = Config.make ~size_bytes:(16 * 1024) ~assoc:4 ~block_bytes:64 ()
let circuit = Cache_model.make tech cfg
let fitted = lazy (Fitted_cache.characterize_and_fit circuit)

let test_model_eval_formulas () =
  let leak = { Model.a0 = 1.0; a1 = 2.0; alpha_v = -10.0; a2 = 3.0; alpha_t = -1.0 } in
  let v = Model.eval_leak leak ~vth:0.3 ~tox:(a 12.0) in
  let expected = 1.0 +. (2.0 *. Float.exp (-3.0)) +. (3.0 *. Float.exp (-12.0)) in
  Alcotest.(check bool) "leak formula" true (Float.abs (v -. expected) < 1e-12);
  let delay = { Model.k0 = 1e-12; k1 = 2e-12; kappa_v = 3.0; k2 = 1e-13 } in
  let d = Model.eval_delay delay ~vth:0.4 ~tox:(a 11.0) in
  let expected_d = 1e-12 +. (2e-12 *. Float.exp 1.2) +. (1e-13 *. 11.0) in
  Alcotest.(check bool) "delay formula" true (Float.abs (d -. expected_d) < 1e-24);
  let e = { Model.e0 = 5e-12; e1 = 1e-13 } in
  Alcotest.(check bool) "energy formula" true
    (Float.abs (Model.eval_energy e ~tox:(a 10.0) -. 6e-12) < 1e-24)

let test_fit_synthetic_leak () =
  (* generate samples from a known model and recover it *)
  let truth = { Model.a0 = 1e-4; a1 = 0.5; alpha_v = -25.0; a2 = 2e4; alpha_t = -1.9 } in
  let samples =
    Array.of_list
      (List.concat_map
         (fun vth ->
           List.map
             (fun tox_a ->
               let k = Component.knob ~vth ~tox:(a tox_a) in
               let s =
                 {
                   Component.delay = 1e-10;
                   leak_w = Model.eval_leak truth ~vth ~tox:(a tox_a);
                   dyn_energy = 1e-12;
                   area = 1e-9;
                 }
               in
               (k, s))
             [ 10.0; 11.0; 12.0; 13.0; 14.0 ])
         [ 0.2; 0.275; 0.35; 0.425; 0.5 ])
  in
  let m, q = Fitter.fit_leak samples in
  Alcotest.(check bool) (Printf.sprintf "R2 ~ 1 (got %f)" q.Model.r2) true (q.Model.r2 > 0.9999);
  Alcotest.(check bool) "max rel err < 1%" true (q.Model.max_rel < 0.01);
  (* exponents recovered approximately *)
  Alcotest.(check bool)
    (Printf.sprintf "alpha_v ~ -25 (got %.2f)" m.Model.alpha_v)
    true
    (Float.abs (m.Model.alpha_v +. 25.0) < 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "alpha_t ~ -1.9 (got %.2f)" m.Model.alpha_t)
    true
    (Float.abs (m.Model.alpha_t +. 1.9) < 0.2)

let test_fit_synthetic_delay () =
  let truth = { Model.k0 = 2e-11; k1 = 5e-12; kappa_v = 4.0; k2 = 6e-12 } in
  let samples =
    Array.of_list
      (List.concat_map
         (fun vth ->
           List.map
             (fun tox_a ->
               let k = Component.knob ~vth ~tox:(a tox_a) in
               ( k,
                 {
                   Component.delay = Model.eval_delay truth ~vth ~tox:(a tox_a);
                   leak_w = 1e-3;
                   dyn_energy = 1e-12;
                   area = 1e-9;
                 } ))
             [ 10.0; 12.0; 14.0 ])
         [ 0.2; 0.3; 0.4; 0.5 ])
  in
  let m, q = Fitter.fit_delay samples in
  Alcotest.(check bool) "R2 ~ 1" true (q.Model.r2 > 0.9999);
  Alcotest.(check bool)
    (Printf.sprintf "kappa ~ 4 (got %.2f)" m.Model.kappa_v)
    true
    (Float.abs (m.Model.kappa_v -. 4.0) < 0.3)

let test_fit_validation () =
  Alcotest.(check bool) "too few samples" true
    (try
       ignore (Fitter.fit_leak [||]);
       false
     with Invalid_argument _ -> true)

let test_real_cache_fit_quality () =
  let f = Lazy.force fitted in
  List.iter
    (fun (cm : Fitted_cache.component_model) ->
      let name = Component.kind_name cm.Fitted_cache.kind in
      Alcotest.(check bool)
        (Printf.sprintf "%s leak R2 %.4f > 0.93" name cm.Fitted_cache.leak_quality.Model.r2)
        true
        (cm.Fitted_cache.leak_quality.Model.r2 > 0.93);
      Alcotest.(check bool)
        (Printf.sprintf "%s delay R2 %.4f > 0.93" name cm.Fitted_cache.delay_quality.Model.r2)
        true
        (cm.Fitted_cache.delay_quality.Model.r2 > 0.93))
    (Fitted_cache.components f)

let test_fitted_eval_close_to_exact_off_grid () =
  let f = Lazy.force fitted in
  (* off-grid knobs (not on the 7x5 training lattice) *)
  let knobs =
    [
      Component.uniform (Component.knob ~vth:0.33 ~tox:(a 11.3));
      Component.uniform (Component.knob ~vth:0.27 ~tox:(a 13.1));
      Component.split
        ~cell:(Component.knob ~vth:0.47 ~tox:(a 13.7))
        ~periphery:(Component.knob ~vth:0.21 ~tox:(a 10.4));
    ]
  in
  List.iter
    (fun assignment ->
      let est = Fitted_cache.eval f assignment in
      let exact = Fitted_cache.exact f assignment in
      let leak_err =
        Float.abs (est.Fitted_cache.leak_w -. exact.Cache_model.leak_w)
        /. exact.Cache_model.leak_w
      in
      let delay_err =
        Float.abs (est.Fitted_cache.access_time -. exact.Cache_model.access_time)
        /. exact.Cache_model.access_time
      in
      Alcotest.(check bool) (Printf.sprintf "leak err %.1f%% < 25%%" (100. *. leak_err)) true
        (leak_err < 0.25);
      Alcotest.(check bool)
        (Printf.sprintf "delay err %.1f%% < 12%%" (100. *. delay_err))
        true (delay_err < 0.12))
    knobs

let test_fitted_models_monotone () =
  let f = Lazy.force fitted in
  (* fitted leakage must preserve the physical monotonicity on the grid *)
  List.iter
    (fun kind ->
      let leak vth tox_a = Fitted_cache.leak_of f kind (Component.knob ~vth ~tox:(a tox_a)) in
      Alcotest.(check bool) "dec in vth" true (leak 0.45 12.0 < leak 0.25 12.0);
      Alcotest.(check bool) "dec in tox" true (leak 0.3 13.5 < leak 0.3 10.5);
      let delay vth tox_a = Fitted_cache.delay_of f kind (Component.knob ~vth ~tox:(a tox_a)) in
      Alcotest.(check bool) "delay inc in vth" true (delay 0.45 12.0 > delay 0.25 12.0);
      Alcotest.(check bool) "delay inc in tox" true (delay 0.3 13.5 > delay 0.3 10.5))
    Component.all_kinds

let test_estimate_is_component_sum () =
  let f = Lazy.force fitted in
  let k = Component.knob ~vth:0.31 ~tox:(a 12.2) in
  let est = Fitted_cache.eval f (Component.uniform k) in
  let sum field =
    List.fold_left (fun acc kind -> acc +. field kind) 0.0 Component.all_kinds
  in
  let leak_sum = sum (fun kind -> Fitted_cache.leak_of f kind k) in
  Alcotest.(check bool) "leak sum" true
    (Float.abs (est.Fitted_cache.leak_w -. leak_sum) < 1e-12 *. leak_sum)

let test_worst_quality () =
  let f = Lazy.force fitted in
  let q = Fitted_cache.worst_quality f in
  Alcotest.(check bool) "worst R2 still high" true (q.Model.r2 > 0.9)

let suite =
  [
    Alcotest.test_case "model formulas" `Quick test_model_eval_formulas;
    Alcotest.test_case "fit synthetic leakage" `Quick test_fit_synthetic_leak;
    Alcotest.test_case "fit synthetic delay" `Quick test_fit_synthetic_delay;
    Alcotest.test_case "fit validation" `Quick test_fit_validation;
    Alcotest.test_case "real cache fit quality" `Quick test_real_cache_fit_quality;
    Alcotest.test_case "off-grid accuracy" `Quick test_fitted_eval_close_to_exact_off_grid;
    Alcotest.test_case "fitted models monotone" `Quick test_fitted_models_monotone;
    Alcotest.test_case "estimate is component sum" `Quick test_estimate_is_component_sum;
    Alcotest.test_case "worst quality" `Quick test_worst_quality;
  ]
