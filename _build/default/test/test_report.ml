(* Tests for the report rendering layer. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table_contains_cells () =
  let t =
    Core.Report.table ~title:"demo" ~columns:[ "col1"; "col2" ]
      ~rows:[ [ "alpha"; "beta" ] ]
  in
  let s = Core.Report.render [ t ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains s needle))
    [ "demo"; "col1"; "col2"; "alpha"; "beta" ]

let test_table_validation () =
  Alcotest.(check bool) "ragged row rejected" true
    (try
       ignore (Core.Report.table ~title:"x" ~columns:[ "a"; "b" ] ~rows:[ [ "1" ] ]);
       false
     with Invalid_argument _ -> true)

let test_chart_rendering () =
  let c =
    Core.Report.chart ~title:"curve" ~x_label:"x" ~y_label:"y"
      [ { Core.Report.label = "s1"; points = [ (1.0, 2.0); (3.0, 4.0) ] } ]
  in
  let s = Core.Report.render [ c ] in
  List.iter
    (fun needle -> Alcotest.(check bool) (needle ^ " present") true (contains s needle))
    [ "curve"; "s1"; "1"; "4" ]

let test_note_and_helpers () =
  let s = Core.Report.render [ Core.Report.note "hello world" ] in
  Alcotest.(check bool) "note text" true (contains s "hello world");
  Alcotest.(check string) "fmt_f" "3.14" (Core.Report.fmt_f 3.14159);
  Alcotest.(check string) "fmt_f decimals" "3.1416" (Core.Report.fmt_f ~decimals:4 3.14159);
  Alcotest.(check string) "fmt_pct" "12.50%" (Core.Report.fmt_pct 0.125)

let test_csv_table () =
  let t =
    Core.Report.table ~title:"t" ~columns:[ "a"; "b" ]
      ~rows:[ [ "1"; "x,y" ]; [ "2"; "he said \"hi\"" ] ]
  in
  match Core.Report.to_csv t with
  | None -> Alcotest.fail "table must have csv"
  | Some csv ->
    Alcotest.(check bool) "header" true (contains csv "a,b");
    Alcotest.(check bool) "comma quoted" true (contains csv "\"x,y\"");
    Alcotest.(check bool) "quote doubled" true (contains csv "\"he said \"\"hi\"\"\"")

let test_csv_chart_and_note () =
  let c =
    Core.Report.chart ~title:"c" ~x_label:"x" ~y_label:"y"
      [ { Core.Report.label = "s"; points = [ (1.5, 2.5) ] } ]
  in
  (match Core.Report.to_csv c with
  | None -> Alcotest.fail "chart must have csv"
  | Some csv -> Alcotest.(check bool) "row" true (contains csv "s,1.5,2.5"));
  Alcotest.(check bool) "note has no csv" true
    (Core.Report.to_csv (Core.Report.note "n") = None)

let suite =
  [
    Alcotest.test_case "table cells" `Quick test_table_contains_cells;
    Alcotest.test_case "table validation" `Quick test_table_validation;
    Alcotest.test_case "chart rendering" `Quick test_chart_rendering;
    Alcotest.test_case "notes and format helpers" `Quick test_note_and_helpers;
    Alcotest.test_case "csv table" `Quick test_csv_table;
    Alcotest.test_case "csv chart and note" `Quick test_csv_chart_and_note;
  ]
