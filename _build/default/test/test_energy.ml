(* Tests for AMAT arithmetic, the main-memory model and system energy
   accounting. *)

module Units = Nmcache_physics.Units
module Amat = Nmcache_energy.Amat
module Main_memory = Nmcache_energy.Main_memory
module System = Nmcache_energy.System
module Component = Nmcache_geometry.Component
module Config = Nmcache_geometry.Config
module Cache_model = Nmcache_geometry.Cache_model
module Fitted_cache = Nmcache_fit.Fitted_cache
module Tech = Nmcache_device.Tech

let a = Units.angstrom

let close ?(eps = 1e-12) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %g vs %g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= eps *. Float.max 1.0 (Float.abs expected))

(* --- amat ----------------------------------------------------------------- *)

let test_amat_formula () =
  let amat = Amat.two_level ~t_l1:1e-10 ~t_l2:1e-9 ~t_mem:4e-8 ~m1:0.05 ~m2:0.5 in
  close "amat" (1e-10 +. (0.05 *. (1e-9 +. (0.5 *. 4e-8)))) amat

let test_amat_zero_misses () =
  close "perfect L1" 1e-10 (Amat.two_level ~t_l1:1e-10 ~t_l2:1e-9 ~t_mem:4e-8 ~m1:0.0 ~m2:1.0)

let test_amat_validation () =
  Alcotest.(check bool) "bad miss rate" true
    (try
       ignore (Amat.two_level ~t_l1:1.0 ~t_l2:1.0 ~t_mem:1.0 ~m1:1.5 ~m2:0.0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative time" true
    (try
       ignore (Amat.single_level ~t_l1:(-1.0) ~t_mem:1.0 ~m1:0.5);
       false
     with Invalid_argument _ -> true)

let test_required_t_l2_inverse () =
  (* plugging the solved T_L2 back must reproduce the target *)
  let t_l1 = 2e-10 and t_mem = 4e-8 and m1 = 0.06 and m2 = 0.4 in
  let amat = 2e-9 in
  (match Amat.required_t_l2 ~amat ~t_l1 ~t_mem ~m1 ~m2 with
  | None -> Alcotest.fail "expected feasible"
  | Some t_l2 -> close "inverse" amat (Amat.two_level ~t_l1 ~t_l2 ~t_mem ~m1 ~m2) ~eps:1e-9);
  (* infeasible when the memory term alone exceeds the budget *)
  Alcotest.(check bool) "infeasible detected" true
    (Amat.required_t_l2 ~amat:1e-9 ~t_l1:2e-10 ~t_mem:4e-8 ~m1:0.5 ~m2:0.9 = None)

(* --- main memory ------------------------------------------------------------ *)

let test_main_memory () =
  let m = Main_memory.ddr2_like in
  Alcotest.(check bool) "latency tens of ns" true
    (m.Main_memory.t_access > Units.ns 10.0 && m.Main_memory.t_access < Units.ns 100.0);
  Alcotest.(check bool) "energy nJ scale" true
    (m.Main_memory.e_access > Units.pj 100.0 && m.Main_memory.e_access < Units.pj 10000.0);
  Alcotest.(check bool) "validation" true
    (try
       ignore (Main_memory.make ~t_access:0.0 ~e_access:1.0 ~standby_w:0.0);
       false
     with Invalid_argument _ -> true)

(* --- system ------------------------------------------------------------------- *)

let tech = Tech.bptm65

let sys =
  lazy
    (let l1 =
       Fitted_cache.characterize_and_fit
         (Cache_model.make tech (Config.make ~size_bytes:(16 * 1024) ~assoc:4 ~block_bytes:64 ()))
     in
     let l2 =
       Fitted_cache.characterize_and_fit
         (Cache_model.make tech
            (Config.make ~size_bytes:(256 * 1024) ~assoc:8 ~block_bytes:64 ()))
     in
     System.make ~l1 ~l2 ~mem:Main_memory.ddr2_like ~m1:0.05 ~m2:0.4)

let ref_knob = Component.knob ~vth:0.3 ~tox:(a 12.0)

let test_system_consistency () =
  let s = Lazy.force sys in
  let e = System.evaluate_uniform s ref_knob in
  (* energy = dynamic + leakage x amat *)
  close "energy accounting"
    (e.System.dyn_energy +. (e.System.leak_w *. e.System.amat))
    e.System.energy_per_access ~eps:1e-12;
  (* amat consistent with the pieces *)
  close "amat recomputed"
    (Amat.two_level ~t_l1:e.System.t_l1 ~t_l2:e.System.t_l2
       ~t_mem:Main_memory.ddr2_like.Main_memory.t_access ~m1:0.05 ~m2:0.4)
    e.System.amat ~eps:1e-12

let test_system_groups_cover_components () =
  let s = Lazy.force sys in
  (* the four groups partition each cache's components: group delays must
     sum to the fitted cache totals *)
  let l1c = System.eval_group s System.L1_cell ref_knob in
  let l1p = System.eval_group s System.L1_periph ref_knob in
  let direct = Fitted_cache.eval (System.l1 s) (Component.uniform ref_knob) in
  close "L1 delay partition" direct.Fitted_cache.access_time
    (l1c.System.delay +. l1p.System.delay) ~eps:1e-12;
  close "L1 leak partition" direct.Fitted_cache.leak_w
    (l1c.System.leak_w +. l1p.System.leak_w) ~eps:1e-12

let test_conservative_cells_reduce_leakage () =
  let s = Lazy.force sys in
  let flat = System.evaluate_uniform s ref_knob in
  let pick = function
    | System.L1_cell | System.L2_cell -> Component.knob ~vth:0.5 ~tox:(a 14.0)
    | System.L1_periph | System.L2_periph -> ref_knob
  in
  let split = System.evaluate s pick in
  Alcotest.(check bool) "cells conservative => less leakage" true
    (split.System.leak_w < flat.System.leak_w);
  Alcotest.(check bool) "but slower" true (split.System.amat > flat.System.amat)

let test_miss_rates_affect_amat () =
  let s = Lazy.force sys in
  let worse = System.make ~l1:(System.l1 s) ~l2:(System.l2 s) ~mem:(System.mem s) ~m1:0.10 ~m2:0.6 in
  let e1 = System.evaluate_uniform s ref_knob in
  let e2 = System.evaluate_uniform worse ref_knob in
  Alcotest.(check bool) "worse misses, worse amat" true (e2.System.amat > e1.System.amat);
  Alcotest.(check bool) "worse misses, more energy" true
    (e2.System.energy_per_access > e1.System.energy_per_access)

let test_system_validation () =
  let s = Lazy.force sys in
  Alcotest.(check bool) "bad m1" true
    (try
       ignore (System.make ~l1:(System.l1 s) ~l2:(System.l2 s) ~mem:(System.mem s) ~m1:1.2 ~m2:0.5);
       false
     with Invalid_argument _ -> true)

let test_group_names () =
  Alcotest.(check int) "four groups" 4 (List.length System.groups);
  let idx = List.map System.group_index System.groups in
  Alcotest.(check (list int)) "indices 0..3" [ 0; 1; 2; 3 ] idx

let suite =
  [
    Alcotest.test_case "amat formula" `Quick test_amat_formula;
    Alcotest.test_case "amat zero misses" `Quick test_amat_zero_misses;
    Alcotest.test_case "amat validation" `Quick test_amat_validation;
    Alcotest.test_case "required T_L2 inverse" `Quick test_required_t_l2_inverse;
    Alcotest.test_case "main memory model" `Quick test_main_memory;
    Alcotest.test_case "system energy accounting" `Quick test_system_consistency;
    Alcotest.test_case "groups partition components" `Quick test_system_groups_cover_components;
    Alcotest.test_case "conservative cells" `Quick test_conservative_cells_reduce_leakage;
    Alcotest.test_case "miss rates drive amat" `Quick test_miss_rates_affect_amat;
    Alcotest.test_case "system validation" `Quick test_system_validation;
    Alcotest.test_case "group names/indices" `Quick test_group_names;
  ]
