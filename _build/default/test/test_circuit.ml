(* Tests for the circuit layer: RC/Elmore, gates, wires, SRAM cell,
   sense amp, buffer chains. *)

module Units = Nmcache_physics.Units
module Tech = Nmcache_device.Tech
module Rc = Nmcache_circuit.Rc
module Gate = Nmcache_circuit.Gate
module Wire = Nmcache_circuit.Wire
module Chain = Nmcache_circuit.Chain
module Horowitz = Nmcache_circuit.Horowitz
module Sram_cell = Nmcache_circuit.Sram_cell
module Sense_amp = Nmcache_circuit.Sense_amp

let tech = Tech.bptm65
let a = Units.angstrom

let close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.6g vs %.6g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= eps *. Float.max 1e-30 (Float.abs expected))

(* --- rc ---------------------------------------------------------------- *)

let test_elmore_two_stage () =
  (* R1=1k C1=1f, then R2=2k C2=3f: delay to leaf = R1 (C1+C2) + R2 C2 *)
  let leaf = Rc.leaf ~r:2e3 ~c:3e-15 in
  let root = Rc.node ~r:1e3 ~c:1e-15 [ leaf ] in
  (match Rc.elmore_to root leaf with
  | None -> Alcotest.fail "leaf not found"
  | Some d -> close "two-stage elmore" ((1e3 *. 4e-15) +. (2e3 *. 3e-15)) d ~eps:1e-12);
  close "total cap" 4e-15 (Rc.total_capacitance root) ~eps:1e-12

let test_elmore_branching () =
  (* at a branch, the side branch's cap loads the common resistance *)
  let l1 = Rc.leaf ~r:1e3 ~c:1e-15 in
  let l2 = Rc.leaf ~r:1e3 ~c:2e-15 in
  let root = Rc.node ~r:1e3 ~c:0.0 [ l1; l2 ] in
  (match Rc.elmore_to root l1 with
  | None -> Alcotest.fail "missing leaf"
  | Some d -> close "branch elmore" ((1e3 *. 3e-15) +. (1e3 *. 1e-15)) d ~eps:1e-12);
  close "worst" ((1e3 *. 3e-15) +. (1e3 *. 2e-15)) (Rc.elmore_worst root) ~eps:1e-12

let test_elmore_missing_node () =
  let stray = Rc.leaf ~r:1.0 ~c:1.0 in
  let root = Rc.leaf ~r:1.0 ~c:1.0 in
  Alcotest.(check bool) "missing target" true (Rc.elmore_to root stray = None)

let test_ladder_closed_form () =
  (* uniform ladder formula = n R Cl + R C n^2 / 2 *)
  let d = Rc.ladder ~stages:10 ~r_stage:100.0 ~c_stage:1e-15 ~c_load:5e-15 in
  close "ladder" ((10.0 *. 100.0 *. 5e-15) +. (100.0 *. 1e-15 *. 50.0)) d ~eps:1e-12

let test_rc_validation () =
  Alcotest.check_raises "negative r" (Invalid_argument "Rc.node: negative r or c")
    (fun () -> ignore (Rc.leaf ~r:(-1.0) ~c:0.0));
  Alcotest.check_raises "bad stages" (Invalid_argument "Rc.ladder: stages < 1") (fun () ->
      ignore (Rc.ladder ~stages:0 ~r_stage:1.0 ~c_stage:1.0 ~c_load:0.0))

(* --- gates -------------------------------------------------------------- *)

let test_inverter_sizing () =
  let g1 = Gate.inverter tech ~vth:0.3 ~tox:(a 12.0) ~size:1.0 in
  let g4 = Gate.inverter tech ~vth:0.3 ~tox:(a 12.0) ~size:4.0 in
  close "4x input cap" 4.0 (g4.Gate.c_in /. g1.Gate.c_in) ~eps:1e-6;
  close "1/4 resistance" 0.25 (g4.Gate.r_drive /. g1.Gate.r_drive) ~eps:1e-6;
  Alcotest.(check bool) "4x leakage" true
    (Float.abs ((g4.Gate.leak_w /. g1.Gate.leak_w) -. 4.0) < 0.2)

let test_gate_delay_monotone_in_load () =
  let g = Gate.inverter tech ~vth:0.3 ~tox:(a 12.0) ~size:2.0 in
  Alcotest.(check bool) "more load, more delay" true
    (Gate.delay g ~c_load:(Units.ff 10.0) > Gate.delay g ~c_load:(Units.ff 1.0))

let test_nand_nor_efforts () =
  let nand2 = Gate.nand tech ~vth:0.3 ~tox:(a 12.0) ~size:1.0 ~inputs:2 in
  let nor2 = Gate.nor tech ~vth:0.3 ~tox:(a 12.0) ~size:1.0 ~inputs:2 in
  close "nand2 logical effort" (4.0 /. 3.0) nand2.Gate.logical_effort ~eps:1e-9;
  close "nor2 logical effort" (5.0 /. 3.0) nor2.Gate.logical_effort ~eps:1e-9;
  Alcotest.(check bool) "nor worse than nand" true
    (nor2.Gate.logical_effort > nand2.Gate.logical_effort)

let test_stack_effect () =
  (* a 2-stack leaks less per width than the same devices in an inverter;
     probe at the subthreshold-dominated corner (thick oxide) where the
     stack factor is the visible effect *)
  let inv = Gate.inverter tech ~vth:0.25 ~tox:(a 14.0) ~size:1.0 in
  let nand = Gate.nand tech ~vth:0.25 ~tox:(a 14.0) ~size:1.0 ~inputs:2 in
  (* nand has ~2x the device width of the inverter; its leakage should be
     well under 2x thanks to the stack factor *)
  Alcotest.(check bool) "stack suppresses leakage" true
    (nand.Gate.leak_w < 2.0 *. inv.Gate.leak_w)

let test_gate_validation () =
  Alcotest.(check bool) "inputs < 2 rejected" true
    (try
       ignore (Gate.nand tech ~vth:0.3 ~tox:(a 12.0) ~size:1.0 ~inputs:1);
       false
     with Invalid_argument _ -> true)

(* --- horowitz ------------------------------------------------------------ *)

let test_horowitz_step_input () =
  (* with a step input (t_rise = 0) the delay reduces to tf |ln v| *)
  let d = Horowitz.delay ~tf:10e-12 ~t_rise_in:0.0 ~v_threshold:0.5 ~rising:true in
  close "step input" (10e-12 *. Float.log 2.0) d ~eps:1e-9

let test_horowitz_slope_penalty () =
  let fast = Horowitz.delay ~tf:10e-12 ~t_rise_in:5e-12 ~v_threshold:0.5 ~rising:true in
  let slow = Horowitz.delay ~tf:10e-12 ~t_rise_in:50e-12 ~v_threshold:0.5 ~rising:true in
  Alcotest.(check bool) "slower input, longer delay" true (slow > fast)

let test_horowitz_validation () =
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Horowitz.delay: v_threshold outside (0,1)") (fun () ->
      ignore (Horowitz.delay ~tf:1.0 ~t_rise_in:0.0 ~v_threshold:1.5 ~rising:true))

(* --- wire ----------------------------------------------------------------- *)

let test_wire_scaling () =
  let w1 = Wire.make tech ~length:(Units.um 100.0) in
  let w2 = Wire.make tech ~length:(Units.um 200.0) in
  close "r scales" 2.0 (w2.Wire.r_total /. w1.Wire.r_total) ~eps:1e-9;
  close "c scales" 2.0 (w2.Wire.c_total /. w1.Wire.c_total) ~eps:1e-9

let test_repeaters_beat_unrepeated_long_wire () =
  let length = Units.mm 4.0 in
  let w = Wire.make tech ~length in
  let inv = Gate.inverter tech ~vth:0.25 ~tox:(a 11.0) ~size:8.0 in
  let unrepeated = Wire.elmore w ~r_driver:inv.Gate.r_drive ~c_load:(Units.ff 5.0) in
  let rep = Wire.repeated tech ~vth:0.25 ~tox:(a 11.0) ~length in
  Alcotest.(check bool) "repeating helps on mm-scale wire" true
    (rep.Wire.delay < unrepeated);
  Alcotest.(check bool) "uses several repeaters" true (rep.Wire.n_repeaters >= 4)

let test_repeated_wire_monotone_in_length () =
  let d len = (Wire.repeated tech ~vth:0.3 ~tox:(a 12.0) ~length:len).Wire.delay in
  Alcotest.(check bool) "longer is slower" true
    (d (Units.um 200.0) < d (Units.um 400.0) && d (Units.um 400.0) < d (Units.um 800.0))

(* --- sram cell -------------------------------------------------------------- *)

let test_cell_area_scales_with_tox () =
  let small = Sram_cell.make tech ~vth:0.3 ~tox:(a 10.0) in
  let big = Sram_cell.make tech ~vth:0.3 ~tox:(a 14.0) in
  let expected = (14.0 /. 10.0) ** (2.0 *. tech.Tech.l_scaling_exponent) in
  close "area ratio follows scaling rule"
    expected
    (Sram_cell.area big /. Sram_cell.area small)
    ~eps:1e-6;
  Alcotest.(check bool) "both dimensions grow" true
    (big.Sram_cell.width > small.Sram_cell.width
    && big.Sram_cell.height > small.Sram_cell.height)

let test_cell_area_magnitude () =
  (* 65nm 6T cell ~ 0.4..1 um2 *)
  let c = Sram_cell.make tech ~vth:0.3 ~tox:(a 12.0) in
  let um2 = Sram_cell.area c /. 1e-12 in
  Alcotest.(check bool) (Printf.sprintf "cell %.3f um2" um2) true (um2 > 0.2 && um2 < 1.5)

let test_cell_leakage_monotone () =
  let leak vth tox_a = Sram_cell.leakage_power tech (Sram_cell.make tech ~vth ~tox:(a tox_a)) in
  Alcotest.(check bool) "dec in vth" true (leak 0.45 12.0 < leak 0.25 12.0);
  Alcotest.(check bool) "dec in tox" true (leak 0.3 13.5 < leak 0.3 10.5)

let test_cell_read_current () =
  let c = Sram_cell.make tech ~vth:0.3 ~tox:(a 12.0) in
  let i = Sram_cell.read_current tech c in
  (* tens of uA for a 65nm cell *)
  Alcotest.(check bool) "read current 5..500 uA" true (i > 5e-6 && i < 5e-4)

(* --- sense amp ----------------------------------------------------------------- *)

let test_sense_amp () =
  let sa = Sense_amp.make tech ~vth:0.3 ~tox:(a 12.0) in
  Alcotest.(check bool) "positive delay" true (sa.Sense_amp.delay > 0.0);
  Alcotest.(check bool) "delay < 100 ps" true (sa.Sense_amp.delay < Units.ps 100.0);
  Alcotest.(check bool) "positive leakage" true (sa.Sense_amp.leak_w > 0.0);
  let sa_hi = Sense_amp.make tech ~vth:0.45 ~tox:(a 14.0) in
  Alcotest.(check bool) "conservative knobs leak less" true
    (sa_hi.Sense_amp.leak_w < sa.Sense_amp.leak_w)

(* --- chain ------------------------------------------------------------------------ *)

let test_chain_drives_large_load () =
  let unit = Gate.inverter tech ~vth:0.3 ~tox:(a 12.0) ~size:1.0 in
  let chain =
    Chain.buffer tech ~vth:0.3 ~tox:(a 12.0) ~c_in:unit.Gate.c_in ~c_load:(Units.ff 200.0)
  in
  Alcotest.(check bool) "several stages" true (chain.Chain.n_stages >= 3);
  (* a chain must beat the unit inverter driving the load directly *)
  let direct = Gate.delay unit ~c_load:(Units.ff 200.0) in
  Alcotest.(check bool) "chain faster than direct drive" true (chain.Chain.delay < direct)

let test_chain_stage_effort_reasonable () =
  let unit = Gate.inverter tech ~vth:0.3 ~tox:(a 12.0) ~size:1.0 in
  let chain =
    Chain.buffer tech ~vth:0.3 ~tox:(a 12.0) ~c_in:unit.Gate.c_in ~c_load:(Units.ff 100.0)
  in
  Alcotest.(check bool) "effort near 4" true
    (chain.Chain.stage_effort > 2.0 && chain.Chain.stage_effort < 8.0)

let test_chain_validation () =
  Alcotest.(check bool) "c_in <= 0 rejected" true
    (try
       ignore (Chain.buffer tech ~vth:0.3 ~tox:(a 12.0) ~c_in:0.0 ~c_load:1e-15);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "elmore two-stage" `Quick test_elmore_two_stage;
    Alcotest.test_case "elmore branching" `Quick test_elmore_branching;
    Alcotest.test_case "elmore missing node" `Quick test_elmore_missing_node;
    Alcotest.test_case "ladder closed form" `Quick test_ladder_closed_form;
    Alcotest.test_case "rc validation" `Quick test_rc_validation;
    Alcotest.test_case "inverter sizing" `Quick test_inverter_sizing;
    Alcotest.test_case "gate delay monotone in load" `Quick test_gate_delay_monotone_in_load;
    Alcotest.test_case "nand/nor logical effort" `Quick test_nand_nor_efforts;
    Alcotest.test_case "stack effect" `Quick test_stack_effect;
    Alcotest.test_case "gate validation" `Quick test_gate_validation;
    Alcotest.test_case "horowitz step input" `Quick test_horowitz_step_input;
    Alcotest.test_case "horowitz slope penalty" `Quick test_horowitz_slope_penalty;
    Alcotest.test_case "horowitz validation" `Quick test_horowitz_validation;
    Alcotest.test_case "wire scaling" `Quick test_wire_scaling;
    Alcotest.test_case "repeaters beat bare wire" `Quick
      test_repeaters_beat_unrepeated_long_wire;
    Alcotest.test_case "repeated wire monotone" `Quick test_repeated_wire_monotone_in_length;
    Alcotest.test_case "cell area scales with tox" `Quick test_cell_area_scales_with_tox;
    Alcotest.test_case "cell area magnitude" `Quick test_cell_area_magnitude;
    Alcotest.test_case "cell leakage monotone" `Quick test_cell_leakage_monotone;
    Alcotest.test_case "cell read current" `Quick test_cell_read_current;
    Alcotest.test_case "sense amplifier" `Quick test_sense_amp;
    Alcotest.test_case "buffer chain drives load" `Quick test_chain_drives_large_load;
    Alcotest.test_case "chain stage effort" `Quick test_chain_stage_effort_reasonable;
    Alcotest.test_case "chain validation" `Quick test_chain_validation;
  ]
