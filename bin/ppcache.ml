(* ppcache — CLI for the DATE'05 power-performance cache study.

   Subcommands: run (any experiment by id), list, characterize (fit the
   compact models of one cache and print them), simulate (miss rates of
   one workload on one hierarchy), verify (differential oracles, paper
   anchors and golden snapshot gates), workloads. *)

module Units = Nmcache_physics.Units
module Config = Nmcache_geometry.Config
module Cache_model = Nmcache_geometry.Cache_model
module Component = Nmcache_geometry.Component
module Fitted_cache = Nmcache_fit.Fitted_cache
module Model = Nmcache_fit.Model
module Missrate = Nmcache_workload.Missrate
module Registry = Nmcache_workload.Registry
module Gen = Nmcache_workload.Gen
module Access = Nmcache_workload.Access
module Wstream = Nmcache_workload.Stream
module Trace_rec = Nmcache_cachesim.Trace
module Stream_trace = Nmcache_cachesim.Stream_trace
module Cache = Nmcache_cachesim.Cache
module Hierarchy = Nmcache_cachesim.Hierarchy
module Replacement = Nmcache_cachesim.Replacement

open Cmdliner

let quick_arg =
  let doc = "Use the reduced context (shorter traces, coarser grids)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let jobs_arg =
  let doc =
    "Evaluate independent kernels on $(docv) domains.  Output is \
     byte-identical to --jobs 1; 0 means one domain per core."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let trace_arg =
  let doc = "Print the engine trace summary (per-stage wall time, task counts, memo hit rates) after the run." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let trace_json_arg =
  let doc =
    "Write the span tree as Chrome trace_event JSON to $(docv) — open it in \
     Perfetto (ui.perfetto.dev) or chrome://tracing to inspect per-domain \
     parallel execution."
  in
  Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE" ~doc)

let metrics_json_arg =
  let doc =
    "Write the metrics registry (counters, gauges, histogram quantiles), \
     per-stage trace table and memo hit rates as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE" ~doc)

let faults_json_arg =
  let doc =
    "Write the typed fault log (kind, stage, detail per fault, in canonical \
     order) as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "faults-json" ] ~docv:"FILE" ~doc)

let metrics_prom_arg =
  let doc =
    "Write the metrics registry in the OpenMetrics/Prometheus text exposition \
     format to $(docv) — counters as ppcache_counter_total, gauges as \
     ppcache_gauge, histograms as quantile summaries, each keyed by a name \
     label."
  in
  Arg.(value & opt (some string) None & info [ "metrics-prom" ] ~docv:"FILE" ~doc)

let events_arg =
  let doc =
    "Stream typed progress events (sweep_started, slot_done, \
     checkpoint_replayed, experiment_done) as append-only NDJSON to $(docv).  \
     Lines carry sequence numbers; stdout stays byte-identical at any \
     $(b,--jobs)."
  in
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Print human-readable progress lines to stderr as sweep slots complete.  \
     Never touches stdout, so piped output stays byte-identical."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let fail_fast_arg =
  let doc =
    "Abort on the first experiment fault instead of completing the remaining \
     experiments and reporting per-experiment status."
  in
  Arg.(value & flag & info [ "fail-fast" ] ~doc)

let checkpoint_arg =
  let doc =
    "Journal completed sweep slots to $(docv)/journal.ppck (append-only, \
     CRC-guarded) so an interrupted run can be resumed with $(b,--resume).  \
     Keyed kernels (experiments, miss-rate curves and sweeps) are journaled; \
     a crash costs at most the record being written."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)

let resume_arg =
  let doc =
    "Replay the $(b,--checkpoint) journal before running: completed slots are \
     served from disk instead of recomputed, corrupt tails are truncated and \
     recomputed, and the output stays byte-identical to an uninterrupted run \
     at any $(b,--jobs)."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let retries_arg =
  let doc =
    "Attempt budget for transient faults (injected, fit_diverged) at the \
     fit/anneal/simulate retry boundaries, with deterministic seeded \
     exponential backoff; $(b,1) disables retries."
  in
  Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc =
    "Cooperative per-kernel budget in seconds: a kernel that overruns it \
     (observed at the LM / annealer / cachesim poll points) becomes a typed \
     $(b,timed_out) fault in its own slot instead of a hung run.  0 fires on \
     the first poll."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let set_resilience ~retries ~deadline =
  if retries < 1 then begin
    Printf.eprintf "ppcache: --retries must be >= 1\n";
    exit 2
  end;
  Nmcache_engine.Retry.set_max_attempts retries;
  match deadline with
  | Some d when d < 0.0 ->
    Printf.eprintf "ppcache: --deadline must be >= 0\n";
    exit 2
  | d -> Nmcache_engine.Deadline.set_default d

(* Arm the checkpoint journal around a command body.  The summary goes
   to stderr — stdout is byte-compared against uninterrupted runs — and
   the journal is closed before any exit-code decision runs (exit does
   not unwind Fun.protect). *)
let with_checkpoint ~checkpoint ~resume f =
  let module C = Nmcache_engine.Checkpoint in
  match (checkpoint, resume) with
  | None, true ->
    Printf.eprintf "ppcache: --resume requires --checkpoint DIR\n";
    exit 2
  | None, false -> f ()
  | Some dir, resume ->
    let j =
      try C.open_ ~dir ~resume
      with Nmcache_engine.Lockfile.Locked { path; pid } ->
        Printf.eprintf
          "ppcache: checkpoint %s is locked by running pid %d (%s); two \
           writers on one journal would interleave records\n"
          dir pid path;
        exit 2
    in
    C.set_active (Some j);
    Fun.protect
      ~finally:(fun () ->
        C.set_active None;
        Printf.eprintf "ppcache: checkpoint %s: %d replayed, %d served, %d appended%s\n%!"
          (C.path j) (C.replayed j) (C.served j) (C.appended j)
          (if C.dropped_tail j then " (corrupt tail dropped)" else "");
        C.close j)
      f

(* Usage-error boundary: bad geometry/arguments surface as
   Invalid_argument from the constructors — render the message with a
   usage hint and exit 2, like every other bad-argument path. *)
let usage_guard f =
  try f ()
  with Invalid_argument msg ->
    Printf.eprintf "ppcache: %s\nppcache: exiting 2 (usage); see --help\n" msg;
    exit 2

(* Report-file arguments must be plainly writable before the run
   starts: an empty path, a missing parent directory or an existing
   directory at the target is a usage error (exit 2), not a crash
   after minutes of sweeping. *)
let validate_out_path ~flag path =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "ppcache: --%s: %s\n" flag msg;
        exit 2)
      fmt
  in
  if path = "" then fail "path is empty";
  if path.[String.length path - 1] = '/' then fail "%S is a directory path" path;
  (try if Sys.is_directory path then fail "%S is a directory" path
   with Sys_error _ -> ());
  let dir = Filename.dirname path in
  if not (try Sys.is_directory dir with Sys_error _ -> false) then
    fail "parent directory %S does not exist" dir

(* Observability wrapper shared by the subcommands: span collection is
   enabled only when a trace file was requested (spans carry
   timestamps, so they stay out of the byte-compared experiment
   output); report files are written even if the command fails partway,
   so a crashed run still leaves its trace behind.  Event sinks are
   armed before the body runs — and before any checkpoint journal
   opens, so a resume's checkpoint_replayed event is captured. *)
let with_observability ?(faults_json = None) ?(metrics_prom = None) ?(events = None)
    ?(progress = false) ~trace ~trace_json ~metrics_json f =
  Option.iter (fun path -> validate_out_path ~flag:"events" path) events;
  Option.iter (fun path -> validate_out_path ~flag:"metrics-prom" path) metrics_prom;
  Option.iter (fun path -> Nmcache_engine.Events.set_file path) events;
  if progress then Nmcache_engine.Events.set_progress true;
  if trace_json <> None then Nmcache_engine.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      if trace then print_string (Nmcache_engine.Trace.summary ());
      Option.iter (fun path -> Nmcache_engine.Obs.write_trace ~path) trace_json;
      Option.iter (fun path -> Nmcache_engine.Obs.write_metrics ~path) metrics_json;
      Option.iter (fun path -> Nmcache_engine.Obs.write_faults ~path) faults_json;
      Option.iter (fun path -> Nmcache_engine.Obs.write_openmetrics ~path) metrics_prom;
      Nmcache_engine.Events.close ())
    f

let context quick = if quick then Core.Context.quick () else Core.Context.default ()

let set_jobs jobs =
  let jobs =
    if jobs = 0 then Nmcache_engine.Executor.default_jobs ()
    else if jobs < 0 then begin
      Printf.eprintf "ppcache: --jobs must be >= 0\n";
      exit 2
    end
    else jobs
  in
  Nmcache_engine.Executor.set_jobs jobs

(* --- run ------------------------------------------------------------ *)

let print_heading (e : Core.Experiments.t) =
  Printf.printf "### %s — %s (%s)\n\n" e.Core.Experiments.id e.Core.Experiments.title
    e.Core.Experiments.paper_ref

let run_experiment ids quick csv jobs fail_fast checkpoint resume retries deadline
    trace trace_json metrics_json faults_json metrics_prom events progress =
  set_jobs jobs;
  set_resilience ~retries ~deadline;
  let ctx = context quick in
  let targets =
    match ids with
    | [] | [ "all" ] -> Core.Experiments.all
    | ids ->
      List.map
        (fun id ->
          match Core.Experiments.find id with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S; try `ppcache list`\n" id;
            exit 2)
        ids
  in
  let faulted = ref 0 in
  let aborted = ref None in
  (* observability outside the checkpoint: event sinks must be armed
     before the journal replays so checkpoint_replayed is captured *)
  with_observability ~faults_json ~metrics_prom ~events ~progress ~trace ~trace_json
    ~metrics_json (fun () ->
  with_checkpoint ~checkpoint ~resume (fun () ->
      (* kernels run (possibly in parallel) first; output prints in
         registry order afterwards, so the bytes never depend on
         --jobs.  Fault-injection decisions are key-deterministic, so
         that holds for faulted runs too. *)
      match
        if fail_fast then
          List.map (fun (e, a) -> (e, Ok a)) (Core.Experiments.run_many ctx targets)
        else Core.Experiments.run_many_result ctx targets
      with
      | exception Nmcache_engine.Fault.Fault f when fail_fast ->
        (* caught inside the observability wrapper so the report files
           still record the aborted run *)
        aborted := Some f
      | results ->
      List.iter
        (fun ((e : Core.Experiments.t), status) ->
          match status with
          | Ok artefacts ->
            if csv then print_string (Core.Report.render_csv artefacts)
            else begin
              print_heading e;
              Core.Report.print artefacts
            end
          | Error fault ->
            incr faulted;
            let line = Nmcache_engine.Fault.to_string fault in
            if csv then Printf.printf "# FAULT %s: %s\n" e.Core.Experiments.id line
            else begin
              print_heading e;
              Printf.printf "FAULT %s\n\n" line
            end)
        results));
  (match !aborted with
  | Some f ->
    Printf.eprintf "ppcache: aborted on FAULT %s\n" (Nmcache_engine.Fault.to_string f);
    exit 1
  | None -> ());
  if !faulted > 0 then begin
    Printf.eprintf "ppcache: %d of %d experiments faulted\n" !faulted
      (List.length targets);
    exit 1
  end

let run_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiment ids (or `all').")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of formatted tables.")
  in
  let doc =
    "Run one or more experiments and print their tables/series.  A faulting \
     experiment is reported in place (and in the --faults-json report) while \
     the rest complete; the exit status is 1 if anything faulted.  Set \
     $(b,PPCACHE_FAULTS) to inject deterministic faults."
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_experiment $ ids $ quick_arg $ csv $ jobs_arg $ fail_fast_arg
      $ checkpoint_arg $ resume_arg $ retries_arg $ deadline_arg
      $ trace_arg $ trace_json_arg $ metrics_json_arg $ faults_json_arg
      $ metrics_prom_arg $ events_arg $ progress_arg)

(* --- list ------------------------------------------------------------ *)

let list_experiments () =
  List.iter
    (fun (e : Core.Experiments.t) ->
      Printf.printf "%-16s %-12s %s\n" e.Core.Experiments.id
        ("[" ^ e.Core.Experiments.paper_ref ^ "]")
        e.Core.Experiments.title)
    Core.Experiments.all

let list_cmd =
  let doc = "List the available experiments." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_experiments $ const ())

(* --- characterize ---------------------------------------------------- *)

(* "LO:HI" -> (lo, hi); usage errors exit 2 with the expected shape *)
let parse_range ~what ~unit s =
  match String.split_on_char ':' s with
  | [ lo; hi ] -> (
    match (float_of_string_opt lo, float_of_string_opt hi) with
    | Some lo, Some hi -> (lo, hi)
    | _ ->
      Printf.eprintf "ppcache: --%s wants LO:HI in %s, got %S\n" what unit s;
      exit 2)
  | _ ->
    Printf.eprintf "ppcache: --%s wants LO:HI in %s, got %S\n" what unit s;
    exit 2

(* Characterisation bounds must stay inside the paper's knob grid —
   the compact models are only calibrated there, and a fit over
   garbage bounds would silently extrapolate device physics.  Exit 2
   (usage error), not a fault: the run never started. *)
let validate_knob_ranges (tech : Nmcache_device.Tech.t) ~vth ~tox =
  let check what unit lo hi t_lo t_hi =
    if hi <= lo then begin
      Printf.eprintf "ppcache: --%s range is empty (%g:%g)\n" what lo hi;
      exit 2
    end;
    if lo < t_lo || hi > t_hi then begin
      Printf.eprintf
        "ppcache: --%s %g:%g %s is outside the paper's %s grid (%g-%g %s); \
         the compact models are only calibrated there\n"
        what lo hi unit what t_lo t_hi unit;
      exit 2
    end
  in
  Option.iter (fun (lo, hi) -> check "vth" "V" lo hi tech.Nmcache_device.Tech.vth_min
                 tech.Nmcache_device.Tech.vth_max) vth;
  Option.iter
    (fun (lo, hi) ->
      check "tox" "A" lo hi
        (Units.to_angstrom tech.Nmcache_device.Tech.tox_min)
        (Units.to_angstrom tech.Nmcache_device.Tech.tox_max))
    tox

let require_positive what v =
  if v <= 0 then begin
    Printf.eprintf "ppcache: --%s must be > 0, got %d\n" what v;
    exit 2
  end

let characterize size_kb assoc block vth tox trace trace_json metrics_json =
  let tech = Nmcache_device.Tech.bptm65 in
  require_positive "size" size_kb;
  require_positive "assoc" assoc;
  require_positive "block" block;
  let vth = Option.map (parse_range ~what:"vth" ~unit:"volts") vth in
  let tox = Option.map (parse_range ~what:"tox" ~unit:"angstrom") tox in
  validate_knob_ranges tech ~vth ~tox;
  usage_guard @@ fun () ->
  with_observability ~trace ~trace_json ~metrics_json (fun () ->
      let config = Config.make ~size_bytes:(size_kb * 1024) ~assoc ~block_bytes:block () in
      let model = Cache_model.make tech config in
      let fitted =
        Nmcache_engine.Span.with_span "characterize" (fun () ->
            Fitted_cache.characterize_and_fit ?vth_range:vth
              ?tox_range:
                (Option.map
                   (fun (lo, hi) -> (Units.angstrom lo, Units.angstrom hi))
                   tox)
              model)
      in
      Format.printf "cache %a, %a@." Config.pp config Nmcache_geometry.Org.pp
        (Cache_model.org model);
      let w, h = Cache_model.floorplan model in
      Format.printf "floorplan %.0f x %.0f um@." (Units.to_um w) (Units.to_um h);
      List.iter
        (fun (cm : Fitted_cache.component_model) ->
          Format.printf "@.%s:@."
            (Component.kind_name cm.Fitted_cache.kind);
          Format.printf "  leakage: %a  [%a]@." Model.pp_leak cm.Fitted_cache.leak
            Model.pp_quality cm.Fitted_cache.leak_quality;
          Format.printf "  delay:   %a  [%a]@." Model.pp_delay cm.Fitted_cache.delay
            Model.pp_quality cm.Fitted_cache.delay_quality;
          Format.printf "  energy:  %a@." Model.pp_energy cm.Fitted_cache.energy)
        (Fitted_cache.components fitted))

let characterize_cmd =
  let size = Arg.(value & opt int 16 & info [ "size" ] ~docv:"KB" ~doc:"Capacity in KB.") in
  let assoc = Arg.(value & opt int 4 & info [ "assoc" ] ~doc:"Associativity.") in
  let block = Arg.(value & opt int 64 & info [ "block" ] ~doc:"Block size in bytes.") in
  let vth =
    Arg.(
      value
      & opt (some string) None
      & info [ "vth" ] ~docv:"LO:HI"
          ~doc:
            "Vth characterisation range in volts; must lie within the paper's \
             0.2-0.5 V grid.")
  in
  let tox =
    Arg.(
      value
      & opt (some string) None
      & info [ "tox" ] ~docv:"LO:HI"
          ~doc:
            "Tox characterisation range in angstrom; must lie within the paper's \
             10-14 A grid.")
  in
  let doc = "Characterise a cache over the knob grid and print the fitted compact models." in
  Cmd.v (Cmd.info "characterize" ~doc)
    Term.(
      const characterize $ size $ assoc $ block $ vth $ tox $ trace_arg
      $ trace_json_arg $ metrics_json_arg)

(* --- simulate --------------------------------------------------------- *)

let print_point ~header p =
  print_string header;
  Printf.printf "  L1 miss rate       %.3f%%\n" (100.0 *. p.Missrate.l1_miss);
  Printf.printf "  L2 local miss rate %.3f%%\n" (100.0 *. p.Missrate.l2_local);
  Printf.printf "  L2 global miss     %.3f%%\n" (100.0 *. p.Missrate.l2_global)

(* Simulate a recorded (or piped) trace: one streamed pass carries the
   hierarchy, the running statistics analyzer and the access count —
   a single traversal, because a pipe cannot be re-read.  When a
   checkpoint journal is armed and the source is a trace file, chunk
   boundaries are resumable slots.  Returns false for an empty trace:
   there is no defined miss rate, so the caller exits 2 (the exit runs
   outside the journal/report Fun.protect wrappers). *)
let simulate_trace_source ~source ~chunk ~l1_kb ~l2_kb =
  let s =
    match source with
    | `File path -> Stream_trace.of_file ~chunk_size:chunk path
    | `Stdin -> Stream_trace.of_ndjson_fd ~chunk_size:chunk ~name:"stdin" Unix.stdin
  in
  let l1_size = l1_kb * 1024 and l2_size = l2_kb * 1024 in
  let h =
    let l1 =
      Cache.create ~size_bytes:l1_size ~assoc:4 ~block_bytes:64
        ~policy:Replacement.Lru ()
    in
    let l2 =
      Cache.create ~size_bytes:l2_size ~assoc:8 ~block_bytes:64
        ~policy:Replacement.Lru ()
    in
    Hierarchy.create ~l1 ~l2
  in
  let salt = Printf.sprintf "simulate-trace:%d:%d" l1_size l2_size in
  let h, analyzer, count =
    Stream_trace.resumable_fold ~salt s ~init:(h, Trace_rec.analyzer (), 0)
      ~f:(fun (h, a, count) ~index:_ entries ->
        Array.iter
          (fun (e : Trace_rec.entry) ->
            Trace_rec.feed_analyzer a e;
            ignore (Hierarchy.access h e.Trace_rec.addr ~write:e.Trace_rec.write))
          entries;
        (h, a, count + Array.length entries))
  in
  if count = 0 then begin
    Printf.eprintf "ppcache: trace %s is empty (0 accesses); nothing to simulate\n"
      (Stream_trace.name s);
    false
  end
  else begin
    Printf.printf "trace %s (%d accesses, L1 %dKB, L2 %dKB):\n" (Stream_trace.name s)
      count l1_kb l2_kb;
    Format.printf "  %a@." Trace_rec.pp_stats (Trace_rec.analyzer_stats analyzer);
    print_point ~header:""
      {
        Missrate.l1_miss = Hierarchy.l1_miss_rate h;
        l2_local = Hierarchy.l2_local_miss_rate h;
        l2_global = Hierarchy.l2_global_miss_rate h;
      };
    true
  end

let simulate workload l1_kb l2_kb n stream chunk trace_file trace_stdin jobs
    checkpoint resume retries deadline trace trace_json metrics_json events progress =
  set_jobs jobs;
  set_resilience ~retries ~deadline;
  require_positive "l1" l1_kb;
  require_positive "l2" l2_kb;
  require_positive "chunk" chunk;
  if trace_file <> None && trace_stdin then begin
    Printf.eprintf "ppcache: --trace-file and --trace-stdin are mutually exclusive\n";
    exit 2
  end;
  let source =
    match (trace_file, trace_stdin) with
    | Some path, _ -> Some (`File path)
    | None, true -> Some `Stdin
    | None, false -> None
  in
  (match source with
  | None ->
    (* validate upfront so a typo'd name is a usage error with the menu
       of valid names, not a raw Invalid_argument from Registry.build *)
    if Registry.find workload = None then begin
      Printf.eprintf "unknown workload %S; available: %s\n" workload
        (String.concat ", " Registry.names);
      exit 2
    end;
    require_positive "n" n
  | Some _ -> ());
  let ok = ref true in
  usage_guard (fun () ->
      with_observability ~events ~progress ~trace ~trace_json ~metrics_json (fun () ->
          with_checkpoint ~checkpoint ~resume (fun () ->
              match source with
              | None ->
                (* the workload path: --stream must not change a byte of
                   the output (the stream gate diffs the two stdouts) *)
                let p =
                  Nmcache_engine.Span.with_span
                    ~attrs:[ ("workload", Nmcache_engine.Json.String workload) ]
                    "simulate"
                    (fun () ->
                      if stream then
                        Missrate.simulate_stream
                          ~stream:(Wstream.of_workload ~chunk_size:chunk ~workload ~n ())
                          ~l1_size:(l1_kb * 1024) ~l2_size:(l2_kb * 1024) ()
                      else
                        Missrate.simulate ~workload ~l1_size:(l1_kb * 1024)
                          ~l2_size:(l2_kb * 1024) ~n ())
                in
                print_point
                  ~header:
                    (Printf.sprintf "%s over %d accesses (L1 %dKB, L2 %dKB):\n"
                       workload n l1_kb l2_kb)
                  p
              | Some source ->
                ok := simulate_trace_source ~source ~chunk ~l1_kb ~l2_kb)));
  if not !ok then exit 2

let simulate_cmd =
  let workload =
    Arg.(value & opt string "spec2000-mix" & info [ "workload" ] ~doc:"Workload name.")
  in
  let l1 = Arg.(value & opt int 16 & info [ "l1" ] ~docv:"KB" ~doc:"L1 size in KB.") in
  let l2 = Arg.(value & opt int 1024 & info [ "l2" ] ~docv:"KB" ~doc:"L2 size in KB.") in
  let n = Arg.(value & opt int 2_000_000 & info [ "n"; "accesses" ] ~doc:"Trace length.") in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Simulate the workload through the chunked streaming engine (O(chunk) \
             memory) instead of generator iteration.  Output is byte-identical \
             either way; with $(b,--checkpoint), chunk boundaries become resume \
             points.")
  in
  let chunk =
    Arg.(
      value & opt int Stream_trace.default_chunk_size
      & info [ "chunk" ] ~docv:"N"
          ~doc:
            "Streaming chunk size in accesses (deadline polls, progress events \
             and checkpoint slots fire per chunk).  Never changes results.")
  in
  let trace_file =
    Arg.(
      value & opt (some string) None
      & info [ "trace-file" ] ~docv:"FILE"
          ~doc:
            "Simulate a recorded PPTRC01 trace (see $(b,ppcache trace record)) \
             instead of a generator workload; no warmup is applied and the trace \
             statistics are printed alongside the miss rates.  An empty trace \
             exits 2.")
  in
  let trace_stdin =
    Arg.(
      value & flag
      & info [ "trace-stdin" ]
          ~doc:
            "Read the trace as NDJSON lines ({\"addr\":N,\"write\":bool}) from \
             stdin through the bounded-memory reader.  Mutually exclusive with \
             $(b,--trace-file).")
  in
  let doc =
    "Simulate a workload (or a recorded/piped trace) through an L1+L2 hierarchy \
     and print miss rates.  Streamed and materialised paths are byte-identical; \
     with $(b,--checkpoint) a killed streamed run resumes byte-identically."
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const simulate $ workload $ l1 $ l2 $ n $ stream $ chunk $ trace_file
      $ trace_stdin $ jobs_arg $ checkpoint_arg $ resume_arg $ retries_arg
      $ deadline_arg $ trace_arg $ trace_json_arg $ metrics_json_arg $ events_arg
      $ progress_arg)

(* --- trace ------------------------------------------------------------- *)

let trace_record workload n out chunk seed from_ndjson =
  require_positive "chunk" chunk;
  validate_out_path ~flag:"out" out;
  if from_ndjson then begin
    (* external tracer → PPTRC01 converter: stdin NDJSON through the
       bounded line reader, spooled in O(chunk) memory (the recording's
       header needs the total, which a pipe only knows at EOF) *)
    usage_guard @@ fun () ->
    let stream =
      Stream_trace.of_ndjson_fd ~chunk_size:chunk ~name:workload Unix.stdin
    in
    let total = Stream_trace.record_stream ~path:out stream in
    Printf.printf "recorded stdin as %s: %d accesses to %s (chunk %d)\n"
      workload total out chunk
  end
  else begin
    if Registry.find workload = None then begin
      Printf.eprintf "unknown workload %S; available: %s\n" workload
        (String.concat ", " Registry.names);
      exit 2
    end;
    if n < 0 then begin
      Printf.eprintf "ppcache: --n must be >= 0, got %d\n" n;
      exit 2
    end;
    usage_guard @@ fun () ->
    let gen = Registry.build ~seed workload in
    Stream_trace.write_file ~path:out ~name:workload ~chunk_size:chunk
      ~next:(fun () ->
        let a = Gen.next gen in
        { Trace_rec.addr = a.Access.addr; write = a.Access.write })
      ~n ();
    Printf.printf "recorded %s: %d accesses to %s (chunk %d)\n" workload n out
      chunk
  end

let trace_info file =
  usage_guard @@ fun () ->
  let info =
    try Stream_trace.file_info file
    with Sys_error msg ->
      Printf.eprintf "ppcache: %s\n" msg;
      exit 2
  in
  Printf.printf "%s: workload %s, %d/%d accesses in %d chunks (on-disk chunk %d)%s\n"
    file info.Stream_trace.fi_name info.Stream_trace.fi_entries
    info.Stream_trace.fi_total info.Stream_trace.fi_chunks
    info.Stream_trace.fi_chunk_size
    (if info.Stream_trace.fi_dropped_tail then ", corrupt tail dropped" else "");
  let stats = Stream_trace.analyze (Stream_trace.of_file file) in
  if stats.Trace_rec.accesses = 0 then print_endline "  empty trace"
  else Format.printf "  %a@." Trace_rec.pp_stats stats

let trace_record_cmd =
  let workload =
    Arg.(value & opt string "spec2000-mix" & info [ "workload" ] ~doc:"Workload name.")
  in
  let n =
    Arg.(value & opt int 2_000_000 & info [ "n"; "accesses" ] ~doc:"Trace length.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output trace file (PPTRC01).")
  in
  let chunk =
    Arg.(
      value & opt int Stream_trace.default_chunk_size
      & info [ "chunk" ] ~docv:"N" ~doc:"On-disk chunk size in accesses.")
  in
  let seed =
    Arg.(
      value & opt int64 Registry.default_seed
      & info [ "seed" ] ~doc:"Generator seed.")
  in
  let from_ndjson =
    Arg.(
      value & flag
      & info [ "from-ndjson" ]
          ~doc:
            "Convert a piped NDJSON access stream (one \
             {\"addr\":N,\"write\":bool} object per line on stdin, read \
             through the bounded-memory line reader) into the recording, in \
             O(chunk) memory.  --workload then only names the recording; \
             --n and --seed are ignored.  A malformed or overlong line \
             exits 2.")
  in
  let doc =
    "Record a workload — or, with $(b,--from-ndjson), a piped external trace \
     — to a compressed PPTRC01 trace file (delta-encoded, CRC-guarded per \
     chunk) in O(chunk) memory, for later $(b,ppcache simulate --trace-file) \
     replay."
  in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(const trace_record $ workload $ n $ out $ chunk $ seed $ from_ndjson)

let trace_info_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Trace file.")
  in
  let doc =
    "Validate and summarise a PPTRC01 trace file: header, CRC + decode scan of \
     every chunk (a torn tail is reported, a foreign file exits 2), and \
     streamed trace statistics."
  in
  Cmd.v (Cmd.info "info" ~doc) Term.(const trace_info $ file)

let trace_cmd =
  let doc = "Record and inspect compressed PPTRC01 trace files." in
  Cmd.group (Cmd.info "trace" ~doc) [ trace_record_cmd; trace_info_cmd ]

(* --- verify ----------------------------------------------------------- *)

module Verify = Nmcache_verify

(* Section selection: positional names; no positionals means the
   always-on gates (oracles + anchors); golden is opt-in because it
   reads snapshots from the working tree, chaos because it spawns
   child processes. *)
let verify_sections = [ "oracles"; "anchors"; "golden"; "chaos" ]

let verify sections quick golden_dir update_golden report_json seeds jobs checkpoint
    resume retries deadline trace trace_json metrics_json faults_json metrics_prom
    events progress =
  set_jobs jobs;
  set_resilience ~retries ~deadline;
  if seeds < 1 then begin
    Printf.eprintf "ppcache: --seeds must be >= 1, got %d\n" seeds;
    exit 2
  end;
  List.iter
    (fun s ->
      if not (List.mem s verify_sections) then begin
        Printf.eprintf "ppcache: unknown verify section %S; available: %s\n" s
          (String.concat ", " verify_sections);
        exit 2
      end)
    sections;
  let selected = match sections with [] -> [ "oracles"; "anchors" ] | s -> s in
  let on = List.mem in
  let ctx = context quick in
  let checks = ref [] in
  with_observability ~faults_json ~metrics_prom ~events ~progress ~trace ~trace_json
    ~metrics_json (fun () ->
  with_checkpoint ~checkpoint ~resume (fun () ->
      (* a crashed section settles as one CRASH check via the group
         fault boundary, so later sections still run and the report
         stays complete *)
      if on "oracles" selected then checks := !checks @ Verify.Oracles.all ctx;
      if on "anchors" selected then checks := !checks @ Verify.Anchors.all ctx;
      if on "golden" selected then
        checks :=
          !checks
          @ Verify.Golden.run ~update:update_golden ~dir:golden_dir
              (Core.Context.quick ()) ();
      if on "chaos" selected then
        checks := !checks @ Verify.Chaos.campaign ~seeds ctx;
      print_string (Verify.Check.render !checks);
      Option.iter
        (fun path ->
          let report =
            Nmcache_engine.Obs.verify_report ~checks:(Verify.Check.to_json !checks)
          in
          Nmcache_engine.Obs.write_text ~path
            (Nmcache_engine.Json.to_string report ^ "\n"))
        report_json));
  if not (Verify.Check.all_passed !checks) then exit 1

let verify_cmd =
  let sections =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SECTION"
          ~doc:
            "Sections to run: $(b,oracles) (differential oracles), $(b,anchors) \
             (paper-anchor checks), $(b,golden) (snapshot byte-diffs), \
             $(b,chaos) (seeded fault-injection campaign: SIGKILL children, torn \
             stores, poisoned requests, concurrent clients).  Default: oracles \
             anchors.")
  in
  let seeds =
    Arg.(
      value & opt int 10
      & info [ "seeds" ] ~docv:"N"
          ~doc:
            "Chaos-campaign seeds to run (section $(b,chaos) only).  Seed $(i,s) \
             drives scenario family $(i,s) mod 5; every scenario parameter \
             derives from the seed, so a campaign is byte-identical across runs \
             and at any $(b,--jobs).")
  in
  let golden_dir =
    Arg.(
      value
      & opt string "test/golden"
      & info [ "golden-dir" ] ~docv:"DIR" ~doc:"Directory holding golden snapshots.")
  in
  let update_golden =
    Arg.(
      value & flag
      & info [ "update-golden" ]
          ~doc:
            "Regenerate the golden snapshots instead of diffing them.  Commit the \
             rewritten files together with the change that moved the numbers.")
  in
  let report_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "report-json" ] ~docv:"FILE"
          ~doc:"Write the full check list (and fault log) as JSON to $(docv).")
  in
  let doc =
    "Run the verification gates: differential oracles (brute-force references vs \
     the production optimisers, Mattson curves vs direct simulation, compact \
     models vs their training samples), executable paper anchors, and golden \
     snapshot byte-diffs.  Golden checks always use the quick context so \
     snapshots are fast and deterministic.  Exit status 1 on any failed or \
     crashed check."
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(
      const verify $ sections $ quick_arg $ golden_dir $ update_golden $ report_json
      $ seeds $ jobs_arg $ checkpoint_arg $ resume_arg $ retries_arg $ deadline_arg
      $ trace_arg $ trace_json_arg $ metrics_json_arg $ faults_json_arg
      $ metrics_prom_arg $ events_arg $ progress_arg)

(* --- bench diff -------------------------------------------------------- *)

module Bench_diff = Nmcache_engine.Bench_diff

let bench_diff a_path b_path gate =
  let load path =
    try Bench_diff.load path
    with Failure msg | Sys_error msg ->
      Printf.eprintf "ppcache: bench diff: %s\n" msg;
      exit 2
  in
  (match gate with
  | Some r when r <= 0.0 ->
    Printf.eprintf "ppcache: --gate must be > 0, got %g\n" r;
    exit 2
  | _ -> ());
  let a = load a_path and b = load b_path in
  print_string (Bench_diff.render a b);
  match gate with
  | None -> ()
  | Some ratio ->
    print_endline (Bench_diff.gate_verdict ~ratio a b);
    if Bench_diff.gate_exceeded ~ratio a b then exit 1

let bench_diff_cmd =
  let a = Arg.(required & pos 0 (some string) None & info [] ~docv:"A.json" ~doc:"Baseline bench report.") in
  let b = Arg.(required & pos 1 (some string) None & info [] ~docv:"B.json" ~doc:"Candidate bench report.") in
  let gate =
    Arg.(
      value
      & opt (some float) None
      & info [ "gate" ] ~docv:"RATIO"
          ~doc:
            "Fail (exit 1) when B's wall time exceeds $(docv) times A's.  The \
             CI regression policy is 1.5.")
  in
  let doc =
    "Compare two BENCH_<label>.json trajectory reports (bench schema v2 or \
     v3): wall time, per-experiment and per-stage walls, memo hit rates, \
     digests and resource counters, as a per-metric delta table."
  in
  Cmd.v (Cmd.info "diff" ~doc) Term.(const bench_diff $ a $ b $ gate)

let bench_cmd =
  let doc = "Bench-trajectory tools (see $(b,ppcache bench diff --help))." in
  Cmd.group (Cmd.info "bench" ~doc) [ bench_diff_cmd ]

(* --- workloads --------------------------------------------------------- *)

let workloads () =
  List.iter
    (fun (e : Registry.entry) ->
      Printf.printf "%-16s %s\n" e.Registry.name e.Registry.description)
    Registry.all

let workloads_cmd =
  let doc = "List the synthetic workload generators." in
  Cmd.v (Cmd.info "workloads" ~doc) Term.(const workloads $ const ())

(* --- store ------------------------------------------------------------ *)

let store_open_or_exit dir =
  let module S = Nmcache_engine.Store in
  if not (Sys.file_exists (Filename.concat dir S.store_name)) then begin
    Printf.eprintf "ppcache: no store at %s\n" dir;
    exit 2
  end;
  try S.open_ ~dir
  with Nmcache_engine.Lockfile.Locked { path; pid } ->
    Printf.eprintf
      "ppcache: store %s is locked by running pid %d (%s); stop the writer \
       first\n"
      dir pid path;
    exit 2

let store_info dir =
  usage_guard @@ fun () ->
  let module S = Nmcache_engine.Store in
  let s = store_open_or_exit dir in
  Fun.protect
    ~finally:(fun () -> S.close s)
    (fun () ->
      Printf.printf "store: %s\n" (S.path s);
      Printf.printf "segment: PPSTOR0%d\n" (S.segment_version s);
      Printf.printf "live records: %d (%d bytes)\n" (S.entries s)
        (S.live_bytes s);
      Printf.printf "dead records: %d (%d bytes)\n" (S.dead_records s)
        (S.dead_bytes s);
      Printf.printf "file bytes: %d\n" (S.bytes s);
      if S.dropped_tail s then print_endline "corrupt tail: dropped on open")

let store_compact dir =
  usage_guard @@ fun () ->
  let module S = Nmcache_engine.Store in
  let s = store_open_or_exit dir in
  Fun.protect
    ~finally:(fun () -> S.close s)
    (fun () ->
      let r = S.compact s in
      Printf.printf
        "compacted %s: %d live record(s) kept, %d dead record(s) reclaimed, \
         %d -> %d bytes\n"
        (S.path s) r.S.live r.S.reclaimed_records r.S.before_bytes
        r.S.after_bytes)

let store_dir_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Store directory (holding store.ppck).")

let store_info_cmd =
  let doc =
    "Replay and summarise a store journal: segment version, live/dead record \
     and byte counts (dead records are on-disk duplicates shadowed by an \
     earlier first-write-wins record), and whether a corrupt tail was \
     dropped.  A missing store exits 2; so does a store held by a live \
     writer."
  in
  Cmd.v (Cmd.info "info" ~doc) Term.(const store_info $ store_dir_pos)

let store_compact_cmd =
  let doc =
    "Rewrite the live records into a fresh PPSTOR02 segment, reclaiming dead \
     bytes.  Crash-safe at any instruction: the new segment is written to \
     store.ppck.tmp, fsynced, then atomically renamed over store.ppck — the \
     old segment stays authoritative until that rename, and an interrupted \
     tmp is discarded on the next open."
  in
  Cmd.v (Cmd.info "compact" ~doc) Term.(const store_compact $ store_dir_pos)

let store_cmd =
  let doc = "Inspect and compact persistent model store journals." in
  Cmd.group (Cmd.info "store" ~doc) [ store_info_cmd; store_compact_cmd ]

(* --- serve ----------------------------------------------------------- *)

let serve store_dir socket queue max_conns global_queue write_timeout
    compact_ratio quick jobs retries deadline trace trace_json metrics_json
    faults_json metrics_prom events progress =
  set_jobs jobs;
  set_resilience ~retries ~deadline;
  if queue < 1 then begin
    Printf.eprintf "ppcache: --queue must be >= 1\n";
    exit 2
  end;
  if max_conns < 1 then begin
    Printf.eprintf "ppcache: --max-conns must be >= 1\n";
    exit 2
  end;
  if global_queue < 0 then begin
    Printf.eprintf "ppcache: --global-queue must be >= 1 (0 = max-conns*queue)\n";
    exit 2
  end;
  if not (compact_ratio > 0.) then begin
    Printf.eprintf "ppcache: --compact-ratio must be > 0\n";
    exit 2
  end;
  usage_guard @@ fun () ->
  with_observability ~faults_json ~metrics_prom ~events ~progress ~trace
    ~trace_json ~metrics_json
  @@ fun () ->
  let module S = Nmcache_engine.Store in
  let module Server = Nmcache_engine.Server in
  let ctx = context quick in
  let store =
    match store_dir with
    | None -> None
    | Some dir -> (
      try Some (S.open_ ~dir)
      with Nmcache_engine.Lockfile.Locked { path; pid } ->
        Printf.eprintf
          "ppcache: store %s is locked by running pid %d (%s); two writers \
           on one store would interleave records\n"
          dir pid path;
        exit 2)
  in
  (* startup auto-compaction: when the dead fraction of the journal
     exceeds --compact-ratio, rewrite it before serving *)
  Option.iter
    (fun s ->
      let dead = S.dead_bytes s and live = S.live_bytes s in
      let total = dead + live in
      if total > 0 && float_of_int dead > compact_ratio *. float_of_int total
      then begin
        let r = S.compact s in
        Printf.eprintf
          "ppcache: store %s: compacted %d dead record(s), %d -> %d bytes\n%!"
          (S.path s) r.S.reclaimed_records r.S.before_bytes r.S.after_bytes
      end)
    store;
  S.set_active store;
  Fun.protect
    ~finally:(fun () ->
      S.set_active None;
      Option.iter
        (fun s ->
          S.flush s;
          Printf.eprintf
            "ppcache: store %s: %d replayed, %d served, %d appended%s\n%!"
            (S.path s) (S.replayed s) (S.served s) (S.appended s)
            (if S.dropped_tail s then " (corrupt tail dropped)" else "");
          S.close s)
        store)
    (fun () ->
      let pool = Nmcache_engine.Executor.pool () in
      let service =
        Core.Service.create ?store ~ctx ~queue
          ~jobs:(Nmcache_engine.Executor.get_jobs ())
          ()
      in
      Server.reset_drain ();
      Server.install_drain_signals ();
      let handler = Core.Service.handler service in
      let stats =
        match socket with
        | Some path ->
          Server.serve_unix_socket ~queue ~max_conns
            ?global_queue:(if global_queue = 0 then None else Some global_queue)
            ~write_timeout ~pool ~handler
            ~crash_response:Core.Service.crash_response
            ~overlong_response:Core.Service.overlong_response
            ~shed_response:Core.Service.shed_response ~path ()
        | None ->
          Server.serve ~queue ~pool ~handler
            ~crash_response:Core.Service.crash_response
            ~overlong_response:Core.Service.overlong_response ~input:Unix.stdin
            ~output:stdout ()
      in
      Printf.eprintf "ppcache: serve: %d requests, %d responses%s\n%!"
        stats.Server.requests stats.Server.responses
        (if stats.Server.drained then " (drained)" else ""))

let serve_cmd =
  let store =
    let doc =
      "Persist fitted models, miss-rate curves and optimisation results to \
       $(docv)/store.ppck (append-only, CRC-guarded) and answer repeat \
       queries from it — across restarts.  A corrupt tail (killed writer) is \
       truncated on open; a second server on the same directory fails fast."
    in
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)
  in
  let socket =
    let doc =
      "Listen on a Unix domain socket at $(docv) (up to --max-conns \
       connections served concurrently) instead of reading stdin."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let queue =
    let doc =
      "Bounded in-flight window: at most $(docv) request lines are read \
       ahead and evaluated per batch.  Independent of --jobs, so responses \
       are byte-identical at any pool width."
    in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let max_conns =
    let doc =
      "Serve at most $(docv) socket connections concurrently; a connection \
       accepted beyond the cap is shed with a single overloaded error line."
    in
    Arg.(value & opt int 4 & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let global_queue =
    let doc =
      "Cap total in-flight request lines across all connections at $(docv); \
       requests beyond the cap are answered with overloaded errors instead \
       of buffered.  0 (the default) means --max-conns times --queue."
    in
    Arg.(value & opt int 0 & info [ "global-queue" ] ~docv:"N" ~doc)
  in
  let write_timeout =
    let doc =
      "Drop a socket connection whose client stalls reads for more than \
       $(docv) seconds (SO_SNDTIMEO); only that connection is affected.  \
       0 disables."
    in
    Arg.(value & opt float 10. & info [ "write-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let compact_ratio =
    let doc =
      "Compact the store at startup when dead (shadowed duplicate) bytes \
       exceed $(docv) of the journal.  Crash-safe: the old segment stays \
       authoritative until one atomic rename."
    in
    Arg.(value & opt float 0.5 & info [ "compact-ratio" ] ~docv:"R" ~doc)
  in
  let doc =
    "Serve NDJSON design-space queries (optimize, miss_curve, amat, health) \
     from stdin or a Unix socket: one response line per request, structured \
     error objects for poisoned requests, admission control, per-key circuit \
     breakers and graceful SIGTERM drain.  See EXPERIMENTS.md for the \
     protocol."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve $ store $ socket $ queue $ max_conns $ global_queue
      $ write_timeout $ compact_ratio $ quick_arg $ jobs_arg $ retries_arg
      $ deadline_arg $ trace_arg $ trace_json_arg $ metrics_json_arg
      $ faults_json_arg $ metrics_prom_arg $ events_arg $ progress_arg)

let main =
  let doc = "power-performance trade-offs in nanometer-scale multi-level caches (DATE'05 reproduction)" in
  Cmd.group (Cmd.info "ppcache" ~version:"1.0.0" ~doc)
    [
      run_cmd;
      list_cmd;
      characterize_cmd;
      simulate_cmd;
      trace_cmd;
      verify_cmd;
      bench_cmd;
      workloads_cmd;
      store_cmd;
      serve_cmd;
    ]

let () =
  (* chaos-campaign children: the harness re-execs this binary with a
     child spec in the environment (OCaml 5 forbids fork once a domain
     exists), so dispatch before anything else — argv is ignored *)
  (match Sys.getenv_opt Verify.Chaos.child_env with
  | Some spec ->
    Verify.Chaos.child_main spec;
    exit 0
  | None -> ());
  (* arm deterministic fault injection before any subcommand runs; a
     malformed spec is a usage error, not a silent no-op *)
  (match Nmcache_engine.Faultpoint.configure_from_env () with
  | Ok _ -> ()
  | Error msg ->
    Printf.eprintf "ppcache: bad %s spec: %s\n" Nmcache_engine.Faultpoint.env_var msg;
    exit 2);
  (* every bad-argument path exits 2: cmdliner renders unknown flags /
     malformed options as its cli_error (124) — fold that onto the same
     code our own validators use *)
  let code = Cmd.eval main in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
