(* ppcache — CLI for the DATE'05 power-performance cache study.

   Subcommands: run (any experiment by id), list, characterize (fit the
   compact models of one cache and print them), simulate (miss rates of
   one workload on one hierarchy), workloads. *)

module Units = Nmcache_physics.Units
module Config = Nmcache_geometry.Config
module Cache_model = Nmcache_geometry.Cache_model
module Component = Nmcache_geometry.Component
module Fitted_cache = Nmcache_fit.Fitted_cache
module Model = Nmcache_fit.Model
module Missrate = Nmcache_workload.Missrate
module Registry = Nmcache_workload.Registry

open Cmdliner

let quick_arg =
  let doc = "Use the reduced context (shorter traces, coarser grids)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let jobs_arg =
  let doc =
    "Evaluate independent kernels on $(docv) domains.  Output is \
     byte-identical to --jobs 1; 0 means one domain per core."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let trace_arg =
  let doc = "Print the engine trace summary (per-stage wall time, task counts, memo hit rates) after the run." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let trace_json_arg =
  let doc =
    "Write the span tree as Chrome trace_event JSON to $(docv) — open it in \
     Perfetto (ui.perfetto.dev) or chrome://tracing to inspect per-domain \
     parallel execution."
  in
  Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE" ~doc)

let metrics_json_arg =
  let doc =
    "Write the metrics registry (counters, gauges, histogram quantiles), \
     per-stage trace table and memo hit rates as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE" ~doc)

(* Observability wrapper shared by the subcommands: span collection is
   enabled only when a trace file was requested (spans carry
   timestamps, so they stay out of the byte-compared experiment
   output); report files are written even if the command fails partway,
   so a crashed run still leaves its trace behind. *)
let with_observability ~trace ~trace_json ~metrics_json f =
  if trace_json <> None then Nmcache_engine.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      if trace then print_string (Nmcache_engine.Trace.summary ());
      Option.iter (fun path -> Nmcache_engine.Obs.write_trace ~path) trace_json;
      Option.iter (fun path -> Nmcache_engine.Obs.write_metrics ~path) metrics_json)
    f

let context quick = if quick then Core.Context.quick () else Core.Context.default ()

let set_jobs jobs =
  let jobs =
    if jobs = 0 then Nmcache_engine.Executor.default_jobs ()
    else if jobs < 0 then begin
      Printf.eprintf "ppcache: --jobs must be >= 0\n";
      exit 2
    end
    else jobs
  in
  Nmcache_engine.Executor.set_jobs jobs

(* --- run ------------------------------------------------------------ *)

let run_experiment ids quick csv jobs trace trace_json metrics_json =
  set_jobs jobs;
  let ctx = context quick in
  let targets =
    match ids with
    | [] | [ "all" ] -> Core.Experiments.all
    | ids ->
      List.map
        (fun id ->
          match Core.Experiments.find id with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S; try `ppcache list`\n" id;
            exit 2)
        ids
  in
  with_observability ~trace ~trace_json ~metrics_json (fun () ->
      (* kernels run (possibly in parallel) first; artefacts print in
         registry order afterwards, so the bytes never depend on --jobs *)
      List.iter
        (fun ((e : Core.Experiments.t), artefacts) ->
          if csv then print_string (Core.Report.render_csv artefacts)
          else begin
            Printf.printf "### %s — %s (%s)\n\n" e.Core.Experiments.id
              e.Core.Experiments.title e.Core.Experiments.paper_ref;
            Core.Report.print artefacts
          end)
        (Core.Experiments.run_many ctx targets))

let run_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiment ids (or `all').")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of formatted tables.")
  in
  let doc = "Run one or more experiments and print their tables/series." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_experiment $ ids $ quick_arg $ csv $ jobs_arg $ trace_arg
      $ trace_json_arg $ metrics_json_arg)

(* --- list ------------------------------------------------------------ *)

let list_experiments () =
  List.iter
    (fun (e : Core.Experiments.t) ->
      Printf.printf "%-16s %-12s %s\n" e.Core.Experiments.id
        ("[" ^ e.Core.Experiments.paper_ref ^ "]")
        e.Core.Experiments.title)
    Core.Experiments.all

let list_cmd =
  let doc = "List the available experiments." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_experiments $ const ())

(* --- characterize ---------------------------------------------------- *)

let characterize size_kb assoc block trace trace_json metrics_json =
  with_observability ~trace ~trace_json ~metrics_json (fun () ->
      let tech = Nmcache_device.Tech.bptm65 in
      let config = Config.make ~size_bytes:(size_kb * 1024) ~assoc ~block_bytes:block () in
      let model = Cache_model.make tech config in
      let fitted =
        Nmcache_engine.Span.with_span "characterize" (fun () ->
            Fitted_cache.characterize_and_fit model)
      in
      Format.printf "cache %a, %a@." Config.pp config Nmcache_geometry.Org.pp
        (Cache_model.org model);
      let w, h = Cache_model.floorplan model in
      Format.printf "floorplan %.0f x %.0f um@." (Units.to_um w) (Units.to_um h);
      List.iter
        (fun (cm : Fitted_cache.component_model) ->
          Format.printf "@.%s:@."
            (Component.kind_name cm.Fitted_cache.kind);
          Format.printf "  leakage: %a  [%a]@." Model.pp_leak cm.Fitted_cache.leak
            Model.pp_quality cm.Fitted_cache.leak_quality;
          Format.printf "  delay:   %a  [%a]@." Model.pp_delay cm.Fitted_cache.delay
            Model.pp_quality cm.Fitted_cache.delay_quality;
          Format.printf "  energy:  %a@." Model.pp_energy cm.Fitted_cache.energy)
        (Fitted_cache.components fitted))

let characterize_cmd =
  let size = Arg.(value & opt int 16 & info [ "size" ] ~docv:"KB" ~doc:"Capacity in KB.") in
  let assoc = Arg.(value & opt int 4 & info [ "assoc" ] ~doc:"Associativity.") in
  let block = Arg.(value & opt int 64 & info [ "block" ] ~doc:"Block size in bytes.") in
  let doc = "Characterise a cache over the knob grid and print the fitted compact models." in
  Cmd.v (Cmd.info "characterize" ~doc)
    Term.(
      const characterize $ size $ assoc $ block $ trace_arg $ trace_json_arg
      $ metrics_json_arg)

(* --- simulate --------------------------------------------------------- *)

let simulate workload l1_kb l2_kb n trace trace_json metrics_json =
  (* validate upfront so a typo'd name is a usage error with the menu
     of valid names, not a raw Invalid_argument from Registry.build *)
  if Registry.find workload = None then begin
    Printf.eprintf "unknown workload %S; available: %s\n" workload
      (String.concat ", " Registry.names);
    exit 2
  end;
  with_observability ~trace ~trace_json ~metrics_json (fun () ->
      let p =
        Nmcache_engine.Span.with_span
          ~attrs:[ ("workload", Nmcache_engine.Json.String workload) ]
          "simulate"
          (fun () ->
            Missrate.simulate ~workload ~l1_size:(l1_kb * 1024)
              ~l2_size:(l2_kb * 1024) ~n ())
      in
      Printf.printf "%s over %d accesses (L1 %dKB, L2 %dKB):\n" workload n l1_kb l2_kb;
      Printf.printf "  L1 miss rate       %.3f%%\n" (100.0 *. p.Missrate.l1_miss);
      Printf.printf "  L2 local miss rate %.3f%%\n" (100.0 *. p.Missrate.l2_local);
      Printf.printf "  L2 global miss     %.3f%%\n" (100.0 *. p.Missrate.l2_global))

let simulate_cmd =
  let workload =
    Arg.(value & opt string "spec2000-mix" & info [ "workload" ] ~doc:"Workload name.")
  in
  let l1 = Arg.(value & opt int 16 & info [ "l1" ] ~docv:"KB" ~doc:"L1 size in KB.") in
  let l2 = Arg.(value & opt int 1024 & info [ "l2" ] ~docv:"KB" ~doc:"L2 size in KB.") in
  let n = Arg.(value & opt int 2_000_000 & info [ "n"; "accesses" ] ~doc:"Trace length.") in
  let doc = "Simulate a workload through an L1+L2 hierarchy and print miss rates." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const simulate $ workload $ l1 $ l2 $ n $ trace_arg $ trace_json_arg
      $ metrics_json_arg)

(* --- workloads --------------------------------------------------------- *)

let workloads () =
  List.iter
    (fun (e : Registry.entry) ->
      Printf.printf "%-16s %s\n" e.Registry.name e.Registry.description)
    Registry.all

let workloads_cmd =
  let doc = "List the synthetic workload generators." in
  Cmd.v (Cmd.info "workloads" ~doc) Term.(const workloads $ const ())

let main =
  let doc = "power-performance trade-offs in nanometer-scale multi-level caches (DATE'05 reproduction)" in
  Cmd.group (Cmd.info "ppcache" ~version:"1.0.0" ~doc)
    [ run_cmd; list_cmd; characterize_cmd; simulate_cmd; workloads_cmd ]

let () = exit (Cmd.eval main)
