module Cache = Nmcache_cachesim.Cache
module Hierarchy = Nmcache_cachesim.Hierarchy
module Mattson = Nmcache_cachesim.Mattson
module Replacement = Nmcache_cachesim.Replacement
module Stats = Nmcache_cachesim.Stats
module Memo = Nmcache_engine.Memo
module Task = Nmcache_engine.Task
module Sweep = Nmcache_engine.Sweep
module Retry = Nmcache_engine.Retry
module Deadline = Nmcache_engine.Deadline
module Faultpoint = Nmcache_engine.Faultpoint

type point = {
  l1_miss : float;
  l2_local : float;
  l2_global : float;
}

(* process-wide, domain-safe memo tables; keys stringified for
   simplicity (they name every input the simulation depends on) *)
let point_cache : point Memo.t = Memo.create ~name:"missrate.points" ()
let curve_cache : (float * float array) Memo.t = Memo.create ~name:"missrate.curves" ()
let l1_cache : float Memo.t = Memo.create ~name:"missrate.l1" ()

let clear_cache () =
  Memo.clear point_cache;
  Memo.clear curve_cache;
  Memo.clear l1_cache

let policy_key = function
  | Replacement.Lru -> "lru"
  | Replacement.Fifo -> "fifo"
  | Replacement.Random s -> Printf.sprintf "random%d" s
  | Replacement.Plru -> "plru"

(* The memo keys double as checkpoint slot keys for the sweep tasks
   below, so they must (and do) name every input the result depends
   on. *)
let sim_key ~workload ~l1_size ~l2_size ~l1_assoc ~l2_assoc ~block ~policy ~seed ~n =
  Printf.sprintf "sim:%s:%d:%d:%d:%d:%d:%s:%Ld:%d" workload l1_size l2_size l1_assoc
    l2_assoc block (policy_key policy) seed n

let curve_key ~workload ~l1_size ~l1_assoc ~block ~seed ~n ~l2_sizes =
  let sizes_key = String.concat "," (Array.to_list (Array.map string_of_int l2_sizes)) in
  Printf.sprintf "curve:%s:%d:%d:%d:%Ld:%d:%s" workload l1_size l1_assoc block seed n
    sizes_key

let l1_key ~workload ~l1_size ~l1_assoc ~block ~policy ~seed ~n =
  Printf.sprintf "l1:%s:%d:%d:%d:%s:%Ld:%d" workload l1_size l1_assoc block
    (policy_key policy) seed n

(* A warmup prefix of half the trace fills the caches before counters
   start, so rates reflect steady state rather than cold-start. *)
let warmup_fraction = 0.5

(* Cooperative deadline seam for the access loops: one poll every 4096
   accesses bounds a wedged simulation without showing up in the
   profile. *)
let polled ~stage feed =
  let count = ref 0 in
  fun a ->
    incr count;
    if !count land 4095 = 0 then Deadline.poll ~stage;
    feed a

let simulate ?(l1_assoc = 4) ?(l2_assoc = 8) ?(block = 64) ?(policy = Replacement.Lru)
    ?(seed = Registry.default_seed) ~workload ~l1_size ~l2_size ~n () =
  let key = sim_key ~workload ~l1_size ~l2_size ~l1_assoc ~l2_assoc ~block ~policy ~seed ~n in
  Memo.find_or_compute point_cache key (fun () ->
      (* inside the memoised compute: an injected fault exercises the
         Pending-cleanup path (waiters retry, hit the same key-
         deterministic fault, and fail identically at any --jobs).
         The retry boundary sits inside the memo too, so a transient
         injection is recovered before any waiter sees it. *)
      Retry.run ~stage:"simulate" ~key (fun ~attempt ~last:_ ->
          Faultpoint.hit ~attempt ~point:"simulate" ~key ();
          let gen = Registry.build ~seed workload in
          let l1 = Cache.create ~size_bytes:l1_size ~assoc:l1_assoc ~block_bytes:block ~policy () in
          let l2 = Cache.create ~size_bytes:l2_size ~assoc:l2_assoc ~block_bytes:block ~policy () in
          let h = Hierarchy.create ~l1 ~l2 in
          let warm = int_of_float (warmup_fraction *. float_of_int n) in
          let feed =
            polled ~stage:"simulate" (fun a ->
                ignore (Hierarchy.access h a.Access.addr ~write:a.Access.write))
          in
          Gen.iter gen warm feed;
          Cache.reset_stats l1;
          Cache.reset_stats l2;
          Gen.iter gen (n - warm) feed;
          Nmcache_engine.Metrics.incr "cachesim.simulations";
          Stats.flush_to_metrics ~prefix:"cachesim.l1" (Cache.stats l1);
          Stats.flush_to_metrics ~prefix:"cachesim.l2" (Cache.stats l2);
          {
            l1_miss = Hierarchy.l1_miss_rate h;
            l2_local = Hierarchy.l2_local_miss_rate h;
            l2_global = Hierarchy.l2_global_miss_rate h;
          }))

type l2_curve = {
  workload : string;
  l1_size : int;
  l1_miss_rate : float;
  l2_sizes : int array;
  l2_local_rates : float array;
}

let raw_curve ?(l1_assoc = 4) ?(block = 64) ?(seed = Registry.default_seed) ~workload
    ~l1_size ~l2_sizes ~n () =
  let key = curve_key ~workload ~l1_size ~l1_assoc ~block ~seed ~n ~l2_sizes in
  Memo.find_or_compute curve_cache key (fun () ->
      Retry.run ~stage:"simulate" ~key (fun ~attempt ~last:_ ->
          Faultpoint.hit ~attempt ~point:"simulate" ~key ();
          let gen = Registry.build ~seed workload in
          let l1 =
            Cache.create ~size_bytes:l1_size ~assoc:l1_assoc ~block_bytes:block
              ~policy:Replacement.Lru ()
          in
          let profiler = Mattson.create ~block_bytes:block () in
          let feed =
            polled ~stage:"simulate" (fun a ->
                let o = Cache.access l1 a.Access.addr ~write:a.Access.write in
                if not o.Cache.hit then Mattson.access profiler a.Access.addr)
          in
          let warm = int_of_float (warmup_fraction *. float_of_int n) in
          Mattson.set_measuring profiler false;
          Gen.iter gen warm feed;
          Cache.reset_stats l1;
          Mattson.set_measuring profiler true;
          Gen.iter gen (n - warm) feed;
          let l1m = Stats.miss_rate (Cache.stats l1) in
          Nmcache_engine.Metrics.incr "cachesim.mattson_curves";
          Stats.flush_to_metrics ~prefix:"cachesim.l1" (Cache.stats l1);
          let caps = Array.map (fun s -> max 1 (s / block)) l2_sizes in
          let rates = Mattson.miss_ratio_curve profiler ~capacities:caps in
          (l1m, rates)))

let l2_curve ?l1_assoc ?block ?seed ~workload ~l1_size ~l2_sizes ~n () =
  let l1_miss_rate, l2_local_rates =
    raw_curve ?l1_assoc ?block ?seed ~workload ~l1_size ~l2_sizes ~n ()
  in
  { workload; l1_size; l1_miss_rate; l2_sizes = Array.copy l2_sizes; l2_local_rates }

let averaged_l2_curve ?(l1_assoc = 4) ?(block = 64) ?(seed = Registry.default_seed)
    ~workloads ~l1_size ~l2_sizes ~n () =
  if workloads = [] then invalid_arg "Missrate.averaged_l2_curve: no workloads";
  (* one independent simulation per workload — the engine fans them out
     and returns curves in workload order; the slot key (the memo key)
     makes each curve individually checkpointable *)
  let curves =
    Sweep.map_list
      (Task.make ~name:"missrate.l2-curve"
         ~key:(fun workload -> curve_key ~workload ~l1_size ~l1_assoc ~block ~seed ~n ~l2_sizes)
         (fun workload ->
           l2_curve ~l1_assoc ~block ~seed ~workload ~l1_size ~l2_sizes ~n ()))
      workloads
  in
  let k = float_of_int (List.length curves) in
  let l1_miss_rate = List.fold_left (fun acc c -> acc +. c.l1_miss_rate) 0.0 curves /. k in
  let l2_local_rates =
    Array.init (Array.length l2_sizes) (fun i ->
        List.fold_left (fun acc c -> acc +. c.l2_local_rates.(i)) 0.0 curves /. k)
  in
  {
    workload = String.concat "+" workloads;
    l1_size;
    l1_miss_rate;
    l2_sizes = Array.copy l2_sizes;
    l2_local_rates;
  }

let l1_sweep ?(l1_assoc = 4) ?(block = 64) ?(policy = Replacement.Lru)
    ?(seed = Registry.default_seed) ~workload ~l1_sizes ~n () =
  let slot_key l1_size = l1_key ~workload ~l1_size ~l1_assoc ~block ~policy ~seed ~n in
  Sweep.map_array
    (Task.make ~name:"missrate.l1-sweep" ~key:slot_key (fun l1_size ->
         Memo.find_or_compute l1_cache (slot_key l1_size) (fun () ->
             let gen = Registry.build ~seed workload in
             let l1 =
               Cache.create ~size_bytes:l1_size ~assoc:l1_assoc ~block_bytes:block ~policy ()
             in
             let feed =
               polled ~stage:"simulate" (fun a ->
                   ignore (Cache.access l1 a.Access.addr ~write:a.Access.write))
             in
             let warm = int_of_float (warmup_fraction *. float_of_int n) in
             Gen.iter gen warm feed;
             Cache.reset_stats l1;
             Gen.iter gen (n - warm) feed;
             Nmcache_engine.Metrics.incr "cachesim.simulations";
             Stats.flush_to_metrics ~prefix:"cachesim.l1" (Cache.stats l1);
             Stats.miss_rate (Cache.stats l1))))
    l1_sizes
