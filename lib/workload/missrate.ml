module Cache = Nmcache_cachesim.Cache
module Hierarchy = Nmcache_cachesim.Hierarchy
module Replacement = Nmcache_cachesim.Replacement
module Stats = Nmcache_cachesim.Stats
module Memo = Nmcache_engine.Memo
module Task = Nmcache_engine.Task
module Sweep = Nmcache_engine.Sweep
module Retry = Nmcache_engine.Retry
module Faultpoint = Nmcache_engine.Faultpoint

type point = {
  l1_miss : float;
  l2_local : float;
  l2_global : float;
}

(* process-wide, domain-safe memo tables; keys stringified for
   simplicity (they name every input the result depends on).  Whole
   miss-rate curves are derived from the stack-distance profiles in
   {!Profile}; only [simulate] and non-LRU L1 sweeps still walk the
   trace per configuration. *)
let point_cache : point Memo.t = Memo.create ~name:"missrate.points" ()
let l1_cache : float Memo.t = Memo.create ~name:"missrate.l1" ()

let policy_key = function
  | Replacement.Lru -> "lru"
  | Replacement.Fifo -> "fifo"
  | Replacement.Random s -> Printf.sprintf "random%d" s
  | Replacement.Plru -> "plru"

(* The memo keys double as checkpoint slot keys for the sweep tasks
   below, so they must (and do) name every input the result depends
   on.  Prefixes are versioned ("curve2", "l1d") where this PR changed
   what a slot means, so stale journals from the per-point era can
   never alias a derived result. *)
let sim_key ~workload ~l1_size ~l2_size ~l1_assoc ~l2_assoc ~block ~policy ~seed ~n =
  Printf.sprintf "sim:%s:%d:%d:%d:%d:%d:%s:%Ld:%d" workload l1_size l2_size l1_assoc
    l2_assoc block (policy_key policy) seed n

let curve_key ~workload ~l1_size ~l1_assoc ~block ~seed ~n ~l2_sizes =
  let sizes_key = String.concat "," (Array.to_list (Array.map string_of_int l2_sizes)) in
  Printf.sprintf "curve2:%s:%d:%d:%d:%Ld:%d:%s" workload l1_size l1_assoc block seed n
    sizes_key

let l1_key ~workload ~l1_size ~l1_assoc ~block ~policy ~seed ~n =
  Printf.sprintf "l1:%s:%d:%d:%d:%s:%Ld:%d" workload l1_size l1_assoc block
    (policy_key policy) seed n

(* Workload lists are length-prefixed before joining so the combined
   key of ["a+b"] can never alias that of ["a"; "b"] — "+" inside a
   name is no longer a separator once each element carries its own
   length. *)
let combined_workloads_key workloads =
  String.concat "+"
    (List.map (fun w -> Printf.sprintf "%d:%s" (String.length w) w) workloads)

let warmup_fraction = Profile.warmup_fraction
let polled = Profile.polled

let simulate ?(l1_assoc = 4) ?(l2_assoc = 8) ?(block = 64) ?(policy = Replacement.Lru)
    ?(seed = Registry.default_seed) ~workload ~l1_size ~l2_size ~n () =
  let key = sim_key ~workload ~l1_size ~l2_size ~l1_assoc ~l2_assoc ~block ~policy ~seed ~n in
  Memo.find_or_compute point_cache key (fun () ->
      (* inside the memoised compute: an injected fault exercises the
         Pending-cleanup path (waiters retry, hit the same key-
         deterministic fault, and fail identically at any --jobs).
         The retry boundary sits inside the memo too, so a transient
         injection is recovered before any waiter sees it. *)
      Retry.run ~stage:"simulate" ~key (fun ~attempt ~last:_ ->
          Faultpoint.hit ~attempt ~point:"simulate" ~key ();
          let gen = Registry.build ~seed workload in
          let l1 = Cache.create ~size_bytes:l1_size ~assoc:l1_assoc ~block_bytes:block ~policy () in
          let l2 = Cache.create ~size_bytes:l2_size ~assoc:l2_assoc ~block_bytes:block ~policy () in
          let h = Hierarchy.create ~l1 ~l2 in
          let warm = int_of_float (warmup_fraction *. float_of_int n) in
          let feed =
            polled ~stage:"simulate" (fun a ->
                ignore (Hierarchy.access h a.Access.addr ~write:a.Access.write))
          in
          Gen.iter gen warm feed;
          Cache.reset_stats l1;
          Cache.reset_stats l2;
          Gen.iter gen (n - warm) feed;
          Nmcache_engine.Metrics.incr "cachesim.simulations";
          Stats.flush_to_metrics ~prefix:"cachesim.l1" (Cache.stats l1);
          Stats.flush_to_metrics ~prefix:"cachesim.l2" (Cache.stats l2);
          {
            l1_miss = Hierarchy.l1_miss_rate h;
            l2_local = Hierarchy.l2_local_miss_rate h;
            l2_global = Hierarchy.l2_global_miss_rate h;
          }))

module Stream_trace = Nmcache_cachesim.Stream_trace
module Trace = Nmcache_cachesim.Trace

(* The streamed twin of [simulate]: identical access sequence,
   identical warmup reset (statistics cleared exactly when the running
   access count reaches the warmup boundary), so rates are bitwise
   equal to [simulate]'s for a stream wrapping the same workload — at
   any chunk size.  Chunk boundaries double as checkpoint slots
   (Stream_trace.resumable_fold): the state is the hierarchy plus the
   access count, and the salt names every consumer-side input, so a
   SIGKILLed run resumes byte-identically.  Not memoised — the journal
   is the cross-process cache. *)
let simulate_stream ?(l1_assoc = 4) ?(l2_assoc = 8) ?(block = 64)
    ?(policy = Replacement.Lru) ?(warmup = true) ~stream ~l1_size ~l2_size () =
  let l1 =
    Cache.create ~size_bytes:l1_size ~assoc:l1_assoc ~block_bytes:block ~policy ()
  in
  let l2 =
    Cache.create ~size_bytes:l2_size ~assoc:l2_assoc ~block_bytes:block ~policy ()
  in
  let h = Hierarchy.create ~l1 ~l2 in
  let warm =
    if not warmup then 0
    else
      match Stream_trace.declared_length stream with
      | Some n -> int_of_float (warmup_fraction *. float_of_int n)
      | None -> 0
  in
  let salt =
    Printf.sprintf "simulate:%d:%d:%d:%d:%d:%s:%d" l1_size l2_size l1_assoc
      l2_assoc block (policy_key policy) warm
  in
  let h, (_ : int) =
    Stream_trace.resumable_fold ~salt stream ~init:(h, 0)
      ~f:(fun (h, processed) ~index:_ entries ->
        let p = ref processed in
        Array.iter
          (fun (e : Trace.entry) ->
            if !p = warm then begin
              Cache.reset_stats (Hierarchy.l1 h);
              Cache.reset_stats (Hierarchy.l2 h)
            end;
            ignore (Hierarchy.access h e.Trace.addr ~write:e.Trace.write);
            incr p)
          entries;
        (h, !p))
  in
  Nmcache_engine.Metrics.incr "cachesim.simulations";
  Nmcache_engine.Metrics.incr "stream.simulations";
  Stats.flush_to_metrics ~prefix:"cachesim.l1" (Cache.stats (Hierarchy.l1 h));
  Stats.flush_to_metrics ~prefix:"cachesim.l2" (Cache.stats (Hierarchy.l2 h));
  {
    l1_miss = Hierarchy.l1_miss_rate h;
    l2_local = Hierarchy.l2_local_miss_rate h;
    l2_global = Hierarchy.l2_global_miss_rate h;
  }

type l2_curve = {
  workload : string;
  l1_size : int;
  l1_miss_rate : float;
  l2_sizes : int array;
  l2_local_rates : float array;
}

(* Derive the whole curve from the memoised L1-filtered profile: the
   first query per (workload, L1 config) performs the one measured
   traversal; every capacity — and any later change of [l2_sizes] — is
   pure arithmetic on the profile's suffix CDF.  The L2s the paper
   studies are ≥ 8-way, so the fully-associative stack condition is the
   same excellent approximation the per-point era used. *)
let l2_curve ?(l1_assoc = 4) ?(block = 64) ?(seed = Registry.default_seed) ~workload
    ~l1_size ~l2_sizes ~n () =
  let p = Profile.l1_filtered ~l1_assoc ~block ~seed ~workload ~l1_size ~n () in
  let caps = Array.map (fun s -> max 1 (s / block)) l2_sizes in
  {
    workload;
    l1_size;
    l1_miss_rate = p.Profile.l1_miss_rate;
    l2_sizes = Array.copy l2_sizes;
    l2_local_rates = Profile.curve p ~capacities:caps;
  }

let avg_cache : l2_curve Memo.t = Memo.create ~name:"missrate.averaged" ()

let clear_cache () =
  Memo.clear point_cache;
  Memo.clear l1_cache;
  Memo.clear avg_cache;
  Profile.clear_cache ()

let averaged_l2_curve ?(l1_assoc = 4) ?(block = 64) ?(seed = Registry.default_seed)
    ~workloads ~l1_size ~l2_sizes ~n () =
  if workloads = [] then invalid_arg "Missrate.averaged_l2_curve: no workloads";
  let sizes_key = String.concat "," (Array.to_list (Array.map string_of_int l2_sizes)) in
  let key =
    Printf.sprintf "avg:%s:%d:%d:%d:%Ld:%d:%s" (combined_workloads_key workloads) l1_size
      l1_assoc block seed n sizes_key
  in
  Memo.find_or_compute avg_cache key (fun () ->
      (* one independent profile build per workload — the engine fans
         them out and returns curves in workload order; the slot key
         makes each curve individually checkpointable *)
      let curves =
        Sweep.map_list
          (Task.make ~name:"missrate.l2-curve"
             ~key:(fun workload ->
               curve_key ~workload ~l1_size ~l1_assoc ~block ~seed ~n ~l2_sizes)
             (fun workload -> l2_curve ~l1_assoc ~block ~seed ~workload ~l1_size ~l2_sizes ~n ()))
          workloads
      in
      let k = float_of_int (List.length curves) in
      let l1_miss_rate = List.fold_left (fun acc c -> acc +. c.l1_miss_rate) 0.0 curves /. k in
      let l2_local_rates =
        Array.init (Array.length l2_sizes) (fun i ->
            List.fold_left (fun acc c -> acc +. c.l2_local_rates.(i)) 0.0 curves /. k)
      in
      {
        workload = String.concat "+" workloads;
        l1_size;
        l1_miss_rate;
        l2_sizes = Array.copy l2_sizes;
        l2_local_rates;
      })

type grid = {
  g_workloads : string list;
  g_l1_sizes : int array;
  g_l2_sizes : int array;
  g_averaged : l2_curve array;
  g_per_workload : l2_curve array array;
}

let grid ?(l1_assoc = 4) ?(block = 64) ?(seed = Registry.default_seed) ~workloads
    ~l1_sizes ~l2_sizes ~n () =
  if workloads = [] then invalid_arg "Missrate.grid: no workloads";
  let wl = Array.of_list workloads in
  let pairs =
    Array.concat
      (Array.to_list
         (Array.map (fun l1_size -> Array.map (fun w -> (w, l1_size)) wl) l1_sizes))
  in
  (* exactly one measured traversal per (workload, L1 size): the whole
     workload × L1 plane fans out at once, and every L2 capacity is
     derived from the resulting profiles *)
  let curves =
    Sweep.map_array
      (Task.make ~name:"missrate.grid"
         ~key:(fun (workload, l1_size) ->
           curve_key ~workload ~l1_size ~l1_assoc ~block ~seed ~n ~l2_sizes)
         (fun (workload, l1_size) ->
           l2_curve ~l1_assoc ~block ~seed ~workload ~l1_size ~l2_sizes ~n ()))
      pairs
  in
  let w_count = Array.length wl in
  let g_per_workload =
    Array.init (Array.length l1_sizes) (fun i -> Array.sub curves (i * w_count) w_count)
  in
  (* the averaged curves reuse the memoised profiles built above, so
     this adds no traversals and agrees bit-for-bit with direct
     [averaged_l2_curve] calls *)
  let g_averaged =
    Array.map
      (fun l1_size -> averaged_l2_curve ~l1_assoc ~block ~seed ~workloads ~l1_size ~l2_sizes ~n ())
      l1_sizes
  in
  { g_workloads = workloads; g_l1_sizes = Array.copy l1_sizes;
    g_l2_sizes = Array.copy l2_sizes; g_averaged; g_per_workload }

let l1_sweep ?(l1_assoc = 4) ?(block = 64) ?(policy = Replacement.Lru)
    ?(seed = Registry.default_seed) ~workload ~l1_sizes ~n () =
  match policy with
  | Replacement.Lru ->
    (* derived path: one raw-trace profile serves every L1 size (the
       stack condition is exact fully-associatively; the binomial
       set-associative correction is oracle-checked to ≤ 0.03).  The
       single-slot sweep keeps the profile build checkpointable. *)
    let prof_key = Profile.key ~workload ~kind:Profile.Raw ~block ~seed ~n in
    let profiles =
      Sweep.map_array
        (Task.make ~name:"missrate.profile"
           ~key:(fun _ -> "l1d:" ^ prof_key)
           (fun () -> Profile.raw ~block ~seed ~workload ~n ()))
        [| () |]
    in
    let p = profiles.(0) in
    Array.map
      (fun l1_size ->
        Profile.setassoc_miss_rate p ~capacity_blocks:(max 1 (l1_size / block))
          ~assoc:l1_assoc)
      l1_sizes
  | _ ->
    (* stack distances model LRU only: other policies keep the direct
       per-size simulation *)
    let slot_key l1_size = l1_key ~workload ~l1_size ~l1_assoc ~block ~policy ~seed ~n in
    Sweep.map_array
      (Task.make ~name:"missrate.l1-sweep" ~key:slot_key (fun l1_size ->
           Memo.find_or_compute l1_cache (slot_key l1_size) (fun () ->
               let gen = Registry.build ~seed workload in
               let l1 =
                 Cache.create ~size_bytes:l1_size ~assoc:l1_assoc ~block_bytes:block ~policy ()
               in
               let feed =
                 polled ~stage:"simulate" (fun a ->
                     ignore (Cache.access l1 a.Access.addr ~write:a.Access.write))
               in
               let warm = int_of_float (warmup_fraction *. float_of_int n) in
               Gen.iter gen warm feed;
               Cache.reset_stats l1;
               Gen.iter gen (n - warm) feed;
               Nmcache_engine.Metrics.incr "cachesim.simulations";
               Stats.flush_to_metrics ~prefix:"cachesim.l1" (Cache.stats l1);
               Stats.miss_rate (Cache.stats l1))))
      l1_sizes
