(** Miss-rate tables: the interface between architectural simulation and
    the energy/optimisation layers.

    Two paths are provided:
    - {!simulate}: exact two-level set-associative simulation of one
      (L1 size, L2 size) pair;
    - everything else is {e derived} from the stack-distance profiles in
      {!Profile}: one measured trace traversal per (workload, L1 config)
      yields the miss rate for every capacity at once — exact for
      fully-associative LRU (excellent for the ≥ 8-way L2s studied
      here), binomial-corrected for set-associative L1 sweeps
      (oracle-checked to ≤ 0.03 absolute miss rate).

    Results are memoised per (workload, parameters) within the process,
    so experiments and benches can re-query freely; changing the query
    capacities never re-walks a trace. *)

type point = {
  l1_miss : float;     (** local L1 miss rate *)
  l2_local : float;    (** L2 misses / L2 accesses *)
  l2_global : float;   (** L2 misses / L1 accesses *)
}

val simulate :
  ?l1_assoc:int ->
  ?l2_assoc:int ->
  ?block:int ->
  ?policy:Nmcache_cachesim.Replacement.t ->
  ?seed:int64 ->
  workload:string ->
  l1_size:int ->
  l2_size:int ->
  n:int ->
  unit ->
  point
(** Exact simulation of [n] accesses (defaults: L1 4-way, L2 8-way,
    64 B blocks, LRU).  Raises [Invalid_argument] for unknown workloads
    or invalid cache shapes. *)

val simulate_stream :
  ?l1_assoc:int ->
  ?l2_assoc:int ->
  ?block:int ->
  ?policy:Nmcache_cachesim.Replacement.t ->
  ?warmup:bool ->
  stream:Nmcache_cachesim.Stream_trace.t ->
  l1_size:int ->
  l2_size:int ->
  unit ->
  point
(** {!simulate} over a chunked stream in O(chunk) memory: the access
    sequence and the warmup reset (at [warmup_fraction] of the
    stream's declared length — disable with [~warmup:false] for
    recorded traces) are identical, so for a stream wrapping a registry
    workload the rates are bitwise equal to {!simulate}'s at any chunk
    size.  Chunk boundaries are checkpoint slots when a journal is
    armed and the stream is keyed, so a killed run resumes
    byte-identically.  Not memoised. *)

type l2_curve = {
  workload : string;
  l1_size : int;
  l1_miss_rate : float;
  l2_sizes : int array;
  l2_local_rates : float array;
}

val l2_curve :
  ?l1_assoc:int ->
  ?block:int ->
  ?seed:int64 ->
  workload:string ->
  l1_size:int ->
  l2_sizes:int array ->
  n:int ->
  unit ->
  l2_curve
(** Single-pass L2 miss-ratio curve over the given sizes. *)

val averaged_l2_curve :
  ?l1_assoc:int ->
  ?block:int ->
  ?seed:int64 ->
  workloads:string list ->
  l1_size:int ->
  l2_sizes:int array ->
  n:int ->
  unit ->
  l2_curve
(** Arithmetic mean of per-workload curves — the paper's "results from
    various benchmark suites are collected".  The [workload] field is
    the concatenation of the names.  Raises [Invalid_argument] on an
    empty workload list. *)

type grid = {
  g_workloads : string list;
  g_l1_sizes : int array;
  g_l2_sizes : int array;
  g_averaged : l2_curve array;            (** averaged curve per L1 size, in order *)
  g_per_workload : l2_curve array array;  (** [g_per_workload.(i).(j)]: L1 size [i], workload [j] *)
}

val grid :
  ?l1_assoc:int ->
  ?block:int ->
  ?seed:int64 ->
  workloads:string list ->
  l1_sizes:int array ->
  l2_sizes:int array ->
  n:int ->
  unit ->
  grid
(** The whole L1×L2 design-space plane from exactly one measured trace
    traversal per (workload, L1 size): profile builds fan out across
    the plane at once, and every L2 capacity is derived from the
    profiles' suffix CDFs.  The averaged curves agree bit-for-bit with
    {!averaged_l2_curve} on the same inputs.  Raises
    [Invalid_argument] on an empty workload list. *)

val l1_sweep :
  ?l1_assoc:int ->
  ?block:int ->
  ?policy:Nmcache_cachesim.Replacement.t ->
  ?seed:int64 ->
  workload:string ->
  l1_sizes:int array ->
  n:int ->
  unit ->
  float array
(** Local L1 miss rate per size (L1 miss rates don't depend on L2).
    For LRU the sweep is derived from one raw-trace profile with the
    {!Profile.setassoc_miss_rate} correction; other policies simulate
    each size directly (stack distances model LRU only). *)

val combined_workloads_key : string list -> string
(** Collision-free rendering of a workload list for memo/checkpoint
    keys: each name is length-prefixed before joining, so
    [["a+b"]] and [["a"; "b"]] can never alias. *)

val clear_cache : unit -> unit
(** Drop all memoised results, including profiles (tests use this to
    bound memory). *)
