(* Workload-backed streams: the generator registry's entry point into
   the chunked streaming engine.  A wrapped workload is restartable
   (every fold re-seeds a fresh generator), so the stream both replays
   deterministically and carries a checkpoint key. *)

module Stream_trace = Nmcache_cachesim.Stream_trace
module Trace = Nmcache_cachesim.Trace

let of_workload ?(chunk_size = Stream_trace.default_chunk_size)
    ?(seed = Registry.default_seed) ~workload ~n () =
  (* unknown workloads fail here, not at the first chunk *)
  if Registry.find workload = None then
    invalid_arg
      (Printf.sprintf "Stream.of_workload: unknown workload %s" workload);
  if n < 0 then invalid_arg "Stream.of_workload: n < 0";
  (* the checkpoint identity names every input the entries — and the
     chunk boundaries — depend on *)
  let key = Printf.sprintf "stream:%s:%Ld:%d:%d" workload seed n chunk_size in
  Stream_trace.of_producer ~chunk_size ~key ~name:workload ~n (fun () ->
      let gen = Registry.build ~seed workload in
      fun () ->
        let a = Gen.next gen in
        { Trace.addr = a.Access.addr; write = a.Access.write })
