module Cache = Nmcache_cachesim.Cache
module Mattson = Nmcache_cachesim.Mattson
module Replacement = Nmcache_cachesim.Replacement
module Stats = Nmcache_cachesim.Stats
module Memo = Nmcache_engine.Memo
module Retry = Nmcache_engine.Retry
module Deadline = Nmcache_engine.Deadline
module Faultpoint = Nmcache_engine.Faultpoint
module Span = Nmcache_engine.Span
module Metrics = Nmcache_engine.Metrics
module Json = Nmcache_engine.Json

type kind =
  | Raw
  | L1_filtered of { l1_size : int; l1_assoc : int }

type t = {
  workload : string;
  kind : kind;
  block : int;
  seed : int64;
  n : int;
  accesses : int;
  cold : int;
  dists : int array;
  counts : int array;
  suffix : int array;
  l1_miss_rate : float;
}

(* A warmup prefix of half the trace fills caches and the LRU stack
   before counters start, so profiles reflect steady state rather than
   cold-start — the same convention as direct simulation. *)
let warmup_fraction = 0.5

(* Cooperative deadline seam for the access loops: one poll every 4096
   accesses bounds a wedged traversal without showing up in the
   profile. *)
let polled ~stage feed =
  let count = ref 0 in
  fun a ->
    incr count;
    if !count land 4095 = 0 then Deadline.poll ~stage;
    feed a

(* drain the per-map probe-length counts accumulated over a traversal
   into one registry histogram: bucket index is the probe length
   (slots past the first; last bucket = 16+) *)
let flush_probe_hist counts =
  Array.iteri
    (fun len count ->
      Metrics.observe_n "cachesim.intmap.probe_len" (float_of_int len) ~count)
    counts

let cache : t Memo.t = Memo.create ~name:"workload.profiles" ()
let clear_cache () = Memo.clear cache

let key ~workload ~kind ~block ~seed ~n =
  match kind with
  | Raw -> Printf.sprintf "prof:raw:%s:%d:%Ld:%d" workload block seed n
  | L1_filtered { l1_size; l1_assoc } ->
    Printf.sprintf "prof:l1:%s:%d:%d:%d:%Ld:%d" workload l1_size l1_assoc block seed n

(* One measured traversal of the trace: build the stack-distance CDF
   (raw trace, or the L1 miss stream when [kind] filters).  This is the
   only place in the derivation layer that touches the generator. *)
let build ~workload ~kind ~block ~seed ~n =
  let key = key ~workload ~kind ~block ~seed ~n in
  Memo.find_or_compute cache key (fun () ->
      (* the retry boundary sits inside the memo, so a transient
         injected fault is recovered before any waiter sees it; the
         fault point stays key-deterministic at any --jobs *)
      Retry.run ~stage:"simulate" ~key (fun ~attempt ~last:_ ->
          Faultpoint.hit ~attempt ~point:"simulate" ~key ();
          Span.with_span
            ~attrs:
              [
                ("workload", Json.String workload);
                ( "kind",
                  Json.String
                    (match kind with Raw -> "raw" | L1_filtered _ -> "l1-filtered")
                );
                ("n", Json.Int n);
              ]
            "profile:build"
            (fun () ->
          let gen = Registry.build ~seed workload in
          let profiler = Mattson.create ~block_bytes:block () in
          let l1_opt, feed_raw =
            match kind with
            | Raw -> (None, fun (a : Access.t) -> Mattson.access profiler a.Access.addr)
            | L1_filtered { l1_size; l1_assoc } ->
              let l1 =
                Cache.create ~size_bytes:l1_size ~assoc:l1_assoc ~block_bytes:block
                  ~policy:Replacement.Lru ()
              in
              ( Some l1,
                fun (a : Access.t) ->
                  let o = Cache.access l1 a.Access.addr ~write:a.Access.write in
                  if not o.Cache.hit then Mattson.access profiler a.Access.addr )
          in
          let feed = polled ~stage:"simulate" feed_raw in
          let warm = int_of_float (warmup_fraction *. float_of_int n) in
          Mattson.set_measuring profiler false;
          Gen.iter gen warm feed;
          (match l1_opt with Some l1 -> Cache.reset_stats l1 | None -> ());
          Mattson.set_measuring profiler true;
          Gen.iter gen (n - warm) feed;
          Metrics.incr "cachesim.mattson_curves";
          flush_probe_hist (Mattson.drain_probe_hist profiler);
          let l1_miss_rate =
            match l1_opt with
            | Some l1 ->
              flush_probe_hist (Cache.drain_probe_hist l1);
              Stats.flush_to_metrics ~prefix:"cachesim.l1" (Cache.stats l1);
              Stats.miss_rate (Cache.stats l1)
            | None -> Float.nan
          in
          let dists, suffix = Mattson.cdf profiler in
          let k = Array.length dists in
          let counts =
            Array.init k (fun i ->
                if i + 1 < k then suffix.(i) - suffix.(i + 1) else suffix.(i))
          in
          {
            workload;
            kind;
            block;
            seed;
            n;
            accesses = Mattson.accesses profiler;
            cold = Mattson.cold_misses profiler;
            dists;
            counts;
            suffix;
            l1_miss_rate;
          })))

let raw ?(block = 64) ?(seed = Registry.default_seed) ~workload ~n () =
  build ~workload ~kind:Raw ~block ~seed ~n

let l1_filtered ?(l1_assoc = 4) ?(block = 64) ?(seed = Registry.default_seed) ~workload
    ~l1_size ~n () =
  build ~workload ~kind:(L1_filtered { l1_size; l1_assoc }) ~block ~seed ~n

module Stream_trace = Nmcache_cachesim.Stream_trace
module Trace = Nmcache_cachesim.Trace

(* The streamed twin of [build]: same profiler, same L1 filter, same
   warmup discipline — measuring off until [warmup_fraction] of the
   stream's declared length has been fed, then reset the filter's
   statistics and measure the rest — so a stream wrapping a registry
   workload yields a profile equal to [build]'s field for field.  Not
   memoised (a stream is consumed, not named); deadline polling rides
   the stream's own chunk boundaries. *)
let of_stream ?(block = 64) ?(seed = Registry.default_seed) ~kind stream =
  Span.with_span
    ~attrs:
      [
        ("stream", Json.String (Stream_trace.name stream));
        ( "kind",
          Json.String
            (match kind with Raw -> "raw" | L1_filtered _ -> "l1-filtered") );
      ]
    "profile:stream"
    (fun () ->
      let profiler = Mattson.create ~block_bytes:block () in
      let l1_opt, feed =
        match kind with
        | Raw ->
          (None, fun (e : Trace.entry) -> Mattson.access profiler e.Trace.addr)
        | L1_filtered { l1_size; l1_assoc } ->
          let l1 =
            Cache.create ~size_bytes:l1_size ~assoc:l1_assoc ~block_bytes:block
              ~policy:Replacement.Lru ()
          in
          ( Some l1,
            fun (e : Trace.entry) ->
              let o = Cache.access l1 e.Trace.addr ~write:e.Trace.write in
              if not o.Cache.hit then Mattson.access profiler e.Trace.addr )
      in
      let warm =
        match Stream_trace.declared_length stream with
        | Some n -> int_of_float (warmup_fraction *. float_of_int n)
        | None -> 0
      in
      Mattson.set_measuring profiler false;
      let fed = ref 0 in
      let n_fed =
        Stream_trace.iter stream (fun e ->
            if !fed = warm then begin
              (match l1_opt with Some l1 -> Cache.reset_stats l1 | None -> ());
              Mattson.set_measuring profiler true
            end;
            incr fed;
            feed e)
      in
      Metrics.incr "cachesim.mattson_curves";
      flush_probe_hist (Mattson.drain_probe_hist profiler);
      let l1_miss_rate =
        match l1_opt with
        | Some l1 ->
          flush_probe_hist (Cache.drain_probe_hist l1);
          Stats.flush_to_metrics ~prefix:"cachesim.l1" (Cache.stats l1);
          Stats.miss_rate (Cache.stats l1)
        | None -> Float.nan
      in
      let dists, suffix = Mattson.cdf profiler in
      let k = Array.length dists in
      let counts =
        Array.init k (fun i ->
            if i + 1 < k then suffix.(i) - suffix.(i + 1) else suffix.(i))
      in
      {
        workload = Stream_trace.name stream;
        kind;
        block;
        seed;
        n = n_fed;
        accesses = Mattson.accesses profiler;
        cold = Mattson.cold_misses profiler;
        dists;
        counts;
        suffix;
        l1_miss_rate;
      })

(* --- derivations: no trace traversal below this line ------------------- *)

let misses_at t ~capacity_blocks =
  if capacity_blocks <= 0 then invalid_arg "Profile.misses_at: capacity <= 0";
  t.cold + Mattson.suffix_at ~dists:t.dists ~suffix:t.suffix capacity_blocks

let miss_rate_at t ~capacity_blocks =
  (* derivation-vs-simulation accounting: every miss rate read off the
     profile counts here, every trace traversal under
     cachesim.mattson_curves / cachesim.simulations *)
  Metrics.incr "profile.derived_points";
  if t.accesses = 0 then 0.0
  else float_of_int (misses_at t ~capacity_blocks) /. float_of_int t.accesses

let curve t ~capacities = Array.map (fun c -> miss_rate_at t ~capacity_blocks:c) capacities

(* Set-associative correction (Smith / Hill-style associativity model):
   the d distinct blocks between consecutive uses of a line scatter
   uniformly over S sets, so the line survives in an A-way set iff
   fewer than A of them land in its own set —
   P(miss | d) = P(Binomial(d, 1/S) >= A).  Exact when S = 1 (the
   fully-associative stack condition d >= capacity); the binomial tail
   is evaluated with a stable log-space start and a term recurrence. *)
let setassoc_miss_rate t ~capacity_blocks ~assoc =
  if capacity_blocks <= 0 then invalid_arg "Profile.setassoc_miss_rate: capacity <= 0";
  if assoc < 1 then invalid_arg "Profile.setassoc_miss_rate: assoc < 1";
  let sets = capacity_blocks / assoc in
  if sets <= 1 then miss_rate_at t ~capacity_blocks
  else if t.accesses = 0 then 0.0
  else begin
    Metrics.incr "profile.derived_points";
    let p = 1.0 /. float_of_int sets in
    let q = 1.0 -. p in
    let lq = log q in
    let ratio = p /. q in
    let warm = ref 0.0 in
    for i = 0 to Array.length t.dists - 1 do
      let d = t.dists.(i) in
      (* fewer than [assoc] intervening blocks can never fill the set *)
      if d >= assoc then begin
        let pmf = ref (exp (float_of_int d *. lq)) in
        let below = ref 0.0 in
        for k = 0 to assoc - 1 do
          below := !below +. !pmf;
          pmf := !pmf *. (float_of_int (d - k) /. float_of_int (k + 1)) *. ratio
        done;
        let pmiss = Float.max 0.0 (1.0 -. !below) in
        warm := !warm +. (float_of_int t.counts.(i) *. pmiss)
      end
    done;
    (float_of_int t.cold +. !warm) /. float_of_int t.accesses
  end
