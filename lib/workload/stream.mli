(** Registry workloads as chunked streams.

    The bridge between the generator library and
    {!Nmcache_cachesim.Stream_trace}: a registered workload becomes a
    restartable producer stream with a checkpoint key, so streamed
    simulations of it are resumable and — by the stream engine's
    contract — byte-identical to materialising the same [n] accesses
    with {!Gen.take}. *)

val of_workload :
  ?chunk_size:int ->
  ?seed:int64 ->
  workload:string ->
  n:int ->
  unit ->
  Nmcache_cachesim.Stream_trace.t
(** [of_workload ~workload ~n ()]: the first [n] accesses of the
    registered workload (defaults: registry seed,
    {!Nmcache_cachesim.Stream_trace.default_chunk_size}).  The stream's
    checkpoint key names workload, seed, [n] and chunk size.  Raises
    [Invalid_argument] on an unknown workload or [n < 0]. *)
