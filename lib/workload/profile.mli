(** First-class stack-distance profiles: the "profile once, derive
    everywhere" layer.

    A profile is one measured traversal of a workload trace — either
    the raw access stream or the miss stream of a fixed L1 filter —
    reduced to its reuse-distance suffix CDF.  Every miss-rate query
    against the profile is then pure array arithmetic: exact for
    fully-associative LRU at any capacity, and corrected for
    set-associativity with a binomial model (oracle-checked to ≤ 0.03
    absolute miss rate by the [oracle.profile] verify group).

    Profiles are memoised process-wide by
    (workload, kind, block, seed, n) and are plain data, so keyed sweep
    tasks that build them are checkpoint-journalable like fitted
    models. *)

type kind =
  | Raw                                            (** profile the raw access stream *)
  | L1_filtered of { l1_size : int; l1_assoc : int }
      (** profile the miss stream of an LRU L1 of this shape *)

type t = {
  workload : string;
  kind : kind;
  block : int;           (** block size in bytes *)
  seed : int64;
  n : int;               (** trace length the profile was built from *)
  accesses : int;        (** measured accesses at the profiled stream *)
  cold : int;            (** measured first-touch accesses *)
  dists : int array;     (** ascending distinct reuse distances *)
  counts : int array;    (** warm accesses at exactly [dists.(i)] *)
  suffix : int array;    (** warm accesses at distance ≥ [dists.(i)] *)
  l1_miss_rate : float;  (** measured filter miss rate; [nan] for [Raw] *)
}

val key : workload:string -> kind:kind -> block:int -> seed:int64 -> n:int -> string
(** The memo key; names every input the profile depends on, so it also
    serves as a checkpoint slot key. *)

val raw : ?block:int -> ?seed:int64 -> workload:string -> n:int -> unit -> t
(** Profile the raw access stream (defaults: 64 B blocks, registry
    seed).  Memoised; the first call per key performs the traversal
    (counted in the [cachesim.mattson_curves] metric). *)

val l1_filtered :
  ?l1_assoc:int -> ?block:int -> ?seed:int64 -> workload:string -> l1_size:int ->
  n:int -> unit -> t
(** Profile the miss stream behind an LRU L1 filter (default 4-way). *)

val of_stream :
  ?block:int -> ?seed:int64 -> kind:kind -> Nmcache_cachesim.Stream_trace.t -> t
(** Build a profile from a chunked stream in O(chunk + footprint)
    memory — the streamed twin of the materialised builders: same
    profiler, same filter, same warmup discipline (the unmeasured
    prefix is [warmup_fraction] of the stream's declared length; 0 for
    a pipe), so profiling a stream that wraps a registry workload
    yields a result equal field for field to {!raw}/{!l1_filtered} at
    any chunk size.  Not memoised; [seed] is recorded as metadata
    only. *)

val misses_at : t -> capacity_blocks:int -> int
(** Exact fully-associative LRU misses at this capacity: cold + warm
    accesses with distance ≥ capacity.  O(log |dists|).  Raises
    [Invalid_argument] if [capacity_blocks <= 0]. *)

val miss_rate_at : t -> capacity_blocks:int -> float
(** [misses_at] over measured accesses (0 if the profile is empty). *)

val curve : t -> capacities:int array -> float array
(** Vectorised {!miss_rate_at} — a whole miss-ratio curve without
    touching the trace. *)

val setassoc_miss_rate : t -> capacity_blocks:int -> assoc:int -> float
(** Expected miss rate of a set-associative LRU cache of this capacity:
    the d intervening blocks of each measured reuse scatter uniformly
    over S = capacity/assoc sets, so
    P(miss | d) = P(Binomial(d, 1/S) ≥ assoc).  Falls back to the exact
    stack condition when S ≤ 1 (fully associative), making the result
    exact there and monotone non-increasing in capacity everywhere. *)

val warmup_fraction : float
(** Fraction of the trace used as an unmeasured warmup prefix (0.5),
    shared with direct simulation so derived and simulated rates see
    the same steady-state window. *)

val polled : stage:string -> (Access.t -> unit) -> Access.t -> unit
(** Wrap a feed with a {!Nmcache_engine.Deadline.poll} every 4096
    accesses — the cooperative cancellation seam shared by every trace
    loop in this library. *)

val clear_cache : unit -> unit
(** Drop all memoised profiles (tests use this to bound memory). *)
