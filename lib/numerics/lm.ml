type result = {
  params : float array;
  residual : float;
  iterations : int;
  converged : bool;
}

exception Non_finite of string

let check_finite ~what arr =
  Array.iter
    (fun v ->
      if not (Float.is_finite v) then
        raise (Non_finite (Printf.sprintf "Lm.fit: non-finite %s" what)))
    arr

let residuals ~f ~xs ~ys theta =
  Array.init (Array.length xs) (fun i -> f theta xs.(i) -. ys.(i))

let norm2 r =
  let acc = ref 0.0 in
  Array.iter (fun v -> acc := !acc +. (v *. v)) r;
  Float.sqrt !acc

let residual_of ~f ~xs ~ys theta = norm2 (residuals ~f ~xs ~ys theta)

(* Forward-difference Jacobian of the residual vector wrt theta. *)
let jacobian ~f ~xs theta =
  let n = Array.length xs and p = Array.length theta in
  let j = Matrix.create ~rows:n ~cols:p in
  let base = Array.init n (fun i -> f theta xs.(i)) in
  for k = 0 to p - 1 do
    let h = Float.max 1e-8 (1e-6 *. Float.abs theta.(k)) in
    let theta' = Array.copy theta in
    theta'.(k) <- theta'.(k) +. h;
    for i = 0 to n - 1 do
      Matrix.set j i k ((f theta' xs.(i) -. base.(i)) /. h)
    done
  done;
  j

let fit ?(max_iter = 200) ?(tol = 1e-10) ?(lambda0 = 1e-3) ?(check = fun () -> ()) ~f ~xs
    ~ys ~init () =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Lm.fit: no samples";
  if Array.length ys <> n then invalid_arg "Lm.fit: xs/ys length mismatch";
  let p = Array.length init in
  if p = 0 then invalid_arg "Lm.fit: empty parameter vector";
  (* NaN/Inf guards: a poisoned sample makes every residual, Jacobian
     and step non-finite — fail loudly up front instead of spinning the
     damping loop on garbage *)
  Array.iter (check_finite ~what:"sample input (xs)") xs;
  check_finite ~what:"sample value (ys)" ys;
  check_finite ~what:"initial parameter" init;
  let theta = ref (Array.copy init) in
  let lambda = ref lambda0 in
  let cost = ref (norm2 (residuals ~f ~xs ~ys !theta)) in
  let iterations = ref 0 in
  let converged = ref false in
  (try
     while (not !converged) && !iterations < max_iter do
       (* cooperative cancellation seam: the engine's deadline poll
          rides in here without this library depending on it *)
       check ();
       incr iterations;
       let r = residuals ~f ~xs ~ys !theta in
       let j = jacobian ~f ~xs !theta in
       let jt = Matrix.transpose j in
       let jtj = Matrix.mul jt j in
       let jtr = Matrix.mul_vec jt r in
       let neg_jtr = Array.map (fun v -> -.v) jtr in
       (* Try increasing damping until the step reduces the cost. *)
       let rec attempt tries =
         if tries > 30 then raise Exit;
         let step =
           try Some (Linsolve.solve (Matrix.add_diagonal jtj !lambda) neg_jtr)
           with Linsolve.Singular -> None
         in
         match step with
         | None ->
           lambda := !lambda *. 10.0;
           attempt (tries + 1)
         | Some dx ->
           let cand = Array.mapi (fun i v -> v +. dx.(i)) !theta in
           let c = norm2 (residuals ~f ~xs ~ys cand) in
           if Float.is_nan c || c >= !cost then begin
             lambda := !lambda *. 10.0;
             attempt (tries + 1)
           end
           else begin
             let step_norm = norm2 dx in
             let improvement = (!cost -. c) /. Float.max !cost 1e-300 in
             theta := cand;
             cost := c;
             lambda := Float.max (!lambda /. 10.0) 1e-12;
             if improvement < tol || step_norm < tol then converged := true
           end
       in
       attempt 0
     done
   with Exit ->
     (* 30 damping escalations without an improving step: the solver is
        stalled at a local minimum it cannot leave — accepted, like a
        tolerance-triggered stop *)
     converged := true);
  { params = !theta; residual = !cost; iterations = !iterations; converged = !converged }

let finite_result r =
  Float.is_finite r.residual && Array.for_all Float.is_finite r.params

let fit_robust ?max_iter ?tol ?lambda0 ?check ?(restarts = 4) ?(seed = 0x5EEDL) ~f ~xs
    ~ys ~init () =
  let run init = fit ?max_iter ?tol ?lambda0 ?check ~f ~xs ~ys ~init () in
  let r0 = run init in
  if r0.converged && finite_result r0 then r0
  else begin
    (* seeded multi-start: perturb the initial guess and keep the best
       finite residual.  The draws depend only on (seed, restart
       index), so retries are exactly reproducible across runs and
       --jobs settings. *)
    let rng = Rng.create ~seed in
    let best = ref (if finite_result r0 then Some r0 else None) in
    let better (r : result) =
      match !best with
      | Some b when b.residual <= r.residual -> false
      | _ -> true
    in
    let converged_already () =
      match !best with Some b -> b.converged | None -> false
    in
    (try
       for _ = 1 to restarts do
         if converged_already () then raise Exit;
         let init' =
           Array.map
             (fun v ->
               let scale = 1.0 +. Rng.float_range rng ~lo:(-0.5) ~hi:0.5 in
               let offset = Rng.float_range rng ~lo:(-1e-3) ~hi:1e-3 in
               (v *. scale) +. offset)
             init
         in
         match run init' with
         | r -> if finite_result r && better r then best := Some r
         | exception Linsolve.Singular -> ()
       done
     with Exit -> ());
    match !best with
    | Some r -> r
    | None -> raise (Non_finite "Lm.fit_robust: every start produced non-finite results")
  end
