(** Levenberg–Marquardt nonlinear least squares.

    Minimises Σᵢ (f(xᵢ; θ) − yᵢ)² over parameters θ, with Jacobians
    approximated by forward differences.  Sized for the compact-model
    fitting in this project: a handful of parameters, hundreds of
    samples. *)

type result = {
  params : float array;     (** fitted parameter vector *)
  residual : float;         (** final ‖r‖₂ *)
  iterations : int;         (** LM iterations consumed *)
  converged : bool;         (** true when the relative step or residual
                                improvement dropped below tolerance *)
}

exception Non_finite of string
(** Raised when samples or initial parameters contain NaN/Inf, or when
    {!fit_robust} cannot produce a finite result from any start.  The
    fit layer maps this to a typed [Non_finite] fault. *)

val fit :
  ?max_iter:int ->
  ?tol:float ->
  ?lambda0:float ->
  ?check:(unit -> unit) ->
  f:(float array -> float array -> float) ->
  xs:float array array ->
  ys:float array ->
  init:float array ->
  unit ->
  result
(** [fit ~f ~xs ~ys ~init ()] fits the model [f theta x] to the samples
    [(xs.(i), ys.(i))] starting from [init].

    @param max_iter iteration cap (default 200).
    @param tol convergence tolerance on relative residual improvement and
           step size (default 1e-10).
    @param lambda0 initial damping (default 1e-3).
    @param check called at the top of every iteration — a cooperative
           cancellation hook (the engine's deadline poll); it may raise
           to abort the fit, and defaults to a nop.  This keeps the
           numerics layer free of engine dependencies.

    Raises [Invalid_argument] if [xs] and [ys] have different lengths or
    are empty, and {!Non_finite} if any sample or initial parameter is
    NaN/Inf. *)

val fit_robust :
  ?max_iter:int ->
  ?tol:float ->
  ?lambda0:float ->
  ?check:(unit -> unit) ->
  ?restarts:int ->
  ?seed:int64 ->
  f:(float array -> float array -> float) ->
  xs:float array array ->
  ys:float array ->
  init:float array ->
  unit ->
  result
(** {!fit} hardened with seeded multi-start: if the first fit converges
    to a finite result it is returned unchanged (so healthy pipelines
    are byte-for-byte unaffected); otherwise up to [restarts] (default
    4) retries run from deterministically perturbed copies of [init]
    (each coordinate scaled by U(0.5, 1.5) plus a small offset, drawn
    from a generator seeded with [seed]) and the best finite-residual
    result wins, stopping early at the first converged one.  A retry
    that hits [Linsolve.Singular] counts as a failed start.  Raises
    {!Non_finite} when no start produces a finite result. *)

val residual_of : f:(float array -> float array -> float) ->
  xs:float array array -> ys:float array -> float array -> float
(** [residual_of ~f ~xs ~ys theta] is ‖residual‖₂ for the given
    parameters — the quantity {!fit} minimises. *)
