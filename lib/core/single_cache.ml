module Units = Nmcache_physics.Units
module Component = Nmcache_geometry.Component
module Fitted_cache = Nmcache_fit.Fitted_cache
module Scheme = Nmcache_opt.Scheme
module Grid = Nmcache_opt.Grid
module Task = Nmcache_engine.Task
module Sweep = Nmcache_engine.Sweep

let fitted_l1 ctx = Context.fitted ctx (Context.l1_config ctx ())

let uniform_point fitted knob =
  let est = Fitted_cache.eval fitted (Component.uniform knob) in
  (Units.to_ps est.Fitted_cache.access_time, Units.to_mw est.Fitted_cache.leak_w)

let figure1_series ctx =
  let fitted = fitted_l1 ctx in
  let grid = ctx.Context.grid in
  let vth_sweep tox =
    Array.to_list
      (Array.map (fun vth -> uniform_point fitted (Component.knob ~vth ~tox)) grid.Grid.vths)
  in
  let tox_sweep vth =
    Array.to_list
      (Array.map (fun tox -> uniform_point fitted (Component.knob ~vth ~tox)) grid.Grid.toxs)
  in
  let sort = List.sort (fun (a, _) (b, _) -> Float.compare a b) in
  [
    ("Tox=10A", sort (vth_sweep (Units.angstrom 10.0)));
    ("Tox=14A", sort (vth_sweep (Units.angstrom 14.0)));
    ("Vth=200mV", sort (tox_sweep 0.2));
    ("Vth=400mV", sort (tox_sweep 0.4));
  ]

let span points =
  let xs = List.map fst points and ys = List.map snd points in
  let min_max l = (List.fold_left Float.min Float.infinity l,
                   List.fold_left Float.max Float.neg_infinity l) in
  (min_max xs, min_max ys)

let figure1 ctx =
  let series = figure1_series ctx in
  let chart =
    Report.chart ~title:"Figure 1: Fixed Vth vs Fixed Tox (16KB cache)"
      ~x_label:"access time (ps)" ~y_label:"leakage power (mW)"
      (List.map (fun (label, points) -> { Report.label; points }) series)
  in
  (* sensitivity summary: the paper's reading of the figure *)
  let rows =
    List.map
      (fun (label, points) ->
        let (x0, x1), (y0, y1) = span points in
        [
          label;
          Printf.sprintf "%.0f..%.0f" x0 x1;
          Printf.sprintf "%.0f" (x1 -. x0);
          Printf.sprintf "%.2f..%.2f" y0 y1;
          Printf.sprintf "%.1fx" (y1 /. Float.max y0 1e-9);
        ])
      series
  in
  let table =
    Report.table ~title:"Figure 1 sensitivity summary"
      ~columns:[ "curve"; "delay range (ps)"; "delay span (ps)"; "leakage (mW)"; "leak ratio" ]
      ~rows
  in
  [ chart; table ]

type scheme_row = {
  budget : float;
  results : (Scheme.t * Scheme.result option) list;
}

let default_budgets fitted ~grid =
  let fast = Scheme.fastest_access_time fitted ~grid in
  let slow = Scheme.slowest_access_time fitted ~grid in
  let lo = fast *. 1.02 and hi = slow *. 0.98 in
  Array.init 9 (fun i -> lo +. ((hi -. lo) *. float_of_int i /. 8.0))

let scheme_rows ctx ?budgets () =
  let fitted = fitted_l1 ctx in
  let grid = ctx.Context.grid in
  let budgets =
    match budgets with Some b -> b | None -> default_budgets fitted ~grid
  in
  (* every (budget, scheme) search is independent; fan budgets out and
     keep rows in budget order *)
  Array.to_list
    (Sweep.map_array
       (Task.make ~name:"single_cache.scheme-row" (fun budget ->
            {
              budget;
              results =
                List.map
                  (fun scheme ->
                    (scheme, Scheme.minimize_leakage fitted ~grid ~scheme ~delay_budget:budget))
                  Scheme.all;
            }))
       budgets)

let array_is_conservative (a : Component.assignment) =
  let arr = a.Component.array in
  List.for_all
    (fun kind ->
      let k = Component.get a kind in
      arr.Component.vth >= k.Component.vth -. 1e-12
      && arr.Component.tox >= k.Component.tox -. 1e-16)
    [ Component.Decoder; Component.Addr_drivers; Component.Data_drivers ]

let scheme_table ctx =
  let rows = scheme_rows ctx () in
  let cell = function
    | None -> "infeasible"
    | Some (r : Scheme.result) -> Printf.sprintf "%.3f" (Units.to_mw r.Scheme.leak_w)
  in
  let find s row = List.assoc s row.results in
  let body =
    List.map
      (fun row ->
        let i = find Scheme.Independent row in
        let ii = find Scheme.Split row in
        let iii = find Scheme.Uniform row in
        let ratio =
          match (i, ii) with
          | Some a, Some b -> Printf.sprintf "%.2f" (b.Scheme.leak_w /. a.Scheme.leak_w)
          | _ -> "-"
        in
        let conservative =
          match (i, ii) with
          | Some a, Some b ->
            if
              array_is_conservative a.Scheme.assignment
              && array_is_conservative b.Scheme.assignment
            then "yes"
            else "no"
          | _ -> "-"
        in
        [
          Printf.sprintf "%.0f" (Units.to_ps row.budget);
          cell i;
          cell ii;
          cell iii;
          ratio;
          conservative;
        ])
      rows
  in
  let table =
    Report.table
      ~title:"Scheme I/II/III minimum leakage vs delay constraint (16KB cache)"
      ~columns:
        [ "budget (ps)"; "I (mW)"; "II (mW)"; "III (mW)"; "II/I"; "array conservative" ]
      ~rows:body
  in
  let note =
    Report.note
      "Paper (sec.4): III worst, I best, II close behind I; arrays always get high \
       Vth / thick Tox with fast peripherals."
  in
  [ table; note ]
