(** The [ppcache serve] protocol: NDJSON design-space queries answered
    from a persistent model store behind a per-request fault boundary.

    One request per line, one response per line, schema version
    {!serve_schema_version}.  Requests are JSON objects:

    {v
    {"id": ..., "op": "optimize" | "miss_curve" | "amat" | "health", ...}
    v}

    - [id] (any JSON value, echoed verbatim in the response; [null]
      when absent or the line is unparseable);
    - [tag] (optional string): the {!Nmcache_engine.Faultpoint} key for
      the [serve.request] injection point — chaos harnesses poison
      requests by tag, deterministically, whatever [--jobs] is.
      Defaults to the rendered [id].

    Operations:

    - [optimize]: [scheme] ("I"/"II"/"III", default "I"), [size_kb]
      (default: the context L1 size), [assoc], [block_bytes],
      [output_bits], [delay_budget_ps] (required, > 0).  Runs the
      paper's constrained leakage minimisation on the fitted model of
      that cache and returns the winning (Vth, Tox) assignment, its
      leakage and access time — or [feasible: false] when even the
      fastest assignment misses the budget.
    - [miss_curve]: [workload] (required), [l1_kb], [l2_kb] (required
      non-empty integer list), [n], [seed], [assoc], [block_bytes].
      Returns the L1 miss rate and the local L2 miss ratio at every
      requested capacity, derived from one stack-distance profile.
    - [amat]: [t_l1_ps], [t_l2_ps], [t_mem_ps], [m1], [m2] — the
      closed-form two-level AMAT.  Never cached (cheaper than a store
      lookup).
    - [health]: uptime, pid, store occupancy, in-flight count, request
      counters and the breaker table.  Responses are intentionally
      {e not} deterministic (uptime) — byte-identity gates exclude
      them.

    Success responses are
    [{"serve_schema_version":1,"id":...,"result":{...}}]; a degraded
    answer (breaker open, served from the nearest cached optimum)
    additionally carries ["degraded":true] and ["degraded_from"].
    Errors are [{"serve_schema_version":1,"id":...,"error":{"kind":...,
    "stage":...,"detail":...}}] where [kind] is a {!Nmcache_engine.Fault.kind}
    name or one of the serve-level kinds [bad_request] (unparseable or
    invalid request), [overloaded] (admission control: more than
    [max_points] curve points, [n] beyond [max_n], or an overlong
    line) and [circuit_open] (breaker open with nothing cached to
    degrade to).  Error details are redacted: a [crashed] fault keeps
    only the exception constructor, never raw exception text that
    could carry local paths.

    Caching: fitted models (namespace ["model"]), miss-rate curves
    (["curve"]) and optimisation results (["optimize"]) persist in the
    {!Nmcache_engine.Store} across runs, keyed by canonical request
    parameters plus {!Context.fingerprint} — a store written under one
    context is never served into another.  The [id]/[tag] fields are
    {e not} part of the key, so replays and renamed requests hit.

    Determinism: responses never contain timings, store hit/miss
    markers or clocks; breaker updates and nearest-model index growth
    happen in the settle phase the serve loop runs in request order.
    The same request stream therefore produces byte-identical
    responses at any [--jobs], from a warm or a cold store, before or
    after a kill/restart. *)

val serve_schema_version : int

type t

val create :
  ?max_points:int ->
  ?max_n:int ->
  ?breaker:Nmcache_engine.Breaker.t ->
  ?store:Nmcache_engine.Store.t ->
  ctx:Context.t ->
  queue:int ->
  jobs:int ->
  unit ->
  t
(** [max_points] (default 64) bounds the [l2_kb] list of one
    [miss_curve] request; [max_n] (default 100_000_000) bounds its
    trace length — both reject with [overloaded] before any work
    happens.  [breaker] defaults to a fresh breaker (threshold 3,
    cooldown 8).  When [store] is given, the nearest-optimum index is
    seeded from its ["optimize"] namespace, so degraded answers
    survive restarts. *)

val handler : t -> Nmcache_engine.Server.handler
(** The per-line handler for {!Nmcache_engine.Server.serve}.  Total:
    every failure becomes a structured error response. *)

val handle_line : t -> string -> string * (unit -> unit)
(** [handler] uncurried for tests and the bench replay loop. *)

val crash_response : line:string -> Nmcache_engine.Fault.t -> string
(** Response for a handler that raised anyway (the serve loop's outer
    fault boundary) — redacted like every other error. *)

val overlong_response : unit -> string
(** Response for a request line over
    {!Nmcache_engine.Server.max_line_bytes} ([overloaded] /
    [serve.admission]). *)

val shed_response : unit -> string
(** Response for a request or connection refused by load shedding —
    the socket server at its connection cap or global queue bound
    ([overloaded] / [serve.admission]).  Deterministic: no counts,
    no timestamps. *)

val redact : Nmcache_engine.Fault.t -> Nmcache_engine.Fault.t
(** [Crashed] details are reduced to the exception constructor token
    (everything before the first '(', space, quote or '/'): typed
    fault details are deterministic by construction, but a raw
    [Printexc.to_string] can embed local filesystem paths, which must
    never reach a response.  Other kinds pass through. *)

val breaker : t -> Nmcache_engine.Breaker.t
(** The service's breaker (tests inspect and reset it). *)

val requests_ok : t -> int
val requests_error : t -> int
val requests_degraded : t -> int
(** Settle-phase request counters (also surfaced by [health]). *)
