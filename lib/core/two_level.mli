(** Section 5 experiments: two-level cache leakage optimisation.

    All three studies hold an AMAT target fixed (taken from the default
    L1 = 16 KB / L2 = 1 MB system at the reference knob) and ask which
    organisation + knob assignment minimises leakage while meeting it:

    - {!l2_single_pair} (T2): one (Vth, Tox) pair for the whole L2 —
      the paper finds bigger L2s leak less, up to a turnover;
    - {!l2_two_pair} (T3): separate cell/peripheral pairs — the paper
      finds aggressive peripherals beat growing the array, so smaller
      L2s win;
    - {!l1_sweep} (T4): L1 sizing under a fixed L2 — small L1s win
      because L1 local miss rates are low and flat. *)

type l2_row = {
  l2_size : int;
  m2 : float;                     (** local L2 miss rate at this size *)
  t_l2_budget : float option;     (** L2 hit-time budget implied by the AMAT target *)
  result : Nmcache_opt.Scheme.result option;  (** optimal L2 assignment *)
  l2_leak : float option;         (** [W] *)
  total_leak : float option;      (** L2 + (reference) L1 leakage [W] *)
}

type l2_sweep = {
  target_amat : float;
  m1 : float;
  t_l1 : float;
  l1_leak : float;
  rows : l2_row list;
}

val m2_of_curve : Nmcache_workload.Missrate.l2_curve -> int -> float
(** Local L2 miss rate at an exact simulated size.  Raises
    [Invalid_argument] naming the requested size, the workload and the
    simulated sizes when [size] is not one of the curve's [l2_sizes],
    so a misaligned sweep is diagnosable from the message alone. *)

val l2_sweep :
  Context.t -> scheme:Nmcache_opt.Scheme.t -> ?amat_slack:float -> unit -> l2_sweep
(** [amat_slack] scales the baseline AMAT target (default 1.08 — the
    constraint sits 5% above the reference system's AMAT, keeping small
    organisations in play as in the paper's iso-AMAT comparisons). *)

val l2_single_pair : Context.t -> Report.artefact list
val l2_two_pair : Context.t -> Report.artefact list

val best_l2_size : l2_sweep -> int option
(** Size with the smallest total leakage among feasible rows. *)

type l1_row = {
  l1_size : int;
  m1 : float;
  t_l1_budget : float option;
  l1_result : Nmcache_opt.Scheme.result option;
  l1_leak : float option;
  l1_total_leak : float option;   (** L1 + (reference) L2 leakage [W] *)
}

type l1_sweep = {
  l1_target_amat : float;
  l1_rows : l1_row list;
}

val l1_sweep_rows : Context.t -> ?amat_slack:float -> unit -> l1_sweep
val l1_sweep : Context.t -> Report.artefact list
val best_l1_size : l1_sweep -> int option
