type t = {
  id : string;
  title : string;
  paper_ref : string;
  run : Context.t -> Report.artefact list;
}

let paper =
  [
    {
      id = "fig1";
      title = "Fixed Vth vs fixed Tox trade-off curves (16KB cache)";
      paper_ref = "Figure 1";
      run = Single_cache.figure1;
    };
    {
      id = "schemes";
      title = "Scheme I/II/III minimum leakage under delay constraints";
      paper_ref = "Section 4 (in-text, T1)";
      run = Single_cache.scheme_table;
    };
    {
      id = "l2sweep";
      title = "L2 sizing with a single (Vth,Tox) pair";
      paper_ref = "Section 5 (in-text, T2)";
      run = Two_level.l2_single_pair;
    };
    {
      id = "l2sweep2";
      title = "L2 sizing with per-component pairs";
      paper_ref = "Section 5 (in-text, T3)";
      run = Two_level.l2_two_pair;
    };
    {
      id = "l1sweep";
      title = "L1 sizing under a fixed L2";
      paper_ref = "Section 5 (in-text, T4)";
      run = Two_level.l1_sweep;
    };
    {
      id = "fig2";
      title = "(Tox, Vth) tuple problem — energy vs AMAT frontiers";
      paper_ref = "Figure 2";
      run = Tuple_study.figure2;
    };
  ]

let extensions =
  [
    {
      id = "ablate-knobs";
      title = "Single-knob ablation (Vth-only vs Tox-only)";
      paper_ref = "extension X1";
      run = Ablations.knob_ablation;
    };
    {
      id = "ablate-temp";
      title = "Temperature sensitivity of the optimum";
      paper_ref = "extension X2";
      run = Ablations.temperature_sensitivity;
    };
    {
      id = "ablate-policy";
      title = "Replacement-policy sensitivity of the miss-rate tables";
      paper_ref = "extension X3";
      run = Ablations.policy_ablation;
    };
    {
      id = "fig2-workloads";
      title = "Per-workload tuple-problem cross-sections";
      paper_ref = "extension X4";
      run = Ablations.per_workload_tuple;
    };
    {
      id = "fitcheck";
      title = "Compact-model fit audit";
      paper_ref = "extension X5";
      run = Ablations.fit_audit;
    };
    {
      id = "variation";
      title = "Within-die Vth variation and mean-leakage inflation";
      paper_ref = "extension X6";
      run = Extensions.variation_study;
    };
    {
      id = "ablate-vdd";
      title = "Supply-voltage sensitivity";
      paper_ref = "extension X7";
      run = Extensions.vdd_sensitivity;
    };
    {
      id = "drowsy";
      title = "Drowsy standby vs process knobs";
      paper_ref = "extension X8";
      run = Extensions.drowsy_comparison;
    };
    {
      id = "anneal";
      title = "Simulated-annealing cross-check of the exact DP";
      paper_ref = "extension X9";
      run = Extensions.anneal_crosscheck;
    };
    {
      id = "geometry";
      title = "L1 associativity and block-size sweeps";
      paper_ref = "extension X10";
      run = Extensions.geometry_sweeps;
    };
    {
      id = "prefetch";
      title = "Next-line prefetching vs L2 sizing";
      paper_ref = "extension X11";
      run = Extensions.prefetch_study;
    };
    {
      id = "summary";
      title = "Paper-claim verdicts, computed live";
      paper_ref = "all claims";
      run = Summary.run;
    };
  ]

let all = paper @ extensions
let find id = List.find_opt (fun e -> e.id = id) all
let ids = List.map (fun e -> e.id) all

(* a named span per experiment so trace viewers and the bench report
   get per-experiment wall time without re-timing; the fault point is
   keyed by experiment id, so chaos harnesses can fail one experiment
   by name while its siblings complete *)
let kernel ctx (e : t) =
  Nmcache_engine.Faultpoint.hit ~point:"experiment" ~key:e.id ();
  let artefacts =
    Nmcache_engine.Span.with_span
      ~attrs:[ ("id", Nmcache_engine.Json.String e.id) ]
      ("experiment:" ^ e.id)
      (fun () -> e.run ctx)
  in
  if Nmcache_engine.Events.enabled () then
    Nmcache_engine.Events.emit (Nmcache_engine.Events.Experiment_done { id = e.id });
  artefacts

(* the slot key joins the experiment id with the context fingerprint:
   a checkpoint journal is only ever replayed into the run that would
   recompute the identical artefacts *)
let task ctx =
  Nmcache_engine.Task.make ~name:"experiments.run"
    ~key:(fun e -> e.id ^ "|" ^ Context.fingerprint ctx)
    (fun e -> kernel ctx e)

let run_many ctx exps =
  List.map2
    (fun e artefacts -> (e, artefacts))
    exps
    (Nmcache_engine.Sweep.map_list (task ctx) exps)

let run_many_result ctx exps =
  List.map2
    (fun e status -> (e, status))
    exps
    (Nmcache_engine.Sweep.map_list_result (task ctx) exps)
