module Units = Nmcache_physics.Units
module Tech = Nmcache_device.Tech
module Variation = Nmcache_device.Variation
module Component = Nmcache_geometry.Component
module Config = Nmcache_geometry.Config
module Cache_model = Nmcache_geometry.Cache_model
module Fitted_cache = Nmcache_fit.Fitted_cache
module Sram_cell = Nmcache_circuit.Sram_cell
module Scheme = Nmcache_opt.Scheme
module Anneal = Nmcache_opt.Anneal
module Drowsy = Nmcache_energy.Drowsy
module Missrate = Nmcache_workload.Missrate
module Profile = Nmcache_workload.Profile
module Rng = Nmcache_numerics.Rng
module Cache = Nmcache_cachesim.Cache
module Prefetch = Nmcache_cachesim.Prefetch
module Replacement = Nmcache_cachesim.Replacement
module Gen = Nmcache_workload.Gen
module Waccess = Nmcache_workload.Access

(* --- X6: within-die variation --------------------------------------- *)

let variation_study ctx =
  let tech = ctx.Context.tech in
  let rng = Rng.create ~seed:77L in
  let rows =
    List.map
      (fun (label, w_factor, tox_a) ->
        let tox = Units.angstrom tox_a in
        let w = w_factor *. Tech.l_drawn tech ~tox in
        let sigma = Variation.sigma_vth tech ~w ~tox in
        let analytic =
          Variation.mean_inflation ~sigma ~n_swing:tech.Tech.n_swing
            ~temp_k:tech.Tech.temp_k
        in
        let mc =
          Variation.mc_inflation ~rng ~sigma ~n_swing:tech.Tech.n_swing
            ~temp_k:tech.Tech.temp_k ~samples:200_000
        in
        let corner =
          Variation.sigma_percentile_leakage ~sigma ~n_swing:tech.Tech.n_swing
            ~temp_k:tech.Tech.temp_k ~percentile:99.9
        in
        [
          label;
          Printf.sprintf "%.1f" (1e3 *. sigma);
          Printf.sprintf "%.3f" analytic;
          Printf.sprintf "%.3f" mc;
          Printf.sprintf "%.1fx" corner;
        ])
      [
        ("SRAM access (1.5L, 14A)", Sram_cell.access_ratio, 14.0);
        ("SRAM pull-down (2.2L, 14A)", Sram_cell.pulldown_ratio, 14.0);
        ("peripheral inverter (2L, 11A)", 2.0, 11.0);
        ("wide driver (16L, 11A)", 16.0, 11.0);
      ]
  in
  (* array-level effect at the leakage-optimal assignment *)
  let fitted = Context.fitted ctx (Context.l1_config ctx ()) in
  let knob = Component.knob ~vth:0.45 ~tox:(Units.angstrom 14.0) in
  let nominal = Fitted_cache.leak_of fitted Component.Array_sense knob in
  let cell = Sram_cell.make tech ~vth:0.45 ~tox:(Units.angstrom 14.0) in
  let sigma_cell = Variation.sigma_vth tech ~w:cell.Sram_cell.w_pulldown ~tox:(Units.angstrom 14.0) in
  let inflation =
    Variation.mean_inflation ~sigma:sigma_cell ~n_swing:tech.Tech.n_swing
      ~temp_k:tech.Tech.temp_k
  in
  [
    Report.table
      ~title:"X6: Vth variation (Pelgrom) — mean-leakage inflation per device class"
      ~columns:
        [ "device"; "sigma(Vth) (mV)"; "E-inflation (analytic)"; "E-inflation (MC)"; "99.9% device" ]
      ~rows;
    Report.note
      (Printf.sprintf
         "16KB array at its quiet knob (0.45V, 14A): nominal %.3f mW becomes ~%.3f mW \
          (x%.3f) once cell-level variation is averaged in; exp-in-Vth leakage makes \
          variation strictly inflationary."
         (Units.to_mw nominal)
         (Units.to_mw (nominal *. inflation))
         inflation);
  ]

(* --- X7: supply scaling ----------------------------------------------- *)

let vdd_sensitivity ctx =
  let budget = ref None in
  let rows =
    List.map
      (fun vdd ->
        let tech = Tech.with_vdd ctx.Context.tech ~vdd in
        let ctx_v = { ctx with Context.tech } in
        let fitted = Context.fitted ctx_v (Context.l1_config ctx_v ()) in
        let grid = ctx.Context.grid in
        let fast = Scheme.fastest_access_time fitted ~grid in
        let b =
          match !budget with
          | Some b -> b
          | None ->
            let b = 1.35 *. fast in
            budget := Some b;
            b
        in
        let ref_est =
          Fitted_cache.eval fitted (Component.uniform (Context.reference_knob ctx))
        in
        match Scheme.minimize_leakage fitted ~grid ~scheme:Scheme.Split ~delay_budget:b with
        | None ->
          [ Printf.sprintf "%.2f" vdd; Printf.sprintf "%.0f" (Units.to_ps fast);
            "infeasible"; "-" ]
        | Some r ->
          [
            Printf.sprintf "%.2f" vdd;
            Printf.sprintf "%.0f" (Units.to_ps fast);
            Printf.sprintf "%.3f" (Units.to_mw r.Scheme.leak_w);
            Printf.sprintf "%.2f" (Units.to_pj ref_est.Fitted_cache.dyn_energy);
          ])
      [ 0.9; 1.0; 1.1 ]
  in
  [
    Report.table
      ~title:"X7: supply sensitivity — 16KB cache, scheme II at a fixed 1.0V-derived budget"
      ~columns:[ "Vdd (V)"; "fastest access (ps)"; "min leakage (mW)"; "dyn energy (pJ)" ]
      ~rows;
    Report.note
      "Lower Vdd shrinks overdrive (slower, tighter feasibility) but cuts leakage \
       power (I*V) and dynamic energy (CV^2); the knob assignments shift accordingly.";
  ]

(* --- X8: drowsy standby vs process knobs -------------------------------- *)

let drowsy_comparison ctx =
  let fitted = Context.fitted ctx (Context.l2_config ctx ()) in
  let aggressive = Component.knob ~vth:0.25 ~tox:(Units.angstrom 11.0) in
  let quiet = Component.knob ~vth:0.5 ~tox:(Units.angstrom 14.0) in
  let eval_at array periph =
    let assignment = Component.split ~cell:array ~periphery:periph in
    let est = Fitted_cache.eval fitted assignment in
    let array_leak = Fitted_cache.leak_of fitted Component.Array_sense array in
    (est, array_leak)
  in
  let policy = Drowsy.default_policy in
  (* awake fraction / drowsy-hit estimate for the 1MB L2 under the
     headline workloads' L2 access stream *)
  let awake, drowsy_hit =
    Drowsy.simulate_awake_fraction ~window:4000 ~l2_size:ctx.Context.l2_size ~block:64
      ~accesses_per_window:2000 ~unique_block_fraction:0.35
  in
  let row label array periph use_drowsy =
    let est, array_leak = eval_at array periph in
    let periph_leak = est.Fitted_cache.leak_w -. array_leak in
    if use_drowsy then begin
      let e =
        Drowsy.apply policy ~array_leak_w:array_leak ~periph_leak_w:periph_leak
          ~access_time:est.Fitted_cache.access_time ~awake_fraction:awake
          ~drowsy_hit_rate:drowsy_hit
      in
      [
        label;
        Printf.sprintf "%.2f" (Units.to_mw e.Drowsy.leak_w);
        Printf.sprintf "%.0f" (Units.to_ps e.Drowsy.access_time);
        Printf.sprintf "%.0f%%" (100.0 *. e.Drowsy.leak_saving);
      ]
    end
    else
      [
        label;
        Printf.sprintf "%.2f" (Units.to_mw est.Fitted_cache.leak_w);
        Printf.sprintf "%.0f" (Units.to_ps est.Fitted_cache.access_time);
        "-";
      ]
  in
  [
    Report.note
      (Printf.sprintf "drowsy window: awake fraction %.0f%%, drowsy-hit rate %.1f%%"
         (100.0 *. awake) (100.0 *. drowsy_hit));
    Report.table ~title:"X8: drowsy standby vs process knobs (1MB L2)"
      ~columns:[ "design"; "leakage (mW)"; "access (ps)"; "drowsy saving" ]
      ~rows:
        [
          row "fast knobs, no drowsy" aggressive aggressive false;
          row "fast knobs + drowsy" aggressive aggressive true;
          row "paper knobs (scheme II), no drowsy" quiet aggressive false;
          row "paper knobs + drowsy" quiet aggressive true;
        ];
    Report.note
      "Process knobs and drowsy standby compose: the knob assignment removes the \
       always-on leakage floor cheaply at design time, drowsy mode attacks what \
       remains at run time for a small wake-up cost.";
  ]

(* --- X9: annealing cross-check ------------------------------------------- *)

let anneal_crosscheck ctx =
  let fitted = Context.fitted ctx (Context.l1_config ctx ()) in
  let grid = ctx.Context.grid in
  let fast = Scheme.fastest_access_time fitted ~grid in
  let slow = Scheme.slowest_access_time fitted ~grid in
  let rows =
    List.filter_map
      (fun frac ->
        let budget = fast +. (frac *. (slow -. fast)) in
        match
          Scheme.minimize_leakage fitted ~grid ~scheme:Scheme.Independent
            ~delay_budget:budget
        with
        | None -> None
        | Some dp ->
          let sa = Anneal.minimize_leakage fitted ~grid ~delay_budget:budget () in
          let gap =
            if sa.Anneal.feasible then (sa.Anneal.leak_w /. dp.Scheme.leak_w) -. 1.0
            else Float.nan
          in
          Some
            [
              Printf.sprintf "%.0f" (Units.to_ps budget);
              Printf.sprintf "%.4f" (Units.to_mw dp.Scheme.leak_w);
              (if sa.Anneal.feasible then Printf.sprintf "%.4f" (Units.to_mw sa.Anneal.leak_w)
               else "infeasible");
              (if Float.is_nan gap then "-" else Printf.sprintf "%.2f%%" (100.0 *. gap));
            ])
      [ 0.05; 0.15; 0.3; 0.5; 0.75 ]
  in
  [
    Report.table ~title:"X9: simulated annealing vs exact DP (scheme I, 16KB cache)"
      ~columns:[ "budget (ps)"; "DP optimum (mW)"; "SA result (mW)"; "SA gap" ]
      ~rows;
    Report.note
      "The stochastic optimiser matches the exact DP to within ~2% over most of the \
       budget range (the gap widens only at the tightest budget, where the feasible \
       region collapses) -- evidence both that the DP is correct and that SA is a \
       usable fallback for objectives the DP cannot decompose.";
  ]

(* --- X10: associativity / block-size sweeps --------------------------------- *)

let geometry_sweeps ctx =
  let workload = "spec2000-mix" in
  let n = ctx.Context.n_sim in
  let ref_knob = Context.reference_knob ctx in
  (* one raw-trace profile serves every associativity row: the ways
     only enter through the binomial set-associative correction *)
  let assoc_profile = Profile.raw ~seed:ctx.Context.seed ~workload ~n () in
  let assoc_rows =
    List.map
      (fun assoc ->
        let cfg = Config.make ~size_bytes:ctx.Context.l1_size ~assoc ~block_bytes:64 () in
        let model = Cache_model.make ctx.Context.tech cfg in
        let r = Cache_model.evaluate model (Component.uniform ref_knob) in
        let miss =
          Profile.setassoc_miss_rate assoc_profile
            ~capacity_blocks:(max 1 (ctx.Context.l1_size / 64)) ~assoc
        in
        [
          string_of_int assoc;
          Report.fmt_pct miss;
          Printf.sprintf "%.0f" (Units.to_ps r.Cache_model.access_time);
          Printf.sprintf "%.3f" (Units.to_mw r.Cache_model.leak_w);
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  (* block size changes the profiled stream itself: one traversal per
     block size, still independent of the L1 capacity being queried *)
  let block_rows =
    List.map
      (fun block ->
        let cfg = Config.make ~size_bytes:ctx.Context.l1_size ~assoc:4 ~block_bytes:block () in
        let model = Cache_model.make ctx.Context.tech cfg in
        let r = Cache_model.evaluate model (Component.uniform ref_knob) in
        let prof = Profile.raw ~block ~seed:ctx.Context.seed ~workload ~n () in
        let miss =
          Profile.setassoc_miss_rate prof
            ~capacity_blocks:(max 1 (ctx.Context.l1_size / block)) ~assoc:4
        in
        [
          string_of_int block;
          Report.fmt_pct miss;
          Printf.sprintf "%.0f" (Units.to_ps r.Cache_model.access_time);
          Printf.sprintf "%.3f" (Units.to_mw r.Cache_model.leak_w);
        ])
      [ 32; 64; 128 ]
  in
  [
    Report.table ~title:"X10a: L1 associativity sweep (16KB, 64B blocks, reference knobs)"
      ~columns:[ "ways"; "miss rate"; "access (ps)"; "leakage (mW)" ]
      ~rows:assoc_rows;
    Report.table ~title:"X10b: L1 block-size sweep (16KB, 4-way, reference knobs)"
      ~columns:[ "block (B)"; "miss rate"; "access (ps)"; "leakage (mW)" ]
      ~rows:block_rows;
    Report.note
      "Associativity beyond 4 ways buys little miss rate for this mix while the \
       geometry model charges wider tag compares; larger blocks exploit the spatial \
       runs in the generators.";
  ]

(* --- X11: prefetching vs L2 sizing ------------------------------------------ *)

let prefetch_study ctx =
  let workload = "spec2000-mix" in
  let n = ctx.Context.n_sim / 2 in
  let run ~l2_size ~degree =
    let l1 =
      Cache.create ~size_bytes:ctx.Context.l1_size ~assoc:ctx.Context.l1_assoc
        ~block_bytes:ctx.Context.block_bytes ~policy:Replacement.Lru ()
    in
    let l2 =
      Cache.create ~size_bytes:l2_size ~assoc:ctx.Context.l2_assoc
        ~block_bytes:ctx.Context.block_bytes ~policy:Replacement.Lru ()
    in
    let p = Prefetch.create ~degree ~l1 ~l2 () in
    let gen = Nmcache_workload.Registry.build ~seed:ctx.Context.seed workload in
    (* warm half, measure half; count demand L2 behaviour only *)
    let warm = n / 2 in
    Gen.iter gen warm (fun a -> ignore (Prefetch.access p a.Waccess.addr ~write:a.Waccess.write));
    let demand_misses = ref 0 and demand_accesses = ref 0 in
    Gen.iter gen (n - warm) (fun a ->
        let o = Prefetch.access p a.Waccess.addr ~write:a.Waccess.write in
        if not o.Prefetch.l1_hit then begin
          incr demand_accesses;
          if not o.Prefetch.l2_hit then incr demand_misses
        end);
    let m2 =
      if !demand_accesses = 0 then 0.0
      else float_of_int !demand_misses /. float_of_int !demand_accesses
    in
    (m2, Prefetch.accuracy p)
  in
  let sizes = [| 256 * 1024; 1024 * 1024; 4 * 1024 * 1024 |] in
  let rows =
    Array.to_list
      (Array.map
         (fun l2_size ->
           let m0, _ = run ~l2_size ~degree:0 in
           let m1, acc1 = run ~l2_size ~degree:1 in
           let m2, _ = run ~l2_size ~degree:2 in
           [
             (if l2_size >= 1 lsl 20 then Printf.sprintf "%dMB" (l2_size lsr 20)
              else Printf.sprintf "%dKB" (l2_size lsr 10));
             Report.fmt_pct m0;
             Report.fmt_pct m1;
             Report.fmt_pct m2;
             Report.fmt_pct acc1;
           ])
         sizes)
  in
  [
    Report.table
      ~title:
        (Printf.sprintf "X11: next-line prefetching vs L2 size (%s, demand L2 local miss)"
           workload)
      ~columns:[ "L2 size"; "degree 0"; "degree 1"; "degree 2"; "accuracy (d=1)" ]
      ~rows;
    Report.note
      "Next-line prefetching trims the streaming component of the L2 miss rate, \
       helping most where capacity is plentiful; at small sizes higher degrees start \
       to pollute (degree 2 worse than 1 at 256KB). The miss-rate curve shifts down \
       but keeps its shape, so the leakage-turnover sizing conclusion is \
       prefetch-robust.";
  ]
