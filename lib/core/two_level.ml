module Units = Nmcache_physics.Units
module Component = Nmcache_geometry.Component
module Fitted_cache = Nmcache_fit.Fitted_cache
module Scheme = Nmcache_opt.Scheme
module Amat = Nmcache_energy.Amat
module Main_memory = Nmcache_energy.Main_memory
module Missrate = Nmcache_workload.Missrate
module Task = Nmcache_engine.Task
module Sweep = Nmcache_engine.Sweep

let reference_estimate ctx config =
  let fitted = Context.fitted ctx config in
  let est = Fitted_cache.eval fitted (Component.uniform (Context.reference_knob ctx)) in
  (fitted, est)

let miss_curve ctx ~l1_size =
  Missrate.averaged_l2_curve ~seed:ctx.Context.seed ~workloads:ctx.Context.workloads
    ~l1_size ~l2_sizes:Context.l2_sizes ~n:ctx.Context.n_sim ()

let m2_of_curve (curve : Missrate.l2_curve) size =
  let sizes = curve.Missrate.l2_sizes in
  let rec find i =
    if i >= Array.length sizes then
      invalid_arg
        (Printf.sprintf
           "Two_level.m2_of_curve: L2 size %d B was not simulated for %S (available: %s) \
            — align the sweep sizes with the curve's l2_sizes"
           size curve.Missrate.workload
           (String.concat ", " (Array.to_list (Array.map string_of_int sizes))))
    else if sizes.(i) = size then curve.Missrate.l2_local_rates.(i)
    else find (i + 1)
  in
  find 0

(* ------------------------------------------------------------------ *)
(* L2 sweeps (T2 single pair, T3 two pairs)                            *)

type l2_row = {
  l2_size : int;
  m2 : float;
  t_l2_budget : float option;
  result : Scheme.result option;
  l2_leak : float option;
  total_leak : float option;
}

type l2_sweep = {
  target_amat : float;
  m1 : float;
  t_l1 : float;
  l1_leak : float;
  rows : l2_row list;
}

let l2_sweep ctx ~scheme ?(amat_slack = 1.08) () =
  let curve = miss_curve ctx ~l1_size:ctx.Context.l1_size in
  let m1 = curve.Missrate.l1_miss_rate in
  let _, l1_est = reference_estimate ctx (Context.l1_config ctx ()) in
  let t_l1 = l1_est.Fitted_cache.access_time in
  let l1_leak = l1_est.Fitted_cache.leak_w in
  let t_mem = ctx.Context.mem.Main_memory.t_access in
  (* baseline: default L2 at the reference knob *)
  let _, l2_ref = reference_estimate ctx (Context.l2_config ctx ()) in
  let m2_ref = m2_of_curve curve ctx.Context.l2_size in
  let target_amat =
    amat_slack
    *. Amat.two_level ~t_l1 ~t_l2:l2_ref.Fitted_cache.access_time ~t_mem ~m1 ~m2:m2_ref
  in
  (* each size is an independent characterise+optimise kernel; the
     engine fans them out and keeps rows in size order *)
  let rows =
    Array.to_list
      (Sweep.map_array
         (Task.make ~name:"two_level.l2-row" (fun l2_size ->
              let m2 = m2_of_curve curve l2_size in
              let budget = Amat.required_t_l2 ~amat:target_amat ~t_l1 ~t_mem ~m1 ~m2 in
              match budget with
              | None ->
                { l2_size; m2; t_l2_budget = None; result = None; l2_leak = None; total_leak = None }
              | Some t_budget ->
                let fitted = Context.fitted ctx (Context.l2_config ctx ~size:l2_size ()) in
                let result =
                  Scheme.minimize_leakage fitted ~grid:ctx.Context.grid ~scheme
                    ~delay_budget:t_budget
                in
                let l2_leak = Option.map (fun (r : Scheme.result) -> r.Scheme.leak_w) result in
                {
                  l2_size;
                  m2;
                  t_l2_budget = Some t_budget;
                  result;
                  l2_leak;
                  total_leak = Option.map (fun l -> l +. l1_leak) l2_leak;
                }))
         Context.l2_sizes)
  in
  { target_amat; m1; t_l1; l1_leak; rows }

let best_l2_size sweep =
  List.fold_left
    (fun acc row ->
      match (row.total_leak, acc) with
      | None, _ -> acc
      | Some l, Some (_, best) when best <= l -> acc
      | Some l, _ -> Some (row.l2_size, l))
    None sweep.rows
  |> Option.map fst

let size_label bytes =
  if bytes >= 1 lsl 20 then Printf.sprintf "%dMB" (bytes lsr 20)
  else Printf.sprintf "%dKB" (bytes lsr 10)

let l2_table title sweep =
  let rows =
    List.map
      (fun row ->
        let budget =
          match row.t_l2_budget with
          | None -> "-"
          | Some b -> Printf.sprintf "%.0f" (Units.to_ps b)
        in
        let leak = function
          | None -> "infeasible"
          | Some l -> Printf.sprintf "%.3f" (Units.to_mw l)
        in
        let knobs =
          match row.result with
          | None -> "-"
          | Some r ->
            Format.asprintf "%a / %a" Component.pp_knob r.Scheme.assignment.Component.array
              Component.pp_knob r.Scheme.assignment.Component.decoder
        in
        [
          size_label row.l2_size;
          Report.fmt_pct row.m2;
          budget;
          leak row.l2_leak;
          leak row.total_leak;
          knobs;
        ])
      sweep.rows
  in
  Report.table ~title
    ~columns:
      [
        "L2 size";
        "m2 (local)";
        "T_L2 budget (ps)";
        "L2 leak (mW)";
        "L1+L2 leak (mW)";
        "array / periph knobs";
      ]
    ~rows

let l2_single_pair ctx =
  let sweep = l2_sweep ctx ~scheme:Scheme.Uniform () in
  let best = Option.map size_label (best_l2_size sweep) in
  [
    Report.note
      (Printf.sprintf
         "AMAT target %.0f ps (m1 = %s, T_L1 = %.0f ps, reference L2 = %s)"
         (Units.to_ps sweep.target_amat) (Report.fmt_pct sweep.m1)
         (Units.to_ps sweep.t_l1) (size_label ctx.Context.l2_size));
    l2_table "L2 sizing, single (Vth,Tox) pair per L2 (paper: bigger L2 leaks less, then turnover)" sweep;
    Report.note
      (Printf.sprintf "minimum total leakage at L2 = %s"
         (Option.value best ~default:"(none feasible)"));
  ]

(* T3 contrasts both schemes at the same (slightly relaxed) target: the
   paper's finding is that per-component pairs shift the optimal L2 to a
   smaller size with less total leakage. *)
let l2_two_pair ctx =
  let slack = 1.08 in
  let sweep3 = l2_sweep ctx ~scheme:Scheme.Uniform ~amat_slack:slack () in
  let sweep2 = l2_sweep ctx ~scheme:Scheme.Split ~amat_slack:slack () in
  let leak_cell = function
    | None -> "infeasible"
    | Some l -> Printf.sprintf "%.3f" (Units.to_mw l)
  in
  let rows =
    List.map2
      (fun (r3 : l2_row) (r2 : l2_row) ->
        let knobs =
          match r2.result with
          | None -> "-"
          | Some r ->
            Format.asprintf "%a / %a" Component.pp_knob r.Scheme.assignment.Component.array
              Component.pp_knob r.Scheme.assignment.Component.decoder
        in
        [
          size_label r2.l2_size;
          Report.fmt_pct r2.m2;
          leak_cell r3.total_leak;
          leak_cell r2.total_leak;
          knobs;
        ])
      sweep3.rows sweep2.rows
  in
  let best_of sweep = Option.value (Option.map size_label (best_l2_size sweep)) ~default:"-" in
  (* quantify the gain at the smallest feasible size, where the budget bites *)
  let small_gain =
    List.fold_left2
      (fun acc (r3 : l2_row) (r2 : l2_row) ->
        match (acc, r3.total_leak, r2.total_leak) with
        | None, Some a, Some b when b < a ->
          Some (r2.l2_size, 100.0 *. (1.0 -. (b /. a)))
        | _ -> acc)
      None sweep3.rows sweep2.rows
  in
  [
    Report.note
      (Printf.sprintf "AMAT target %.0f ps (baseline x %.2f)"
         (Units.to_ps sweep2.target_amat) slack);
    Report.table
      ~title:
        "L2 sizing: single pair vs per-component pairs (two pairs shift the optimum to smaller L2s)"
      ~columns:
        [ "L2 size"; "m2 (local)"; "single pair (mW)"; "two pairs (mW)"; "II array / periph" ]
      ~rows;
    Report.note
      (Printf.sprintf "optimal L2: single pair -> %s, per-component pairs -> %s%s"
         (best_of sweep3) (best_of sweep2)
         (match small_gain with
         | None -> ""
         | Some (size, pct) ->
           Printf.sprintf "; at %s the two-pair design leaks %.0f%%%% less, extending \
                           the competitive range to smaller L2s" (size_label size) pct));
  ]

(* ------------------------------------------------------------------ *)
(* L1 sweep (T4)                                                       *)

type l1_row = {
  l1_size : int;
  m1 : float;
  t_l1_budget : float option;
  l1_result : Scheme.result option;
  l1_leak : float option;
  l1_total_leak : float option;
}

type l1_sweep = {
  l1_target_amat : float;
  l1_rows : l1_row list;
}

let l1_sweep_rows ctx ?(amat_slack = 1.05) () =
  let t_mem = ctx.Context.mem.Main_memory.t_access in
  (* fixed reference L2 *)
  let _, l2_ref = reference_estimate ctx (Context.l2_config ctx ()) in
  let t_l2 = l2_ref.Fitted_cache.access_time in
  let l2_leak = l2_ref.Fitted_cache.leak_w in
  (* one grid call profiles the whole workload × L1 plane in a single
     fan-out (one measured traversal per pair); every row's curve below
     is derived from those profiles without touching the trace again *)
  let grid =
    Missrate.grid ~seed:ctx.Context.seed ~workloads:ctx.Context.workloads
      ~l1_sizes:Context.l1_sizes ~l2_sizes:Context.l2_sizes ~n:ctx.Context.n_sim ()
  in
  let curve_for l1_size =
    let rec find i =
      if i >= Array.length grid.Missrate.g_l1_sizes then miss_curve ctx ~l1_size
      else if grid.Missrate.g_l1_sizes.(i) = l1_size then grid.Missrate.g_averaged.(i)
      else find (i + 1)
    in
    find 0
  in
  (* baseline with the default L1 *)
  let base_curve = curve_for ctx.Context.l1_size in
  let _, l1_ref = reference_estimate ctx (Context.l1_config ctx ()) in
  let target =
    amat_slack
    *. Amat.two_level ~t_l1:l1_ref.Fitted_cache.access_time ~t_l2 ~t_mem
         ~m1:base_curve.Missrate.l1_miss_rate
         ~m2:(m2_of_curve base_curve ctx.Context.l2_size)
  in
  let rows =
    Array.to_list
      (Sweep.map_array
         (Task.make ~name:"two_level.l1-row" (fun l1_size ->
           let curve = curve_for l1_size in
           let m1 = curve.Missrate.l1_miss_rate in
           let m2 = m2_of_curve curve ctx.Context.l2_size in
           (* AMAT = t_l1 + m1 (t_l2 + m2 t_mem)  =>  budget on t_l1 *)
           let t_budget = target -. (m1 *. (t_l2 +. (m2 *. t_mem))) in
           if t_budget <= 0.0 then
             {
               l1_size;
               m1;
               t_l1_budget = None;
               l1_result = None;
               l1_leak = None;
               l1_total_leak = None;
             }
           else begin
             let fitted = Context.fitted ctx (Context.l1_config ctx ~size:l1_size ()) in
             let result =
               Scheme.minimize_leakage fitted ~grid:ctx.Context.grid ~scheme:Scheme.Split
                 ~delay_budget:t_budget
             in
             let l1_leak = Option.map (fun (r : Scheme.result) -> r.Scheme.leak_w) result in
             {
               l1_size;
               m1;
               t_l1_budget = Some t_budget;
               l1_result = result;
               l1_leak;
               l1_total_leak = Option.map (fun l -> l +. l2_leak) l1_leak;
             }
           end))
         Context.l1_sizes)
  in
  { l1_target_amat = target; l1_rows = rows }

let best_l1_size sweep =
  List.fold_left
    (fun acc row ->
      match (row.l1_total_leak, acc) with
      | None, _ -> acc
      | Some l, Some (_, best) when best <= l -> acc
      | Some l, _ -> Some (row.l1_size, l))
    None sweep.l1_rows
  |> Option.map fst

let l1_sweep ctx =
  let sweep = l1_sweep_rows ctx () in
  let rows =
    List.map
      (fun row ->
        let opt = function
          | None -> "infeasible"
          | Some v -> Printf.sprintf "%.3f" (Units.to_mw v)
        in
        let budget =
          match row.t_l1_budget with
          | None -> "-"
          | Some b -> Printf.sprintf "%.0f" (Units.to_ps b)
        in
        [ size_label row.l1_size; Report.fmt_pct row.m1; budget; opt row.l1_leak; opt row.l1_total_leak ])
      sweep.l1_rows
  in
  [
    Report.note
      (Printf.sprintf "AMAT target %.0f ps; L2 fixed at %s, reference knobs"
         (Units.to_ps sweep.l1_target_amat)
         (size_label ctx.Context.l2_size));
    Report.table ~title:"L1 sizing under a fixed L2 (paper: small L1 is optimal)"
      ~columns:[ "L1 size"; "m1"; "T_L1 budget (ps)"; "L1 leak (mW)"; "L1+L2 leak (mW)" ]
      ~rows;
    Report.note
      (Printf.sprintf "minimum total leakage at L1 = %s"
         (Option.value (Option.map size_label (best_l1_size sweep)) ~default:"(none)"));
  ]
