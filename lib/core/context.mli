(** Shared experiment context: the technology, cache shapes, workloads,
    grids and memoised characterisations every experiment draws on.

    Experiments take an explicit context so tests can run them on
    reduced settings (shorter traces, coarser grids) without touching
    globals. *)

type t = {
  tech : Nmcache_device.Tech.t;
  l1_size : int;            (** default L1 capacity (16 KB) *)
  l1_assoc : int;
  l2_size : int;            (** default L2 capacity (1 MB) *)
  l2_assoc : int;
  block_bytes : int;
  l2_output_bits : int;
  workloads : string list;  (** aggregated benchmark stand-ins *)
  seed : int64;
  n_sim : int;              (** trace length per simulation *)
  grid : Nmcache_opt.Grid.t;        (** full design grid *)
  coarse_grid : Nmcache_opt.Grid.t; (** for the tuple enumeration *)
  mem : Nmcache_energy.Main_memory.t;
}

val default : unit -> t
(** bptm65, 16 KB/4-way L1, 1 MB/8-way L2, 64 B blocks, headline
    workloads, 2 M-access traces, seed 42. *)

val quick : unit -> t
(** Reduced setting for tests: 400 k-access traces, coarse grids. *)

val fingerprint : t -> string
(** A stable, human-readable digest of every field that can change an
    experiment's numbers (tech corner, geometries, workloads, seed,
    trace length, grid shapes, memory model).  {!Experiments.task}
    folds it into checkpoint slot keys, so a journal recorded under one
    context is never served into a run with different inputs. *)

val l1_config : t -> ?size:int -> unit -> Nmcache_geometry.Config.t
val l2_config : t -> ?size:int -> unit -> Nmcache_geometry.Config.t

val fitted : t -> Nmcache_geometry.Config.t -> Nmcache_fit.Fitted_cache.t
(** Characterise-and-fit, memoised per (tech, config) within the
    process. *)

val l1_sizes : int array
(** 4 K … 64 K. *)

val l2_sizes : int array
(** 256 K … 8 M. *)

val reference_knob : t -> Nmcache_geometry.Component.knob
(** The default pair (0.30 V, 12 Å) components start from. *)

val clear_memo : unit -> unit
