module Tech = Nmcache_device.Tech
module Config = Nmcache_geometry.Config
module Component = Nmcache_geometry.Component
module Cache_model = Nmcache_geometry.Cache_model
module Fitted_cache = Nmcache_fit.Fitted_cache
module Grid = Nmcache_opt.Grid
module Units = Nmcache_physics.Units

type t = {
  tech : Tech.t;
  l1_size : int;
  l1_assoc : int;
  l2_size : int;
  l2_assoc : int;
  block_bytes : int;
  l2_output_bits : int;
  workloads : string list;
  seed : int64;
  n_sim : int;
  grid : Grid.t;
  coarse_grid : Grid.t;
  mem : Nmcache_energy.Main_memory.t;
}

let kb n = n * 1024
let mb n = n * 1024 * 1024

let default () =
  let tech = Tech.bptm65 in
  {
    tech;
    l1_size = kb 16;
    l1_assoc = 4;
    l2_size = mb 1;
    l2_assoc = 8;
    block_bytes = 64;
    l2_output_bits = 128;
    workloads = Nmcache_workload.Registry.headline;
    seed = Nmcache_workload.Registry.default_seed;
    n_sim = 2_000_000;
    grid = Grid.make tech;
    coarse_grid = Grid.coarse tech;
    mem = Nmcache_energy.Main_memory.ddr2_like;
  }

let quick () =
  let tech = Tech.bptm65 in
  {
    (default ()) with
    n_sim = 400_000;
    grid = Grid.coarse tech;
    coarse_grid = Grid.coarse tech;
  }

(* A stable fingerprint of every context field that can change an
   experiment's numbers — the checkpoint layer folds it into slot keys
   so a journal written under one context is never served under
   another (quick vs default, different seeds, grids, workloads…). *)
let fingerprint t =
  Printf.sprintf "%s:%.1fK:%.2fV:l1=%d/%d:l2=%d/%d:b%d:out%d:w=%s:seed=%Ld:n=%d:g=%dx%d:cg=%dx%d:mem=%.2e"
    t.tech.Tech.name t.tech.Tech.temp_k t.tech.Tech.vdd t.l1_size t.l1_assoc t.l2_size
    t.l2_assoc t.block_bytes t.l2_output_bits
    (String.concat "+" t.workloads)
    t.seed t.n_sim
    (Array.length t.grid.Grid.vths)
    (Array.length t.grid.Grid.toxs)
    (Array.length t.coarse_grid.Grid.vths)
    (Array.length t.coarse_grid.Grid.toxs)
    t.mem.Nmcache_energy.Main_memory.e_access

let l1_config t ?size () =
  Config.make
    ~size_bytes:(Option.value size ~default:t.l1_size)
    ~assoc:t.l1_assoc ~block_bytes:t.block_bytes ()

let l2_config t ?size () =
  Config.make
    ~size_bytes:(Option.value size ~default:t.l2_size)
    ~assoc:t.l2_assoc ~block_bytes:t.block_bytes ~output_bits:t.l2_output_bits ()

(* memoised characterisations; keyed on technology name + temperature +
   supply + config description (the fields that change fits) — the
   engine memo is domain-safe, so parallel sweeps share one cache *)
let memo : Fitted_cache.t Nmcache_engine.Memo.t =
  Nmcache_engine.Memo.create ~name:"context.fitted-models" ()

let clear_memo () = Nmcache_engine.Memo.clear memo

let fitted t config =
  let key =
    Printf.sprintf "%s:%.1fK:%.2fV:%s:out%d" t.tech.Tech.name t.tech.Tech.temp_k
      t.tech.Tech.vdd (Config.describe config) config.Config.output_bits
  in
  Nmcache_engine.Memo.find_or_compute memo key (fun () ->
      (* fault point inside the memoised compute: injection here proves
         a failing fit never poisons the table (Pending is dropped,
         waiters retry and fail identically, key-deterministically) *)
      Nmcache_engine.Faultpoint.hit ~point:"context.fit" ~key ();
      Nmcache_engine.Trace.with_stage "context.characterize+fit" (fun () ->
          Fitted_cache.characterize_and_fit (Cache_model.make t.tech config)))

let l1_sizes = [| kb 4; kb 8; kb 16; kb 32; kb 64 |]
let l2_sizes = [| kb 256; kb 512; mb 1; mb 2; mb 4; mb 8 |]

let reference_knob t =
  ignore t;
  Component.knob ~vth:0.30 ~tox:(Units.angstrom 12.0)
