(** Experiment registry: every table and figure the reproduction
    regenerates, addressable by id for the CLI and the bench harness. *)

type t = {
  id : string;          (** e.g. ["fig1"] *)
  title : string;
  paper_ref : string;   (** where in the paper the artefact lives *)
  run : Context.t -> Report.artefact list;
}

val all : t list
(** Paper artefacts first (fig1, schemes, l2sweep, l2sweep2, l1sweep,
    fig2), then extensions (ablate-knobs, ablate-temp, ablate-policy,
    fig2-workloads, fitcheck). *)

val paper : t list
(** Only the six paper artefacts. *)

val find : string -> t option

val ids : string list

val run_many : Context.t -> t list -> (t * Report.artefact list) list
(** Evaluate every experiment kernel through the engine (parallel when
    {!Nmcache_engine.Executor} has [jobs > 1], sequential otherwise)
    and return artefacts in registry order — experiments are data, so a
    parallel run renders byte-identically to a sequential one.
    Fail-fast: the first kernel exception aborts the run (after every
    in-flight domain joins) and re-raises. *)

val run_many_result :
  Context.t ->
  t list ->
  (t * (Report.artefact list, Nmcache_engine.Fault.t) result) list
(** Partial-result variant: a failing experiment settles as [Error]
    with its typed fault (recorded in the {!Nmcache_engine.Fault} log)
    while the remaining experiments complete.  Same ordering and
    byte-determinism guarantees as {!run_many}; fault injection via
    the [experiment] fault point (keyed by experiment id) preserves
    them, because injection decisions are key-deterministic. *)
