(* The serve protocol (see the .mli for the contract).

   Layering: Server owns lines/batches/drain, Service owns meaning —
   parsing, validation, admission bounds, the store-backed compute
   paths, breaker bookkeeping and response rendering.  Everything that
   mutates cross-request state (breaker cells, the nearest-optimum
   index, request counters) happens in the settle thunk the serve loop
   runs sequentially in request order: the handler body itself only
   reads shared state, so responses are byte-identical at any pool
   width. *)

open Nmcache_engine
module Config = Nmcache_geometry.Config
module Component = Nmcache_geometry.Component
module Scheme = Nmcache_opt.Scheme
module Missrate = Nmcache_workload.Missrate
module Registry = Nmcache_workload.Registry
module Amat = Nmcache_energy.Amat
module Units = Nmcache_physics.Units

let serve_schema_version = 1

(* --- serve-level errors ---------------------------------------------- *)

(* The error taxonomy is Fault.kind plus three serve-level kinds that
   have no place in the numeric stack: bad_request, overloaded,
   circuit_open. *)
type serve_error = { e_kind : string; e_stage : string; e_detail : string }

exception Reject of serve_error

let reject ~kind ~stage fmt =
  Printf.ksprintf
    (fun d -> raise (Reject { e_kind = kind; e_stage = stage; e_detail = d }))
    fmt

let bad_request ~stage fmt = reject ~kind:"bad_request" ~stage fmt
let overloaded ~stage fmt = reject ~kind:"overloaded" ~stage fmt

let redact (f : Fault.t) =
  match f.kind with
  | Fault.Crashed ->
    (* keep only the exception constructor: raw exception text can
       carry local filesystem paths (Sys_error, Unix_error, ...) *)
    let d = f.detail in
    let n = String.length d in
    let stop = ref n in
    String.iteri
      (fun i c ->
        if !stop = n && (c = '(' || c = ' ' || c = '"' || c = '/') then stop := i)
      d;
    let tok = String.sub d 0 !stop in
    { f with detail = (if tok = "" then "exception" else tok) }
  | _ -> f

let of_fault (f : Fault.t) =
  let f = redact f in
  { e_kind = Fault.kind_name f.kind; e_stage = f.stage; e_detail = f.detail }

(* --- state ----------------------------------------------------------- *)

(* one cached optimisation result, indexed for nearest-neighbour
   degraded answers *)
type opt_params = {
  p_scheme : string;
  p_size_kb : int;
  p_assoc : int;
  p_block : int;
  p_out : int;
  p_budget_ps : float;
}

type index_entry = { e_params : opt_params; e_body : Json.t }

type t = {
  ctx : Context.t;
  fingerprint : string;
  store : Store.t option;
  brk : Breaker.t;
  queue : int;
  jobs : int;
  max_points : int;
  max_n : int;
  started : float;
  stats_lock : Mutex.t;
  mutable ok_count : int;
  mutable error_count : int;
  mutable degraded_count : int;
  index_lock : Mutex.t;
  (* family (scheme|assoc|block|out) -> cached optima, settle-phase
     mutations only *)
  index : (string, index_entry list ref) Hashtbl.t;
}

let breaker t = t.brk
let requests_ok t = Mutex.protect t.stats_lock (fun () -> t.ok_count)
let requests_error t = Mutex.protect t.stats_lock (fun () -> t.error_count)
let requests_degraded t = Mutex.protect t.stats_lock (fun () -> t.degraded_count)

let note t outcome =
  Mutex.protect t.stats_lock (fun () ->
      match outcome with
      | `Ok -> t.ok_count <- t.ok_count + 1
      | `Error -> t.error_count <- t.error_count + 1
      | `Degraded -> t.degraded_count <- t.degraded_count + 1)

(* --- the nearest-optimum index --------------------------------------- *)

let family p =
  Printf.sprintf "%s|a=%d|b=%d|o=%d" p.p_scheme p.p_assoc p.p_block p.p_out

let index_add t p body =
  Mutex.protect t.index_lock (fun () ->
      let cell =
        match Hashtbl.find_opt t.index (family p) with
        | Some c -> c
        | None ->
          let c = ref [] in
          Hashtbl.replace t.index (family p) c;
          c
      in
      let same e =
        e.e_params.p_size_kb = p.p_size_kb
        && e.e_params.p_budget_ps = p.p_budget_ps
      in
      if not (List.exists same !cell) then
        cell := { e_params = p; e_body = body } :: !cell)

(* distance: capacity first (log scale), then budget; ties broken by
   (size, budget) so the winner is unique and deterministic *)
let nearest t p =
  Mutex.protect t.index_lock (fun () ->
      match Hashtbl.find_opt t.index (family p) with
      | None -> None
      | Some cell ->
        let rank e =
          ( Float.abs
              (Float.log2 (float_of_int e.e_params.p_size_kb)
              -. Float.log2 (float_of_int p.p_size_kb)),
            Float.abs (e.e_params.p_budget_ps -. p.p_budget_ps),
            e.e_params.p_size_kb,
            e.e_params.p_budget_ps )
        in
        List.fold_left
          (fun best e ->
            match best with
            | None -> Some e
            | Some b -> if rank e < rank b then Some e else best)
          None !cell)

(* --- store keys ------------------------------------------------------ *)

let model_key t config =
  Printf.sprintf "%s|%s|out%d" t.fingerprint (Config.describe config)
    config.Config.output_bits

let optimize_key t p =
  Printf.sprintf "%s|s=%d|a=%d|b=%d|o=%d|bud=%.6f|%s" p.p_scheme p.p_size_kb
    p.p_assoc p.p_block p.p_out p.p_budget_ps t.fingerprint

let curve_key t ~workload ~l1_kb ~assoc ~block ~n ~seed ~l2_kb =
  Printf.sprintf "%s|l1=%d|a=%d|b=%d|n=%d|seed=%Ld|l2=%s|%s" workload l1_kb
    assoc block n seed
    (String.concat "," (List.map string_of_int l2_kb))
    t.fingerprint

(* --- lifecycle ------------------------------------------------------- *)

let seed_index t =
  match t.store with
  | None -> ()
  | Some store ->
    List.iter
      (fun key ->
        match
          (Store.lookup store ~ns:"optimize" ~key : (opt_params * Json.t) option)
        with
        | Some (p, body) -> index_add t p body
        | None -> ())
      (Store.keys store ~ns:"optimize")

let create ?(max_points = 64) ?(max_n = 100_000_000) ?breaker ?store ~ctx ~queue
    ~jobs () =
  let brk =
    match breaker with Some b -> b | None -> Breaker.create ()
  in
  let t =
    {
      ctx;
      fingerprint = Context.fingerprint ctx;
      store;
      brk;
      queue;
      jobs;
      max_points;
      max_n;
      started = Unix.gettimeofday ();
      stats_lock = Mutex.create ();
      ok_count = 0;
      error_count = 0;
      degraded_count = 0;
      index_lock = Mutex.create ();
      index = Hashtbl.create 16;
    }
  in
  seed_index t;
  t

(* --- rendering ------------------------------------------------------- *)

let render_line fields = Json.to_string (Json.Obj fields)

let respond ~id ?degraded_from body =
  render_line
    ([ ("serve_schema_version", Json.Int serve_schema_version); ("id", id) ]
    @ (match degraded_from with
      | None -> []
      | Some from ->
        [ ("degraded", Json.Bool true); ("degraded_from", Json.String from) ])
    @ [ ("result", body) ])

let error_line ~id e =
  render_line
    [
      ("serve_schema_version", Json.Int serve_schema_version);
      ("id", id);
      ( "error",
        Json.Obj
          [
            ("kind", Json.String e.e_kind);
            ("stage", Json.String e.e_stage);
            ("detail", Json.String e.e_detail);
          ] );
    ]

let crash_response ~line:_ fault = error_line ~id:Json.Null (of_fault fault)

let overlong_response () =
  error_line ~id:Json.Null
    {
      e_kind = "overloaded";
      e_stage = "serve.admission";
      e_detail =
        Printf.sprintf "request line exceeds %d bytes" Server.max_line_bytes;
    }

let shed_response () =
  (* load shedding: connection cap or global queue exhausted — an
     explicit, deterministic refusal instead of unbounded buffering *)
  error_line ~id:Json.Null
    {
      e_kind = "overloaded";
      e_stage = "serve.admission";
      e_detail = "server at capacity; retry later";
    }

(* --- request parsing ------------------------------------------------- *)

let str_field j name =
  match Json.member name j with
  | None | Some Json.Null -> None
  | Some v -> (
    match Json.to_str v with
    | Some s -> Some s
    | None -> bad_request ~stage:"serve.validate" "field %S must be a string" name)

let int_field j name =
  match Json.member name j with
  | None | Some Json.Null -> None
  | Some v -> (
    match Json.to_int v with
    | Some i -> Some i
    | None ->
      bad_request ~stage:"serve.validate" "field %S must be an integer" name)

let float_field j name =
  match Json.member name j with
  | None | Some Json.Null -> None
  | Some v -> (
    match Json.to_float v with
    | Some f -> Some f
    | None -> bad_request ~stage:"serve.validate" "field %S must be a number" name)

let req_float j name =
  match float_field j name with
  | Some f -> f
  | None -> bad_request ~stage:"serve.validate" "missing required field %S" name

let req_str j name =
  match str_field j name with
  | Some s -> s
  | None -> bad_request ~stage:"serve.validate" "missing required field %S" name

(* --- compute plumbing ------------------------------------------------ *)

let with_deadline f =
  match Deadline.default () with
  | Some budget_s -> Deadline.with_budget ~budget_s f
  | None -> f ()

(* faults that count toward a breaker trip: the compute stack is
   misbehaving.  Out_of_domain is the query's fault, not the stack's. *)
let breaker_counts (k : Fault.kind) =
  match k with
  | Fault.Fit_diverged | Fault.Singular_system | Fault.Non_finite
  | Fault.Injected | Fault.Crashed | Fault.Timed_out ->
    true
  | Fault.Out_of_domain -> false

let fitted_model t config =
  match t.store with
  | None -> Context.fitted t.ctx config
  | Some store -> (
    let key = model_key t config in
    match
      (Store.lookup store ~ns:"model" ~key : Nmcache_fit.Fitted_cache.t option)
    with
    | Some m -> m
    | None ->
      let m = Context.fitted t.ctx config in
      Store.add store ~ns:"model" ~key m;
      m)

let observe_elapsed name t0 =
  Metrics.observe name ((Unix.gettimeofday () -. t0) *. 1e6)

(* --- optimize -------------------------------------------------------- *)

let parse_optimize t j =
  let scheme_s = Option.value (str_field j "scheme") ~default:"I" in
  let scheme =
    match Scheme.of_name scheme_s with
    | Some s -> s
    | None ->
      bad_request ~stage:"serve.validate" "unknown scheme %S (want I, II or III)"
        scheme_s
  in
  let size_kb =
    Option.value (int_field j "size_kb") ~default:(t.ctx.Context.l1_size / 1024)
  in
  let assoc = Option.value (int_field j "assoc") ~default:t.ctx.Context.l1_assoc in
  let block =
    Option.value (int_field j "block_bytes") ~default:t.ctx.Context.block_bytes
  in
  let out = Option.value (int_field j "output_bits") ~default:64 in
  let budget_ps = req_float j "delay_budget_ps" in
  if not (Float.is_finite budget_ps) || budget_ps <= 0. then
    bad_request ~stage:"serve.validate" "delay_budget_ps must be finite and > 0";
  if size_kb < 1 then bad_request ~stage:"serve.validate" "size_kb must be >= 1";
  let config =
    try
      Config.make ~output_bits:out ~size_bytes:(size_kb * 1024) ~assoc
        ~block_bytes:block ()
    with Invalid_argument msg -> bad_request ~stage:"serve.validate" "%s" msg
  in
  let p =
    {
      p_scheme = Scheme.name scheme;
      p_size_kb = size_kb;
      p_assoc = assoc;
      p_block = block;
      p_out = out;
      p_budget_ps = budget_ps;
    }
  in
  (p, scheme, config)

let knob_json kind (k : Component.knob) =
  Json.Obj
    [
      ("component", Json.String (Component.kind_name kind));
      ("vth_v", Json.Float k.Component.vth);
      ("tox_a", Json.Float (Units.to_angstrom k.Component.tox));
    ]

let compute_optimize t p scheme config =
  let fitted = fitted_model t config in
  let grid = t.ctx.Context.grid in
  match
    Scheme.minimize_leakage fitted ~grid ~scheme
      ~delay_budget:(Units.ps p.p_budget_ps)
  with
  | None ->
    Json.Obj
      [
        ("scheme", Json.String p.p_scheme);
        ("size_kb", Json.Int p.p_size_kb);
        ("feasible", Json.Bool false);
        ( "fastest_access_ps",
          Json.Float (Units.to_ps (Scheme.fastest_access_time fitted ~grid)) );
      ]
  | Some r ->
    Json.Obj
      [
        ("scheme", Json.String p.p_scheme);
        ("size_kb", Json.Int p.p_size_kb);
        ("feasible", Json.Bool true);
        ("leak_w", Json.Float r.Scheme.leak_w);
        ("access_ps", Json.Float (Units.to_ps r.Scheme.access_time));
        ( "assignment",
          Json.List
            (List.map
               (fun kind ->
                 knob_json kind (Component.get r.Scheme.assignment kind))
               Component.all_kinds) );
      ]

let degraded_from p =
  Printf.sprintf "optimize scheme=%s size_kb=%d delay_budget_ps=%g" p.p_scheme
    p.p_size_kb p.p_budget_ps

let handle_optimize t ~t0 ~id j =
  let p, scheme, config = parse_optimize t j in
  let skey = optimize_key t p in
  let warm =
    match t.store with
    | None -> None
    | Some store ->
      (Store.lookup store ~ns:"optimize" ~key:skey
        : (opt_params * Json.t) option)
  in
  match warm with
  | Some (_, body) ->
    observe_elapsed "serve.warm_us" t0;
    (respond ~id body, fun () -> note t `Ok)
  | None ->
    let bkey = "opt|" ^ family p ^ Printf.sprintf "|s=%d" p.p_size_kb in
    if not (Breaker.admit t.brk ~key:bkey) then (
      match nearest t p with
      | Some e ->
        ( respond ~id ~degraded_from:(degraded_from e.e_params) e.e_body,
          fun () ->
            Breaker.record t.brk ~key:bkey ~ok:false;
            note t `Degraded )
      | None ->
        ( error_line ~id
            {
              e_kind = "circuit_open";
              e_stage = "serve.breaker";
              e_detail =
                Printf.sprintf "%s cooling down, nothing cached to degrade to"
                  bkey;
            },
          fun () ->
            Breaker.record t.brk ~key:bkey ~ok:false;
            note t `Error ))
    else
      match with_deadline (fun () -> compute_optimize t p scheme config) with
      | body ->
        Option.iter
          (fun store -> Store.add store ~ns:"optimize" ~key:skey (p, body))
          t.store;
        observe_elapsed "serve.cold_us" t0;
        ( respond ~id body,
          fun () ->
            Breaker.record t.brk ~key:bkey ~ok:true;
            index_add t p body;
            note t `Ok )
      | exception Fault.Fault f ->
        Fault.record f;
        ( error_line ~id (of_fault f),
          fun () ->
            if breaker_counts f.Fault.kind then
              Breaker.record t.brk ~key:bkey ~ok:false;
            note t `Error )

(* --- miss_curve ------------------------------------------------------ *)

let handle_miss_curve t ~t0 ~id j =
  let workload = req_str j "workload" in
  if Registry.find workload = None then
    bad_request ~stage:"serve.validate" "unknown workload %S (see %s)" workload
      (String.concat ", " Registry.names);
  let l1_kb =
    Option.value (int_field j "l1_kb") ~default:(t.ctx.Context.l1_size / 1024)
  in
  let assoc = Option.value (int_field j "assoc") ~default:t.ctx.Context.l1_assoc in
  let block =
    Option.value (int_field j "block_bytes") ~default:t.ctx.Context.block_bytes
  in
  let n = Option.value (int_field j "n") ~default:t.ctx.Context.n_sim in
  let seed =
    match int_field j "seed" with
    | Some s -> Int64.of_int s
    | None -> t.ctx.Context.seed
  in
  let l2_kb =
    match Json.member "l2_kb" j with
    | None ->
      bad_request ~stage:"serve.validate" "missing required field \"l2_kb\""
    | Some v -> (
      match Json.to_list v with
      | None ->
        bad_request ~stage:"serve.validate"
          "field \"l2_kb\" must be a list of integers"
      | Some items ->
        List.map
          (fun item ->
            match Json.to_int item with
            | Some i when i >= 1 -> i
            | _ ->
              bad_request ~stage:"serve.validate"
                "field \"l2_kb\" must be a list of integers >= 1")
          items)
  in
  if l2_kb = [] then
    bad_request ~stage:"serve.validate" "field \"l2_kb\" must be non-empty";
  if l1_kb < 1 then bad_request ~stage:"serve.validate" "l1_kb must be >= 1";
  (* admission control: declared work is bounded before any of it runs *)
  if List.length l2_kb > t.max_points then
    overloaded ~stage:"serve.admission" "%d curve points requested, limit %d"
      (List.length l2_kb) t.max_points;
  if n < 1 || n > t.max_n then
    overloaded ~stage:"serve.admission" "n=%d outside [1, %d]" n t.max_n;
  let skey = curve_key t ~workload ~l1_kb ~assoc ~block ~n ~seed ~l2_kb in
  let render (c : Missrate.l2_curve) =
    Json.Obj
      [
        ("workload", Json.String c.Missrate.workload);
        ("l1_kb", Json.Int l1_kb);
        ("m1", Json.Float c.Missrate.l1_miss_rate);
        ( "points",
          Json.List
            (List.init
               (Array.length c.Missrate.l2_sizes)
               (fun i ->
                 Json.Obj
                   [
                     ("l2_kb", Json.Int (c.Missrate.l2_sizes.(i) / 1024));
                     ("m2", Json.Float c.Missrate.l2_local_rates.(i));
                   ])) );
      ]
  in
  let warm =
    match t.store with
    | None -> None
    | Some store ->
      (Store.lookup store ~ns:"curve" ~key:skey : Missrate.l2_curve option)
  in
  match warm with
  | Some c ->
    observe_elapsed "serve.warm_us" t0;
    (respond ~id (render c), fun () -> note t `Ok)
  | None ->
    let bkey = Printf.sprintf "curve|%s|l1=%d|a=%d|b=%d" workload l1_kb assoc block in
    if not (Breaker.admit t.brk ~key:bkey) then
      ( error_line ~id
          {
            e_kind = "circuit_open";
            e_stage = "serve.breaker";
            e_detail =
              Printf.sprintf "%s cooling down, nothing cached to degrade to" bkey;
          },
        fun () ->
          Breaker.record t.brk ~key:bkey ~ok:false;
          note t `Error )
    else
      let compute () =
        Missrate.l2_curve ~l1_assoc:assoc ~block ~seed ~workload
          ~l1_size:(l1_kb * 1024)
          ~l2_sizes:(Array.of_list (List.map (fun kb -> kb * 1024) l2_kb))
          ~n ()
      in
      match with_deadline compute with
      | c ->
        Option.iter (fun store -> Store.add store ~ns:"curve" ~key:skey c) t.store;
        observe_elapsed "serve.cold_us" t0;
        ( respond ~id (render c),
          fun () ->
            Breaker.record t.brk ~key:bkey ~ok:true;
            note t `Ok )
      | exception Fault.Fault f ->
        Fault.record f;
        ( error_line ~id (of_fault f),
          fun () ->
            if breaker_counts f.Fault.kind then
              Breaker.record t.brk ~key:bkey ~ok:false;
            note t `Error )

(* --- amat / health --------------------------------------------------- *)

let handle_amat ~id j =
  let t_l1 = req_float j "t_l1_ps" in
  let t_l2 = req_float j "t_l2_ps" in
  let t_mem = req_float j "t_mem_ps" in
  let m1 = req_float j "m1" in
  let m2 = req_float j "m2" in
  let amat =
    try Amat.two_level ~t_l1 ~t_l2 ~t_mem ~m1 ~m2
    with Invalid_argument msg -> bad_request ~stage:"serve.amat" "%s" msg
  in
  (respond ~id (Json.Obj [ ("amat_ps", Json.Float amat) ]), `Ok)

let state_json (st : Breaker.state) =
  match st with
  | Breaker.Closed -> [ ("state", Json.String "closed") ]
  | Breaker.Half_open -> [ ("state", Json.String "half_open") ]
  | Breaker.Open r ->
    [ ("state", Json.String "open"); ("cooldown", Json.Int r) ]

let health_json t =
  let ok, err, deg =
    Mutex.protect t.stats_lock (fun () ->
        (t.ok_count, t.error_count, t.degraded_count))
  in
  Json.Obj
    [
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
      ("pid", Json.Int (Unix.getpid ()));
      ("jobs", Json.Int t.jobs);
      ("queue", Json.Int t.queue);
      ("inflight", Json.Int (Server.inflight ()));
      ( "requests",
        Json.Obj
          [
            ("ok", Json.Int ok);
            ("errors", Json.Int err);
            ("degraded", Json.Int deg);
          ] );
      ( "connections",
        Json.Obj
          [
            ( "active",
              Json.Int
                (int_of_float
                   (Option.value ~default:0.
                      (Metrics.gauge_value "serve.active_connections"))) );
            ("shed_requests", Json.Int (Metrics.counter_value "serve.shed"));
            ("shed_conns", Json.Int (Metrics.counter_value "serve.shed_conns"));
            ("dropped", Json.Int (Metrics.counter_value "serve.conn_dropped"));
          ] );
      ( "store",
        match t.store with
        | None -> Json.Null
        | Some s ->
          Json.Obj
            [
              ("path", Json.String (Store.path s));
              ("entries", Json.Int (Store.entries s));
              ("bytes", Json.Int (Store.bytes s));
              ("replayed", Json.Int (Store.replayed s));
              ("appended", Json.Int (Store.appended s));
              ("served", Json.Int (Store.served s));
              ("segment_version", Json.Int (Store.segment_version s));
              ("live_bytes", Json.Int (Store.live_bytes s));
              ("dead_records", Json.Int (Store.dead_records s));
              ("dead_bytes", Json.Int (Store.dead_bytes s));
            ] );
      ( "breakers",
        Json.List
          (List.map
             (fun (key, st) ->
               Json.Obj (("key", Json.String key) :: state_json st))
             (Breaker.tripped_keys t.brk)) );
    ]

(* --- dispatch -------------------------------------------------------- *)

let tag_of ~id j =
  match str_field j "tag" with
  | Some s -> s
  | None -> ( match id with Json.String s -> s | other -> Json.to_string other)

let handle_request t ~t0 ~id j =
  try
    let op = req_str j "op" in
    let tag = tag_of ~id j in
    (* the poison point: chaos harnesses arm serve.request by tag and
       the marked requests fail here — before any compute — whatever
       the pool width *)
    Faultpoint.hit ~point:"serve.request" ~key:tag ();
    match op with
    | "optimize" -> handle_optimize t ~t0 ~id j
    | "miss_curve" -> handle_miss_curve t ~t0 ~id j
    | "amat" ->
      let line, outcome = handle_amat ~id j in
      (line, fun () -> note t outcome)
    | "health" -> (respond ~id (health_json t), fun () -> note t `Ok)
    | other ->
      bad_request ~stage:"serve.validate"
        "unknown op %S (want optimize, miss_curve, amat or health)" other
  with
  | Reject e -> (error_line ~id e, fun () -> note t `Error)
  | Fault.Fault f ->
    Fault.record f;
    (error_line ~id (of_fault f), fun () -> note t `Error)
  | e ->
    let f = Fault.of_exn ~stage:"serve.request" e in
    Fault.record f;
    (error_line ~id (of_fault f), fun () -> note t `Error)

let handle_line t line =
  let t0 = Unix.gettimeofday () in
  let result =
    match Json.parse line with
    | Error msg ->
      ( error_line ~id:Json.Null
          {
            e_kind = "bad_request";
            e_stage = "serve.parse";
            e_detail = "malformed JSON: " ^ msg;
          },
        fun () -> note t `Error )
    | Ok (Json.Obj _ as j) ->
      let id = Option.value (Json.member "id" j) ~default:Json.Null in
      handle_request t ~t0 ~id j
    | Ok _ ->
      ( error_line ~id:Json.Null
          {
            e_kind = "bad_request";
            e_stage = "serve.parse";
            e_detail = "request must be a JSON object";
          },
        fun () -> note t `Error )
  in
  observe_elapsed "serve.request_us" t0;
  result

let handler t ~line = handle_line t line
