module Units = Nmcache_physics.Units
module Tech = Nmcache_device.Tech
module Component = Nmcache_geometry.Component
module Cache_model = Nmcache_geometry.Cache_model
module Fitted_cache = Nmcache_fit.Fitted_cache
module Model = Nmcache_fit.Model
module Fitter = Nmcache_fit.Fitter
module Grid = Nmcache_opt.Grid
module Scheme = Nmcache_opt.Scheme
module Tuple_problem = Nmcache_opt.Tuple_problem
module Missrate = Nmcache_workload.Missrate
module Replacement = Nmcache_cachesim.Replacement
module Minimize = Nmcache_numerics.Minimize

(* --- X1: knob ablation --------------------------------------------- *)

let knob_ablation ctx =
  let fitted = Context.fitted ctx (Context.l1_config ctx ()) in
  let full = ctx.Context.grid in
  let reference = Context.reference_knob ctx in
  let vth_only = { full with Grid.toxs = [| reference.Component.tox |] } in
  let tox_only = { full with Grid.vths = [| reference.Component.vth |] } in
  let budgets =
    let fast = Scheme.fastest_access_time fitted ~grid:full in
    let slow = Scheme.slowest_access_time fitted ~grid:full in
    Array.init 6 (fun i ->
        (fast *. 1.05) +. ((slow *. 0.95) -. (fast *. 1.05)) *. float_of_int i /. 5.0)
  in
  let cell grid budget =
    match Scheme.minimize_leakage fitted ~grid ~scheme:Scheme.Split ~delay_budget:budget with
    | None -> "infeasible"
    | Some r -> Printf.sprintf "%.3f" (Units.to_mw r.Scheme.leak_w)
  in
  let rows =
    Array.to_list
      (Array.map
         (fun budget ->
           [
             Printf.sprintf "%.0f" (Units.to_ps budget);
             cell vth_only budget;
             cell tox_only budget;
             cell full budget;
           ])
         budgets)
  in
  [
    Report.table
      ~title:"X1: knob ablation — scheme II leakage (mW), 16KB cache"
      ~columns:
        [ "budget (ps)"; "Vth only (Tox=12A)"; "Tox only (Vth=0.30V)"; "both knobs" ]
      ~rows;
    Report.note
      "At tight budgets only Vth-alone stays close to the two-knob optimum (Tox-alone \
       pays several-x more leakage); at loose budgets both approach the floor. Vth is \
       the knob worth varying -- fix Tox conservatively (paper sec.4/sec.5).";
  ]

(* --- X2: temperature ----------------------------------------------- *)

let temperature_sensitivity ctx =
  let temps = [ 300.0; 330.0; 358.0; 383.0 ] in
  let budget = ref None in
  let rows =
    List.map
      (fun temp_k ->
        let tech = Tech.with_temperature ctx.Context.tech ~temp_k in
        let ctx_t = { ctx with Context.tech } in
        let fitted = Context.fitted ctx_t (Context.l1_config ctx_t ()) in
        let grid = ctx.Context.grid in
        let b =
          match !budget with
          | Some b -> b
          | None ->
            let b = 1.35 *. Scheme.fastest_access_time fitted ~grid in
            budget := Some b;
            b
        in
        match Scheme.minimize_leakage fitted ~grid ~scheme:Scheme.Split ~delay_budget:b with
        | None -> [ Printf.sprintf "%.0f" temp_k; "infeasible"; "-"; "-" ]
        | Some r ->
          [
            Printf.sprintf "%.0f" temp_k;
            Printf.sprintf "%.3f" (Units.to_mw r.Scheme.leak_w);
            Format.asprintf "%a" Component.pp_knob r.Scheme.assignment.Component.array;
            Format.asprintf "%a" Component.pp_knob r.Scheme.assignment.Component.decoder;
          ])
      temps
  in
  [
    Report.table
      ~title:"X2: temperature sensitivity — scheme II optimum, 16KB cache, fixed budget"
      ~columns:[ "T (K)"; "min leakage (mW)"; "array knob"; "periph knob" ]
      ~rows;
    Report.note
      "Subthreshold leakage grows exponentially with temperature while gate \
       tunnelling is nearly flat, so hot silicon pushes arrays to even higher Vth.";
  ]

(* --- X3: replacement policy ---------------------------------------- *)

let policy_ablation ctx =
  let policies = [ Replacement.Lru; Replacement.Fifo; Replacement.Random 17; Replacement.Plru ] in
  let workload = "spec2000-mix" in
  let n = ctx.Context.n_sim in
  let rows =
    List.map
      (fun policy ->
        (* the LRU row is derived from one raw-trace profile (all sizes,
           one traversal); the other policies fall outside the stack
           model and keep per-size direct simulation *)
        let l1_misses =
          Missrate.l1_sweep ~policy ~seed:ctx.Context.seed ~workload
            ~l1_sizes:Context.l1_sizes ~n ()
        in
        let point =
          Missrate.simulate ~policy ~seed:ctx.Context.seed ~workload
            ~l1_size:ctx.Context.l1_size ~l2_size:ctx.Context.l2_size ~n ()
        in
        Replacement.name policy
        :: (Array.to_list (Array.map Report.fmt_pct l1_misses)
           @ [ Report.fmt_pct point.Missrate.l2_local ]))
      policies
  in
  [
    Report.table
      ~title:
        (Printf.sprintf "X3: replacement policy vs miss rates (%s)" workload)
      ~columns:
        ([ "policy" ]
        @ List.map
            (fun s -> Printf.sprintf "L1 %dK" (s / 1024))
            (Array.to_list Context.l1_sizes)
        @ [ "L2 1MB local" ])
      ~rows;
    Report.note
      "LRU/PLRU lead, FIFO and Random trail by a small margin: the sizing conclusions \
       are policy-robust.";
  ]

(* --- X4: per-workload Figure 2 ------------------------------------- *)

let per_workload_tuple ctx =
  let rows =
    List.map
      (fun workload ->
        let curves = Tuple_study.figure2_curves ~workloads:[ workload ] ctx in
        let all_amats =
          List.concat_map
            (fun (_, pts) ->
              List.map (fun (p : Tuple_problem.point) -> p.Tuple_problem.amat) pts)
            curves
        in
        let mid =
          match all_amats with
          | [] -> 0.0
          | _ ->
            let lo = List.fold_left Float.min Float.infinity all_amats in
            let hi = List.fold_left Float.max Float.neg_infinity all_amats in
            lo +. (0.5 *. (hi -. lo))
        in
        let energy spec_pred =
          match
            List.find_opt (fun ((s : Tuple_problem.spec), _) -> spec_pred s) curves
          with
          | None -> "-"
          | Some (_, pts) -> (
            match Tuple_study.energy_at pts ~amat:mid with
            | None -> "-"
            | Some e -> Printf.sprintf "%.1f" (Units.to_pj e))
        in
        [
          workload;
          Printf.sprintf "%.0f" (Units.to_ps mid);
          energy (fun s -> s.Tuple_problem.n_vth = 2 && s.Tuple_problem.n_tox = 2);
          energy (fun s -> s.Tuple_problem.n_vth = 3 && s.Tuple_problem.n_tox = 2);
          energy (fun s -> s.Tuple_problem.n_vth = 2 && s.Tuple_problem.n_tox = 1);
          energy (fun s -> s.Tuple_problem.n_vth = 1 && s.Tuple_problem.n_tox = 2);
        ])
      ctx.Context.workloads
  in
  [
    Report.table ~title:"X4: Figure-2 cross-sections per workload (energy at mid AMAT)"
      ~columns:
        [ "workload"; "AMAT (ps)"; "2T+2V (pJ)"; "2T+3V (pJ)"; "1T+2V (pJ)"; "2T+1V (pJ)" ]
      ~rows;
    Report.note
      "2T+3V <= 2T+2V holds for every workload family; the single-knob comparison \
       favours dual-Vth for the CPU-like mix and is a near-tie for the server \
       workloads (their energy is dominated by the miss path).";
  ]

(* --- X5: fit audit -------------------------------------------------- *)

let fit_audit ctx =
  let audit label config =
    let fitted = Context.fitted ctx config in
    let circuit = Fitted_cache.circuit_model fitted in
    let tech = Cache_model.tech circuit in
    (* dense off-training grid *)
    let vths = Minimize.linspace ~lo:tech.Tech.vth_min ~hi:tech.Tech.vth_max ~steps:12 in
    let toxs = Minimize.linspace ~lo:tech.Tech.tox_min ~hi:tech.Tech.tox_max ~steps:8 in
    List.map
      (fun (cm : Fitted_cache.component_model) ->
        let samples = Cache_model.characterize circuit cm.Fitted_cache.kind ~vths ~toxs in
        let lq = Fitter.quality_leak cm.Fitted_cache.leak samples in
        let dq = Fitter.quality_delay cm.Fitted_cache.delay samples in
        [
          label;
          Component.kind_name cm.Fitted_cache.kind;
          Printf.sprintf "%.4f" lq.Model.r2;
          Report.fmt_pct lq.Model.max_rel;
          Printf.sprintf "%.4f" dq.Model.r2;
          Report.fmt_pct dq.Model.max_rel;
        ])
      (Fitted_cache.components fitted)
  in
  let rows =
    audit "L1 16KB" (Context.l1_config ctx ()) @ audit "L2 1MB" (Context.l2_config ctx ())
  in
  [
    Report.table ~title:"X5: compact-model audit on a dense off-training grid"
      ~columns:
        [ "cache"; "component"; "leak R2"; "leak max err"; "delay R2"; "delay max err" ]
      ~rows;
    Report.note
      "The paper's three-term exponential (leakage) and exp+linear (delay) forms track \
       the circuit evaluator across the whole design grid.";
  ]
