(** Fitting the compact models to characterisation samples.

    Both model forms are {e separable}: for fixed exponents the
    remaining coefficients are linear, so the fitter profiles the
    exponents over a coarse grid with linear least squares inside, then
    refines all parameters with Levenberg–Marquardt.  This mirrors how
    one extracts the paper's equations from HSPICE data.

    Fit failure is treated as an expected input, not an exception:
    compact leakage models go ill-conditioned at corner regions, so
    each fit runs behind a fault boundary.  [Linsolve.Singular] and
    [Lm.Non_finite] escape as typed
    {!Nmcache_engine.Fault.Fault} values ([Singular_system] /
    [Non_finite], stage [fit.leak] / [fit.delay] / [fit.energy]); an
    LM fit that remains unconverged after its seeded multi-start
    retries still returns its model, recording a degraded-quality
    [Fit_diverged] fault.  Each fit also exposes a
    {!Nmcache_engine.Faultpoint} named after its stage, keyed by a
    deterministic fingerprint of the sample set. *)

type samples = (Nmcache_geometry.Component.knob * Nmcache_geometry.Component.summary) array
(** The output of {!Nmcache_geometry.Cache_model.characterize}. *)

val fit_leak : samples -> Model.leak * Model.quality
(** Fit P = A0 + A1·exp(a1·Vth) + A2·exp(a2·ToxÅ) to the samples'
    [leak_w] field.  Raises [Invalid_argument] on fewer than 6
    samples. *)

val fit_delay : samples -> Model.delay * Model.quality
(** Fit T = k0 + k1·exp(k3·Vth) + k2·ToxÅ to the samples' [delay]
    field.  Raises [Invalid_argument] on fewer than 5 samples. *)

val fit_energy : samples -> Model.energy * Model.quality
(** Linear fit of dynamic energy against ToxÅ. *)

val quality_leak : Model.leak -> samples -> Model.quality
val quality_delay : Model.delay -> samples -> Model.quality
(** Re-evaluate fit quality of a model against (possibly different)
    samples — used by the fit-audit experiment. *)
