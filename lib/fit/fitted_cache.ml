module Component = Nmcache_geometry.Component
module Cache_model = Nmcache_geometry.Cache_model
module Tech = Nmcache_device.Tech
module Minimize = Nmcache_numerics.Minimize

type component_model = {
  kind : Component.kind;
  leak : Model.leak;
  leak_quality : Model.quality;
  delay : Model.delay;
  delay_quality : Model.quality;
  energy : Model.energy;
  energy_quality : Model.quality;
}

type t = {
  circuit : Cache_model.t;
  models : component_model array; (* indexed by Component.kind_index *)
  samples : Fitter.samples array; (* raw characterisation data, same index *)
  vth_range : float * float; (* the (Vth, Tox) box the fits saw; *)
  tox_range : float * float; (* evaluation outside it is a fault   *)
}

let characterize_and_fit ?(vth_steps = 6) ?(tox_steps = 4) ?vth_range ?tox_range
    circuit =
  let tech = Cache_model.tech circuit in
  let vth_lo, vth_hi =
    Option.value vth_range ~default:(tech.Tech.vth_min, tech.Tech.vth_max)
  in
  let tox_lo, tox_hi =
    Option.value tox_range ~default:(tech.Tech.tox_min, tech.Tech.tox_max)
  in
  if vth_hi <= vth_lo || tox_hi <= tox_lo then
    invalid_arg "Fitted_cache.characterize_and_fit: empty knob range";
  let vths = Minimize.linspace ~lo:vth_lo ~hi:vth_hi ~steps:vth_steps in
  let toxs = Minimize.linspace ~lo:tox_lo ~hi:tox_hi ~steps:tox_steps in
  let fit_kind kind =
    let kind_name = Component.kind_name kind in
    Nmcache_engine.Span.with_span
      ~attrs:[ ("component", Nmcache_engine.Json.String kind_name) ]
      ("fit:" ^ kind_name)
      (fun () ->
        let samples = Cache_model.characterize circuit kind ~vths ~toxs in
        let leak, leak_quality = Fitter.fit_leak samples in
        let delay, delay_quality = Fitter.fit_delay samples in
        let energy, energy_quality = Fitter.fit_energy samples in
        ( { kind; leak; leak_quality; delay; delay_quality; energy; energy_quality },
          samples ))
  in
  let fitted = List.map fit_kind Component.all_kinds in
  {
    circuit;
    models = Array.of_list (List.map fst fitted);
    samples = Array.of_list (List.map snd fitted);
    vth_range = (vth_lo, vth_hi);
    tox_range = (tox_lo, tox_hi);
  }

let circuit_model t = t.circuit
let component t kind = t.models.(Component.kind_index kind)
let components t = Array.to_list t.models
let samples t kind = t.samples.(Component.kind_index kind)
let vth_range t = t.vth_range
let tox_range t = t.tox_range

(* Compact models are pure extrapolation outside the characterised box
   — exp terms explode silently — so evaluation there is a typed fault,
   not a number.  The epsilon absorbs grid-endpoint float drift. *)
let check_domain t (k : Component.knob) =
  let inside (lo, hi) v =
    let eps = 1e-6 *. (hi -. lo) in
    v >= lo -. eps && v <= hi +. eps
  in
  if not (inside t.vth_range k.Component.vth && inside t.tox_range k.Component.tox)
  then begin
    let vlo, vhi = t.vth_range and tlo, thi = t.tox_range in
    Nmcache_engine.Fault.error ~kind:Nmcache_engine.Fault.Out_of_domain
      ~stage:"model.eval"
      (Printf.sprintf
         "knob (vth=%.4f V, tox=%.2f A) outside fitted range (%.4f-%.4f V, %.2f-%.2f A)"
         k.Component.vth
         (Nmcache_physics.Units.to_angstrom k.Component.tox)
         vlo vhi
         (Nmcache_physics.Units.to_angstrom tlo)
         (Nmcache_physics.Units.to_angstrom thi))
  end

let leak_of t kind (k : Component.knob) =
  check_domain t k;
  let m = component t kind in
  Model.eval_leak m.leak ~vth:k.Component.vth ~tox:k.Component.tox

let delay_of t kind (k : Component.knob) =
  check_domain t k;
  let m = component t kind in
  Model.eval_delay m.delay ~vth:k.Component.vth ~tox:k.Component.tox

let energy_of t kind (k : Component.knob) =
  check_domain t k;
  let m = component t kind in
  Model.eval_energy m.energy ~tox:k.Component.tox

type estimate = {
  access_time : float;
  leak_w : float;
  dyn_energy : float;
}

let eval t (a : Component.assignment) =
  List.fold_left
    (fun acc kind ->
      let k = Component.get a kind in
      {
        access_time = acc.access_time +. delay_of t kind k;
        leak_w = acc.leak_w +. leak_of t kind k;
        dyn_energy = acc.dyn_energy +. energy_of t kind k;
      })
    { access_time = 0.0; leak_w = 0.0; dyn_energy = 0.0 }
    Component.all_kinds

let exact t a = Cache_model.evaluate t.circuit a

let worst_quality t =
  Array.fold_left
    (fun acc m ->
      let pick (q : Model.quality) (acc : Model.quality) =
        if q.Model.r2 < acc.Model.r2 then q else acc
      in
      pick m.leak_quality (pick m.delay_quality acc))
    { Model.r2 = 1.0; max_rel = 0.0; rms_rel = 0.0 }
    t.models
