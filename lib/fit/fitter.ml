module Units = Nmcache_physics.Units
module Component = Nmcache_geometry.Component
module Matrix = Nmcache_numerics.Matrix
module Linsolve = Nmcache_numerics.Linsolve
module Lm = Nmcache_numerics.Lm
module Stats = Nmcache_numerics.Stats
module Minimize = Nmcache_numerics.Minimize
module Metrics = Nmcache_engine.Metrics
module Fault = Nmcache_engine.Fault
module Faultpoint = Nmcache_engine.Faultpoint
module Retry = Nmcache_engine.Retry
module Deadline = Nmcache_engine.Deadline

type samples = (Component.knob * Component.summary) array

(* A deterministic fingerprint of a sample set: enough to tell fits of
   different components/configs apart in fault-point keys and fault
   details, stable across runs and --jobs settings. *)
let samples_key (samples : samples) =
  let n = Array.length samples in
  if n = 0 then "n=0"
  else
    let (k0 : Component.knob), (s0 : Component.summary) = samples.(0) in
    let _, (sn : Component.summary) = samples.(n - 1) in
    Printf.sprintf "n=%d:vth0=%.3f:tox0=%.1f:leak0=%.4e:delayN=%.4e" n
      k0.Component.vth
      (Units.to_angstrom k0.Component.tox)
      s0.Component.leak_w sn.Component.delay

(* Fault boundary for one compact-model fit, now a retry boundary: the
   armed fault point fires first (chaos harness — per-attempt, so
   transient arms recover under retry), then numeric failures escaping
   the solvers are mapped into typed faults instead of raw exceptions.
   Retryable faults (injected, fit_diverged) get up to the policy's
   attempt budget with deterministic backoff before escaping. *)
let fit_boundary ~stage ~key f =
  Retry.run ~stage ~key (fun ~attempt ~last ->
      Faultpoint.hit ~attempt ~point:stage ~key ();
      try f ~attempt ~last with
      | Linsolve.Singular ->
        Fault.error ~kind:Fault.Singular_system ~stage
          ("linear system singular for samples " ^ key)
      | Lm.Non_finite msg ->
        Fault.error ~kind:Fault.Non_finite ~stage
          (Printf.sprintf "%s (samples %s)" msg key))

let check_model_finite ~stage ~key params =
  if not (List.for_all Float.is_finite params) then
    Fault.error ~kind:Fault.Non_finite ~stage
      ("fitted parameters non-finite for samples " ^ key)

(* One metrics sample per LM *attempt*: iteration count and final
   residual, labelled by which compact model was being fitted.  Fits
   are coarse (milliseconds), so the registry update is noise.  With
   retries armed, [lm.fits] counts attempts, not fit_leak/fit_delay
   calls. *)
let record_attempt ~model (result : Lm.result) =
  Metrics.incr "lm.fits";
  if result.Lm.converged then Metrics.incr "lm.converged";
  Metrics.observe "lm.iterations" (float_of_int result.Lm.iterations);
  Metrics.observe ("lm." ^ model ^ ".iterations") (float_of_int result.Lm.iterations);
  Metrics.observe ("lm." ^ model ^ ".residual") result.Lm.residual

let record_quality ~model (quality : Model.quality) =
  Metrics.observe ("fit." ^ model ^ ".r2") quality.Model.r2;
  Metrics.observe ("fit." ^ model ^ ".rms_rel") quality.Model.rms_rel

(* multi-start seed per retry attempt: attempt 1 keeps the canonical
   seed, later attempts shift it so each retry actually explores new
   starts *)
let retry_seed attempt = Int64.add 0x5EEDL (Int64.of_int (attempt - 1))

(* Divergence policy at the retry boundary.  A fit still unconverged
   after its internal multi-starts raises Fit_diverged — the retry
   boundary re-fits with a shifted multi-start seed, and exhaustion is
   counted as exhaustion (never as a recovery).  The first attempt's
   result is stashed so the caller can degrade gracefully when every
   attempt diverges: the *canonical first-attempt* model is recorded
   as a Fit_diverged casualty and returned, making a run whose retries
   never converge byte-identical (models, fault details, CSVs) to a
   run with retries disabled.  The raised detail quotes the canonical
   result for the same reason. *)
let settle_lm ~model ~key ~attempt ~first (result : Lm.result) =
  if result.Lm.converged then result
  else begin
    if attempt = 1 then first := Some result;
    let canonical = match !first with Some r -> r | None -> result in
    Fault.error ~kind:Fault.Fit_diverged ~stage:("fit." ^ model)
      (Printf.sprintf "unconverged after %d iterations, residual %.3e (samples %s)"
         canonical.Lm.iterations canonical.Lm.residual key)
  end

let unpack samples field =
  Array.map
    (fun ((k : Component.knob), (s : Component.summary)) ->
      (k.Component.vth, Units.to_angstrom k.Component.tox, field s))
    samples

(* Relative-error weights: leakage spans decades, and the optimiser
   cares about being right everywhere on the grid, not just at the
   leaky corner. *)
let weights ys = Array.map (fun y -> 1.0 /. Float.max (y *. y) 1e-60) ys

let quality_of ~actual ~predicted =
  {
    Model.r2 = Stats.r_squared ~actual ~predicted;
    max_rel = Stats.max_rel_error ~actual ~predicted;
    rms_rel = Stats.rms_rel_error ~actual ~predicted;
  }

(* --- leakage ------------------------------------------------------- *)

(* For fixed exponents the model is linear in (A0, A1, A2). *)
let leak_linear_fit pts ~alpha_v ~alpha_t =
  let rows =
    Array.map (fun (v, x, _) -> [| 1.0; Float.exp (alpha_v *. v); Float.exp (alpha_t *. x) |]) pts
  in
  let ys = Array.map (fun (_, _, y) -> y) pts in
  let a = Matrix.of_rows rows in
  let coef = Linsolve.lstsq_weighted a ys ~weights:(weights ys) in
  let predict (v, x, _) =
    coef.(0) +. (coef.(1) *. Float.exp (alpha_v *. v)) +. (coef.(2) *. Float.exp (alpha_t *. x))
  in
  let rel_err =
    Array.fold_left
      (fun acc ((_, _, y) as p) ->
        let e = (predict p -. y) /. Float.max (Float.abs y) 1e-30 in
        acc +. (e *. e))
      0.0 pts
  in
  (coef, rel_err)

let leak_eval theta (xi : float array) =
  theta.(0)
  +. (theta.(1) *. Float.exp (theta.(2) *. xi.(0)))
  +. (theta.(3) *. Float.exp (theta.(4) *. xi.(1)))

let fit_leak samples =
  if Array.length samples < 6 then invalid_arg "Fitter.fit_leak: too few samples";
  let key = samples_key samples in
  let pts = unpack samples (fun s -> s.Component.leak_w) in
  (* the exponent profile depends only on the samples — computed once
     and shared across retry attempts (lazy memoises exceptions too,
     and a Singular profile is not retryable anyway) *)
  let profile =
    lazy
      ((* profile the two exponents on a coarse grid *)
       let best = ref None in
       let alpha_vs = Minimize.linspace ~lo:(-40.0) ~hi:(-5.0) ~steps:35 in
       let alpha_ts = Minimize.linspace ~lo:(-2.4) ~hi:(-0.3) ~steps:21 in
       Array.iter
         (fun alpha_v ->
           Array.iter
             (fun alpha_t ->
               let coef, err = leak_linear_fit pts ~alpha_v ~alpha_t in
               match !best with
               | Some (_, _, _, e) when e <= err -> ()
               | _ -> best := Some (coef, alpha_v, alpha_t, err))
             alpha_ts)
         alpha_vs;
       match !best with Some b -> b | None -> assert false)
  in
  let first = ref None in
  let finish (result : Lm.result) =
    let theta = result.Lm.params in
    check_model_finite ~stage:"fit.leak" ~key (Array.to_list theta);
    let m =
      {
        Model.a0 = theta.(0);
        a1 = theta.(1);
        alpha_v = theta.(2);
        a2 = theta.(3);
        alpha_t = theta.(4);
      }
    in
    let actual = Array.map (fun (_, _, y) -> y) pts in
    let predicted =
      Array.map
        (fun ((k : Component.knob), _) ->
          Model.eval_leak m ~vth:k.Component.vth ~tox:k.Component.tox)
        samples
    in
    let quality = quality_of ~actual ~predicted in
    record_quality ~model:"leak" quality;
    (m, quality)
  in
  try
    fit_boundary ~stage:"fit.leak" ~key @@ fun ~attempt ~last:_ ->
    let coef, alpha_v, alpha_t, _ = Lazy.force profile in
    (* LM refinement on all five parameters, relative residuals *)
    let xs = Array.map (fun (v, x, y) -> [| v; x; y |]) pts in
    let ys_rel = Array.map (fun _ -> 1.0) pts in
    let f theta xi = leak_eval theta xi /. Float.max (Float.abs xi.(2)) 1e-30 in
    let init = [| coef.(0); coef.(1); alpha_v; coef.(2); alpha_t |] in
    let result =
      Lm.fit_robust
        ~check:(fun () -> Deadline.poll ~stage:"fit.leak")
        ~seed:(retry_seed attempt) ~f ~xs ~ys:ys_rel ~init ()
    in
    record_attempt ~model:"leak" result;
    finish (settle_lm ~model:"leak" ~key ~attempt ~first result)
  with Fault.Fault ({ kind = Fault.Fit_diverged; _ } as fault) when !first <> None ->
    (* every attempt diverged: degrade, don't fail — record the
       casualty and return the canonical first-attempt model *)
    Fault.record fault;
    finish (match !first with Some r -> r | None -> assert false)

let quality_leak m samples =
  let actual = Array.map (fun (_, (s : Component.summary)) -> s.Component.leak_w) samples in
  let predicted =
    Array.map
      (fun ((k : Component.knob), _) ->
        Model.eval_leak m ~vth:k.Component.vth ~tox:k.Component.tox)
      samples
  in
  quality_of ~actual ~predicted

(* --- delay --------------------------------------------------------- *)

let delay_linear_fit pts ~kappa_v =
  let rows = Array.map (fun (v, x, _) -> [| 1.0; Float.exp (kappa_v *. v); x |]) pts in
  let ys = Array.map (fun (_, _, y) -> y) pts in
  let a = Matrix.of_rows rows in
  let coef = Linsolve.lstsq_weighted a ys ~weights:(weights ys) in
  let predict (v, x, _) = coef.(0) +. (coef.(1) *. Float.exp (kappa_v *. v)) +. (coef.(2) *. x) in
  let rel_err =
    Array.fold_left
      (fun acc ((_, _, y) as p) ->
        let e = (predict p -. y) /. Float.max (Float.abs y) 1e-30 in
        acc +. (e *. e))
      0.0 pts
  in
  (coef, rel_err)

let delay_eval theta (xi : float array) =
  theta.(0) +. (theta.(1) *. Float.exp (theta.(2) *. xi.(0))) +. (theta.(3) *. xi.(1))

let fit_delay samples =
  if Array.length samples < 5 then invalid_arg "Fitter.fit_delay: too few samples";
  let key = samples_key samples in
  let pts = unpack samples (fun s -> s.Component.delay) in
  let profile =
    lazy
      (let best = ref None in
       let kappas = Minimize.linspace ~lo:0.2 ~hi:10.0 ~steps:49 in
       Array.iter
         (fun kappa_v ->
           let coef, err = delay_linear_fit pts ~kappa_v in
           match !best with
           | Some (_, _, e) when e <= err -> ()
           | _ -> best := Some (coef, kappa_v, err))
         kappas;
       match !best with Some b -> b | None -> assert false)
  in
  let first = ref None in
  let finish (result : Lm.result) =
    let theta = result.Lm.params in
    check_model_finite ~stage:"fit.delay" ~key (Array.to_list theta);
    let m = { Model.k0 = theta.(0); k1 = theta.(1); kappa_v = theta.(2); k2 = theta.(3) } in
    let actual = Array.map (fun (_, _, y) -> y) pts in
    let predicted =
      Array.map
        (fun ((k : Component.knob), _) ->
          Model.eval_delay m ~vth:k.Component.vth ~tox:k.Component.tox)
        samples
    in
    let quality = quality_of ~actual ~predicted in
    record_quality ~model:"delay" quality;
    (m, quality)
  in
  try
    fit_boundary ~stage:"fit.delay" ~key @@ fun ~attempt ~last:_ ->
    let coef, kappa_v, _ = Lazy.force profile in
    let xs = Array.map (fun (v, x, y) -> [| v; x; y |]) pts in
    let ys_rel = Array.map (fun _ -> 1.0) pts in
    let f theta xi = delay_eval theta xi /. Float.max (Float.abs xi.(2)) 1e-30 in
    let init = [| coef.(0); coef.(1); kappa_v; coef.(2) |] in
    let result =
      Lm.fit_robust
        ~check:(fun () -> Deadline.poll ~stage:"fit.delay")
        ~seed:(retry_seed attempt) ~f ~xs ~ys:ys_rel ~init ()
    in
    record_attempt ~model:"delay" result;
    finish (settle_lm ~model:"delay" ~key ~attempt ~first result)
  with Fault.Fault ({ kind = Fault.Fit_diverged; _ } as fault) when !first <> None ->
    Fault.record fault;
    finish (match !first with Some r -> r | None -> assert false)

let quality_delay m samples =
  let actual = Array.map (fun (_, (s : Component.summary)) -> s.Component.delay) samples in
  let predicted =
    Array.map
      (fun ((k : Component.knob), _) ->
        Model.eval_delay m ~vth:k.Component.vth ~tox:k.Component.tox)
      samples
  in
  quality_of ~actual ~predicted

(* --- dynamic energy ------------------------------------------------ *)

let fit_energy samples =
  if Array.length samples < 2 then invalid_arg "Fitter.fit_energy: too few samples";
  let key = samples_key samples in
  fit_boundary ~stage:"fit.energy" ~key @@ fun ~attempt:_ ~last:_ ->
  let pts = unpack samples (fun s -> s.Component.dyn_energy) in
  let rows = Array.map (fun (_, x, _) -> [| 1.0; x |]) pts in
  let ys = Array.map (fun (_, _, y) -> y) pts in
  let coef = Linsolve.lstsq (Matrix.of_rows rows) ys in
  check_model_finite ~stage:"fit.energy" ~key (Array.to_list coef);
  let m = { Model.e0 = coef.(0); e1 = coef.(1) } in
  let predicted =
    Array.map
      (fun ((k : Component.knob), _) -> Model.eval_energy m ~tox:k.Component.tox)
      samples
  in
  let quality = quality_of ~actual:ys ~predicted in
  Metrics.observe "fit.energy.r2" quality.Model.r2;
  (m, quality)
