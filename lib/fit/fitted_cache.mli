(** A cache whose four components have been characterised and fitted.

    This is the representation the paper's optimisations actually run
    on: closed-form per-component models, summed under the independence
    assumption of Section 3.  The underlying circuit model is retained
    so fit-audit experiments can compare against "HSPICE truth". *)

type component_model = {
  kind : Nmcache_geometry.Component.kind;
  leak : Model.leak;
  leak_quality : Model.quality;
  delay : Model.delay;
  delay_quality : Model.quality;
  energy : Model.energy;
  energy_quality : Model.quality;
}

type t

val characterize_and_fit :
  ?vth_steps:int ->
  ?tox_steps:int ->
  ?vth_range:float * float ->
  ?tox_range:float * float ->
  Nmcache_geometry.Cache_model.t ->
  t
(** Sweep each component over the knob ranges ([vth_steps]+1 ×
    [tox_steps]+1 points, defaults 6 and 4; ranges default to the
    technology's legal bounds) and fit the compact models.  This is
    the expensive step; everything downstream is closed-form.  The
    ranges are remembered: evaluating the fitted models outside them
    raises an [Out_of_domain] {!Nmcache_engine.Fault.Fault}.  Raises
    [Invalid_argument] on an empty range. *)

val circuit_model : t -> Nmcache_geometry.Cache_model.t
val component : t -> Nmcache_geometry.Component.kind -> component_model
val components : t -> component_model list

val samples : t -> Nmcache_geometry.Component.kind -> Fitter.samples
(** The raw characterisation samples one component's models were fitted
    to — retained so verification can re-evaluate the compact models
    against their own training data ({!Fitter.quality_leak} /
    {!Fitter.quality_delay} residual bounds). *)

val vth_range : t -> float * float
val tox_range : t -> float * float
(** The (Vth [V], Tox [m]) box the fits were characterised over. *)

val check_domain : t -> Nmcache_geometry.Component.knob -> unit
(** Raise an [Out_of_domain] {!Nmcache_engine.Fault.Fault} (stage
    [model.eval]) if the knob lies outside the fitted box, beyond a
    1e-6-of-range epsilon that absorbs grid-endpoint float drift.
    Called by every fitted evaluation below. *)

val leak_of : t -> Nmcache_geometry.Component.kind -> Nmcache_geometry.Component.knob -> float
(** Fitted leakage of one component [W]. *)

val delay_of : t -> Nmcache_geometry.Component.kind -> Nmcache_geometry.Component.knob -> float
(** Fitted delay contribution of one component [s]. *)

val energy_of : t -> Nmcache_geometry.Component.kind -> Nmcache_geometry.Component.knob -> float
(** Fitted dynamic energy of one component [J]. *)

type estimate = {
  access_time : float;  (** Σ fitted delays [s] *)
  leak_w : float;       (** Σ fitted leakage [W] *)
  dyn_energy : float;   (** Σ fitted dynamic energy per access [J] *)
}

val eval : t -> Nmcache_geometry.Component.assignment -> estimate
(** Closed-form evaluation of a full assignment. *)

val exact : t -> Nmcache_geometry.Component.assignment -> Nmcache_geometry.Cache_model.report
(** Ground-truth circuit-model evaluation (for audits). *)

val worst_quality : t -> Model.quality
(** The worst (leak or delay) fit quality over all components — a quick
    health indicator; experiments assert R² stays high. *)
