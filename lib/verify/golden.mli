(** Golden regression gates: canonical experiment outputs snapshotted
    on disk and byte-compared on every verify run.

    Each golden case renders one experiment on the {e quick} context
    (short traces, coarse grids — deterministic and fast) through
    {!Core.Report.render_csv} and diffs it byte-for-byte against the
    snapshot under the golden directory ([test/golden/<id>.quick.csv]
    in-tree).  Any numeric drift — a model change, a refactoring that
    reorders floating-point sums, a parallelism leak — fails the byte
    diff before it can silently rewrite EXPERIMENTS.md.

    Intentional changes regenerate snapshots with
    [ppcache verify golden --update-golden]; the new files ride along
    in the same commit as the change that moved them, so the diff is
    reviewed like any other code. *)

type case = {
  id : string;            (** snapshot stem: [<id>.quick.csv] *)
  describe : string;
  render : Core.Context.t -> string;  (** canonical CSV, quick context *)
}

val cases : case list
(** The canonical experiments: [fig1] (Figure 1 curves), [schemes]
    (Scheme I/II/III table), [l2sweep] (T2 L2-sizing table). *)

val path : dir:string -> case -> string

val check : dir:string -> Core.Context.t -> case -> Check.t
(** Render the case and byte-compare with its snapshot.  Fails (with a
    first-divergence diagnostic) on mismatch, and with a pointer at
    [--update-golden] when the snapshot is missing. *)

val update : dir:string -> Core.Context.t -> case -> Check.t
(** (Re)write the snapshot; the returned check records whether the
    file changed. *)

val run : ?update:bool -> dir:string -> Core.Context.t -> unit -> Check.t list
(** All {!cases} through {!check} (or {!update}). *)
