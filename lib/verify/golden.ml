module Report = Core.Report

type case = {
  id : string;
  describe : string;
  render : Core.Context.t -> string;
}

let cases =
  [
    {
      id = "fig1";
      describe = "Figure 1: fixed-Vth vs fixed-Tox leakage/delay curves";
      render = (fun ctx -> Report.render_csv (Core.Single_cache.figure1 ctx));
    };
    {
      id = "schemes";
      describe = "T1: Scheme I/II/III minimum leakage vs delay budget";
      render = (fun ctx -> Report.render_csv (Core.Single_cache.scheme_table ctx));
    };
    {
      id = "l2sweep";
      describe = "T2: L2 sizing, one (Vth, Tox) pair per L2";
      render = (fun ctx -> Report.render_csv (Core.Two_level.l2_single_pair ctx));
    };
  ]

let path ~dir case = Filename.concat dir (case.id ^ ".quick.csv")

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file p contents =
  let oc = open_out_bin p in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* line/column of the first differing byte, for an actionable failure
   message without dumping whole CSVs into the report *)
let first_divergence expected actual =
  let n = min (String.length expected) (String.length actual) in
  let i = ref 0 in
  while !i < n && expected.[!i] = actual.[!i] do incr i done;
  let line = ref 1 and col = ref 1 in
  for j = 0 to !i - 1 do
    if expected.[j] = '\n' then begin incr line; col := 1 end else incr col
  done;
  let excerpt s =
    if !i >= String.length s then "<end of file>"
    else
      let stop = try String.index_from s !i '\n' with Not_found -> String.length s in
      String.sub s !i (min 40 (stop - !i))
  in
  Printf.sprintf "first divergence at line %d, column %d: expected %S, got %S" !line !col
    (excerpt expected) (excerpt actual)

let name case = "golden." ^ case.id

let check ~dir ctx case =
  let p = path ~dir case in
  if not (Sys.file_exists p) then
    Check.fail ~name:(name case)
      (Printf.sprintf "missing snapshot %s — generate it with --update-golden" p)
  else
    let expected = read_file p in
    let actual = case.render ctx in
    if String.equal expected actual then
      Check.pass ~name:(name case)
        (Printf.sprintf "%s matches %s (%d bytes)" case.describe p
           (String.length actual))
    else
      Check.fail ~name:(name case)
        (Printf.sprintf "%s differs from %s (%d vs %d bytes): %s" case.describe p
           (String.length actual) (String.length expected)
           (first_divergence expected actual))

let update ~dir ctx case =
  let p = path ~dir case in
  let actual = case.render ctx in
  let changed =
    (not (Sys.file_exists p)) || not (String.equal (read_file p) actual)
  in
  write_file p actual;
  Check.pass ~name:(name case)
    (Printf.sprintf "%s %s (%d bytes)" p
       (if changed then "updated" else "unchanged")
       (String.length actual))

let run ?update:(do_update = false) ~dir ctx () =
  Check.group ~name:"golden" @@ fun () ->
  let one = if do_update then update ~dir ctx else check ~dir ctx in
  List.map one cases
