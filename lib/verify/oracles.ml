module Units = Nmcache_physics.Units
module Component = Nmcache_geometry.Component
module Fitted_cache = Nmcache_fit.Fitted_cache
module Fitter = Nmcache_fit.Fitter
module Model = Nmcache_fit.Model
module Grid = Nmcache_opt.Grid
module Scheme = Nmcache_opt.Scheme
module Anneal = Nmcache_opt.Anneal
module Cache = Nmcache_cachesim.Cache
module Mattson = Nmcache_cachesim.Mattson
module Replacement = Nmcache_cachesim.Replacement
module Stats = Nmcache_cachesim.Stats
module Gen = Nmcache_workload.Gen
module Access = Nmcache_workload.Access
module Registry = Nmcache_workload.Registry
module Trace = Nmcache_cachesim.Trace
module Stream_trace = Nmcache_cachesim.Stream_trace
module Wstream = Nmcache_workload.Stream
module Context = Core.Context

(* ------------------------------------------------------------------ *)
(* Oracle 1: exhaustive grid enumeration vs the scheme optimisers      *)

(* The documented tolerances.  The DP rounds component delays UP into
   bins, so it can be pessimistic but never beat the true optimum; the
   annealer is stochastic-but-seeded, so it gets a looser one-sided
   bound.  Exhaustive searches (II, III) must agree exactly. *)
let dp_slack = 1.02
let anneal_slack = 1.05
let exact_tol = 1e-9

(* per-component fitted leak/delay over the downsampled grid, the
   shared substrate of reference and production searches (the oracle
   tests the *search*, not the models — the fit oracle tests those) *)
let tables fitted knobs =
  let eval f =
    Array.of_list
      (List.map (fun kind -> Array.map (fun k -> f fitted kind k) knobs) Component.all_kinds)
  in
  (eval Fitted_cache.leak_of, eval Fitted_cache.delay_of)

let sum4 t i0 i1 i2 i3 = t.(0).(i0) +. t.(1).(i1) +. t.(2).(i2) +. t.(3).(i3)

(* brute-force minimum leakage under the budget, per scheme structure;
   n^4 on the downsampled grid is a few 10k sums *)
let brute_force (leak, delay) ~scheme ~delay_budget =
  let n = Array.length leak.(0) in
  let best = ref None in
  let consider i0 i1 i2 i3 =
    if sum4 delay i0 i1 i2 i3 <= delay_budget then begin
      let l = sum4 leak i0 i1 i2 i3 in
      match !best with Some b when b <= l -> () | _ -> best := Some l
    end
  in
  (match scheme with
  | Scheme.Uniform -> for i = 0 to n - 1 do consider i i i i done
  | Scheme.Split ->
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        consider i j j j
      done
    done
  | Scheme.Independent ->
    for i0 = 0 to n - 1 do
      for i1 = 0 to n - 1 do
        for i2 = 0 to n - 1 do
          for i3 = 0 to n - 1 do
            consider i0 i1 i2 i3
          done
        done
      done
    done);
  !best

let budget_fractions = [ 0.1; 0.3; 0.5; 0.8 ]

let scheme ctx =
  Check.group ~name:"oracle.scheme" @@ fun () ->
  let fitted = Context.fitted ctx (Context.l1_config ctx ()) in
  let grid = Grid.subsample ctx.Context.grid ~vths:4 ~toxs:3 in
  let knobs = Grid.knobs grid in
  let t = tables fitted knobs in
  let fast = Scheme.fastest_access_time fitted ~grid in
  let slow = Scheme.slowest_access_time fitted ~grid in
  List.concat_map
    (fun frac ->
      let budget = fast +. (frac *. (slow -. fast)) in
      let scheme_checks s =
        let name what =
          Printf.sprintf "oracle.scheme.%s.%s@%.1f" what (Scheme.name s) frac
        in
        match
          (brute_force t ~scheme:s ~delay_budget:budget,
           Scheme.minimize_leakage fitted ~grid ~scheme:s ~delay_budget:budget)
        with
        | None, None -> [ Check.pass ~name:(name "brute-vs-opt") "both infeasible" ]
        | Some b, None ->
          [ Check.fail ~name:(name "brute-vs-opt")
              (Printf.sprintf "optimizer infeasible, brute force found %.6g W" b) ]
        | None, Some r ->
          [ Check.fail ~name:(name "brute-vs-opt")
              (Printf.sprintf "optimizer found %.6g W on a brute-infeasible budget"
                 r.Scheme.leak_w) ]
        | Some b, Some r ->
          let budget_ok =
            Check.check ~name:(name "budget")
              (r.Scheme.access_time <= budget *. (1.0 +. exact_tol))
              (Printf.sprintf "access %.6g s within budget %.6g s" r.Scheme.access_time
                 budget)
          in
          let agree =
            match s with
            | Scheme.Independent ->
              (* DP: delay discretisation may cost up to dp_slack, but a
                 result *below* the enumerated optimum is a search bug *)
              Check.check ~name:(name "brute-vs-dp")
                (r.Scheme.leak_w >= b *. (1.0 -. exact_tol)
                && r.Scheme.leak_w <= b *. dp_slack)
                (Printf.sprintf "dp %.6g W vs brute %.6g W (tol [1, %.2f])"
                   r.Scheme.leak_w b dp_slack)
            | Scheme.Split | Scheme.Uniform ->
              Check.within ~name:(name "brute-vs-exhaustive") ~value:r.Scheme.leak_w
                ~reference:b ~rel_tol:exact_tol
          in
          [ agree; budget_ok ]
      in
      let anneal_checks =
        let name what = Printf.sprintf "oracle.scheme.%s.anneal@%.1f" what frac in
        match brute_force t ~scheme:Scheme.Independent ~delay_budget:budget with
        | None -> []
        | Some b ->
          let r = Anneal.minimize_leakage fitted ~grid ~delay_budget:budget () in
          [
            Check.check ~name:(name "feasible") r.Anneal.feasible
              (Printf.sprintf "best feasible state found after %d evaluations"
                 r.Anneal.evaluations);
            Check.check ~name:(name "brute-vs")
              (r.Anneal.leak_w >= b *. (1.0 -. exact_tol)
              && r.Anneal.leak_w <= b *. anneal_slack)
              (Printf.sprintf "anneal %.6g W vs brute %.6g W (tol [1, %.2f])"
                 r.Anneal.leak_w b anneal_slack);
            Check.check ~name:(name "budget")
              (r.Anneal.access_time <= budget *. (1.0 +. exact_tol))
              (Printf.sprintf "access %.6g s within budget %.6g s" r.Anneal.access_time
                 budget);
          ]
      in
      List.concat_map scheme_checks Scheme.all @ anneal_checks)
    budget_fractions

(* ------------------------------------------------------------------ *)
(* Oracle 2: Mattson one-pass curves vs direct cache simulation        *)

(* Trace length: long enough to exercise compaction and steady state,
   short enough that verify stays interactive. *)
let mattson_trace_len ctx = min ctx.Context.n_sim 60_000

let capacities_blocks = [| 16; 64; 256; 1024 |]

(* fully-associative LRU divergence tolerance for 8-way set-associative
   caches: absolute on the miss rate, because the claim "excellent
   approximation for >= 8 ways" is an absolute-error claim *)
let setassoc_abs_tol = 0.03

let simulate_policy trace ~block ~capacity_blocks ~assoc ~policy =
  let cache =
    Cache.create ~size_bytes:(capacity_blocks * block) ~assoc ~block_bytes:block ~policy ()
  in
  Array.iter (fun (a : Access.t) -> ignore (Cache.access cache a.Access.addr ~write:a.Access.write)) trace;
  let st = Cache.stats cache in
  (st.Stats.misses, Stats.miss_rate st)

let mattson ctx =
  Check.group ~name:"oracle.mattson" @@ fun () ->
  let block = ctx.Context.block_bytes in
  let n = mattson_trace_len ctx in
  List.concat_map
    (fun workload ->
      let trace = Gen.take (Registry.build ~seed:ctx.Context.seed workload) n in
      let profiler = Mattson.create ~block_bytes:block () in
      Array.iter (fun (a : Access.t) -> Mattson.access profiler a.Access.addr) trace;
      Array.to_list capacities_blocks
      |> List.concat_map (fun cap ->
             let m_misses = Mattson.misses_at profiler ~capacity_blocks:cap in
             let m_rate = Mattson.miss_rate_at profiler ~capacity_blocks:cap in
             let exact =
               let misses, _ =
                 simulate_policy trace ~block ~capacity_blocks:cap ~assoc:cap
                   ~policy:Replacement.Lru
               in
               Check.check
                 ~name:(Printf.sprintf "oracle.mattson.fullassoc-lru.%s.%dblk" workload cap)
                 (misses = m_misses)
                 (Printf.sprintf "direct %d misses vs mattson %d over %d accesses" misses
                    m_misses n)
             in
             let approx =
               List.map
                 (fun policy ->
                   let _, rate =
                     simulate_policy trace ~block ~capacity_blocks:cap ~assoc:8 ~policy
                   in
                   let diff = Float.abs (rate -. m_rate) in
                   Check.check
                     ~name:
                       (Printf.sprintf "oracle.mattson.8way-%s.%s.%dblk"
                          (Replacement.name policy) workload cap)
                     (diff <= setassoc_abs_tol)
                     (Printf.sprintf "direct %.4f vs mattson %.4f (|diff| %.4f <= %.2f)"
                        rate m_rate diff setassoc_abs_tol))
                 [ Replacement.Lru; Replacement.Fifo; Replacement.Plru ]
             in
             exact :: approx))
    Registry.headline

(* ------------------------------------------------------------------ *)
(* Oracle 3: compact models vs their raw characterisation samples      *)

let min_r2 = 0.90
let max_rel_bound = 0.60
let quality_repro_tol = 1e-9

let fit ctx =
  Check.group ~name:"oracle.fit" @@ fun () ->
  List.concat_map
    (fun (level, config) ->
      let fitted = Context.fitted ctx config in
      List.concat_map
        (fun (cm : Fitted_cache.component_model) ->
          let kind = Component.kind_name cm.Fitted_cache.kind in
          let samples = Fitted_cache.samples fitted cm.Fitted_cache.kind in
          let name what = Printf.sprintf "oracle.fit.%s.%s.%s" level kind what in
          let per (label, recomputed, (stored : Model.quality)) =
            [
              (* re-evaluating the model over the raw samples must land
                 exactly on the quality the fitter reported — a drifted
                 fast path would show up here first *)
              Check.within ~name:(name (label ^ ".r2-reproduced"))
                ~value:recomputed.Model.r2 ~reference:stored.Model.r2
                ~rel_tol:quality_repro_tol;
              Check.check
                ~name:(name (label ^ ".r2-bound"))
                (recomputed.Model.r2 >= min_r2)
                (Printf.sprintf "r2 %.4f >= %.2f over %d samples" recomputed.Model.r2
                   min_r2 (Array.length samples));
              Check.check
                ~name:(name (label ^ ".max-rel-bound"))
                (recomputed.Model.max_rel <= max_rel_bound)
                (Printf.sprintf "max relative residual %.4f <= %.2f"
                   recomputed.Model.max_rel max_rel_bound);
            ]
          in
          List.concat_map per
            [
              ("leak", Fitter.quality_leak cm.Fitted_cache.leak samples,
               cm.Fitted_cache.leak_quality);
              ("delay", Fitter.quality_delay cm.Fitted_cache.delay samples,
               cm.Fitted_cache.delay_quality);
            ])
        (Fitted_cache.components fitted))
    [ ("l1", Context.l1_config ctx ()); ("l2", Context.l2_config ctx ()) ]

(* ------------------------------------------------------------------ *)
(* Oracle 4: profile-derived miss curves vs direct simulation          *)

module Missrate = Nmcache_workload.Missrate
module Profile = Nmcache_workload.Profile
module Metrics = Nmcache_engine.Metrics

(* the derivation layer inherits the Mattson-vs-direct tolerance: its
   set-associative binomial correction must stay inside the same
   absolute band the fully-associative approximation is held to *)
let profile_abs_tol = setassoc_abs_tol

(* direct measured simulation with the same warmup discipline the
   profiles use: unmeasured first half, stats reset at the boundary *)
let direct_l1_measured ~workload ~seed ~block ~size_bytes ~assoc ~n =
  let gen = Registry.build ~seed workload in
  let c = Cache.create ~size_bytes ~assoc ~block_bytes:block ~policy:Replacement.Lru () in
  let warm = int_of_float (Profile.warmup_fraction *. float_of_int n) in
  let feed (a : Access.t) = ignore (Cache.access c a.Access.addr ~write:a.Access.write) in
  Gen.iter gen warm feed;
  Cache.reset_stats c;
  Gen.iter gen (n - warm) feed;
  let st = Cache.stats c in
  (st.Stats.misses, Stats.miss_rate st)

let profile ctx =
  Check.group ~name:"oracle.profile" @@ fun () ->
  let block = ctx.Context.block_bytes in
  let n = mattson_trace_len ctx in
  let seed = ctx.Context.seed in
  let sized =
    List.concat_map
      (fun workload ->
        let prof = Profile.raw ~block ~seed ~workload ~n () in
        (* exactness: fully-associative LRU derivation must equal the
           direct simulation miss-for-miss, warmup included *)
        let exact =
          List.map
            (fun cap ->
              let direct, _ =
                direct_l1_measured ~workload ~seed ~block ~size_bytes:(cap * block)
                  ~assoc:cap ~n
              in
              let derived = Profile.misses_at prof ~capacity_blocks:cap in
              Check.check
                ~name:(Printf.sprintf "oracle.profile.fullassoc.%s.%dblk" workload cap)
                (direct = derived)
                (Printf.sprintf "direct %d misses vs derived %d over %d measured accesses"
                   direct derived prof.Profile.accesses))
            [ 64; 256 ]
        in
        (* the binomial set-associative correction behind the derived
           L1 sweep, against direct set-associative LRU simulation *)
        let corrected =
          List.concat_map
            (fun assoc ->
              List.map
                (fun size_bytes ->
                  let _, direct_rate =
                    direct_l1_measured ~workload ~seed ~block ~size_bytes ~assoc ~n
                  in
                  let derived =
                    Profile.setassoc_miss_rate prof
                      ~capacity_blocks:(size_bytes / block) ~assoc
                  in
                  let diff = Float.abs (derived -. direct_rate) in
                  Check.check
                    ~name:
                      (Printf.sprintf "oracle.profile.%dway.%s.%dKB" assoc workload
                         (size_bytes / 1024))
                    (diff <= profile_abs_tol)
                    (Printf.sprintf "direct %.4f vs derived %.4f (|diff| %.4f <= %.2f)"
                       direct_rate derived diff profile_abs_tol))
                [ 4 * 1024; 16 * 1024; 64 * 1024 ])
            [ 4; 8 ]
        in
        (* the profile-backed l2_curve must reproduce the legacy
           "L1-filter + Mattson fold" pass float-for-float — the
           identity the committed goldens rely on *)
        let l2_sizes = [| 256 * 1024; 1024 * 1024; 4 * 1024 * 1024 |] in
        let curve_equiv =
          let l1_size = ctx.Context.l1_size in
          let derived =
            Missrate.l2_curve ~seed ~block ~workload ~l1_size ~l2_sizes ~n ()
          in
          let gen = Registry.build ~seed workload in
          let l1 =
            Cache.create ~size_bytes:l1_size ~assoc:4 ~block_bytes:block
              ~policy:Replacement.Lru ()
          in
          let profiler = Mattson.create ~block_bytes:block () in
          let feed (a : Access.t) =
            let o = Cache.access l1 a.Access.addr ~write:a.Access.write in
            if not o.Cache.hit then Mattson.access profiler a.Access.addr
          in
          let warm = int_of_float (Profile.warmup_fraction *. float_of_int n) in
          Mattson.set_measuring profiler false;
          Gen.iter gen warm feed;
          Cache.reset_stats l1;
          Mattson.set_measuring profiler true;
          Gen.iter gen (n - warm) feed;
          let caps = Array.map (fun s -> max 1 (s / block)) l2_sizes in
          let legacy = Mattson.miss_ratio_curve profiler ~capacities:caps in
          let legacy_l1 = Stats.miss_rate (Cache.stats l1) in
          [
            Check.check
              ~name:(Printf.sprintf "oracle.profile.l2curve-identity.%s" workload)
              (derived.Missrate.l2_local_rates = legacy
              && derived.Missrate.l1_miss_rate = legacy_l1)
              (Printf.sprintf "derived curve == legacy single-pass curve (l1 %.6f)"
                 legacy_l1);
          ]
        in
        exact @ corrected @ curve_equiv)
      Registry.headline
  in
  (* traversal accounting: an L1×L2 grid must cost exactly one measured
     traversal per (workload, L1 size) and zero per-point simulations.
     A seed distinct from every other caller keeps the memo tables cold
     regardless of check ordering. *)
  let accounting =
    let seed = Int64.add seed 7919L in
    let workloads = [ "spec2000-mix"; "tpcc" ] in
    let l1_sizes = [| 8 * 1024; 16 * 1024 |] in
    let l2_sizes = [| 256 * 1024; 1024 * 1024; 4 * 1024 * 1024 |] in
    let sims0 = Metrics.counter_value "cachesim.simulations" in
    let profs0 = Metrics.counter_value "cachesim.mattson_curves" in
    let _ = Missrate.grid ~seed ~workloads ~l1_sizes ~l2_sizes ~n () in
    (* re-deriving at different L2 capacities must not traverse again *)
    let _ =
      Missrate.grid ~seed ~workloads ~l1_sizes ~l2_sizes:[| 512 * 1024; 2 * 1024 * 1024 |]
        ~n ()
    in
    let sims = Metrics.counter_value "cachesim.simulations" - sims0 in
    let profs = Metrics.counter_value "cachesim.mattson_curves" - profs0 in
    let expected = List.length workloads * Array.length l1_sizes in
    [
      Check.check ~name:"oracle.profile.grid-traversals"
        (profs = expected)
        (Printf.sprintf "%d workloads x %d L1 sizes x %d L2 sizes -> %d traversals \
                         (expected %d, L2 re-query free)"
           (List.length workloads) (Array.length l1_sizes) (Array.length l2_sizes) profs
           expected);
      Check.check ~name:"oracle.profile.grid-no-pointwise-sims" (sims = 0)
        (Printf.sprintf "%d per-point simulations during the grid (expected 0)" sims);
    ]
  in
  sized @ accounting

(* ------------------------------------------------------------------ *)
(* Oracle 5: streamed vs materialised trace processing                 *)

(* The streaming engine's whole contract is "chunking changes nothing":
   every consumer fed through Stream_trace must produce results equal
   to the same consumer over the materialised trace, at any chunk
   size.  Probed chunk sizes straddle the interesting boundaries: a
   degenerate-small chunk that never divides the trace evenly, and one
   that does. *)
let stream_chunk_sizes = [ 7; 4096 ]

let stream ctx =
  Check.group ~name:"oracle.stream" @@ fun () ->
  let block = ctx.Context.block_bytes in
  let n = mattson_trace_len ctx in
  let entries_of workload =
    Array.map
      (fun (a : Access.t) -> { Trace.addr = a.Access.addr; write = a.Access.write })
      (Gen.take (Registry.build ~seed:ctx.Context.seed workload) n)
  in
  let replay_stats trace_stream =
    let c =
      Cache.create ~size_bytes:(64 * block) ~assoc:4 ~block_bytes:block
        ~policy:Replacement.Lru ()
    in
    let c, _ = Stream_trace.replay trace_stream c in
    Cache.stats c
  in
  let equivalence =
    List.concat_map
      (fun workload ->
        let entries = entries_of workload in
        let trace = Trace.of_entries entries in
        let ref_stats = Trace.analyze trace in
        let ref_cache =
          let c =
            Cache.create ~size_bytes:(64 * block) ~assoc:4 ~block_bytes:block
              ~policy:Replacement.Lru ()
          in
          Trace.replay trace c;
          Cache.stats c
        in
        List.concat_map
          (fun cs ->
            let stream () = Stream_trace.of_trace ~chunk_size:cs ~name:workload trace in
            [
              Check.check
                ~name:(Printf.sprintf "oracle.stream.analyze.%s.chunk%d" workload cs)
                (Stream_trace.analyze (stream ()) = ref_stats)
                (Printf.sprintf "streamed analyze equals materialised over %d accesses" n);
              Check.check
                ~name:(Printf.sprintf "oracle.stream.replay.%s.chunk%d" workload cs)
                (replay_stats (stream ()) = ref_cache)
                "streamed cache replay equals materialised";
            ])
          stream_chunk_sizes)
      Registry.headline
  in
  let simulate_equiv =
    (* the CLI-visible contract: --stream must not change a single bit
       of the reported rates *)
    let workload = List.hd Registry.headline in
    let l1_size = 32 * 1024 and l2_size = 256 * 1024 in
    let reference =
      Missrate.simulate ~block ~seed:ctx.Context.seed ~workload ~l1_size ~l2_size ~n ()
    in
    List.map
      (fun cs ->
        let stream =
          Wstream.of_workload ~chunk_size:cs ~seed:ctx.Context.seed ~workload ~n ()
        in
        let point = Missrate.simulate_stream ~block ~stream ~l1_size ~l2_size () in
        Check.check
          ~name:(Printf.sprintf "oracle.stream.simulate.%s.chunk%d" workload cs)
          (point = reference)
          (Printf.sprintf "streamed rates %.6f/%.6f/%.6f equal simulate's"
             point.Missrate.l1_miss point.Missrate.l2_local point.Missrate.l2_global))
      stream_chunk_sizes
  in
  let roundtrip =
    let workload = List.hd Registry.headline in
    let entries = entries_of workload in
    let path = Filename.temp_file "ppcache-oracle" ".pptrc" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let i = ref 0 in
        Stream_trace.write_file ~path ~name:workload ~chunk_size:1000
          ~next:(fun () ->
            let e = entries.(!i) in
            incr i;
            e)
          ~n ();
        let info = Stream_trace.file_info path in
        let got = ref [] in
        let got_n = Stream_trace.iter (Stream_trace.of_file ~chunk_size:777 path)
            (fun e -> got := e :: !got)
        in
        let got = Array.of_list (List.rev !got) in
        [
          Check.check ~name:"oracle.stream.pptrc-roundtrip"
            (got = entries && got_n = n)
            (Printf.sprintf "%d entries decode bit-exactly" n);
          Check.check ~name:"oracle.stream.pptrc-info"
            (info.Stream_trace.fi_entries = n
            && info.Stream_trace.fi_total = n
            && not info.Stream_trace.fi_dropped_tail)
            (Printf.sprintf "info: %d/%d entries in %d chunks, dropped_tail %b"
               info.Stream_trace.fi_entries info.Stream_trace.fi_total
               info.Stream_trace.fi_chunks info.Stream_trace.fi_dropped_tail);
        ])
  in
  let empty =
    [
      Check.check ~name:"oracle.stream.empty-zero-stats"
        (Stream_trace.analyze
           (Stream_trace.of_trace ~name:"empty" (Trace.of_entries [||]))
        = Trace.zero_stats)
        "empty stream analyzes to the defined zero_stats";
    ]
  in
  equivalence @ simulate_equiv @ roundtrip @ empty

let all ctx = scheme ctx @ mattson ctx @ fit ctx @ profile ctx @ stream ctx
