(** Differential oracles: independent reference implementations the
    production hot paths must agree with.

    Four cross-checks, each pairing an optimised implementation with a
    brute-force or first-principles reference:

    - {!scheme}: exhaustive (Vth, Tox)-grid enumeration on a
      downsampled grid vs the production optimisers — the Scheme II/III
      exhaustive searches must match the enumerated optimum exactly,
      the Scheme I dynamic program within its documented delay-rounding
      pessimism (≤ 2% above, never below), and the annealer within 5%
      above the optimum while meeting the budget;
    - {!mattson}: the one-pass stack-distance profiler vs direct
      {!Nmcache_cachesim.Cache} simulation — exact equality against
      fully-associative LRU at every probed capacity, bounded
      divergence against 8-way set-associative LRU/FIFO/PLRU (the
      approximation the miss-rate tables lean on);
    - {!fit}: the fitted compact models re-evaluated against the raw
      characterisation samples they were trained on — recomputed
      quality must reproduce the stored quality exactly and respect
      per-component residual bounds (R² ≥ 0.90, max relative residual
      ≤ 60%);
    - {!profile}: the profile-once derivation layer vs direct
      simulation — fully-associative derivations must match direct LRU
      miss-for-miss (warmup included), the binomial set-associative
      correction must stay within 0.03 absolute miss rate of direct
      4-/8-way LRU, the profile-backed L2 curve must reproduce the
      legacy single-pass fold float-for-float, and an L1×L2 grid must
      cost exactly one measured traversal per (workload, L1 size) as
      counted by the [cachesim.mattson_curves] /
      [cachesim.simulations] metrics;
    - {!stream}: the chunked streaming engine vs materialised traces —
      for every headline workload and probed chunk size, streamed
      analysis, cache replay and two-level simulation must equal the
      materialised results bit for bit, a PPTRC01 recording must
      round-trip entry-exactly (re-chunked on read), and an empty
      stream must analyze to the defined zero statistics.

    All checks are deterministic for a fixed context (seeded traces,
    fixed grids) and independent of [--jobs]. *)

val scheme : Core.Context.t -> Check.t list
val mattson : Core.Context.t -> Check.t list
val fit : Core.Context.t -> Check.t list
val profile : Core.Context.t -> Check.t list
val stream : Core.Context.t -> Check.t list

val all : Core.Context.t -> Check.t list
(** The five oracles, each behind its own {!Check.group} fault
    boundary, in the order above. *)
