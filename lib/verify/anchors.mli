(** Executable paper anchors: the qualitative claims of Bai et al.
    (DATE 2005) the reproduction must keep reproducing, rendered as a
    declarative checklist over the experiment layer.

    - {!schemes} (§4, T1): leakage ordering I ≤ II ≤ III at every
      feasible budget, II within a small factor of I everywhere
      ("only slightly behind"), III well above II at some mid budget,
      and every optimal Scheme I/II assignment keeps the cell array at
      least as conservative as the peripherals;
    - {!sensitivity} (§4, Figure 1): leakage responds more strongly to
      Tox than to Vth (largest Tox-sweep leak ratio beats the largest
      Vth-sweep ratio) while Vth buys the wider delay range — the
      paper's "fix Tox conservatively, tune Vth" rule;
    - {!l2_sizing} (§5, T2): the local L2 miss rate is non-increasing
      and the implied L2 hit-time budget non-decreasing in L2 size, and
      total leakage turns over — the best L2 sits strictly inside the
      swept range;
    - {!l1_sizing} (§5, T4): the smallest L1 minimises total leakage.

    Each anchor runs behind its own {!Check.group} fault boundary and
    is deterministic for a fixed context. *)

val schemes : Core.Context.t -> Check.t list
val sensitivity : Core.Context.t -> Check.t list
val l2_sizing : Core.Context.t -> Check.t list
val l1_sizing : Core.Context.t -> Check.t list

val all : Core.Context.t -> Check.t list
(** The four anchors, in the order above. *)
