module Fault = Nmcache_engine.Fault
module Json = Nmcache_engine.Json

type status = Pass | Fail | Crashed of Fault.t

type t = {
  name : string;
  status : status;
  detail : string;
}

let pass ~name detail = { name; status = Pass; detail }
let fail ~name detail = { name; status = Fail; detail }
let check ~name ok detail = if ok then pass ~name detail else fail ~name detail

let within ~name ~value ~reference ~rel_tol =
  let scale = Float.max (Float.abs reference) epsilon_float in
  let rel = Float.abs (value -. reference) /. scale in
  check ~name
    (Float.is_finite value && rel <= rel_tol)
    (Printf.sprintf "%.6g vs %.6g (rel %.2e, tol %.0e)" value reference rel rel_tol)

let group ~name f =
  match f () with
  | checks -> checks
  | exception exn ->
    let fault = Fault.of_exn ~stage:("verify." ^ name) exn in
    Fault.record fault;
    [ { name = name ^ ".crashed"; status = Crashed fault; detail = Fault.to_string fault } ]

let passed c = c.status = Pass
let all_passed = List.for_all passed

let status_label = function Pass -> "ok   " | Fail -> "FAIL " | Crashed _ -> "CRASH"

let render checks =
  let width =
    List.fold_left (fun acc c -> max acc (String.length c.name)) 0 checks
  in
  let lines =
    List.map
      (fun c ->
        Printf.sprintf "%s %-*s  %s" (status_label c.status) width c.name c.detail)
      checks
  in
  let count p = List.length (List.filter p checks) in
  let failed = count (fun c -> c.status = Fail) in
  let crashed = count (fun c -> match c.status with Crashed _ -> true | _ -> false) in
  String.concat "\n" lines
  ^ Printf.sprintf "\nverify: %d checks, %d failed, %d crashed\n" (List.length checks)
      failed crashed

let to_json checks =
  Json.List
    (List.map
       (fun c ->
         let base =
           [
             ("name", Json.String c.name);
             ( "status",
               Json.String
                 (match c.status with
                 | Pass -> "pass"
                 | Fail -> "fail"
                 | Crashed _ -> "crashed") );
             ("detail", Json.String c.detail);
           ]
         in
         match c.status with
         | Crashed fault -> Json.Obj (base @ [ ("fault", Fault.to_json fault) ])
         | Pass | Fail -> Json.Obj base)
       checks)
