module Scheme = Nmcache_opt.Scheme
module Context = Core.Context
module Single_cache = Core.Single_cache
module Two_level = Core.Two_level

let ps s = s *. 1e12
let mw w = w *. 1e3

(* T1 thresholds, with headroom over the measured values in
   EXPERIMENTS.md (II/I peaks at 1.12; III/II reaches 2.24 at mid
   budgets): "slightly behind" must stay under 1.25x, "well above"
   means at least 1.3x somewhere. *)
let ii_near_i_max = 1.25
let iii_above_ii_min = 1.3
let order_tol = 1e-9

(* the conservative-array observation needs a budget with slack to
   allocate: at the forced-fastest corner (every component pinned to
   its fastest knob) the optimum is degenerate and grid tie-breaks can
   order equal-delay knobs either way, so require >= 5% headroom over
   the all-fastest assignment before holding the claim *)
let conservative_min_slack = 1.05

let lookup results s = Option.join (List.assoc_opt s results)

let schemes ctx =
  Check.group ~name:"anchor.schemes" @@ fun () ->
  let fitted = Context.fitted ctx (Context.l1_config ctx ()) in
  let fastest = Scheme.fastest_access_time fitted ~grid:ctx.Context.grid in
  let rows = Single_cache.scheme_rows ctx () in
  let complete =
    List.filter_map
      (fun (r : Single_cache.scheme_row) ->
        match
          ( lookup r.Single_cache.results Scheme.Independent,
            lookup r.Single_cache.results Scheme.Split,
            lookup r.Single_cache.results Scheme.Uniform )
        with
        | Some i, Some ii, Some iii -> Some (r.Single_cache.budget, i, ii, iii)
        | _ -> None)
      rows
  in
  let some_rows =
    Check.check ~name:"anchor.schemes.feasible-budgets"
      (List.length complete >= 3)
      (Printf.sprintf "%d of %d budgets feasible under all three schemes"
         (List.length complete) (List.length rows))
  in
  let per (budget, i, ii, iii) =
    let name what = Printf.sprintf "anchor.schemes.%s@%.0fps" what (ps budget) in
    let li = i.Scheme.leak_w and lii = ii.Scheme.leak_w and liii = iii.Scheme.leak_w in
    [
      Check.check ~name:(name "ordering")
        (li <= lii *. (1.0 +. order_tol) && lii <= liii *. (1.0 +. order_tol))
        (Printf.sprintf "I %.3f <= II %.3f <= III %.3f mW" (mw li) (mw lii) (mw liii));
      Check.check ~name:(name "ii-near-i")
        (lii <= li *. ii_near_i_max)
        (Printf.sprintf "II/I = %.3f <= %.2f" (lii /. li) ii_near_i_max);
    ]
    @
    if budget < fastest *. conservative_min_slack then []
    else
      [
        Check.check ~name:(name "array-conservative")
          (Single_cache.array_is_conservative i.Scheme.assignment
          && Single_cache.array_is_conservative ii.Scheme.assignment)
          "cell array at least as conservative as every peripheral (I and II)";
      ]
  in
  let iii_gap =
    let best =
      List.fold_left
        (fun acc (_, _, ii, iii) ->
          Float.max acc (iii.Scheme.leak_w /. ii.Scheme.leak_w))
        0.0 complete
    in
    Check.check ~name:"anchor.schemes.iii-well-above-ii"
      (best >= iii_above_ii_min)
      (Printf.sprintf "max III/II over budgets = %.2f >= %.2f" best iii_above_ii_min)
  in
  (some_rows :: List.concat_map per complete) @ [ iii_gap ]

(* ------------------------------------------------------------------ *)

let span series = List.fold_left (fun (lo, hi) (x, _) -> (Float.min lo x, Float.max hi x))
    (Float.infinity, Float.neg_infinity) series

let leak_ratio series =
  let lo, hi =
    List.fold_left
      (fun (lo, hi) (_, y) -> (Float.min lo y, Float.max hi y))
      (Float.infinity, Float.neg_infinity) series
  in
  hi /. lo

let sensitivity ctx =
  Check.group ~name:"anchor.sensitivity" @@ fun () ->
  match Single_cache.figure1_series ctx with
  | [ (_, tox10); (_, tox14); (_, vth200); (_, vth400) ] ->
    (* first two series sweep Vth at fixed Tox, last two sweep Tox at
       fixed Vth — the paper's Figure 1 layout *)
    let vth_sweep_ratio = Float.max (leak_ratio tox10) (leak_ratio tox14) in
    let tox_sweep_ratio = Float.max (leak_ratio vth200) (leak_ratio vth400) in
    let delay_span s = let lo, hi = span s in hi -. lo in
    let vth_delay = Float.max (delay_span tox10) (delay_span tox14) in
    let tox_delay = Float.max (delay_span vth200) (delay_span vth400) in
    [
      Check.check ~name:"anchor.sensitivity.tox-dominates-leakage"
        (tox_sweep_ratio > vth_sweep_ratio)
        (Printf.sprintf "max Tox-sweep leak ratio %.1fx > max Vth-sweep %.1fx"
           tox_sweep_ratio vth_sweep_ratio);
      Check.check ~name:"anchor.sensitivity.vth-wider-delay-range"
        (vth_delay > tox_delay)
        (Printf.sprintf "Vth sweep spans %.0f ps of delay vs %.0f ps for Tox" vth_delay
           tox_delay);
    ]
  | series ->
    [
      Check.fail ~name:"anchor.sensitivity.series-shape"
        (Printf.sprintf "expected 4 Figure-1 series, got %d" (List.length series));
    ]

(* ------------------------------------------------------------------ *)

let rec pairwise_ok f = function
  | a :: (b :: _ as rest) -> f a b && pairwise_ok f rest
  | [ _ ] | [] -> true

let l2_sizing ctx =
  Check.group ~name:"anchor.l2-sizing" @@ fun () ->
  let sweep = Two_level.l2_sweep ctx ~scheme:Scheme.Uniform () in
  let rows = sweep.Two_level.rows in
  let feasible =
    List.filter (fun (r : Two_level.l2_row) -> r.Two_level.result <> None) rows
  in
  let budgets =
    List.filter_map (fun (r : Two_level.l2_row) -> r.Two_level.t_l2_budget) rows
  in
  let m2_mono =
    Check.check ~name:"anchor.l2-sizing.m2-non-increasing"
      (pairwise_ok
         (fun (a : Two_level.l2_row) b -> a.Two_level.m2 >= b.Two_level.m2 -. 1e-12)
         rows)
      (Printf.sprintf "local L2 miss rate falls %.1f%% -> %.1f%% over %d sizes"
         (100. *. (List.hd rows).Two_level.m2)
         (100. *. (List.nth rows (List.length rows - 1)).Two_level.m2)
         (List.length rows))
  in
  let budget_mono =
    Check.check ~name:"anchor.l2-sizing.budget-non-decreasing"
      (pairwise_ok (fun a b -> a <= b +. 1e-15) budgets)
      (Printf.sprintf "implied L2 hit-time budget grows %.0f -> %.0f ps"
         (ps (List.hd budgets))
         (ps (List.nth budgets (List.length budgets - 1))))
  in
  let turnover =
    let max_size =
      List.fold_left (fun acc (r : Two_level.l2_row) -> max acc r.Two_level.l2_size) 0 rows
    in
    match Two_level.best_l2_size sweep with
    | None -> Check.fail ~name:"anchor.l2-sizing.turnover" "no feasible L2 size"
    | Some best ->
      Check.check ~name:"anchor.l2-sizing.turnover" (best < max_size)
        (Printf.sprintf "best L2 = %d KB, strictly below the %d KB sweep ceiling"
           (best / 1024) (max_size / 1024))
  in
  let some_feasible =
    Check.check ~name:"anchor.l2-sizing.feasible-sizes"
      (List.length feasible >= 2)
      (Printf.sprintf "%d of %d sizes meet the AMAT target" (List.length feasible)
         (List.length rows))
  in
  [ some_feasible; m2_mono; budget_mono; turnover ]

let l1_sizing ctx =
  Check.group ~name:"anchor.l1-sizing" @@ fun () ->
  let sweep = Two_level.l1_sweep_rows ctx () in
  let rows = sweep.Two_level.l1_rows in
  let min_size =
    List.fold_left
      (fun acc (r : Two_level.l1_row) -> min acc r.Two_level.l1_size)
      max_int rows
  in
  let m1_mono =
    Check.check ~name:"anchor.l1-sizing.m1-non-increasing"
      (pairwise_ok
         (fun (a : Two_level.l1_row) b -> a.Two_level.m1 >= b.Two_level.m1 -. 1e-12)
         rows)
      (Printf.sprintf "local L1 miss rate falls %.1f%% -> %.1f%% over %d sizes"
         (100. *. (List.hd rows).Two_level.m1)
         (100. *. (List.nth rows (List.length rows - 1)).Two_level.m1)
         (List.length rows))
  in
  let smallest_wins =
    match Two_level.best_l1_size sweep with
    | None -> Check.fail ~name:"anchor.l1-sizing.smallest-wins" "no feasible L1 size"
    | Some best ->
      Check.check ~name:"anchor.l1-sizing.smallest-wins" (best = min_size)
        (Printf.sprintf "best L1 = %d KB (smallest swept = %d KB)" (best / 1024)
           (min_size / 1024))
  in
  [ m1_mono; smallest_wins ]

let all ctx = schemes ctx @ sensitivity ctx @ l2_sizing ctx @ l1_sizing ctx
