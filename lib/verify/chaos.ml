(* Seeded chaos campaign: deterministically compose the failure
   machinery the codebase already owns — Faultpoint arms, SIGKILL via
   the re-exec child pattern, torn store tails, concurrent socket
   clients, deadline expiries — and assert the invariants that define
   it: no hang, structured errors only, the store never loses a live
   record, restart+replay byte-identical to a clean run.

   Determinism is the design constraint, exactly as for Faultpoint:
   every scenario parameter (query mixes, kill indices, record counts,
   compaction kill steps) derives from a splitmix64 stream seeded by
   the campaign seed, children SIGKILL *themselves* at seeded points
   (never "after T milliseconds"), and check details carry only seeded
   values — so a campaign report is byte-identical across runs and at
   any [--jobs]. *)

module Engine = Nmcache_engine
module Service = Core.Service
module Json = Engine.Json
module Store = Engine.Store
module Server = Engine.Server
module Faultpoint = Engine.Faultpoint
module Deadline = Engine.Deadline
module Pool = Engine.Pool

let child_env = "PPCACHE_CHAOS_CHILD"

(* --- seeded PRNG ------------------------------------------------------ *)

(* splitmix64: exact 64-bit arithmetic, stable across platforms *)
let mk_rng seed =
  let state = ref (Int64.of_int ((seed + 1) * 0x9E3779B9)) in
  fun bound ->
    let open Int64 in
    state := add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = logxor z (shift_right_logical z 31) in
    to_int (rem (logand z max_int) (of_int bound))

(* --- filesystem helpers ---------------------------------------------- *)

let tmpdir () =
  let f = Filename.temp_file "ppchaos" "" in
  Sys.remove f;
  Unix.mkdir f 0o755;
  f

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let append_raw path s =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

(* --- query builders --------------------------------------------------- *)

let amat_query ~id ~m1c =
  Printf.sprintf
    {|{"id":%S,"op":"amat","t_l1_ps":500,"t_l2_ps":2000,"t_mem_ps":60000,"m1":0.0%d,"m2":0.3}|}
    id
    ((m1c mod 9) + 1)

let curve_query ~id ~l1 =
  Printf.sprintf
    {|{"id":%S,"op":"miss_curve","workload":"tpcc","l1_kb":%d,"l2_kb":[64],"n":20000}|}
    id l1

(* --- response predicates ---------------------------------------------- *)

let parse_response line =
  match Json.parse line with Ok j -> Some j | Error _ -> None

let is_structured line =
  match parse_response line with
  | None -> false
  | Some j ->
    Json.member "serve_schema_version" j <> None
    && (Json.member "result" j <> None || Json.member "error" j <> None)

let error_kind line =
  match parse_response line with
  | None -> None
  | Some j ->
    Option.bind (Json.member "error" j) (fun e ->
        Option.bind (Json.member "kind" e) Json.to_str)

(* --- child modes ------------------------------------------------------- *)

(* Child specs (the re-exec pattern: OCaml 5 forbids fork after a
   domain exists, so chaos children are fresh processes dispatched in
   the binary's main before anything else runs):

   - "serve:<store_dir>:<query_file>:<out_file>:<kill_after>" — answer
     the query file line by line (settle, write, flush), SIGKILLing
     ourselves immediately after response number <kill_after>.
   - "compact:<store_dir>:<kill_step>" — open the store and compact,
     SIGKILLing ourselves at compaction step <kill_step> (a step
     beyond the last one lets compaction complete; exit 0). *)

let self_kill () = Unix.kill (Unix.getpid ()) Sys.sigkill

let child_main spec =
  match String.split_on_char ':' spec with
  | [ "serve"; store_dir; query_file; out_file; kill_after ] ->
    let kill_after = int_of_string kill_after in
    let store = Store.open_ ~dir:store_dir in
    let ctx = Core.Context.quick () in
    let service = Service.create ~store ~ctx ~queue:8 ~jobs:1 () in
    let ic = open_in query_file in
    let oc = open_out_bin out_file in
    let answered = ref 0 in
    (try
       while true do
         let line = input_line ic in
         let resp, settle = Service.handle_line service line in
         settle ();
         output_string oc resp;
         output_char oc '\n';
         flush oc;
         incr answered;
         if !answered = kill_after then self_kill ()
       done
     with End_of_file -> ());
    close_out oc;
    close_in ic;
    Store.close store
  | [ "compact"; store_dir; kill_step ] ->
    let kill_step = int_of_string kill_step in
    let store = Store.open_ ~dir:store_dir in
    let _ =
      Store.compact ~on_step:(fun i -> if i = kill_step then self_kill ()) store
    in
    Store.close store
  | _ -> failwith ("bad " ^ child_env ^ " spec: " ^ spec)

(* Spawn ourselves in child mode and wait, bounded: "no hang" is an
   invariant, so a child that outlives the watchdog is killed and
   reported as a failure, never waited on forever. *)
type child_exit = Killed | Exited of int | Hung

let run_child spec =
  let env =
    Array.append
      (Array.of_list
         (List.filter
            (fun kv ->
              not
                (String.length kv >= 15
                && String.sub kv 0 15 = "PPCACHE_FAULTS="))
            (Array.to_list (Unix.environment ()))))
      [| child_env ^ "=" ^ spec |]
  in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin Unix.stderr Unix.stderr
  in
  let deadline_polls = 1200 (* x 50 ms = 60 s watchdog *) in
  let rec wait polls =
    if polls = 0 then begin
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid);
      Hung
    end
    else
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        Unix.sleepf 0.05;
        wait (polls - 1)
      | _, Unix.WSIGNALED s when s = Sys.sigkill -> Killed
      | _, Unix.WEXITED c -> Exited c
      | _, _ -> Exited (-1)
  in
  wait deadline_polls

(* --- scenario: poison + deadline -------------------------------------- *)

(* Faultpoint-armed service: a seeded fraction of requests is poisoned
   at [serve.request]; every response must stay structured, poisoned
   requests must surface as [injected] errors, and a zero-budget
   deadline must surface as [timed_out] — all counts pure functions of
   the seed. *)
let scenario_poison ~seed ctx =
  let name suffix = Printf.sprintf "chaos.seed%d.poison.%s" seed suffix in
  let rng = mk_rng seed in
  let prev_spec = Faultpoint.spec () in
  let pct = 20 + rng 50 in
  let fseed = rng 10_000 in
  let arm = Printf.sprintf "serve.request:0.%02d,seed:%d" pct fseed in
  (match Faultpoint.configure arm with
  | Ok () -> ()
  | Error e -> failwith ("chaos: bad faultpoint spec: " ^ e));
  Fun.protect
    ~finally:(fun () ->
      match prev_spec with
      | Some s -> ignore (Faultpoint.configure s)
      | None -> Faultpoint.clear ())
    (fun () ->
      let service = Service.create ~ctx ~queue:8 ~jobs:1 () in
      let n = 12 + rng 8 in
      let lines =
        List.init n (fun i ->
            if i mod 5 = 4 then Printf.sprintf "{malformed json %d" i
            else amat_query ~id:(Printf.sprintf "s%d-q%d" seed i) ~m1c:(rng 9))
      in
      let responses =
        List.map
          (fun line ->
            let resp, settle = Service.handle_line service line in
            settle ();
            resp)
          lines
      in
      let structured = List.for_all is_structured responses in
      let count k =
        List.length
          (List.filter (fun r -> error_kind r = Some k) responses)
      in
      let injected = count "injected" in
      let bad = count "bad_request" in
      let open_ = count "circuit_open" in
      let ok =
        List.length
          (List.filter
             (fun r ->
               match parse_response r with
               | Some j -> Json.member "result" j <> None
               | None -> false)
             responses)
      in
      (* a zero-budget deadline around a simulating query must settle
         as a structured timed_out error, not a crash — probed with the
         poison disarmed (or the draw could answer [injected] first)
         and a fresh service (or a tripped breaker could answer
         [circuit_open]); the outer protect still restores the caller's
         spec *)
      Faultpoint.clear ();
      let timed_service = Service.create ~ctx ~queue:8 ~jobs:1 () in
      (* a seed-unique trace length, so the profile can never be served
         from the context's memo (a cached curve needs no simulation
         and would answer before any deadline poll) *)
      let timed_resp, timed_settle =
        Deadline.with_budget ~budget_s:0.0 (fun () ->
            Service.handle_line timed_service
              (Printf.sprintf
                 {|{"id":"s%d-deadline","op":"miss_curve","workload":"tpcc","l1_kb":4,"l2_kb":[64],"n":%d}|}
                 seed
                 (30_000 + (seed * 1_000))))
      in
      timed_settle ();
      let timed_out = error_kind timed_resp = Some "timed_out" in
      [
        Check.check ~name:(name "structured") structured
          (Printf.sprintf "%d/%d responses structured under %d%% poison" ok n
             pct);
        Check.check ~name:(name "accounted")
          (ok + injected + bad + open_ = n)
          (Printf.sprintf
             "%d ok + %d injected + %d bad_request + %d circuit_open = %d lines"
             ok injected bad open_ n);
        Check.check ~name:(name "deadline") timed_out
          "zero-budget miss_curve settles as timed_out";
      ])

(* --- scenario: SIGKILL mid-serve, restart, replay ---------------------- *)

let scenario_kill_serve ~seed ctx =
  let name suffix = Printf.sprintf "chaos.seed%d.kill_serve.%s" seed suffix in
  let rng = mk_rng (seed + 101) in
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let n = 6 + rng 6 in
      let lines =
        List.init n (fun i ->
            let id = Printf.sprintf "s%d-k%d" seed i in
            if i = 0 || i = n - 1 then curve_query ~id ~l1:(4 * (1 + (i mod 2)))
            else amat_query ~id ~m1c:(rng 9))
      in
      let kill_after = 1 + rng (n - 1) in
      (* clean reference: a fresh store, every line answered *)
      let ref_store = Store.open_ ~dir:(Filename.concat dir "ref") in
      let ref_service = Service.create ~store:ref_store ~ctx ~queue:8 ~jobs:1 () in
      let reference =
        List.map
          (fun line ->
            let resp, settle = Service.handle_line ref_service line in
            settle ();
            resp)
          lines
      in
      Store.close ref_store;
      (* child: same lines against its own store, killed after
         [kill_after] responses *)
      let store_dir = Filename.concat dir "st" in
      let qfile = Filename.concat dir "queries.ndjson" in
      let out = Filename.concat dir "child.out" in
      write_file qfile (String.concat "" (List.map (fun l -> l ^ "\n") lines));
      let spec =
        Printf.sprintf "serve:%s:%s:%s:%d" store_dir qfile out kill_after
      in
      let exit = run_child spec in
      let child_lines =
        if Sys.file_exists out then
          String.split_on_char '\n' (In_channel.with_open_bin out In_channel.input_all)
          |> List.filter (fun l -> l <> "")
        else []
      in
      let prefix_ok =
        List.length child_lines = kill_after
        && List.for_all2
             (fun a b -> String.equal a b)
             child_lines
             (List.filteri (fun i _ -> i < kill_after) reference)
      in
      (* restart on the killed store: the stale lock is broken, the
         torn tail (if any) dropped, and the full replay must be
         byte-identical to the clean reference *)
      let store2 = Store.open_ ~dir:store_dir in
      let service2 = Service.create ~store:store2 ~ctx ~queue:8 ~jobs:1 () in
      let restarted =
        List.map
          (fun line ->
            let resp, settle = Service.handle_line service2 line in
            settle ();
            resp)
          lines
      in
      Store.close store2;
      [
        Check.check ~name:(name "killed") (exit = Killed)
          (Printf.sprintf "child SIGKILLed itself after %d/%d responses"
             kill_after n);
        Check.check ~name:(name "prefix") prefix_ok
          (Printf.sprintf "%d child responses = reference prefix" kill_after);
        Check.check ~name:(name "restart")
          (List.for_all2 String.equal reference restarted)
          (Printf.sprintf "restart replay of %d lines byte-identical" n);
      ])

(* --- scenario: torn tails + dead records + compaction ------------------ *)

let scenario_torn_store ~seed _ctx =
  let name suffix = Printf.sprintf "chaos.seed%d.torn_store.%s" seed suffix in
  let rng = mk_rng (seed + 202) in
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let live = 3 + rng 5 in
      let dead = 1 + rng 3 in
      let key i = Printf.sprintf "k%d" i in
      let value i = Printf.sprintf "value-%d-%d" seed i in
      let store = Store.open_ ~dir in
      for i = 0 to live - 1 do
        Store.add store ~ns:"chaos" ~key:(key i) (value i)
      done;
      let path = Store.path store in
      Store.close store;
      (* dead records: duplicates of live keys with a different payload
         — first write wins, so these must never surface *)
      for d = 0 to dead - 1 do
        append_raw path
          (Store.encode_record ~ns:"chaos" ~key:(key (d mod live))
             ~value:(Marshal.to_string "shadowed" []))
      done;
      (* torn tail: a seeded prefix of one more record *)
      let torn =
        Store.encode_record ~ns:"chaos" ~key:"torn" ~value:(Marshal.to_string "torn" [])
      in
      let cut = 1 + rng (String.length torn - 1) in
      append_raw path (String.sub torn 0 cut);
      let store = Store.open_ ~dir in
      let all_live () =
        List.for_all
          (fun i ->
            Store.lookup store ~ns:"chaos" ~key:(key i) = Some (value i))
          (List.init live Fun.id)
      in
      let survived = all_live () in
      let tail_dropped = Store.dropped_tail store in
      let dead_seen = Store.dead_records store = dead in
      let stats = Store.compact store in
      let after_compact =
        all_live ()
        && Store.dead_records store = 0
        && Store.dead_bytes store = 0
        && stats.Store.reclaimed_records = dead
        && Store.segment_version store = 2
      in
      Store.close store;
      (* reopen the compacted segment *)
      let store = Store.open_ ~dir in
      let reopened =
        Store.entries store = live
        && Store.segment_version store = 2
        && (not (Store.dropped_tail store))
        && List.for_all
             (fun i ->
               Store.lookup store ~ns:"chaos" ~key:(key i) = Some (value i))
             (List.init live Fun.id)
      in
      Store.close store;
      [
        Check.check ~name:(name "replay")
          (survived && tail_dropped && dead_seen)
          (Printf.sprintf
             "%d live kept, %d dead shadowed, torn tail (%d bytes) dropped"
             live dead cut);
        Check.check ~name:(name "compact") after_compact
          (Printf.sprintf "compaction reclaimed %d dead, changed no get" dead);
        Check.check ~name:(name "reopen") reopened
          (Printf.sprintf "PPSTOR02 reopen: %d live records" live);
      ])

(* --- scenario: SIGKILL mid-compaction ---------------------------------- *)

let scenario_kill_compact ~seed ctx =
  let name suffix = Printf.sprintf "chaos.seed%d.kill_compact.%s" seed suffix in
  let rng = mk_rng (seed + 303) in
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let live = 3 + rng 5 in
      let dead = 1 + rng 3 in
      let key i = Printf.sprintf "k%d" i in
      let value i = Printf.sprintf "value-%d-%d" seed i in
      let store_dir = Filename.concat dir "st" in
      let store = Store.open_ ~dir:store_dir in
      for i = 0 to live - 1 do
        Store.add store ~ns:"chaos" ~key:(key i) (value i)
      done;
      let path = Store.path store in
      Store.close store;
      for d = 0 to dead - 1 do
        append_raw path
          (Store.encode_record ~ns:"chaos" ~key:(key (d mod live))
             ~value:(Marshal.to_string "shadowed" []))
      done;
      (* kill at any compaction step: before the tmp, after any record,
         after the fsync, or just after the rename *)
      let step = rng (live + 3) in
      let exit = run_child (Printf.sprintf "compact:%s:%d" store_dir step) in
      let exit_ok =
        match exit with Killed -> true | Exited 0 -> true | _ -> false
      in
      (* whatever the kill point: reopen must see every live record
         with its first-written value, and a serve query must answer *)
      let store = Store.open_ ~dir:store_dir in
      let lossless =
        Store.entries store = live
        && List.for_all
             (fun i ->
               Store.lookup store ~ns:"chaos" ~key:(key i) = Some (value i))
             (List.init live Fun.id)
      in
      let service = Service.create ~store ~ctx ~queue:8 ~jobs:1 () in
      let resp, settle =
        Service.handle_line service
          (amat_query ~id:(Printf.sprintf "s%d-post" seed) ~m1c:3)
      in
      settle ();
      let serve_ok = is_structured resp && error_kind resp = None in
      (* a clean compaction afterwards still reclaims whatever the
         killed one left behind *)
      let _ = Store.compact store in
      let after =
        Store.dead_records store = 0
        && Store.entries store = live
        && Store.segment_version store = 2
      in
      Store.close store;
      [
        Check.check ~name:(name "exit") exit_ok
          (Printf.sprintf "child killed at compaction step %d/%d" step
             (live + 2));
        Check.check ~name:(name "lossless") lossless
          (Printf.sprintf "%d live records survive (%d dead on disk)" live dead);
        Check.check ~name:(name "serve") serve_ok "post-kill serve answers";
        Check.check ~name:(name "recompact") after
          "clean compaction converges to a dead-free PPSTOR02";
      ])

(* --- scenario: concurrent socket clients + shedding --------------------- *)

let scenario_concurrent ~seed ctx =
  let name suffix = Printf.sprintf "chaos.seed%d.concurrent.%s" seed suffix in
  let rng = mk_rng (seed + 404) in
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let clients = 3 in
      let per_client = 3 + rng 4 in
      let slices =
        List.init clients (fun c ->
            List.init per_client (fun i ->
                amat_query
                  ~id:(Printf.sprintf "s%d-c%d-q%d" seed c i)
                  ~m1c:(rng 9)))
      in
      (* solo reference per slice: amat is stateless, so a fresh
         service answers exactly what the shared server must *)
      let reference =
        List.map
          (fun slice ->
            let service = Service.create ~ctx ~queue:8 ~jobs:1 () in
            List.map
              (fun line ->
                let resp, settle = Service.handle_line service line in
                settle ();
                resp)
              slice)
          slices
      in
      let sock_path = Filename.concat dir "chaos.sock" in
      let service = Service.create ~ctx ~queue:8 ~jobs:1 () in
      Server.reset_drain ();
      let server =
        Thread.create
          (fun () ->
            Server.serve_unix_socket ~queue:8 ~max_conns:clients
              ~write_timeout:10. ~pool:Pool.sequential
              ~handler:(Service.handler service)
              ~crash_response:Service.crash_response
              ~overlong_response:Service.overlong_response
              ~shed_response:Service.shed_response ~path:sock_path ())
          ()
      in
      let rec await_sock tries =
        if tries = 0 then failwith "chaos: socket never appeared";
        if not (Sys.file_exists sock_path) then begin
          Unix.sleepf 0.02;
          await_sock (tries - 1)
        end
      in
      await_sock 500;
      (* phase barrier: every client connects and completes one
         round-trip (so all connection slots are provably occupied),
         then the main thread probes the shed path, then clients drain
         their remaining lines *)
      let m = Mutex.create () in
      let cv = Condition.create () in
      let ready = ref 0 in
      let go = ref false in
      let results = Array.make clients [] in
      let client c slice =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX sock_path);
        let oc = Unix.out_channel_of_descr fd in
        let ic = Unix.in_channel_of_descr fd in
        let first, rest =
          match slice with x :: r -> (x, r) | [] -> assert false
        in
        output_string oc (first ^ "\n");
        flush oc;
        let r0 = input_line ic in
        Mutex.protect m (fun () ->
            incr ready;
            Condition.broadcast cv;
            while not !go do
              Condition.wait cv m
            done);
        List.iter (fun l -> output_string oc (l ^ "\n")) rest;
        flush oc;
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        let rec read_all acc =
          match input_line ic with
          | l -> read_all (l :: acc)
          | exception End_of_file -> List.rev acc
        in
        let others = read_all [] in
        results.(c) <- r0 :: others;
        close_in_noerr ic
      in
      let threads =
        List.mapi (fun c slice -> Thread.create (fun () -> client c slice) ()) slices
      in
      Mutex.protect m (fun () ->
          while !ready < clients do
            Condition.wait cv m
          done);
      (* all slots held: one more connection must be shed with exactly
         one overloaded line *)
      let shed_line =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX sock_path);
        let ic = Unix.in_channel_of_descr fd in
        let line = try Some (input_line ic) with End_of_file -> None in
        let eof = try ignore (input_line ic); false with End_of_file -> true in
        close_in_noerr ic;
        (line, eof)
      in
      Mutex.protect m (fun () ->
          go := true;
          Condition.broadcast cv);
      List.iter Thread.join threads;
      Server.request_drain ();
      Thread.join server;
      Server.reset_drain ();
      let identical =
        List.for_all2
          (fun c ref_slice ->
            List.length results.(c) = List.length ref_slice
            && List.for_all2 String.equal results.(c) ref_slice)
          (List.init clients Fun.id)
          reference
      in
      let shed_ok =
        match shed_line with
        | Some l, true -> String.equal l (Service.shed_response ())
        | _ -> false
      in
      [
        Check.check ~name:(name "streams") identical
          (Printf.sprintf
             "%d concurrent clients x %d lines byte-identical to solo runs"
             clients per_client);
        Check.check ~name:(name "shed") shed_ok
          "connection beyond max_conns shed with one overloaded line";
      ])

(* --- the campaign ------------------------------------------------------ *)

let scenarios =
  [|
    ("poison", scenario_poison);
    ("kill_serve", scenario_kill_serve);
    ("torn_store", scenario_torn_store);
    ("kill_compact", scenario_kill_compact);
    ("concurrent", scenario_concurrent);
  |]

let campaign ?(seeds = 10) ctx =
  if seeds < 1 then invalid_arg "Chaos.campaign: seeds < 1";
  List.concat
    (List.init seeds (fun seed ->
         let label, scenario = scenarios.(seed mod Array.length scenarios) in
         Check.group
           ~name:(Printf.sprintf "chaos.seed%d.%s" seed label)
           (fun () -> scenario ~seed ctx)))
