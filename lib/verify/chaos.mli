(** Seeded chaos campaign: composed failure injection with
    deterministic verdicts.

    Each campaign seed drives one scenario family (round-robin by
    [seed mod 5]) with every parameter — query mixes, kill indices,
    dead-record counts, torn-tail cut points, compaction kill steps —
    drawn from a splitmix64 stream of that seed:

    - {b poison}: a {!Nmcache_engine.Faultpoint}-armed service under a
      seeded poison rate plus malformed lines and a zero-budget
      deadline — every response structured, every outcome accounted;
    - {b kill_serve}: a re-exec'd child server SIGKILLs itself
      mid-stream; its answered prefix must match a clean run, and a
      restart over its (possibly torn) store must replay the full
      stream byte-identically;
    - {b torn_store}: dead duplicate records and a torn tail appended
      raw to a store journal — first write wins, the tail drops,
      compaction reclaims without changing a single get;
    - {b kill_compact}: a child SIGKILLs itself at a seeded compaction
      step (before the tmp, mid-record, post-fsync, post-rename) — no
      live record is ever lost, and serve still answers;
    - {b concurrent}: simultaneous socket clients with a phase barrier
      holding every connection slot — per-client streams byte-identical
      to solo runs, and the connection beyond [max_conns] is shed with
      exactly one [overloaded] line.

    The invariants asserted are the serve/store contract: no hang
    (children run under a watchdog), structured errors only, the store
    never loses a live record, restart + replay is byte-identical.
    Check details carry only seeded values — never PIDs, paths or
    timings — so a campaign report is byte-identical across runs and
    at any [--jobs]. *)

val child_env : string
(** ["PPCACHE_CHAOS_CHILD"] — when set in the environment, the binary
    must call {!child_main} with its value before doing anything else
    (OCaml 5 forbids [fork] once a domain has been spawned, so chaos
    children are fresh re-execs of [Sys.executable_name]). *)

val child_main : string -> unit
(** Run one child mode and return (the caller exits 0):

    - ["serve:<store_dir>:<query_file>:<out_file>:<kill_after>"] —
      answer the query file line by line against the store, flushing
      per response, and SIGKILL ourselves immediately after response
      number [kill_after];
    - ["compact:<store_dir>:<kill_step>"] — compact the store,
      SIGKILLing ourselves at {!Nmcache_engine.Store.compact}'s
      [on_step = kill_step] (a step past the last lets compaction
      complete).

    Raises [Failure] on an unrecognised spec. *)

val campaign : ?seeds:int -> Core.Context.t -> Check.t list
(** Run [seeds] (default 10, >= 1) seeded scenarios — seed [s] runs
    scenario family [s mod 5] — and return their checks.  A scenario
    that raises is folded into a single crashed check by
    {!Check.group}; fault-injection and deadline state are restored
    even then, so a campaign never leaks configuration into later
    verify sections.  Raises [Invalid_argument] when [seeds < 1]. *)
