(** Verification checks: the atoms of [ppcache verify].

    A check is one executable claim — "the annealer matched the
    brute-force optimum within 5%", "m2 is non-increasing in L2 size" —
    with a deterministic name, a pass/fail/crashed status and a
    one-line detail that carries the measured numbers.  Groups of
    checks run behind a fault boundary: an exception inside a group
    does not abort the verify run, it records a typed
    {!Nmcache_engine.Fault} and settles the group as a single crashed
    check, so the report stays complete.

    Renderings are deterministic (no timestamps, canonical order from
    the callers), so a [--jobs 4] verify run prints byte-identically to
    a [--jobs 1] run — the CI gate diffs them. *)

type status = Pass | Fail | Crashed of Nmcache_engine.Fault.t

type t = {
  name : string;    (** dotted, stable: [oracle.scheme.brute-vs-dp.I] *)
  status : status;
  detail : string;  (** measured values / tolerance, deterministic text *)
}

val pass : name:string -> string -> t
val fail : name:string -> string -> t

val check : name:string -> bool -> string -> t
(** [check ~name ok detail] is {!pass} or {!fail} on [ok]. *)

val within : name:string -> value:float -> reference:float -> rel_tol:float -> t
(** Relative-agreement helper: passes when
    [|value - reference| <= rel_tol * max |reference| eps]; the detail
    records all three numbers. *)

val group : name:string -> (unit -> t list) -> t list
(** Run a check group behind a fault boundary.  An escaping exception
    is classified by {!Nmcache_engine.Fault.of_exn} (stage
    [verify.<name>]), recorded in the process-wide fault log, and
    returned as one [Crashed] check named [<name>.crashed]. *)

val passed : t -> bool
val all_passed : t list -> bool

val render : t list -> string
(** One aligned line per check ([ok] / [FAIL] / [CRASH]), then a
    [verify: N checks, N failed, N crashed] summary line. *)

val to_json : t list -> Nmcache_engine.Json.t
(** [[{name, status, detail, fault?}]] — embedded in
    {!Nmcache_engine.Obs.verify_report}. *)
