(** Named fault points with deterministic, seeded injection.

    Kernels declare where they can fail — [hit ~point ~key] at the top
    of a fit, a simulation, an anneal — and a chaos harness arms a
    subset of those points via a spec string ([PPCACHE_FAULTS], bench
    [--inject]).  An armed hit raises {!Fault.Fault} with kind
    [Injected], [stage = point] and [detail = key].

    Determinism is the design constraint: whether a hit fires is a pure
    function of [(seed, point, key)] — a hash draw, never global hit
    order — so a parallel run injects exactly the same faults as a
    sequential one and the surviving output stays byte-identical
    whatever [--jobs] is.

    Spec grammar (comma-separated entries):
    - [point]        — every hit of [point] fires;
    - [point:P]      — fires for the fraction [P] of keys selected by
                       the seeded hash draw (per-key, not per-hit);
    - [point=KEY]    — fires only when [key] equals [KEY] exactly;
    - [seed:N]       — seeds the hash draw (default 0).

    Example: [PPCACHE_FAULTS="experiment=schemes,fit.leak:0.25,seed:7"]. *)

val configure : string -> (unit, string) result
(** Parse a spec and arm it process-wide; [Error msg] leaves the
    previous configuration in place. *)

val configure_from_env : unit -> (bool, string) result
(** Arm from [$PPCACHE_FAULTS] if set and non-empty; [Ok true] when a
    spec was armed. *)

val clear : unit -> unit
(** Disarm every fault point. *)

val active : unit -> bool
val spec : unit -> string option

val should_fire : ?attempt:int -> point:string -> key:string -> unit -> bool
(** The injection decision, without raising — exposed for tests.

    [attempt] (default 1) is the {!Retry} attempt number evaluating the
    hit, and selects each arm's transience model: [Always] arms fire on
    every attempt (permanent faults a retry can never mask), [point=KEY]
    arms fire on attempt 1 only (targeted transients a retry boundary
    recovers), and [point:P] arms redraw per attempt — attempt [N > 1]
    draws with the effective key ["KEY#aN"], so attempt 1 stays
    byte-compatible with the attemptless draw. *)

val hit : ?attempt:int -> point:string -> key:string -> unit -> unit
(** Raise an [Injected] {!Fault.Fault} if [(point, key)] is armed and
    selected on this [attempt]; count it under [faults.injected].  A
    nop (one atomic load) when nothing is configured. *)

val draw : seed:int64 -> point:string -> key:string -> float
(** The underlying deterministic hash draw, uniform in [0, 1) — a pure
    function of its arguments, stable across platforms and domains.
    {!Retry} derives backoff jitter from it so chaos runs never consult
    a wall clock in the decision path. *)

val armed_seed : unit -> int64 option
(** The seed of the armed spec, if any ([seed:N], default 0). *)

val env_var : string
(** ["PPCACHE_FAULTS"]. *)
