(* Live progress events: an append-only NDJSON stream and/or a
   human-readable progress feed on stderr.

   Events never touch stdout — the byte-identity contract for result
   output holds at any [--jobs] with events enabled.  Under parallel
   execution the *arrival order* of slot_done events is scheduling-
   dependent, so each emitted line carries a sequence number assigned
   under the sink mutex: consumers order by [seq], not by wall clock,
   and the stream stays valid NDJSON because the mutex also makes each
   line a single atomic write.

   The module is off by default and costs one atomic load per
   [emit]-site check when disabled. *)

let schema_version = 1

type event =
  | Sweep_started of { name : string; total : int }
  | Slot_done of {
      name : string;
      index : int;
      completed : int;  (* slots finished in this fan-out, including this one *)
      total : int;
      memo_hits : int;  (* cumulative across the run, not per-slot *)
      faults : int;
      retries : int;
    }
  | Checkpoint_replayed of { dir : string; replayed : int }
  | Experiment_done of { id : string }
  | Chunk_done of {
      stream : string;  (* stream name *)
      index : int;      (* chunk index, 0-based *)
      entries : int;    (* entries in this chunk *)
    }
  | Conn_opened of { id : int }
  | Conn_closed of { id : int; requests : int }
  | Conn_shed of { id : int }

let to_json ~seq ev =
  (* each line is self-describing: an NDJSON stream has no envelope to
     carry the schema version, so every event repeats it *)
  let base kind fields =
    Json.Obj
      (("schema_version", Json.Int schema_version)
      :: ("seq", Json.Int seq)
      :: ("event", Json.String kind)
      :: fields)
  in
  match ev with
  | Sweep_started { name; total } ->
    base "sweep_started"
      [ ("name", Json.String name); ("total", Json.Int total) ]
  | Slot_done { name; index; completed; total; memo_hits; faults; retries } ->
    base "slot_done"
      [
        ("name", Json.String name);
        ("index", Json.Int index);
        ("done", Json.Int completed);
        ("total", Json.Int total);
        ("memo_hits", Json.Int memo_hits);
        ("faults", Json.Int faults);
        ("retries", Json.Int retries);
      ]
  | Checkpoint_replayed { dir; replayed } ->
    base "checkpoint_replayed"
      [ ("dir", Json.String dir); ("replayed", Json.Int replayed) ]
  | Experiment_done { id } -> base "experiment_done" [ ("id", Json.String id) ]
  | Chunk_done { stream; index; entries } ->
    base "chunk_done"
      [
        ("stream", Json.String stream);
        ("index", Json.Int index);
        ("entries", Json.Int entries);
      ]
  | Conn_opened { id } -> base "conn_opened" [ ("id", Json.Int id) ]
  | Conn_closed { id; requests } ->
    base "conn_closed" [ ("id", Json.Int id); ("requests", Json.Int requests) ]
  | Conn_shed { id } -> base "conn_shed" [ ("id", Json.Int id) ]

let render ev =
  match ev with
  | Sweep_started { name; total } ->
    Printf.sprintf "sweep %s: started (%d slots)" name total
  | Slot_done { name; completed; total; memo_hits; faults; retries; _ } ->
    Printf.sprintf "sweep %s: %d/%d done (memo %d, faults %d, retries %d)"
      name completed total memo_hits faults retries
  | Checkpoint_replayed { dir; replayed } ->
    Printf.sprintf "checkpoint %s: replayed %d slot(s)" dir replayed
  | Experiment_done { id } -> Printf.sprintf "experiment %s: done" id
  | Chunk_done { stream; index; entries } ->
    Printf.sprintf "stream %s: chunk %d done (%d entries)" stream index entries
  | Conn_opened { id } -> Printf.sprintf "conn %d: opened" id
  | Conn_closed { id; requests } ->
    Printf.sprintf "conn %d: closed (%d requests)" id requests
  | Conn_shed { id } -> Printf.sprintf "conn %d: shed (at capacity)" id

(* ---- sink ------------------------------------------------------------ *)

let mutex = Mutex.create ()
let armed = Atomic.make false (* cheap disabled-path check *)
let seq = ref 0
let sink : out_channel option ref = ref None
let progress = ref false

let refresh_armed () = Atomic.set armed (!sink <> None || !progress)

let set_file path =
  Mutex.protect mutex (fun () ->
      (match !sink with Some oc -> close_out_noerr oc | None -> ());
      sink := Some (open_out path);
      refresh_armed ())

let set_progress on =
  Mutex.protect mutex (fun () ->
      progress := on;
      refresh_armed ())

let close () =
  Mutex.protect mutex (fun () ->
      (match !sink with Some oc -> close_out_noerr oc | None -> ());
      sink := None;
      progress := false;
      seq := 0;
      Atomic.set armed false)

let enabled () = Atomic.get armed

let emit ev =
  if Atomic.get armed then
    Mutex.protect mutex (fun () ->
        if !sink <> None || !progress then begin
          let n = !seq in
          seq := n + 1;
          (match !sink with
          | Some oc ->
            output_string oc (Json.to_string (to_json ~seq:n ev));
            output_char oc '\n';
            flush oc
          | None -> ());
          if !progress then begin
            output_string stderr ("[progress] " ^ render ev ^ "\n");
            flush stderr
          end
        end)
