(** Typed faults: the diagnostic currency of the fault-tolerant engine.

    The numeric pipeline chains fragile stages — compact-model fits,
    annealed searches, long simulations — whose failures are expected
    inputs, not programming errors: an ill-conditioned fit at a corner
    of the (Vth, Tox) grid should surface as data, never abort a
    10-experiment run.  A [Fault.t] names what went wrong ([kind]),
    where ([stage], a fault-point or stage name) and with which inputs
    ([detail], deterministic text so parallel runs report identical
    faults).

    Faults travel as the [Fault] exception until a stage boundary
    ({!Sweep.map_array_result}, [Experiments.run_many_result]) converts
    them to per-item [Error] values.  Recorded faults accumulate in a
    process-wide, domain-safe log that {!Obs} serialises into the run
    report. *)

type kind =
  | Fit_diverged      (** LM fit exhausted its restarts unconverged *)
  | Singular_system   (** linear solve hit a singular system *)
  | Non_finite        (** NaN/Inf in inputs or results *)
  | Out_of_domain     (** model evaluated outside its fitted range *)
  | Injected          (** deterministic {!Faultpoint} injection *)
  | Crashed           (** unclassified exception at a stage boundary *)
  | Timed_out         (** kernel exceeded its {!Deadline} budget *)

type t = {
  kind : kind;
  stage : string;   (** fault point / stage name, dotted lowercase *)
  detail : string;  (** deterministic description (inputs, key, message) *)
}

exception Fault of t

val make : kind:kind -> stage:string -> string -> t
val error : kind:kind -> stage:string -> string -> 'a
(** [error ~kind ~stage detail] raises {!Fault}. *)

val kind_name : kind -> string
(** Stable lowercase identifier ([fit_diverged], [injected], …) used in
    JSON and fault-injection specs. *)

val kind_of_name : string -> kind option

val to_string : t -> string
(** [[kind] stage: detail] — the deterministic one-line rendering used
    in CLI fault output. *)

val to_json : t -> Json.t
val of_json : Json.t -> t option

val of_exn : stage:string -> exn -> t
(** Classify an exception caught at a stage boundary: a {!Fault} passes
    through unchanged, anything else becomes [Crashed]. *)

val compare : t -> t -> int
(** Order by (stage, kind, detail) — the canonical report order, so
    fault reports are byte-identical whatever the execution order. *)

(* -- process-wide fault log (domain-safe) --------------------------- *)

val record : t -> unit
(** Append to the log and bump the [faults.recorded] counter. *)

val recorded : unit -> t list
(** Snapshot in record order (use {!compare} for a canonical order). *)

val reset : unit -> unit
