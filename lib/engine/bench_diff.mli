(** Bench-trajectory analyzer: parse two [BENCH_<label>.json] reports
    and render a per-metric delta table — the tool behind
    [ppcache bench diff A.json B.json [--gate R]].

    Accepts bench schema v2 (the committed trajectory points) and v3
    (adds ["digest"] and ["resource"]); sections a report lacks simply
    produce no rows, so mixed-version diffs work.

    Gate semantics: with ratio [R], the gate fails when
    [wall_s(B) > R *. wall_s(A)] — A is conventionally the baseline.
    The CI policy is R = 1.5. *)

type stage = { s_name : string; s_calls : int; s_wall_s : float }
type memo = { m_name : string; m_hits : int; m_misses : int }

type report = {
  path : string;
  schema_version : int;
  label : string;
  scenario : string option;
  jobs : int;
  quick : bool;
  wall_s : float;
  experiments : (string * float) list;  (** (id, wall_s) *)
  stages : stage list;
  memos : memo list;
  digest : float option;   (** schema >= 3 *)
  resource : Json.t option;  (** schema >= 3 *)
}

val of_json : path:string -> Json.t -> report
(** Raises [Failure] naming [path] when a required field
    (schema_version, label, wall_s) is missing or malformed. *)

val load : string -> report
(** Read and parse a report file; raises [Failure] on unreadable or
    invalid input. *)

val render : report -> report -> string
(** The delta table: one header line per report, then aligned rows for
    wall time, per-experiment walls, stage walls, memo hit rates,
    digest equality and resource counters.  Ratios render as
    [+NN.N% (xR.RR)]. *)

val gate_exceeded : ratio:float -> report -> report -> bool
(** [gate_exceeded ~ratio a b] is true when [b.wall_s > ratio *.
    a.wall_s]. *)

val gate_verdict : ratio:float -> report -> report -> string
(** One-line verdict ("gate ok: …" / "GATE FAIL: …") for the CLI. *)
