(** Content-keyed, domain-safe memo cache for expensive intermediates
    (fitted cache models, simulated miss curves).

    Keys are strings describing everything a value depends on; the
    compute function must be a pure function of that key.  Lookup and
    insertion are mutex-protected so concurrent sweep workers can share
    one cache, and in-flight computations are deduplicated: a domain
    that requests a key another domain is already computing blocks on a
    condition variable until the value settles, instead of redoing the
    work (if the computation raises, its pending marker is dropped and
    one waiter retries).  Hits and misses are counted under the cache's
    name in {!Trace}; a waiter that received a settled value counts as
    a hit. *)

type 'v t

val create : name:string -> ?size:int -> unit -> 'v t

val name : 'v t -> string

val find_or_compute : 'v t -> string -> (unit -> 'v) -> 'v

val clear : 'v t -> unit
(** Drop all entries (counters in {!Trace} are left untouched). *)

val length : 'v t -> int

val stats : 'v t -> int * int
(** [(hits, misses)] recorded for this cache since the last
    {!Trace.reset}. *)
