(** A hand-rolled domain pool for coarse-grained fan-out.

    The pool fans an array of independent evaluations across OCaml 5
    domains.  Results are written to per-index slots, so the output
    order is always the input order and a parallel run is
    byte-identical to the sequential one for pure kernels.

    Kernels here are coarse (characterise-and-fit a cache, simulate a
    2 M-access trace, run a whole DP), so domains are spawned per
    fan-out: the spawn cost is microseconds against kernels that run
    for milliseconds to seconds, and per-call domains cannot leak or
    deadlock across calls.

    Nested fan-outs degrade to sequential evaluation on the calling
    domain — a worker that itself calls {!map_array} runs the inner
    sweep in place rather than oversubscribing the machine. *)

type t

val create : jobs:int -> t
(** [jobs] is the maximum number of domains (including the caller) a
    fan-out may use.  Raises [Invalid_argument] if [jobs < 1]. *)

val sequential : t
(** A pool with [jobs = 1]: [map_array] is exactly [Array.map]. *)

val jobs : t -> int

val in_worker : unit -> bool
(** [true] inside a kernel running under {!map_array} — used by nested
    sweeps to fall back to sequential evaluation. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with deterministic output order.  The calling
    domain participates in the work.  If any kernel raises, the first
    exception (in completion order) is re-raised after all domains
    join — spawned domains are joined on every exit path, including a
    caller-side exception. *)

val map_array_result : t -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** Partial-result mode: a raising kernel yields [Error] in its slot
    while every other item is still evaluated — no short-circuit, no
    re-raise.  Output order is input order, so for kernels whose
    success/failure is a pure function of their input the result array
    is identical whatever the [jobs] setting. *)
