(* Generic NDJSON serve loop (see the .mli for the contract). *)

type stats = { requests : int; responses : int; drained : bool }

type handler = line:string -> string * (unit -> unit)

let max_line_bytes = 1_048_576

(* --- drain flag ------------------------------------------------------ *)

let drain_flag = Atomic.make false
let request_drain () = Atomic.set drain_flag true
let drain_requested () = Atomic.get drain_flag
let reset_drain () = Atomic.set drain_flag false

let install_drain_signals () =
  let handle = Sys.Signal_handle (fun _ -> request_drain ()) in
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigint handle

let inflight_count = Atomic.make 0
let inflight () = Atomic.get inflight_count

(* --- global admission limiter ---------------------------------------- *)

(* Bounds the total in-flight requests across every connection of a
   server.  [reserve] grants as many of [want] slots as remain (CAS
   loop — connection threads race on it); requests beyond the grant are
   answered with the caller's shed response instead of buffered. *)

type limiter = { capacity : int; inflight_slots : int Atomic.t }

let make_limiter ~capacity =
  if capacity < 1 then invalid_arg "Server.make_limiter: capacity < 1";
  { capacity; inflight_slots = Atomic.make 0 }

let reserve l want =
  let rec go () =
    let cur = Atomic.get l.inflight_slots in
    let grant = max 0 (min want (l.capacity - cur)) in
    if grant = 0 then 0
    else if Atomic.compare_and_set l.inflight_slots cur (cur + grant) then grant
    else go ()
  in
  go ()

let release l n = ignore (Atomic.fetch_and_add l.inflight_slots (-n))

(* --- buffered line reader ------------------------------------------- *)

(* A hand-rolled reader over Unix.read rather than an in_channel: we
   need EINTR to surface (a SIGTERM must be able to interrupt a
   blocking read so drain never hangs on a silent pipe) and we need to
   discard overlong lines in bounded memory.  EAGAIN/EWOULDBLOCK (a
   socket with SO_RCVTIMEO, set so connection threads re-check the
   drain flag periodically) is treated as "no bytes yet": check drain,
   then retry. *)

type reader = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable pos : int;  (* unread window is chunk[pos, len) *)
  mutable len : int;
  pending : Buffer.t; (* partial line carried across refills *)
  mutable eof : bool;
}

let make_reader fd =
  {
    fd;
    chunk = Bytes.create 65536;
    pos = 0;
    len = 0;
    pending = Buffer.create 256;
    eof = false;
  }

type read_result = Line of string | Overlong | Eof | Drained

(* index of '\n' in chunk[pos, len), or None *)
let find_newline r =
  let rec go i = if i >= r.len then None else if Bytes.get r.chunk i = '\n' then Some i else go (i + 1) in
  go r.pos

let refill r =
  (* returns false on EOF or drain; true when bytes arrived *)
  let rec go () =
    match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
    | 0 ->
      r.eof <- true;
      false
    | n ->
      r.pos <- 0;
      r.len <- n;
      true
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if drain_requested () then false else go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      if drain_requested () then false else go ()
  in
  go ()

let take_line r =
  let line = Buffer.contents r.pending in
  Buffer.clear r.pending;
  (* tolerate CRLF input *)
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if String.length line > max_line_bytes then Overlong else Line line

(* discard input until the next newline (the tail of an overlong line),
   in bounded memory *)
let rec discard_line r =
  match find_newline r with
  | Some i ->
    r.pos <- i + 1;
    Overlong
  | None ->
    r.pos <- r.len;
    if r.eof then Overlong
    else if refill r then discard_line r
    else if drain_requested () && not r.eof then Drained
    else Overlong (* EOF inside the overlong line: still reject it *)

let rec read_line r =
  match find_newline r with
  | Some i ->
    Buffer.add_subbytes r.pending r.chunk r.pos (i - r.pos);
    r.pos <- i + 1;
    take_line r
  | None ->
    Buffer.add_subbytes r.pending r.chunk r.pos (r.len - r.pos);
    r.pos <- r.len;
    if Buffer.length r.pending > max_line_bytes then begin
      (* stop buffering; eat the rest of the line off the wire *)
      Buffer.clear r.pending;
      discard_line r
    end
    else if r.eof then
      if Buffer.length r.pending > 0 then take_line r else Eof
    else if refill r then read_line r
    else if drain_requested () && not r.eof then Drained
    else if Buffer.length r.pending > 0 then take_line r
    else Eof

(* true when the next [read_line] can make progress without blocking:
   a complete line is already buffered, EOF was seen, or the fd has
   bytes ready.  Used to keep batch gathering non-greedy — the loop
   blocks only for the {e first} line of a batch, then takes whatever
   is already available, so a lone warm query on an open pipe or
   socket is answered immediately instead of waiting for the queue to
   fill.  (A writer that trickles a partial line can still make the
   subsequent read block; drain via EINTR covers that.) *)
let input_pending r =
  find_newline r <> None || r.eof
  ||
  match Unix.select [ r.fd ] [] [] 0.0 with
  | [ _ ], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

(* --- the loop -------------------------------------------------------- *)

type item = Req of string | Too_long

let serve ?(queue = 64) ?limiter ?(shed_response = fun () -> "")
    ?dispatch_lock ~pool ~handler ~crash_response ~overlong_response ~input
    ~output () =
  if queue < 1 then invalid_arg "Server.serve: queue < 1";
  let r = make_reader input in
  let requests = ref 0 in
  let responses = ref 0 in
  let drained = ref false in
  let stop = ref false in
  let locked f =
    match dispatch_lock with None -> f () | Some m -> Mutex.protect m f
  in
  while not !stop do
    (* gather up to [queue] request lines — the bounded in-flight
       window.  Batch size never depends on the pool width. *)
    let batch = ref [] in
    let n = ref 0 in
    let gathering = ref true in
    while !gathering && (not !stop) && !n < queue do
      (* a drain requested at any point (signal, or a handler in the
         previous batch): stop reading; the lines already gathered are
         the in-flight work that still completes *)
      if drain_requested () then begin
        drained := true;
        stop := true
      end
      else if !n > 0 && not (input_pending r) then
        (* non-greedy batching: never block holding gathered requests —
           dispatch what we have and come back for more *)
        gathering := false
      else
        match read_line r with
        | Line l ->
          incr n;
          batch := Req l :: !batch
        | Overlong ->
          Metrics.incr "serve.overlong";
          incr n;
          batch := Too_long :: !batch
        | Eof -> stop := true
        | Drained ->
          drained := true;
          stop := true
    done;
    if drain_requested () && not !stop then begin
      drained := true;
      stop := true
    end;
    let items = Array.of_list (List.rev !batch) in
    if Array.length items > 0 then begin
      requests := !requests + Array.length items;
      Metrics.incr ~by:(Array.length items) "serve.requests";
      (* global admission: items beyond the grant are shed, never
         buffered.  Without a limiter everything is granted. *)
      let granted =
        match limiter with
        | None -> Array.length items
        | Some l -> reserve l (Array.length items)
      in
      let work = Array.sub items 0 granted in
      ignore (Atomic.fetch_and_add inflight_count granted);
      (* fault boundary per request: a handler that raises yields an
         Error slot, everything else still completes.  The dispatch
         lock (socket mode) serializes pool fan-outs across connection
         threads — the pool is one domain set, not per-connection. *)
      let results =
        locked (fun () ->
            Pool.map_array_result pool
              (fun item ->
                match item with
                | Too_long -> (overlong_response (), fun () -> ())
                | Req line -> handler ~line)
              work)
      in
      ignore (Atomic.fetch_and_add inflight_count (-granted));
      (match limiter with None -> () | Some l -> release l granted);
      let shed = Array.length items - granted in
      if shed > 0 then Metrics.incr ~by:shed "serve.shed";
      (* settle + respond in request order: the deterministic seam *)
      Array.iteri
        (fun i item ->
          let line, settle =
            if i < granted then
              match results.(i) with
              | Ok pair -> pair
              | Error exn ->
                let fault = Fault.of_exn ~stage:"serve.request" exn in
                let raw = match item with Req l -> l | Too_long -> "" in
                (crash_response ~line:raw fault, fun () -> ())
            else (shed_response (), fun () -> ())
          in
          settle ();
          output_string output line;
          output_char output '\n';
          (* flush per response: a SIGKILL can truncate at most the
             line being written, and a downstream consumer sees
             answers as they land *)
          flush output;
          incr responses;
          Metrics.incr "serve.responses")
        items
    end
  done;
  { requests = !requests; responses = !responses; drained = !drained }

(* --- the concurrent Unix-socket front end ----------------------------- *)

(* One thread per accepted connection, up to [max_conns]; a connection
   beyond the cap is shed with a single overloaded line.  Each thread
   runs the same [serve] loop over its own bounded reader and queue, so
   per-connection response streams keep the solo-run byte-identity
   contract; the shared [dispatch_lock] serializes pool fan-outs (the
   domain pool is process-wide, and its in-worker marker is
   domain-local, not thread-local), and the shared [limiter] bounds
   total in-flight lines.

   Drain never hangs: the accept loop polls with a short select
   timeout, and every client socket carries SO_RCVTIMEO so a thread
   blocked in read re-checks the drain flag periodically (the EAGAIN
   path in [refill]). *)

let conn_poll_interval = 0.25

let serve_unix_socket ?(queue = 64) ?(max_conns = 4) ?global_queue
    ?(write_timeout = 10.) ~pool ~handler ~crash_response ~overlong_response
    ~shed_response ~path () =
  if max_conns < 1 then invalid_arg "Server.serve_unix_socket: max_conns < 1";
  let global_queue =
    match global_queue with
    | Some g ->
      if g < 1 then invalid_arg "Server.serve_unix_socket: global_queue < 1";
      g
    | None -> max_conns * queue
  in
  let limiter = make_limiter ~capacity:global_queue in
  let dispatch_lock = Mutex.create () in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock (max_conns + 8);
      let agg = Mutex.create () in
      let requests = ref 0 in
      let responses = ref 0 in
      let drained = ref false in
      let threads = ref [] in
      let active = Atomic.make 0 in
      let serial = ref 0 in
      let set_conn_gauge () =
        Metrics.set_gauge "serve.active_connections" (float_of_int (Atomic.get active))
      in
      let handle_conn ~id client =
        (* read timeout: drain responsiveness (see module comment);
           write timeout: a stalled client drops only its own
           connection, not the server *)
        (try Unix.setsockopt_float client Unix.SO_RCVTIMEO conn_poll_interval
         with Unix.Unix_error _ | Invalid_argument _ -> ());
        if write_timeout > 0. then
          (try Unix.setsockopt_float client Unix.SO_SNDTIMEO write_timeout
           with Unix.Unix_error _ | Invalid_argument _ -> ());
        let output = Unix.out_channel_of_descr client in
        let served_requests = ref 0 in
        (match
           serve ~queue ~limiter ~shed_response ~dispatch_lock ~pool ~handler
             ~crash_response ~overlong_response ~input:client ~output ()
         with
        | s ->
          served_requests := s.requests;
          Mutex.protect agg (fun () ->
              requests := !requests + s.requests;
              responses := !responses + s.responses;
              if s.drained then drained := true)
        | exception (Sys_error _ | Unix.Unix_error _) ->
          (* slow or vanished client (SO_SNDTIMEO expiry, EPIPE,
             ECONNRESET): drop this connection only *)
          Metrics.incr "serve.conn_dropped");
        (try close_out output with Sys_error _ -> ());
        ignore (Atomic.fetch_and_add active (-1));
        set_conn_gauge ();
        if Events.enabled () then
          Events.emit (Events.Conn_closed { id; requests = !served_requests })
      in
      let stop = ref false in
      while not !stop do
        if drain_requested () then begin
          drained := true;
          stop := true
        end
        else
          match Unix.select [ sock ] [] [] conn_poll_interval with
          | [], _, _ -> ()
          | _ :: _, _, _ -> (
            match Unix.accept sock with
            | client, _ ->
              incr serial;
              let id = !serial in
              if Atomic.get active >= max_conns then begin
                (* at capacity: one overloaded line, then close *)
                Metrics.incr "serve.shed_conns";
                if Events.enabled () then Events.emit (Events.Conn_shed { id });
                let oc = Unix.out_channel_of_descr client in
                (try
                   output_string oc (shed_response ());
                   output_char oc '\n';
                   flush oc
                 with Sys_error _ -> ());
                try close_out oc with Sys_error _ -> ()
              end
              else begin
                ignore (Atomic.fetch_and_add active 1);
                set_conn_gauge ();
                if Events.enabled () then Events.emit (Events.Conn_opened { id });
                let th = Thread.create (fun () -> handle_conn ~id client) () in
                threads := th :: !threads
              end
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      List.iter Thread.join !threads;
      let drained = !drained || drain_requested () in
      { requests = !requests; responses = !responses; drained })
