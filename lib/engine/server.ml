(* Generic NDJSON serve loop (see the .mli for the contract). *)

type stats = { requests : int; responses : int; drained : bool }

type handler = line:string -> string * (unit -> unit)

let max_line_bytes = 1_048_576

(* --- drain flag ------------------------------------------------------ *)

let drain_flag = Atomic.make false
let request_drain () = Atomic.set drain_flag true
let drain_requested () = Atomic.get drain_flag
let reset_drain () = Atomic.set drain_flag false

let install_drain_signals () =
  let handle = Sys.Signal_handle (fun _ -> request_drain ()) in
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigint handle

let inflight_count = Atomic.make 0
let inflight () = Atomic.get inflight_count

(* --- buffered line reader ------------------------------------------- *)

(* A hand-rolled reader over Unix.read rather than an in_channel: we
   need EINTR to surface (a SIGTERM must be able to interrupt a
   blocking read so drain never hangs on a silent pipe) and we need to
   discard overlong lines in bounded memory. *)

type reader = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable pos : int;  (* unread window is chunk[pos, len) *)
  mutable len : int;
  pending : Buffer.t; (* partial line carried across refills *)
  mutable eof : bool;
}

let make_reader fd =
  {
    fd;
    chunk = Bytes.create 65536;
    pos = 0;
    len = 0;
    pending = Buffer.create 256;
    eof = false;
  }

type read_result = Line of string | Overlong | Eof | Drained

(* index of '\n' in chunk[pos, len), or None *)
let find_newline r =
  let rec go i = if i >= r.len then None else if Bytes.get r.chunk i = '\n' then Some i else go (i + 1) in
  go r.pos

let refill r =
  (* returns false on EOF or drain; true when bytes arrived *)
  let rec go () =
    match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
    | 0 ->
      r.eof <- true;
      false
    | n ->
      r.pos <- 0;
      r.len <- n;
      true
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if drain_requested () then false else go ()
  in
  go ()

let take_line r =
  let line = Buffer.contents r.pending in
  Buffer.clear r.pending;
  (* tolerate CRLF input *)
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if String.length line > max_line_bytes then Overlong else Line line

(* discard input until the next newline (the tail of an overlong line),
   in bounded memory *)
let rec discard_line r =
  match find_newline r with
  | Some i ->
    r.pos <- i + 1;
    Overlong
  | None ->
    r.pos <- r.len;
    if r.eof then Overlong
    else if refill r then discard_line r
    else if drain_requested () && not r.eof then Drained
    else Overlong (* EOF inside the overlong line: still reject it *)

let rec read_line r =
  match find_newline r with
  | Some i ->
    Buffer.add_subbytes r.pending r.chunk r.pos (i - r.pos);
    r.pos <- i + 1;
    take_line r
  | None ->
    Buffer.add_subbytes r.pending r.chunk r.pos (r.len - r.pos);
    r.pos <- r.len;
    if Buffer.length r.pending > max_line_bytes then begin
      (* stop buffering; eat the rest of the line off the wire *)
      Buffer.clear r.pending;
      discard_line r
    end
    else if r.eof then
      if Buffer.length r.pending > 0 then take_line r else Eof
    else if refill r then read_line r
    else if drain_requested () && not r.eof then Drained
    else if Buffer.length r.pending > 0 then take_line r
    else Eof

(* true when the next [read_line] can make progress without blocking:
   a complete line is already buffered, EOF was seen, or the fd has
   bytes ready.  Used to keep batch gathering non-greedy — the loop
   blocks only for the {e first} line of a batch, then takes whatever
   is already available, so a lone warm query on an open pipe or
   socket is answered immediately instead of waiting for the queue to
   fill.  (A writer that trickles a partial line can still make the
   subsequent read block; drain via EINTR covers that.) *)
let input_pending r =
  find_newline r <> None || r.eof
  ||
  match Unix.select [ r.fd ] [] [] 0.0 with
  | [ _ ], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

(* --- the loop -------------------------------------------------------- *)

type item = Req of string | Too_long

let serve ?(queue = 64) ~pool ~handler ~crash_response ~overlong_response ~input
    ~output () =
  if queue < 1 then invalid_arg "Server.serve: queue < 1";
  let r = make_reader input in
  let requests = ref 0 in
  let responses = ref 0 in
  let drained = ref false in
  let stop = ref false in
  while not !stop do
    (* gather up to [queue] request lines — the bounded in-flight
       window.  Batch size never depends on the pool width. *)
    let batch = ref [] in
    let n = ref 0 in
    let gathering = ref true in
    while !gathering && (not !stop) && !n < queue do
      (* a drain requested at any point (signal, or a handler in the
         previous batch): stop reading; the lines already gathered are
         the in-flight work that still completes *)
      if drain_requested () then begin
        drained := true;
        stop := true
      end
      else if !n > 0 && not (input_pending r) then
        (* non-greedy batching: never block holding gathered requests —
           dispatch what we have and come back for more *)
        gathering := false
      else
        match read_line r with
        | Line l ->
          incr n;
          batch := Req l :: !batch
        | Overlong ->
          Metrics.incr "serve.overlong";
          incr n;
          batch := Too_long :: !batch
        | Eof -> stop := true
        | Drained ->
          drained := true;
          stop := true
    done;
    if drain_requested () && not !stop then begin
      drained := true;
      stop := true
    end;
    let items = Array.of_list (List.rev !batch) in
    if Array.length items > 0 then begin
      requests := !requests + Array.length items;
      Metrics.incr ~by:(Array.length items) "serve.requests";
      Atomic.set inflight_count (Array.length items);
      (* fault boundary per request: a handler that raises yields an
         Error slot, everything else still completes *)
      let results =
        Pool.map_array_result pool
          (fun item ->
            match item with
            | Too_long -> (overlong_response (), fun () -> ())
            | Req line -> handler ~line)
          items
      in
      Atomic.set inflight_count 0;
      (* settle + respond in request order: the deterministic seam *)
      Array.iteri
        (fun i result ->
          let line, settle =
            match result with
            | Ok pair -> pair
            | Error exn ->
              let fault = Fault.of_exn ~stage:"serve.request" exn in
              let raw = match items.(i) with Req l -> l | Too_long -> "" in
              (crash_response ~line:raw fault, fun () -> ())
          in
          settle ();
          output_string output line;
          output_char output '\n';
          (* flush per response: a SIGKILL can truncate at most the
             line being written, and a downstream consumer sees
             answers as they land *)
          flush output;
          incr responses;
          Metrics.incr "serve.responses")
        results
    end
  done;
  { requests = !requests; responses = !responses; drained = !drained }

let serve_unix_socket ?queue ~pool ~handler ~crash_response ~overlong_response
    ~path () =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let requests = ref 0 in
      let responses = ref 0 in
      let drained = ref false in
      let stop = ref false in
      while not !stop do
        match Unix.accept sock with
        | client, _ ->
          let output = Unix.out_channel_of_descr client in
          let s =
            Fun.protect
              ~finally:(fun () -> try close_out output with Sys_error _ -> ())
              (fun () ->
                serve ?queue ~pool ~handler ~crash_response ~overlong_response
                  ~input:client ~output ())
          in
          requests := !requests + s.requests;
          responses := !responses + s.responses;
          if s.drained || drain_requested () then begin
            drained := s.drained || !drained;
            stop := true
          end
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          if drain_requested () then begin
            drained := true;
            stop := true
          end
      done;
      { requests = !requests; responses = !responses; drained = !drained })
