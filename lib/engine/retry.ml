(* Per-stage retry with deterministic backoff.

   Transient faults — an injected chaos hit, an LM fit that stalls from
   an unlucky start — should be retried at the boundary that understands
   them before being recorded as casualties.  The *decision path* is
   pure: which kinds retry, how many attempts, and the backoff schedule
   are all functions of the policy and of (seed, stage, key, attempt)
   via the Faultpoint hash draw.  Only the sleep itself touches the
   clock, and it is injectable so tests run instantly. *)

type policy = {
  max_attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  jitter : float;
  retry_kinds : Fault.kind list;
}

let default_policy =
  {
    max_attempts = 3;
    base_delay_s = 0.002;
    max_delay_s = 0.050;
    jitter = 0.5;
    retry_kinds = [ Fault.Injected; Fault.Fit_diverged ];
  }

(* process-wide policy, overridable from the CLI (--retries) *)
let current : policy Atomic.t = Atomic.make default_policy

let policy () = Atomic.get current
let set_policy p =
  if p.max_attempts < 1 then
    invalid_arg (Printf.sprintf "Retry.set_policy: max_attempts %d < 1" p.max_attempts);
  Atomic.set current p

let set_max_attempts n = set_policy { (Atomic.get current) with max_attempts = n }
let reset () = Atomic.set current default_policy

(* injectable sleeper: production sleeps, tests don't *)
let sleeper : (float -> unit) Atomic.t = Atomic.make Unix.sleepf
let set_sleep f = Atomic.set sleeper f

let backoff_s p ~seed ~stage ~key ~attempt =
  let exp_delay = p.base_delay_s *. (2.0 ** float_of_int (max 0 (attempt - 1))) in
  let capped = Float.min p.max_delay_s exp_delay in
  (* jitter in [1 - j, 1 + j), from the same splitmix draw the fault
     points use: a pure function of its inputs, no wall clock *)
  let u = Faultpoint.draw ~seed ~point:("retry." ^ stage) ~key:(Printf.sprintf "%s#%d" key attempt) in
  capped *. (1.0 +. (p.jitter *. ((2.0 *. u) -. 1.0)))

let retryable p (f : Fault.t) = List.mem f.Fault.kind p.retry_kinds

let run ?policy ~stage ~key f =
  let p = match policy with Some p -> p | None -> Atomic.get current in
  let seed = Option.value (Faultpoint.armed_seed ()) ~default:0L in
  let rec go attempt =
    let last = attempt >= p.max_attempts in
    match f ~attempt ~last with
    | v ->
      if attempt > 1 then begin
        Metrics.incr "retry.recovered";
        Metrics.incr ("retry.recovered." ^ stage)
      end;
      v
    | exception Fault.Fault fault when (not last) && retryable p fault ->
      Metrics.incr "retry.attempts";
      Metrics.incr ("retry.attempts." ^ stage);
      (Atomic.get sleeper) (backoff_s p ~seed ~stage ~key ~attempt);
      go (attempt + 1)
    | exception (Fault.Fault fault as e) ->
      if last && p.max_attempts > 1 && retryable p fault then begin
        Metrics.incr "retry.exhausted";
        Metrics.incr ("retry.exhausted." ^ stage)
      end;
      raise e
  in
  go 1
