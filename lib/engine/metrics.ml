(* Log-bucketed histogram: 16 buckets per decade.  A sample v > 0 lands
   in bucket floor(ln v / w) with w = ln 10 / 16, whose representative
   value is the geometric midpoint exp((i + 0.5) w) — so any quantile
   estimate is within a half-bucket (~7%) of the true sample. *)

let bucket_width = Float.log 10.0 /. 16.0

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable zeros : int; (* samples <= 0, treated as value 0 *)
  buckets : (int, int ref) Hashtbl.t;
}

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mutex = Mutex.create ()
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 32
let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let incr ?(by = 1) name =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace counters name (ref by))

let set_gauge name v =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some r -> r := v
      | None -> Hashtbl.replace gauges name (ref v))

let observe name v =
  Mutex.protect mutex (fun () ->
      let h =
        match Hashtbl.find_opt histograms name with
        | Some h -> h
        | None ->
          let h =
            {
              count = 0;
              sum = 0.0;
              min_v = Float.infinity;
              max_v = Float.neg_infinity;
              zeros = 0;
              buckets = Hashtbl.create 16;
            }
          in
          Hashtbl.replace histograms name h;
          h
      in
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v;
      if v <= 0.0 then h.zeros <- h.zeros + 1
      else begin
        let i = int_of_float (Float.floor (Float.log v /. bucket_width)) in
        match Hashtbl.find_opt h.buckets i with
        | Some r -> Stdlib.incr r
        | None -> Hashtbl.replace h.buckets i (ref 1)
      end)

let counter_value name =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt counters name with Some r -> !r | None -> 0)

let gauge_value name =
  Mutex.protect mutex (fun () ->
      Option.map (fun r -> !r) (Hashtbl.find_opt gauges name))

(* quantile by walking the zero bucket then log buckets in index order;
   the answer is the representative value of the bucket holding the
   q-th sample, clamped into [min, max] so tiny histograms read
   sensibly *)
let quantile_of (h : histogram) q =
  if h.count = 0 then 0.0
  else begin
    let rank = Float.max 1.0 (Float.round (q *. float_of_int h.count)) in
    let rank = int_of_float (Float.min rank (float_of_int h.count)) in
    if rank <= h.zeros then Float.max 0.0 h.min_v
    else begin
      let idxs =
        List.sort compare (Hashtbl.fold (fun i _ acc -> i :: acc) h.buckets [])
      in
      let rec walk seen = function
        | [] -> h.max_v
        | i :: rest ->
          let seen = seen + !(Hashtbl.find h.buckets i) in
          if seen >= rank then
            let rep = Float.exp ((float_of_int i +. 0.5) *. bucket_width) in
            Float.min h.max_v (Float.max h.min_v rep)
          else walk seen rest
      in
      walk h.zeros idxs
    end
  end

let summary_of (h : histogram) =
  {
    count = h.count;
    sum = h.sum;
    min = (if h.count = 0 then 0.0 else h.min_v);
    max = (if h.count = 0 then 0.0 else h.max_v);
    p50 = quantile_of h 0.50;
    p90 = quantile_of h 0.90;
    p99 = quantile_of h 0.99;
  }

let histogram_summary name =
  Mutex.protect mutex (fun () ->
      Option.map summary_of (Hashtbl.find_opt histograms name))

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_summary) list;
}

let sorted_bindings table value =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, value v) :: acc) table [])

let snapshot () =
  Mutex.protect mutex (fun () ->
      {
        counters = sorted_bindings counters (fun r -> !r);
        gauges = sorted_bindings gauges (fun r -> !r);
        histograms = sorted_bindings histograms summary_of;
      })

let to_json () =
  let s = snapshot () in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, (h : histogram_summary)) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.Int h.count);
                     ("sum", Json.Float h.sum);
                     ("min", Json.Float h.min);
                     ("max", Json.Float h.max);
                     ("p50", Json.Float h.p50);
                     ("p90", Json.Float h.p90);
                     ("p99", Json.Float h.p99);
                   ] ))
             s.histograms) );
    ]

let reset () =
  Mutex.protect mutex (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset gauges;
      Hashtbl.reset histograms)
