(* Log-bucketed histogram: 16 buckets per decade.  A sample v > 0 lands
   in bucket floor(ln v / w) with w = ln 10 / 16, whose representative
   value is the geometric midpoint exp((i + 0.5) w) — so any quantile
   estimate is within a half-bucket (~7%) of the true sample. *)

let bucket_width = Float.log 10.0 /. 16.0

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable zeros : int; (* samples <= 0, treated as value 0 *)
  buckets : (int, int ref) Hashtbl.t;
}

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mutex = Mutex.create ()
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 32
let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let incr ?(by = 1) name =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace counters name (ref by))

let set_gauge name v =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some r -> r := v
      | None -> Hashtbl.replace gauges name (ref v))

(* shared by observe/observe_n; caller holds the registry mutex *)
let observe_locked name v ~count =
  let h =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
      let h =
        {
          count = 0;
          sum = 0.0;
          min_v = Float.infinity;
          max_v = Float.neg_infinity;
          zeros = 0;
          buckets = Hashtbl.create 16;
        }
      in
      Hashtbl.replace histograms name h;
      h
  in
  h.count <- h.count + count;
  h.sum <- h.sum +. (v *. float_of_int count);
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  if v <= 0.0 then h.zeros <- h.zeros + count
  else begin
    let i = int_of_float (Float.floor (Float.log v /. bucket_width)) in
    match Hashtbl.find_opt h.buckets i with
    | Some r -> r := !r + count
    | None -> Hashtbl.replace h.buckets i (ref count)
  end

let observe name v = Mutex.protect mutex (fun () -> observe_locked name v ~count:1)

let observe_n name v ~count =
  if count < 0 then invalid_arg "Metrics.observe_n: negative count";
  if count > 0 then Mutex.protect mutex (fun () -> observe_locked name v ~count)

let counter_value name =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt counters name with Some r -> !r | None -> 0)

let gauge_value name =
  Mutex.protect mutex (fun () ->
      Option.map (fun r -> !r) (Hashtbl.find_opt gauges name))

(* quantile by walking the zero bucket then log buckets in index order;
   the answer is the representative value of the bucket holding the
   q-th sample, clamped into [min, max] so tiny histograms read
   sensibly *)
let quantile_of (h : histogram) q =
  if h.count = 0 then 0.0
  else begin
    let rank = Float.max 1.0 (Float.round (q *. float_of_int h.count)) in
    let rank = int_of_float (Float.min rank (float_of_int h.count)) in
    if rank <= h.zeros then Float.max 0.0 h.min_v
    else begin
      let idxs =
        List.sort compare (Hashtbl.fold (fun i _ acc -> i :: acc) h.buckets [])
      in
      let rec walk seen = function
        | [] -> h.max_v
        | i :: rest ->
          let seen = seen + !(Hashtbl.find h.buckets i) in
          if seen >= rank then
            let rep = Float.exp ((float_of_int i +. 0.5) *. bucket_width) in
            Float.min h.max_v (Float.max h.min_v rep)
          else walk seen rest
      in
      walk h.zeros idxs
    end
  end

let summary_of (h : histogram) =
  {
    count = h.count;
    sum = h.sum;
    min = (if h.count = 0 then 0.0 else h.min_v);
    max = (if h.count = 0 then 0.0 else h.max_v);
    p50 = quantile_of h 0.50;
    p90 = quantile_of h 0.90;
    p99 = quantile_of h 0.99;
  }

let histogram_summary name =
  Mutex.protect mutex (fun () ->
      Option.map summary_of (Hashtbl.find_opt histograms name))

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_summary) list;
}

let sorted_bindings table value =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, value v) :: acc) table [])

let snapshot () =
  Mutex.protect mutex (fun () ->
      {
        counters = sorted_bindings counters (fun r -> !r);
        gauges = sorted_bindings gauges (fun r -> !r);
        histograms = sorted_bindings histograms summary_of;
      })

let to_json () =
  let s = snapshot () in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, (h : histogram_summary)) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.Int h.count);
                     ("sum", Json.Float h.sum);
                     ("min", Json.Float h.min);
                     ("max", Json.Float h.max);
                     ("p50", Json.Float h.p50);
                     ("p90", Json.Float h.p90);
                     ("p99", Json.Float h.p99);
                   ] ))
             s.histograms) );
    ]

(* ---- OpenMetrics text exposition ------------------------------------- *)

(* Escaping rules from the OpenMetrics/Prometheus text format: label
   values escape backslash, double-quote and newline; HELP text escapes
   backslash and newline only. *)
let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.17g round-trips any float; strip OCaml's "inf"/"nan" spellings to
   the exposition-format ones *)
let om_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" v

(* The registry's dotted metric names become the [name] label of three
   fixed families — ppcache_counter / ppcache_gauge /
   ppcache_histogram — so arbitrary registry names never have to be
   sanitised into metric identifiers.  Histograms export as summaries
   (quantile series plus _sum/_count): the registry stores log-bucket
   quantile estimates, not cumulative le-buckets. *)
let to_openmetrics () =
  let s = snapshot () in
  let b = Buffer.create 4096 in
  let meta family typ help =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" family (escape_help help));
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" family typ)
  in
  if s.counters <> [] then begin
    meta "ppcache_counter" "counter" "ppcache registry counters, keyed by the name label.";
    List.iter
      (fun (name, v) ->
        Buffer.add_string b
          (Printf.sprintf "ppcache_counter_total{name=\"%s\"} %d\n"
             (escape_label_value name) v))
      s.counters
  end;
  if s.gauges <> [] then begin
    meta "ppcache_gauge" "gauge" "ppcache registry gauges, keyed by the name label.";
    List.iter
      (fun (name, v) ->
        Buffer.add_string b
          (Printf.sprintf "ppcache_gauge{name=\"%s\"} %s\n"
             (escape_label_value name) (om_float v)))
      s.gauges
  end;
  if s.histograms <> [] then begin
    meta "ppcache_histogram" "summary"
      "ppcache registry histograms as quantile summaries, keyed by the name label.";
    List.iter
      (fun (name, (h : histogram_summary)) ->
        let n = escape_label_value name in
        let q label v =
          Buffer.add_string b
            (Printf.sprintf "ppcache_histogram{name=\"%s\",quantile=\"%s\"} %s\n"
               n label (om_float v))
        in
        q "0.5" h.p50;
        q "0.9" h.p90;
        q "0.99" h.p99;
        Buffer.add_string b
          (Printf.sprintf "ppcache_histogram_sum{name=\"%s\"} %s\n" n (om_float h.sum));
        Buffer.add_string b
          (Printf.sprintf "ppcache_histogram_count{name=\"%s\"} %d\n" n h.count))
      s.histograms
  end;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let reset () =
  Mutex.protect mutex (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset gauges;
      Hashtbl.reset histograms)
